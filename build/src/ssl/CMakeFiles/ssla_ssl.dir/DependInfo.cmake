
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ssl/alert.cc" "src/ssl/CMakeFiles/ssla_ssl.dir/alert.cc.o" "gcc" "src/ssl/CMakeFiles/ssla_ssl.dir/alert.cc.o.d"
  "/root/repo/src/ssl/bio.cc" "src/ssl/CMakeFiles/ssla_ssl.dir/bio.cc.o" "gcc" "src/ssl/CMakeFiles/ssla_ssl.dir/bio.cc.o.d"
  "/root/repo/src/ssl/ciphersuite.cc" "src/ssl/CMakeFiles/ssla_ssl.dir/ciphersuite.cc.o" "gcc" "src/ssl/CMakeFiles/ssla_ssl.dir/ciphersuite.cc.o.d"
  "/root/repo/src/ssl/client.cc" "src/ssl/CMakeFiles/ssla_ssl.dir/client.cc.o" "gcc" "src/ssl/CMakeFiles/ssla_ssl.dir/client.cc.o.d"
  "/root/repo/src/ssl/endpoint.cc" "src/ssl/CMakeFiles/ssla_ssl.dir/endpoint.cc.o" "gcc" "src/ssl/CMakeFiles/ssla_ssl.dir/endpoint.cc.o.d"
  "/root/repo/src/ssl/handshake_hash.cc" "src/ssl/CMakeFiles/ssla_ssl.dir/handshake_hash.cc.o" "gcc" "src/ssl/CMakeFiles/ssla_ssl.dir/handshake_hash.cc.o.d"
  "/root/repo/src/ssl/kdf.cc" "src/ssl/CMakeFiles/ssla_ssl.dir/kdf.cc.o" "gcc" "src/ssl/CMakeFiles/ssla_ssl.dir/kdf.cc.o.d"
  "/root/repo/src/ssl/kx.cc" "src/ssl/CMakeFiles/ssla_ssl.dir/kx.cc.o" "gcc" "src/ssl/CMakeFiles/ssla_ssl.dir/kx.cc.o.d"
  "/root/repo/src/ssl/messages.cc" "src/ssl/CMakeFiles/ssla_ssl.dir/messages.cc.o" "gcc" "src/ssl/CMakeFiles/ssla_ssl.dir/messages.cc.o.d"
  "/root/repo/src/ssl/record.cc" "src/ssl/CMakeFiles/ssla_ssl.dir/record.cc.o" "gcc" "src/ssl/CMakeFiles/ssla_ssl.dir/record.cc.o.d"
  "/root/repo/src/ssl/server.cc" "src/ssl/CMakeFiles/ssla_ssl.dir/server.cc.o" "gcc" "src/ssl/CMakeFiles/ssla_ssl.dir/server.cc.o.d"
  "/root/repo/src/ssl/session.cc" "src/ssl/CMakeFiles/ssla_ssl.dir/session.cc.o" "gcc" "src/ssl/CMakeFiles/ssla_ssl.dir/session.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/ssla_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/pki/CMakeFiles/ssla_pki.dir/DependInfo.cmake"
  "/root/repo/build/src/bn/CMakeFiles/ssla_bn.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/ssla_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ssla_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

/**
 * @file
 * Span vocabulary for the zero-copy data plane.
 *
 * The record send path moves bytes from application buffers onto the
 * wire; every intermediate Bytes it materializes is a memcpy plus a
 * heap allocation that the paper's Figure 2 charges against bulk
 * transfer throughput. These types let the layers hand each other
 * *views* instead of copies:
 *
 *  - ConstSpan / MutSpan: the basic currency (std::span aliases).
 *  - IoVecCursor: walks a scatter list of ConstSpans in order, so the
 *    record layer can fragment a gather-send without first
 *    concatenating the buffers.
 *  - ScratchArena: a per-session reusable flat buffer. Steady-state
 *    records are laid out (header + payload + MAC + pad) and encrypted
 *    in place inside the arena; after warm-up no send allocates. The
 *    arena counts its growths so a bench can assert exactly that.
 */

#ifndef SSLA_UTIL_IOVEC_HH
#define SSLA_UTIL_IOVEC_HH

#include <cstring>
#include <span>

#include "util/types.hh"

namespace ssla
{

/** A read-only view of raw bytes (the send path's input currency). */
using ConstSpan = std::span<const uint8_t>;

/** A writable view of raw bytes (arena-backed wire images). */
using MutSpan = std::span<uint8_t>;

/** Total byte count of a scatter list. */
inline size_t
iovTotalBytes(const ConstSpan *iov, size_t iovcnt)
{
    size_t total = 0;
    for (size_t i = 0; i < iovcnt; ++i)
        total += iov[i].size();
    return total;
}

/**
 * Forward-only cursor over a scatter list.
 *
 * contiguous(n) answers "do the next n bytes lie inside one slice?" —
 * the zero-copy question; take()/gather() consume them either as a
 * borrowed view or copied into caller storage.
 */
class IoVecCursor
{
  public:
    IoVecCursor(const ConstSpan *iov, size_t iovcnt)
        : iov_(iov), iovcnt_(iovcnt)
    {
        skipEmpty();
    }

    /** Bytes not yet consumed. */
    size_t
    remaining() const
    {
        size_t total = buf_ < iovcnt_ ? iov_[buf_].size() - off_ : 0;
        for (size_t i = buf_ + 1; i < iovcnt_; ++i)
            total += iov_[i].size();
        return total;
    }

    /** True when the next @p n bytes lie within a single slice. */
    bool
    contiguous(size_t n) const
    {
        return buf_ < iovcnt_ && iov_[buf_].size() - off_ >= n;
    }

    /**
     * Borrow the next @p n bytes as one view (requires
     * contiguous(n)) and advance past them.
     */
    ConstSpan
    take(size_t n)
    {
        ConstSpan view = iov_[buf_].subspan(off_, n);
        off_ += n;
        skipEmpty();
        return view;
    }

    /**
     * Borrow up to @p n bytes, bounded by the current slice — the
     * largest view available without copying — and advance past them.
     * Returns an empty view only when the cursor is exhausted.
     */
    ConstSpan
    takeUpTo(size_t n)
    {
        if (buf_ >= iovcnt_)
            return {};
        return take(std::min(n, iov_[buf_].size() - off_));
    }

    /** Copy the next @p n bytes into @p dst and advance past them. */
    void
    gather(uint8_t *dst, size_t n)
    {
        while (n) {
            size_t take = std::min(n, iov_[buf_].size() - off_);
            std::memcpy(dst, iov_[buf_].data() + off_, take);
            dst += take;
            off_ += take;
            n -= take;
            skipEmpty();
        }
    }

  private:
    void
    skipEmpty()
    {
        while (buf_ < iovcnt_ && off_ == iov_[buf_].size()) {
            ++buf_;
            off_ = 0;
        }
    }

    const ConstSpan *iov_;
    size_t iovcnt_;
    size_t buf_ = 0;
    size_t off_ = 0;
};

/**
 * A reusable flat buffer with geometric growth and no shrinking.
 *
 * acquire(n) hands out a writable view of n bytes backed by storage
 * that persists across calls; once the high-water mark is reached no
 * further acquire allocates. grows() counts reallocations — the
 * steady-state-zero gate of bench_serve_throughput.
 */
class ScratchArena
{
  public:
    /** A writable view of @p n bytes (contents unspecified). */
    MutSpan
    acquire(size_t n)
    {
        if (buf_.size() < n) {
            // Geometric growth so k distinct sizes cost O(log) grows.
            size_t cap = buf_.size() ? buf_.size() : 256;
            while (cap < n)
                cap *= 2;
            buf_.resize(cap);
            ++grows_;
        }
        return MutSpan{buf_.data(), n};
    }

    /** Bytes of backing storage currently held. */
    size_t capacity() const { return buf_.size(); }

    /** Reallocations since construction (0 in steady state). */
    uint64_t grows() const { return grows_; }

  private:
    Bytes buf_;
    uint64_t grows_ = 0;
};

} // namespace ssla

#endif // SSLA_UTIL_IOVEC_HH

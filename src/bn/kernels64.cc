#include "bn/kernels64.hh"

#include <algorithm>

#include "perf/probe.hh"

namespace ssla::bn
{

namespace
{
perf::NullMeter nullMeter;
} // anonymous namespace

Limb64
bn64_mul_add_words(Limb64 *r, const Limb64 *a, size_t n, Limb64 w)
{
    perf::FuncProbe probe("bn64_mul_add_words", perf::ProbeLevel::Fine);
    return bn64MulAddWordsT(r, a, n, w, nullMeter);
}

Limb64
bn64_mul_words(Limb64 *r, const Limb64 *a, size_t n, Limb64 w)
{
    perf::FuncProbe probe("bn64_mul_words", perf::ProbeLevel::Fine);
    return bn64MulWordsT(r, a, n, w, nullMeter);
}

Limb64
bn64_add_words(Limb64 *r, const Limb64 *a, const Limb64 *b, size_t n)
{
    perf::FuncProbe probe("bn64_add_words", perf::ProbeLevel::Fine);
    return bn64AddWordsT(r, a, b, n, nullMeter);
}

Limb64
bn64_sub_words(Limb64 *r, const Limb64 *a, const Limb64 *b, size_t n)
{
    perf::FuncProbe probe("bn64_sub_words", perf::ProbeLevel::Fine);
    return bn64SubWordsT(r, a, b, n, nullMeter);
}

namespace
{

/** Schoolbook r[0..2n) = a * b, one mul-add row per limb of b. */
void
mulSchoolbook(Limb64 *r, const Limb64 *a, const Limb64 *b, size_t n)
{
    std::fill(r, r + 2 * n, 0);
    for (size_t i = 0; i < n; ++i)
        r[i + n] = bn64_mul_add_words(r + i, a, n, b[i]);
}

/**
 * s[0..hi+1) = lo[0..h) + hip[0..hi), h <= hi. The extra limb absorbs
 * the carry, so the sum always fits — the "a0 + a1" operand of the
 * Karatsuba middle product.
 */
void
sumHalves(Limb64 *s, const Limb64 *lo, size_t h, const Limb64 *hip,
          size_t hi)
{
    std::copy(hip, hip + hi, s);
    s[hi] = 0;
    Limb64 carry = bn64_add_words(s, s, lo, h);
    for (size_t k = h; carry; ++k) {
        Limb64 cur = s[k];
        s[k] = cur + carry;
        carry = s[k] < cur ? 1 : 0;
    }
}

/** dst[0..dst_n) -= src[0..src_n); the difference is non-negative. */
void
subFrom(Limb64 *dst, size_t dst_n, const Limb64 *src, size_t src_n)
{
    Limb64 borrow = bn64_sub_words(dst, dst, src, src_n);
    for (size_t k = src_n; borrow && k < dst_n; ++k) {
        Limb64 cur = dst[k];
        dst[k] = cur - 1;
        borrow = cur == 0 ? 1 : 0;
    }
}

/** dst[0..dst_n) += src[0..src_n); the sum fits in dst_n limbs. */
void
addInto(Limb64 *dst, size_t dst_n, const Limb64 *src, size_t src_n)
{
    Limb64 carry = bn64_add_words(dst, dst, src, src_n);
    for (size_t k = src_n; carry && k < dst_n; ++k) {
        ++dst[k];
        carry = dst[k] == 0 ? 1 : 0;
    }
}

/**
 * Karatsuba: split a = a1*B^h + a0, b likewise; then
 *   a*b = z2*B^2h + (z1 - z0 - z2)*B^h + z0
 * with z0 = a0*b0, z2 = a1*b1, z1 = (a0+a1)*(b0+b1) — three half-size
 * products instead of four. z0 and z2 land directly in disjoint halves
 * of r; only the middle term needs a temporary.
 */
void
mulKaratsuba(Limb64 *r, const Limb64 *a, const Limb64 *b, size_t n)
{
    if (n < karatsubaThreshold) {
        mulSchoolbook(r, a, b, n);
        return;
    }
    size_t h = n / 2;
    size_t hi = n - h;
    mulKaratsuba(r, a, b, h);                 // z0 -> r[0..2h)
    mulKaratsuba(r + 2 * h, a + h, b + h, hi); // z2 -> r[2h..2n)

    std::vector<Limb64> sa(hi + 1);
    std::vector<Limb64> sb(hi + 1);
    std::vector<Limb64> z1(2 * (hi + 1));
    sumHalves(sa.data(), a, h, a + h, hi);
    sumHalves(sb.data(), b, h, b + h, hi);
    mulKaratsuba(z1.data(), sa.data(), sb.data(), hi + 1);

    subFrom(z1.data(), z1.size(), r, 2 * h);           // z1 -= z0
    subFrom(z1.data(), z1.size(), r + 2 * h, 2 * hi);  // z1 -= z2
    addInto(r + h, 2 * n - h, z1.data(), z1.size());
}

/** Karatsuba squaring: z1 = (a0+a1)^2 - z0 - z2 = 2*a0*a1. */
void
sqrKaratsuba(Limb64 *r, const Limb64 *a, size_t n)
{
    if (n < karatsubaThreshold) {
        std::fill(r, r + 2 * n, 0);
        for (size_t i = 0; i < n; ++i)
            r[i + n] = bn64_mul_add_words(r + i, a, n, a[i]);
        return;
    }
    size_t h = n / 2;
    size_t hi = n - h;
    sqrKaratsuba(r, a, h);
    sqrKaratsuba(r + 2 * h, a + h, hi);

    std::vector<Limb64> sa(hi + 1);
    std::vector<Limb64> z1(2 * (hi + 1));
    sumHalves(sa.data(), a, h, a + h, hi);
    sqrKaratsuba(z1.data(), sa.data(), hi + 1);

    subFrom(z1.data(), z1.size(), r, 2 * h);
    subFrom(z1.data(), z1.size(), r + 2 * h, 2 * hi);
    addInto(r + h, 2 * n - h, z1.data(), z1.size());
}

} // anonymous namespace

void
bn64Mul(Limb64 *r, const Limb64 *a, const Limb64 *b, size_t n)
{
    mulKaratsuba(r, a, b, n);
}

void
bn64Sqr(Limb64 *r, const Limb64 *a, size_t n)
{
    sqrKaratsuba(r, a, n);
}

std::vector<Limb64>
limbs64From32(const std::vector<uint32_t> &a)
{
    std::vector<Limb64> out((a.size() + 1) / 2, 0);
    for (size_t i = 0; i < a.size(); ++i)
        out[i / 2] |= static_cast<Limb64>(a[i]) << (32 * (i % 2));
    while (!out.empty() && out.back() == 0)
        out.pop_back();
    return out;
}

std::vector<uint32_t>
limbs32From64(const std::vector<Limb64> &a)
{
    std::vector<uint32_t> out;
    out.reserve(a.size() * 2);
    for (Limb64 w : a) {
        out.push_back(static_cast<uint32_t>(w));
        out.push_back(static_cast<uint32_t>(w >> 32));
    }
    while (!out.empty() && out.back() == 0)
        out.pop_back();
    return out;
}

} // namespace ssla::bn

/**
 * @file
 * DES and Triple-DES (EDE3) public interfaces.
 */

#ifndef SSLA_CRYPTO_DES_HH
#define SSLA_CRYPTO_DES_HH

#include "crypto/des_kernel.hh"
#include "util/types.hh"

namespace ssla::crypto
{

/** Single DES (8-byte key with ignored parity bits, 8-byte blocks). */
class Des
{
  public:
    static constexpr size_t blockBytes = 8;

    /** @param key 8 bytes */
    explicit Des(const Bytes &key);

    void encryptBlock(const uint8_t in[8], uint8_t out[8]) const;
    void decryptBlock(const uint8_t in[8], uint8_t out[8]) const;

    const DesKeySchedule &encKey() const { return enc_; }
    const DesKeySchedule &decKey() const { return dec_; }

  private:
    DesKeySchedule enc_;
    DesKeySchedule dec_;
};

/** Triple DES in EDE3 form: E(k3, D(k2, E(k1, block))). */
class TripleDes
{
  public:
    static constexpr size_t blockBytes = 8;

    /** @param key 24 bytes (k1 || k2 || k3) */
    explicit TripleDes(const Bytes &key);

    void encryptBlock(const uint8_t in[8], uint8_t out[8]) const;
    void decryptBlock(const uint8_t in[8], uint8_t out[8]) const;

  private:
    // Encrypt path: E(k1), D(k2), E(k3); decrypt path is the reverse.
    DesKeySchedule encK1_, decK2_, encK3_;
    DesKeySchedule decK3_, encK2_, decK1_;
};

} // namespace ssla::crypto

#endif // SSLA_CRYPTO_DES_HH

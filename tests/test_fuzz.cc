/**
 * @file
 * Failure-injection and fuzz tests: random corruption, truncation and
 * garbage across every parser and the handshake itself. The invariant
 * everywhere: malformed input produces a typed error (SslError or a
 * std exception), never a crash, hang or silent acceptance.
 */

#include <gtest/gtest.h>

#include "pki/cert.hh"
#include "ssl/client.hh"
#include "ssl/faultbio.hh"
#include "ssl/server.hh"
#include "util/rng.hh"
#include "web/http.hh"

#include "testkeys.hh"

namespace
{

using namespace ssla;
using namespace ssla::ssl;

ServerConfig
serverConfig()
{
    ServerConfig cfg;
    cfg.certificate = test::testServerCert();
    cfg.privateKey = test::testKey1024().priv;
    return cfg;
}

TEST(Fuzz, ServerSurvivesRandomRecords)
{
    // Throw random byte blobs at a fresh server: every outcome must be
    // either "waiting for more input" or a clean SslError.
    Xoshiro256 rng(101);
    for (int iter = 0; iter < 200; ++iter) {
        BioPair wires;
        SslServer server(serverConfig(), wires.serverEnd());
        Bytes blob = rng.bytes(1 + rng.nextBelow(300));
        wires.clientEnd().write(blob);
        try {
            for (int i = 0; i < 10; ++i)
                server.advance();
        } catch (const SslError &) {
            // expected for malformed input
        }
        EXPECT_FALSE(server.handshakeDone()) << "iter " << iter;
    }
}

TEST(Fuzz, ServerSurvivesValidHeaderGarbageBody)
{
    // Well-formed record headers framing random handshake bytes.
    Xoshiro256 rng(102);
    for (int iter = 0; iter < 200; ++iter) {
        BioPair wires;
        SslServer server(serverConfig(), wires.serverEnd());
        Bytes body = rng.bytes(1 + rng.nextBelow(120));
        Bytes record = {22, 3, 0,
                        static_cast<uint8_t>(body.size() >> 8),
                        static_cast<uint8_t>(body.size())};
        append(record, body);
        wires.clientEnd().write(record);
        try {
            for (int i = 0; i < 10; ++i)
                server.advance();
        } catch (const SslError &) {
        }
        EXPECT_FALSE(server.handshakeDone());
    }
}

TEST(Fuzz, HandshakeSurvivesSingleBitFlips)
{
    // Flip one bit somewhere in the client's first flight; the
    // handshake must either still complete (the bit landed somewhere
    // inert, e.g. inside the random) or fail with a typed error.
    Xoshiro256 rng(103);
    int completed = 0, rejected = 0;
    for (int iter = 0; iter < 60; ++iter) {
        BioPair wires;
        SslServer server(serverConfig(), wires.serverEnd());
        SslClient client(ClientConfig{}, wires.clientEnd());
        client.advance(); // hello in flight

        BioEndpoint se = wires.serverEnd();
        Bytes buf(4096);
        size_t n = se.peek(buf.data(), buf.size());
        ASSERT_GT(n, 10u);
        size_t pos = rng.nextBelow(n);
        buf[pos] ^= static_cast<uint8_t>(1u << rng.nextBelow(8));
        se.consume(n);
        wires.clientEnd().write(buf.data(), n);

        try {
            for (int i = 0; i < 30; ++i) {
                bool progress = client.advance();
                progress |= server.advance();
                if (client.handshakeDone() && server.handshakeDone())
                    break;
                if (!progress)
                    break; // deadlock counts as rejection here
            }
            if (client.handshakeDone() && server.handshakeDone())
                ++completed;
            else
                ++rejected;
        } catch (const SslError &) {
            ++rejected;
        }
    }
    // Both outcomes must occur across 60 random flips (a flip in the
    // client random is harmless; a flip in the length fields is not),
    // and none may crash.
    EXPECT_GT(completed + rejected, 0);
}

TEST(Fuzz, CertificateParserOnMutations)
{
    Xoshiro256 rng(104);
    Bytes good = test::testServerCert().encoded();
    int parsed = 0;
    for (int iter = 0; iter < 300; ++iter) {
        Bytes mutated = good;
        int flips = 1 + static_cast<int>(rng.nextBelow(4));
        for (int f = 0; f < flips; ++f)
            mutated[rng.nextBelow(mutated.size())] ^=
                static_cast<uint8_t>(1 + rng.nextBelow(255));
        try {
            pki::Certificate cert = pki::Certificate::parse(mutated);
            // Parsing may succeed (mutation hit an inert byte), but
            // then verification must almost always fail.
            if (cert.verify(test::testKey1024().pub) &&
                mutated != good) {
                // A successful forgery would be a real bug.
                FAIL() << "mutated certificate verified";
            }
            ++parsed;
        } catch (const std::exception &) {
            // malformed: fine
        }
    }
    SUCCEED() << parsed << " mutations still parsed";
}

TEST(Fuzz, CertificateParserOnTruncations)
{
    Bytes good = test::testServerCert().encoded();
    for (size_t len = 0; len < good.size(); len += 7) {
        Bytes cut(good.begin(), good.begin() + len);
        EXPECT_THROW(pki::Certificate::parse(cut), std::runtime_error)
            << "len " << len;
    }
}

TEST(Fuzz, HandshakeMessageParserOnTruncations)
{
    ClientHelloMsg hello;
    hello.random = Bytes(32, 1);
    hello.cipherSuites = {0x000a, 0x0035};
    Bytes good = hello.encode();
    for (size_t len = 0; len < good.size(); ++len) {
        Bytes cut(good.begin(), good.begin() + len);
        EXPECT_THROW(ClientHelloMsg::parse(cut), SslError)
            << "len " << len;
    }
}

TEST(Fuzz, HttpParserOnGarbage)
{
    Xoshiro256 rng(105);
    for (int iter = 0; iter < 200; ++iter) {
        Bytes blob = rng.bytes(rng.nextBelow(200));
        try {
            web::HttpRequest::parse(blob);
        } catch (const std::exception &) {
        }
        try {
            web::HttpResponse::parse(blob);
        } catch (const std::exception &) {
        }
    }
    SUCCEED();
}

TEST(Fuzz, RecordLayerOnCorruptedCiphertext)
{
    // Every corruption of an encrypted record must yield bad_record_mac
    // (or a padding error mapped to the same alert), never plaintext.
    Xoshiro256 rng(106);
    const CipherSuite &suite =
        cipherSuite(CipherSuiteId::RSA_AES_128_CBC_SHA);
    Bytes mac = rng.bytes(suite.macLen());
    Bytes key = rng.bytes(suite.keyLen());
    Bytes iv = rng.bytes(suite.ivLen());

    for (int iter = 0; iter < 100; ++iter) {
        BioPair wires;
        RecordLayer sender(wires.clientEnd());
        RecordLayer receiver(wires.serverEnd());
        sender.enableSendCipher(suite, mac, key, iv);
        receiver.enableRecvCipher(suite, mac, key, iv);

        sender.send(ContentType::ApplicationData,
                    toBytes("sensitive payload"));
        Bytes wire(512);
        size_t n = wires.serverEnd().peek(wire.data(), wire.size());
        wires.serverEnd().consume(n);
        // Corrupt anywhere after the header.
        size_t pos = 5 + rng.nextBelow(n - 5);
        wire[pos] ^= static_cast<uint8_t>(1 + rng.nextBelow(255));
        wires.clientEnd().write(wire.data(), n);

        try {
            auto rec = receiver.receive();
            // The only acceptable non-throwing outcome is nullopt
            // (header corruption shrank the record below completeness).
            if (rec)
                FAIL() << "corrupted record accepted at pos " << pos;
        } catch (const SslError &) {
            // expected
        }
    }
}

// ---------------------------------------------------------------------
// Record-layer corpus: FaultyBio-mutated real transcripts

/**
 * Drive an endpoint over a fixed mutated input until it completes,
 * dies, or exhausts the input. Only SslError may escape — anything
 * else propagates and fails the test (the "never exception escape"
 * invariant).
 */
void
consumeMutatedStream(SslEndpoint &ep)
{
    for (int i = 0; i < 200; ++i) {
        try {
            if (!ep.advance())
                break;
        } catch (const SslError &) {
            break;
        }
    }
}

TEST(Fuzz, MutatedTranscriptCorpus)
{
    Bytes to_server, to_client;
    // Tap a real transcript: drive a clean handshake over raw MemBios,
    // peeking each direction's flights before delivery.
    {
        MemBio c2s, s2c;
        ServerConfig scfg;
        scfg.certificate = test::testServerCert512();
        scfg.privateKey = test::testKey512().priv;
        SslServer server(std::move(scfg), BioEndpoint(&c2s, &s2c));
        SslClient client(ClientConfig{}, BioEndpoint(&s2c, &c2s));
        Bytes buf(8192);
        for (int i = 0; i < 64; ++i) {
            client.advance();
            if (size_t n = c2s.peek(buf.data(), buf.size())) {
                to_server.insert(to_server.end(), buf.begin(),
                                 buf.begin() + n);
                // leave the bytes for the server to consume
            }
            server.advance();
            if (size_t n = s2c.peek(buf.data(), buf.size())) {
                to_client.insert(to_client.end(), buf.begin(),
                                 buf.begin() + n);
            }
            if (client.handshakeDone() && server.handshakeDone())
                break;
        }
        ASSERT_TRUE(client.handshakeDone() && server.handshakeDone());
        ASSERT_GT(to_server.size(), 100u);
        ASSERT_GT(to_client.size(), 100u);
    }

    // Server side: mutated client transcripts.
    for (uint64_t seed = 1; seed <= 40; ++seed) {
        ssl::FaultyBio mutator(ssl::FaultPlan::mixed(seed, 0.3));
        mutator.write(to_server.data(), to_server.size());
        for (int t = 0; t < 64; ++t)
            mutator.tick();
        Bytes mutated(mutator.available());
        mutator.read(mutated.data(), mutated.size());

        MemBio c2s, s2c;
        ServerConfig scfg;
        scfg.certificate = test::testServerCert512();
        scfg.privateKey = test::testKey512().priv;
        SslServer server(std::move(scfg), BioEndpoint(&c2s, &s2c));
        c2s.write(mutated);
        consumeMutatedStream(server);
        EXPECT_LE(server.fatalAlertsSent(), 1u) << "seed " << seed;
    }

    // Client side: mutated server transcripts, after the client has
    // sent its hello.
    for (uint64_t seed = 100; seed <= 140; ++seed) {
        ssl::FaultyBio mutator(ssl::FaultPlan::mixed(seed, 0.3));
        mutator.write(to_client.data(), to_client.size());
        for (int t = 0; t < 64; ++t)
            mutator.tick();
        Bytes mutated(mutator.available());
        mutator.read(mutated.data(), mutated.size());

        MemBio c2s, s2c;
        SslClient client(ClientConfig{}, BioEndpoint(&s2c, &c2s));
        client.advance(); // hello out
        s2c.write(mutated);
        consumeMutatedStream(client);
        EXPECT_LE(client.fatalAlertsSent(), 1u) << "seed " << seed;
    }
}

TEST(Fuzz, OversizedHandshakeLengthRejected)
{
    // A handshake header may declare up to 16 MB; buffering toward a
    // declared length beyond the bound must fail fast, not accumulate.
    for (size_t declared :
         {size_t{maxHandshakeMessage + 1}, size_t{0xffffff}}) {
        MemBio c2s, s2c;
        ServerConfig scfg;
        scfg.certificate = test::testServerCert512();
        scfg.privateKey = test::testKey512().priv;
        SslServer server(std::move(scfg), BioEndpoint(&c2s, &s2c));

        Bytes body = {1, // ClientHello type
                      static_cast<uint8_t>(declared >> 16),
                      static_cast<uint8_t>(declared >> 8),
                      static_cast<uint8_t>(declared)};
        Bytes rec = {22, 3, 0, 0, static_cast<uint8_t>(body.size())};
        append(rec, body);
        c2s.write(rec);
        try {
            server.advance();
            FAIL() << "oversized declared length accepted";
        } catch (const SslError &e) {
            EXPECT_EQ(e.alert(), AlertDescription::IllegalParameter);
        }
        EXPECT_EQ(server.fatalAlertsSent(), 1u);
    }
}

TEST(Fuzz, SplitHandshakeMessageReassembles)
{
    // One ClientHello delivered as dozens of 1-byte records: the
    // receiver must reassemble and answer normally.
    MemBio tap_in, tap_out;
    SslClient hello_client(ClientConfig{},
                           BioEndpoint(&tap_out, &tap_in));
    hello_client.advance();
    Bytes wire(tap_in.available());
    tap_in.read(wire.data(), wire.size());
    ASSERT_GT(wire.size(), 10u);
    Bytes fragment(wire.begin() + 5, wire.end()); // strip the header

    MemBio c2s, s2c;
    ServerConfig scfg;
    scfg.certificate = test::testServerCert512();
    scfg.privateKey = test::testKey512().priv;
    SslServer server(std::move(scfg), BioEndpoint(&c2s, &s2c));
    for (uint8_t byte : fragment) {
        Bytes rec = {22, 3, 0, 0, 1, byte};
        c2s.write(rec);
    }
    while (server.advance())
        ;
    // The server answered with its full flight.
    EXPECT_GT(s2c.available(), 100u);
    EXPECT_FALSE(server.failed());
}

TEST(Fuzz, MergedHandshakeMessagesParse)
{
    // The server's whole first flight (ServerHello + Certificate +
    // ServerHelloDone, normally three records) coalesced into ONE
    // record: the client must consume all three messages and respond.
    MemBio c2s, s2c;
    ServerConfig scfg;
    scfg.certificate = test::testServerCert512();
    scfg.privateKey = test::testKey512().priv;
    SslServer server(std::move(scfg), BioEndpoint(&c2s, &s2c));
    SslClient client(ClientConfig{}, BioEndpoint(&s2c, &c2s));

    client.advance(); // hello
    server.advance(); // flight into s2c as separate records

    // Re-frame: strip each record header, concatenate the fragments.
    Bytes raw(s2c.available());
    s2c.read(raw.data(), raw.size());
    Bytes merged_body;
    size_t off = 0;
    while (off + 5 <= raw.size()) {
        size_t len = (static_cast<size_t>(raw[off + 3]) << 8) |
                     raw[off + 4];
        ASSERT_EQ(raw[off], 22); // all handshake records
        merged_body.insert(merged_body.end(), raw.begin() + off + 5,
                           raw.begin() + off + 5 + len);
        off += 5 + len;
    }
    ASSERT_EQ(off, raw.size());
    Bytes merged = {22, 3, 0,
                    static_cast<uint8_t>(merged_body.size() >> 8),
                    static_cast<uint8_t>(merged_body.size())};
    append(merged, merged_body);
    s2c.write(merged);

    while (client.advance())
        ;
    EXPECT_FALSE(client.failed());
    // The client moved past the flight and sent ClientKeyExchange.
    EXPECT_GT(c2s.available(), 0u);
}

TEST(Fuzz, CcsAtEveryStateAlertsOrProgresses)
{
    // Inject a ChangeCipherSpec record into the server's input after
    // k lockstep half-steps, for every k until the handshake is done.
    // Every run must terminate as completed or alerted — never hang,
    // never a non-SslError escape, never a second alert.
    const Bytes ccs = {20, 3, 0, 0, 1, 1};
    int completed = 0, alerted = 0;
    for (int inject_at = 0;; ++inject_at) {
        MemBio c2s, s2c;
        ServerConfig scfg;
        scfg.certificate = test::testServerCert512();
        scfg.privateKey = test::testKey512().priv;
        SslServer server(std::move(scfg), BioEndpoint(&c2s, &s2c));
        SslClient client(ClientConfig{}, BioEndpoint(&s2c, &c2s));

        int step = 0;
        bool injected = false;
        bool failed = false;
        for (int i = 0; i < 100; ++i) {
            if (step++ == inject_at && !injected) {
                c2s.write(ccs);
                injected = true;
            }
            bool p = false;
            try {
                p = client.advance();
                p |= server.advance();
            } catch (const SslError &) {
                failed = true;
                break;
            }
            if (client.handshakeDone() && server.handshakeDone())
                break;
            if (!p && injected)
                break;
        }
        EXPECT_LE(server.fatalAlertsSent(), 1u)
            << "inject_at " << inject_at;
        EXPECT_LE(client.fatalAlertsSent(), 1u)
            << "inject_at " << inject_at;
        const bool done =
            client.handshakeDone() && server.handshakeDone();
        EXPECT_TRUE(done || failed || server.failed() ||
                    client.failed())
            << "hung with CCS injected at step " << inject_at;
        if (done)
            ++completed;
        else
            ++alerted;
        if (!injected)
            break; // handshake finished before the injection point
    }
    // A CCS at the legitimate point completes; early ones must die.
    EXPECT_GT(alerted, 0);
    EXPECT_GT(completed, 0);
}

TEST(Fuzz, DerParserOnRandomInput)
{
    Xoshiro256 rng(107);
    for (int iter = 0; iter < 500; ++iter) {
        Bytes blob = rng.bytes(rng.nextBelow(64));
        pki::DerParser p(blob);
        try {
            while (!p.atEnd()) {
                switch (p.peekTag()) {
                  case 0x02:
                    p.readInteger();
                    break;
                  case 0x04:
                    p.readOctetString();
                    break;
                  case 0x0c:
                    p.readUtf8();
                    break;
                  case 0x30:
                    p.readSequence();
                    break;
                  default:
                    throw std::runtime_error("unknown tag");
                }
            }
        } catch (const std::exception &) {
        }
    }
    SUCCEED();
}

} // anonymous namespace

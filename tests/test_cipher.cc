/**
 * @file
 * Cipher interface + CBC mode tests across every implemented suite
 * cipher: roundtrips, chaining semantics, error handling.
 */

#include <gtest/gtest.h>

#include "crypto/cipher.hh"
#include "crypto/provider.hh"
#include "util/hex.hh"
#include "util/rng.hh"

namespace
{

using namespace ssla;
using crypto::Cipher;
using crypto::CipherAlg;

struct AlgCase
{
    CipherAlg alg;
    const char *name;
};

class CipherRoundTrip : public ::testing::TestWithParam<CipherAlg>
{};

TEST_P(CipherRoundTrip, EncryptDecrypt)
{
    CipherAlg alg = GetParam();
    const auto &info = crypto::cipherInfo(alg);
    Xoshiro256 rng(static_cast<uint64_t>(alg) + 1);

    Bytes key = rng.bytes(info.keyLen);
    Bytes iv = rng.bytes(info.ivLen);

    for (size_t blocks : {1u, 2u, 5u, 64u}) {
        size_t len = info.blockLen * blocks;
        Bytes pt = rng.bytes(len);

        auto enc = crypto::scalarProvider().createCipher(alg, key, iv, true);
        Bytes ct = enc->process(pt);
        auto dec = crypto::scalarProvider().createCipher(alg, key, iv, false);
        Bytes back = dec->process(ct);
        EXPECT_EQ(back, pt) << info.name << " blocks=" << blocks;
        if (alg != CipherAlg::Null) {
            EXPECT_NE(ct, pt);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Algs, CipherRoundTrip,
    ::testing::Values(CipherAlg::Null, CipherAlg::Rc4_128,
                      CipherAlg::DesCbc, CipherAlg::Des3Cbc,
                      CipherAlg::Aes128Cbc, CipherAlg::Aes256Cbc));

TEST(Cipher, InfoTable)
{
    EXPECT_EQ(crypto::cipherInfo(CipherAlg::Des3Cbc).keyLen, 24u);
    EXPECT_EQ(crypto::cipherInfo(CipherAlg::Des3Cbc).blockLen, 8u);
    EXPECT_EQ(crypto::cipherInfo(CipherAlg::Aes256Cbc).keyLen, 32u);
    EXPECT_EQ(crypto::cipherInfo(CipherAlg::Aes256Cbc).ivLen, 16u);
    EXPECT_EQ(crypto::cipherInfo(CipherAlg::Rc4_128).blockLen, 1u);
    EXPECT_STREQ(crypto::cipherInfo(CipherAlg::DesCbc).name, "DES-CBC");
}

TEST(Cipher, BadKeyLengthThrows)
{
    Bytes iv(16);
    EXPECT_THROW(crypto::scalarProvider().createCipher(CipherAlg::Aes128Cbc, Bytes(15), iv,
                                true),
                 std::invalid_argument);
}

TEST(Cipher, BadIvLengthThrows)
{
    EXPECT_THROW(crypto::scalarProvider().createCipher(CipherAlg::Aes128Cbc, Bytes(16),
                                Bytes(8), true),
                 std::invalid_argument);
}

TEST(Cipher, CbcPartialBlockThrows)
{
    auto c = crypto::scalarProvider().createCipher(CipherAlg::DesCbc, Bytes(8), Bytes(8), true);
    Bytes data(12); // not a multiple of 8
    EXPECT_THROW(c->process(data), std::invalid_argument);
}

TEST(Cipher, CbcChainingLinksBlocks)
{
    // Identical plaintext blocks must encrypt differently under CBC.
    Xoshiro256 rng(2);
    Bytes key = rng.bytes(16);
    Bytes iv = rng.bytes(16);
    auto enc = crypto::scalarProvider().createCipher(CipherAlg::Aes128Cbc, key, iv, true);
    Bytes pt(32, 0x5a); // two identical blocks
    Bytes ct = enc->process(pt);
    EXPECT_NE(Bytes(ct.begin(), ct.begin() + 16),
              Bytes(ct.begin() + 16, ct.end()));
}

TEST(Cipher, CbcIvMatters)
{
    Xoshiro256 rng(3);
    Bytes key = rng.bytes(16);
    Bytes pt = rng.bytes(16);
    auto e1 = crypto::scalarProvider().createCipher(CipherAlg::Aes128Cbc, key, rng.bytes(16),
                             true);
    auto e2 = crypto::scalarProvider().createCipher(CipherAlg::Aes128Cbc, key, rng.bytes(16),
                             true);
    EXPECT_NE(e1->process(pt), e2->process(pt));
}

TEST(Cipher, CbcStateCarriesAcrossCalls)
{
    // Encrypting in two calls must equal encrypting at once.
    Xoshiro256 rng(4);
    Bytes key = rng.bytes(24);
    Bytes iv = rng.bytes(8);
    Bytes pt = rng.bytes(48);

    auto whole = crypto::scalarProvider().createCipher(CipherAlg::Des3Cbc, key, iv, true);
    Bytes expect = whole->process(pt);

    auto split = crypto::scalarProvider().createCipher(CipherAlg::Des3Cbc, key, iv, true);
    Bytes got(48);
    split->process(pt.data(), got.data(), 16);
    split->process(pt.data() + 16, got.data() + 16, 32);
    EXPECT_EQ(got, expect);
}

TEST(Cipher, CbcDecryptInPlace)
{
    Xoshiro256 rng(5);
    Bytes key = rng.bytes(16);
    Bytes iv = rng.bytes(16);
    Bytes pt = rng.bytes(64);

    auto enc = crypto::scalarProvider().createCipher(CipherAlg::Aes128Cbc, key, iv, true);
    Bytes buf = enc->process(pt);
    auto dec = crypto::scalarProvider().createCipher(CipherAlg::Aes128Cbc, key, iv, false);
    dec->process(buf.data(), buf.data(), buf.size());
    EXPECT_EQ(buf, pt);
}

TEST(Cipher, CbcEncryptInPlace)
{
    Xoshiro256 rng(6);
    Bytes key = rng.bytes(16);
    Bytes iv = rng.bytes(16);
    Bytes pt = rng.bytes(64);

    auto ref = crypto::scalarProvider().createCipher(CipherAlg::Aes128Cbc, key, iv, true);
    Bytes expect = ref->process(pt);

    auto enc = crypto::scalarProvider().createCipher(CipherAlg::Aes128Cbc, key, iv, true);
    Bytes buf = pt;
    enc->process(buf.data(), buf.data(), buf.size());
    EXPECT_EQ(buf, expect);
}

TEST(Cipher, NullCipherIsIdentity)
{
    auto c = crypto::scalarProvider().createCipher(CipherAlg::Null, Bytes{}, Bytes{}, true);
    Bytes data = {1, 2, 3, 4, 5};
    EXPECT_EQ(c->process(data), data);
}

} // anonymous namespace

# Empty compiler generated dependencies file for ssla_bn.
# This may be replaced when dependencies are built.

/**
 * @file
 * Uniform symmetric-cipher interface + registry (EVP-cipher analogue).
 *
 * Block ciphers are wrapped in CBC mode — the mode the paper's cipher
 * suites use — which chains each plaintext block into the previous
 * ciphertext block and thereby serializes the blocks of a record (the
 * property the paper notes "removes the potential for parallelism").
 */

#ifndef SSLA_CRYPTO_CIPHER_HH
#define SSLA_CRYPTO_CIPHER_HH

#include <memory>

#include "util/types.hh"

namespace ssla::crypto
{

/** Identifiers for the implemented bulk ciphers. */
enum class CipherAlg
{
    Null,      ///< no encryption (NULL cipher suites)
    Rc4_128,   ///< RC4 with 128-bit key
    DesCbc,    ///< DES-CBC, 56-bit key
    Des3Cbc,   ///< 3DES-EDE-CBC, 168-bit key
    Aes128Cbc, ///< AES-128-CBC
    Aes256Cbc, ///< AES-256-CBC
};

/** Static parameters of a cipher algorithm. */
struct CipherInfo
{
    const char *name;
    size_t keyLen;   ///< key material length in bytes
    size_t blockLen; ///< block size (1 for stream ciphers)
    size_t ivLen;    ///< IV length (0 for stream ciphers)
};

/** Look up the static parameters of @p alg. */
const CipherInfo &cipherInfo(CipherAlg alg);

/**
 * A one-direction bulk cipher instance.
 *
 * process() handles whole blocks only (the SSL record layer pads);
 * stream ciphers accept any length.
 */
class Cipher
{
  public:
    virtual ~Cipher() = default;

    virtual const CipherInfo &info() const = 0;

    /** En/decrypt @p len bytes (multiple of the block size). */
    virtual void process(const uint8_t *in, uint8_t *out, size_t len) = 0;

    /** Convenience over Bytes. */
    Bytes process(const Bytes &in);

    /**
     * Create a cipher instance.
     *
     * @param alg which cipher
     * @param key key material of exactly cipherInfo(alg).keyLen bytes
     * @param iv initialization vector (CBC ciphers only)
     * @param encrypt direction
     */
    static std::unique_ptr<Cipher> create(CipherAlg alg, const Bytes &key,
                                          const Bytes &iv, bool encrypt);
};

} // namespace ssla::crypto

#endif // SSLA_CRYPTO_CIPHER_HH

/**
 * @file
 * AES tests: FIPS 197 appendix C known-answer vectors for all three
 * key sizes, table self-consistency, and encrypt/decrypt sweeps.
 */

#include <gtest/gtest.h>

#include "crypto/aes.hh"
#include "util/hex.hh"
#include "util/rng.hh"

namespace
{

using namespace ssla;
using crypto::Aes;

const Bytes fipsPlain = hexDecode("00112233445566778899aabbccddeeff");

TEST(Aes, Fips197Aes128)
{
    Aes aes(hexDecode("000102030405060708090a0b0c0d0e0f"));
    uint8_t out[16];
    aes.encryptBlock(fipsPlain.data(), out);
    EXPECT_EQ(hexEncode(out, 16), "69c4e0d86a7b0430d8cdb78070b4c55a");
    uint8_t back[16];
    aes.decryptBlock(out, back);
    EXPECT_EQ(Bytes(back, back + 16), fipsPlain);
}

TEST(Aes, Fips197Aes192)
{
    Aes aes(hexDecode("000102030405060708090a0b0c0d0e0f1011121314151617"));
    uint8_t out[16];
    aes.encryptBlock(fipsPlain.data(), out);
    EXPECT_EQ(hexEncode(out, 16), "dda97ca4864cdfe06eaf70a0ec0d7191");
    uint8_t back[16];
    aes.decryptBlock(out, back);
    EXPECT_EQ(Bytes(back, back + 16), fipsPlain);
}

TEST(Aes, Fips197Aes256)
{
    Aes aes(hexDecode("000102030405060708090a0b0c0d0e0f"
                      "101112131415161718191a1b1c1d1e1f"));
    uint8_t out[16];
    aes.encryptBlock(fipsPlain.data(), out);
    EXPECT_EQ(hexEncode(out, 16), "8ea2b7ca516745bfeafc49904b496089");
    uint8_t back[16];
    aes.decryptBlock(out, back);
    EXPECT_EQ(Bytes(back, back + 16), fipsPlain);
}

TEST(Aes, RoundCounts)
{
    EXPECT_EQ(Aes(Bytes(16)).rounds(), 10);
    EXPECT_EQ(Aes(Bytes(24)).rounds(), 12);
    EXPECT_EQ(Aes(Bytes(32)).rounds(), 14);
}

TEST(Aes, BadKeySizeThrows)
{
    EXPECT_THROW(Aes(Bytes(15)), std::invalid_argument);
    EXPECT_THROW(Aes(Bytes(0)), std::invalid_argument);
    EXPECT_THROW(Aes(Bytes(33)), std::invalid_argument);
}

TEST(Aes, SboxIsAPermutationWithInverse)
{
    const auto &t = crypto::aesTables();
    bool seen[256] = {};
    for (int i = 0; i < 256; ++i) {
        EXPECT_FALSE(seen[t.sbox[i]]);
        seen[t.sbox[i]] = true;
        EXPECT_EQ(t.inv_sbox[t.sbox[i]], i);
    }
    // Known anchor values of the AES S-box.
    EXPECT_EQ(t.sbox[0x00], 0x63);
    EXPECT_EQ(t.sbox[0x01], 0x7c);
    EXPECT_EQ(t.sbox[0x53], 0xed);
}

TEST(Aes, TablesAreRotationsOfEachOther)
{
    const auto &t = crypto::aesTables();
    for (int i = 0; i < 256; ++i) {
        uint32_t w = t.te0[i];
        EXPECT_EQ(t.te1[i], (w >> 8) | (w << 24));
        EXPECT_EQ(t.te2[i], (w >> 16) | (w << 16));
        EXPECT_EQ(t.te3[i], (w >> 24) | (w << 8));
    }
}

/** Roundtrip sweep across key sizes. */
class AesRoundTrip : public ::testing::TestWithParam<size_t>
{};

TEST_P(AesRoundTrip, RandomBlocks)
{
    size_t key_len = GetParam();
    Xoshiro256 rng(key_len);
    for (int i = 0; i < 100; ++i) {
        Aes aes(rng.bytes(key_len));
        Bytes pt = rng.bytes(16);
        uint8_t ct[16], back[16];
        aes.encryptBlock(pt.data(), ct);
        aes.decryptBlock(ct, back);
        EXPECT_EQ(Bytes(back, back + 16), pt);
        // Encryption must not be the identity.
        EXPECT_NE(Bytes(ct, ct + 16), pt);
    }
}

INSTANTIATE_TEST_SUITE_P(KeySizes, AesRoundTrip,
                         ::testing::Values(16, 24, 32));

TEST(Aes, KeySensitivity)
{
    Bytes k1(16, 0);
    Bytes k2(16, 0);
    k2[15] = 1; // single-bit-ish difference
    Aes a1(k1), a2(k2);
    Bytes pt(16, 0x42);
    uint8_t c1[16], c2[16];
    a1.encryptBlock(pt.data(), c1);
    a2.encryptBlock(pt.data(), c2);
    EXPECT_NE(Bytes(c1, c1 + 16), Bytes(c2, c2 + 16));
}

TEST(Aes, AvalancheOnPlaintext)
{
    Aes aes(Bytes(16, 0x77));
    Bytes pt(16, 0);
    uint8_t c1[16], c2[16];
    aes.encryptBlock(pt.data(), c1);
    pt[0] ^= 1;
    aes.encryptBlock(pt.data(), c2);
    // A single input bit should flip roughly half the output bits.
    int flipped = 0;
    for (int i = 0; i < 16; ++i)
        flipped += __builtin_popcount(c1[i] ^ c2[i]);
    EXPECT_GT(flipped, 32);
    EXPECT_LT(flipped, 96);
}

TEST(Aes, MeteredKernelMatchesPlain)
{
    // The CountingMeter instantiation must compute identical output.
    Xoshiro256 rng(88);
    Bytes key = rng.bytes(16);
    Aes aes(key);
    Bytes pt = rng.bytes(16);
    uint8_t plain_out[16], metered_out[16];
    aes.encryptBlock(pt.data(), plain_out);

    perf::CountingMeter meter;
    crypto::aesEncryptBlockT(aes.encKey(), pt.data(), metered_out,
                             meter);
    EXPECT_EQ(Bytes(metered_out, metered_out + 16),
              Bytes(plain_out, plain_out + 16));
    EXPECT_GT(meter.hist.total(), 0u);
}

} // anonymous namespace

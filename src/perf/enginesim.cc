#include "perf/enginesim.hh"

#include <algorithm>

namespace ssla::perf
{

CryptoEngineSim::CryptoEngineSim(const EngineConfig &config)
    : config_(config)
{
    if (config_.cipherUnits == 0)
        config_.cipherUnits = 1;
    cipherFree_.assign(config_.cipherUnits, 0.0);
}

void
CryptoEngineSim::reset()
{
    controlFree_ = 0.0;
    hashFree_ = 0.0;
    std::fill(cipherFree_.begin(), cipherFree_.end(), 0.0);
    hashBusy_ = 0.0;
    cipherBusy_ = 0.0;
    totalBytes_ = 0.0;
    lastDone_ = 0.0;
}

EngineRecordTiming
CryptoEngineSim::submit(double payload_bytes)
{
    EngineRecordTiming t;

    // Control unit: fetch the descriptor, then hand the record to the
    // units. Descriptors are processed in order.
    t.dispatch = controlFree_ + config_.descriptorOverhead;
    controlFree_ = t.dispatch;

    // Hash unit: one shared unit, FIFO.
    double hash_start = std::max(t.dispatch, hashFree_);
    double hash_time = payload_bytes * config_.hashCyclesPerByte;
    t.hashDone = hash_start + hash_time;
    hashFree_ = t.hashDone;
    hashBusy_ += hash_time;

    // Cipher unit: pick the one that frees up first.
    auto unit = std::min_element(cipherFree_.begin(), cipherFree_.end());
    double body_start = std::max(t.dispatch, *unit);
    double body_time = payload_bytes * config_.cipherCyclesPerByte;
    double body_done = body_start + body_time;

    // The trailer (MAC value + padding) can only stream once the hash
    // unit has produced the MAC (Figure 6's serialization point).
    double trailer_start = std::max(body_done, t.hashDone);
    double trailer_time =
        config_.trailerBytes * config_.cipherCyclesPerByte;
    t.cipherDone = trailer_start + trailer_time;

    *unit = t.cipherDone;
    cipherBusy_ += body_time + trailer_time;

    totalBytes_ += payload_bytes;
    lastDone_ = std::max(lastDone_, t.cipherDone);
    return t;
}

EngineRunStats
CryptoEngineSim::run(size_t record_count, double payload_bytes)
{
    reset();
    EngineRunStats stats;
    stats.records.reserve(record_count);
    for (size_t i = 0; i < record_count; ++i)
        stats.records.push_back(submit(payload_bytes));
    stats.makespan = lastDone_;
    stats.totalBytes = totalBytes_;
    stats.hashBusy = hashBusy_;
    stats.cipherBusy = cipherBusy_;
    return stats;
}

} // namespace ssla::perf

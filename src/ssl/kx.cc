#include "ssl/kx.hh"

#include "crypto/md5.hh"
#include "crypto/sha1.hh"
#include "perf/probe.hh"
#include "util/bytes.hh"

namespace ssla::ssl
{

Bytes
serverKxDigest(const Bytes &client_random, const Bytes &server_random,
               const Bytes &params)
{
    crypto::Md5 md5;
    md5.update(client_random);
    md5.update(server_random);
    md5.update(params);
    Bytes digest = md5.final();

    crypto::Sha1 sha;
    sha.update(client_random);
    sha.update(server_random);
    sha.update(params);
    append(digest, sha.final());
    return digest;
}

Bytes
signServerKeyExchange(crypto::Provider &provider,
                      const crypto::RsaPrivateKey &key,
                      const Bytes &client_random,
                      const Bytes &server_random, const Bytes &params)
{
    // The provider's sign op self-probes as rsa_private_encryption.
    return provider.rsaSign(
        key, serverKxDigest(client_random, server_random, params));
}

bool
verifyServerKeyExchange(const crypto::RsaPublicKey &key,
                        const Bytes &client_random,
                        const Bytes &server_random, const Bytes &params,
                        const Bytes &signature)
{
    return crypto::rsaVerify(
        key, serverKxDigest(client_random, server_random, params),
        signature);
}

} // namespace ssla::ssl

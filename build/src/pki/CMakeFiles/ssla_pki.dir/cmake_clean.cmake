file(REMOVE_RECURSE
  "CMakeFiles/ssla_pki.dir/cert.cc.o"
  "CMakeFiles/ssla_pki.dir/cert.cc.o.d"
  "CMakeFiles/ssla_pki.dir/der.cc.o"
  "CMakeFiles/ssla_pki.dir/der.cc.o.d"
  "libssla_pki.a"
  "libssla_pki.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssla_pki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

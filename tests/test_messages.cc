/**
 * @file
 * Handshake message encode/parse tests.
 */

#include <gtest/gtest.h>

#include "ssl/messages.hh"
#include "util/hex.hh"
#include "util/rng.hh"

namespace
{

using namespace ssla;
using namespace ssla::ssl;

TEST(HandshakeFraming, EncodeLayout)
{
    HandshakeMessage msg{HandshakeType::ClientHello, Bytes{1, 2, 3}};
    Bytes wire = msg.encode();
    EXPECT_EQ(hexEncode(wire), "01000003010203");
}

TEST(HandshakeFraming, ParseRoundTrip)
{
    HandshakeMessage msg{HandshakeType::Finished, Bytes(36, 0xaa)};
    Bytes wire = msg.encode();
    size_t offset = 0;
    auto parsed = HandshakeMessage::parse(wire, offset);
    ASSERT_TRUE(parsed);
    EXPECT_EQ(parsed->type, HandshakeType::Finished);
    EXPECT_EQ(parsed->body, msg.body);
    EXPECT_EQ(offset, wire.size());
}

TEST(HandshakeFraming, PartialMessageReturnsNullopt)
{
    HandshakeMessage msg{HandshakeType::Certificate, Bytes(100)};
    Bytes wire = msg.encode();
    for (size_t cut : {0u, 1u, 3u, 4u, 50u, 103u}) {
        Bytes partial(wire.begin(), wire.begin() + cut);
        size_t offset = 0;
        EXPECT_FALSE(HandshakeMessage::parse(partial, offset));
        EXPECT_EQ(offset, 0u);
    }
}

TEST(HandshakeFraming, MultipleMessagesInOneBuffer)
{
    HandshakeMessage a{HandshakeType::ServerHello, Bytes{1}};
    HandshakeMessage b{HandshakeType::ServerHelloDone, Bytes{}};
    Bytes wire = a.encode();
    append(wire, b.encode());

    size_t offset = 0;
    auto first = HandshakeMessage::parse(wire, offset);
    auto second = HandshakeMessage::parse(wire, offset);
    ASSERT_TRUE(first);
    ASSERT_TRUE(second);
    EXPECT_EQ(first->type, HandshakeType::ServerHello);
    EXPECT_EQ(second->type, HandshakeType::ServerHelloDone);
    EXPECT_EQ(offset, wire.size());
    EXPECT_FALSE(HandshakeMessage::parse(wire, offset));
}

TEST(ClientHello, EncodeParseRoundTrip)
{
    ClientHelloMsg msg;
    msg.random = Xoshiro256(1).bytes(32);
    msg.sessionId = Xoshiro256(2).bytes(16);
    msg.cipherSuites = {0x000a, 0x002f, 0x0005};
    msg.compressionMethods = {0};

    ClientHelloMsg back = ClientHelloMsg::parse(msg.encode());
    EXPECT_EQ(back.version, 0x0300);
    EXPECT_EQ(back.random, msg.random);
    EXPECT_EQ(back.sessionId, msg.sessionId);
    EXPECT_EQ(back.cipherSuites, msg.cipherSuites);
    EXPECT_EQ(back.compressionMethods, msg.compressionMethods);
}

TEST(ClientHello, EmptySessionId)
{
    ClientHelloMsg msg;
    msg.random = Bytes(32, 7);
    msg.cipherSuites = {0x000a};
    ClientHelloMsg back = ClientHelloMsg::parse(msg.encode());
    EXPECT_TRUE(back.sessionId.empty());
}

TEST(ClientHello, MalformedThrows)
{
    EXPECT_THROW(ClientHelloMsg::parse(Bytes{0x03}), SslError);
    // Odd cipher-suite length.
    ClientHelloMsg msg;
    msg.random = Bytes(32, 7);
    msg.cipherSuites = {0x000a};
    Bytes wire = msg.encode();
    wire[2 + 32 + 1] = 0x00; // session id len stays 0
    wire[2 + 32 + 1 + 1] = 0x03; // suite bytes length = 3 (odd)
    EXPECT_THROW(ClientHelloMsg::parse(wire), SslError);
}

TEST(ServerHello, EncodeParseRoundTrip)
{
    ServerHelloMsg msg;
    msg.random = Xoshiro256(3).bytes(32);
    msg.sessionId = Xoshiro256(4).bytes(32);
    msg.cipherSuite = 0x0035;

    ServerHelloMsg back = ServerHelloMsg::parse(msg.encode());
    EXPECT_EQ(back.random, msg.random);
    EXPECT_EQ(back.sessionId, msg.sessionId);
    EXPECT_EQ(back.cipherSuite, 0x0035);
    EXPECT_EQ(back.compressionMethod, 0);
}

TEST(ServerHello, TruncatedThrows)
{
    ServerHelloMsg msg;
    msg.random = Bytes(32, 1);
    Bytes wire = msg.encode();
    wire.resize(10);
    EXPECT_THROW(ServerHelloMsg::parse(wire), SslError);
}

TEST(CertificateMsg, ChainRoundTrip)
{
    CertificateMsg msg;
    msg.chain.push_back(Xoshiro256(5).bytes(300));
    msg.chain.push_back(Xoshiro256(6).bytes(280));

    CertificateMsg back = CertificateMsg::parse(msg.encode());
    ASSERT_EQ(back.chain.size(), 2u);
    EXPECT_EQ(back.chain[0], msg.chain[0]);
    EXPECT_EQ(back.chain[1], msg.chain[1]);
}

TEST(CertificateMsg, EmptyChain)
{
    CertificateMsg msg;
    CertificateMsg back = CertificateMsg::parse(msg.encode());
    EXPECT_TRUE(back.chain.empty());
}

TEST(ClientKeyExchange, BodyIsRawCiphertext)
{
    // SSLv3 carries the encrypted pre-master with no length prefix.
    ClientKeyExchangeMsg msg;
    msg.encryptedPreMaster = Xoshiro256(7).bytes(128);
    Bytes wire = msg.encode();
    EXPECT_EQ(wire, msg.encryptedPreMaster);
    EXPECT_EQ(ClientKeyExchangeMsg::parse(wire).encryptedPreMaster,
              msg.encryptedPreMaster);
}

TEST(Finished, RoundTripAndValidation)
{
    FinishedMsg msg;
    msg.verifyData = Bytes(36, 0x77);
    EXPECT_EQ(FinishedMsg::parse(msg.encode()).verifyData,
              msg.verifyData);
    EXPECT_THROW(FinishedMsg::parse(Bytes(35)), SslError);
    EXPECT_THROW(FinishedMsg::parse(Bytes(37)), SslError);
}

} // anonymous namespace

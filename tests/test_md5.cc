/**
 * @file
 * MD5 tests: the RFC 1321 appendix vectors plus incremental-update,
 * clone and boundary-length properties.
 */

#include <gtest/gtest.h>

#include "crypto/md5.hh"
#include "util/bytes.hh"
#include "util/hex.hh"
#include "util/rng.hh"

namespace
{

using namespace ssla;
using crypto::Md5;

std::string
md5Hex(const std::string &input)
{
    return hexEncode(Md5::hash(toBytes(input)));
}

TEST(Md5, Rfc1321Vectors)
{
    // The complete test suite from RFC 1321 appendix A.5.
    EXPECT_EQ(md5Hex(""), "d41d8cd98f00b204e9800998ecf8427e");
    EXPECT_EQ(md5Hex("a"), "0cc175b9c0f1b6a831c399e269772661");
    EXPECT_EQ(md5Hex("abc"), "900150983cd24fb0d6963f7d28e17f72");
    EXPECT_EQ(md5Hex("message digest"),
              "f96b697d7cb7938d525a2f31aaf161d0");
    EXPECT_EQ(md5Hex("abcdefghijklmnopqrstuvwxyz"),
              "c3fcd3d76192e4007dfb496cca67e13b");
    EXPECT_EQ(md5Hex("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuv"
                     "wxyz0123456789"),
              "d174ab98d277d9f5a5611c2c9f419d9f");
    EXPECT_EQ(md5Hex("1234567890123456789012345678901234567890123456789"
                     "0123456789012345678901234567890"),
              "57edf4a22be3c955ac49da2e2107b67a");
}

TEST(Md5, IncrementalMatchesOneShot)
{
    Xoshiro256 rng(1);
    Bytes data = rng.bytes(1000);
    Bytes oneshot = Md5::hash(data);

    // Feed in awkward chunk sizes.
    for (size_t chunk : {1u, 3u, 63u, 64u, 65u, 127u, 999u}) {
        Md5 md;
        for (size_t off = 0; off < data.size(); off += chunk) {
            size_t n = std::min(chunk, data.size() - off);
            md.update(data.data() + off, n);
        }
        EXPECT_EQ(md.final(), oneshot) << "chunk " << chunk;
    }
}

TEST(Md5, BoundaryLengths)
{
    // Padding boundaries: 55/56/57 bytes straddle the length field.
    for (size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 128u}) {
        Bytes data(len, 'x');
        Bytes d1 = Md5::hash(data);
        Md5 md;
        md.update(data);
        EXPECT_EQ(md.final(), d1) << "len " << len;
        EXPECT_EQ(d1.size(), 16u);
    }
}

TEST(Md5, InitResets)
{
    Md5 md;
    md.update(toBytes("garbage"));
    md.init();
    md.update(toBytes("abc"));
    EXPECT_EQ(hexEncode(md.final()),
              "900150983cd24fb0d6963f7d28e17f72");
}

TEST(Md5, CloneForksState)
{
    Md5 md;
    md.update(toBytes("ab"));
    auto fork = md.clone();
    md.update(toBytes("c"));
    fork->update(toBytes("c"));
    Bytes a = md.final();
    Bytes b = fork->final();
    EXPECT_EQ(a, b);
    EXPECT_EQ(hexEncode(a), "900150983cd24fb0d6963f7d28e17f72");
}

TEST(Md5, CloneIsIndependent)
{
    Md5 md;
    md.update(toBytes("abc"));
    auto fork = md.clone();
    fork->update(toBytes("extra"));
    // The original must be unaffected by the fork's updates.
    EXPECT_EQ(hexEncode(md.final()),
              "900150983cd24fb0d6963f7d28e17f72");
}

TEST(Md5, DifferentInputsDiffer)
{
    EXPECT_NE(Md5::hash(toBytes("abc")), Md5::hash(toBytes("abd")));
    EXPECT_NE(Md5::hash(toBytes("")), Md5::hash(Bytes{0}));
}

TEST(Md5, InterfaceMetadata)
{
    Md5 md;
    EXPECT_EQ(md.digestSize(), 16u);
    EXPECT_EQ(md.blockSize(), 64u);
    EXPECT_STREQ(md.name(), "MD5");
}

TEST(Md5, LargeInput)
{
    // "a" x 1,000,000 — the classic million-a vector.
    Md5 md;
    Bytes chunk(1000, 'a');
    for (int i = 0; i < 1000; ++i)
        md.update(chunk);
    EXPECT_EQ(hexEncode(md.final()),
              "7707d6ae4e027c70eea2a935c2296f21");
}

} // anonymous namespace

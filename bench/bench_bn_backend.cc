/**
 * @file
 * A/B gate for the bignum backend seam: the paper-era 32-bit core
 * (bn32, the Table 8/9 profiling anchor) against the 64-bit/Karatsuba
 * engine (bn64).
 *
 * Three things are measured and gated:
 *
 *   1. Correctness — RSA decrypt/sign and DH shared-secret agreement
 *      must be bit-identical across backends, on fixed vectors and on
 *      randomized inputs, plus a randomized raw-modexp differential.
 *      Any mismatch exits nonzero: a backend that is fast but wrong
 *      never lands.
 *   2. Full RSA-1024/2048 modexp A/B timing — the recorded speedup
 *      factor, gated on bn64 actually beating bn32 (each limb doubling
 *      quarters the mul-add body count; Karatsuba compounds it above
 *      1024 bits).
 *   3. A Table-8-shaped per-kernel flat profile of RSA-1024 decryption
 *      on each backend, so the anatomy shift (bn_mul_add_words ->
 *      bn64_mul_add_words) is visible in one artifact.
 *
 * Usage:
 *   ./bench_bn_backend [--smoke]   # JSON (BENCH_bn_backend.json) on
 *                                  # stdout; exit 0 iff every gate holds
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bn/engine.hh"
#include "common.hh"
#include "crypto/dh.hh"
#include "crypto/pkcs1.hh"
#include "perf/probe.hh"
#include "util/cycles.hh"

using namespace ssla;
using namespace ssla::bench;
using bn::BigNum;

namespace
{

/** Deterministic value of exactly @p bits (top bit pinned). */
BigNum
fixedBits(Xoshiro256 &rng, size_t bits, bool odd = false)
{
    Bytes b = rng.bytes((bits + 7) / 8);
    b[0] |= 0x80;
    if (odd)
        b[b.size() - 1] |= 0x01;
    return BigNum::fromBytesBE(b);
}

/** Clone @p key onto @p engine (same components, different backend). */
crypto::RsaPrivateKey
rekey(const crypto::RsaPrivateKey &key, const bn::Engine &engine)
{
    return crypto::RsaPrivateKey(key.publicKey().n, key.publicKey().e,
                                 key.d(), key.p(), key.q(), &engine);
}

/**
 * RSA decrypt + sign differential on one key size: every randomized
 * input must produce bit-identical outputs on both backends.
 */
bool
rsaIdentical(size_t bits, int iters)
{
    const auto &kp = benchKey(bits);
    crypto::RsaPrivateKey k32 = rekey(*kp.priv, bn::bn32Engine());
    crypto::RsaPrivateKey k64 = rekey(*kp.priv, bn::bn64Engine());
    crypto::RandomPool pool(Bytes{0xab, static_cast<uint8_t>(bits)});
    Xoshiro256 rng(0xab00 + bits);

    for (int i = 0; i < iters; ++i) {
        Bytes msg = rng.bytes(1 + rng.nextBelow(bits / 8 - 12));
        Bytes cipher = crypto::rsaPublicEncrypt(kp.pub, msg, pool);
        Bytes p32 = crypto::rsaPrivateDecrypt(k32, cipher);
        Bytes p64 = crypto::rsaPrivateDecrypt(k64, cipher);
        if (p32 != p64 || p32 != msg)
            return false;
        Bytes digest = rng.bytes(36); // MD5||SHA1, the ssl3 signing input
        if (crypto::rsaSign(k32, digest) != crypto::rsaSign(k64, digest))
            return false;
    }
    return true;
}

/** DH agreement under each backend: identical shared secrets. */
bool
dhIdentical(int iters)
{
    const crypto::DhParams &group = crypto::oakleyGroup2();
    for (int i = 0; i < iters; ++i) {
        crypto::RandomPool pa(Bytes{0xd4, static_cast<uint8_t>(i)});
        crypto::RandomPool pb(Bytes{0xd5, static_cast<uint8_t>(i)});
        crypto::DhKeyPair a = crypto::dhGenerateKey(group, pa);
        crypto::DhKeyPair b = crypto::dhGenerateKey(group, pb);
        Bytes z32a, z32b, z64a, z64b;
        {
            bn::EngineScope scope(bn::bn32Engine());
            z32a = crypto::dhComputeShared(group, b.pub, a.priv);
            z32b = crypto::dhComputeShared(group, a.pub, b.priv);
        }
        {
            bn::EngineScope scope(bn::bn64Engine());
            z64a = crypto::dhComputeShared(group, b.pub, a.priv);
            z64b = crypto::dhComputeShared(group, a.pub, b.priv);
        }
        if (z32a != z32b || z32a != z64a || z64a != z64b)
            return false;
    }
    return true;
}

/** Raw modexp differential: fixed vectors plus randomized inputs. */
bool
modexpIdentical(int iters)
{
    // Fixed vector with an independently known answer first.
    if (bn::bn64Engine().modExp(BigNum(2), BigNum(128),
                                BigNum::fromHex("10001")) !=
        bn::bn32Engine().modExp(BigNum(2), BigNum(128),
                                BigNum::fromHex("10001")))
        return false;
    Xoshiro256 rng(0x3a0d);
    for (size_t bits : {512u, 1024u, 1056u, 2048u}) {
        BigNum m = fixedBits(rng, bits, /*odd=*/true);
        for (int i = 0; i < iters; ++i) {
            BigNum base = fixedBits(rng, bits).mod(m);
            BigNum exp = fixedBits(rng, bits);
            if (bn::bn32Engine().modExp(base, exp, m) !=
                bn::bn64Engine().modExp(base, exp, m))
                return false;
        }
    }
    return true;
}

struct ModexpCell
{
    size_t bits;
    double ms32;
    double ms64;
    double speedup;
};

/**
 * Full (non-CRT) modexp timing at @p bits: modulus-sized base and
 * exponent, the operation RSA performs per CRT half and DHE per side.
 */
ModexpCell
timeModexp(size_t bits, int reps)
{
    Xoshiro256 rng(0x7153 + bits);
    BigNum m = fixedBits(rng, bits, /*odd=*/true);
    BigNum base = fixedBits(rng, bits).mod(m);
    BigNum exp = fixedBits(rng, bits);

    auto run = [&](const bn::Engine &e) {
        return static_cast<double>(medianCycles(
                   [&] { e.modExp(base, exp, m); }, reps)) /
               cycleHz() * 1e3;
    };
    ModexpCell cell;
    cell.bits = bits;
    cell.ms32 = run(bn::bn32Engine());
    cell.ms64 = run(bn::bn64Engine());
    cell.speedup = cell.ms64 > 0 ? cell.ms32 / cell.ms64 : 0.0;
    return cell;
}

struct ProfileRow
{
    std::string function;
    double pct;
    double callsPerOp;
};

/**
 * Table-8-shaped flat profile of RSA-1024 private decryption on
 * @p engine: top functions by exclusive cycles.
 */
std::vector<ProfileRow>
profileRsa(const bn::Engine &engine, int runs)
{
    const auto &kp = benchKey(1024);
    crypto::RsaPrivateKey key = rekey(*kp.priv, engine);
    crypto::RandomPool pool(Bytes{0x9e});
    Bytes cipher =
        crypto::rsaPublicEncrypt(kp.pub, Bytes(48, 0x17), pool);
    crypto::rsaPrivateDecrypt(key, cipher); // warm-up

    perf::PerfContext ctx(true); // fine-grained: bn kernels report
    {
        perf::ContextScope scope(&ctx);
        for (int i = 0; i < runs; ++i)
            crypto::rsaPrivateDecrypt(key, cipher);
    }

    uint64_t total = ctx.totalExclusive();
    std::vector<std::pair<std::string, perf::Counter>> rows(
        ctx.counters().begin(), ctx.counters().end());
    std::sort(rows.begin(), rows.end(),
              [](const auto &a, const auto &b) {
                  return a.second.exclusive > b.second.exclusive;
              });

    std::vector<ProfileRow> out;
    for (const auto &[name, counter] : rows) {
        if (out.size() >= 8)
            break;
        out.push_back(
            {name,
             100.0 * static_cast<double>(counter.exclusive) /
                 static_cast<double>(total),
             static_cast<double>(counter.calls) / runs});
    }
    return out;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        if (!std::strcmp(argv[i], "--smoke"))
            smoke = true;

    warmUpCpu();
    const int diffIters = smoke ? 3 : 12;
    const int timeReps = smoke ? 5 : 15;
    const int profileRuns = smoke ? 10 : 30;

    bool rsa_ok =
        rsaIdentical(512, diffIters) && rsaIdentical(1024, diffIters);
    bool dh_ok = dhIdentical(smoke ? 2 : 6);
    bool modexp_ok = modexpIdentical(smoke ? 1 : 3);

    std::vector<ModexpCell> cells;
    cells.push_back(timeModexp(1024, timeReps));
    cells.push_back(timeModexp(2048, timeReps));
    bool faster = true;
    for (const ModexpCell &c : cells)
        faster = faster && c.speedup > 1.0;

    bool pass = rsa_ok && dh_ok && modexp_ok && faster;

    JsonWriter j;
    j.beginObject();
    j.field("bench", "bn_backend");
    j.field("smoke", smoke);
    j.field("cycle_hz", cycleHz(), 0);
    j.beginObject("gate");
    j.field("pass", pass);
    j.field("rsa_identical", rsa_ok);
    j.field("dh_identical", dh_ok);
    j.field("modexp_identical", modexp_ok);
    j.field("bn64_faster", faster);
    j.endObject();

    j.beginArray("modexp");
    for (const ModexpCell &c : cells) {
        j.beginObject();
        j.field("bits", static_cast<uint64_t>(c.bits));
        j.field("bn32_ms", c.ms32, 3);
        j.field("bn64_ms", c.ms64, 3);
        j.field("speedup", c.speedup, 2);
        j.endObject();
    }
    j.endArray();

    j.beginArray("profiles");
    struct
    {
        const char *name;
        const bn::Engine &engine;
    } backends[] = {{"bn32", bn::bn32Engine()},
                    {"bn64", bn::bn64Engine()}};
    for (const auto &b : backends) {
        j.beginObject();
        j.field("backend", b.name);
        j.beginArray("rows");
        for (const ProfileRow &row : profileRsa(b.engine, profileRuns)) {
            j.beginObject();
            j.field("function", row.function);
            j.field("pct", row.pct, 2);
            j.field("calls_per_op", row.callsPerOp, 1);
            j.endObject();
        }
        j.endArray();
        j.endObject();
    }
    j.endArray();
    j.endObject();

    return pass ? 0 : 1;
}

/**
 * @file
 * Reproduces Table 9: the instruction body of bn_mul_add_words().
 *
 * The paper lists the nine x86 instructions of the kernel's inner
 * iteration (movl/mull/addl/adcl chain). We print the metered op mix
 * of one kernel invocation normalized per word processed, which is
 * exactly that body plus amortized loop control.
 */

#include <cstdio>

#include "bn/kernels.hh"
#include "bn/kernels64.hh"
#include "perf/report.hh"

using namespace ssla;
using namespace ssla::bn;
using perf::TablePrinter;

int
main()
{
    constexpr size_t words = 32; // one RSA-1024 operand
    Limb r[words + 1] = {};
    Limb a[words];
    for (size_t i = 0; i < words; ++i)
        a[i] = static_cast<Limb>(0x9e3779b9u * (i + 1));

    perf::CountingMeter meter;
    bnMulAddWordsT(r, a, words, 0xdeadbeef, meter);

    TablePrinter table(
        "Table 9: Op mix of bn_mul_add_words (per 32-word call, "
        "normalized per word)");
    table.setHeader({"op", "count", "per word", "paper body"});
    for (const auto &[name, share] : meter.hist.topOps(12)) {
        (void)share;
        // Recover raw counts for display.
        for (size_t i = 0; i < perf::numOpClasses; ++i) {
            auto cls = static_cast<perf::OpClass>(i);
            if (name != perf::opClassName(cls))
                continue;
            uint64_t count = meter.hist.count(cls);
            const char *body = "";
            if (name == "movl")
                body = "4x (load a[i], load/store r[i], carry move)";
            else if (name == "mull")
                body = "1x (widening multiply)";
            else if (name == "addl")
                body = "2x (+ loop counter, amortized)";
            else if (name == "adcl")
                body = "2x (carry chain)";
            else if (name == "jnz" || name == "cmpl")
                body = "loop control (4x unrolled)";
            table.addRow({name, perf::fmtCount(count),
                          perf::fmtF(static_cast<double>(count) / words,
                                     2),
                          body});
        }
    }
    table.print();

    std::printf("\ntotal ops per word: %.2f "
                "(paper's Table 9 body: 9 instructions + loop)\n",
                static_cast<double>(meter.hist.total()) / words);
    std::printf("paper's listed body: movl, mull, addl, movl, adcl, "
                "addl, adcl, movl, movl\n");

    // ------------------------------------------------------------------
    // The 64-bit counterpart (bn64_mul_add_words): the same 1024-bit
    // operand is 16 limbs instead of 32, so the body runs half as many
    // times while each op is the 64-bit form (movq/mulq/addq/adcq).
    // The paper rows above stay untouched as the x86-32 anchor.
    constexpr size_t words64 = words / 2; // the same 1024-bit operand
    Limb64 r64[words64 + 1] = {};
    Limb64 a64[words64];
    for (size_t i = 0; i < words64; ++i)
        a64[i] = 0x9e3779b97f4a7c15ull * (i + 1);

    perf::CountingMeter meter64;
    bn64MulAddWordsT(r64, a64, words64, 0xdeadbeefcafef00dull, meter64);

    TablePrinter table64(
        "Table 9b: Op mix of bn64_mul_add_words (per 16-word call, "
        "same 1024-bit operand, normalized per 64-bit word)");
    table64.setHeader({"op", "count", "per word", "x86-64 body"});
    for (const auto &[name, share] : meter64.hist.topOps(12)) {
        (void)share;
        for (size_t i = 0; i < perf::numOpClasses; ++i) {
            auto cls = static_cast<perf::OpClass>(i);
            if (name != perf::opClassName(cls))
                continue;
            uint64_t count = meter64.hist.count(cls);
            const char *body = "";
            if (name == "movl")
                body = "4x movq (load a[i], load/store r[i], carry)";
            else if (name == "mull")
                body = "1x mulq (64x64->128 widening multiply)";
            else if (name == "addl")
                body = "2x addq (+ loop counter, amortized)";
            else if (name == "adcl")
                body = "2x adcq (carry chain)";
            else if (name == "jnz" || name == "cmpl")
                body = "loop control (4x unrolled)";
            table64.addRow(
                {name, perf::fmtCount(count),
                 perf::fmtF(static_cast<double>(count) / words64, 2),
                 body});
        }
    }
    table64.print();

    // The headline delta: per-word bodies are the same shape, so the
    // win is entirely in how many words a 1024-bit operand takes.
    double ops32 = static_cast<double>(meter.hist.total());
    double ops64 = static_cast<double>(meter64.hist.total());
    std::printf("\nper-word op count: %.2f (32-bit) vs %.2f (64-bit) "
                "-- same body shape, double the work per op\n",
                ops32 / words, ops64 / words64);
    std::printf("ops per 1024-bit operand pass: %.0f (32-bit) vs %.0f "
                "(64-bit) = %.2fx fewer dynamic ops\n",
                ops32, ops64, ops32 / ops64);
    std::printf("(a full n-limb product runs the body n times per "
                "outer word: 4x fewer body executions per product "
                "before Karatsuba)\n");
    return 0;
}

#include "perf/probe.hh"

#include <mutex>

#include "obs/metrics.hh"

namespace ssla::perf
{

namespace
{
thread_local PerfContext *tlsContext = nullptr;
thread_local FuncProbe *tlsProbeTop = nullptr;

// Probe machinery is not free: the rdcycles pair inside a probe's own
// span inflates its measurement ("inner" overhead), and the probe
// object's construction/destruction outside that span inflates the
// *parent's* exclusive time ("outer" overhead) — which matters when a
// parent makes tens of thousands of probed kernel calls (Table 8).
// Both are calibrated once with empty probes and subtracted.
//
// Worker threads each open a ContextScope, so calibration is
// serialized through call_once: the first thread runs it, the rest
// block until the constants are published (the once_flag's
// happens-before covers the plain uint64_t writes). The re-entrancy
// guard is thread_local because the calibration body itself opens a
// ContextScope on the calibrating thread.
std::once_flag calibrationOnce;
thread_local bool calibrating = false;
uint64_t innerOverhead = 0;
uint64_t outerOverhead = 0;

void
ensureCalibrated()
{
    if (calibrating)
        return;
    std::call_once(calibrationOnce, [] {
        calibrating = true;
        {
            PerfContext ctx(true);
            ContextScope scope(&ctx);
            constexpr int n = 8192;
            // Warm-up.
            for (int i = 0; i < 64; ++i)
                FuncProbe probe("calibration");
            ctx.clear();
            uint64_t t0 = rdcycles();
            for (int i = 0; i < n; ++i)
                FuncProbe probe("calibration");
            uint64_t t1 = rdcycles();
            outerOverhead = (t1 - t0) / n;
            innerOverhead =
                ctx.counters().at("calibration").inclusive / n;
            if (outerOverhead < innerOverhead)
                outerOverhead = innerOverhead;
        }
        calibrating = false;
    });
}

} // anonymous namespace

PerfContext *
currentContext()
{
    return tlsContext;
}

ContextScope::ContextScope(PerfContext *ctx)
    : ctx_(ctx), prev_(tlsContext)
{
    if (ctx_) {
        ctx_->bindOwner();
        ensureCalibrated();
    }
    tlsContext = ctx_;
}

ContextScope::~ContextScope()
{
    if (ctx_)
        ctx_->releaseOwner();
    tlsContext = prev_;
}

FuncProbe::FuncProbe(const char *name, ProbeLevel level)
    : ctx_(tlsContext), name_(name)
{
    if (ctx_ && level == ProbeLevel::Fine && !ctx_->collectFine())
        ctx_ = nullptr;
    if (ctx_) {
        parent_ = tlsProbeTop;
        tlsProbeTop = this;
        start_ = rdcycles();
    }
}

FuncProbe::~FuncProbe()
{
    if (!ctx_)
        return;
    uint64_t total = rdcycles() - start_;
    uint64_t inner = calibrating ? 0 : innerOverhead;
    uint64_t outer = calibrating ? 0 : outerOverhead;
    // Remove own measurement bias from both views.
    total = total >= inner ? total - inner : 0;
    uint64_t self = total >= childCycles_ ? total - childCycles_ : 0;
    ctx_->add(name_, total, self);
    tlsProbeTop = parent_;
    if (parent_) {
        // Charge the parent for the child's work plus the probe
        // machinery it paid for, so neither shows up as parent self
        // time.
        parent_->childCycles_ += total + outer;
    }
}

const std::map<std::string, Counter> &
PerfContext::counters() const
{
    assertOwned();
    if (dirty_) {
        snapshot_.clear();
        for (const auto &[name, c] : raw_) {
            auto &merged = snapshot_[name];
            merged.inclusive += c.inclusive;
            merged.exclusive += c.exclusive;
            merged.calls += c.calls;
        }
        dirty_ = false;
    }
    return snapshot_;
}

uint64_t
PerfContext::cyclesFor(const std::string &name) const
{
    const auto &all = counters();
    auto it = all.find(name);
    return it == all.end() ? 0 : it->second.inclusive;
}

uint64_t
PerfContext::cyclesFor(const std::vector<std::string> &names) const
{
    uint64_t sum = 0;
    for (const auto &n : names)
        sum += cyclesFor(n);
    return sum;
}

uint64_t
PerfContext::totalExclusive() const
{
    uint64_t sum = 0;
    for (const auto &[name, c] : counters())
        sum += c.exclusive;
    return sum;
}

void
PerfContext::publishTo(obs::MetricsRegistry &reg,
                       const std::string &prefix) const
{
    for (const auto &[name, c] : counters()) {
        reg.counter(prefix + name + ".inclusive_cycles")
            .inc(c.inclusive);
        reg.counter(prefix + name + ".exclusive_cycles")
            .inc(c.exclusive);
        reg.counter(prefix + name + ".calls").inc(c.calls);
    }
}

} // namespace ssla::perf

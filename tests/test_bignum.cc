/**
 * @file
 * Tests for the BigNum layer: representation, string/byte conversions,
 * arithmetic identities and randomized property sweeps against the
 * division invariant a == q*b + r.
 */

#include <gtest/gtest.h>

#include "bn/bignum.hh"
#include "util/hex.hh"
#include "util/rng.hh"

namespace
{

using namespace ssla;
using bn::BigNum;

TEST(BigNum, ZeroProperties)
{
    BigNum z;
    EXPECT_TRUE(z.isZero());
    EXPECT_FALSE(z.isOne());
    EXPECT_FALSE(z.isOdd());
    EXPECT_FALSE(z.isNegative());
    EXPECT_EQ(z.bitLength(), 0u);
    EXPECT_EQ(z.byteLength(), 0u);
    EXPECT_EQ(z.toHex(), "0");
    EXPECT_EQ(z.toDecimal(), "0");
    EXPECT_TRUE(z.toBytesBE().empty());
}

TEST(BigNum, SmallValues)
{
    BigNum one(1);
    EXPECT_TRUE(one.isOne());
    EXPECT_TRUE(one.isOdd());
    EXPECT_EQ(one.bitLength(), 1u);

    BigNum big(0x123456789abcdef0ULL);
    EXPECT_EQ(big.toHex(), "123456789abcdef0");
    EXPECT_EQ(big.bitLength(), 61u);
}

TEST(BigNum, FromInt)
{
    EXPECT_EQ(BigNum::fromInt(-5).toDecimal(), "-5");
    EXPECT_EQ(BigNum::fromInt(5).toDecimal(), "5");
    EXPECT_EQ(BigNum::fromInt(0).toDecimal(), "0");
    EXPECT_EQ(BigNum::fromInt(INT64_MIN).toDecimal(),
              "-9223372036854775808");
}

TEST(BigNum, HexRoundTrip)
{
    const char *cases[] = {
        "1", "ff", "100", "deadbeef", "123456789abcdef0123456789abcdef",
        "-1234", "ffffffff", "100000000",
    };
    for (const char *c : cases)
        EXPECT_EQ(BigNum::fromHex(c).toHex(), c);
}

TEST(BigNum, DecimalRoundTrip)
{
    const char *cases[] = {
        "0", "1", "10", "4294967295", "4294967296",
        "340282366920938463463374607431768211456", "-99999999999999999",
    };
    for (const char *c : cases)
        EXPECT_EQ(BigNum::fromDecimal(c).toDecimal(), c);
}

TEST(BigNum, BadStringsThrow)
{
    EXPECT_THROW(BigNum::fromHex(""), std::invalid_argument);
    EXPECT_THROW(BigNum::fromHex("xyz"), std::invalid_argument);
    EXPECT_THROW(BigNum::fromDecimal(""), std::invalid_argument);
    EXPECT_THROW(BigNum::fromDecimal("12a"), std::invalid_argument);
}

TEST(BigNum, BytesRoundTrip)
{
    Bytes data = hexDecode("0102030405060708090a0b0c0d0e0f");
    BigNum n = BigNum::fromBytesBE(data);
    EXPECT_EQ(n.toBytesBE(), data);
}

TEST(BigNum, BytesLeadingZerosStripped)
{
    Bytes data = hexDecode("0000ff01");
    BigNum n = BigNum::fromBytesBE(data);
    EXPECT_EQ(n.toBytesBE(), hexDecode("ff01"));
    EXPECT_EQ(n.byteLength(), 2u);
}

TEST(BigNum, BytesFixedWidth)
{
    BigNum n = BigNum::fromHex("abcd");
    EXPECT_EQ(hexEncode(n.toBytesBE(4)), "0000abcd");
    EXPECT_THROW(n.toBytesBE(1), std::length_error);
}

TEST(BigNum, Comparison)
{
    BigNum a = BigNum::fromDecimal("100");
    BigNum b = BigNum::fromDecimal("200");
    BigNum na = BigNum::fromInt(-100);
    BigNum nb = BigNum::fromInt(-200);
    EXPECT_LT(a, b);
    EXPECT_GT(b, a);
    EXPECT_LT(na, a);
    EXPECT_LT(nb, na);
    EXPECT_EQ(a, BigNum(100));
    EXPECT_EQ(a.cmpAbs(na), 0);
}

TEST(BigNum, AdditionSigns)
{
    BigNum a(7), b(5);
    EXPECT_EQ((a + b).toDecimal(), "12");
    EXPECT_EQ((a - b).toDecimal(), "2");
    EXPECT_EQ((b - a).toDecimal(), "-2");
    EXPECT_EQ((-a + b).toDecimal(), "-2");
    EXPECT_EQ((-a - b).toDecimal(), "-12");
    EXPECT_EQ((a - a).toDecimal(), "0");
}

TEST(BigNum, CarryPropagation)
{
    BigNum max32 = BigNum::fromHex("ffffffff");
    EXPECT_EQ((max32 + BigNum(1)).toHex(), "100000000");
    BigNum max96 = BigNum::fromHex("ffffffffffffffffffffffff");
    EXPECT_EQ((max96 + BigNum(1)).toHex(), "1000000000000000000000000");
    EXPECT_EQ((max96 + BigNum(1) - BigNum(1)).toHex(),
              "ffffffffffffffffffffffff");
}

TEST(BigNum, MultiplySmall)
{
    EXPECT_EQ((BigNum(6) * BigNum(7)).toDecimal(), "42");
    EXPECT_EQ((BigNum(6) * BigNum()).toDecimal(), "0");
    EXPECT_EQ((BigNum::fromInt(-6) * BigNum(7)).toDecimal(), "-42");
    EXPECT_EQ((BigNum::fromInt(-6) * BigNum::fromInt(-7)).toDecimal(),
              "42");
}

TEST(BigNum, MultiplyKnownLarge)
{
    BigNum a = BigNum::fromDecimal("123456789012345678901234567890");
    BigNum b = BigNum::fromDecimal("987654321098765432109876543210");
    EXPECT_EQ((a * b).toDecimal(),
              "1219326311370217952261850327336229233"
              "32237463801111263526900");
}

TEST(BigNum, SqrMatchesMul)
{
    Xoshiro256 rng(11);
    for (int i = 0; i < 100; ++i) {
        BigNum a = BigNum::fromBytesBE(rng.bytes(1 + rng.nextBelow(40)));
        EXPECT_EQ(a.sqr(), a * a);
    }
}

TEST(BigNum, ShiftsInverse)
{
    BigNum a = BigNum::fromHex("123456789abcdef");
    for (size_t s : {1u, 7u, 31u, 32u, 33u, 64u, 100u}) {
        EXPECT_EQ(a.shiftLeft(s).shiftRight(s), a) << "shift " << s;
        // Left shift multiplies by 2^s.
        BigNum pow2 = BigNum(1).shiftLeft(s);
        EXPECT_EQ(a.shiftLeft(s), a * pow2);
    }
}

TEST(BigNum, ShiftRightDropsBits)
{
    EXPECT_EQ(BigNum(0xff).shiftRight(4).toHex(), "f");
    EXPECT_TRUE(BigNum(1).shiftRight(1).isZero());
    EXPECT_TRUE(BigNum(0xff).shiftRight(100).isZero());
}

TEST(BigNum, TestSetBit)
{
    BigNum n;
    n.setBit(100);
    EXPECT_TRUE(n.testBit(100));
    EXPECT_FALSE(n.testBit(99));
    EXPECT_EQ(n.bitLength(), 101u);
    EXPECT_EQ(n, BigNum(1).shiftLeft(100));
}

TEST(BigNum, DivisionSmall)
{
    EXPECT_EQ((BigNum(42) / BigNum(7)).toDecimal(), "6");
    EXPECT_EQ((BigNum(43) % BigNum(7)).toDecimal(), "1");
    EXPECT_EQ((BigNum(5) / BigNum(7)).toDecimal(), "0");
    EXPECT_EQ((BigNum(5) % BigNum(7)).toDecimal(), "5");
}

TEST(BigNum, DivisionByZeroThrows)
{
    EXPECT_THROW(BigNum(1) / BigNum(), std::domain_error);
    EXPECT_THROW(BigNum(1) % BigNum(), std::domain_error);
}

TEST(BigNum, DivisionCSemantics)
{
    // Truncated quotient, remainder follows the dividend.
    EXPECT_EQ((BigNum::fromInt(-7) / BigNum(2)).toDecimal(), "-3");
    EXPECT_EQ((BigNum::fromInt(-7) % BigNum(2)).toDecimal(), "-1");
    EXPECT_EQ((BigNum(7) / BigNum::fromInt(-2)).toDecimal(), "-3");
    EXPECT_EQ((BigNum(7) % BigNum::fromInt(-2)).toDecimal(), "1");
}

TEST(BigNum, ModIsNonNegative)
{
    EXPECT_EQ(BigNum::fromInt(-7).mod(BigNum(5)).toDecimal(), "3");
    EXPECT_EQ(BigNum(7).mod(BigNum(5)).toDecimal(), "2");
    EXPECT_THROW(BigNum(7).mod(BigNum()), std::domain_error);
    EXPECT_THROW(BigNum(7).mod(BigNum::fromInt(-5)), std::domain_error);
}

/** Property sweep: a == q*b + r with 0 <= |r| < |b| across sizes. */
class BigNumDivisionProperty
    : public ::testing::TestWithParam<std::pair<size_t, size_t>>
{};

TEST_P(BigNumDivisionProperty, Invariant)
{
    auto [a_bytes, b_bytes] = GetParam();
    Xoshiro256 rng(a_bytes * 1000 + b_bytes);
    for (int i = 0; i < 200; ++i) {
        BigNum a = BigNum::fromBytesBE(rng.bytes(a_bytes));
        BigNum b = BigNum::fromBytesBE(rng.bytes(b_bytes));
        if (b.isZero())
            continue;
        BigNum q, r;
        BigNum::divMod(a, b, q, r);
        EXPECT_EQ(q * b + r, a);
        EXPECT_LT(r.cmpAbs(b), 0);
        EXPECT_FALSE(r.isNegative());
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, BigNumDivisionProperty,
    ::testing::Values(std::pair<size_t, size_t>{1, 1},
                      std::pair<size_t, size_t>{4, 4},
                      std::pair<size_t, size_t>{8, 3},
                      std::pair<size_t, size_t>{16, 8},
                      std::pair<size_t, size_t>{32, 16},
                      std::pair<size_t, size_t>{64, 33},
                      std::pair<size_t, size_t>{7, 13},
                      std::pair<size_t, size_t>{128, 64}));

TEST(BigNum, MulDivRoundTrip)
{
    Xoshiro256 rng(3);
    for (int i = 0; i < 100; ++i) {
        BigNum a = BigNum::fromBytesBE(rng.bytes(1 + rng.nextBelow(32)));
        BigNum b = BigNum::fromBytesBE(rng.bytes(1 + rng.nextBelow(32)));
        if (b.isZero())
            continue;
        EXPECT_EQ((a * b) / b, a);
        EXPECT_TRUE(((a * b) % b).isZero());
    }
}

TEST(BigNum, Gcd)
{
    EXPECT_EQ(BigNum::gcd(BigNum(12), BigNum(18)).toDecimal(), "6");
    EXPECT_EQ(BigNum::gcd(BigNum(17), BigNum(5)).toDecimal(), "1");
    EXPECT_EQ(BigNum::gcd(BigNum(), BigNum(5)).toDecimal(), "5");
    EXPECT_EQ(BigNum::gcd(BigNum(5), BigNum()).toDecimal(), "5");
}

TEST(BigNum, GcdDividesBoth)
{
    Xoshiro256 rng(17);
    for (int i = 0; i < 50; ++i) {
        BigNum a = BigNum::fromBytesBE(rng.bytes(12));
        BigNum b = BigNum::fromBytesBE(rng.bytes(10));
        BigNum g = BigNum::gcd(a, b);
        if (g.isZero())
            continue;
        EXPECT_TRUE((a % g).isZero());
        EXPECT_TRUE((b % g).isZero());
    }
}

TEST(BigNum, ModInverseKnown)
{
    EXPECT_EQ(BigNum::modInverse(BigNum(3), BigNum(7)).toDecimal(), "5");
    EXPECT_EQ(BigNum::modInverse(BigNum(7), BigNum(31)).toDecimal(), "9");
}

TEST(BigNum, ModInverseProperty)
{
    Xoshiro256 rng(23);
    BigNum m = BigNum::fromDecimal("1000000007"); // prime
    for (int i = 0; i < 50; ++i) {
        BigNum a = BigNum::fromBytesBE(rng.bytes(8)).mod(m);
        if (a.isZero())
            continue;
        BigNum inv = BigNum::modInverse(a, m);
        EXPECT_TRUE(BigNum::modMul(a, inv, m).isOne());
        EXPECT_LT(inv, m);
        EXPECT_FALSE(inv.isNegative());
    }
}

TEST(BigNum, ModInverseNotInvertibleThrows)
{
    EXPECT_THROW(BigNum::modInverse(BigNum(6), BigNum(9)),
                 std::domain_error);
    EXPECT_THROW(BigNum::modInverse(BigNum(0), BigNum(9)),
                 std::domain_error);
}

TEST(BigNum, ModAddSubMul)
{
    BigNum m(97);
    EXPECT_EQ(BigNum::modAdd(BigNum(90), BigNum(10), m).toDecimal(),
              "3");
    EXPECT_EQ(BigNum::modSub(BigNum(5), BigNum(10), m).toDecimal(),
              "92");
    EXPECT_EQ(BigNum::modMul(BigNum(50), BigNum(2), m).toDecimal(), "3");
}

TEST(BigNum, LimbAccessors)
{
    BigNum n = BigNum::fromHex("112233445566778899");
    EXPECT_EQ(n.size(), 3u);
    EXPECT_EQ(n.loWord(), 0x66778899u);
    EXPECT_EQ(n.limbs()[2], 0x11u);
}

TEST(BigNum, FromLimbsNormalizes)
{
    BigNum n = BigNum::fromLimbs({5, 0, 0});
    EXPECT_EQ(n.size(), 1u);
    EXPECT_EQ(n.toDecimal(), "5");
    BigNum z = BigNum::fromLimbs({0, 0}, true);
    EXPECT_TRUE(z.isZero());
    EXPECT_FALSE(z.isNegative());
}

} // anonymous namespace

#include "obs/metrics.hh"

#include <algorithm>
#include <bit>

#include "util/logging.hh"

namespace ssla::obs
{

// ---------------------------------------------------------------------
// HistogramLayout

size_t
HistogramLayout::bucketIndex(uint64_t v)
{
    if (v < linearMax)
        return static_cast<size_t>(v);
    // floor(log2(v)) >= subBits + 1 here.
    unsigned e = 63 - std::countl_zero(v);
    uint64_t sub = (v >> (e - subBits)) - subCount;
    return static_cast<size_t>(linearMax +
                               (e - (subBits + 1)) * subCount + sub);
}

uint64_t
HistogramLayout::lowerBound(size_t i)
{
    if (i < linearMax)
        return i;
    size_t off = i - linearMax;
    unsigned e = static_cast<unsigned>(off / subCount) + subBits + 1;
    uint64_t sub = off % subCount;
    return (1ull << e) + sub * (1ull << (e - subBits));
}

uint64_t
HistogramLayout::upperBound(size_t i)
{
    if (i < linearMax)
        return i + 1;
    if (i + 1 >= bucketCount)
        return ~0ull; // top bucket's bound would overflow 2^64
    return lowerBound(i + 1);
}

// ---------------------------------------------------------------------
// HistogramSnapshot

double
HistogramSnapshot::percentile(double p) const
{
    if (count == 0)
        return 0.0;
    p = std::clamp(p, 0.0, 100.0);
    // The extremes are tracked exactly; don't interpolate them.
    if (p == 0.0)
        return static_cast<double>(min);
    if (p == 100.0)
        return static_cast<double>(max);
    // Rank in (0, count]: the number of samples at or below the
    // returned value. Interpolate linearly inside the bucket that
    // crosses the rank.
    double rank = (p / 100.0) * static_cast<double>(count);
    if (rank < 1.0)
        rank = 1.0;
    uint64_t cum = 0;
    for (size_t i = 0; i < buckets.size(); ++i) {
        if (!buckets[i])
            continue;
        cum += buckets[i];
        if (static_cast<double>(cum) >= rank) {
            double lo = static_cast<double>(HistogramLayout::lowerBound(i));
            double hi = static_cast<double>(HistogramLayout::upperBound(i));
            double before = static_cast<double>(cum - buckets[i]);
            double frac =
                (rank - before) / static_cast<double>(buckets[i]);
            double v = lo + frac * (hi - lo);
            return std::clamp(v, static_cast<double>(min),
                              static_cast<double>(max));
        }
    }
    return static_cast<double>(max);
}

void
HistogramSnapshot::merge(const HistogramSnapshot &other)
{
    if (other.count == 0)
        return;
    if (count == 0) {
        *this = other;
        return;
    }
    if (buckets.size() < other.buckets.size())
        buckets.resize(other.buckets.size(), 0);
    for (size_t i = 0; i < other.buckets.size(); ++i)
        buckets[i] += other.buckets[i];
    count += other.count;
    sum += other.sum;
    min = std::min(min, other.min);
    max = std::max(max, other.max);
}

// ---------------------------------------------------------------------
// MetricsSnapshot

uint64_t
MetricsSnapshot::counter(const std::string &name) const
{
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
}

HistogramSnapshot
MetricsSnapshot::histogram(const std::string &name) const
{
    auto it = histograms.find(name);
    return it == histograms.end() ? HistogramSnapshot{} : it->second;
}

// ---------------------------------------------------------------------
// MetricsRegistry storage

/**
 * One histogram's cells in one thread's shard. Written only by the
 * owning thread; read concurrently by snapshot(), so every cell is a
 * relaxed atomic. min/max need no CAS loop for the same reason —
 * single writer.
 */
struct MetricsRegistry::HistCells
{
    std::atomic<uint64_t> buckets[HistogramLayout::bucketCount] = {};
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> min{~0ull};
    std::atomic<uint64_t> max{0};

    void
    record(uint64_t v)
    {
        buckets[HistogramLayout::bucketIndex(v)].fetch_add(
            1, std::memory_order_relaxed);
        count.fetch_add(1, std::memory_order_relaxed);
        sum.fetch_add(v, std::memory_order_relaxed);
        if (v < min.load(std::memory_order_relaxed))
            min.store(v, std::memory_order_relaxed);
        if (v > max.load(std::memory_order_relaxed))
            max.store(v, std::memory_order_relaxed);
    }
};

struct MetricsRegistry::ThreadShard
{
    std::unique_ptr<std::atomic<uint64_t>[]> counters;
    std::atomic<HistCells *> hists[maxHistograms] = {};

    ThreadShard()
        : counters(new std::atomic<uint64_t>[maxCounters])
    {
        for (size_t i = 0; i < maxCounters; ++i)
            counters[i].store(0, std::memory_order_relaxed);
    }

    ~ThreadShard()
    {
        for (auto &h : hists)
            delete h.load(std::memory_order_relaxed);
    }
};

namespace
{

std::atomic<uint64_t> nextRegistrySerial{1};

/**
 * Per-thread shard cache, keyed by registry serial (never reused, so a
 * stale entry for a destroyed registry can never be confused with a
 * live one). Most-recently-used entry is kept at the front; a process
 * touches a handful of registries, so the scan is one or two compares.
 */
struct TlsShardRef
{
    uint64_t serial;
    void *shard;
};
thread_local std::vector<TlsShardRef> tlsShards;

} // anonymous namespace

MetricsRegistry::MetricsRegistry()
    : gauges_(new std::atomic<int64_t>[maxGauges]),
      serial_(nextRegistrySerial.fetch_add(1, std::memory_order_relaxed))
{
    for (size_t i = 0; i < maxGauges; ++i)
        gauges_[i].store(0, std::memory_order_relaxed);
}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry &
MetricsRegistry::global()
{
    // Leaked deliberately: detached/worker threads may still increment
    // through cached handles during process teardown.
    static MetricsRegistry *g = new MetricsRegistry();
    return *g;
}

MetricsRegistry::ThreadShard &
MetricsRegistry::myShard()
{
    for (size_t i = 0; i < tlsShards.size(); ++i) {
        if (tlsShards[i].serial == serial_) {
            if (i)
                std::swap(tlsShards[0], tlsShards[i]);
            return *static_cast<ThreadShard *>(tlsShards[0].shard);
        }
    }
    auto shard = std::make_unique<ThreadShard>();
    ThreadShard *p = shard.get();
    {
        std::lock_guard<std::mutex> lock(m_);
        shards_.push_back(std::move(shard));
    }
    tlsShards.insert(tlsShards.begin(), TlsShardRef{serial_, p});
    return *p;
}

void
MetricsRegistry::warnOverflowOnce(const char *kind)
{
    if (!overflowWarned_) {
        overflowWarned_ = true;
        warn(std::string("MetricsRegistry: ") + kind +
             " capacity exhausted; further registrations are no-ops");
    }
}

Counter
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(m_);
    auto it = counterIds_.find(name);
    if (it != counterIds_.end())
        return Counter(this, it->second);
    if (counterNames_.size() >= maxCounters) {
        warnOverflowOnce("counter");
        return Counter();
    }
    uint32_t id = static_cast<uint32_t>(counterNames_.size());
    counterNames_.push_back(name);
    counterIds_.emplace(name, id);
    return Counter(this, id);
}

Gauge
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(m_);
    auto it = gaugeIds_.find(name);
    if (it != gaugeIds_.end())
        return Gauge(this, it->second);
    if (gaugeNames_.size() >= maxGauges) {
        warnOverflowOnce("gauge");
        return Gauge();
    }
    uint32_t id = static_cast<uint32_t>(gaugeNames_.size());
    gaugeNames_.push_back(name);
    gaugeIds_.emplace(name, id);
    return Gauge(this, id);
}

Histogram
MetricsRegistry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(m_);
    auto it = histIds_.find(name);
    if (it != histIds_.end())
        return Histogram(this, it->second);
    if (histNames_.size() >= maxHistograms) {
        warnOverflowOnce("histogram");
        return Histogram();
    }
    uint32_t id = static_cast<uint32_t>(histNames_.size());
    histNames_.push_back(name);
    histIds_.emplace(name, id);
    return Histogram(this, id);
}

void
MetricsRegistry::counterAdd(uint32_t id, uint64_t n)
{
    if (!enabled())
        return;
    myShard().counters[id].fetch_add(n, std::memory_order_relaxed);
}

void
MetricsRegistry::gaugeSet(uint32_t id, int64_t v)
{
    if (!enabled())
        return;
    gauges_[id].store(v, std::memory_order_relaxed);
}

void
MetricsRegistry::gaugeAdd(uint32_t id, int64_t delta)
{
    if (!enabled())
        return;
    gauges_[id].fetch_add(delta, std::memory_order_relaxed);
}

void
MetricsRegistry::histogramRecord(uint32_t id, uint64_t value)
{
    if (!enabled())
        return;
    ThreadShard &shard = myShard();
    HistCells *cells = shard.hists[id].load(std::memory_order_acquire);
    if (!cells) {
        // Only the owning thread allocates its cells; release-publish
        // for the snapshot reader.
        cells = new HistCells();
        shard.hists[id].store(cells, std::memory_order_release);
    }
    cells->record(value);
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MetricsSnapshot out;
    std::lock_guard<std::mutex> lock(m_);
    for (size_t id = 0; id < counterNames_.size(); ++id) {
        uint64_t sum = 0;
        for (const auto &shard : shards_)
            sum += shard->counters[id].load(std::memory_order_relaxed);
        out.counters[counterNames_[id]] = sum;
    }
    for (size_t id = 0; id < gaugeNames_.size(); ++id)
        out.gauges[gaugeNames_[id]] =
            gauges_[id].load(std::memory_order_relaxed);
    for (size_t id = 0; id < histNames_.size(); ++id) {
        HistogramSnapshot merged;
        for (const auto &shard : shards_) {
            const HistCells *cells =
                shard->hists[id].load(std::memory_order_acquire);
            if (!cells)
                continue;
            uint64_t n = cells->count.load(std::memory_order_relaxed);
            if (!n)
                continue;
            HistogramSnapshot part;
            part.count = n;
            part.sum = cells->sum.load(std::memory_order_relaxed);
            part.min = cells->min.load(std::memory_order_relaxed);
            part.max = cells->max.load(std::memory_order_relaxed);
            part.buckets.resize(HistogramLayout::bucketCount, 0);
            for (size_t b = 0; b < HistogramLayout::bucketCount; ++b)
                part.buckets[b] =
                    cells->buckets[b].load(std::memory_order_relaxed);
            merged.merge(part);
        }
        out.histograms[histNames_[id]] = std::move(merged);
    }
    return out;
}

// ---------------------------------------------------------------------
// Handles

void
Counter::inc(uint64_t n) const
{
    if (reg_)
        reg_->counterAdd(id_, n);
}

void
Gauge::set(int64_t v) const
{
    if (reg_)
        reg_->gaugeSet(id_, v);
}

void
Gauge::add(int64_t delta) const
{
    if (reg_)
        reg_->gaugeAdd(id_, delta);
}

void
Histogram::record(uint64_t value) const
{
    if (reg_)
        reg_->histogramRecord(id_, value);
}

} // namespace ssla::obs

#include "obs/analysis/pass.hh"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <set>

namespace ssla::obs::analysis
{

std::string
strf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    char buf[512];
    int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    if (n < 0)
        return {};
    if (static_cast<size_t>(n) < sizeof(buf))
        return std::string(buf, static_cast<size_t>(n));
    std::string big(static_cast<size_t>(n), '\0');
    va_start(ap, fmt);
    std::vsnprintf(big.data(), big.size() + 1, fmt, ap);
    va_end(ap);
    return big;
}

std::string
Report::render() const
{
    std::string out;
    for (const auto &s : sections_) {
        out += "== " + s.title + " ==\n";
        for (const auto &line : s.lines) {
            out += line;
            out += '\n';
        }
        out += '\n';
    }
    return out;
}

namespace
{

/** Format a duration in the corpus time unit. */
std::string
fmtT(double v, const Corpus &corpus)
{
    if (corpus.timeUnit == "us")
        return strf("%.3f us", v);
    return strf("%.0f %s", v, corpus.timeUnit.c_str());
}

std::string
fmtPct(double part, double whole)
{
    return whole > 0.0 ? strf("%5.1f%%", 100.0 * part / whole)
                       : std::string(" n/a ");
}

// ---------------------------------------------------------------------

class SummaryPass final : public Pass
{
  public:
    const char *name() const override { return "summary"; }

    const char *
    description() const override
    {
        return "corpus shape: sessions, events, outcome histogram";
    }

    void
    run(const Corpus &corpus, Report &report) const override
    {
        auto &sec = report.section("summary");
        size_t cryptoTracks = 0;
        uint64_t dropped = 0;
        std::map<std::string, size_t> outcomes;
        for (const auto &s : corpus.sessions) {
            if (s.isCryptoTrack()) {
                ++cryptoTracks;
                continue;
            }
            ++outcomes[s.outcome];
            dropped += s.dropped;
        }
        sec.lines.push_back(strf(
            "format=%s time_unit=%s", corpus.format.c_str(),
            corpus.timeUnit.c_str()));
        sec.lines.push_back(strf(
            "sessions=%zu crypto_tracks=%zu events=%zu dropped=%llu",
            corpus.sessionCount(), cryptoTracks, corpus.totalEvents(),
            static_cast<unsigned long long>(dropped)));
        for (const auto &[outcome, n] : outcomes)
            sec.lines.push_back(
                strf("outcome %-12s %zu", outcome.c_str(), n));
        if (!corpus.metrics.empty())
            sec.lines.push_back(strf(
                "metrics=%zu quantile_series=%zu",
                corpus.metrics.size(), corpus.metricQuantiles.size()));
    }
};

// ---------------------------------------------------------------------

/**
 * Attribute each engine session's wall clock to what it was doing:
 * park:<reason> while parked on a crypto job, state:<name> residency
 * otherwise. The gap between consecutive events belongs to the
 * activity in force when the gap started.
 */
class CriticalPathPass final : public Pass
{
  public:
    const char *name() const override { return "critical_path"; }

    const char *
    description() const override
    {
        return "per-session wall-clock attribution by park/state";
    }

    void
    run(const Corpus &corpus, Report &report) const override
    {
        auto &sec = report.section("critical_path");
        std::map<std::string, double> totals;
        double wall = 0.0;

        struct Slow
        {
            double duration;
            const SessionRecord *rec;
            std::map<std::string, double> buckets;
        };
        std::vector<Slow> slow;

        for (const auto &s : corpus.sessions) {
            if (s.isCryptoTrack() || s.events.size() < 2)
                continue;
            std::map<std::string, double> buckets;
            std::string bucket = "setup";
            for (size_t k = 0; k + 1 < s.events.size(); ++k) {
                const AnalysisEvent &ev = s.events[k];
                if (ev.kind == "Park")
                    bucket = "park:" + (ev.label.empty() ? "crypto"
                                                         : ev.label);
                else if (ev.kind == "Resume")
                    bucket = "post-resume";
                if (ev.kind == "StateEnter" && ev.side == "server")
                    bucket = "state:" +
                             (ev.label.empty() ? "?" : ev.label);
                buckets[bucket] += s.events[k + 1].t - ev.t;
            }
            for (const auto &[b, t] : buckets)
                totals[b] += t;
            wall += s.duration();
            slow.push_back({s.duration(), &s, std::move(buckets)});
        }

        if (totals.empty()) {
            sec.lines.push_back("no multi-event engine sessions");
            return;
        }

        std::vector<std::pair<std::string, double>> ranked(
            totals.begin(), totals.end());
        std::stable_sort(ranked.begin(), ranked.end(),
                         [](const auto &a, const auto &b) {
                             if (a.second != b.second)
                                 return a.second > b.second;
                             return a.first < b.first;
                         });
        sec.lines.push_back(
            strf("attributed wall clock across %zu sessions: %s",
                 slow.size(), fmtT(wall, corpus).c_str()));
        for (const auto &[bucket, t] : ranked)
            sec.lines.push_back(strf(
                "  %-28s %s  %s", bucket.c_str(),
                fmtPct(t, wall).c_str(), fmtT(t, corpus).c_str()));

        std::stable_sort(slow.begin(), slow.end(),
                         [](const Slow &a, const Slow &b) {
                             if (a.duration != b.duration)
                                 return a.duration > b.duration;
                             if (a.rec->track != b.rec->track)
                                 return a.rec->track < b.rec->track;
                             return a.rec->serial < b.rec->serial;
                         });
        const size_t topK = std::min<size_t>(slow.size(), 5);
        sec.lines.push_back(strf("slowest %zu sessions:", topK));
        for (size_t k = 0; k < topK; ++k) {
            const Slow &sl = slow[k];
            std::vector<std::pair<std::string, double>> top(
                sl.buckets.begin(), sl.buckets.end());
            std::stable_sort(top.begin(), top.end(),
                             [](const auto &a, const auto &b) {
                                 if (a.second != b.second)
                                     return a.second > b.second;
                                 return a.first < b.first;
                             });
            std::string detail;
            for (size_t j = 0; j < std::min<size_t>(top.size(), 3);
                 ++j) {
                if (j)
                    detail += ", ";
                detail += top[j].first + "=" +
                          fmtT(top[j].second, corpus);
            }
            sec.lines.push_back(strf(
                "  serial=%llu track=%u outcome=%s dur=%s  [%s]",
                static_cast<unsigned long long>(sl.rec->serial),
                sl.rec->track, sl.rec->outcome.c_str(),
                fmtT(sl.duration, corpus).c_str(), detail.c_str()));
        }
    }
};

// ---------------------------------------------------------------------

class WorkerImbalancePass final : public Pass
{
  public:
    const char *name() const override { return "worker_imbalance"; }

    const char *
    description() const override
    {
        return "per-worker session/busy-time skew, per-crypto-thread "
               "job counts";
    }

    void
    run(const Corpus &corpus, Report &report) const override
    {
        auto &sec = report.section("worker_imbalance");

        struct WorkerStat
        {
            size_t sessions = 0;
            size_t events = 0;
            double busy = 0.0;
            double minT = 0.0, maxT = 0.0;
            bool seen = false;
        };
        std::map<uint32_t, WorkerStat> workers;
        std::map<uint32_t, size_t> cryptoJobs;

        for (const auto &s : corpus.sessions) {
            if (s.isCryptoTrack()) {
                size_t jobs = 0;
                for (const auto &e : s.events)
                    if (e.kind == "JobStart")
                        ++jobs;
                cryptoJobs[s.track] += jobs;
                continue;
            }
            WorkerStat &w = workers[s.track];
            ++w.sessions;
            w.events += s.events.size();
            w.busy += s.duration();
            if (!w.seen || s.startT() < w.minT)
                w.minT = s.startT();
            if (!w.seen || s.endT() > w.maxT)
                w.maxT = s.endT();
            w.seen = true;
        }

        if (workers.empty()) {
            sec.lines.push_back("no engine sessions");
        } else {
            size_t minSessions = SIZE_MAX, maxSessions = 0;
            double meanSessions = 0.0;
            for (const auto &[track, w] : workers) {
                minSessions = std::min(minSessions, w.sessions);
                maxSessions = std::max(maxSessions, w.sessions);
                meanSessions += static_cast<double>(w.sessions);
                const double span = w.maxT - w.minT;
                sec.lines.push_back(strf(
                    "worker %-3u sessions=%-5zu events=%-6zu "
                    "busy=%s span=%s avg_concurrency=%.2f",
                    track, w.sessions, w.events,
                    fmtT(w.busy, corpus).c_str(),
                    fmtT(span, corpus).c_str(),
                    span > 0.0 ? w.busy / span : 0.0));
            }
            meanSessions /= static_cast<double>(workers.size());
            sec.lines.push_back(strf(
                "session imbalance: min=%zu max=%zu spread=%s of mean",
                minSessions, maxSessions,
                fmtPct(static_cast<double>(maxSessions - minSessions),
                       meanSessions)
                    .c_str()));
        }
        for (const auto &[track, jobs] : cryptoJobs)
            sec.lines.push_back(strf(
                "crypto thread %-3u jobs=%zu",
                track - analysisCryptoTrackBase, jobs));
    }
};

// ---------------------------------------------------------------------

/** JobClass stamp decoding: producers stamp code = JobClass + 1. */
const char *
jobClassFromCode(uint16_t code)
{
    switch (code) {
    case 1: return "resumption";
    case 2: return "continuation";
    case 3: return "new_full";
    }
    return "unknown";
}

class QueueDelayPass final : public Pass
{
  public:
    const char *name() const override { return "queue_delay"; }

    const char *
    description() const override
    {
        return "crypto queue-wait vs service split per JobClass, "
               "deadline/shed loss";
    }

    void
    run(const Corpus &corpus, Report &report) const override
    {
        auto &sec = report.section("queue_delay");

        struct ClassStat
        {
            size_t jobs = 0;
            size_t errors = 0;
            double wait = 0.0;
            double service = 0.0;
            size_t deadlineLost = 0;
            double deadlineWait = 0.0;
        };
        std::map<std::string, ClassStat> classes;
        size_t cancels = 0;

        for (const auto &s : corpus.sessions) {
            if (!s.isCryptoTrack()) {
                for (const auto &e : s.events)
                    if (e.kind == "CryptoCancel")
                        ++cancels;
                continue;
            }
            const AnalysisEvent *start = nullptr;
            for (const auto &e : s.events) {
                if (e.kind == "JobStart") {
                    start = &e;
                } else if (e.kind == "JobEnd" && start) {
                    ClassStat &cs =
                        classes[jobClassFromCode(start->code)];
                    ++cs.jobs;
                    cs.wait += start->argT;
                    cs.service += e.t - start->t;
                    if (e.code != 0)
                        ++cs.errors;
                    start = nullptr;
                } else if (e.kind == "DeadlineFired") {
                    ClassStat &cs = classes[e.label.empty()
                                                ? "unknown"
                                                : e.label];
                    ++cs.deadlineLost;
                    cs.deadlineWait += e.argT;
                }
            }
        }

        if (classes.empty()) {
            sec.lines.push_back("no crypto jobs in corpus");
            return;
        }
        for (const auto &[cls, cs] : classes) {
            const double total = cs.wait + cs.service;
            sec.lines.push_back(strf(
                "class %-12s jobs=%-5zu errors=%zu "
                "wait=%s (%s of job time) service=%s",
                cls.c_str(), cs.jobs, cs.errors,
                fmtT(cs.wait, corpus).c_str(),
                fmtPct(cs.wait, total).c_str(),
                fmtT(cs.service, corpus).c_str()));
            if (cs.jobs > 0)
                sec.lines.push_back(strf(
                    "  mean wait=%s mean service=%s",
                    fmtT(cs.wait / static_cast<double>(cs.jobs), corpus)
                        .c_str(),
                    fmtT(cs.service / static_cast<double>(cs.jobs),
                         corpus)
                        .c_str()));
            if (cs.deadlineLost > 0)
                sec.lines.push_back(strf(
                    "  deadline-fired=%zu wasted wait=%s",
                    cs.deadlineLost,
                    fmtT(cs.deadlineWait, corpus).c_str()));
        }
        sec.lines.push_back(strf("cancelled jobs (session side): %zu",
                                 cancels));
    }
};

// ---------------------------------------------------------------------

class OutcomeClustersPass final : public Pass
{
  public:
    const char *name() const override { return "outcome_clusters"; }

    const char *
    description() const override
    {
        return "failed sessions grouped by outcome + alert + "
               "last-state + fault";
    }

    void
    run(const Corpus &corpus, Report &report) const override
    {
        auto &sec = report.section("outcome_clusters");

        struct Cluster
        {
            size_t count = 0;
            uint64_t exampleSerial = UINT64_MAX;
        };
        std::map<std::string, Cluster> clusters;
        size_t completed = 0, failed = 0;

        for (const auto &s : corpus.sessions) {
            if (s.isCryptoTrack())
                continue;
            if (s.outcome == "completed") {
                ++completed;
                continue;
            }
            ++failed;
            uint16_t alert = 0;
            std::string lastState = "-";
            std::string fault = "-";
            for (const auto &e : s.events) {
                if (e.kind == "AlertSend" || e.kind == "AlertRecv")
                    alert = e.code;
                else if (e.kind == "StateEnter" &&
                         e.side == "server")
                    lastState = e.label.empty() ? "?" : e.label;
                else if (e.kind == "FaultInjected")
                    fault = e.label.empty() ? "?" : e.label;
            }
            std::string key = strf(
                "outcome=%-10s alert=%-3u state=%-22s fault=%s",
                s.outcome.c_str(), alert, lastState.c_str(),
                fault.c_str());
            Cluster &c = clusters[key];
            ++c.count;
            c.exampleSerial = std::min(c.exampleSerial, s.serial);
        }

        sec.lines.push_back(
            strf("completed=%zu failed=%zu clusters=%zu", completed,
                 failed, clusters.size()));
        std::vector<std::pair<std::string, Cluster>> ranked(
            clusters.begin(), clusters.end());
        std::stable_sort(ranked.begin(), ranked.end(),
                         [](const auto &a, const auto &b) {
                             if (a.second.count != b.second.count)
                                 return a.second.count > b.second.count;
                             return a.first < b.first;
                         });
        for (const auto &[key, c] : ranked)
            sec.lines.push_back(strf(
                "  x%-4zu %s  e.g. serial=%llu", c.count, key.c_str(),
                static_cast<unsigned long long>(c.exampleSerial)));
    }
};

} // anonymous namespace

PassRegistry
makeBuiltinRegistry()
{
    PassRegistry registry;
    registry.add(std::make_unique<SummaryPass>());
    registry.add(std::make_unique<CriticalPathPass>());
    registry.add(std::make_unique<WorkerImbalancePass>());
    registry.add(std::make_unique<QueueDelayPass>());
    registry.add(std::make_unique<OutcomeClustersPass>());
    return registry;
}

} // namespace ssla::obs::analysis

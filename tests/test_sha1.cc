/**
 * @file
 * SHA-1 tests: FIPS 180-2 vectors plus incremental/clone/boundary
 * properties.
 */

#include <gtest/gtest.h>

#include "crypto/provider.hh"
#include "crypto/sha1.hh"
#include "util/bytes.hh"
#include "util/hex.hh"
#include "util/rng.hh"

namespace
{

using namespace ssla;
using crypto::Sha1;

std::string
sha1Hex(const std::string &input)
{
    return hexEncode(Sha1::hash(toBytes(input)));
}

TEST(Sha1, Fips180Vectors)
{
    EXPECT_EQ(sha1Hex("abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
    EXPECT_EQ(sha1Hex(""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    EXPECT_EQ(sha1Hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmno"
                      "mnopnopq"),
              "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, MillionA)
{
    Sha1 sha;
    Bytes chunk(1000, 'a');
    for (int i = 0; i < 1000; ++i)
        sha.update(chunk);
    EXPECT_EQ(hexEncode(sha.final()),
              "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, IncrementalMatchesOneShot)
{
    Xoshiro256 rng(2);
    Bytes data = rng.bytes(1537);
    Bytes oneshot = Sha1::hash(data);
    for (size_t chunk : {1u, 7u, 63u, 64u, 65u, 512u}) {
        Sha1 sha;
        for (size_t off = 0; off < data.size(); off += chunk) {
            size_t n = std::min(chunk, data.size() - off);
            sha.update(data.data() + off, n);
        }
        EXPECT_EQ(sha.final(), oneshot) << "chunk " << chunk;
    }
}

TEST(Sha1, BoundaryLengths)
{
    for (size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 128u}) {
        Bytes data(len, 'y');
        EXPECT_EQ(Sha1::hash(data).size(), 20u) << len;
        // Appending one byte must change the digest.
        Bytes longer = data;
        longer.push_back('y');
        EXPECT_NE(Sha1::hash(data), Sha1::hash(longer));
    }
}

TEST(Sha1, InitResets)
{
    Sha1 sha;
    sha.update(toBytes("junk"));
    sha.init();
    sha.update(toBytes("abc"));
    EXPECT_EQ(hexEncode(sha.final()),
              "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, CloneForksState)
{
    Sha1 sha;
    sha.update(toBytes("ab"));
    auto fork = sha.clone();
    sha.update(toBytes("c"));
    fork->update(toBytes("c"));
    EXPECT_EQ(sha.final(), fork->final());
}

TEST(Sha1, CloneIsIndependent)
{
    Sha1 sha;
    sha.update(toBytes("abc"));
    auto fork = sha.clone();
    fork->update(toBytes("tail"));
    EXPECT_EQ(hexEncode(sha.final()),
              "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, InterfaceMetadata)
{
    Sha1 sha;
    EXPECT_EQ(sha.digestSize(), 20u);
    EXPECT_EQ(sha.blockSize(), 64u);
    EXPECT_STREQ(sha.name(), "SHA-1");
}

TEST(DigestFactory, CreatesBothAlgorithms)
{
    auto md5 = crypto::scalarProvider().createDigest(crypto::DigestAlg::MD5);
    auto sha = crypto::scalarProvider().createDigest(crypto::DigestAlg::SHA1);
    EXPECT_EQ(md5->digestSize(), 16u);
    EXPECT_EQ(sha->digestSize(), 20u);
    EXPECT_EQ(crypto::Digest::digestSize(crypto::DigestAlg::MD5), 16u);
    EXPECT_EQ(crypto::Digest::digestSize(crypto::DigestAlg::SHA1), 20u);
}

TEST(DigestFactory, OneShotHelper)
{
    EXPECT_EQ(hexEncode(crypto::digestOneShot(crypto::DigestAlg::SHA1,
                                              toBytes("abc"))),
              "a9993e364706816aba3e25717850c26c9cd0d89d");
}

} // anonymous namespace

file(REMOVE_RECURSE
  "CMakeFiles/crypto_speed.dir/crypto_speed.cpp.o"
  "CMakeFiles/crypto_speed.dir/crypto_speed.cpp.o.d"
  "crypto_speed"
  "crypto_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

/**
 * @file
 * Tests for the util substrate: hex, endian helpers, byte cursors,
 * constant-time compare, secure wipe and the deterministic RNG.
 */

#include <gtest/gtest.h>

#include "util/bytes.hh"
#include "util/endian.hh"
#include "util/hex.hh"
#include "util/rng.hh"

namespace
{

using namespace ssla;

TEST(Hex, EncodeBasic)
{
    Bytes data = {0x00, 0x01, 0xab, 0xff};
    EXPECT_EQ(hexEncode(data), "0001abff");
    EXPECT_EQ(hexEncode(Bytes{}), "");
}

TEST(Hex, DecodeBasic)
{
    EXPECT_EQ(hexDecode("0001abff"), (Bytes{0x00, 0x01, 0xab, 0xff}));
    EXPECT_EQ(hexDecode("ABCDEF"), (Bytes{0xab, 0xcd, 0xef}));
}

TEST(Hex, DecodeSkipsWhitespace)
{
    EXPECT_EQ(hexDecode("de ad\tbe\nef"), (Bytes{0xde, 0xad, 0xbe, 0xef}));
}

TEST(Hex, DecodeRejectsOddLength)
{
    EXPECT_THROW(hexDecode("abc"), std::invalid_argument);
}

TEST(Hex, DecodeRejectsNonHex)
{
    EXPECT_THROW(hexDecode("zz"), std::invalid_argument);
}

TEST(Hex, RoundTripRandom)
{
    Xoshiro256 rng(1);
    for (int i = 0; i < 50; ++i) {
        Bytes data = rng.bytes(rng.nextBelow(100));
        EXPECT_EQ(hexDecode(hexEncode(data)), data);
    }
}

TEST(Endian, Load32)
{
    uint8_t buf[4] = {0x01, 0x02, 0x03, 0x04};
    EXPECT_EQ(load32be(buf), 0x01020304u);
    EXPECT_EQ(load32le(buf), 0x04030201u);
}

TEST(Endian, StoreLoadRoundTrip32)
{
    uint8_t buf[4];
    store32be(buf, 0xdeadbeefu);
    EXPECT_EQ(load32be(buf), 0xdeadbeefu);
    store32le(buf, 0xdeadbeefu);
    EXPECT_EQ(load32le(buf), 0xdeadbeefu);
}

TEST(Endian, StoreLoadRoundTrip64)
{
    uint8_t buf[8];
    store64be(buf, 0x0123456789abcdefULL);
    EXPECT_EQ(load64be(buf), 0x0123456789abcdefULL);
    store64le(buf, 0x0123456789abcdefULL);
    EXPECT_EQ(buf[0], 0xef);
    EXPECT_EQ(buf[7], 0x01);
}

TEST(Endian, Rotates)
{
    EXPECT_EQ(rotl32(0x80000000u, 1), 1u);
    EXPECT_EQ(rotr32(1u, 1), 0x80000000u);
    for (unsigned n = 1; n < 32; ++n) {
        uint32_t v = 0x12345678u;
        EXPECT_EQ(rotr32(rotl32(v, n), n), v);
    }
}

TEST(Endian, Rotl28StaysIn28Bits)
{
    uint32_t v = 0x0abcdef1u & 0x0fffffffu;
    for (unsigned n = 1; n < 28; ++n)
        EXPECT_EQ(rotl28(v, n) & ~0x0fffffffu, 0u);
    // A full cycle of 28 single-bit rotations returns the value.
    uint32_t w = v;
    for (int i = 0; i < 28; ++i)
        w = rotl28(w, 1);
    EXPECT_EQ(w, v);
}

TEST(ByteWriter, PrimitiveLayout)
{
    ByteWriter w;
    w.putU8(0x01);
    w.putU16(0x0203);
    w.putU24(0x040506);
    w.putU32(0x0708090a);
    Bytes out = w.take();
    EXPECT_EQ(hexEncode(out), "0102030405060708090a");
}

TEST(ByteWriter, Vectors)
{
    ByteWriter w;
    w.putVector8(Bytes{0xaa});
    w.putVector16(Bytes{0xbb, 0xcc});
    w.putVector24(Bytes{});
    EXPECT_EQ(hexEncode(w.peek()), "01aa0002bbcc000000");
}

TEST(ByteWriter, VectorTooLongThrows)
{
    ByteWriter w;
    EXPECT_THROW(w.putVector8(Bytes(256)), std::length_error);
    EXPECT_THROW(w.putVector16(Bytes(65536)), std::length_error);
}

TEST(ByteReader, ReadsBack)
{
    ByteWriter w;
    w.putU8(0xfe);
    w.putU16(0x1234);
    w.putU24(0xabcdef);
    w.putU32(0xdeadbeef);
    w.putVector8(Bytes{1, 2, 3});
    Bytes wire = w.take();

    ByteReader r(wire);
    EXPECT_EQ(r.getU8(), 0xfe);
    EXPECT_EQ(r.getU16(), 0x1234);
    EXPECT_EQ(r.getU24(), 0xabcdefu);
    EXPECT_EQ(r.getU32(), 0xdeadbeefu);
    EXPECT_EQ(r.getVector8(), (Bytes{1, 2, 3}));
    EXPECT_TRUE(r.empty());
}

TEST(ByteReader, TruncationThrows)
{
    Bytes wire = {0x01};
    ByteReader r(wire);
    EXPECT_THROW(r.getU16(), std::out_of_range);
    ByteReader r2(wire);
    EXPECT_EQ(r2.getU8(), 1);
    EXPECT_THROW(r2.getU8(), std::out_of_range);
}

TEST(ByteReader, VectorLengthBeyondInputThrows)
{
    Bytes wire = {0x05, 0x01, 0x02}; // claims 5 bytes, has 2
    ByteReader r(wire);
    EXPECT_THROW(r.getVector8(), std::out_of_range);
}

TEST(ConstantTime, EqualAndUnequal)
{
    Bytes a = {1, 2, 3, 4};
    Bytes b = {1, 2, 3, 4};
    Bytes c = {1, 2, 3, 5};
    EXPECT_TRUE(constantTimeEquals(a, b));
    EXPECT_FALSE(constantTimeEquals(a, c));
}

TEST(ConstantTime, LengthMismatchIsFalse)
{
    EXPECT_FALSE(constantTimeEquals(Bytes{1, 2}, Bytes{1, 2, 3}));
    EXPECT_TRUE(constantTimeEquals(Bytes{}, Bytes{}));
}

TEST(SecureWipe, ZeroesAndClears)
{
    Bytes secret = {9, 9, 9, 9};
    uint8_t *p = secret.data();
    secureWipe(secret);
    EXPECT_TRUE(secret.empty());
    // The storage itself must be zeroed (checked via the saved
    // pointer before deallocation actually reuses it).
    (void)p;

    uint8_t raw[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    secureWipe(raw, sizeof(raw));
    for (uint8_t b : raw)
        EXPECT_EQ(b, 0);
}

TEST(Xoshiro, DeterministicPerSeed)
{
    Xoshiro256 a(7), b(7), c(8);
    EXPECT_EQ(a.next(), b.next());
    EXPECT_NE(a.next(), c.next());
}

TEST(Xoshiro, FillMatchesBytes)
{
    Xoshiro256 a(123), b(123);
    Bytes x(37);
    a.fill(x.data(), x.size());
    EXPECT_EQ(x, b.bytes(37));
}

TEST(Xoshiro, NextBelowInRange)
{
    Xoshiro256 rng(5);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBelow(17), 17u);
}

TEST(Xoshiro, NextDoubleInUnitInterval)
{
    Xoshiro256 rng(5);
    for (int i = 0; i < 1000; ++i) {
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Xoshiro, RoughUniformity)
{
    Xoshiro256 rng(99);
    int buckets[8] = {};
    for (int i = 0; i < 8000; ++i)
        ++buckets[rng.nextBelow(8)];
    for (int b : buckets) {
        EXPECT_GT(b, 800);
        EXPECT_LT(b, 1200);
    }
}

TEST(Append, Variants)
{
    Bytes dst = {1};
    append(dst, Bytes{2, 3});
    uint8_t raw[] = {4};
    append(dst, raw, 1);
    EXPECT_EQ(dst, (Bytes{1, 2, 3, 4}));
}

TEST(StringConversion, RoundTrip)
{
    std::string s = "hello\0world";
    Bytes b = toBytes(s);
    EXPECT_EQ(toString(b), s);
}

} // anonymous namespace

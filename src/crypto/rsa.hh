/**
 * @file
 * RSA public-key cryptosystem: key generation, PKCS#1 v1.5
 * encryption/decryption and signing/verification.
 *
 * The private-key operation is decomposed into the paper's six Table 7
 * steps, each bracketed by a cycle probe:
 *   1 rsa_init          internal buffer setup
 *   2 data_to_bn        octet string -> multi-precision integer
 *   3 blinding          Kocher-style timing-attack blinding
 *   4 rsa_computation   the CRT modular exponentiations
 *   5 bn_to_data        integer -> octet string
 *   6 block_parsing     PKCS#1 block removal
 */

#ifndef SSLA_CRYPTO_RSA_HH
#define SSLA_CRYPTO_RSA_HH

#include <memory>

#include "bn/bignum.hh"
#include "bn/engine.hh"
#include "bn/montgomery.hh"
#include "bn/prime.hh"
#include "crypto/rand.hh"

namespace ssla::crypto
{

/** The public half of an RSA key. */
struct RsaPublicKey
{
    bn::BigNum n; ///< modulus
    bn::BigNum e; ///< public exponent

    /** Modulus size in bytes (the PKCS#1 block length). */
    size_t blockLen() const { return n.byteLength(); }

    /** Modulus size in bits. */
    size_t bits() const { return n.bitLength(); }
};

/**
 * A complete RSA private key with CRT parameters, per-modulus
 * Montgomery contexts and blinding state.
 *
 * Not thread-safe: the blinding state mutates on each private-key
 * operation (one key per connection/thread, as OpenSSL-era servers
 * effectively did under their locks).
 */
class RsaPrivateKey
{
  public:
    /**
     * Assemble from components (validates basic consistency). All
     * Montgomery contexts bind to @p engine — nullptr selects the
     * calling thread's bn::activeEngine() (bn32 unless overridden), so
     * existing call sites keep the paper-era core. Thread replicas
     * (CryptoPool, FastProvider) clone with the source key's engine so
     * the backend survives replication.
     */
    RsaPrivateKey(bn::BigNum n, bn::BigNum e, bn::BigNum d, bn::BigNum p,
                  bn::BigNum q, const bn::Engine *engine = nullptr);

    /** The bignum backend this key's Montgomery contexts run on. */
    const bn::Engine &bnEngine() const { return *engine_; }

    const RsaPublicKey &publicKey() const { return pub_; }
    const bn::BigNum &d() const { return d_; }
    const bn::BigNum &p() const { return p_; }
    const bn::BigNum &q() const { return q_; }

    size_t blockLen() const { return pub_.blockLen(); }
    size_t bits() const { return pub_.bits(); }

    /**
     * The raw private-key operation c^d mod n via CRT, with blinding.
     * @param use_blinding disable only for deterministic tests
     */
    bn::BigNum privateRaw(const bn::BigNum &c,
                          bool use_blinding = true) const;

  private:
    void refreshBlinding() const;

    RsaPublicKey pub_;
    const bn::Engine *engine_; ///< backend singleton, never null
    bn::BigNum d_, p_, q_;
    bn::BigNum dp_, dq_, qinv_; ///< CRT exponents and coefficient
    std::unique_ptr<bn::MontgomeryCtx> montN_, montP_, montQ_;

    // Kocher blinding pair (r^e, r^-1), squared after each use and
    // periodically refreshed, as OpenSSL does.
    mutable bn::BigNum blindFactor_;
    mutable bn::BigNum unblindFactor_;
    mutable int blindUses_ = 0;
    mutable RandomPool blindPool_;
};

/** A generated key pair. */
struct RsaKeyPair
{
    RsaPublicKey pub;
    std::shared_ptr<RsaPrivateKey> priv;
};

/**
 * Generate an RSA key pair.
 *
 * @param bits modulus size (e.g. 512, 1024 — the paper's two sizes)
 * @param rng randomness source for the primes
 * @param e public exponent (default 65537)
 */
RsaKeyPair rsaGenerateKey(size_t bits, const bn::RngFunc &rng,
                          uint64_t e = 65537);

/** The raw public-key operation m^e mod n. */
bn::BigNum rsaPublicRaw(const RsaPublicKey &key, const bn::BigNum &m);

/** PKCS#1 v1.5 encryption of @p data under the public key. */
Bytes rsaPublicEncrypt(const RsaPublicKey &key, const Bytes &data,
                       RandomPool &pool);

/**
 * PKCS#1 v1.5 decryption (the Table 7 operation).
 * @throws std::runtime_error on padding failure
 */
Bytes rsaPrivateDecrypt(const RsaPrivateKey &key, const Bytes &cipher);

/** Sign @p digest_data (already hashed) with PKCS#1 type-1 padding. */
Bytes rsaSign(const RsaPrivateKey &key, const Bytes &digest_data);

/** Verify a type-1 signature over @p digest_data. */
bool rsaVerify(const RsaPublicKey &key, const Bytes &digest_data,
               const Bytes &signature);

} // namespace ssla::crypto

#endif // SSLA_CRYPTO_RSA_HH

/**
 * @file
 * Multi-core serving scalability sweep (extension of the paper's
 * single-connection anatomy to a terminating server's concurrency
 * axis).
 *
 * A fixed pool of connections (full handshakes, a fraction resumed,
 * each streaming some application data) is completed by 1/2/4/8
 * ServeEngine workers, first with the synchronous in-handshake RSA
 * decrypt and then with the decrypt offloaded to a CryptoPool (one
 * crypto thread per worker), which lets a worker service its other
 * sessions while a handshake is parked at ClientKeyExchange.
 *
 * Aggregate full-handshakes/sec, resumed-handshakes/sec and bulk MB/s
 * are reported per configuration as a JSON document (BENCH_scale.json
 * schema — see EXPERIMENTS.md). Speedups are judged against
 * min(workers, hw_cores): on a single-core host every configuration
 * honestly reports ~1x and the exit code gates only correctness (every
 * connection completes, handshake counts add up), never raw speedup,
 * so CI is meaningful on any machine shape.
 *
 *   ./bench_serve_scale [--smoke] [--trace FILE]
 *
 * --trace FILE additionally runs a small fully-sampled workload with
 * per-session tracing on and writes the Chrome trace_event JSON (load
 * it in Perfetto, or feed it to tools/validate_trace.py in CI).
 */

#include <cstdio>
#include <cstring>
#include <thread>

#include "common.hh"
#include "obs/export.hh"
#include "serve/engine.hh"

using namespace ssla;
using namespace ssla::bench;

namespace
{

/** Cycle count → microseconds, for the handshake-latency fields. */
double
cyclesToUs(double cycles)
{
    return cycles / cycleHz() * 1e6;
}

struct RunResult
{
    size_t workers = 0;
    bool offload = false;
    size_t cryptoThreads = 0;
    serve::ServeStats stats;
    uint64_t expectedConnections = 0;
    uint64_t poolCompletedJobs = 0;

    bool
    completedOk() const
    {
        return stats.fullHandshakes() + stats.resumedHandshakes() ==
               expectedConnections;
    }
};

RunResult
runOnce(size_t workers, size_t total_connections, double resume_fraction,
        size_t bulk_bytes, const pki::Certificate &cert,
        const std::shared_ptr<crypto::RsaPrivateKey> &key, bool offload,
        bool metrics_enabled = true,
        ssl::CipherSuiteId suite =
            ssl::CipherSuiteId::RSA_3DES_EDE_CBC_SHA)
{
    // Fresh registry per run: the handshake-latency percentiles in the
    // emitted JSON belong to this cell alone, not the whole sweep.
    obs::MetricsRegistry registry;

    serve::ServeConfig cfg;
    cfg.suite = suite;
    cfg.workers = workers;
    cfg.connectionsPerWorker = total_connections / workers;
    cfg.concurrentPerWorker =
        std::min<size_t>(8, cfg.connectionsPerWorker);
    cfg.resumeFraction = resume_fraction;
    cfg.bulkBytes = bulk_bytes;
    cfg.recordBytes = 4096;
    cfg.certificate = &cert;
    cfg.privateKey = key;
    cfg.seed = 0x5ca1e ^ (workers << 8) ^ (offload ? 1 : 0);
    cfg.metrics = &registry;
    cfg.metricsEnabled = metrics_enabled;

    RunResult r;
    r.workers = workers;
    r.offload = offload;
    r.expectedConnections = cfg.connectionsPerWorker * workers;

    if (offload) {
        r.cryptoThreads = workers;
        serve::CryptoPool pool(r.cryptoThreads);
        cfg.cryptoPool = &pool;
        serve::ServeEngine engine(std::move(cfg));
        r.stats = engine.run();
        r.poolCompletedJobs = pool.completedJobs();
    } else {
        serve::ServeEngine engine(std::move(cfg));
        r.stats = engine.run();
    }
    return r;
}

/**
 * Small fully-sampled traced run: every session gets a flight recorder
 * and every trace (plus the crypto threads' job tracks) is dumped into
 * a ChromeTraceCollector. Returns the number of captured traces.
 */
size_t
runTraced(const pki::Certificate &cert,
          const std::shared_ptr<crypto::RsaPrivateKey> &key,
          const std::string &path)
{
    obs::ChromeTraceCollector collector;
    obs::MetricsRegistry registry;
    {
        serve::CryptoPool pool(2);
        serve::ServeConfig cfg;
        cfg.workers = 2;
        cfg.connectionsPerWorker = 4;
        cfg.concurrentPerWorker = 4;
        cfg.resumeFraction = 0.5;
        cfg.bulkBytes = 8192;
        cfg.recordBytes = 4096;
        cfg.certificate = &cert;
        cfg.privateKey = key;
        cfg.seed = 0x77ace;
        cfg.cryptoPool = &pool;
        cfg.metrics = &registry;
        cfg.traceSampleEvery = 1;
        cfg.traceSink = &collector;
        cfg.traceDumpAll = true;
        serve::ServeEngine engine(std::move(cfg));
        engine.run();
        // Pool destruction (scope exit) dumps the crypto threads'
        // job tracks into the collector before we serialize.
    }
    if (!collector.writeFile(path))
        return 0;
    return collector.traceCount();
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string trace_path;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--smoke"))
            smoke = true;
        else if (!std::strcmp(argv[i], "--trace") && i + 1 < argc)
            trace_path = argv[++i];
    }

    warmUpCpu();

    const std::vector<size_t> worker_sweep =
        smoke ? std::vector<size_t>{1, 2}
              : std::vector<size_t>{1, 2, 4, 8};
    const size_t total_connections = smoke ? 8 : 96;
    const double resume_fraction = 0.4;
    const size_t bulk_bytes = smoke ? 16384 : 32768;
    const unsigned hw_cores =
        std::max(1u, std::thread::hardware_concurrency());

    const auto &key = benchKey(1024);
    pki::CertificateInfo info;
    info.serial = 1;
    info.issuer = "Bench CA";
    info.subject = "bench.server";
    info.notBefore = 0;
    info.notAfter = ~uint64_t(0);
    info.publicKey = key.pub;
    pki::Certificate cert = pki::Certificate::issue(info, *key.priv);

    std::vector<RunResult> runs;
    for (size_t w : worker_sweep)
        for (bool offload : {false, true})
            runs.push_back(runOnce(w, total_connections,
                                   resume_fraction, bulk_bytes, cert,
                                   key.priv, offload));

    // Baselines for speedup: the 1-worker run of the same offload mode.
    auto baseline = [&](bool offload) -> const RunResult * {
        for (const auto &r : runs)
            if (r.workers == 1 && r.offload == offload)
                return &r;
        return nullptr;
    };
    // Total connection completion rate: the mode-independent yardstick
    // (the full/resumed mix varies with scheduling, since a connection
    // can only resume a session that already completed when it was
    // created).
    auto connRate = [](const RunResult &r) {
        return r.stats.elapsedSeconds > 0
                   ? (r.stats.fullHandshakes() +
                      r.stats.resumedHandshakes()) /
                         r.stats.elapsedSeconds
                   : 0.0;
    };

    bool all_completed = true;
    JsonWriter j;
    j.beginObject();
    j.field("bench", "serve_scale");
    j.field("smoke", smoke);
    j.field("hw_cores", static_cast<uint64_t>(hw_cores));
    j.field("total_connections", static_cast<uint64_t>(total_connections));
    j.field("resume_fraction", resume_fraction, 2);
    j.field("bulk_bytes_per_conn", static_cast<uint64_t>(bulk_bytes));
    j.beginArray("workers_swept");
    for (size_t w : worker_sweep)
        j.element(static_cast<uint64_t>(w));
    j.endArray();

    j.beginArray("results");
    for (const auto &r : runs) {
        all_completed = all_completed && r.completedOk();
        const RunResult *base = baseline(r.offload);
        double speedup = (base && connRate(*base) > 0)
                             ? connRate(r) / connRate(*base)
                             : 0.0;
        j.beginObject();
        j.field("workers", static_cast<uint64_t>(r.workers));
        j.field("offload", r.offload);
        j.field("crypto_threads", static_cast<uint64_t>(r.cryptoThreads));
        j.field("full_handshakes", r.stats.fullHandshakes());
        j.field("resumed_handshakes", r.stats.resumedHandshakes());
        j.field("park_events", r.stats.parkEvents());
        j.field("park_events_decrypt", r.stats.parkEventsDecrypt());
        j.field("park_events_sign", r.stats.parkEventsSign());
        j.field("elapsed_sec", r.stats.elapsedSeconds);
        j.field("full_hs_per_sec", r.stats.fullHandshakesPerSec(), 1);
        j.field("resumed_hs_per_sec", r.stats.resumedHandshakesPerSec(),
                1);
        j.field("bulk_mb_per_sec", r.stats.bulkMBPerSec(), 2);
        j.field("connections_per_sec", connRate(r), 1);
        // Per-cell handshake-latency distribution out of the run's own
        // metrics registry (creation to both-sides-done, in wall µs).
        const obs::HistogramSnapshot hs =
            r.stats.metrics.histogram("serve.handshake_cycles");
        j.field("hs_count", hs.count);
        j.field("hs_p50_us", cyclesToUs(hs.percentile(50)), 1);
        j.field("hs_p90_us", cyclesToUs(hs.percentile(90)), 1);
        j.field("hs_p99_us", cyclesToUs(hs.percentile(99)), 1);
        j.field("speedup_vs_1w", speedup, 2);
        // Perfect scaling is capped by the physical core count: the
        // honest yardstick for this configuration.
        j.field("ideal_speedup",
                static_cast<double>(std::min<size_t>(r.workers, hw_cores)),
                1);
        j.field("completed_ok", r.completedOk());
        j.endObject();
    }
    j.endArray();

    // Offload-vs-sync handshake-rate ratio at equal worker counts: the
    // Section 6.2 asynchronous-engine claim at serving scale. Only
    // meaningful where spare cores exist to run the pool; reported
    // everywhere, gated nowhere.
    j.beginArray("offload_vs_sync");
    for (size_t w : worker_sweep) {
        const RunResult *sync_run = nullptr, *off_run = nullptr;
        for (const auto &r : runs) {
            if (r.workers != w)
                continue;
            (r.offload ? off_run : sync_run) = &r;
        }
        if (!sync_run || !off_run)
            continue;
        double ratio = connRate(*sync_run) > 0
                           ? connRate(*off_run) / connRate(*sync_run)
                           : 0.0;
        j.beginObject();
        j.field("workers", static_cast<uint64_t>(w));
        j.field("conn_rate_ratio", ratio, 2);
        j.field("park_events", off_run->stats.parkEvents());
        j.endObject();
    }
    j.endArray();

    // DHE_RSA cell: the same workload negotiating an ephemeral-DH
    // suite, sync vs offloaded. With the CryptoPool attached the
    // server submits the *ServerKeyExchange signature* (park reason
    // "rsa_sign") on every full handshake, and nothing parks at the
    // pre-master step (DHE's client key exchange needs no RSA private
    // op) — the reverse of the RSA cell's decrypt-only parking. The
    // gate asserts the deterministic invariants: every full handshake
    // routed exactly one sign job through the pool, and any park a
    // worker observed was a sign park. The observed park *count* is
    // reported but not gated — on a busy or single-core host the
    // crypto thread can finish the signature before the worker's next
    // sweep, so the worker legitimately never sees the job pending.
    const size_t dhe_workers = std::min<size_t>(2, hw_cores);
    bool dhe_ok = true;
    j.beginArray("dhe_rsa");
    for (bool offload : {false, true}) {
        RunResult r = runOnce(
            dhe_workers, total_connections, resume_fraction, bulk_bytes,
            cert, key.priv, offload, /*metrics_enabled=*/true,
            ssl::CipherSuiteId::DHE_RSA_3DES_EDE_CBC_SHA);
        const bool signs_ok =
            !offload ||
            (r.poolCompletedJobs == r.stats.fullHandshakes() &&
             r.stats.parkEventsDecrypt() == 0 &&
             r.stats.parkEventsSign() == r.stats.parkEvents());
        dhe_ok = dhe_ok && r.completedOk() && signs_ok;
        j.beginObject();
        j.field("workers", static_cast<uint64_t>(dhe_workers));
        j.field("offload", offload);
        j.field("full_handshakes", r.stats.fullHandshakes());
        j.field("resumed_handshakes", r.stats.resumedHandshakes());
        j.field("park_events", r.stats.parkEvents());
        j.field("park_events_decrypt", r.stats.parkEventsDecrypt());
        j.field("park_events_sign", r.stats.parkEventsSign());
        j.field("pool_sign_jobs", r.poolCompletedJobs);
        j.field("connections_per_sec", connRate(r), 1);
        j.field("completed_ok", r.completedOk());
        j.endObject();
    }
    j.endArray();

    // Registry overhead A/B: the identical workload with the metrics
    // registry enabled vs disabled (every handle op reduced to one
    // relaxed load + branch). Design target is <=3% overhead; the gate
    // is deliberately loose (25%) because a smoke-sized run on a busy
    // CI host is noisy — the ratio itself is the reported number.
    const size_t ab_workers = std::min<size_t>(2, hw_cores);
    auto run_ab = [&](bool enabled) {
        return runOnce(ab_workers, total_connections, resume_fraction,
                       bulk_bytes, cert, key.priv, /*offload=*/false,
                       enabled);
    };
    RunResult ab_on = run_ab(true);
    RunResult ab_off = run_ab(false);
    const double overhead_ratio =
        ab_off.stats.elapsedSeconds > 0
            ? ab_on.stats.elapsedSeconds / ab_off.stats.elapsedSeconds
            : 0.0;
    const bool overhead_ok = overhead_ratio <= 1.25;
    j.beginObject("metrics_overhead");
    j.field("workers", static_cast<uint64_t>(ab_workers));
    j.field("enabled_sec", ab_on.stats.elapsedSeconds);
    j.field("disabled_sec", ab_off.stats.elapsedSeconds);
    j.field("overhead_ratio", overhead_ratio, 3);
    j.field("target_ratio", 1.03, 2);
    j.field("gate_ratio", 1.25, 2);
    j.field("ok", overhead_ok);
    j.endObject();

    if (!trace_path.empty()) {
        size_t traced = runTraced(cert, key.priv, trace_path);
        j.beginObject("trace");
        j.field("file", trace_path);
        j.field("sessions", static_cast<uint64_t>(traced));
        j.endObject();
        if (traced == 0) {
            std::fprintf(stderr,
                         "FAIL: traced run captured no sessions or "
                         "could not write %s\n",
                         trace_path.c_str());
            j.field("all_completed", false);
            j.endObject();
            return 1;
        }
    }

    j.field("all_completed", all_completed);
    j.endObject();

    if (!all_completed) {
        std::fprintf(stderr,
                     "FAIL: a run lost connections (handshake counts "
                     "do not add up to the configured total)\n");
        return 1;
    }
    if (!dhe_ok) {
        std::fprintf(stderr,
                     "FAIL: DHE_RSA cell lost connections, or the "
                     "offloaded run did not route one sign job per "
                     "full handshake through the CryptoPool, or a "
                     "session decrypt-parked under a DHE suite\n");
        return 1;
    }
    if (smoke && !overhead_ok) {
        std::fprintf(stderr,
                     "FAIL: metrics registry overhead ratio %.3f "
                     "exceeds the 1.25 smoke gate (target 1.03)\n",
                     overhead_ratio);
        return 1;
    }
    return 0;
}

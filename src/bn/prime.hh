/**
 * @file
 * Probabilistic primality testing and prime generation (RSA keygen).
 */

#ifndef SSLA_BN_PRIME_HH
#define SSLA_BN_PRIME_HH

#include <functional>

#include "bn/bignum.hh"

namespace ssla::bn
{

/** A source of random bytes (crypto pool or deterministic test RNG). */
using RngFunc = std::function<void(uint8_t *out, size_t len)>;

/** Uniform random value in [0, bound) using @p rng. */
BigNum randomBelow(const BigNum &bound, const RngFunc &rng);

/** Random value of exactly @p bits bits (top bit set). */
BigNum randomBits(size_t bits, const RngFunc &rng);

/**
 * Miller–Rabin primality test.
 *
 * @param n candidate (must be > 2 and odd for a meaningful answer;
 *          small cases are handled exactly)
 * @param rounds number of random bases
 * @return false if composite; true if probably prime
 */
bool millerRabin(const BigNum &n, int rounds, const RngFunc &rng);

/** Trial division by a built-in table of small primes. */
bool passesTrialDivision(const BigNum &n);

/** Combined trial-division + Miller-Rabin check with default rounds. */
bool isProbablePrime(const BigNum &n, const RngFunc &rng);

/**
 * Generate a random prime of exactly @p bits bits with the top two
 * bits set (so RSA moduli get their full length).
 */
BigNum generatePrime(size_t bits, const RngFunc &rng);

} // namespace ssla::bn

#endif // SSLA_BN_PRIME_HH

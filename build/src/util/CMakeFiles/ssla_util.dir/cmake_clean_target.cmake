file(REMOVE_RECURSE
  "libssla_util.a"
)

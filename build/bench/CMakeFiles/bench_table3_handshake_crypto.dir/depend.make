# Empty dependencies file for bench_table3_handshake_crypto.
# This may be replaced when dependencies are built.

#include "bn/modexp.hh"

#include <array>
#include <stdexcept>

#include "perf/probe.hh"

namespace ssla::bn
{

namespace
{

/** Plain square-and-multiply with division-based reduction (even m). */
BigNum
modExpPlain(const BigNum &base, const BigNum &exp, const BigNum &m)
{
    BigNum result = 1;
    BigNum b = base.mod(m);
    size_t nbits = exp.bitLength();
    for (size_t i = nbits; i-- > 0;) {
        result = result.sqr().mod(m);
        if (exp.testBit(i))
            result = (result * b).mod(m);
    }
    return result;
}

/**
 * The same 4-bit fixed-window loop over the 64-bit core's Raw64
 * buffers. Kept shape-identical to the 32-bit loop below so the A/B
 * profile compares window logic on equal footing — only the limb
 * width, the Karatsuba product and the reduction differ.
 */
BigNum
modExpMont64(const BigNum &base, const BigNum &exp, const MontgomeryCtx &ctx,
             const Mont64Core &core)
{
    constexpr unsigned window = 4;
    constexpr size_t table_size = size_t(1) << window;

    using Raw64 = Mont64Core::Raw64;
    BigNum b = base.mod(ctx.modulus());

    // Precompute b^0..b^15 in the Montgomery domain, on raw buffers.
    std::array<Raw64, table_size> table;
    table[0] = core.oneRaw();
    {
        Raw64 rb = core.toRaw(b);
        core.mulRaw(table[1], rb, core.rrRaw()); // toMont(b)
    }
    for (size_t i = 2; i < table_size; ++i)
        core.mulRaw(table[i], table[i - 1], table[1]);

    size_t nbits = exp.bitLength();
    size_t nwindows = (nbits + window - 1) / window;

    // Double-buffered accumulator: sqr/mul cannot write in place.
    Raw64 acc = table[0];
    Raw64 tmp(acc.size());
    for (size_t w = nwindows; w-- > 0;) {
        for (unsigned s = 0; s < window; ++s) {
            core.sqrRaw(tmp, acc);
            std::swap(acc, tmp);
        }
        unsigned idx = 0;
        for (unsigned s = 0; s < window; ++s) {
            size_t bit = w * window + (window - 1 - s);
            idx = (idx << 1) | (bit < nbits && exp.testBit(bit) ? 1 : 0);
        }
        if (idx) {
            core.mulRaw(tmp, acc, table[idx]);
            std::swap(acc, tmp);
        }
    }
    core.fromMontRaw(tmp, acc);
    return core.fromRaw(tmp);
}

} // anonymous namespace

BigNum
modExpMont(const BigNum &base, const BigNum &exp, const MontgomeryCtx &ctx)
{
    perf::FuncProbe probe("BN_mod_exp_mont", perf::ProbeLevel::Fine);

    if (exp.isNegative())
        throw std::domain_error("modExp: negative exponent");
    if (exp.isZero())
        return BigNum(1).mod(ctx.modulus());

    if (const Mont64Core *core = ctx.core64())
        return modExpMont64(base, exp, ctx, *core);

    constexpr unsigned window = 4;
    constexpr size_t table_size = size_t(1) << window;

    using Raw = MontgomeryCtx::Raw;
    BigNum b = base.mod(ctx.modulus());

    // Precompute b^0..b^15 in the Montgomery domain, on raw buffers.
    std::array<Raw, table_size> table;
    table[0] = ctx.toRaw(ctx.one());
    table[1] = ctx.toRaw(ctx.toMont(b));
    for (size_t i = 2; i < table_size; ++i)
        ctx.mulRaw(table[i], table[i - 1], table[1]);

    size_t nbits = exp.bitLength();
    size_t nwindows = (nbits + window - 1) / window;

    // Double-buffered accumulator: sqr/mul cannot write in place.
    Raw acc = table[0];
    Raw tmp(acc.size());
    for (size_t w = nwindows; w-- > 0;) {
        for (unsigned s = 0; s < window; ++s) {
            ctx.sqrRaw(tmp, acc);
            std::swap(acc, tmp);
        }
        unsigned idx = 0;
        for (unsigned s = 0; s < window; ++s) {
            size_t bit = w * window + (window - 1 - s);
            idx = (idx << 1) | (bit < nbits && exp.testBit(bit) ? 1 : 0);
        }
        if (idx) {
            ctx.mulRaw(tmp, acc, table[idx]);
            std::swap(acc, tmp);
        }
    }
    return ctx.fromMont(ctx.fromRaw(acc));
}

BigNum
modExp(const BigNum &base, const BigNum &exp, const BigNum &m)
{
    if (m.isZero() || m.isNegative())
        throw std::domain_error("modExp: modulus must be positive");
    if (m.isOne())
        return BigNum();
    if (!m.isOdd())
        return modExpPlain(base, exp, m);
    MontgomeryCtx ctx(m);
    return modExpMont(base, exp, ctx);
}

} // namespace ssla::bn

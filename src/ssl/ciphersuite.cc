#include "ssl/ciphersuite.hh"

#include <stdexcept>

namespace ssla::ssl
{

namespace
{

using crypto::CipherAlg;
using crypto::DigestAlg;

const CipherSuite suites[] = {
    {CipherSuiteId::RSA_NULL_MD5, "NULL-MD5", CipherAlg::Null,
     DigestAlg::MD5},
    {CipherSuiteId::RSA_RC4_128_MD5, "RC4-MD5", CipherAlg::Rc4_128,
     DigestAlg::MD5},
    {CipherSuiteId::RSA_RC4_128_SHA, "RC4-SHA", CipherAlg::Rc4_128,
     DigestAlg::SHA1},
    {CipherSuiteId::RSA_DES_CBC_SHA, "DES-CBC-SHA", CipherAlg::DesCbc,
     DigestAlg::SHA1},
    {CipherSuiteId::RSA_3DES_EDE_CBC_SHA, "DES-CBC3-SHA",
     CipherAlg::Des3Cbc, DigestAlg::SHA1},
    {CipherSuiteId::RSA_AES_128_CBC_SHA, "AES128-SHA",
     CipherAlg::Aes128Cbc, DigestAlg::SHA1},
    {CipherSuiteId::RSA_AES_256_CBC_SHA, "AES256-SHA",
     CipherAlg::Aes256Cbc, DigestAlg::SHA1},
    {CipherSuiteId::DHE_RSA_3DES_EDE_CBC_SHA, "DHE-DES-CBC3-SHA",
     CipherAlg::Des3Cbc, DigestAlg::SHA1, KxKind::DheRsa},
    {CipherSuiteId::DHE_RSA_AES_128_CBC_SHA, "DHE-AES128-SHA",
     CipherAlg::Aes128Cbc, DigestAlg::SHA1, KxKind::DheRsa},
    {CipherSuiteId::DHE_RSA_AES_256_CBC_SHA, "DHE-AES256-SHA",
     CipherAlg::Aes256Cbc, DigestAlg::SHA1, KxKind::DheRsa},
};

} // anonymous namespace

const CipherSuite &
cipherSuite(CipherSuiteId id)
{
    for (const auto &s : suites) {
        if (s.id == id)
            return s;
    }
    throw std::invalid_argument("cipherSuite: unknown suite");
}

bool
cipherSuiteKnown(uint16_t id)
{
    for (const auto &s : suites) {
        if (static_cast<uint16_t>(s.id) == id)
            return true;
    }
    return false;
}

const std::vector<CipherSuiteId> &
allCipherSuites()
{
    static const std::vector<CipherSuiteId> all = {
        CipherSuiteId::DHE_RSA_AES_256_CBC_SHA,
        CipherSuiteId::DHE_RSA_AES_128_CBC_SHA,
        CipherSuiteId::DHE_RSA_3DES_EDE_CBC_SHA,
        CipherSuiteId::RSA_AES_256_CBC_SHA,
        CipherSuiteId::RSA_AES_128_CBC_SHA,
        CipherSuiteId::RSA_3DES_EDE_CBC_SHA,
        CipherSuiteId::RSA_DES_CBC_SHA,
        CipherSuiteId::RSA_RC4_128_SHA,
        CipherSuiteId::RSA_RC4_128_MD5,
        CipherSuiteId::RSA_NULL_MD5,
    };
    return all;
}

} // namespace ssla::ssl

/**
 * @file
 * Robustness tests: the FaultyBio fault-injection layer, the chaos
 * harness (thousands of seeded faulty handshakes, single-threaded and
 * under the ServeEngine), CryptoPool overload policies and job
 * cancellation, session-cache poisoning, and MemBio backpressure.
 *
 * The invariant everything here asserts: every session terminates as
 * completed, alerted, or timed out — no hang, no crash, no double
 * alert — and a torn-down session leaves nothing behind (no resumable
 * cache entry, no in-flight crypto job touching freed state).
 *
 * Every chaos run derives from one seed. The engine runs honor
 * SSLA_CHAOS_SEED (CI sets a per-run value and fixed regression
 * values); a failure reproduces locally from the seed echoed in the
 * log.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <thread>

#include "serve/engine.hh"
#include "ssl/client.hh"
#include "ssl/faultbio.hh"
#include "ssl/server.hh"
#include "ssl/shardcache.hh"
#include "testkeys.hh"
#include "util/bytes.hh"

namespace
{

using namespace ssla;

Bytes
poolSeed(uint64_t seed, char tag)
{
    Bytes b = toBytes("chaos-pool");
    b.push_back(static_cast<uint8_t>(tag));
    for (int i = 0; i < 8; ++i)
        b.push_back(static_cast<uint8_t>(seed >> (8 * i)));
    return b;
}

uint64_t
chaosSeed()
{
    if (const char *env = std::getenv("SSLA_CHAOS_SEED"))
        return std::strtoull(env, nullptr, 0);
    return 0x5eed0;
}

// ---------------------------------------------------------------------
// FaultyBio unit behavior

TEST(FaultyBio, ZeroRatePlanPassesThroughVerbatim)
{
    ssl::FaultPlan plan;
    plan.seed = 7;
    ssl::FaultyBio bio(plan);

    // A plausible SSL record: type 22, version 3.0, 4-byte fragment.
    Bytes rec = {22, 3, 0, 0, 4, 0xde, 0xad, 0xbe, 0xef};
    ASSERT_TRUE(bio.write(rec.data(), rec.size()));
    Bytes out(rec.size());
    ASSERT_EQ(bio.read(out.data(), out.size()), rec.size());
    EXPECT_EQ(out, rec);
    EXPECT_EQ(bio.counts().records, 1u);
    EXPECT_EQ(bio.counts().injected(), 0u);
}

TEST(FaultyBio, SameSeedSameFaults)
{
    auto run = [](uint64_t seed) {
        ssl::FaultPlan plan = ssl::FaultPlan::mixed(seed, 0.3);
        ssl::FaultyBio bio(plan);
        for (int i = 0; i < 64; ++i) {
            Bytes rec = {22, 3, 0, 0, 3,
                         static_cast<uint8_t>(i), 0x55, 0xaa};
            bio.write(rec.data(), rec.size());
        }
        for (int t = 0; t < 32; ++t)
            bio.tick(); // release every stalled record
        Bytes all(bio.available());
        bio.read(all.data(), all.size());
        return std::make_pair(all, bio.counts());
    };
    auto [bytes_a, counts_a] = run(42);
    auto [bytes_b, counts_b] = run(42);
    auto [bytes_c, counts_c] = run(43);
    EXPECT_EQ(bytes_a, bytes_b);
    EXPECT_EQ(counts_a.injected(), counts_b.injected());
    EXPECT_GT(counts_a.injected(), 0u);
    // A different seed must actually change the fault sequence.
    EXPECT_NE(bytes_a, bytes_c);
}

TEST(FaultyBio, StalledRecordReleasesAfterTicks)
{
    ssl::FaultPlan plan;
    plan.stallRate = 1.0;
    plan.stallTicks = 3;
    plan.seed = 11;
    ssl::FaultyBio bio(plan);

    Bytes rec = {23, 3, 0, 0, 2, 0x01, 0x02};
    bio.write(rec.data(), rec.size());
    EXPECT_EQ(bio.available(), 0u);
    EXPECT_EQ(bio.stagedRecords(), 1u);
    bio.tick();
    bio.tick();
    EXPECT_EQ(bio.available(), 0u);
    bio.tick();
    EXPECT_EQ(bio.available(), rec.size());
    EXPECT_EQ(bio.counts().stalled, 1u);
}

TEST(FaultyBio, CapDefersDeliveryUntilReaderDrains)
{
    ssl::FaultPlan plan;
    plan.maxBuffered = 10; // one record fits, two do not
    plan.seed = 5;
    ssl::FaultyBio bio(plan);

    Bytes rec = {23, 3, 0, 0, 2, 0xaa, 0xbb}; // 7 bytes on the wire
    bio.write(rec.data(), rec.size());
    bio.write(rec.data(), rec.size());
    EXPECT_EQ(bio.available(), rec.size());
    EXPECT_EQ(bio.stagedRecords(), 1u);
    EXPECT_GT(bio.counts().capDeferrals, 0u);

    // Draining the first record frees cap space for the second.
    Bytes out(rec.size());
    bio.read(out.data(), out.size());
    EXPECT_EQ(out, rec);
    EXPECT_EQ(bio.available(), rec.size());
    EXPECT_EQ(bio.stagedRecords(), 0u);
}

TEST(FaultyBio, AsymmetricPlansFaultOnlyTheLossyDirection)
{
    // Two-plan pair: a fully corrupting upstream against a clean
    // downstream. Faults must land only on the configured direction
    // and the clean side must deliver verbatim.
    ssl::FaultPlan lossy;
    lossy.corruptRate = 1.0;
    lossy.seed = 21;
    ssl::FaultPlan clean; // zero rates
    clean.seed = 22;
    ssl::FaultyBioPair wires(lossy, clean);

    Bytes rec = {23, 3, 0, 0, 3, 0x11, 0x22, 0x33};
    wires.clientEnd().write(rec);  // client→server: lossy plan
    wires.serverEnd().write(rec);  // server→client: clean plan

    EXPECT_GT(wires.clientToServerCounts().corrupted, 0u);
    EXPECT_EQ(wires.serverToClientCounts().injected(), 0u);

    Bytes down(rec.size());
    wires.clientEnd().read(down.data(), down.size());
    EXPECT_EQ(down, rec); // downstream untouched

    Bytes up(rec.size());
    wires.serverEnd().read(up.data(), up.size());
    EXPECT_NE(up, rec); // upstream corrupted
}

TEST(FaultyBio, WritevFunnelsThroughFaultFraming)
{
    // Gather writes must hit the same record framing as scalar writes:
    // a record delivered across two slices is still one fault unit.
    ssl::FaultPlan plan;
    plan.corruptRate = 1.0;
    plan.seed = 31;
    ssl::FaultyBio bio(plan);

    Bytes head = {23, 3, 0, 0, 4};
    Bytes body = {0xa1, 0xa2, 0xa3, 0xa4};
    ConstSpan iov[] = {ConstSpan{head.data(), head.size()},
                       ConstSpan{body.data(), body.size()}};
    EXPECT_TRUE(bio.writev(iov, 2)); // adversary always accepts
    EXPECT_EQ(bio.counts().records, 1u);
    EXPECT_EQ(bio.counts().corrupted, 1u);

    Bytes out(head.size() + body.size());
    EXPECT_EQ(bio.read(out.data(), out.size()), out.size());
    Bytes sent = head;
    append(sent, body);
    EXPECT_NE(out, sent); // exactly one byte differs
    size_t diffs = 0;
    for (size_t i = 0; i < out.size(); ++i)
        diffs += out[i] != sent[i];
    EXPECT_EQ(diffs, 1u);
}

TEST(FaultyBio, BitflipTargetsSelectedRegion)
{
    // FaultKind picks the region; the seed picks the bit. Exactly one
    // bit may differ, and it must land inside the selected region —
    // ciphertext flips never touch the 5-byte header and vice versa.
    for (ssl::FaultKind kind : {ssl::FaultKind::BitflipCiphertext,
                                ssl::FaultKind::BitflipHeader}) {
        for (uint64_t seed = 1; seed <= 32; ++seed) {
            ssl::FaultPlan plan = ssl::FaultPlan::bitflip(seed, kind, 1.0);
            ssl::FaultyBio bio(plan);
            Bytes rec = {23, 3, 0, 0, 8, 1, 2, 3, 4, 5, 6, 7, 8};
            ASSERT_TRUE(bio.write(rec.data(), rec.size()));
            Bytes out(rec.size());
            ASSERT_EQ(bio.read(out.data(), out.size()), rec.size());

            size_t bit_diffs = 0;
            size_t diff_byte = rec.size();
            for (size_t i = 0; i < rec.size(); ++i) {
                uint8_t x = static_cast<uint8_t>(out[i] ^ rec[i]);
                for (; x; x = static_cast<uint8_t>(x & (x - 1)))
                    ++bit_diffs;
                if (out[i] != rec[i])
                    diff_byte = i;
            }
            ASSERT_EQ(bit_diffs, 1u)
                << "kind " << static_cast<int>(kind) << " seed " << seed;
            if (kind == ssl::FaultKind::BitflipCiphertext) {
                EXPECT_GE(diff_byte, 5u) << "seed " << seed;
                EXPECT_EQ(bio.counts().bitflippedCiphertext, 1u);
                EXPECT_EQ(bio.counts().bitflippedHeader, 0u);
            } else {
                EXPECT_LT(diff_byte, 5u) << "seed " << seed;
                EXPECT_EQ(bio.counts().bitflippedHeader, 1u);
                EXPECT_EQ(bio.counts().bitflippedCiphertext, 0u);
            }
            EXPECT_EQ(bio.counts().injected(), 1u);
        }
    }
}

// ---------------------------------------------------------------------
// MemBio backpressure (the bounded receive window)

TEST(MemBioCap, WritePastCapIsRefusedWhole)
{
    ssl::MemBio bio;
    bio.setMaxBuffered(8);
    Bytes six(6, 0x11);
    Bytes four(4, 0x22);
    EXPECT_TRUE(bio.write(six));
    EXPECT_FALSE(bio.write(four)); // 6 + 4 > 8: refused, not split
    EXPECT_EQ(bio.available(), 6u);
    EXPECT_EQ(bio.blockedWrites(), 1u);

    Bytes out(6);
    bio.read(out.data(), out.size());
    EXPECT_TRUE(bio.write(four)); // space freed: accepted
    EXPECT_EQ(bio.available(), 4u);
}

TEST(MemBioCap, RecordLayerRetriesBlockedOutput)
{
    // A capped transport under a bulk stream: writes the cap refuses
    // queue in the record layer and drain as the reader consumes —
    // like a stalled peer that resumes reading.
    ssl::MemBio c2s, s2c;
    c2s.setMaxBuffered(4096);
    ssl::ServerConfig scfg;
    scfg.certificate = test::testServerCert512();
    scfg.privateKey = test::testKey512().priv;
    ssl::SslServer server(std::move(scfg),
                          ssl::BioEndpoint(&c2s, &s2c));
    ssl::SslClient client(ssl::ClientConfig{},
                          ssl::BioEndpoint(&s2c, &c2s));
    ssl::runLockstep(client, server);

    const Bytes chunk(1024, 0x5a);
    constexpr int kChunks = 16;
    for (int i = 0; i < kChunks; ++i)
        client.writeApplicationData(chunk);
    EXPECT_TRUE(client.record().outputBlocked());
    EXPECT_GT(c2s.blockedWrites(), 0u);

    size_t received = 0;
    for (int sweep = 0; sweep < 1000 &&
                        received < kChunks * chunk.size();
         ++sweep) {
        client.advance(); // flushes pending output as space frees
        while (auto data = server.readApplicationData()) {
            EXPECT_EQ(*data, chunk);
            received += data->size();
        }
    }
    EXPECT_EQ(received, kChunks * chunk.size());
    EXPECT_FALSE(client.record().outputBlocked());
}

// ---------------------------------------------------------------------
// Exactly-one-fatal-alert contract

TEST(AlertContract, GarbageRecordAlertsOnceThenDead)
{
    ssl::MemBio c2s, s2c;
    ssl::ServerConfig scfg;
    scfg.certificate = test::testServerCert512();
    scfg.privateKey = test::testKey512().priv;
    ssl::SslServer server(std::move(scfg),
                          ssl::BioEndpoint(&c2s, &s2c));

    // A plausible header framing a garbage handshake fragment.
    Bytes rec = {22, 3, 0, 0, 4, 0xff, 0xff, 0xff, 0xff};
    c2s.write(rec);
    EXPECT_THROW(server.advance(), ssl::SslError);
    EXPECT_TRUE(server.failed());
    EXPECT_EQ(server.fatalAlertsSent(), 1u);

    // Dead endpoints never progress and never re-alert.
    EXPECT_FALSE(server.advance());
    server.abort(ssl::AlertDescription::InternalError);
    EXPECT_EQ(server.fatalAlertsSent(), 1u);
}

TEST(AlertContract, PeerFatalAlertIsNotAnswered)
{
    ssl::MemBio c2s, s2c;
    ssl::ServerConfig scfg;
    scfg.certificate = test::testServerCert512();
    scfg.privateKey = test::testKey512().priv;
    ssl::SslServer server(std::move(scfg),
                          ssl::BioEndpoint(&c2s, &s2c));

    Bytes fatal = {21, 3, 0, 0, 2,
                   static_cast<uint8_t>(ssl::AlertLevel::Fatal),
                   static_cast<uint8_t>(
                       ssl::AlertDescription::HandshakeFailure)};
    c2s.write(fatal);
    EXPECT_THROW(server.advance(), ssl::SslError);
    EXPECT_TRUE(server.failed());
    // No alert in response to an alert (the double-alert bug).
    EXPECT_EQ(server.fatalAlertsSent(), 0u);
    EXPECT_EQ(s2c.available(), 0u);
}

// ---------------------------------------------------------------------
// Single-threaded chaos harness

enum class Outcome
{
    Completed,
    Alerted,
    TimedOut,
};

struct ChaosResult
{
    Outcome outcome;
    uint64_t clientAlerts;
    uint64_t serverAlerts;
    uint64_t faults;
};

/**
 * One faulty handshake over a tick-driven FaultyBioPair. Anything
 * other than SslError escaping an endpoint propagates out and fails
 * the test — that is the "never exception escape" half of the
 * invariant; the caller asserts the alert-count half.
 */
ChaosResult
runFaultyHandshake(uint64_t seed, double rate,
                   ssl::SessionStore *store = nullptr)
{
    ssl::FaultPlan plan = ssl::FaultPlan::mixed(seed, rate);
    ssl::FaultyBioPair wires(plan);
    crypto::RandomPool client_pool{poolSeed(seed, 'c')};
    crypto::RandomPool server_pool{poolSeed(seed, 's')};

    ssl::ServerConfig scfg;
    scfg.certificate = test::testServerCert512();
    scfg.privateKey = test::testKey512().priv;
    scfg.sessionCache = store;
    scfg.randomPool = &server_pool;
    ssl::SslServer server(std::move(scfg), wires.serverEnd());

    ssl::ClientConfig ccfg;
    ccfg.randomPool = &client_pool;
    ssl::SslClient client(std::move(ccfg), wires.clientEnd());

    constexpr uint64_t kDeadlineTicks = 512;
    Outcome outcome = Outcome::TimedOut;
    for (uint64_t tick = 0; tick < kDeadlineTicks; ++tick) {
        wires.tick();
        try {
            client.advance();
        } catch (const ssl::SslError &) {
        }
        try {
            server.advance();
        } catch (const ssl::SslError &) {
        }
        if (client.handshakeDone() && server.handshakeDone()) {
            outcome = Outcome::Completed;
            break;
        }
        if (client.failed() || server.failed()) {
            outcome = Outcome::Alerted;
            break;
        }
    }
    if (outcome == Outcome::TimedOut) {
        server.abort(ssl::AlertDescription::InternalError);
        client.abort(ssl::AlertDescription::InternalError);
    }
    return {outcome, client.fatalAlertsSent(), server.fatalAlertsSent(),
            wires.faultsInjected()};
}

TEST(ChaosSingleThreaded, EverySeededHandshakeTerminates)
{
    const uint64_t base = chaosSeed();
    std::cout << "[chaos] SSLA_CHAOS_SEED base = 0x" << std::hex
              << base << std::dec << "\n";

    const double rates[] = {0.02, 0.08, 0.20};
    size_t completed = 0, alerted = 0, timed_out = 0;
    uint64_t faults = 0;
    size_t total = 0;
    for (double rate : rates) {
        for (uint64_t i = 0; i < 250; ++i, ++total) {
            ChaosResult r = runFaultyHandshake(
                base + total * 2654435761ull, rate);
            ASSERT_LE(r.clientAlerts, 1u)
                << "seed " << base + total * 2654435761ull;
            ASSERT_LE(r.serverAlerts, 1u)
                << "seed " << base + total * 2654435761ull;
            faults += r.faults;
            switch (r.outcome) {
              case Outcome::Completed: ++completed; break;
              case Outcome::Alerted: ++alerted; break;
              case Outcome::TimedOut: ++timed_out; break;
            }
        }
    }
    EXPECT_EQ(completed + alerted + timed_out, total);
    // At the low rate plenty of handshakes survive; at any rate some
    // die — a chaos run where nothing happens tests nothing.
    EXPECT_GT(completed, 0u);
    EXPECT_GT(alerted, 0u);
    EXPECT_GT(faults, 0u);
    std::cout << "[chaos] " << total << " handshakes: " << completed
              << " completed, " << alerted << " alerted, " << timed_out
              << " timed out, " << faults << " faults injected\n";
}

TEST(ChaosSingleThreaded, ZeroRateAlwaysCompletes)
{
    for (uint64_t i = 0; i < 8; ++i) {
        ChaosResult r = runFaultyHandshake(chaosSeed() + i, 0.0);
        EXPECT_EQ(static_cast<int>(r.outcome),
                  static_cast<int>(Outcome::Completed));
        EXPECT_EQ(r.faults, 0u);
    }
}

// ---------------------------------------------------------------------
// Chaos matrix: bit-level faults vs record-granular faults

/** Pass @p wire through a standalone FaultyBio under @p plan. */
Bytes
mutateThrough(const ssl::FaultPlan &plan, const Bytes &wire)
{
    ssl::FaultyBio bio(plan);
    bio.write(wire.data(), wire.size());
    Bytes out(bio.available());
    bio.read(out.data(), out.size());
    return out;
}

/**
 * Handshake cleanly, mutate ONE encrypted application-data record
 * under @p plan, deliver it, and report the alert the server dies
 * with (nullopt when the mutation stalls it pre-decrypt instead —
 * e.g. a header length flip that leaves it waiting for more bytes).
 */
std::optional<ssl::AlertDescription>
alertAfterMutatedRecord(const ssl::FaultPlan &plan, uint64_t seed)
{
    ssl::MemBio c2s, s2c;
    crypto::RandomPool client_pool{poolSeed(seed, 'c')};
    crypto::RandomPool server_pool{poolSeed(seed, 's')};

    ssl::ServerConfig scfg;
    scfg.certificate = test::testServerCert512();
    scfg.privateKey = test::testKey512().priv;
    scfg.randomPool = &server_pool;
    ssl::SslServer server(std::move(scfg),
                          ssl::BioEndpoint(&c2s, &s2c));
    ssl::ClientConfig ccfg;
    ccfg.randomPool = &client_pool;
    ssl::SslClient client(std::move(ccfg),
                          ssl::BioEndpoint(&s2c, &c2s));
    ssl::runLockstep(client, server);

    client.writeApplicationData(Bytes(64, 0x42));
    Bytes wire(c2s.available());
    c2s.read(wire.data(), wire.size());
    c2s.write(mutateThrough(plan, wire));
    try {
        while (server.readApplicationData())
            ;
    } catch (const ssl::SslError &) {
    }
    return server.failureAlert();
}

TEST(ChaosMatrix, CiphertextBitflipAlwaysDiesOnBadRecordMac)
{
    // The matrix row record-granular faults cannot fill: EVERY seed
    // lands in the decrypt-then-verify failure path. The record still
    // frames and decrypts; the flipped bit only surfaces when the MAC
    // (or CBC pad) check runs, i.e. bad_record_mac by construction.
    for (uint64_t seed = 1; seed <= 24; ++seed) {
        auto alert = alertAfterMutatedRecord(
            ssl::FaultPlan::bitflip(
                seed, ssl::FaultKind::BitflipCiphertext, 1.0),
            seed);
        ASSERT_TRUE(alert.has_value()) << "seed " << seed;
        EXPECT_EQ(*alert, ssl::AlertDescription::BadRecordMac)
            << "seed " << seed;
    }
}

TEST(ChaosMatrix, HeaderBitflipScattersAcrossAlertPaths)
{
    // The complementary row: a header flip cannot be pinned to one
    // path. Version bits die pre-decrypt on illegal_parameter; length
    // bits either stall the parser (record looks longer) or truncate
    // the ciphertext, which the geometry check deliberately maps to
    // bad_record_mac; type bits survive to the MAC (which covers the
    // type). Both BadRecordMac and non-BadRecordMac outcomes must
    // occur — the deterministic seed scan stops once it has seen both.
    size_t bad_mac = 0, other = 0;
    for (uint64_t seed = 1; seed <= 512 && (bad_mac == 0 || other == 0);
         ++seed) {
        auto alert = alertAfterMutatedRecord(
            ssl::FaultPlan::bitflip(seed, ssl::FaultKind::BitflipHeader,
                                    1.0),
            seed);
        if (alert && *alert == ssl::AlertDescription::BadRecordMac)
            ++bad_mac;
        else
            ++other;
    }
    EXPECT_GT(bad_mac, 0u);
    EXPECT_GT(other, 0u);
}

TEST(ChaosMatrix, RecordGranularCorruptionCannotPinBadRecordMac)
{
    // Contrast row: the pre-existing whole-byte corrupt fault XORs a
    // byte anywhere in the record — header included — so across seeds
    // it scatters between bad_record_mac and pre-decrypt outcomes.
    // Only the bit-level kinds can steer the fault to one path. The
    // seed scan is deterministic (seeded PRNG per plan) and stops as
    // soon as both outcomes appear.
    size_t bad_mac = 0, other = 0;
    for (uint64_t seed = 1; seed <= 512 && (bad_mac == 0 || other == 0);
         ++seed) {
        ssl::FaultPlan plan;
        plan.corruptRate = 1.0;
        plan.seed = seed;
        auto alert = alertAfterMutatedRecord(plan, seed);
        if (alert && *alert == ssl::AlertDescription::BadRecordMac)
            ++bad_mac;
        else
            ++other;
    }
    EXPECT_GT(bad_mac, 0u);
    EXPECT_GT(other, 0u);
}

// ---------------------------------------------------------------------
// Session-cache poisoning

TEST(CachePoisoning, CorruptedFinishedScrubsResumableEntry)
{
    ssl::ShardedSessionCache store(1);

    // Establish a cached session with a clean full handshake.
    ssl::BioPair clean;
    ssl::ServerConfig scfg;
    scfg.certificate = test::testServerCert512();
    scfg.privateKey = test::testKey512().priv;
    scfg.sessionCache = &store;
    ssl::SslServer server(std::move(scfg), clean.serverEnd());
    ssl::SslClient client(ssl::ClientConfig{}, clean.clientEnd());
    ssl::runLockstep(client, server);
    ssl::Session sess = client.session();
    ASSERT_FALSE(sess.id.empty());
    ASSERT_TRUE(store.find(sess.id).has_value());

    // Resume it, corrupting the client's final flight (CCS+Finished)
    // on the wire before the server reads it.
    ssl::MemBio c2s, s2c;
    ssl::ServerConfig scfg2;
    scfg2.certificate = test::testServerCert512();
    scfg2.privateKey = test::testKey512().priv;
    scfg2.sessionCache = &store;
    ssl::SslServer server2(std::move(scfg2),
                           ssl::BioEndpoint(&c2s, &s2c));
    ssl::ClientConfig ccfg2;
    ccfg2.resumeSession = sess;
    ssl::SslClient client2(std::move(ccfg2),
                           ssl::BioEndpoint(&s2c, &c2s));

    while (!client2.handshakeDone()) {
        bool p = client2.advance();
        if (client2.handshakeDone())
            break; // final flight written but not yet read
        p |= server2.advance();
        ASSERT_TRUE(p) << "resumption deadlocked";
    }
    ASSERT_TRUE(client2.resumed());
    ASSERT_FALSE(server2.handshakeDone());

    ASSERT_GT(c2s.available(), 0u);
    Bytes flight(c2s.available());
    c2s.read(flight.data(), flight.size());
    flight.back() ^= 0x01; // inside the encrypted Finished
    c2s.write(flight);

    EXPECT_THROW(server2.advance(), ssl::SslError);
    EXPECT_EQ(server2.fatalAlertsSent(), 1u);
    // The regression: the fatal alert must expel the session — a
    // poisoned entry must not remain resumable.
    EXPECT_FALSE(store.find(sess.id).has_value());
}

TEST(CachePoisoning, TimeoutAbortAlsoScrubs)
{
    ssl::ShardedSessionCache store(1);
    ssl::BioPair clean;
    ssl::ServerConfig scfg;
    scfg.certificate = test::testServerCert512();
    scfg.privateKey = test::testKey512().priv;
    scfg.sessionCache = &store;
    ssl::SslServer server(std::move(scfg), clean.serverEnd());
    ssl::SslClient client(ssl::ClientConfig{}, clean.clientEnd());
    ssl::runLockstep(client, server);
    const Bytes sid = server.session().id;
    ASSERT_TRUE(store.find(sid).has_value());

    // An engine-style deadline teardown on the established session.
    server.abort(ssl::AlertDescription::InternalError);
    EXPECT_TRUE(server.failed());
    EXPECT_FALSE(store.find(sid).has_value());
}

// ---------------------------------------------------------------------
// CryptoPool overload policies and cancellation

/** Holds the pool's single thread busy until released. */
class PoolGate
{
  public:
    explicit PoolGate(serve::CryptoPool &pool)
    {
        job_ = pool.submitRaw([this] {
            std::unique_lock<std::mutex> lock(m_);
            cv_.wait(lock, [this] { return released_; });
            return Bytes();
        });
        // Wait until the worker has actually picked the gate up, so
        // subsequent submits exercise the queue bound deterministically.
        while (pool.queueDepth() != 0)
            std::this_thread::yield();
    }

    void
    release()
    {
        {
            std::lock_guard<std::mutex> lock(m_);
            released_ = true;
        }
        cv_.notify_all();
        job_.wait();
    }

  private:
    std::mutex m_;
    std::condition_variable cv_;
    bool released_ = false;
    crypto::RsaJob job_;
};

TEST(Overload, RejectPolicySurfacesInternalError)
{
    serve::CryptoPool cp(1, /*max_queue=*/1,
                         serve::OverloadPolicy::Reject);
    PoolGate gate(cp);
    crypto::RsaJob filler = cp.submitRaw([] { return Bytes(); });

    serve::PooledProvider pooled(cp);
    ssl::BioPair wires;
    ssl::ServerConfig scfg;
    scfg.certificate = test::testServerCert512();
    scfg.privateKey = test::testKey512().priv;
    scfg.provider = &pooled;
    ssl::SslServer server(std::move(scfg), wires.serverEnd());
    ssl::SslClient client(ssl::ClientConfig{}, wires.clientEnd());

    try {
        ssl::runLockstep(client, server);
        FAIL() << "saturated pool must reject the handshake";
    } catch (const ssl::SslError &e) {
        EXPECT_EQ(e.alert(), ssl::AlertDescription::InternalError);
    }
    EXPECT_TRUE(server.failed());
    EXPECT_EQ(server.failureAlert(),
              ssl::AlertDescription::InternalError);
    EXPECT_EQ(cp.rejectedJobs(), 1u);
    gate.release();
    filler.wait();
}

TEST(Overload, ShedPolicyFallsBackSynchronously)
{
    serve::CryptoPool cp(1, /*max_queue=*/1, serve::OverloadPolicy::Shed);
    PoolGate gate(cp);
    crypto::RsaJob filler = cp.submitRaw([] { return Bytes(); });

    serve::PooledProvider pooled(cp);
    ssl::BioPair wires;
    ssl::ServerConfig scfg;
    scfg.certificate = test::testServerCert512();
    scfg.privateKey = test::testKey512().priv;
    scfg.provider = &pooled;
    ssl::SslServer server(std::move(scfg), wires.serverEnd());
    ssl::SslClient client(ssl::ClientConfig{}, wires.clientEnd());

    // Shed degrades to the synchronous baseline: the handshake
    // completes on the worker despite the saturated pool.
    ssl::runLockstep(client, server);
    EXPECT_TRUE(server.handshakeDone());
    EXPECT_GE(cp.shedJobs(), 1u);
    EXPECT_EQ(cp.rejectedJobs(), 0u);
    gate.release();
    filler.wait();
}

TEST(Cancellation, CancelledQueuedJobNeverRuns)
{
    serve::CryptoPool cp(1);
    PoolGate gate(cp);
    std::atomic<bool> ran{false};
    crypto::RsaJob job = cp.submitRaw([&ran] {
        ran = true;
        return Bytes();
    });
    job.cancel();
    gate.release();
    EXPECT_THROW(job.wait(), std::exception);
    EXPECT_FALSE(ran.load());
    EXPECT_EQ(cp.cancelledJobs(), 1u);
}

TEST(Cancellation, TornDownSessionsJobSkipsFreedKey)
{
    serve::CryptoPool cp(1);
    PoolGate gate(cp);
    serve::PooledProvider pooled(cp);

    // A private key whose lifetime this test controls (the configured
    // keys are process-static and would mask a use-after-free).
    const crypto::RsaPrivateKey &k = *test::testKey512().priv;
    auto key = std::make_shared<crypto::RsaPrivateKey>(
        k.publicKey().n, k.publicKey().e, k.d(), k.p(), k.q());

    ssl::BioPair wires;
    ssl::ServerConfig scfg;
    scfg.certificate = test::testServerCert512();
    scfg.privateKey = key;
    scfg.provider = &pooled;
    auto server = std::make_unique<ssl::SslServer>(
        std::move(scfg), wires.serverEnd());
    ssl::SslClient client(ssl::ClientConfig{}, wires.clientEnd());

    // Drive to the park: the decrypt is queued behind the gate.
    while (client.advance() || server->advance())
        ;
    ASSERT_TRUE(server->waitingOnCrypto());

    // Tear the session down and free the key while the job is still
    // queued. The destructor's cancel means the pool must skip the
    // job without ever dereferencing the key (ASan-verified).
    server.reset();
    key.reset();
    gate.release();
    while (cp.cancelledJobs() == 0)
        std::this_thread::yield();
    EXPECT_EQ(cp.cancelledJobs(), 1u);
}

TEST(Cancellation, TornDownSessionsSignJobSkipsFreedKey)
{
    // The same use-after-free trap for the *other* parked operation:
    // a DHE server torn down while its ServerKeyExchange signature is
    // still queued behind the gate. The KeyExchange destructor must
    // cancel the sign job so the pool never touches the freed key.
    serve::CryptoPool cp(1);
    PoolGate gate(cp);
    serve::PooledProvider pooled(cp);

    const crypto::RsaPrivateKey &k = *test::testKey512().priv;
    auto key = std::make_shared<crypto::RsaPrivateKey>(
        k.publicKey().n, k.publicKey().e, k.d(), k.p(), k.q());

    ssl::BioPair wires;
    ssl::ServerConfig scfg;
    scfg.certificate = test::testServerCert512();
    scfg.privateKey = key;
    scfg.suites = {ssl::CipherSuiteId::DHE_RSA_3DES_EDE_CBC_SHA};
    scfg.provider = &pooled;
    auto server = std::make_unique<ssl::SslServer>(
        std::move(scfg), wires.serverEnd());
    ssl::ClientConfig ccfg;
    ccfg.suites = {ssl::CipherSuiteId::DHE_RSA_3DES_EDE_CBC_SHA};
    ssl::SslClient client(std::move(ccfg), wires.clientEnd());

    // Drive to the park: the sign is queued behind the gate.
    while (client.advance() || server->advance())
        ;
    ASSERT_TRUE(server->waitingOnCrypto());
    ASSERT_EQ(server->cryptoWait(), ssl::CryptoWait::ServerKxSign);

    server.reset();
    key.reset();
    gate.release();
    while (cp.cancelledJobs() == 0)
        std::this_thread::yield();
    EXPECT_EQ(cp.cancelledJobs(), 1u);
}

// ---------------------------------------------------------------------
// ServeEngine chaos

serve::ServeStats
runEngineChaos(size_t workers, size_t conns_per_worker, double rate,
               uint64_t seed,
               ssl::CipherSuiteId suite =
                   ssl::CipherSuiteId::RSA_3DES_EDE_CBC_SHA)
{
    ssl::FaultPlan plan = ssl::FaultPlan::mixed(seed, rate);
    serve::ServeConfig cfg;
    cfg.certificate = &test::testServerCert512();
    cfg.privateKey = test::testKey512().priv;
    cfg.suite = suite;
    cfg.workers = workers;
    cfg.connectionsPerWorker = conns_per_worker;
    cfg.concurrentPerWorker = 8;
    cfg.bulkBytes = 0;
    cfg.resumeFraction = 0.25;
    cfg.seed = seed;
    cfg.faultPlan = &plan;
    serve::ServeEngine engine(std::move(cfg));
    return engine.run();
}

void
checkEngineChaos(size_t workers, size_t conns_per_worker, double rate,
                 ssl::CipherSuiteId suite =
                     ssl::CipherSuiteId::RSA_3DES_EDE_CBC_SHA)
{
    const uint64_t seed = chaosSeed() ^ (workers * 0x9e3779b9ull);
    std::cout << "[chaos] engine workers=" << workers << " seed=0x"
              << std::hex << seed << std::dec << "\n";
    serve::ServeStats stats =
        runEngineChaos(workers, conns_per_worker, rate, seed, suite);
    // The invariant: every session reached a terminal outcome.
    EXPECT_EQ(stats.terminatedSessions(),
              static_cast<uint64_t>(workers * conns_per_worker));
    EXPECT_GT(stats.fullHandshakes() + stats.resumedHandshakes(), 0u);
    EXPECT_GT(stats.failedHandshakes() + stats.timedOutSessions(), 0u);
    EXPECT_GT(stats.faultsInjected(), 0u);
    std::cout << "[chaos]   " << stats.fullHandshakes() << " full, "
              << stats.resumedHandshakes() << " resumed, "
              << stats.failedHandshakes() << " alerted, "
              << stats.timedOutSessions() << " timed out, "
              << stats.evictedSessions() << " evicted\n";
}

TEST(ChaosEngine, SingleWorkerEverySessionTerminates)
{
    checkEngineChaos(1, 1200, 0.05);
}

TEST(ChaosEngine, TwoWorkersEverySessionTerminates)
{
    checkEngineChaos(2, 700, 0.05);
}

TEST(ChaosEngine, FourWorkersEverySessionTerminates)
{
    checkEngineChaos(4, 600, 0.05);
}

TEST(ChaosEngine, DheSuiteEverySessionTerminates)
{
    // The chaos invariant over the DHE_RSA handshake shape: faults
    // landing on ServerKeyExchange (a flight RSA suites never send,
    // carrying a signature worth corrupting) must still leave every
    // session terminated. Fewer connections than the RSA runs — each
    // full handshake pays two modular exponentiations plus the sign.
    checkEngineChaos(2, 80, 0.05,
                     ssl::CipherSuiteId::DHE_RSA_3DES_EDE_CBC_SHA);
}

TEST(ChaosEngine, FaultsWithSaturatedPoolStillTerminate)
{
    // Faults plus a deliberately tiny crypto pool: overloads shed to
    // the synchronous path, faults alert or time out, and the run
    // still accounts for every session.
    serve::CryptoPool pool(1, /*max_queue=*/2,
                           serve::OverloadPolicy::Shed);
    ssl::FaultPlan plan =
        ssl::FaultPlan::mixed(chaosSeed() ^ 0xfeed, 0.03);
    serve::ServeConfig cfg;
    cfg.certificate = &test::testServerCert512();
    cfg.privateKey = test::testKey512().priv;
    cfg.workers = 2;
    cfg.connectionsPerWorker = 150;
    cfg.concurrentPerWorker = 8;
    cfg.cryptoPool = &pool;
    cfg.seed = chaosSeed();
    cfg.faultPlan = &plan;
    serve::ServeEngine engine(std::move(cfg));
    serve::ServeStats stats = engine.run();
    EXPECT_EQ(stats.terminatedSessions(), 300u);
}

TEST(ChaosEngine, AsymmetricPlansEverySessionTerminates)
{
    // Chaos-matrix row: a lossy upstream (client→server under the
    // mixed plan) against a clean downstream (faultPlanReverse with
    // zero rates). Every injected fault therefore lands on the
    // client→server direction, the session invariant still holds, and
    // a clean-downstream run must complete at least as often as not —
    // the asymmetric shape a real lossy uplink presents.
    const uint64_t seed = chaosSeed() ^ 0xa57e;
    ssl::FaultPlan lossy = ssl::FaultPlan::mixed(seed, 0.05);
    ssl::FaultPlan clean;
    clean.seed = seed ^ 1;
    serve::ServeConfig cfg;
    cfg.certificate = &test::testServerCert512();
    cfg.privateKey = test::testKey512().priv;
    cfg.workers = 2;
    cfg.connectionsPerWorker = 400;
    cfg.concurrentPerWorker = 8;
    cfg.resumeFraction = 0.25;
    cfg.seed = seed;
    cfg.faultPlan = &lossy;
    cfg.faultPlanReverse = &clean;
    serve::ServeEngine engine(std::move(cfg));
    serve::ServeStats stats = engine.run();
    EXPECT_EQ(stats.terminatedSessions(), 800u);
    EXPECT_GT(stats.fullHandshakes() + stats.resumedHandshakes(), 0u);
    EXPECT_GT(stats.faultsInjected(), 0u);
}

TEST(ChaosEngine, CleanRunWithDeadlinesLosesNothing)
{
    // Deadlines armed but no faults: nothing may be torn down.
    serve::ServeConfig cfg;
    cfg.certificate = &test::testServerCert512();
    cfg.privateKey = test::testKey512().priv;
    cfg.workers = 2;
    cfg.connectionsPerWorker = 40;
    cfg.bulkBytes = 2048;
    cfg.recordBytes = 1024;
    cfg.tolerateFailures = true;
    cfg.handshakeDeadlineTicks = 10000;
    cfg.idleDeadlineTicks = 10000;
    serve::ServeEngine engine(std::move(cfg));
    serve::ServeStats stats = engine.run();
    EXPECT_EQ(stats.fullHandshakes() + stats.resumedHandshakes(), 80u);
    EXPECT_EQ(stats.failedHandshakes(), 0u);
    EXPECT_EQ(stats.timedOutSessions(), 0u);
}

} // anonymous namespace

#include "ssl/client.hh"

#include <iterator>

#include "perf/probe.hh"
#include "ssl/kx.hh"
#include "util/bytes.hh"

namespace ssla::ssl
{

SslClient::~SslClient()
{
    // A queued CertificateVerify job references config_.clientKey;
    // cancel so the pool never touches it after we are gone (a
    // cancelled queued job is skipped without dereferencing the key).
    if (cvJob_.valid())
        cvJob_.cancel();
}

SslClient::SslClient(ClientConfig config, BioEndpoint bio)
    : SslEndpoint(bio, config.randomPool, config.provider),
      config_(std::move(config))
{
    if (config_.suites.empty())
        throw std::invalid_argument("SslClient: no cipher suites");
    if (config_.maxVersion < ssl3Version ||
        config_.maxVersion > tls1Version) {
        throw std::invalid_argument(
            "SslClient: unsupported maxVersion");
    }
}

bool
SslClient::step()
{
    static const char *const stateNames[] = {
        "SendClientHello",
        "GetServerHello",
        "GetServerCert",
        "GetServerKeyExchange",
        "GetServerDone",
        "SendClientKeyExchange",
        "AwaitCertVerifySign",
        "SendCcsFinished",
        "GetFinished",
        "ResumeGetFinished",
        "ResumeSendCcsFinished",
        "Done",
    };
    const State before = state_;
    bool progressed = dispatch();
    if (state_ != before &&
        static_cast<size_t>(state_) < std::size(stateNames))
        traceEvent(obs::TraceEventKind::StateEnter,
                   stateNames[static_cast<size_t>(state_)],
                   static_cast<uint16_t>(state_));
    return progressed;
}

bool
SslClient::dispatch()
{
    switch (state_) {
      case State::SendClientHello:
        return stepSendClientHello();
      case State::GetServerHello:
        return stepGetServerHello();
      case State::GetServerCert:
        return stepGetServerCert();
      case State::GetServerKeyExchange:
        return stepGetServerKeyExchange();
      case State::GetServerDone:
        return stepGetServerDone();
      case State::SendClientKeyExchange:
        return stepSendClientKeyExchange();
      case State::AwaitCertVerifySign:
        return stepAwaitCertVerifySign();
      case State::SendCcsFinished:
        return stepSendCcsFinished();
      case State::GetFinished:
        return stepGetFinished();
      case State::ResumeGetFinished:
        return stepResumeGetFinished();
      case State::ResumeSendCcsFinished:
        return stepResumeSendCcsFinished();
      case State::Done:
        return false;
    }
    return false;
}

bool
SslClient::stepSendClientHello()
{
    clientRandom_.resize(32);
    pool().generate(clientRandom_.data(), clientRandom_.size());

    ClientHelloMsg hello;
    hello.version = config_.maxVersion;
    hello.random = clientRandom_;
    if (config_.resumeSession && config_.resumeSession->valid())
        hello.sessionId = config_.resumeSession->id;
    for (CipherSuiteId id : config_.suites)
        hello.cipherSuites.push_back(static_cast<uint16_t>(id));
    sendHandshake(HandshakeType::ClientHello, hello.encode());
    record_.flush();

    state_ = State::GetServerHello;
    return true;
}

bool
SslClient::stepGetServerHello()
{
    auto msg = nextHandshakeMessage();
    if (!msg)
        return false;
    if (msg->type != HandshakeType::ServerHello)
        fail(AlertDescription::UnexpectedMessage,
             "expected ServerHello");
    ServerHelloMsg hello = ServerHelloMsg::parse(msg->body);

    if (hello.version < ssl3Version ||
        hello.version > config_.maxVersion) {
        fail(AlertDescription::IllegalParameter,
             "unsupported server version");
    }
    version_ = hello.version;
    record_.setVersion(version_);
    if (!cipherSuiteKnown(hello.cipherSuite))
        fail(AlertDescription::IllegalParameter,
             "server chose an unknown suite");
    bool offered = false;
    for (CipherSuiteId id : config_.suites)
        offered |= (static_cast<uint16_t>(id) == hello.cipherSuite);
    if (!offered)
        fail(AlertDescription::IllegalParameter,
             "server chose a suite we did not offer");

    serverRandom_ = hello.random;
    suite_ = &cipherSuite(static_cast<CipherSuiteId>(hello.cipherSuite));

    resuming_ = config_.resumeSession &&
                config_.resumeSession->valid() &&
                hello.sessionId == config_.resumeSession->id;
    // Suite and resumption are now fixed — instantiate the
    // key-exchange method.
    kx_ = makeClientKx(*suite_, resuming_);
    if (resuming_) {
        if (config_.resumeSession->suiteId != hello.cipherSuite ||
            config_.resumeSession->version != version_) {
            fail(AlertDescription::IllegalParameter,
                 "resumed session parameter mismatch");
        }
        session_ = *config_.resumeSession;
        master_ = session_.masterSecret;
        state_ = State::ResumeGetFinished;
    } else {
        session_ = Session();
        session_.id = hello.sessionId;
        session_.suiteId = hello.cipherSuite;
        session_.version = version_;
        state_ = State::GetServerCert;
    }
    return true;
}

bool
SslClient::stepGetServerCert()
{
    auto msg = nextHandshakeMessage();
    if (!msg)
        return false;
    if (msg->type != HandshakeType::Certificate)
        fail(AlertDescription::UnexpectedMessage,
             "expected Certificate");
    CertificateMsg cm = CertificateMsg::parse(msg->body);
    if (cm.chain.empty())
        fail(AlertDescription::NoCertificate,
             "empty certificate chain");

    std::vector<pki::Certificate> chain;
    try {
        for (const Bytes &encoded : cm.chain)
            chain.push_back(pki::Certificate::parse(encoded));
    } catch (const std::exception &) {
        fail(AlertDescription::BadCertificate,
             "unparseable server certificate");
    }
    cert_ = chain.front();

    if (chain.size() > 1) {
        // A real chain: every link must verify up to the trust anchor
        // (or a self-signed terminal when no anchor is configured).
        if (!pki::verifyChain(chain, config_.trustedIssuer,
                              config_.currentTime)) {
            fail(AlertDescription::BadCertificate,
                 "certificate chain verification failed");
        }
    } else if (config_.trustedIssuer &&
               !cert_.verify(*config_.trustedIssuer)) {
        fail(AlertDescription::BadCertificate,
             "certificate signature check failed");
    }
    if (!config_.expectedSubject.empty() &&
        cert_.info().subject != config_.expectedSubject) {
        fail(AlertDescription::CertificateUnknown,
             "certificate subject mismatch");
    }
    if (config_.currentTime && !cert_.validAt(config_.currentTime))
        fail(AlertDescription::CertificateExpired,
             "certificate outside its validity window");

    state_ = kx_->expectsServerKeyExchange()
                 ? State::GetServerKeyExchange
                 : State::GetServerDone;
    return true;
}

bool
SslClient::stepGetServerKeyExchange()
{
    auto msg = nextHandshakeMessage();
    if (!msg)
        return false;
    if (msg->type != HandshakeType::ServerKeyExchange)
        fail(AlertDescription::UnexpectedMessage,
             "expected ServerKeyExchange");
    // The kx object verifies the signature under the certificate key
    // and vets the ephemeral parameters; protocol failures surface as
    // SslError and take the one-fatal-alert path through advance().
    KxContext ctx{provider(), pool(), clientRandom_, serverRandom_};
    kx_->processServerKeyExchange(ctx, cert_.info().publicKey,
                                  msg->body);

    state_ = State::GetServerDone;
    return true;
}

bool
SslClient::stepGetServerDone()
{
    auto msg = nextHandshakeMessage();
    if (!msg)
        return false;
    if (msg->type == HandshakeType::CertificateRequest) {
        // The server wants client authentication; remember it and
        // keep waiting for ServerHelloDone.
        CertificateRequestMsg::parse(msg->body);
        certificateRequested_ = true;
        return true;
    }
    if (msg->type != HandshakeType::ServerHelloDone)
        fail(AlertDescription::UnexpectedMessage,
             "expected ServerHelloDone");
    state_ = State::SendClientKeyExchange;
    return true;
}

bool
SslClient::stepSendClientKeyExchange()
{
    // If the server asked for a certificate, it goes first (possibly
    // an empty list when we have none to offer).
    bool sending_client_cert = false;
    if (certificateRequested_) {
        CertificateMsg cm;
        if (config_.clientCertificate && config_.clientKey) {
            cm.chain.push_back(config_.clientCertificate->encoded());
            sending_client_cert = true;
        }
        sendHandshake(HandshakeType::Certificate, cm.encode());
    }

    // The kx object builds the ClientKeyExchange body — DHE generates
    // the ephemeral value and agrees on the secret, RSA encrypts a
    // fresh 48-byte pre-master to the certificate key
    // (rsa_public_encryption) — and hands back the pre-master.
    Bytes premaster;
    KxContext ctx{provider(), pool(), clientRandom_, serverRandom_};
    sendHandshake(HandshakeType::ClientKeyExchange,
                  kx_->makeClientKeyExchange(ctx, cert_.info().publicKey,
                                             config_.maxVersion,
                                             premaster));

    master_ = deriveMasterSecret(version_, premaster, clientRandom_,
                                 serverRandom_);
    secureWipe(premaster);
    session_.masterSecret = master_;

    // Prove possession of the certificate key (CertificateVerify).
    // The signature is submitted through the provider, mirroring the
    // server's AwaitKxSign: a synchronous provider resolves before
    // returning and AwaitCertVerifySign falls straight through, a
    // pool-backed provider parks this connection while a crypto
    // thread signs — mutual-auth clients get the same no-sync-RSA
    // guarantee on the hot path the server has.
    if (sending_client_cert) {
        cvJob_ = provider().submitRsaSign(
            *config_.clientKey,
            hsHash_.certVerifyHash(version_, master_));
        traceEvent(obs::TraceEventKind::CryptoSubmit,
                   "cert_verify_sign");
        state_ = State::AwaitCertVerifySign;
        return true;
    }

    state_ = State::SendCcsFinished;
    return true;
}

bool
SslClient::stepAwaitCertVerifySign()
{
    if (cvJob_.valid() && !cvJob_.ready())
        return false; // parked; cryptoWait() reports why
    CertificateVerifyMsg cv;
    try {
        cv.signature = cvJob_.wait();
    } catch (const crypto::ProviderOverloadError &) {
        // A saturated (or deadline-shedding) crypto pool refused the
        // sign: our overload, not the peer's fault — internal_error.
        cvJob_ = crypto::RsaJob();
        fail(AlertDescription::InternalError,
             "crypto engine saturated, handshake rejected");
    } catch (const crypto::ProviderFailureError &) {
        // The supervisor declared the executing crypto thread dead
        // and failed the job so this session terminates cleanly.
        cvJob_ = crypto::RsaJob();
        fail(AlertDescription::InternalError,
             "crypto engine failed, handshake aborted");
    } catch (const std::exception &) {
        cvJob_ = crypto::RsaJob();
        fail(AlertDescription::InternalError,
             "CertificateVerify signing failed");
    }
    cvJob_ = crypto::RsaJob();
    traceEvent(obs::TraceEventKind::CryptoComplete, "cert_verify_sign");
    sendHandshake(HandshakeType::CertificateVerify, cv.encode());
    state_ = State::SendCcsFinished;
    return true;
}

CryptoWait
SslClient::cryptoWait() const
{
    if (state_ == State::AwaitCertVerifySign && cvJob_.valid() &&
        !cvJob_.ready())
        return CryptoWait::CertVerifySign;
    return CryptoWait::None;
}

void
SslClient::onFatal()
{
    if (cvJob_.valid()) {
        if (!cvJob_.ready())
            traceEvent(obs::TraceEventKind::CryptoCancel,
                       "cert_verify_sign");
        cvJob_.cancel();
        cvJob_ = crypto::RsaJob();
    }
}

bool
SslClient::stepSendCcsFinished()
{
    sendChangeCipherSpec();
    const KeyBlock &kb = keyBlock();
    record_.enableSendCipher(*suite_, kb.clientMacSecret, kb.clientKey,
                             kb.clientIv);
    FinishedMsg fin;
    fin.verifyData =
        hsHash_.finishedHash(version_, master_, FinishedSender::Client);
    sendHandshake(HandshakeType::Finished, fin.encode());
    record_.flush();
    state_ = State::GetFinished;
    return true;
}

void
SslClient::onChangeCipherSpec()
{
    if (state_ != State::GetFinished &&
        state_ != State::ResumeGetFinished) {
        fail(AlertDescription::UnexpectedMessage, "unexpected CCS");
    }
    const KeyBlock &kb = keyBlock();
    record_.enableRecvCipher(*suite_, kb.serverMacSecret, kb.serverKey,
                             kb.serverIv);
    expectedPeerFinished_ =
        hsHash_.finishedHash(version_, master_, FinishedSender::Server);
}

bool
SslClient::stepGetFinished()
{
    if (!record_.recvCipherActive()) {
        if (!takeCcsReceived())
            return false;
    } else {
        takeCcsReceived();
    }
    auto msg = nextHandshakeMessage();
    if (!msg)
        return false;
    if (msg->type != HandshakeType::Finished)
        fail(AlertDescription::UnexpectedMessage, "expected Finished");
    auto fin = FinishedMsg::parse(msg->body);
    if (!constantTimeEquals(fin.verifyData, expectedPeerFinished_))
        fail(AlertDescription::HandshakeFailure,
             "server finished hash mismatch");
    state_ = State::Done;
    done_ = true;
    return true;
}

bool
SslClient::stepResumeGetFinished()
{
    if (!record_.recvCipherActive()) {
        if (!takeCcsReceived())
            return false;
    } else {
        takeCcsReceived();
    }
    auto msg = nextHandshakeMessage();
    if (!msg)
        return false;
    if (msg->type != HandshakeType::Finished)
        fail(AlertDescription::UnexpectedMessage, "expected Finished");
    auto fin = FinishedMsg::parse(msg->body);
    if (!constantTimeEquals(fin.verifyData, expectedPeerFinished_))
        fail(AlertDescription::HandshakeFailure,
             "server finished hash mismatch");
    state_ = State::ResumeSendCcsFinished;
    return true;
}

bool
SslClient::stepResumeSendCcsFinished()
{
    sendChangeCipherSpec();
    const KeyBlock &kb = keyBlock();
    record_.enableSendCipher(*suite_, kb.clientMacSecret, kb.clientKey,
                             kb.clientIv);
    FinishedMsg fin;
    fin.verifyData =
        hsHash_.finishedHash(version_, master_, FinishedSender::Client);
    sendHandshake(HandshakeType::Finished, fin.encode());
    record_.flush();
    resumed_ = true;
    state_ = State::Done;
    done_ = true;
    return true;
}

} // namespace ssla::ssl

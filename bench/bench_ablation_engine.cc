/**
 * @file
 * Ablation of the paper's Section 6.2 proposal (3) / Figure 6: a
 * crypto engine whose hash unit and cipher unit process a record in
 * parallel, with only the MAC trailer serialized.
 *
 * MAC and encryption costs are measured on the real record-layer
 * kernels per record size; the overlap model then gives the engine's
 * record latency.
 */

#include <cstdio>

#include "common.hh"
#include "crypto/cipher.hh"
#include "perf/ablation.hh"
#include "perf/report.hh"
#include "ssl/record.hh"

using namespace ssla;
using namespace ssla::bench;
using perf::TablePrinter;

int
main()
{
    const auto &suite =
        ssl::cipherSuite(ssl::CipherSuiteId::RSA_3DES_EDE_CBC_SHA);
    Bytes mac_secret = benchPayload(suite.macLen(), 41);
    Bytes key = benchPayload(suite.keyLen(), 42);
    Bytes iv = benchPayload(suite.ivLen(), 43);

    TablePrinter table(
        "Ablation (Sec 6.2(3)/Fig 6): crypto engine overlapping MAC "
        "and 3DES encryption per record (measured cycles + overlap "
        "model)");
    table.setHeader({"record", "MAC cyc", "encrypt cyc", "serial cyc",
                     "engine cyc", "speedup"});

    for (size_t len : {1024u, 4096u, 16384u}) {
        Bytes data = benchPayload(len, len);
        double mac_cycles = cyclesPerCall(
            [&] {
                ssl::ssl3Mac(suite.mac, mac_secret, 0, 23, data.data(),
                             len);
            },
            30);
        auto cipher =
            benchProvider().createCipher(suite.cipher, key, iv, true);
        Bytes buf = data;
        buf.resize((len + suite.macLen() + suite.blockLen()) /
                   suite.blockLen() * suite.blockLen());
        double enc_cycles = cyclesPerCall(
            [&] { cipher->process(buf.data(), buf.data(), buf.size()); },
            30);

        double trailer_fraction =
            static_cast<double>(buf.size() - len) / buf.size();
        perf::EngineAblation r = perf::ablateCryptoEngine(
            mac_cycles, enc_cycles, trailer_fraction);
        table.addRow({perf::fmt("%zuB", len), perf::fmtF(mac_cycles, 0),
                      perf::fmtF(enc_cycles, 0),
                      perf::fmtF(r.serialCycles, 0),
                      perf::fmtF(r.overlappedCycles, 0),
                      perf::fmt("%.2fx", r.speedup)});
    }
    table.print();

    std::printf("\nThe engine hides the cheaper of the two units "
                "behind the more expensive one (3DES dominates SHA-1 "
                "here), as the paper's Figure 6 pipeline sketches.\n");
    return 0;
}

# Empty compiler generated dependencies file for bench_dhe.
# This may be replaced when dependencies are built.

/**
 * @file
 * Extension bench (paper Section 6.2): the pipelined crypto engine
 * measured end-to-end through the record layer, not simulated.
 *
 * For each CBC suite and payload size, a bulk transfer is sent through
 * two identically-keyed RecordLayers — one on the scalar provider, one
 * on the PipelinedProvider whose worker computes the MAC of record n+1
 * while record n is CBC-encrypted. Two metrics are reported per run:
 *
 *  - cpu cycles/byte: CPU time of the *sending thread* only
 *    (threadCpuCycles()), the cost the engine removes from the paper's
 *    "main CPU" regardless of whether a spare core exists to absorb
 *    the offloaded MAC;
 *  - wall cycles/byte: end-to-end latency, which only improves when
 *    the host can actually run the worker in parallel.
 *
 * The wire bytes of both providers are asserted identical before any
 * timing — the overlap is an implementation detail, not a protocol
 * change. Output is a JSON document on stdout.
 *
 *   ./bench_engine_pipeline [--smoke]
 */

#include <cstdio>
#include <cstring>

#include "common.hh"
#include "crypto/provider.hh"
#include "ssl/record.hh"
#include "util/cycles.hh"

using namespace ssla;
using namespace ssla::bench;
using namespace ssla::ssl;

namespace
{

struct Sender
{
    BioPair wires;
    RecordLayer layer;

    Sender(crypto::Provider &provider, CipherSuiteId id, uint64_t seed)
        : layer(wires.clientEnd(), &provider)
    {
        const CipherSuite &suite = cipherSuite(id);
        Xoshiro256 rng(seed);
        Bytes mac = rng.bytes(suite.macLen());
        Bytes key = rng.bytes(suite.keyLen());
        Bytes iv = rng.bytes(suite.ivLen());
        layer.enableSendCipher(suite, mac, key, iv);
    }

    Bytes
    drain()
    {
        BioEndpoint end = wires.serverEnd();
        Bytes wire(end.available());
        end.read(wire.data(), wire.size());
        return wire;
    }
};

struct Sample
{
    double cpuCyclesPerByte = 0.0;
    double wallCyclesPerByte = 0.0;
};

/** Median cpu/wall cycles-per-byte of sending @p payload @p reps times. */
Sample
measure(crypto::Provider &provider, CipherSuiteId id,
        const Bytes &payload, int reps)
{
    Sender s(provider, id, /*seed=*/77);
    std::vector<uint64_t> cpu, wall;
    cpu.reserve(reps);
    wall.reserve(reps);
    // Warm-up send primes caches, the worker thread and the allocator.
    s.layer.send(ContentType::ApplicationData, payload);
    s.drain();
    for (int i = 0; i < reps; ++i) {
        uint64_t c0 = threadCpuCycles();
        uint64_t w0 = rdcycles();
        s.layer.send(ContentType::ApplicationData, payload);
        uint64_t w1 = rdcycles();
        uint64_t c1 = threadCpuCycles();
        cpu.push_back(c1 - c0);
        wall.push_back(w1 - w0);
        s.drain();
    }
    std::sort(cpu.begin(), cpu.end());
    std::sort(wall.begin(), wall.end());
    Sample r;
    r.cpuCyclesPerByte = static_cast<double>(cpu[cpu.size() / 2]) /
                         static_cast<double>(payload.size());
    r.wallCyclesPerByte = static_cast<double>(wall[wall.size() / 2]) /
                          static_cast<double>(payload.size());
    return r;
}

/** Same payload through both providers must yield identical bytes. */
bool
wireIdentical(crypto::Provider &scalar, crypto::Provider &pipelined,
              CipherSuiteId id, const Bytes &payload)
{
    Sender a(scalar, id, /*seed=*/77);
    Sender b(pipelined, id, /*seed=*/77);
    // Two sends so sequence numbers and the CBC chain both advance
    // through the overlapped path.
    for (int i = 0; i < 2; ++i) {
        a.layer.send(ContentType::ApplicationData, payload);
        b.layer.send(ContentType::ApplicationData, payload);
        if (a.drain() != b.drain())
            return false;
    }
    return true;
}

const char *
suiteName(CipherSuiteId id)
{
    switch (id) {
    case CipherSuiteId::RSA_3DES_EDE_CBC_SHA:
        return "RSA_3DES_EDE_CBC_SHA";
    case CipherSuiteId::RSA_AES_128_CBC_SHA:
        return "RSA_AES_128_CBC_SHA";
    case CipherSuiteId::RSA_RC4_128_SHA:
        return "RSA_RC4_128_SHA";
    default:
        return "?";
    }
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        if (!std::strcmp(argv[i], "--smoke"))
            smoke = true;

    warmUpCpu();

    const CipherSuiteId suites[] = {
        CipherSuiteId::RSA_3DES_EDE_CBC_SHA,
        CipherSuiteId::RSA_AES_128_CBC_SHA,
        CipherSuiteId::RSA_RC4_128_SHA,
    };
    std::vector<size_t> sizes =
        smoke ? std::vector<size_t>{16384, 65536}
              : std::vector<size_t>{4096, 16384, 32768, 65536, 131072};
    const int reps = smoke ? 7 : 21;

    crypto::Provider &scalar = crypto::scalarProvider();
    crypto::PipelinedProvider pipelined;

    bool all_identical = true;
    JsonWriter j;
    j.beginObject();
    j.field("bench", "engine_pipeline");
    j.field("cycle_hz", cycleHz(), 0);
    j.field("smoke", smoke);
    j.beginArray("results");
    // Per-suite worst (largest) cpu ratio over the >= 32 KB payloads:
    // the quantity the Section 6.2 acceptance bound (<= 0.9x) gates.
    std::vector<double> worst(std::size(suites), 0.0);
    for (size_t si = 0; si < std::size(suites); ++si) {
        CipherSuiteId id = suites[si];
        for (size_t size : sizes) {
            Bytes payload = benchPayload(size, size * 31 + 7);
            bool identical =
                wireIdentical(scalar, pipelined, id, payload);
            all_identical = all_identical && identical;
            Sample sc = measure(scalar, id, payload, reps);
            Sample pi = measure(pipelined, id, payload, reps);
            j.beginObject();
            j.field("suite", suiteName(id));
            j.field("payload_bytes", static_cast<uint64_t>(size));
            j.field("wire_identical", identical);
            j.beginObject("scalar");
            j.field("cpu_cycles_per_byte", sc.cpuCyclesPerByte);
            j.field("wall_cycles_per_byte", sc.wallCyclesPerByte);
            j.endObject();
            j.beginObject("pipelined");
            j.field("cpu_cycles_per_byte", pi.cpuCyclesPerByte);
            j.field("wall_cycles_per_byte", pi.wallCyclesPerByte);
            j.endObject();
            j.field("cpu_ratio",
                    pi.cpuCyclesPerByte / sc.cpuCyclesPerByte);
            j.field("wall_ratio",
                    pi.wallCyclesPerByte / sc.wallCyclesPerByte);
            j.endObject();
            if (size >= 32768)
                worst[si] = std::max(
                    worst[si], pi.cpuCyclesPerByte / sc.cpuCyclesPerByte);
        }
    }
    j.endArray();

    // Section 6.2 summary. The offload can only remove the MAC's share
    // of the bulk cost, so suites where the cipher dwarfs the hash
    // (3DES at ~170 software cycles/byte vs ~10 for SHA-1) sit near
    // 1.0 by Amdahl's law; the overlap win criterion is demonstrated
    // on the suites whose MAC share is substantial (AES-CBC, RC4).
    bool win = false;
    j.beginObject("overlap_win_32k");
    for (size_t si = 0; si < std::size(suites); ++si) {
        bool pass = worst[si] > 0.0 && worst[si] <= 0.9;
        win = win || pass;
        j.beginObject(suiteName(suites[si]));
        j.field("worst_cpu_ratio", worst[si]);
        j.field("le_0_9", pass);
        j.endObject();
    }
    j.endObject();
    j.field("overlap_win_demonstrated", win);
    j.field("all_wire_identical", all_identical);
    j.endObject();

    if (!all_identical) {
        std::fprintf(stderr, "FAIL: pipelined wire bytes diverged from "
                             "the scalar path\n");
        return 1;
    }
    if (!win) {
        std::fprintf(stderr, "FAIL: no suite met the <= 0.9x overlap "
                             "bound at >= 32 KB\n");
        return 1;
    }
    return 0;
}

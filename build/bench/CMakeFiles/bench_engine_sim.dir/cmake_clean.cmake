file(REMOVE_RECURSE
  "CMakeFiles/bench_engine_sim.dir/bench_engine_sim.cc.o"
  "CMakeFiles/bench_engine_sim.dir/bench_engine_sim.cc.o.d"
  "bench_engine_sim"
  "bench_engine_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_engine_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

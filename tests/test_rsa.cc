/**
 * @file
 * RSA tests: keygen invariants, encrypt/decrypt, sign/verify, CRT
 * correctness against plain modexp, blinding equivalence and tamper
 * rejection.
 */

#include <gtest/gtest.h>

#include "bn/modexp.hh"
#include "crypto/rsa.hh"
#include "util/bytes.hh"
#include "util/rng.hh"

#include "testkeys.hh"

namespace
{

using namespace ssla;
using namespace ssla::crypto;
using bn::BigNum;

RandomPool &
testPool()
{
    static RandomPool pool(toBytes("rsa-tests"));
    return pool;
}

TEST(RsaKeygen, ComponentInvariants)
{
    const RsaKeyPair &kp = test::testKey512();
    const RsaPrivateKey &priv = *kp.priv;

    EXPECT_EQ(kp.pub.bits(), 512u);
    EXPECT_EQ(priv.p() * priv.q(), kp.pub.n);
    EXPECT_NE(priv.p(), priv.q());
    // e*d == 1 mod phi.
    BigNum phi = (priv.p() - BigNum(1)) * (priv.q() - BigNum(1));
    EXPECT_TRUE(BigNum::modMul(kp.pub.e, priv.d(), phi).isOne());
}

TEST(RsaKeygen, RequestedSizes)
{
    EXPECT_EQ(test::testKey1024().pub.bits(), 1024u);
    EXPECT_EQ(test::testKey1024().pub.blockLen(), 128u);
    EXPECT_EQ(test::testKey512().pub.blockLen(), 64u);
}

TEST(RsaKeygen, RejectsBadParameters)
{
    auto rng = test::seededRng(1);
    EXPECT_THROW(rsaGenerateKey(64, rng), std::invalid_argument);
    EXPECT_THROW(rsaGenerateKey(512, rng, 4), std::invalid_argument);
}

TEST(RsaKeygen, PrivateKeyValidatesConsistency)
{
    const RsaPrivateKey &a = *test::testKey512().priv;
    // n != p*q must be rejected.
    EXPECT_THROW(RsaPrivateKey(a.publicKey().n + BigNum(2),
                               a.publicKey().e, a.d(), a.p(), a.q()),
                 std::invalid_argument);
}

TEST(Rsa, RawRoundTripIdentity)
{
    const RsaKeyPair &kp = test::testKey512();
    Xoshiro256 rng(4);
    for (int i = 0; i < 10; ++i) {
        BigNum m = BigNum::fromBytesBE(rng.bytes(40));
        BigNum c = rsaPublicRaw(kp.pub, m);
        EXPECT_EQ(kp.priv->privateRaw(c), m);
    }
}

TEST(Rsa, CrtMatchesPlainModExp)
{
    const RsaKeyPair &kp = test::testKey512();
    Xoshiro256 rng(5);
    for (int i = 0; i < 5; ++i) {
        BigNum c = BigNum::fromBytesBE(rng.bytes(50));
        BigNum via_crt = kp.priv->privateRaw(c, false);
        BigNum plain = bn::modExp(c, kp.priv->d(), kp.pub.n);
        EXPECT_EQ(via_crt, plain);
    }
}

TEST(Rsa, BlindingDoesNotChangeResult)
{
    const RsaKeyPair &kp = test::testKey512();
    Xoshiro256 rng(6);
    for (int i = 0; i < 5; ++i) {
        BigNum c = BigNum::fromBytesBE(rng.bytes(48));
        EXPECT_EQ(kp.priv->privateRaw(c, true),
                  kp.priv->privateRaw(c, false));
    }
}

TEST(Rsa, BlindingStableAcrossManyUses)
{
    // The blinding pair squares each use and refreshes periodically;
    // results must stay correct throughout.
    const RsaKeyPair &kp = test::testKey512();
    BigNum c = BigNum::fromDecimal("123456789");
    BigNum expect = kp.priv->privateRaw(c, false);
    for (int i = 0; i < 80; ++i)
        EXPECT_EQ(kp.priv->privateRaw(c, true), expect) << "use " << i;
}

TEST(Rsa, RawInputOutOfRangeThrows)
{
    const RsaKeyPair &kp = test::testKey512();
    EXPECT_THROW(rsaPublicRaw(kp.pub, kp.pub.n), std::domain_error);
    EXPECT_THROW(kp.priv->privateRaw(kp.pub.n + BigNum(1)),
                 std::domain_error);
}

TEST(Rsa, EncryptDecryptRoundTrip)
{
    const RsaKeyPair &kp = test::testKey1024();
    for (size_t len : {0u, 1u, 48u, 100u, 117u}) {
        Bytes msg(len);
        for (size_t i = 0; i < len; ++i)
            msg[i] = static_cast<uint8_t>(i * 7);
        Bytes cipher = rsaPublicEncrypt(kp.pub, msg, testPool());
        EXPECT_EQ(cipher.size(), kp.pub.blockLen());
        EXPECT_EQ(rsaPrivateDecrypt(*kp.priv, cipher), msg);
    }
}

TEST(Rsa, EncryptionIsRandomized)
{
    const RsaKeyPair &kp = test::testKey1024();
    Bytes msg = toBytes("same message");
    Bytes c1 = rsaPublicEncrypt(kp.pub, msg, testPool());
    Bytes c2 = rsaPublicEncrypt(kp.pub, msg, testPool());
    EXPECT_NE(c1, c2); // random PKCS#1 type-2 padding
}

TEST(Rsa, DecryptRejectsTamperedCiphertext)
{
    const RsaKeyPair &kp = test::testKey1024();
    Bytes cipher =
        rsaPublicEncrypt(kp.pub, toBytes("attack at dawn"), testPool());
    cipher[10] ^= 0x01;
    EXPECT_THROW(rsaPrivateDecrypt(*kp.priv, cipher),
                 std::runtime_error);
}

TEST(Rsa, DecryptRejectsWrongLength)
{
    const RsaKeyPair &kp = test::testKey1024();
    EXPECT_THROW(rsaPrivateDecrypt(*kp.priv, Bytes(127)),
                 std::invalid_argument);
}

TEST(Rsa, DecryptWithWrongKeyFails)
{
    Bytes cipher = rsaPublicEncrypt(test::testKey1024().pub,
                                    toBytes("secret"), testPool());
    EXPECT_THROW(rsaPrivateDecrypt(*test::otherKey1024().priv, cipher),
                 std::runtime_error);
}

TEST(Rsa, SignVerifyRoundTrip)
{
    const RsaKeyPair &kp = test::testKey1024();
    Bytes digest(36, 0x5c); // MD5||SHA1-sized payload
    Bytes sig = rsaSign(*kp.priv, digest);
    EXPECT_EQ(sig.size(), kp.pub.blockLen());
    EXPECT_TRUE(rsaVerify(kp.pub, digest, sig));
}

TEST(Rsa, VerifyRejectsTamperedSignature)
{
    const RsaKeyPair &kp = test::testKey1024();
    Bytes digest(36, 0x5c);
    Bytes sig = rsaSign(*kp.priv, digest);
    sig[0] ^= 1;
    EXPECT_FALSE(rsaVerify(kp.pub, digest, sig));
}

TEST(Rsa, VerifyRejectsTamperedMessage)
{
    const RsaKeyPair &kp = test::testKey1024();
    Bytes digest(36, 0x5c);
    Bytes sig = rsaSign(*kp.priv, digest);
    digest[0] ^= 1;
    EXPECT_FALSE(rsaVerify(kp.pub, digest, sig));
}

TEST(Rsa, VerifyRejectsWrongKey)
{
    Bytes digest(36, 0x11);
    Bytes sig = rsaSign(*test::testKey1024().priv, digest);
    EXPECT_FALSE(rsaVerify(test::otherKey1024().pub, digest, sig));
}

TEST(Rsa, VerifyRejectsWrongLengthSignature)
{
    const RsaKeyPair &kp = test::testKey1024();
    EXPECT_FALSE(rsaVerify(kp.pub, Bytes(36), Bytes(64)));
}

TEST(Rsa, CrossKeySizesInterop)
{
    // The same code paths must work at both paper key sizes.
    for (const RsaKeyPair *kp :
         {&test::testKey512(), &test::testKey1024()}) {
        Bytes msg = toBytes("pre-master-secret-48-bytes-like-payload!");
        Bytes c = rsaPublicEncrypt(kp->pub, msg, testPool());
        EXPECT_EQ(rsaPrivateDecrypt(*kp->priv, c), msg);
    }
}

} // anonymous namespace

/**
 * @file
 * Shared deterministic RSA keys and certificates for the test suite.
 * Key generation is expensive; every test that needs a key reuses
 * these lazily generated, seed-fixed instances.
 */

#ifndef SSLA_TESTS_TESTKEYS_HH
#define SSLA_TESTS_TESTKEYS_HH

#include "crypto/rsa.hh"
#include "pki/cert.hh"
#include "util/rng.hh"

namespace ssla::test
{

/** Deterministic RngFunc from a Xoshiro seed. */
inline bn::RngFunc
seededRng(uint64_t seed)
{
    auto rng = std::make_shared<Xoshiro256>(seed);
    return [rng](uint8_t *out, size_t len) { rng->fill(out, len); };
}

/** A fixed 512-bit key pair (paper's small key size). */
inline const crypto::RsaKeyPair &
testKey512()
{
    static const crypto::RsaKeyPair kp =
        crypto::rsaGenerateKey(512, seededRng(0x512512));
    return kp;
}

/** A fixed 1024-bit key pair (paper's large key size). */
inline const crypto::RsaKeyPair &
testKey1024()
{
    static const crypto::RsaKeyPair kp =
        crypto::rsaGenerateKey(1024, seededRng(0x10241024));
    return kp;
}

/** A second, independent 1024-bit key (wrong-key tests). */
inline const crypto::RsaKeyPair &
otherKey1024()
{
    static const crypto::RsaKeyPair kp =
        crypto::rsaGenerateKey(1024, seededRng(0xdeadbeef));
    return kp;
}

/** A self-signed server certificate over testKey512() — the chaos
 *  tests run thousands of handshakes, so they use the small key. */
inline const pki::Certificate &
testServerCert512()
{
    static const pki::Certificate cert = [] {
        pki::CertificateInfo info;
        info.serial = 43;
        info.issuer = "Unit Test CA";
        info.subject = "unit.test.server.512";
        info.notBefore = 1000;
        info.notAfter = 2000000000;
        info.publicKey = testKey512().pub;
        return pki::Certificate::issue(info, *testKey512().priv);
    }();
    return cert;
}

/** A self-signed server certificate over testKey1024(). */
inline const pki::Certificate &
testServerCert()
{
    static const pki::Certificate cert = [] {
        pki::CertificateInfo info;
        info.serial = 42;
        info.issuer = "Unit Test CA";
        info.subject = "unit.test.server";
        info.notBefore = 1000;
        info.notAfter = 2000000000;
        info.publicKey = testKey1024().pub;
        return pki::Certificate::issue(info, *testKey1024().priv);
    }();
    return cert;
}

} // namespace ssla::test

#endif // SSLA_TESTS_TESTKEYS_HH

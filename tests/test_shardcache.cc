/**
 * @file
 * ShardedSessionCache tests: single-threaded semantics match the plain
 * SessionCache, plus the concurrency regressions the lock striping
 * exists for (run under TSan in CI).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "ssl/shardcache.hh"
#include "util/bytes.hh"

namespace
{

using namespace ssla;
using ssl::Session;
using ssl::ShardedSessionCache;

Session
makeSession(uint32_t n)
{
    Session s;
    s.id = Bytes(32, 0);
    s.id[0] = static_cast<uint8_t>(n);
    s.id[1] = static_cast<uint8_t>(n >> 8);
    s.id[2] = static_cast<uint8_t>(n >> 16);
    s.id[3] = static_cast<uint8_t>(n >> 24);
    s.suiteId = 0x000a;
    s.masterSecret = Bytes(48, static_cast<uint8_t>(n * 7 + 1));
    return s;
}

TEST(ShardedSessionCache, StoreFindRemove)
{
    ShardedSessionCache cache(8);
    Session s = makeSession(1);
    cache.store(s);
    auto found = cache.find(s.id);
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(found->masterSecret, s.masterSecret);
    EXPECT_EQ(cache.size(), 1u);
    cache.remove(s.id);
    EXPECT_FALSE(cache.find(s.id).has_value());
    EXPECT_EQ(cache.size(), 0u);
}

TEST(ShardedSessionCache, InvalidSessionsAreNotStored)
{
    ShardedSessionCache cache(4);
    cache.store(Session{}); // no id, no master secret
    EXPECT_EQ(cache.size(), 0u);
}

TEST(ShardedSessionCache, SessionsSpreadAcrossShards)
{
    ShardedSessionCache cache(8);
    std::vector<int> per_shard(cache.shardCount(), 0);
    for (uint32_t i = 0; i < 256; ++i) {
        Session s = makeSession(i);
        cache.store(s);
        ++per_shard[cache.shardIndexFor(s.id)];
    }
    EXPECT_EQ(cache.size(), 256u);
    // FNV over distinct ids must not funnel everything into one
    // stripe; demand every shard got something.
    for (size_t i = 0; i < per_shard.size(); ++i)
        EXPECT_GT(per_shard[i], 0) << "shard " << i << " unused";
}

TEST(ShardedSessionCache, ShardCountRoundsUpToOne)
{
    ShardedSessionCache cache(0);
    EXPECT_EQ(cache.shardCount(), 1u);
    Session s = makeSession(9);
    cache.store(s);
    EXPECT_TRUE(cache.find(s.id).has_value());
}

TEST(ShardedSessionCache, ExpiryHonoredPerShard)
{
    ShardedSessionCache cache(4, /*max_entries_per_shard=*/64,
                              /*ttl_seconds=*/10);
    uint64_t fake_now = 100;
    cache.setClock([&fake_now] { return fake_now; });
    Session s = makeSession(3);
    cache.store(s);
    EXPECT_TRUE(cache.find(s.id).has_value());
    fake_now = 111; // past the 10s ttl
    EXPECT_FALSE(cache.find(s.id).has_value());
    EXPECT_EQ(cache.expirations(), 1u);
}

// The TSan regression the striping exists for: store/find/remove from
// many threads at once, including id collisions across threads.
TEST(ShardedSessionCache, ConcurrentStoreFindRemove)
{
    ShardedSessionCache cache(8, /*max_entries_per_shard=*/128);
    constexpr int kThreads = 8;
    constexpr int kOpsPerThread = 400;
    std::atomic<uint64_t> found{0};

    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&cache, &found, t] {
            for (int i = 0; i < kOpsPerThread; ++i) {
                // Overlapping key space: every thread touches ids the
                // others are storing/removing.
                uint32_t id = static_cast<uint32_t>((t * 37 + i) % 97);
                Session s = makeSession(id);
                switch (i % 3) {
                case 0:
                    cache.store(s);
                    break;
                case 1:
                    if (cache.find(s.id))
                        found.fetch_add(1,
                                        std::memory_order_relaxed);
                    break;
                case 2:
                    cache.remove(s.id);
                    break;
                }
            }
        });
    for (auto &t : threads)
        t.join();

    // No crash/race is the real assertion (TSan); sanity-check the
    // counters still add up. Each thread issues one find per i%3==1,
    // i.e. kOpsPerThread/3 of them.
    EXPECT_EQ(cache.hits() + cache.misses(),
              static_cast<uint64_t>(kThreads) * (kOpsPerThread / 3));
    EXPECT_LE(cache.size(), 97u);
}

// Concurrent expiry sweep: finds racing stores while the clock moves.
TEST(ShardedSessionCache, ConcurrentExpiry)
{
    ShardedSessionCache cache(4, /*max_entries_per_shard=*/64,
                              /*ttl_seconds=*/5);
    std::atomic<uint64_t> fake_now{0};
    cache.setClock([&fake_now] {
        return fake_now.load(std::memory_order_relaxed);
    });

    std::thread clock_mover([&fake_now] {
        for (int i = 0; i < 50; ++i) {
            fake_now.fetch_add(1, std::memory_order_relaxed);
            std::this_thread::yield();
        }
    });
    std::vector<std::thread> workers;
    for (int t = 0; t < 4; ++t)
        workers.emplace_back([&cache, t] {
            for (uint32_t i = 0; i < 200; ++i) {
                Session s = makeSession(t * 200 + i);
                cache.store(s);
                cache.find(s.id);
            }
        });
    clock_mover.join();
    for (auto &t : workers)
        t.join();
    // Entries stored before the clock advanced past their ttl expired;
    // the structure stays consistent either way.
    EXPECT_LE(cache.size(), 4u * 64u);
}

// Single-shard LRU eviction racing finds: one thread stores enough
// distinct sessions to evict continuously while another hammers find()
// on a working set that is being evicted under it. With one stripe,
// every operation contends on the same mutex and the same LRU list —
// the sharpest schedule for a list-splice/map-erase race.
TEST(ShardedSessionCache, SingleShardEvictionVsFindRace)
{
    ShardedSessionCache cache(1, /*max_entries_per_shard=*/16);
    std::atomic<bool> stop{false};

    std::thread finder([&cache, &stop] {
        while (!stop.load(std::memory_order_relaxed)) {
            for (uint32_t i = 0; i < 32; ++i)
                cache.find(makeSession(i).id);
        }
    });
    for (uint32_t round = 0; round < 200; ++round)
        for (uint32_t i = 0; i < 32; ++i)
            cache.store(makeSession(round * 32 + i));
    stop.store(true, std::memory_order_relaxed);
    finder.join();

    // Capacity bound held throughout.
    EXPECT_LE(cache.size(), 16u);
}

} // anonymous namespace

file(REMOVE_RECURSE
  "CMakeFiles/handshake_anatomy.dir/handshake_anatomy.cpp.o"
  "CMakeFiles/handshake_anatomy.dir/handshake_anatomy.cpp.o.d"
  "handshake_anatomy"
  "handshake_anatomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/handshake_anatomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

/**
 * @file
 * SSLv3 handshake message encodings (RFC 6101 section 5.6).
 *
 * Each message struct carries its semantic fields and knows how to
 * encode itself into / parse itself out of the 4-byte-header handshake
 * framing. The server-authentication RSA flow needs exactly the
 * messages of the paper's Figure 1.
 */

#ifndef SSLA_SSL_MESSAGES_HH
#define SSLA_SSL_MESSAGES_HH

#include <optional>
#include <vector>

#include "ssl/alert.hh"
#include "ssl/ciphersuite.hh"
#include "util/bytes.hh"

namespace ssla::ssl
{

/** Handshake message types. */
enum class HandshakeType : uint8_t
{
    HelloRequest = 0,
    ClientHello = 1,
    ServerHello = 2,
    Certificate = 11,
    ServerKeyExchange = 12,
    CertificateRequest = 13,
    ServerHelloDone = 14,
    CertificateVerify = 15,
    ClientKeyExchange = 16,
    Finished = 20,
};

/** Static name of a handshake message type (for traces and logs). */
const char *handshakeTypeName(HandshakeType type);

/** A framed handshake message: type, then the body. */
struct HandshakeMessage
{
    HandshakeType type;
    Bytes body;

    /** Serialize with the 1-byte type + 3-byte length header. */
    Bytes encode() const;

    /**
     * Parse one message from the front of @p data at @p offset.
     * Returns nullopt when the buffer holds only part of a message;
     * advances @p offset past the message otherwise.
     */
    static std::optional<HandshakeMessage> parse(const Bytes &data,
                                                 size_t &offset);
};

/** ClientHello. */
struct ClientHelloMsg
{
    uint16_t version = 0x0300;
    Bytes random;    ///< 32 bytes
    Bytes sessionId; ///< 0..32 bytes
    std::vector<uint16_t> cipherSuites;
    std::vector<uint8_t> compressionMethods = {0};

    Bytes encode() const;
    static ClientHelloMsg parse(const Bytes &body);
};

/** ServerHello. */
struct ServerHelloMsg
{
    uint16_t version = 0x0300;
    Bytes random;
    Bytes sessionId;
    uint16_t cipherSuite = 0;
    uint8_t compressionMethod = 0;

    Bytes encode() const;
    static ServerHelloMsg parse(const Bytes &body);
};

/** Certificate: a chain of encoded certificates, leaf first. */
struct CertificateMsg
{
    std::vector<Bytes> chain;

    Bytes encode() const;
    static CertificateMsg parse(const Bytes &body);
};

/**
 * ClientKeyExchange. In SSLv3 the RSA-encrypted pre-master fills the
 * body with no length prefix; for DHE suites the body is instead the
 * client's public value as a 16-bit-length vector (use the dhe
 * encode/parse pair).
 */
struct ClientKeyExchangeMsg
{
    Bytes encryptedPreMaster;

    Bytes encode() const;
    static ClientKeyExchangeMsg parse(const Bytes &body);

    /** DHE form: dh_Yc as an opaque<1..2^16-1>. */
    static Bytes encodeDhe(const Bytes &public_value);
    static Bytes parseDhe(const Bytes &body);
};

/**
 * ServerKeyExchange (DHE_RSA form): the ephemeral group and public
 * value, followed by the RSA signature over the randoms and params
 * (MD5 || SHA1 digest pair, PKCS#1 type 1).
 */
struct ServerKeyExchangeMsg
{
    Bytes p;         ///< dh_p, big-endian
    Bytes g;         ///< dh_g
    Bytes publicValue; ///< dh_Ys
    Bytes signature;

    Bytes encode() const;
    static ServerKeyExchangeMsg parse(const Bytes &body);

    /** The byte string the signature covers (the three params). */
    Bytes signedParams() const;
};

/**
 * CertificateRequest: the certificate types the server accepts (only
 * rsa_sign here) and an (unused, empty) CA-name list.
 */
struct CertificateRequestMsg
{
    std::vector<uint8_t> certificateTypes = {1}; // rsa_sign

    Bytes encode() const;
    static CertificateRequestMsg parse(const Bytes &body);
};

/** CertificateVerify: the client's signature over the transcript. */
struct CertificateVerifyMsg
{
    Bytes signature;

    Bytes encode() const;
    static CertificateVerifyMsg parse(const Bytes &body);
};

/** Finished: 36-byte (SSLv3) or 12-byte (TLS 1.0) verify data. */
struct FinishedMsg
{
    Bytes verifyData;

    Bytes encode() const;
    static FinishedMsg parse(const Bytes &body);
};

} // namespace ssla::ssl

#endif // SSLA_SSL_MESSAGES_HH

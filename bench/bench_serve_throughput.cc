/**
 * @file
 * Data-plane throughput bench and correctness gate for the zero-copy
 * scatter-gather send path (span-based RecordLayer + writev Bio +
 * ServeEngine batched flush).
 *
 * Two hard gates decide the exit code:
 *
 *  1. Wire identity: the refactored in-place send path must produce
 *     byte-identical records to the pre-refactor copy path. The old
 *     sealing algorithm (fragment copy -> MAC append -> SSLv3 pad ->
 *     encrypt -> header + fragment) is reimplemented here verbatim as
 *     the reference, keyed identically, and compared across suites,
 *     payload sizes (including the 16384/16385 fragmentation boundary
 *     and the empty record) and multi-slice gather sends.
 *
 *  2. Steady-state zero-copy/zero-alloc: over a warmed-up bulk window
 *     the record.scratch_grows and record.pending_spills counters must
 *     not move — every record is laid out in the reusable arena (or a
 *     recycled pipelined staging buffer) and accepted whole by the
 *     transport. Checked for both the scalar and pipelined providers.
 *
 * The reported (never gated) numbers are a record-size sweep of the
 * data plane: direct RecordLayer gather-send throughput, and a
 * ServeEngine run in data-plane session mode (bulkBatchRecords > 0,
 * cross-session batched flush) with records/s and MB/s per worker.
 * Output is BENCH_throughput.json on stdout (see EXPERIMENTS.md).
 *
 *   ./bench_serve_throughput [--smoke]
 */

#include <cstdio>
#include <cstring>
#include <thread>

#include "common.hh"
#include "crypto/provider.hh"
#include "pki/cert.hh"
#include "serve/engine.hh"
#include "ssl/record.hh"
#include "util/cycles.hh"

using namespace ssla;
using namespace ssla::bench;
using namespace ssla::ssl;

namespace
{

struct Sender
{
    BioPair wires;
    RecordLayer layer;

    Sender(crypto::Provider &provider, CipherSuiteId id, uint64_t seed)
        : layer(wires.clientEnd(), &provider)
    {
        const CipherSuite &suite = cipherSuite(id);
        Xoshiro256 rng(seed);
        Bytes mac = rng.bytes(suite.macLen());
        Bytes key = rng.bytes(suite.keyLen());
        Bytes iv = rng.bytes(suite.ivLen());
        layer.enableSendCipher(suite, mac, key, iv);
    }

    Bytes
    drain()
    {
        BioEndpoint end = wires.serverEnd();
        Bytes wire(end.available());
        end.read(wire.data(), wire.size());
        return wire;
    }
};

/**
 * The pre-refactor copy path, preserved as the reference sealer: one
 * heap fragment per record, assembled by append (payload copy, MAC
 * copy, pad append), encrypted out of place conceptually (here in
 * place on the private copy — the bytes are what matter), then header
 * and fragment concatenated into the wire. Keyed with the same
 * rng-derived material as a Sender built from the same seed.
 */
struct LegacySealer
{
    const CipherSuite &suite;
    Bytes macSecret;
    std::unique_ptr<crypto::Cipher> cipher;
    uint64_t seq = 0;

    LegacySealer(crypto::Provider &provider, CipherSuiteId id,
                 uint64_t seed)
        : suite(cipherSuite(id))
    {
        Xoshiro256 rng(seed);
        macSecret = rng.bytes(suite.macLen());
        Bytes key = rng.bytes(suite.keyLen());
        Bytes iv = rng.bytes(suite.ivLen());
        cipher = provider.createCipher(suite.cipher, key, iv, true);
    }

    Bytes
    seal(ContentType type, const Bytes &payload)
    {
        Bytes wire;
        size_t sent = 0;
        do {
            size_t chunk = std::min(payload.size() - sent, maxFragment);
            Bytes fragment(payload.begin() + sent,
                           payload.begin() + sent + chunk);
            Bytes mac = ssl3Mac(suite.mac, macSecret, seq++,
                                static_cast<uint8_t>(type),
                                fragment.data(), fragment.size());
            fragment.insert(fragment.end(), mac.begin(), mac.end());
            size_t block = suite.blockLen();
            if (block > 1) {
                size_t pad =
                    (block - (fragment.size() + 1) % block) % block;
                fragment.insert(fragment.end(), pad + 1,
                                static_cast<uint8_t>(pad));
            }
            cipher->process(fragment.data(), fragment.data(),
                            fragment.size());
            wire.push_back(static_cast<uint8_t>(type));
            wire.push_back(0x03);
            wire.push_back(0x00);
            wire.push_back(
                static_cast<uint8_t>(fragment.size() >> 8));
            wire.push_back(static_cast<uint8_t>(fragment.size()));
            wire.insert(wire.end(), fragment.begin(), fragment.end());
            sent += chunk;
        } while (sent < payload.size());
        return wire;
    }
};

/** Split @p payload into up to three uneven slices. */
size_t
splitSpans(const Bytes &payload, ConstSpan *iov)
{
    if (payload.size() < 3) {
        iov[0] = ConstSpan{payload.data(), payload.size()};
        return 1;
    }
    size_t a = payload.size() / 3;
    size_t b = payload.size() / 2;
    iov[0] = ConstSpan{payload.data(), a};
    iov[1] = ConstSpan{payload.data() + a, b - a};
    iov[2] = ConstSpan{payload.data() + b, payload.size() - b};
    return 3;
}

/**
 * Gate 1: span path vs legacy copy path, byte for byte. Each payload
 * goes out twice — once as one span, once gathered from three — so
 * both the contiguous and the scatter entry see the comparison, with
 * sequence numbers and the CBC chain advancing through all of it.
 */
bool
wireIdentical(crypto::Provider &provider, CipherSuiteId id,
              const std::vector<size_t> &sizes)
{
    Sender s(provider, id, /*seed=*/4242);
    LegacySealer legacy(crypto::scalarProvider(), id, /*seed=*/4242);
    for (size_t size : sizes) {
        Bytes payload = benchPayload(size, size * 131 + 11);
        s.layer.send(ContentType::ApplicationData, payload);
        if (s.drain() !=
            legacy.seal(ContentType::ApplicationData, payload))
            return false;
        ConstSpan iov[3];
        size_t iovcnt = splitSpans(payload, iov);
        s.layer.sendMany(ContentType::ApplicationData, iov, iovcnt);
        if (s.drain() !=
            legacy.seal(ContentType::ApplicationData, payload))
            return false;
    }
    return true;
}

struct SteadyState
{
    uint64_t scratchGrows = 0;
    uint64_t pendingSpills = 0;

    bool ok() const { return scratchGrows == 0 && pendingSpills == 0; }
};

/**
 * Gate 2: warm the send path up (arena and staging buffers reach their
 * high-water size), then move a bulk window through it and report how
 * far the allocation/spill counters moved. Zero is the contract.
 */
SteadyState
measureSteadyState(crypto::Provider &provider, CipherSuiteId id,
                   size_t record_bytes, int records)
{
    obs::MetricsRegistry registry;
    RecordCounters counters = RecordCounters::resolve(registry);
    Sender s(provider, id, /*seed=*/99);
    s.layer.bindCounters(&counters);

    Bytes payload = benchPayload(record_bytes, record_bytes + 3);
    ConstSpan iov[3];
    size_t iovcnt = splitSpans(payload, iov);
    // Warm-up: the arena grows to its steady size here (counted, but
    // before the measurement window).
    for (int i = 0; i < 4; ++i) {
        s.layer.send(ContentType::ApplicationData, payload);
        s.layer.sendMany(ContentType::ApplicationData, iov, iovcnt);
        s.drain();
    }
    obs::MetricsSnapshot before = registry.snapshot();
    for (int i = 0; i < records; ++i) {
        s.layer.sendMany(ContentType::ApplicationData, iov, iovcnt);
        if ((i & 7) == 7)
            s.drain();
    }
    s.drain();
    obs::MetricsSnapshot after = registry.snapshot();
    SteadyState r;
    r.scratchGrows = after.counter("record.scratch_grows") -
                     before.counter("record.scratch_grows");
    r.pendingSpills = after.counter("record.pending_spills") -
                      before.counter("record.pending_spills");
    return r;
}

struct LayerSample
{
    double recordsPerSec = 0.0;
    double mbPerSec = 0.0;
};

/** Direct RecordLayer gather-send throughput at one record size. */
LayerSample
measureLayer(crypto::Provider &provider, CipherSuiteId id,
             size_t record_bytes, int reps)
{
    Sender s(provider, id, /*seed=*/7);
    Bytes payload = benchPayload(record_bytes, record_bytes * 5 + 1);
    ConstSpan iov[3];
    size_t iovcnt = splitSpans(payload, iov);
    const int batch = 32;
    // Warm-up.
    for (int i = 0; i < batch; ++i)
        s.layer.sendMany(ContentType::ApplicationData, iov, iovcnt);
    s.drain();
    std::vector<uint64_t> wall;
    wall.reserve(reps);
    for (int r = 0; r < reps; ++r) {
        uint64_t w0 = rdcycles();
        for (int i = 0; i < batch; ++i)
            s.layer.sendMany(ContentType::ApplicationData, iov,
                             iovcnt);
        wall.push_back(rdcycles() - w0);
        s.drain();
    }
    std::sort(wall.begin(), wall.end());
    double cycles = static_cast<double>(wall[wall.size() / 2]);
    double secs = cycles / cycleHz();
    LayerSample out;
    out.recordsPerSec = secs > 0 ? batch / secs : 0.0;
    out.mbPerSec = secs > 0 ? batch * static_cast<double>(record_bytes) /
                                  secs / 1e6
                            : 0.0;
    return out;
}

struct EngineSample
{
    serve::ServeStats stats;
    size_t workers = 0;
    uint64_t expectedConnections = 0;

    bool
    completedOk() const
    {
        return stats.fullHandshakes() + stats.resumedHandshakes() ==
               expectedConnections;
    }

    double
    recordsPerSecPerWorker() const
    {
        return stats.elapsedSeconds > 0 && workers
                   ? static_cast<double>(stats.dataPlaneRecords()) /
                         stats.elapsedSeconds / workers
                   : 0.0;
    }

    double
    mbPerSecPerWorker() const
    {
        return workers ? stats.bulkMBPerSec() / workers : 0.0;
    }
};

/** One ServeEngine run in data-plane session mode at one record size. */
EngineSample
runEngine(size_t workers, size_t record_bytes, size_t bulk_bytes,
          const pki::Certificate &cert,
          const std::shared_ptr<crypto::RsaPrivateKey> &key)
{
    obs::MetricsRegistry registry;
    serve::ServeConfig cfg;
    cfg.workers = workers;
    cfg.connectionsPerWorker = 4;
    cfg.concurrentPerWorker = 4;
    cfg.bulkBytes = bulk_bytes;
    cfg.recordBytes = record_bytes;
    cfg.bulkBatchRecords = 8;
    cfg.suite = CipherSuiteId::RSA_AES_128_CBC_SHA;
    cfg.certificate = &cert;
    cfg.privateKey = key;
    cfg.seed = 0x7b9 ^ (record_bytes << 4) ^ workers;
    cfg.metrics = &registry;

    EngineSample r;
    r.workers = workers;
    r.expectedConnections = cfg.connectionsPerWorker * workers;
    serve::ServeEngine engine(std::move(cfg));
    r.stats = engine.run();
    return r;
}

const char *
suiteName(CipherSuiteId id)
{
    switch (id) {
    case CipherSuiteId::RSA_3DES_EDE_CBC_SHA:
        return "RSA_3DES_EDE_CBC_SHA";
    case CipherSuiteId::RSA_AES_128_CBC_SHA:
        return "RSA_AES_128_CBC_SHA";
    case CipherSuiteId::RSA_RC4_128_SHA:
        return "RSA_RC4_128_SHA";
    default:
        return "?";
    }
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        if (!std::strcmp(argv[i], "--smoke"))
            smoke = true;

    warmUpCpu();

    const CipherSuiteId suites[] = {
        CipherSuiteId::RSA_3DES_EDE_CBC_SHA,
        CipherSuiteId::RSA_AES_128_CBC_SHA,
        CipherSuiteId::RSA_RC4_128_SHA,
    };
    // The identity set crosses both fragmentation edges: the empty
    // record, one-byte, sub-fragment sizes, exactly maxFragment, and
    // one byte past it (two records, the second of size 1).
    const std::vector<size_t> identity_sizes = {0,    1,     256,
                                                4096, 16384, 16385};
    const std::vector<size_t> sweep =
        smoke ? std::vector<size_t>{1024, 16384}
              : std::vector<size_t>{256, 1024, 4096, 16384};
    const int reps = smoke ? 5 : 15;
    const int steady_records = smoke ? 64 : 512;
    const size_t workers = std::min<size_t>(
        smoke ? 1 : 2,
        std::max(1u, std::thread::hardware_concurrency()));

    crypto::Provider &scalar = crypto::scalarProvider();
    crypto::PipelinedProvider pipelined;

    const auto &key = benchKey(1024);
    pki::CertificateInfo info;
    info.serial = 1;
    info.issuer = "Bench CA";
    info.subject = "bench.server";
    info.notBefore = 0;
    info.notAfter = ~uint64_t(0);
    info.publicKey = key.pub;
    pki::Certificate cert = pki::Certificate::issue(info, *key.priv);

    bool all_identical = true;
    bool all_steady = true;
    bool all_completed = true;

    JsonWriter j;
    j.beginObject();
    j.field("bench", "serve_throughput");
    j.field("cycle_hz", cycleHz(), 0);
    j.field("smoke", smoke);
    j.field("workers", static_cast<uint64_t>(workers));

    // --- Gate 1: wire identity vs the legacy copy path ---
    j.beginArray("wire_identity");
    for (CipherSuiteId id : suites) {
        for (crypto::Provider *p :
             {&scalar, static_cast<crypto::Provider *>(&pipelined)}) {
            bool identical = wireIdentical(*p, id, identity_sizes);
            all_identical = all_identical && identical;
            j.beginObject();
            j.field("suite", suiteName(id));
            j.field("provider",
                    p == &scalar ? "scalar" : "pipelined");
            j.field("identical", identical);
            j.endObject();
        }
    }
    j.endArray();

    // --- Gate 2: steady-state zero-alloc / zero-spill ---
    j.beginArray("steady_state");
    for (CipherSuiteId id : suites) {
        for (crypto::Provider *p :
             {&scalar, static_cast<crypto::Provider *>(&pipelined)}) {
            SteadyState ss =
                measureSteadyState(*p, id, 16384, steady_records);
            all_steady = all_steady && ss.ok();
            j.beginObject();
            j.field("suite", suiteName(id));
            j.field("provider",
                    p == &scalar ? "scalar" : "pipelined");
            j.field("records", static_cast<uint64_t>(steady_records));
            j.field("scratch_grows", ss.scratchGrows);
            j.field("pending_spills", ss.pendingSpills);
            j.field("steady_ok", ss.ok());
            j.endObject();
        }
    }
    j.endArray();

    // --- Reported: record-size sweep, RecordLayer and ServeEngine ---
    j.beginArray("results");
    for (size_t size : sweep) {
        LayerSample layer = measureLayer(
            scalar, CipherSuiteId::RSA_AES_128_CBC_SHA, size, reps);
        // Bulk volume scales with the record size so every cell moves
        // a meaningful number of batched flushes without dwarfing the
        // smoke budget.
        size_t bulk = std::max<size_t>(size * 16, 65536);
        EngineSample eng = runEngine(workers, size, bulk, cert,
                                     key.priv);
        all_completed = all_completed && eng.completedOk();
        j.beginObject();
        j.field("record_bytes", static_cast<uint64_t>(size));
        j.beginObject("record_layer");
        j.field("records_per_sec", layer.recordsPerSec, 0);
        j.field("mb_per_sec", layer.mbPerSec, 2);
        j.endObject();
        j.beginObject("serve_engine");
        j.field("bulk_bytes_per_conn", static_cast<uint64_t>(bulk));
        j.field("dataplane_flushes", eng.stats.dataPlaneFlushes());
        j.field("dataplane_records", eng.stats.dataPlaneRecords());
        j.field("elapsed_sec", eng.stats.elapsedSeconds);
        j.field("records_per_sec_per_worker",
                eng.recordsPerSecPerWorker(), 0);
        j.field("mb_per_sec_per_worker", eng.mbPerSecPerWorker(), 2);
        j.field("completed_ok", eng.completedOk());
        j.endObject();
        j.endObject();
    }
    j.endArray();

    const bool pass = all_identical && all_steady && all_completed;
    j.beginObject("gate");
    j.field("wire_identical", all_identical);
    j.field("steady_state_zero", all_steady);
    j.field("engine_completed", all_completed);
    j.field("pass", pass);
    j.endObject();
    j.endObject();
    std::printf("\n");

    if (!all_identical)
        std::fprintf(stderr, "FAIL: span send path diverged from the "
                             "legacy copy path\n");
    if (!all_steady)
        std::fprintf(stderr, "FAIL: data-plane alloc/spill counters "
                             "moved in steady state\n");
    if (!all_completed)
        std::fprintf(stderr,
                     "FAIL: data-plane engine run incomplete\n");
    return pass ? 0 : 1;
}

/**
 * @file
 * TLS 1.0 tests: the PRF construction, the HMAC record MAC, version
 * negotiation (including rollback handling) and full TLS handshakes
 * across suites with resumption.
 */

#include <gtest/gtest.h>

#include "crypto/hmac.hh"
#include "ssl/client.hh"
#include "ssl/server.hh"
#include "util/bytes.hh"
#include "util/hex.hh"

#include "testkeys.hh"

namespace
{

using namespace ssla;
using namespace ssla::ssl;

TEST(Tls1Prf, OutputLengths)
{
    Bytes secret(48, 0x0b);
    Bytes seed(64, 0x42);
    for (size_t len : {1u, 12u, 16u, 47u, 48u, 104u, 200u})
        EXPECT_EQ(tls1Prf(secret, "test label", seed, len).size(), len);
}

TEST(Tls1Prf, Deterministic)
{
    Bytes secret(48, 1), seed(64, 2);
    EXPECT_EQ(tls1Prf(secret, "l", seed, 48),
              tls1Prf(secret, "l", seed, 48));
}

TEST(Tls1Prf, LabelMatters)
{
    Bytes secret(48, 1), seed(64, 2);
    EXPECT_NE(tls1Prf(secret, "client finished", seed, 12),
              tls1Prf(secret, "server finished", seed, 12));
}

TEST(Tls1Prf, SecretAndSeedMatter)
{
    Bytes secret(48, 1), seed(64, 2);
    Bytes base = tls1Prf(secret, "l", seed, 32);
    Bytes secret2 = secret;
    secret2[0] ^= 1;
    EXPECT_NE(tls1Prf(secret2, "l", seed, 32), base);
    Bytes seed2 = seed;
    seed2[0] ^= 1;
    EXPECT_NE(tls1Prf(secret, "l", seed2, 32), base);
}

TEST(Tls1Prf, PrefixConsistency)
{
    // P_hash streams: a longer request extends the shorter one.
    Bytes secret(48, 9), seed(32, 7);
    Bytes short_out = tls1Prf(secret, "x", seed, 20);
    Bytes long_out = tls1Prf(secret, "x", seed, 60);
    EXPECT_EQ(Bytes(long_out.begin(), long_out.begin() + 20),
              short_out);
}

TEST(Tls1Prf, XorStructure)
{
    // With an even-length secret the two halves are disjoint; the PRF
    // must differ from either P_hash stream alone (sanity that the
    // XOR of both streams is really happening).
    Bytes secret(48, 5), seed(16, 6);
    Bytes out = tls1Prf(secret, "y", seed, 16);
    Bytes s1(secret.begin(), secret.begin() + 24);
    Bytes label_seed = toBytes("y");
    append(label_seed, seed);
    Bytes a = crypto::Hmac::compute(crypto::DigestAlg::MD5, s1,
                                    label_seed);
    EXPECT_NE(out, a);
}

TEST(Tls1Mac, DependsOnVersionField)
{
    Bytes secret(20, 1);
    Bytes data = toBytes("record payload");
    Bytes mac_tls = tls1Mac(crypto::DigestAlg::SHA1, secret, 0, 23,
                            0x0301, data.data(), data.size());
    Bytes mac_other = tls1Mac(crypto::DigestAlg::SHA1, secret, 0, 23,
                              0x0300, data.data(), data.size());
    EXPECT_NE(mac_tls, mac_other);
    EXPECT_EQ(mac_tls.size(), 20u);
    // And differs from the SSLv3 construction entirely.
    EXPECT_NE(mac_tls, ssl3Mac(crypto::DigestAlg::SHA1, secret, 0, 23,
                               data.data(), data.size()));
}

TEST(TlsKdf, DiffersFromSsl3)
{
    Bytes pre(48, 3), cr(32, 4), sr(32, 5);
    EXPECT_NE(tls1MasterSecret(pre, cr, sr),
              ssl3MasterSecret(pre, cr, sr));
    EXPECT_EQ(tls1MasterSecret(pre, cr, sr).size(), 48u);

    const CipherSuite &suite =
        cipherSuite(CipherSuiteId::RSA_3DES_EDE_CBC_SHA);
    Bytes master(48, 9);
    KeyBlock ssl3 = ssl3KeyBlock(master, cr, sr, suite);
    KeyBlock tls = tls1KeyBlock(master, cr, sr, suite);
    EXPECT_NE(ssl3.clientKey, tls.clientKey);
    EXPECT_EQ(tls.clientKey.size(), suite.keyLen());
}

TEST(TlsKdf, VersionDispatch)
{
    Bytes pre(48, 3), cr(32, 4), sr(32, 5);
    EXPECT_EQ(deriveMasterSecret(ssl3Version, pre, cr, sr),
              ssl3MasterSecret(pre, cr, sr));
    EXPECT_EQ(deriveMasterSecret(tls1Version, pre, cr, sr),
              tls1MasterSecret(pre, cr, sr));
}

// ---- full TLS handshakes ----------------------------------------------

struct TlsHarness
{
    BioPair wires;
    ServerConfig scfg;
    ClientConfig ccfg;
    crypto::RandomPool pool{toBytes("tls-tests")};

    TlsHarness()
    {
        scfg.certificate = test::testServerCert();
        scfg.privateKey = test::testKey1024().priv;
        scfg.randomPool = &pool;
        ccfg.randomPool = &pool;
        ccfg.maxVersion = tls1Version;
    }

    std::pair<std::unique_ptr<SslClient>, std::unique_ptr<SslServer>>
    connect()
    {
        auto server =
            std::make_unique<SslServer>(scfg, wires.serverEnd());
        auto client =
            std::make_unique<SslClient>(ccfg, wires.clientEnd());
        runLockstep(*client, *server);
        return {std::move(client), std::move(server)};
    }
};

class TlsHandshakeSuites
    : public ::testing::TestWithParam<CipherSuiteId>
{};

TEST_P(TlsHandshakeSuites, CompletesAndTransfersData)
{
    TlsHarness h;
    h.scfg.suites = {GetParam()};
    h.ccfg.suites = {GetParam()};
    auto [client, server] = h.connect();

    EXPECT_EQ(client->negotiatedVersion(), tls1Version);
    EXPECT_EQ(server->negotiatedVersion(), tls1Version);
    EXPECT_EQ(client->session().version, tls1Version);

    client->writeApplicationData(toBytes("tls ping"));
    auto got = server->readApplicationData();
    ASSERT_TRUE(got);
    EXPECT_EQ(toString(*got), "tls ping");
    server->writeApplicationData(toBytes("tls pong"));
    got = client->readApplicationData();
    ASSERT_TRUE(got);
    EXPECT_EQ(toString(*got), "tls pong");
}

INSTANTIATE_TEST_SUITE_P(
    AllSuites, TlsHandshakeSuites,
    ::testing::Values(CipherSuiteId::RSA_NULL_MD5,
                      CipherSuiteId::RSA_RC4_128_MD5,
                      CipherSuiteId::RSA_3DES_EDE_CBC_SHA,
                      CipherSuiteId::RSA_AES_128_CBC_SHA,
                      CipherSuiteId::RSA_AES_256_CBC_SHA));

TEST(TlsHandshake, Ssl3ClientGetsSsl3)
{
    TlsHarness h;
    h.ccfg.maxVersion = ssl3Version;
    auto [client, server] = h.connect();
    EXPECT_EQ(client->negotiatedVersion(), ssl3Version);
    EXPECT_EQ(server->negotiatedVersion(), ssl3Version);
}

TEST(TlsHandshake, Ssl3OnlyServerNegotiatesDown)
{
    TlsHarness h;
    h.scfg.maxVersion = ssl3Version; // server refuses TLS
    auto [client, server] = h.connect();
    EXPECT_EQ(client->negotiatedVersion(), ssl3Version);
    EXPECT_EQ(server->negotiatedVersion(), ssl3Version);
    client->writeApplicationData(toBytes("downgraded"));
    auto got = server->readApplicationData();
    ASSERT_TRUE(got);
    EXPECT_EQ(toString(*got), "downgraded");
}

TEST(TlsHandshake, BogusClientMaxVersionRejected)
{
    TlsHarness h;
    h.ccfg.maxVersion = 0x0305;
    EXPECT_THROW(SslClient(h.ccfg, h.wires.clientEnd()),
                 std::invalid_argument);
}

TEST(TlsHandshake, TlsResumption)
{
    SessionCache cache;
    TlsHarness h;
    h.scfg.sessionCache = &cache;
    auto [client1, server1] = h.connect();
    Session sess = client1->session();
    EXPECT_EQ(sess.version, tls1Version);

    TlsHarness h2;
    h2.scfg.sessionCache = &cache;
    h2.ccfg.resumeSession = sess;
    auto [client2, server2] = h2.connect();
    EXPECT_TRUE(client2->resumed());
    EXPECT_TRUE(server2->resumed());
    EXPECT_EQ(client2->negotiatedVersion(), tls1Version);

    client2->writeApplicationData(toBytes("resumed tls"));
    auto got = server2->readApplicationData();
    ASSERT_TRUE(got);
    EXPECT_EQ(toString(*got), "resumed tls");
}

TEST(TlsHandshake, Ssl3SessionNotResumedOverTls)
{
    // A session established at SSLv3 must not resume when the client
    // now negotiates TLS (version is part of the session identity).
    SessionCache cache;
    TlsHarness h;
    h.scfg.sessionCache = &cache;
    h.ccfg.maxVersion = ssl3Version;
    auto [client1, server1] = h.connect();
    Session sess = client1->session();
    EXPECT_EQ(sess.version, ssl3Version);

    TlsHarness h2;
    h2.scfg.sessionCache = &cache;
    h2.ccfg.maxVersion = tls1Version;
    h2.ccfg.resumeSession = sess;
    auto [client2, server2] = h2.connect();
    EXPECT_FALSE(server2->resumed());
    EXPECT_TRUE(client2->handshakeDone());
}

TEST(TlsHandshake, FinishedIs12Bytes)
{
    // Indirect check of the TLS finished format: an SSLv3-style
    // 36-byte verify would fail the handshake entirely, so success
    // plus distinct KDF outputs pins the construction; also check the
    // hash helper directly.
    HandshakeHash hash;
    hash.update(toBytes("transcript"));
    Bytes master(48, 1);
    EXPECT_EQ(
        hash.finishedHash(tls1Version, master, FinishedSender::Client)
            .size(),
        12u);
    EXPECT_EQ(
        hash.finishedHash(ssl3Version, master, FinishedSender::Client)
            .size(),
        36u);
    EXPECT_NE(
        hash.finishedHash(tls1Version, master, FinishedSender::Client),
        hash.finishedHash(tls1Version, master, FinishedSender::Server));
}

TEST(TlsHandshake, LargeTransferOverTls)
{
    TlsHarness h;
    auto [client, server] = h.connect();
    Xoshiro256 rng(55);
    Bytes big = rng.bytes(70000);
    client->writeApplicationData(big);
    Bytes got;
    while (got.size() < big.size()) {
        auto chunk = server->readApplicationData();
        ASSERT_TRUE(chunk);
        append(got, *chunk);
    }
    EXPECT_EQ(got, big);
}

TEST(TlsHandshake, RecordVersionLocked)
{
    TlsHarness h;
    auto [client, server] = h.connect();
    // Inject an SSLv3-versioned record after TLS negotiation.
    Bytes bogus = {23, 0x03, 0x00, 0x00, 0x01, 0x42};
    h.wires.clientEnd().write(bogus);
    EXPECT_THROW(server->readApplicationData(), SslError);
}

} // anonymous namespace

/**
 * @file
 * The bignum backend seam: one interface, two engines.
 *
 * The 32-bit-limb core (kernels.hh/bignum.cc) is the paper's profiling
 * anchor — its kernel anatomy matches OpenSSL 0.9.7d on the Pentium 4,
 * so Tables 8/9 reproduce on it. The 64-bit engine (kernels64.hh) is
 * the modern counterpart: 128-bit intermediates and Karatsuba above a
 * tuned threshold. `Engine` makes the choice a runtime property,
 * mirroring the crypto::Provider registry pattern: call sites keep
 * saying modExp/mul/sqr, and the provider (or an EngineScope in a
 * bench/test) decides which arithmetic runs underneath.
 *
 * Selection is thread-local and defaults to bn32, so existing code —
 * the whole paper reproduction included — behaves exactly as before
 * unless a caller opts in. The active backend is surfaced as the obs
 * gauge "bn.active_backend_bits" (32 or 64).
 */

#ifndef SSLA_BN_ENGINE_HH
#define SSLA_BN_ENGINE_HH

#include <string>
#include <string_view>
#include <vector>

#include "bn/bignum.hh"

namespace ssla::bn
{

class MontgomeryCtx;

/** Which limb core an Engine runs on. */
enum class BnBackend
{
    Bn32, ///< 32-bit limbs, 64-bit intermediates (paper-era core)
    Bn64, ///< 64-bit limbs, __int128 intermediates, Karatsuba
};

/**
 * A bignum arithmetic backend. Stateless and immortal: the two
 * implementations are singletons (bn32Engine()/bn64Engine()), so raw
 * pointers/references to an Engine never dangle.
 */
class Engine
{
  public:
    virtual ~Engine() = default;

    virtual const char *name() const = 0;
    virtual BnBackend backend() const = 0;
    virtual unsigned limbBits() const = 0;

    /** Full signed product a*b on this backend. */
    virtual BigNum mul(const BigNum &a, const BigNum &b) const = 0;

    /** Square a*a on this backend. */
    virtual BigNum sqr(const BigNum &a) const = 0;

    /**
     * base^exp mod m on this backend: for odd m > 1 this builds a
     * MontgomeryCtx bound to this engine; even moduli fall back to the
     * engine-independent division path. @p exp must be non-negative.
     */
    BigNum modExp(const BigNum &base, const BigNum &exp,
                  const BigNum &m) const;
};

/** The paper-era 32-bit engine ("bn32"). */
const Engine &bn32Engine();

/** The 64-bit/Karatsuba engine ("bn64"). */
const Engine &bn64Engine();

/** Look up an engine by registry name; nullptr when unknown. */
const Engine *engineByName(std::string_view name);

/** Registry names, in registration order: {"bn32", "bn64"}. */
std::vector<std::string> engineNames();

/**
 * The calling thread's active engine (bn32 unless overridden). The
 * free bn::modExp and default-constructed MontgomeryCtx route through
 * this, which is how DHE and PKI verification pick up a provider's
 * backend without call-site changes.
 */
const Engine &activeEngine();

/**
 * Override the calling thread's active engine (nullptr resets to the
 * bn32 default). Returns the previous override. Updates the
 * "bn.active_backend_bits" gauge. Prefer EngineScope.
 */
const Engine *setActiveEngine(const Engine *engine);

/** RAII active-engine override for the current thread. */
class EngineScope
{
  public:
    explicit EngineScope(const Engine &engine)
        : prev_(setActiveEngine(&engine))
    {
    }
    ~EngineScope() { setActiveEngine(prev_); }

    EngineScope(const EngineScope &) = delete;
    EngineScope &operator=(const EngineScope &) = delete;

  private:
    const Engine *prev_;
};

} // namespace ssla::bn

#endif // SSLA_BN_ENGINE_HH

#include "ssl/shardcache.hh"

namespace ssla::ssl
{

namespace
{

/** FNV-1a over the session id (ids are uniform, this just mixes). */
uint64_t
fnv1a(const Bytes &id)
{
    uint64_t h = 1469598103934665603ull;
    for (uint8_t b : id) {
        h ^= b;
        h *= 1099511628211ull;
    }
    return h;
}

} // anonymous namespace

ShardedSessionCache::ShardedSessionCache(size_t shards,
                                         size_t max_entries_per_shard,
                                         uint64_t ttl_seconds)
{
    if (shards == 0)
        shards = 1;
    shards_.reserve(shards);
    for (size_t i = 0; i < shards; ++i)
        shards_.push_back(
            std::make_unique<Shard>(max_entries_per_shard, ttl_seconds));
}

size_t
ShardedSessionCache::shardIndexFor(const Bytes &id) const
{
    return static_cast<size_t>(fnv1a(id) % shards_.size());
}

ShardedSessionCache::Shard &
ShardedSessionCache::shardFor(const Bytes &id)
{
    return *shards_[shardIndexFor(id)];
}

void
ShardedSessionCache::store(const Session &session)
{
    if (!session.valid())
        return;
    Shard &s = shardFor(session.id);
    std::lock_guard<std::mutex> lock(s.m);
    s.cache.store(session);
}

std::optional<Session>
ShardedSessionCache::find(const Bytes &id)
{
    Shard &s = shardFor(id);
    std::lock_guard<std::mutex> lock(s.m);
    return s.cache.find(id);
}

void
ShardedSessionCache::remove(const Bytes &id)
{
    Shard &s = shardFor(id);
    std::lock_guard<std::mutex> lock(s.m);
    s.cache.remove(id);
}

size_t
ShardedSessionCache::size() const
{
    size_t total = 0;
    for (const auto &s : shards_) {
        std::lock_guard<std::mutex> lock(s->m);
        total += s->cache.size();
    }
    return total;
}

uint64_t
ShardedSessionCache::hits() const
{
    uint64_t total = 0;
    for (const auto &s : shards_) {
        std::lock_guard<std::mutex> lock(s->m);
        total += s->cache.hits();
    }
    return total;
}

uint64_t
ShardedSessionCache::misses() const
{
    uint64_t total = 0;
    for (const auto &s : shards_) {
        std::lock_guard<std::mutex> lock(s->m);
        total += s->cache.misses();
    }
    return total;
}

uint64_t
ShardedSessionCache::expirations() const
{
    uint64_t total = 0;
    for (const auto &s : shards_) {
        std::lock_guard<std::mutex> lock(s->m);
        total += s->cache.expirations();
    }
    return total;
}

void
ShardedSessionCache::setClock(std::function<uint64_t()> clock)
{
    for (const auto &s : shards_) {
        std::lock_guard<std::mutex> lock(s->m);
        s->cache.setClock(clock);
    }
}

} // namespace ssla::ssl

/**
 * @file
 * Differential tests for the 64-bit bignum engine: bn32 and bn64 are
 * driven through identical add/sub/mul/sqr/Montgomery/modexp inputs
 * and must agree bit for bit. Sizes deliberately bracket the Karatsuba
 * threshold (n-1, n, n+1 limbs) so a retuned crossover cannot silently
 * break the seam, and sign/zero/aliasing edge cases cover the paths a
 * random sweep is unlikely to hit.
 */

#include <gtest/gtest.h>

#include <thread>

#include "bn/engine.hh"
#include "bn/kernels64.hh"
#include "bn/modexp.hh"
#include "bn/montgomery.hh"
#include "util/rng.hh"

namespace
{

using namespace ssla;
using bn::BigNum;
using bn::Limb64;

/** Random non-negative value of exactly @p bits (top bit pinned). */
BigNum
randomBits(Xoshiro256 &rng, size_t bits)
{
    Bytes b = rng.bytes((bits + 7) / 8);
    b[0] |= 0x80;
    return BigNum::fromBytesBE(b);
}

/** Random odd modulus of exactly @p bits. */
BigNum
randomOddModulus(Xoshiro256 &rng, size_t bits)
{
    Bytes b = rng.bytes((bits + 7) / 8);
    b[0] |= 0x80;
    b[b.size() - 1] |= 0x01;
    return BigNum::fromBytesBE(b);
}

/** Random 64-bit limb vector of length @p n. */
std::vector<Limb64>
randomLimbs64(Xoshiro256 &rng, size_t n)
{
    std::vector<Limb64> v(n);
    for (auto &l : v)
        l = rng.next();
    return v;
}

/** BigNum view of a little-endian 64-bit limb vector. */
BigNum
toBigNum(const std::vector<Limb64> &a)
{
    return BigNum::fromLimbs(bn::limbs32From64(a));
}

// ---------------------------------------------------------------------
// Kernels

TEST(Bn64Kernels, AddSubCarryChainsWithAliasing)
{
    // All-ones words force a carry/borrow through every position; the
    // documented "r may alias a" contract is exercised directly.
    constexpr size_t n = 5;
    std::vector<Limb64> ones(n, ~Limb64{0});
    std::vector<Limb64> one(n, 0);
    one[0] = 1;

    std::vector<Limb64> r = ones;
    EXPECT_EQ(bn::bn64_add_words(r.data(), r.data(), one.data(), n), 1u);
    EXPECT_EQ(r, std::vector<Limb64>(n, 0));

    EXPECT_EQ(bn::bn64_sub_words(r.data(), r.data(), one.data(), n), 1u);
    EXPECT_EQ(r, ones);
}

TEST(Bn64Kernels, MulAddMatchesBigNumReference)
{
    Xoshiro256 rng(64001);
    for (size_t n : {1u, 2u, 7u, 16u}) {
        std::vector<Limb64> a = randomLimbs64(rng, n);
        std::vector<Limb64> r = randomLimbs64(rng, n);
        Limb64 w = rng.next();
        BigNum expect = toBigNum(r) + toBigNum(a) * toBigNum({w});

        std::vector<Limb64> out = r;
        Limb64 carry = bn::bn64_mul_add_words(out.data(), a.data(), n, w);
        out.push_back(carry);
        EXPECT_EQ(toBigNum(out), expect) << "n " << n;

        // mul_words: same product without the accumulator.
        out = std::vector<Limb64>(n, 0);
        carry = bn::bn64_mul_words(out.data(), a.data(), n, w);
        out.push_back(carry);
        EXPECT_EQ(toBigNum(out), toBigNum(a) * toBigNum({w})) << "n " << n;
    }
}

TEST(Bn64Kernels, LimbConversionsRoundTrip)
{
    // Odd 32-limb counts pad the top 64-bit limb; trailing zeros strip.
    Xoshiro256 rng(64002);
    for (size_t n32 : {0u, 1u, 2u, 3u, 7u, 64u, 65u}) {
        std::vector<uint32_t> a(n32);
        for (auto &l : a)
            l = static_cast<uint32_t>(rng.next());
        if (!a.empty() && a.back() == 0)
            a.back() = 1;
        EXPECT_EQ(bn::limbs32From64(bn::limbs64From32(a)), a)
            << "n32 " << n32;
    }
    EXPECT_TRUE(bn::limbs64From32({0, 0, 0}).empty());
    EXPECT_TRUE(bn::limbs32From64({0, 0}).empty());
}

TEST(Bn64Kernels, MulCrossesKaratsubaThreshold)
{
    // n-1 limbs stays schoolbook, n and n+1 recurse; 2n+1 recurses with
    // odd halves. Every size must match the (engine-independent)
    // schoolbook BigNum product.
    Xoshiro256 rng(64003);
    const size_t t = bn::karatsubaThreshold;
    for (size_t n : {size_t{1}, size_t{2}, t - 1, t, t + 1, 2 * t,
                     2 * t + 1}) {
        std::vector<Limb64> a = randomLimbs64(rng, n);
        std::vector<Limb64> b = randomLimbs64(rng, n);
        std::vector<Limb64> r(2 * n);
        bn::bn64Mul(r.data(), a.data(), b.data(), n);
        EXPECT_EQ(toBigNum(r), toBigNum(a) * toBigNum(b)) << "n " << n;

        std::vector<Limb64> s(2 * n);
        bn::bn64Sqr(s.data(), a.data(), n);
        EXPECT_EQ(toBigNum(s), toBigNum(a) * toBigNum(a)) << "n " << n;
    }
}

// ---------------------------------------------------------------------
// Engine-level differential: mul/sqr

TEST(Bn64Engine, MulSqrDifferentialRandomized)
{
    const bn::Engine &e32 = bn::bn32Engine();
    const bn::Engine &e64 = bn::bn64Engine();
    Xoshiro256 rng(64010);
    for (int iter = 0; iter < 200; ++iter) {
        BigNum a = BigNum::fromBytesBE(rng.bytes(1 + rng.nextBelow(260)));
        BigNum b = BigNum::fromBytesBE(rng.bytes(1 + rng.nextBelow(260)));
        if (rng.nextBelow(2))
            a = -a;
        if (rng.nextBelow(2))
            b = -b;
        BigNum ref = a * b;
        EXPECT_EQ(e32.mul(a, b), ref) << "iter " << iter;
        EXPECT_EQ(e64.mul(a, b), ref) << "iter " << iter;
        EXPECT_EQ(e64.sqr(a), a * a) << "iter " << iter;
        EXPECT_EQ(e32.sqr(a), a * a) << "iter " << iter;
    }
}

TEST(Bn64Engine, MulSignAndZeroEdgeCases)
{
    const bn::Engine &e64 = bn::bn64Engine();
    BigNum zero, one(1), big = BigNum::fromHex("ffeeddccbbaa99887766");
    EXPECT_EQ(e64.mul(zero, big), zero);
    EXPECT_EQ(e64.mul(big, zero), zero);
    EXPECT_EQ(e64.mul(-big, one), -big);
    EXPECT_EQ(e64.mul(-big, -big), big * big);
    EXPECT_EQ(e64.mul(big, -one), -big);
    EXPECT_EQ(e64.sqr(-big), big * big);
    EXPECT_EQ(e64.sqr(zero), zero);
}

TEST(Bn64Engine, KaratsubaBoundaryBitWidths)
{
    // Exact operand widths that land on threshold-1/threshold/
    // threshold+1 64-bit limbs (1024 bits = 16 limbs), plus the
    // one-level-recursion widths RSA-2048 exercises.
    const bn::Engine &e32 = bn::bn32Engine();
    const bn::Engine &e64 = bn::bn64Engine();
    Xoshiro256 rng(64011);
    for (size_t bits : {960u, 1024u, 1088u, 1056u, 2048u, 2112u}) {
        BigNum a = randomBits(rng, bits);
        BigNum b = randomBits(rng, bits);
        EXPECT_EQ(e64.mul(a, b), e32.mul(a, b)) << "bits " << bits;
        EXPECT_EQ(e64.sqr(a), e32.sqr(a)) << "bits " << bits;
    }
}

// ---------------------------------------------------------------------
// Montgomery differential

TEST(Bn64Mont, MulSqrToFromMontDifferential)
{
    Xoshiro256 rng(64020);
    // 1056 bits = an odd 32-limb count, where the two backends' R
    // differ (2^1056 vs 2^1088) yet the arithmetic must still agree.
    for (size_t bits : {64u, 512u, 1024u, 1056u}) {
        BigNum m = randomOddModulus(rng, bits);
        bn::MontgomeryCtx ctx32(m, &bn::bn32Engine());
        bn::MontgomeryCtx ctx64(m, &bn::bn64Engine());
        ASSERT_EQ(&ctx32.engine(), &bn::bn32Engine());
        ASSERT_EQ(&ctx64.engine(), &bn::bn64Engine());
        EXPECT_EQ(ctx32.core64(), nullptr);
        ASSERT_NE(ctx64.core64(), nullptr);

        for (int iter = 0; iter < 8; ++iter) {
            BigNum a = randomBits(rng, bits).mod(m);
            BigNum b = randomBits(rng, bits).mod(m);
            // Montgomery products live in each backend's own domain;
            // comparable numbers only exist outside it.
            BigNum p32 = ctx32.fromMont(ctx32.mul(ctx32.toMont(a),
                                                  ctx32.toMont(b)));
            BigNum p64 = ctx64.fromMont(ctx64.mul(ctx64.toMont(a),
                                                  ctx64.toMont(b)));
            EXPECT_EQ(p32, p64) << "bits " << bits << " iter " << iter;
            EXPECT_EQ(p64, BigNum::modMul(a, b, m));

            BigNum s64 = ctx64.fromMont(ctx64.sqr(ctx64.toMont(a)));
            EXPECT_EQ(s64, BigNum::modMul(a, a, m));
            EXPECT_EQ(ctx64.fromMont(ctx64.toMont(a)), a);
        }
    }
}

TEST(Bn64Mont, Raw32InterfaceRefusedOnBn64Context)
{
    // The 32-bit fixed-width hot path has no meaning on a 64-bit core:
    // misuse must fail loudly, not corrupt.
    BigNum m = BigNum::fromHex("f123456789abcdef1");
    bn::MontgomeryCtx ctx(m, &bn::bn64Engine());
    BigNum a(42);
    EXPECT_THROW(ctx.toRaw(a), std::logic_error);
    EXPECT_THROW(ctx.fromRaw(bn::MontgomeryCtx::Raw{}), std::logic_error);
    bn::MontgomeryCtx::Raw out;
    EXPECT_THROW(ctx.mulRaw(out, out, out), std::logic_error);
    EXPECT_THROW(ctx.sqrRaw(out, out), std::logic_error);
}

// ---------------------------------------------------------------------
// Modexp differential

TEST(Bn64ModExp, DifferentialAcrossSizes)
{
    Xoshiro256 rng(64030);
    for (size_t bits : {128u, 512u, 1024u, 1056u}) {
        BigNum m = randomOddModulus(rng, bits);
        for (int iter = 0; iter < 3; ++iter) {
            BigNum base = randomBits(rng, bits).mod(m);
            BigNum exp = randomBits(rng, bits);
            BigNum r32 = bn::bn32Engine().modExp(base, exp, m);
            BigNum r64 = bn::bn64Engine().modExp(base, exp, m);
            EXPECT_EQ(r32, r64) << "bits " << bits << " iter " << iter;
        }
        // Degenerate exponents take the early-out paths.
        BigNum base = randomBits(rng, bits).mod(m);
        EXPECT_EQ(bn::bn64Engine().modExp(base, BigNum(), m), BigNum(1));
        EXPECT_EQ(bn::bn64Engine().modExp(base, BigNum(1), m), base);
        EXPECT_EQ(bn::bn64Engine().modExp(BigNum(), randomBits(rng, 64),
                                          m),
                  BigNum());
    }
}

TEST(Bn64ModExp, EvenModulusFallsBackConsistently)
{
    Xoshiro256 rng(64031);
    BigNum m = randomBits(rng, 256);
    if (m.isOdd())
        m = m + BigNum(1);
    BigNum base = randomBits(rng, 200);
    BigNum exp = randomBits(rng, 64);
    EXPECT_EQ(bn::bn64Engine().modExp(base, exp, m),
              bn::bn32Engine().modExp(base, exp, m));
    EXPECT_EQ(bn::bn64Engine().modExp(base, exp, m),
              bn::modExp(base, exp, m));
}

TEST(Bn64ModExp, IdenticalOpSequenceConverges)
{
    // The ISSUE's "identical sequences" clause: a chained computation
    // where each step feeds the next amplifies any single-step
    // divergence into a final-value mismatch.
    auto run = [](const bn::Engine &e) {
        Xoshiro256 rng(64032);
        BigNum m = randomOddModulus(rng, 768);
        BigNum acc(3);
        for (int step = 0; step < 6; ++step) {
            BigNum x = randomBits(rng, 512);
            acc = e.mul(acc, x).mod(m);
            acc = e.sqr(acc).mod(m);
            acc = e.modExp(acc, BigNum(65537), m);
            acc = (acc - x).mod(m);
        }
        return acc;
    };
    EXPECT_EQ(run(bn::bn32Engine()), run(bn::bn64Engine()));
}

// ---------------------------------------------------------------------
// Engine registry and thread-local selection

TEST(Bn64Engine, RegistryNamesAndLookup)
{
    auto names = bn::engineNames();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "bn32");
    EXPECT_EQ(names[1], "bn64");
    ASSERT_NE(bn::engineByName("bn32"), nullptr);
    ASSERT_NE(bn::engineByName("bn64"), nullptr);
    EXPECT_EQ(bn::engineByName("bn32"), &bn::bn32Engine());
    EXPECT_EQ(bn::engineByName("bn64"), &bn::bn64Engine());
    EXPECT_EQ(bn::engineByName("bn128"), nullptr);
    EXPECT_EQ(bn::bn32Engine().limbBits(), 32u);
    EXPECT_EQ(bn::bn64Engine().limbBits(), 64u);
    EXPECT_STREQ(bn::bn32Engine().name(), "bn32");
    EXPECT_STREQ(bn::bn64Engine().name(), "bn64");
}

TEST(Bn64Engine, ScopeSwitchesActiveEnginePerThread)
{
    EXPECT_EQ(&bn::activeEngine(), &bn::bn32Engine());
    {
        bn::EngineScope scope(bn::bn64Engine());
        EXPECT_EQ(&bn::activeEngine(), &bn::bn64Engine());
        // A default-engine MontgomeryCtx follows the scope.
        bn::MontgomeryCtx ctx(BigNum::fromHex("f00dd00d1"));
        EXPECT_NE(ctx.core64(), nullptr);
        {
            bn::EngineScope inner(bn::bn32Engine());
            EXPECT_EQ(&bn::activeEngine(), &bn::bn32Engine());
        }
        EXPECT_EQ(&bn::activeEngine(), &bn::bn64Engine());

        // The override is thread-local: a fresh thread sees the bn32
        // default even while this one is scoped to bn64.
        const bn::Engine *other = nullptr;
        std::thread([&] { other = &bn::activeEngine(); }).join();
        EXPECT_EQ(other, &bn::bn32Engine());
    }
    EXPECT_EQ(&bn::activeEngine(), &bn::bn32Engine());
}

} // anonymous namespace

file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_handshake_anatomy.dir/bench_table2_handshake_anatomy.cc.o"
  "CMakeFiles/bench_table2_handshake_anatomy.dir/bench_table2_handshake_anatomy.cc.o.d"
  "bench_table2_handshake_anatomy"
  "bench_table2_handshake_anatomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_handshake_anatomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

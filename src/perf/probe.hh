/**
 * @file
 * Cycle-accounting probes — the reproduction's VTune/Oprofile substitute.
 *
 * A PerfContext is a named-counter sink. Library code never takes a
 * context parameter; instead the measuring code installs a context as
 * the thread-local "current" one (ContextScope) and instrumented
 * functions self-report through FuncProbe. When no context is installed
 * a probe costs a single predictable branch, so the production path
 * stays clean.
 *
 * Probes maintain a per-thread stack so each counter records both
 *  - inclusive cycles (children included) — what the paper's Table 2
 *    reports per crypto function, and
 *  - exclusive cycles (children subtracted) — the flat profile of
 *    Table 8, matching how a sampling profiler attributes time.
 *
 * Two probe levels mirror the paper's two profiling granularities:
 *  - Coarse: SSL-visible crypto entry points (Table 2's function column)
 *  - Fine:   bignum inner kernels (Table 8's function profile); these
 *            fire millions of times, so they only report when the
 *            context explicitly opts in.
 */

#ifndef SSLA_PERF_PROBE_HH
#define SSLA_PERF_PROBE_HH

#include <cassert>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "util/cycles.hh"

namespace ssla::obs
{
class MetricsRegistry;
} // namespace ssla::obs

namespace ssla::perf
{

/** Accumulated cycles and invocation count for one named region. */
struct Counter
{
    uint64_t inclusive = 0; ///< cycles including instrumented children
    uint64_t exclusive = 0; ///< cycles with instrumented children removed
    uint64_t calls = 0;
};

/** Probe granularity; see file comment. */
enum class ProbeLevel
{
    Coarse,
    Fine,
};

/**
 * A sink for named cycle counters.
 *
 * Threading contract: a PerfContext is owned by ONE thread at a time.
 * add() mutates unsynchronised state and counters() lazily rebuilds
 * its snapshot, so reading from a second thread while another thread's
 * ContextScope still points at the context is a data race — the
 * snapshot can be torn mid-rebuild. Debug builds bind the context to
 * the first thread that touches it and assert on every subsequent
 * add()/counters() call; clear() releases the binding, so the
 * hand-off pattern "worker fills, then joins, then the coordinator
 * reads" must either read through the same thread or clear()/rebind.
 * (ServeEngine instead bridges per-worker contexts into the metrics
 * registry via publishTo(), which is safe from the worker itself.)
 */
class PerfContext
{
  public:
    /** @param fine_grained also collect Fine-level (bignum) probes. */
    explicit PerfContext(bool fine_grained = false)
        : fineGrained_(fine_grained)
    {}

    /**
     * Record one probe firing. @p name must have static storage
     * duration: the hot path keys by pointer so that a probe costs a
     * hash of one word, not a string map walk (names are merged by
     * content when counters() builds its snapshot).
     */
    void
    add(const char *name, uint64_t inclusive, uint64_t exclusive)
    {
        assertOwned();
        auto &c = raw_[name];
        c.inclusive += inclusive;
        c.exclusive += exclusive;
        c.calls += 1;
        dirty_ = true;
    }

    bool collectFine() const { return fineGrained_; }

    /** Name-keyed snapshot of all counters (rebuilt lazily). */
    const std::map<std::string, Counter> &counters() const;

    /** Inclusive cycles recorded under @p name (0 if never hit). */
    uint64_t cyclesFor(const std::string &name) const;

    /** Sum of inclusive cycles over every counter named in @p names. */
    uint64_t cyclesFor(const std::vector<std::string> &names) const;

    /** Sum of exclusive cycles over all counters. */
    uint64_t totalExclusive() const;

    /**
     * Bridge into the live metrics registry: every counter becomes
     * three registry counters — <prefix><name>.inclusive_cycles,
     * .exclusive_cycles and .calls — added (not overwritten) so
     * repeated publishes from per-worker contexts aggregate. Call
     * from the owning thread.
     */
    void publishTo(obs::MetricsRegistry &reg,
                   const std::string &prefix = "perf.") const;

    void
    clear()
    {
        raw_.clear();
        snapshot_.clear();
        dirty_ = false;
    }

  private:
    friend class ContextScope;

#ifndef NDEBUG
    /** ContextScope pins the context to the installing thread. */
    void
    bindOwner() const
    {
        std::thread::id self = std::this_thread::get_id();
        assert((scopeCount_ == 0 || owner_ == self) &&
               "PerfContext installed by two threads at once");
        owner_ = self;
        ++scopeCount_;
    }

    void
    releaseOwner() const
    {
        if (--scopeCount_ == 0)
            owner_ = std::thread::id();
    }

    /**
     * add()/counters() while another thread's ContextScope is still
     * installed is the staleness hazard: the lazy snapshot rebuild
     * races the writer. Reads after the scope is gone (and the writer
     * joined) are fine.
     */
    void
    assertOwned() const
    {
        assert((scopeCount_ == 0 ||
                owner_ == std::this_thread::get_id()) &&
               "PerfContext touched while installed on another thread");
    }
#else
    void bindOwner() const {}
    void releaseOwner() const {}
    void assertOwned() const {}
#endif

    std::unordered_map<const char *, Counter> raw_;
    mutable std::map<std::string, Counter> snapshot_;
    mutable bool dirty_ = false;
    bool fineGrained_;
#ifndef NDEBUG
    mutable std::thread::id owner_;
    mutable int scopeCount_ = 0;
#endif
};

/** The thread-local context probes currently report to (may be null). */
PerfContext *currentContext();

/** RAII installer for the thread-local current context. */
class ContextScope
{
  public:
    explicit ContextScope(PerfContext *ctx);
    ~ContextScope();

    ContextScope(const ContextScope &) = delete;
    ContextScope &operator=(const ContextScope &) = delete;

  private:
    PerfContext *ctx_;
    PerfContext *prev_;
};

/**
 * RAII probe around an instrumented function body.
 *
 * @p name must have static storage duration (string literal).
 */
class FuncProbe
{
  public:
    explicit FuncProbe(const char *name,
                       ProbeLevel level = ProbeLevel::Coarse);
    ~FuncProbe();

    FuncProbe(const FuncProbe &) = delete;
    FuncProbe &operator=(const FuncProbe &) = delete;

  private:
    PerfContext *ctx_;
    const char *name_;
    FuncProbe *parent_ = nullptr;
    uint64_t start_ = 0;
    uint64_t childCycles_ = 0;
};

} // namespace ssla::perf

#endif // SSLA_PERF_PROBE_HH

/**
 * @file
 * Tests for primality testing and prime generation.
 */

#include <gtest/gtest.h>

#include "bn/prime.hh"
#include "util/rng.hh"

#include "testkeys.hh"

namespace
{

using namespace ssla;
using bn::BigNum;

TEST(Prime, SmallKnownPrimes)
{
    auto rng = test::seededRng(1);
    for (uint64_t p : {2, 3, 5, 7, 11, 13, 97, 101, 997})
        EXPECT_TRUE(bn::isProbablePrime(BigNum(p), rng)) << p;
}

TEST(Prime, SmallKnownComposites)
{
    auto rng = test::seededRng(2);
    for (uint64_t c : {1, 4, 6, 9, 15, 21, 100, 561, 1001, 999})
        EXPECT_FALSE(bn::isProbablePrime(BigNum(c), rng)) << c;
}

TEST(Prime, CarmichaelNumbersRejected)
{
    // Carmichael numbers fool Fermat but not Miller-Rabin.
    auto rng = test::seededRng(3);
    for (uint64_t c : {561, 1105, 1729, 2465, 2821, 6601, 8911})
        EXPECT_FALSE(bn::millerRabin(BigNum(c), 20, rng)) << c;
}

TEST(Prime, LargeKnownPrime)
{
    auto rng = test::seededRng(4);
    // 2^127 - 1 is a Mersenne prime.
    BigNum m127 = BigNum(1).shiftLeft(127) - BigNum(1);
    EXPECT_TRUE(bn::millerRabin(m127, 10, rng));
    // 2^128 + 1 is composite (F7 factors are known).
    BigNum f7 = BigNum(1).shiftLeft(128) + BigNum(1);
    EXPECT_FALSE(bn::millerRabin(f7, 10, rng));
}

TEST(Prime, ProductOfPrimesIsComposite)
{
    auto rng = test::seededRng(5);
    BigNum p = bn::generatePrime(64, rng);
    BigNum q = bn::generatePrime(64, rng);
    EXPECT_FALSE(bn::isProbablePrime(p * q, rng));
}

TEST(Prime, TrialDivision)
{
    EXPECT_TRUE(bn::passesTrialDivision(BigNum(997)));
    EXPECT_FALSE(bn::passesTrialDivision(BigNum(996)));
    // Passing trial division is necessary but not sufficient:
    // 1009*1013 has no small factors.
    EXPECT_TRUE(bn::passesTrialDivision(BigNum(1009 * 1013)));
}

TEST(Prime, RandomBitsExactLength)
{
    auto rng = test::seededRng(6);
    for (size_t bits : {16u, 17u, 31u, 32u, 33u, 64u, 100u}) {
        BigNum n = bn::randomBits(bits, rng);
        EXPECT_EQ(n.bitLength(), bits);
    }
}

TEST(Prime, RandomBelowInRange)
{
    auto rng = test::seededRng(7);
    BigNum bound = BigNum::fromDecimal("1000000000000");
    for (int i = 0; i < 100; ++i) {
        BigNum v = bn::randomBelow(bound, rng);
        EXPECT_LT(v, bound);
        EXPECT_FALSE(v.isNegative());
    }
    EXPECT_THROW(bn::randomBelow(BigNum(), rng), std::domain_error);
}

/** Generation sweep across sizes. */
class PrimeGeneration : public ::testing::TestWithParam<size_t>
{};

TEST_P(PrimeGeneration, ExactSizeTopBitsSet)
{
    size_t bits = GetParam();
    auto rng = test::seededRng(bits);
    BigNum p = bn::generatePrime(bits, rng);
    EXPECT_EQ(p.bitLength(), bits);
    EXPECT_TRUE(p.testBit(bits - 1));
    EXPECT_TRUE(p.testBit(bits - 2));
    EXPECT_TRUE(p.isOdd());
    EXPECT_TRUE(bn::isProbablePrime(p, rng));
}

INSTANTIATE_TEST_SUITE_P(Sizes, PrimeGeneration,
                         ::testing::Values(32, 64, 128, 256));

TEST(Prime, GenerateRejectsTinySizes)
{
    auto rng = test::seededRng(9);
    EXPECT_THROW(bn::generatePrime(8, rng), std::domain_error);
}

TEST(Prime, DeterministicWithSeed)
{
    BigNum a = bn::generatePrime(64, test::seededRng(42));
    BigNum b = bn::generatePrime(64, test::seededRng(42));
    EXPECT_EQ(a, b);
}

} // anonymous namespace

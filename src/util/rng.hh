/**
 * @file
 * Deterministic fast RNG for tests, workload generation and key-material
 * seeding.
 *
 * This is NOT the SSL random-byte source; the protocol layer uses the
 * MD5-based crypto::RandomPool (the md_rand analogue the paper profiles
 * as rand_pseudo_bytes). Xoshiro exists so that tests and workloads are
 * reproducible and fast.
 */

#ifndef SSLA_UTIL_RNG_HH
#define SSLA_UTIL_RNG_HH

#include <cstdint>

#include "util/types.hh"

namespace ssla
{

/** xoshiro256** — small, fast, splittable deterministic generator. */
class Xoshiro256
{
  public:
    /** Seed via splitmix64 expansion of @p seed. */
    explicit Xoshiro256(uint64_t seed = 0x5eed5eed5eed5eedULL);

    /** Next 64 uniformly distributed bits. */
    uint64_t next();

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    uint64_t nextBelow(uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Fill @p out with @p len pseudo-random bytes. */
    void fill(uint8_t *out, size_t len);

    /** Produce @p len pseudo-random bytes. */
    Bytes bytes(size_t len);

  private:
    uint64_t s_[4];
};

} // namespace ssla

#endif // SSLA_UTIL_RNG_HH

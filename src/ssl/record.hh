/**
 * @file
 * The SSLv3 record layer: fragmentation, MAC, padding, encryption.
 *
 * This is where the bulk-data-transfer costs the paper measures live:
 * the "mac" probe covers the SSLv3 pad-concatenation MAC, and
 * "pri_encryption"/"pri_decryption" cover the symmetric cipher work
 * (all three fire from the crypto provider's dispatch layer — see
 * crypto/provider.hh).
 *
 * All crypto objects are created through a crypto::Provider; with a
 * pipelined provider, sendMany() realizes the paper's Section 6.2
 * optimization by computing the MAC of record n+1 on the engine's
 * worker while record n is being CBC-encrypted.
 */

#ifndef SSLA_SSL_RECORD_HH
#define SSLA_SSL_RECORD_HH

#include <deque>
#include <memory>
#include <optional>
#include <span>

#include "crypto/provider.hh"
#include "obs/metrics.hh"
#include "ssl/alert.hh"
#include "ssl/bio.hh"
#include "ssl/ciphersuite.hh"
#include "util/iovec.hh"

namespace ssla::ssl
{

/** SSLv3 record content types. */
enum class ContentType : uint8_t
{
    ChangeCipherSpec = 20,
    Alert = 21,
    Handshake = 22,
    ApplicationData = 23,
};

/** SSL 3.0 — the version the paper measures, and the default. */
constexpr uint16_t ssl3Version = 0x0300;

/** TLS 1.0 (RFC 2246), negotiable via the endpoint configs. */
constexpr uint16_t tls1Version = 0x0301;

/** Maximum plaintext fragment per record. */
constexpr size_t maxFragment = 16384;

/** A decrypted, authenticated record. */
struct Record
{
    ContentType type;
    Bytes payload;
};

/**
 * Compute the SSLv3 MAC:
 * hash(secret || pad2 || hash(secret || pad1 || seq || type || len ||
 * data)). Dispatches through the default provider; probed as "mac".
 */
Bytes ssl3Mac(crypto::DigestAlg alg, const Bytes &secret, uint64_t seq,
              uint8_t type, const uint8_t *data, size_t len);

/**
 * Compute the TLS 1.0 record MAC:
 * HMAC(secret, seq || type || version || length || data). Dispatches
 * through the default provider; probed as "mac".
 */
Bytes tls1Mac(crypto::DigestAlg alg, const Bytes &secret, uint64_t seq,
              uint8_t type, uint16_t version, const uint8_t *data,
              size_t len);

/**
 * Registry handles for a record channel's traffic accounting: records
 * and plaintext bytes per direction. The struct (not the layer) owns
 * the handle resolution so a serving engine can point many channels at
 * one pre-resolved set — binding costs nothing per connection.
 */
struct RecordCounters
{
    obs::Counter recordsOut;
    obs::Counter bytesOut;
    obs::Counter recordsIn;
    obs::Counter bytesIn;
    /**
     * Data-plane allocation events on the send path: scratch-arena /
     * staging-buffer reallocations and whole-record spills into the
     * would-block retry queue. Both must read zero over a steady-state
     * window — the gate bench_serve_throughput asserts.
     */
    obs::Counter scratchGrows;
    obs::Counter pendingSpills;

    /** Resolve the standard record.* names from @p reg. */
    static RecordCounters resolve(obs::MetricsRegistry &reg);
};

/**
 * The process-default counter set, resolved once from the global
 * registry (standalone endpoints in tests/examples count here).
 */
const RecordCounters &globalRecordCounters();

/** One direction's active cipher state. */
struct RecordCipherState
{
    const CipherSuite *suite = nullptr;
    crypto::Provider *provider = nullptr; ///< engine serving this direction
    std::unique_ptr<crypto::Cipher> cipher;
    crypto::RecordMacSpec macSpec; ///< digest, secret, MAC construction
    uint64_t seq = 0;

    bool active() const { return suite != nullptr; }
};

/**
 * A full-duplex SSLv3 record channel over a BioEndpoint.
 *
 * Starts in plaintext; each direction switches to its pending cipher
 * state when the corresponding ChangeCipherSpec is processed.
 */
class RecordLayer
{
  public:
    /**
     * @param bio the transport
     * @param provider crypto engine for both directions; null selects
     *        crypto::defaultProvider() (instrumented scalar kernels)
     */
    explicit RecordLayer(BioEndpoint bio,
                         crypto::Provider *provider = nullptr)
        : bio_(bio),
          provider_(provider ? provider : &crypto::defaultProvider()),
          obs_(&globalRecordCounters())
    {}

    /**
     * Re-point traffic accounting at @p counters (null restores the
     * global set). The pointee must outlive the layer; a serving
     * engine binds every connection to its own registry's handles.
     */
    void
    bindCounters(const RecordCounters *counters)
    {
        obs_ = counters ? counters : &globalRecordCounters();
    }

    /** Send @p data as one or more records of @p type. */
    void send(ContentType type, const Bytes &data);
    void send(ContentType type, const uint8_t *data, size_t len);

    /**
     * Scatter/gather send: the concatenation of @p iov is fragmented
     * into records of @p type. Under a pipelined provider the record
     * MACs are computed by the engine worker one record ahead of the
     * CBC encryption (the paper's Figure 6 overlap); the wire bytes
     * are identical to the sequential send() path.
     */
    void sendMany(ContentType type,
                  const std::span<const uint8_t> *iov, size_t iovcnt);
    void sendMany(ContentType type, const std::vector<Bytes> &bufs);

    /**
     * Try to read one record. Returns nullopt when the transport does
     * not yet hold a complete record (the would-block case).
     * @throws SslError on MAC/padding/format failures
     */
    std::optional<Record> receive();

    /** Install the write-direction cipher (after sending CCS). */
    void enableSendCipher(const CipherSuite &suite, Bytes mac_secret,
                          const Bytes &key, const Bytes &iv);

    /** Install the read-direction cipher (after receiving CCS). */
    void enableRecvCipher(const CipherSuite &suite, Bytes mac_secret,
                          const Bytes &key, const Bytes &iv);

    bool sendCipherActive() const { return send_.active(); }
    bool recvCipherActive() const { return recv_.active(); }

    /** Flush the transport (probed buffer control, like Table 2). */
    void
    flush()
    {
        flushPendingOutput();
        bio_.flush();
    }

    /**
     * Retry records the transport refused (a capped MemBio whose
     * reader stopped draining). Sealed records queue here in order —
     * sequence numbers are already burned — and nothing later goes on
     * the wire until the backlog clears. @return true if any record
     * was delivered by this call.
     */
    bool flushPendingOutput();

    /** True while sealed records are queued behind a full transport. */
    bool outputBlocked() const { return !pendingOut_.empty(); }

    /** Records queued behind a full transport. */
    size_t pendingOutputRecords() const { return pendingOut_.size(); }

    /**
     * Lock the negotiated protocol version (0x0300 or 0x0301).
     * Before locking, incoming records of any 3.x version are
     * accepted (a TLS client's first flight may arrive before the
     * hello is parsed); afterwards the version must match exactly.
     */
    void setVersion(uint16_t version);

    /** Currently negotiated (or default SSLv3) version. */
    uint16_t version() const { return version_; }

    /** The crypto engine this channel creates its objects through. */
    crypto::Provider &provider() { return *provider_; }

    /** Plaintext application/handshake bytes sent (for the web sim). */
    uint64_t bytesSent() const { return bytesSent_; }
    uint64_t recordsSent() const { return recordsSent_; }

    /** Send-side scratch-arena reallocations (0 once warmed up). */
    uint64_t scratchGrows() const { return arena_.grows(); }

  private:
    /** Seal one cipher-protected record in the arena and deliver it:
     *  gather payload at offset 5, MAC and pad behind it, encrypt in
     *  place — one wire image, zero heap traffic once warm. */
    void sendCipherRecord(ContentType type, IoVecCursor &cur,
                          size_t chunk);

    /** Deliver one plaintext record straight off the caller's spans
     *  (stack header + borrowed payload slices, no copy at all). */
    void sendPlainRecord(ContentType type, IoVecCursor &cur,
                         size_t chunk);

    /** The overlapped multi-record path (pipelined providers). */
    void sendPipelined(ContentType type,
                       const std::span<const uint8_t> *iov,
                       size_t iovcnt);

    /** Fill a 5-byte record header in place. */
    void fillHeader(uint8_t *hdr, ContentType type,
                    size_t frag_len) const;

    /** Pad (CBC suites) and encrypt a fragment in place; @p len is
     *  payload+MAC bytes at @p frag. Returns the sealed length. */
    size_t padAndEncrypt(uint8_t *frag, size_t len);

    /** Hand one sealed record (as slices) to the transport; a refusal
     *  flattens it into the in-order retry queue (a counted spill). */
    void deliver(const ConstSpan *iov, size_t iovcnt,
                 size_t payload_len);

    /** MAC dispatch on the direction's provider and spec; writes into
     *  @p out (≥ crypto::maxRecordMacLen) and returns the length. */
    size_t computeMac(const RecordCipherState &dir, uint8_t type,
                      ConstSpan data, uint64_t seq, uint8_t *out) const;

    /** Mirror arena reallocations into the scratch-grows counter. */
    void noteArenaGrowth();

    BioEndpoint bio_;
    crypto::Provider *provider_;
    RecordCipherState send_;
    RecordCipherState recv_;
    std::deque<Bytes> pendingOut_; ///< sealed records the bio refused
    ScratchArena arena_;           ///< reusable wire image (sync path)
    uint64_t arenaGrowsSeen_ = 0;  ///< grows already counted
    std::vector<Bytes> stagePool_; ///< recycled pipelined staging bufs
    std::vector<ConstSpan> iovScratch_; ///< reused plaintext slice list
    uint16_t version_ = ssl3Version;
    bool versionLocked_ = false;
    uint64_t bytesSent_ = 0;
    uint64_t recordsSent_ = 0;
    const RecordCounters *obs_; ///< never null
};

} // namespace ssla::ssl

#endif // SSLA_SSL_RECORD_HH

#include "pki/cert.hh"

#include <stdexcept>

#include "crypto/md5.hh"
#include "crypto/sha1.hh"
#include "perf/probe.hh"
#include "util/bytes.hh"

namespace ssla::pki
{

Bytes
Certificate::encodeTbs(const CertificateInfo &info)
{
    Bytes key = derSequence({
        derInteger(info.publicKey.n),
        derInteger(info.publicKey.e),
    });
    return derSequence({
        derInteger(info.serial),
        derUtf8(info.issuer),
        derUtf8(info.subject),
        derInteger(info.notBefore),
        derInteger(info.notAfter),
        key,
    });
}

Bytes
Certificate::tbsDigest(const Bytes &tbs)
{
    // SSLv3-era RSA signatures sign MD5 || SHA1 of the body.
    Bytes digest = crypto::Md5::hash(tbs);
    append(digest, crypto::Sha1::hash(tbs));
    return digest;
}

Certificate
Certificate::issue(const CertificateInfo &info,
                   const crypto::RsaPrivateKey &issuer_key)
{
    perf::FuncProbe probe("x509_issue");
    Certificate cert;
    cert.info_ = info;
    cert.tbs_ = encodeTbs(info);
    cert.signature_ = crypto::rsaSign(issuer_key, tbsDigest(cert.tbs_));
    cert.encoded_ = derSequence({
        cert.tbs_,
        derOctetString(cert.signature_),
    });
    return cert;
}

Certificate
Certificate::parse(const Bytes &encoded)
{
    perf::FuncProbe probe("x509_parse");
    Certificate cert;
    cert.encoded_ = encoded;

    DerParser top(encoded);
    Bytes outer = top.readSequence();
    if (!top.atEnd())
        throw std::runtime_error("certificate: trailing garbage");

    DerParser body(outer);
    // The TBS must be kept byte-exact for signature checking: re-wrap
    // the parsed sequence content.
    Bytes tbs_content = body.readSequence();
    cert.tbs_ = derWrap(DerTag::Sequence, tbs_content);
    cert.signature_ = body.readOctetString();
    if (!body.atEnd())
        throw std::runtime_error("certificate: trailing garbage");

    DerParser tbs(tbs_content);
    cert.info_.serial = tbs.readSmallInteger();
    cert.info_.issuer = tbs.readUtf8();
    cert.info_.subject = tbs.readUtf8();
    cert.info_.notBefore = tbs.readSmallInteger();
    cert.info_.notAfter = tbs.readSmallInteger();
    DerParser key(tbs.readSequence());
    cert.info_.publicKey.n = key.readInteger();
    cert.info_.publicKey.e = key.readInteger();
    if (!key.atEnd() || !tbs.atEnd())
        throw std::runtime_error("certificate: trailing garbage");

    if (cert.info_.publicKey.n.bitLength() < 256)
        throw std::runtime_error("certificate: implausible RSA modulus");
    return cert;
}

bool
Certificate::verify(const crypto::RsaPublicKey &issuer_key) const
{
    perf::FuncProbe probe("x509_verify");
    return crypto::rsaVerify(issuer_key, tbsDigest(tbs_), signature_);
}

bool
Certificate::validAt(uint64_t unix_time) const
{
    return unix_time >= info_.notBefore && unix_time <= info_.notAfter;
}

bool
verifyChain(const std::vector<Certificate> &chain,
            const crypto::RsaPublicKey *trusted_root, uint64_t at)
{
    perf::FuncProbe probe("x509_verify_chain");
    if (chain.empty())
        return false;

    for (size_t i = 0; i < chain.size(); ++i) {
        const Certificate &cert = chain[i];
        if (at && !cert.validAt(at))
            return false;

        if (i + 1 < chain.size()) {
            const Certificate &issuer = chain[i + 1];
            if (cert.info().issuer != issuer.info().subject)
                return false;
            if (!cert.verify(issuer.info().publicKey))
                return false;
        } else {
            // Terminal certificate: anchor to the trusted root, or
            // accept self-signed when no root was configured.
            if (trusted_root)
                return cert.verify(*trusted_root);
            return cert.isSelfSigned();
        }
    }
    return false; // unreachable
}

} // namespace ssla::pki

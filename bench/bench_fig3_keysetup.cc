/**
 * @file
 * Reproduces Figure 3 (and the context of Table 4): the share of
 * symmetric-encryption time spent in key setup as the transferred
 * data size grows from 1 KB to 32 KB, for AES, DES, 3DES and RC4.
 *
 * The paper's shape: block ciphers stay at 1.0-3.6% at 1 KB while RC4
 * reaches 28.5% (its 256-entry state-table init against a trivial
 * per-byte kernel), and all shares shrink as the data grows.
 */

#include <cstdio>

#include "common.hh"
#include "crypto/aes.hh"
#include "crypto/des.hh"
#include "crypto/rc4.hh"
#include "perf/report.hh"

using namespace ssla;
using namespace ssla::crypto;
using perf::TablePrinter;

namespace
{

constexpr int iters = 200;

double
aesSetupCycles(const Bytes &key)
{
    AesKey ks;
    return bench::cyclesPerCall(
        [&] { aesSetEncryptKey(key.data(), 128, ks); }, iters);
}

double
desSetupCycles(const Bytes &key)
{
    DesKeySchedule ks;
    return bench::cyclesPerCall([&] { desSetKey(key.data(), ks); },
                                iters);
}

double
tripleDesSetupCycles(const Bytes &key)
{
    DesKeySchedule a, b, c;
    return bench::cyclesPerCall(
        [&] {
            desSetKey(key.data(), a);
            desSetKey(key.data() + 8, b, true);
            desSetKey(key.data() + 16, c);
        },
        iters);
}

double
rc4SetupCycles(const Bytes &key)
{
    perf::NullMeter m;
    uint8_t state[256];
    return bench::cyclesPerCall([&] { Rc4::keySetupT(key, state, m); },
                                iters);
}

} // anonymous namespace

int
main()
{
    bench::warmUpCpu();
    Bytes key32 = bench::benchPayload(32, 1);
    Bytes key16(key32.begin(), key32.begin() + 16);
    Bytes key8(key32.begin(), key32.begin() + 8);
    Bytes key24(key32.begin(), key32.begin() + 24);

    double aes_setup = aesSetupCycles(key16);
    double des_setup = desSetupCycles(key8);
    double tdes_setup = tripleDesSetupCycles(key24);
    double rc4_setup = rc4SetupCycles(key16);

    TablePrinter table(
        "Figure 3: Key setup share of encryption vs transferred data "
        "size (percent of setup+kernel cycles)");
    table.setHeader(
        {"size", "AES", "DES", "3DES", "RC4", "paper RC4"});

    Aes aes(key16);
    Des des(key8);
    TripleDes tdes(key24);

    for (size_t kb : {1, 2, 4, 8, 16, 32}) {
        size_t len = kb * 1024;
        Bytes data = bench::benchPayload(len, kb);
        Bytes out(len);

        double aes_kernel = bench::cyclesPerCall(
            [&] {
                for (size_t off = 0; off < len; off += 16)
                    aes.encryptBlock(data.data() + off,
                                     out.data() + off);
            },
            20);
        double des_kernel = bench::cyclesPerCall(
            [&] {
                for (size_t off = 0; off < len; off += 8)
                    des.encryptBlock(data.data() + off,
                                     out.data() + off);
            },
            20);
        double tdes_kernel = bench::cyclesPerCall(
            [&] {
                for (size_t off = 0; off < len; off += 8)
                    tdes.encryptBlock(data.data() + off,
                                      out.data() + off);
            },
            20);
        Rc4 rc4(key16);
        double rc4_kernel = bench::cyclesPerCall(
            [&] { rc4.process(data.data(), out.data(), len); }, 20);

        auto share = [](double setup, double kernel) {
            return perf::fmtPct(100.0 * setup / (setup + kernel));
        };
        const char *paper_rc4 = kb == 1 ? "28.5" : (kb == 8 ? "~5" : "-");
        table.addRow({perf::fmt("%zuKB", kb),
                      share(aes_setup, aes_kernel),
                      share(des_setup, des_kernel),
                      share(tdes_setup, tdes_kernel),
                      share(rc4_setup, rc4_kernel), paper_rc4});
    }
    table.print();

    std::printf("\nkey setup cycles: AES=%.0f DES=%.0f 3DES=%.0f "
                "RC4=%.0f\n",
                aes_setup, des_setup, tdes_setup, rc4_setup);

    TablePrinter t4("Table 4: Data structures and characteristics");
    t4.setHeader({"", "AES", "DES", "3DES", "RC4"});
    t4.addRow({"Block size", "128b", "64b", "64b", "8b"});
    t4.addRow({"Key size", "128b", "56b", "3x56b", "128b"});
    t4.addRow({"Key schedule", "44,32b", "32,32b", "3x(32,32b)", "n/a"});
    t4.addRow({"Tables", "4,256,32b", "8,64,32b", "8,64,32b",
               "1,256,8b"});
    t4.addRow({"Rounds", "10", "16", "3x16", "1"});
    t4.addRow({"Table lookups/round", "16", "8", "8", "3"});
    t4.print();
    return 0;
}

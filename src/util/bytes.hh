/**
 * @file
 * Byte-buffer helpers: serialization cursors, constant-time comparison
 * and secure wiping.
 *
 * ByteWriter/ByteReader are the wire-format workhorses for the SSL record
 * and handshake layers (src/ssl) and the DER-style codec (src/pki). SSL
 * uses big-endian ("network order") multi-byte integers throughout.
 */

#ifndef SSLA_UTIL_BYTES_HH
#define SSLA_UTIL_BYTES_HH

#include <cstring>
#include <string>
#include <string_view>

#include "util/types.hh"

namespace ssla
{

/** Append the contents of @p src to @p dst. */
inline void
append(Bytes &dst, const Bytes &src)
{
    dst.insert(dst.end(), src.begin(), src.end());
}

/** Append @p len raw bytes at @p src to @p dst. */
inline void
append(Bytes &dst, const uint8_t *src, size_t len)
{
    dst.insert(dst.end(), src, src + len);
}

/** Convert a string to bytes (no terminator). */
inline Bytes
toBytes(std::string_view s)
{
    return Bytes(s.begin(), s.end());
}

/** Convert bytes to a std::string (may contain NULs). */
inline std::string
toString(const Bytes &b)
{
    return std::string(b.begin(), b.end());
}

/**
 * Compare two equal-length buffers without data-dependent branches.
 *
 * Used for MAC and finished-hash verification so that the comparison
 * itself does not leak the position of the first mismatch.
 *
 * @return true iff the buffers are byte-identical.
 */
bool constantTimeEquals(const uint8_t *a, const uint8_t *b, size_t len);

/** Constant-time comparison of two Bytes; false if lengths differ. */
bool constantTimeEquals(const Bytes &a, const Bytes &b);

/**
 * Overwrite sensitive material with zeros in a way the optimizer must
 * not elide (the OPENSSL_cleanse analogue from the paper's Table 8).
 */
void secureWipe(void *data, size_t len);

/** Wipe and clear a byte buffer holding key material. */
void secureWipe(Bytes &data);

/**
 * Serialization cursor producing big-endian wire format.
 *
 * All put* calls append to an internal buffer retrievable via take().
 */
class ByteWriter
{
  public:
    ByteWriter() = default;

    void putU8(uint8_t v) { buf_.push_back(v); }

    void
    putU16(uint16_t v)
    {
        buf_.push_back(static_cast<uint8_t>(v >> 8));
        buf_.push_back(static_cast<uint8_t>(v));
    }

    void
    putU24(uint32_t v)
    {
        buf_.push_back(static_cast<uint8_t>(v >> 16));
        buf_.push_back(static_cast<uint8_t>(v >> 8));
        buf_.push_back(static_cast<uint8_t>(v));
    }

    void
    putU32(uint32_t v)
    {
        putU16(static_cast<uint16_t>(v >> 16));
        putU16(static_cast<uint16_t>(v));
    }

    void putBytes(const Bytes &b) { append(buf_, b); }
    void putBytes(const uint8_t *p, size_t n) { append(buf_, p, n); }

    /** Append a length-prefixed vector with an 8-bit length. */
    void putVector8(const Bytes &b);
    /** Append a length-prefixed vector with a 16-bit length. */
    void putVector16(const Bytes &b);
    /** Append a length-prefixed vector with a 24-bit length. */
    void putVector24(const Bytes &b);

    size_t size() const { return buf_.size(); }
    const Bytes &peek() const { return buf_; }

    /** Move the accumulated buffer out of the writer. */
    Bytes take() { return std::move(buf_); }

  private:
    Bytes buf_;
};

/**
 * Deserialization cursor over a byte buffer (big-endian wire format).
 *
 * All get* calls throw std::out_of_range when the input is exhausted;
 * protocol code converts that into a decode alert.
 */
class ByteReader
{
  public:
    ByteReader(const uint8_t *data, size_t len) : data_(data), len_(len) {}
    explicit ByteReader(const Bytes &b) : data_(b.data()), len_(b.size()) {}

    size_t remaining() const { return len_ - pos_; }
    bool empty() const { return pos_ == len_; }
    size_t position() const { return pos_; }

    uint8_t getU8();
    uint16_t getU16();
    uint32_t getU24();
    uint32_t getU32();

    /** Read exactly @p n raw bytes. */
    Bytes getBytes(size_t n);

    /** Read a vector with an 8-bit length prefix. */
    Bytes getVector8();
    /** Read a vector with a 16-bit length prefix. */
    Bytes getVector16();
    /** Read a vector with a 24-bit length prefix. */
    Bytes getVector24();

    /** Skip @p n bytes. */
    void skip(size_t n);

  private:
    void require(size_t n) const;

    const uint8_t *data_;
    size_t len_;
    size_t pos_ = 0;
};

} // namespace ssla

#endif // SSLA_UTIL_BYTES_HH

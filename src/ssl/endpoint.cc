#include "ssl/endpoint.hh"

#include <thread>

#include "util/logging.hh"

namespace ssla::ssl
{

const char *
cryptoWaitLabel(CryptoWait wait)
{
    switch (wait) {
    case CryptoWait::PreMasterDecrypt:
        return "rsa_decrypt";
    case CryptoWait::ServerKxSign:
        return "rsa_sign";
    case CryptoWait::CertVerifySign:
        return "cert_verify_sign";
    case CryptoWait::None:
        break;
    }
    return "none";
}

SslEndpoint::SslEndpoint(BioEndpoint bio, crypto::RandomPool *pool,
                         crypto::Provider *provider)
    : record_(bio, provider),
      pool_(pool ? pool : &crypto::globalRandomPool()),
      obsRegistry_(&obs::MetricsRegistry::global())
{
}

void
SslEndpoint::bindObservability(const EndpointObsBinding &binding)
{
    if (binding.registry)
        obsRegistry_ = binding.registry;
    if (binding.recordCounters)
        record_.bindCounters(binding.recordCounters);
    trace_ = binding.trace;
    traceSide_ = binding.side;
}

const CipherSuite &
SslEndpoint::suite() const
{
    if (!suite_)
        throw std::logic_error("SslEndpoint: no suite negotiated yet");
    return *suite_;
}

bool
SslEndpoint::pumpOneRecord()
{
    auto rec = record_.receive();
    if (!rec)
        return false;

    switch (rec->type) {
      case ContentType::Handshake:
        if (done_)
            fail(AlertDescription::UnexpectedMessage,
                 "renegotiation not supported");
        // Compact the reassembly buffer before appending.
        if (hsOffset_) {
            hsBuffer_.erase(hsBuffer_.begin(),
                            hsBuffer_.begin() + hsOffset_);
            hsOffset_ = 0;
        }
        append(hsBuffer_, rec->payload);
        return true;

      case ContentType::ChangeCipherSpec:
        if (rec->payload.size() != 1 || rec->payload[0] != 1)
            fail(AlertDescription::IllegalParameter,
                 "malformed ChangeCipherSpec");
        traceEvent(obs::TraceEventKind::CcsRecv);
        onChangeCipherSpec();
        ccsReceived_ = true;
        return true;

      case ContentType::Alert:
        handleAlert(rec->payload);
        return true;

      case ContentType::ApplicationData:
        if (!done_)
            fail(AlertDescription::UnexpectedMessage,
                 "application data during handshake");
        appData_.push_back(std::move(rec->payload));
        return true;
    }
    fail(AlertDescription::UnexpectedMessage, "unknown record type");
}

void
SslEndpoint::handleAlert(const Bytes &payload)
{
    if (payload.size() != 2)
        fail(AlertDescription::IllegalParameter, "malformed alert");
    auto level = static_cast<AlertLevel>(payload[0]);
    auto desc = static_cast<AlertDescription>(payload[1]);
    traceEvent(obs::TraceEventKind::AlertRecv, alertName(desc),
               static_cast<uint16_t>(desc));
    // Alerts are rare (one per failed session at most), so resolving
    // the per-code counter by name here beats pre-registering all 26.
    obsRegistry_->counter(std::string("alert.recv.") + alertName(desc))
        .inc();
    if (desc == AlertDescription::CloseNotify) {
        peerClosed_ = true;
        return;
    }
    if (level == AlertLevel::Fatal) {
        // The peer already knows the session is dead: answering its
        // alert with one of ours would be the double-alert the fault
        // harness checks against.
        peerFatal_ = true;
        throw SslError(desc, "peer sent fatal alert");
    }
    warn(std::string("ignoring warning alert: ") + alertName(desc));
}

std::optional<HandshakeMessage>
SslEndpoint::nextHandshakeMessage(bool update_hash)
{
    for (;;) {
        // Bound the declared message length before buffering toward
        // it: the 24-bit length field can announce a 16 MB message,
        // and accumulating that on faith is a memory DoS. Nothing we
        // speak legitimately exceeds a modest certificate chain.
        if (hsBuffer_.size() - hsOffset_ >= 4) {
            size_t declared =
                (static_cast<size_t>(hsBuffer_[hsOffset_ + 1]) << 16) |
                (static_cast<size_t>(hsBuffer_[hsOffset_ + 2]) << 8) |
                hsBuffer_[hsOffset_ + 3];
            if (declared > maxHandshakeMessage)
                fail(AlertDescription::IllegalParameter,
                     "handshake message length " +
                         std::to_string(declared) + " exceeds bound");
        }
        auto msg = HandshakeMessage::parse(hsBuffer_, hsOffset_);
        if (msg) {
            if (update_hash) {
                // Hash the framed form (header + body), as SSLv3 does.
                hsHash_.update(msg->encode());
            }
            traceEvent(obs::TraceEventKind::FlightRecv,
                       handshakeTypeName(msg->type),
                       static_cast<uint16_t>(msg->type),
                       msg->body.size());
            return msg;
        }
        if (ccsReceived_)
            return std::nullopt; // let the state machine handle CCS
        if (!pumpOneRecord())
            return std::nullopt;
    }
}

bool
SslEndpoint::takeCcsReceived()
{
    if (!ccsReceived_) {
        // Try to pull a record in case the CCS is still buffered.
        if (!pumpOneRecord())
            return false;
        if (!ccsReceived_)
            return false;
    }
    ccsReceived_ = false;
    return true;
}

void
SslEndpoint::sendHandshake(HandshakeType type, const Bytes &body)
{
    HandshakeMessage msg{type, body};
    Bytes wire = msg.encode();
    hsHash_.update(wire);
    traceEvent(obs::TraceEventKind::FlightSend, handshakeTypeName(type),
               static_cast<uint16_t>(type), body.size());
    record_.send(ContentType::Handshake, wire);
}

void
SslEndpoint::sendChangeCipherSpec()
{
    Bytes one{1};
    traceEvent(obs::TraceEventKind::CcsSend);
    record_.send(ContentType::ChangeCipherSpec, one);
}

void
SslEndpoint::sendAlert(AlertLevel level, AlertDescription desc)
{
    if (level == AlertLevel::Fatal) {
        if (fatalAlertSent_)
            return; // at most one fatal alert per connection
        fatalAlertSent_ = true;
        ++fatalAlertsSent_;
    }
    traceEvent(obs::TraceEventKind::AlertSend, alertName(desc),
               static_cast<uint16_t>(desc));
    obsRegistry_->counter(std::string("alert.sent.") + alertName(desc))
        .inc();
    Bytes payload{static_cast<uint8_t>(level),
                  static_cast<uint8_t>(desc)};
    record_.send(ContentType::Alert, payload);
}

void
SslEndpoint::fail(AlertDescription desc, const std::string &msg)
{
    noteFatal(desc);
    throw SslError(desc, msg);
}

void
SslEndpoint::noteFatal(AlertDescription desc)
{
    if (dead_)
        return;
    dead_ = true;
    lastAlert_ = desc;
    traceEvent(obs::TraceEventKind::Teardown, alertName(desc),
               static_cast<uint16_t>(desc));
    if (trace_)
        trace_->noteOutcome(peerFatal_ ? "peer-fatal" : "fatal");
    if (!peerFatal_) {
        try {
            sendAlert(AlertLevel::Fatal, desc);
        } catch (...) {
            // Failing to notify the peer must not mask the original
            // error (and must never crash the teardown path).
        }
    }
    onFatal();
}

void
SslEndpoint::abort(AlertDescription desc)
{
    noteFatal(desc);
}

const KeyBlock &
SslEndpoint::keyBlock()
{
    if (!keyBlock_) {
        keyBlock_ = deriveKeyBlock(version_, master_, clientRandom_,
                                   serverRandom_, *suite_);
    }
    return *keyBlock_;
}

bool
SslEndpoint::advance()
{
    if (dead_)
        return false;
    // Retry records a capped transport refused earlier; delivering
    // backlog is progress (the peer can now read what was stuck).
    bool progressed = record_.flushPendingOutput();
    bool wasDone = done_;
    try {
        while (!done_ && step())
            progressed = true;
        if (!wasDone && done_)
            traceEvent(obs::TraceEventKind::HandshakeDone,
                       resumed_ ? "resumed" : "full");
    } catch (const SslError &e) {
        // Central failure funnel: a bare SslError out of a parser gets
        // the same one-alert-then-dead treatment as a fail() call.
        noteFatal(e.alert());
        throw;
    } catch (...) {
        noteFatal(AlertDescription::InternalError);
        throw;
    }
    return progressed;
}

void
SslEndpoint::writeApplicationData(const Bytes &data)
{
    if (!done_)
        throw std::logic_error("writeApplicationData before handshake");
    record_.send(ContentType::ApplicationData, data);
}

void
SslEndpoint::writeApplicationData(const ConstSpan *iov, size_t iovcnt)
{
    if (!done_)
        throw std::logic_error("writeApplicationData before handshake");
    record_.sendMany(ContentType::ApplicationData, iov, iovcnt);
}

std::optional<Bytes>
SslEndpoint::readApplicationData()
{
    try {
        while (appData_.empty()) {
            if (peerClosed_ || dead_)
                return std::nullopt;
            if (!pumpOneRecord())
                return std::nullopt;
        }
    } catch (const SslError &e) {
        noteFatal(e.alert());
        throw;
    }
    Bytes out = std::move(appData_.front());
    appData_.pop_front();
    return out;
}

void
SslEndpoint::close()
{
    if (closeSent_)
        return;
    sendAlert(AlertLevel::Warning, AlertDescription::CloseNotify);
    closeSent_ = true;
}

void
runLockstep(SslEndpoint &a, SslEndpoint &b)
{
    while (!a.handshakeDone() || !b.handshakeDone()) {
        bool progress = a.advance();
        progress |= b.advance();
        if (!progress) {
            // Parked on an async crypto engine is not a deadlock: the
            // result arrives from another thread. Yield and re-poll.
            if (a.waitingOnCrypto() || b.waitingOnCrypto()) {
                std::this_thread::yield();
                continue;
            }
            throw std::runtime_error(
                "runLockstep: handshake deadlocked");
        }
    }
}

} // namespace ssla::ssl

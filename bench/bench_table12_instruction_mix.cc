/**
 * @file
 * Reproduces Table 12: the top-ten instruction mix of each crypto
 * operation, from the metered kernels' x86-32-projected op counts.
 */

#include <cstdio>

#include "opmix.hh"
#include "perf/report.hh"

using namespace ssla;
using namespace ssla::bench;
using perf::TablePrinter;

int
main()
{
    struct Col
    {
        const char *name;
        OpMix mix;
        const char *paper_top;
    };

    Col cols[] = {
        {"AES", aesMix(), "movl 37.75"},
        {"DES", desMix(1024, false), "xorl 41.11"},
        {"3DES", desMix(1024, true), "xorl 39.80"},
        {"RC4", rc4Mix(), "movl 38.06"},
        {"RSA", rsaMix(), "movl 37.17"},
        {"MD5", md5Mix(), "movl 22.11"},
        {"SHA-1", sha1Mix(), "movl 27.81"},
    };

    for (const auto &c : cols) {
        TablePrinter table(perf::fmt(
            "Table 12 (%s): top ten ops (paper's top: %s)", c.name,
            c.paper_top));
        table.setHeader({"op", "%"});
        double covered = 0;
        for (const auto &[op, share] : c.mix.hist.topOps(10)) {
            table.addRow({op, perf::fmtF(share, 2)});
            covered += share;
        }
        table.addRule();
        table.addRow({"top-10 coverage", perf::fmtPct(covered, 2)});
        table.print();
    }

    std::printf("\npaper coverage band: the top ten instructions are "
                "89.78%%-98.53%% of all executed instructions.\n");
    return 0;
}

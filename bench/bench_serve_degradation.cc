/**
 * @file
 * Graceful-degradation sweep: serving goodput as a function of channel
 * fault rate and crypto-pool saturation.
 *
 * A hardened terminating server should degrade smoothly: as the fault
 * rate rises, goodput (completed handshakes/sec) declines monotonically
 * toward zero while every session still reaches a terminal outcome —
 * completed, alerted, or timed out. A cliff (goodput collapsing to
 * zero at a small fault rate, or sessions leaking) indicates the
 * deadline/backpressure machinery is broken. The crypto-pool axis runs
 * the same sweep with the RSA offload saturated under each overload
 * policy: Reject sheds whole sessions fast, Shed degrades to the
 * synchronous baseline, and neither may lose accounting.
 *
 * Emits the BENCH_degradation.json schema (see EXPERIMENTS.md). The
 * exit code gates only correctness — termination accounting and the
 * zero-fault sanity baseline — never absolute rates, so CI is
 * meaningful on any machine shape.
 *
 *   ./bench_serve_degradation [--smoke]
 */

#include <cstdio>
#include <cstring>

#include "common.hh"
#include "obs/metrics.hh"
#include "serve/engine.hh"

using namespace ssla;
using namespace ssla::bench;

namespace
{

/** Cycle count → microseconds, for the handshake-latency fields. */
double
cyclesToUs(double cycles)
{
    return cycles / cycleHz() * 1e6;
}

enum class PoolMode
{
    None,   ///< synchronous in-handshake decrypt
    Reject, ///< tiny bounded pool, overloads rejected
    Shed,   ///< tiny bounded pool, overloads computed synchronously
};

const char *
poolModeName(PoolMode m)
{
    switch (m) {
      case PoolMode::None: return "sync";
      case PoolMode::Reject: return "pool_reject";
      case PoolMode::Shed: return "pool_shed";
    }
    return "?";
}

struct CellResult
{
    double faultRate = 0.0;
    PoolMode mode = PoolMode::None;
    serve::ServeStats stats;
    uint64_t expected = 0;
    uint64_t rejected = 0;
    uint64_t shed = 0;

    bool
    accountedOk() const
    {
        return stats.terminatedSessions() == expected;
    }
};

CellResult
runCell(double fault_rate, PoolMode mode, size_t workers,
        size_t conns_per_worker, const pki::Certificate &cert,
        const std::shared_ptr<crypto::RsaPrivateKey> &key,
        uint64_t seed)
{
    // Per-cell registry: latency percentiles and alert counts below
    // describe this (rate, mode) cell, not the accumulated sweep.
    obs::MetricsRegistry registry;

    serve::ServeConfig cfg;
    cfg.metrics = &registry;
    cfg.workers = workers;
    cfg.connectionsPerWorker = conns_per_worker;
    cfg.concurrentPerWorker = 8;
    cfg.resumeFraction = 0.3;
    cfg.bulkBytes = 0;
    cfg.certificate = &cert;
    cfg.privateKey = key;
    cfg.seed = seed;
    cfg.tolerateFailures = true;
    // Arm the deadlines even at rate 0 so the clean column exercises
    // the same code path as the faulted ones.
    cfg.handshakeDeadlineTicks = 256;
    cfg.idleDeadlineTicks = 256;

    ssl::FaultPlan plan = ssl::FaultPlan::mixed(seed, fault_rate);
    if (fault_rate > 0.0)
        cfg.faultPlan = &plan;

    CellResult r;
    r.faultRate = fault_rate;
    r.mode = mode;
    r.expected = workers * conns_per_worker;

    if (mode == PoolMode::None) {
        serve::ServeEngine engine(std::move(cfg));
        r.stats = engine.run();
    } else {
        // One pool thread and a two-deep queue against many workers:
        // deliberately saturated, so the overload policy is what the
        // cell actually measures.
        serve::CryptoPool pool(1, /*max_queue=*/2,
                               mode == PoolMode::Reject
                                   ? serve::OverloadPolicy::Reject
                                   : serve::OverloadPolicy::Shed);
        cfg.cryptoPool = &pool;
        serve::ServeEngine engine(std::move(cfg));
        r.stats = engine.run();
        r.rejected = pool.rejectedJobs();
        r.shed = pool.shedJobs();
    }
    return r;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        if (!std::strcmp(argv[i], "--smoke"))
            smoke = true;

    warmUpCpu();

    const std::vector<double> rates =
        smoke ? std::vector<double>{0.0, 0.10}
              : std::vector<double>{0.0, 0.02, 0.05, 0.10, 0.20};
    const size_t workers = 2;
    const size_t conns_per_worker = smoke ? 24 : 200;

    const auto &key = benchKey(1024);
    pki::CertificateInfo info;
    info.serial = 2;
    info.issuer = "Bench CA";
    info.subject = "bench.degradation";
    info.notBefore = 0;
    info.notAfter = ~uint64_t(0);
    info.publicKey = key.pub;
    pki::Certificate cert = pki::Certificate::issue(info, *key.priv);

    const PoolMode modes[] = {PoolMode::None, PoolMode::Reject,
                              PoolMode::Shed};

    bool all_accounted = true;
    bool clean_baseline_ok = true;

    JsonWriter j;
    j.beginObject();
    j.field("bench", "serve_degradation");
    j.field("smoke", smoke);
    j.field("workers", static_cast<uint64_t>(workers));
    j.field("connections_per_worker",
            static_cast<uint64_t>(conns_per_worker));
    j.beginArray("fault_rates");
    for (double r : rates)
        j.element(r, 2);
    j.endArray();

    j.beginArray("results");
    for (PoolMode mode : modes) {
        double prev_goodput = -1.0;
        bool monotone = true;
        for (double rate : rates) {
            CellResult cell = runCell(
                rate, mode, workers, conns_per_worker, cert, key.priv,
                0xdeca1 ^ static_cast<uint64_t>(rate * 1000) ^
                    (static_cast<uint64_t>(mode) << 20));
            all_accounted = all_accounted && cell.accountedOk();
            const uint64_t completed = cell.stats.fullHandshakes() +
                                       cell.stats.resumedHandshakes();
            // Reject mode legitimately drops sessions even on a clean
            // channel — the saturated pool answering with
            // internal_error IS the policy — so the full-completion
            // baseline applies to the other two modes only.
            if (rate == 0.0 && mode != PoolMode::Reject &&
                completed != cell.expected)
                clean_baseline_ok = false;
            // Monotonicity is measured on the completed fraction, not
            // the rate: wall-clock noise must not fake a cliff.
            double fraction =
                static_cast<double>(completed) / cell.expected;
            if (prev_goodput >= 0 && fraction > prev_goodput + 0.10)
                monotone = false; // fraction ROSE with the fault rate
            prev_goodput = fraction;

            j.beginObject();
            j.field("pool_mode", poolModeName(mode));
            j.field("fault_rate", rate, 2);
            j.field("completed", completed);
            j.field("alerted", cell.stats.failedHandshakes());
            j.field("timed_out", cell.stats.timedOutSessions());
            j.field("evicted", cell.stats.evictedSessions());
            j.field("faults_injected", cell.stats.faultsInjected());
            j.field("park_events", cell.stats.parkEvents());
            j.field("pool_rejected", cell.rejected);
            j.field("pool_shed", cell.shed);
            j.field("completed_fraction", fraction, 3);
            j.field("goodput_per_sec", cell.stats.goodputPerSec(), 1);
            j.field("elapsed_sec", cell.stats.elapsedSeconds);
            // Completed-handshake latency distribution for the cell
            // (µs, from the per-cell registry): the degradation story
            // in latency terms — the tail stretches as faults force
            // retries within the surviving sessions.
            const obs::HistogramSnapshot hs =
                cell.stats.metrics.histogram("serve.handshake_cycles");
            j.field("hs_count", hs.count);
            j.field("hs_p50_us", cyclesToUs(hs.percentile(50)), 1);
            j.field("hs_p99_us", cyclesToUs(hs.percentile(99)), 1);
            // Alert traffic by code, from the per-cell registry: which
            // alerts the fault mix actually provokes.
            uint64_t alerts_sent = 0;
            for (const auto &[name, value] :
                 cell.stats.metrics.counters)
                if (name.rfind("alert.sent.", 0) == 0)
                    alerts_sent += value;
            j.field("alerts_sent", alerts_sent);
            j.field("accounted_ok", cell.accountedOk());
            j.endObject();
        }
        // Reported per mode; informational (strict monotonicity in the
        // completed fraction holds in expectation, not per seed).
        j.beginObject();
        j.field("pool_mode", poolModeName(mode));
        j.field("monotone_goodput", monotone);
        j.endObject();
    }
    j.endArray();

    j.field("all_accounted", all_accounted);
    j.field("clean_baseline_ok", clean_baseline_ok);
    j.endObject();

    if (!all_accounted) {
        std::fprintf(stderr,
                     "FAIL: a cell lost sessions (completed + alerted "
                     "+ timed_out != configured total)\n");
        return 1;
    }
    if (!clean_baseline_ok) {
        std::fprintf(stderr,
                     "FAIL: zero-fault baseline did not complete every "
                     "session\n");
        return 1;
    }
    return 0;
}

/**
 * @file
 * Minimal gem5-style status/error reporting: panic, fatal, warn, inform.
 *
 * panic() is for internal invariant violations (library bugs); fatal()
 * is for unrecoverable user/configuration errors. Both terminate.
 *
 * warn()/inform() route through a pluggable sink. The default sink
 * writes to stderr and honours setQuiet(); a custom sink installed via
 * setLogSink() receives EVERY message regardless of the quiet flag —
 * quiet only gates the default stderr output, so a trace capture sink
 * still sees warnings a quieted bench would otherwise discard.
 */

#ifndef SSLA_UTIL_LOGGING_HH
#define SSLA_UTIL_LOGGING_HH

#include <functional>
#include <string>

namespace ssla
{

/** Abort with a message; something that should never happen happened. */
[[noreturn]] void panic(const std::string &msg);

/** Exit with an error message; the caller misused the library. */
[[noreturn]] void fatal(const std::string &msg);

/** Emit a non-fatal warning through the log sink. */
void warn(const std::string &msg);

/** Emit an informational message through the log sink. */
void inform(const std::string &msg);

/** Globally silence the DEFAULT stderr sink (custom sinks still see
 *  everything; benchmarks want clean output). */
void setQuiet(bool quiet);

/** Severity passed to a custom log sink. */
enum class LogLevel
{
    Warn,
    Inform,
};

/**
 * A pluggable destination for warn()/inform(). Must be callable from
 * any thread; the logging layer serialises invocations.
 */
using LogSink = std::function<void(LogLevel, const std::string &)>;

/**
 * Install @p sink as the destination for warn()/inform(); passing a
 * null sink restores the default stderr behaviour. Returns the
 * previously installed sink (null if the default was active) so
 * callers can restore it.
 */
LogSink setLogSink(LogSink sink);

} // namespace ssla

#endif // SSLA_UTIL_LOGGING_HH

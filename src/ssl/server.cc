#include "ssl/server.hh"

#include <iterator>

#include <algorithm>

#include "perf/probe.hh"
#include "ssl/kx.hh"
#include "util/bytes.hh"

namespace ssla::ssl
{

SslServer::SslServer(ServerConfig config, BioEndpoint bio)
    : SslEndpoint(bio, config.randomPool, config.provider),
      config_(std::move(config))
{
    perf::FuncProbe probe("step0_init");
    if (!config_.privateKey)
        throw std::invalid_argument("SslServer: private key required");
    if (config_.suites.empty())
        throw std::invalid_argument("SslServer: no cipher suites");
    // The handshake transcript hash was initialized by the base class
    // (init_finished_mac); reserve the randoms here.
    clientRandom_.reserve(32);
    serverRandom_.reserve(32);
}

SslServer::~SslServer()
{
    if (kx_)
        kx_->cancelJob();
}

void
SslServer::onFatal()
{
    if (kx_) {
        if (kx_->jobValid())
            traceEvent(obs::TraceEventKind::CryptoCancel,
                       kx_->jobLabel());
        kx_->cancelJob();
    }
    if (config_.sessionCache && !session_.id.empty())
        config_.sessionCache->remove(session_.id);
}

namespace
{

const char *
serverStateName(int state)
{
    static const char *const names[] = {
        "GetClientHello",
        "SendServerHello",
        "SendServerCert",
        "SendServerKeyExchange",
        "AwaitKxSign",
        "SendCertificateRequest",
        "SendServerDone",
        "GetClientCertificate",
        "GetClientKeyExchange",
        "AwaitPreMaster",
        "GetCertificateVerify",
        "GetFinished",
        "SendCipherSpec",
        "SendFinished",
        "Flush",
        "ResumeSendCcsFinished",
        "ResumeGetFinished",
        "Done",
    };
    if (state < 0 || state >= static_cast<int>(std::size(names)))
        return "Unknown";
    return names[state];
}

} // anonymous namespace

bool
SslServer::step()
{
    const State before = state_;
    bool progressed = dispatch();
    if (state_ != before)
        traceEvent(obs::TraceEventKind::StateEnter,
                   serverStateName(static_cast<int>(state_)),
                   static_cast<uint16_t>(state_));
    return progressed;
}

bool
SslServer::dispatch()
{
    switch (state_) {
      case State::GetClientHello:
        return stepGetClientHello();
      case State::SendServerHello:
        return stepSendServerHello();
      case State::SendServerCert:
        return stepSendServerCert();
      case State::SendServerKeyExchange:
        return stepSendServerKeyExchange();
      case State::AwaitKxSign:
        return stepAwaitKxSign();
      case State::SendCertificateRequest:
        return stepSendCertificateRequest();
      case State::SendServerDone:
        return stepSendServerDone();
      case State::GetClientCertificate:
        return stepGetClientCertificate();
      case State::GetClientKeyExchange:
        return stepGetClientKeyExchange();
      case State::AwaitPreMaster:
        return stepAwaitPreMaster();
      case State::GetCertificateVerify:
        return stepGetCertificateVerify();
      case State::GetFinished:
        return stepGetFinished();
      case State::SendCipherSpec:
        return stepSendCipherSpec();
      case State::SendFinished:
        return stepSendFinished();
      case State::Flush:
        return stepFlush();
      case State::ResumeSendCcsFinished:
        return stepResumeSendCcsFinished();
      case State::ResumeGetFinished:
        return stepResumeGetFinished();
      case State::Done:
        return false;
    }
    return false;
}

bool
SslServer::stepGetClientHello()
{
    perf::FuncProbe probe("step1_get_client_hello");
    auto msg = nextHandshakeMessage();
    if (!msg)
        return false;
    if (msg->type != HandshakeType::ClientHello)
        fail(AlertDescription::UnexpectedMessage,
             "expected ClientHello");
    ClientHelloMsg hello = ClientHelloMsg::parse(msg->body);

    if (hello.version < ssl3Version)
        fail(AlertDescription::HandshakeFailure,
             "client version too old");
    clientOfferedVersion_ = hello.version;
    version_ = std::min(hello.version, config_.maxVersion);
    if (version_ > tls1Version)
        version_ = tls1Version;
    record_.setVersion(version_);
    clientRandom_ = hello.random;

    // Choose the first suite from our preference the client offers.
    suite_ = nullptr;
    for (CipherSuiteId pref : config_.suites) {
        for (uint16_t offered : hello.cipherSuites) {
            if (offered == static_cast<uint16_t>(pref)) {
                suite_ = &cipherSuite(pref);
                break;
            }
        }
        if (suite_)
            break;
    }
    if (!suite_)
        fail(AlertDescription::HandshakeFailure,
             "no common cipher suite");

    // Compression: only null is supported (as the paper's setup).
    bool null_compression = false;
    for (uint8_t c : hello.compressionMethods)
        null_compression |= (c == 0);
    if (!null_compression)
        fail(AlertDescription::HandshakeFailure,
             "no common compression method");

    // Resumption lookup.
    resuming_ = false;
    if (config_.sessionCache && !hello.sessionId.empty()) {
        if (auto cached = config_.sessionCache->find(hello.sessionId)) {
            if (cached->suiteId == static_cast<uint16_t>(suite_->id) &&
                cached->version == version_) {
                session_ = *cached;
                master_ = cached->masterSecret;
                resuming_ = true;
            }
        }
    }
    if (!resuming_) {
        // Generate a fresh session id. It must differ from the one the
        // client offered, or the client would believe the session was
        // resumed while we run the full handshake.
        session_ = Session();
        session_.id.resize(32);
        do {
            pool().generate(session_.id.data(), session_.id.size());
        } while (session_.id == hello.sessionId);
        session_.suiteId = static_cast<uint16_t>(suite_->id);
        session_.version = version_;
    }

    // The ClientHello fixed the suite and the resumption decision, so
    // the key-exchange method is now known — instantiate it.
    kx_ = makeServerKx(*suite_, resuming_);

    state_ = State::SendServerHello;
    return true;
}

bool
SslServer::stepSendServerHello()
{
    perf::FuncProbe probe("step2_send_server_hello");
    serverRandom_.resize(32);
    pool().generate(serverRandom_.data(), serverRandom_.size());

    ServerHelloMsg hello;
    hello.version = version_;
    hello.random = serverRandom_;
    hello.sessionId = session_.id;
    hello.cipherSuite = static_cast<uint16_t>(suite_->id);
    sendHandshake(HandshakeType::ServerHello, hello.encode());

    state_ = resuming_ ? State::ResumeSendCcsFinished
                       : State::SendServerCert;
    return true;
}

bool
SslServer::stepSendServerCert()
{
    perf::FuncProbe probe("step3_send_server_cert");
    CertificateMsg msg;
    msg.chain.push_back(config_.certificate.encoded());
    for (const auto &intermediate : config_.intermediates)
        msg.chain.push_back(intermediate.encoded());
    sendHandshake(HandshakeType::Certificate, msg.encode());
    // For the RSA suites the certificate carries the key exchange, so
    // ServerKeyExchange and CertificateRequest are skipped — exactly
    // the "skip server_kx / skip cert_req" rows of Table 2. The DHE
    // suites take the extra step.
    state_ = kx_->sendsServerKeyExchange()
                 ? State::SendServerKeyExchange
                 : (config_.requestClientCertificate
                        ? State::SendCertificateRequest
                        : State::SendServerDone);
    return true;
}

bool
SslServer::stepSendServerKeyExchange()
{
    perf::FuncProbe probe("step3b_send_server_kx");
    // Generate the ephemeral parameters and submit the RSA signature
    // through the provider. As with the pre-master decrypt, a
    // synchronous provider resolves before returning and AwaitKxSign
    // falls straight through; a pool-backed provider parks this
    // connection while a crypto thread signs.
    KxContext ctx{provider(), pool(), clientRandom_, serverRandom_};
    kx_->startServerKeyExchange(ctx, *config_.privateKey);
    traceEvent(obs::TraceEventKind::CryptoSubmit, kx_->jobLabel());
    state_ = State::AwaitKxSign;
    return true;
}

bool
SslServer::stepAwaitKxSign()
{
    // Still attributed to the paper's step 3b: the poll and the
    // message send are part of send_server_kx whichever thread signs.
    perf::FuncProbe probe("step3b_send_server_kx");
    if (kx_->jobPending())
        return false; // parked; cryptoWait() reports why
    Bytes body;
    try {
        body = kx_->finishServerKeyExchange();
    } catch (const crypto::ProviderOverloadError &) {
        // A saturated crypto pool rejected the sign: our overload,
        // not the peer's fault — internal_error.
        fail(AlertDescription::InternalError,
             "crypto engine saturated, handshake rejected");
    } catch (const crypto::ProviderFailureError &) {
        fail(AlertDescription::InternalError,
             "crypto engine failed, handshake aborted");
    } catch (const std::exception &) {
        fail(AlertDescription::InternalError,
             "ServerKeyExchange signing failed");
    }
    traceEvent(obs::TraceEventKind::CryptoComplete, kx_->jobLabel());
    sendHandshake(HandshakeType::ServerKeyExchange, body);
    state_ = config_.requestClientCertificate
                 ? State::SendCertificateRequest
                 : State::SendServerDone;
    return true;
}

bool
SslServer::stepSendCertificateRequest()
{
    perf::FuncProbe probe("step3c_send_cert_request");
    CertificateRequestMsg msg;
    sendHandshake(HandshakeType::CertificateRequest, msg.encode());
    state_ = State::SendServerDone;
    return true;
}

bool
SslServer::stepSendServerDone()
{
    perf::FuncProbe probe("step4_send_server_done");
    sendHandshake(HandshakeType::ServerHelloDone, Bytes());
    record_.flush();
    state_ = config_.requestClientCertificate
                 ? State::GetClientCertificate
                 : State::GetClientKeyExchange;
    return true;
}

bool
SslServer::stepGetClientCertificate()
{
    perf::FuncProbe probe("step5a_get_client_cert");
    auto msg = nextHandshakeMessage();
    if (!msg)
        return false;
    if (msg->type != HandshakeType::Certificate)
        fail(AlertDescription::UnexpectedMessage,
             "expected client Certificate");
    CertificateMsg cm = CertificateMsg::parse(msg->body);

    clientCertPresent_ = !cm.chain.empty();
    if (!clientCertPresent_) {
        if (config_.requireClientCertificate)
            fail(AlertDescription::NoCertificate,
                 "client certificate required");
        state_ = State::GetClientKeyExchange;
        return true;
    }

    try {
        clientCert_ = pki::Certificate::parse(cm.chain.front());
    } catch (const std::exception &) {
        fail(AlertDescription::BadCertificate,
             "unparseable client certificate");
    }
    if (config_.clientTrustedIssuer) {
        if (!clientCert_.verify(*config_.clientTrustedIssuer))
            fail(AlertDescription::BadCertificate,
                 "client certificate signature check failed");
    } else if (!clientCert_.isSelfSigned()) {
        fail(AlertDescription::BadCertificate,
             "client certificate has no trust anchor");
    }
    state_ = State::GetClientKeyExchange;
    return true;
}

bool
SslServer::stepGetClientKeyExchange()
{
    perf::FuncProbe probe("step5_get_client_kx");
    auto msg = nextHandshakeMessage();
    if (!msg)
        return false;
    if (msg->type != HandshakeType::ClientKeyExchange)
        fail(AlertDescription::UnexpectedMessage,
             "expected ClientKeyExchange");
    // Hand the body to the key-exchange object. DHE computes the
    // shared secret inline (dh_compute_key) and reports Done; RSA
    // submits the pre-master decrypt (rsa_private_decryption) through
    // the provider and reports Parked. A synchronous provider resolves
    // before returning, so the AwaitPreMaster state falls straight
    // through in the same advance() loop; a pool-backed provider
    // leaves this connection parked — the ~10M-cycle decrypt runs on
    // a crypto thread while the worker multiplexes its other sessions
    // (Section 6.2's "other useful work", applied across connections).
    KxContext ctx{provider(), pool(), clientRandom_, serverRandom_};
    if (kx_->processClientKeyExchange(ctx, *config_.privateKey,
                                      msg->body) == KxStatus::Parked) {
        traceEvent(obs::TraceEventKind::CryptoSubmit, kx_->jobLabel());
        state_ = State::AwaitPreMaster;
        return true;
    }
    return finishKeyExchange(kx_->finishClientKeyExchange());
}

bool
SslServer::stepAwaitPreMaster()
{
    // Still attributed to the paper's step 5: the poll and the master
    // derivation are part of get_client_kx whichever thread decrypts.
    perf::FuncProbe probe("step5_get_client_kx");
    if (kx_->jobPending())
        return false; // parked; cryptoWait() reports why
    Bytes premaster;
    try {
        premaster = kx_->finishClientKeyExchange();
    } catch (const crypto::ProviderOverloadError &) {
        // A saturated crypto pool rejected the decrypt (including a
        // deadline shed: the job waited past its budget): our
        // overload, not the peer's fault — internal_error, never
        // handshake_failure (which would blame the client).
        fail(AlertDescription::InternalError,
             "crypto engine saturated, handshake rejected");
    } catch (const crypto::ProviderFailureError &) {
        // The supervisor declared the executing crypto thread dead and
        // failed the job: terminate cleanly instead of hanging parked.
        fail(AlertDescription::InternalError,
             "crypto engine failed, handshake aborted");
    } catch (const std::exception &) {
        fail(AlertDescription::HandshakeFailure,
             "pre-master decryption failed");
    }
    traceEvent(obs::TraceEventKind::CryptoComplete, kx_->jobLabel());
    return finishKeyExchange(std::move(premaster));
}

bool
SslServer::finishKeyExchange(Bytes premaster)
{
    // The embedded version must echo what the client OFFERED
    // (the classic version-rollback defence). RSA path only.
    if (kx_->premasterCarriesVersion()) {
        if (premaster.size() != 48 ||
            premaster[0] !=
                static_cast<uint8_t>(clientOfferedVersion_ >> 8) ||
            premaster[1] !=
                static_cast<uint8_t>(clientOfferedVersion_)) {
            fail(AlertDescription::HandshakeFailure,
                 "malformed pre-master secret");
        }
    }

    // Derive the master secret (gen_master_secret).
    master_ = deriveMasterSecret(version_, premaster, clientRandom_,
                                 serverRandom_);
    secureWipe(premaster);
    session_.masterSecret = master_;

    state_ = clientCertPresent_ ? State::GetCertificateVerify
                                : State::GetFinished;
    return true;
}

CryptoWait
SslServer::cryptoWait() const
{
    if (!kx_ || !kx_->jobPending())
        return CryptoWait::None;
    if (state_ == State::AwaitPreMaster)
        return CryptoWait::PreMasterDecrypt;
    if (state_ == State::AwaitKxSign)
        return CryptoWait::ServerKxSign;
    return CryptoWait::None;
}

bool
SslServer::stepGetCertificateVerify()
{
    perf::FuncProbe probe("step5b_get_cert_verify");
    // The signed digest covers the transcript up to (excluding) the
    // CertificateVerify itself — snapshot before reading the message.
    Bytes expected = hsHash_.certVerifyHash(version_, master_);
    auto msg = nextHandshakeMessage();
    if (!msg)
        return false;
    if (msg->type != HandshakeType::CertificateVerify)
        fail(AlertDescription::UnexpectedMessage,
             "expected CertificateVerify");
    auto cv = CertificateVerifyMsg::parse(msg->body);
    if (!crypto::rsaVerify(clientCert_.info().publicKey, expected,
                           cv.signature)) {
        fail(AlertDescription::HandshakeFailure,
             "CertificateVerify signature check failed");
    }
    state_ = State::GetFinished;
    return true;
}

void
SslServer::onChangeCipherSpec()
{
    // Legal while waiting for the client finished (step 6a) on both
    // the full and the abbreviated path.
    if (state_ != State::GetFinished && state_ != State::ResumeGetFinished)
        fail(AlertDescription::UnexpectedMessage, "unexpected CCS");

    // "At this moment, the server calculates the key blocks" — and the
    // expected client finished hash, before reading the message.
    const KeyBlock &kb = keyBlock();
    record_.enableRecvCipher(*suite_, kb.clientMacSecret, kb.clientKey,
                             kb.clientIv);
    expectedPeerFinished_ =
        hsHash_.finishedHash(version_, master_, FinishedSender::Client);
}

bool
SslServer::stepGetFinished()
{
    perf::FuncProbe probe("step6_get_finished");
    if (!record_.recvCipherActive()) {
        // Waiting for the client's ChangeCipherSpec (step 6a).
        if (!takeCcsReceived())
            return false;
    } else {
        // A buffered CCS flag may still be pending from the pump.
        takeCcsReceived();
    }

    // Step 6b: the client finished message, the first encrypted record
    // (pri_decryption + mac happen inside the record layer).
    auto msg = nextHandshakeMessage();
    if (!msg)
        return false;
    if (msg->type != HandshakeType::Finished)
        fail(AlertDescription::UnexpectedMessage, "expected Finished");
    auto fin = FinishedMsg::parse(msg->body);
    if (!constantTimeEquals(fin.verifyData, expectedPeerFinished_))
        fail(AlertDescription::HandshakeFailure,
             "client finished hash mismatch");

    state_ = State::SendCipherSpec;
    return true;
}

bool
SslServer::stepSendCipherSpec()
{
    perf::FuncProbe probe("step7_send_cipher_spec");
    sendChangeCipherSpec();
    const KeyBlock &kb = keyBlock();
    record_.enableSendCipher(*suite_, kb.serverMacSecret, kb.serverKey,
                             kb.serverIv);
    state_ = State::SendFinished;
    return true;
}

bool
SslServer::stepSendFinished()
{
    perf::FuncProbe probe("step8_send_finished");
    FinishedMsg fin;
    fin.verifyData =
        hsHash_.finishedHash(version_, master_, FinishedSender::Server);
    sendHandshake(HandshakeType::Finished, fin.encode());
    state_ = State::Flush;
    return true;
}

bool
SslServer::stepFlush()
{
    perf::FuncProbe probe("step9_flush");
    record_.flush();
    if (config_.sessionCache)
        config_.sessionCache->store(session_);
    state_ = State::Done;
    done_ = true;
    return true;
}

bool
SslServer::stepResumeSendCcsFinished()
{
    perf::FuncProbe probe("step7_send_cipher_spec");
    // Abbreviated handshake: the server switches ciphers and finishes
    // first, straight after its hello.
    sendChangeCipherSpec();
    const KeyBlock &kb = keyBlock();
    record_.enableSendCipher(*suite_, kb.serverMacSecret, kb.serverKey,
                             kb.serverIv);
    FinishedMsg fin;
    fin.verifyData =
        hsHash_.finishedHash(version_, master_, FinishedSender::Server);
    sendHandshake(HandshakeType::Finished, fin.encode());
    record_.flush();
    state_ = State::ResumeGetFinished;
    return true;
}

bool
SslServer::stepResumeGetFinished()
{
    perf::FuncProbe probe("step6_get_finished");
    if (!record_.recvCipherActive()) {
        if (!takeCcsReceived())
            return false;
    } else {
        takeCcsReceived();
    }
    auto msg = nextHandshakeMessage();
    if (!msg)
        return false;
    if (msg->type != HandshakeType::Finished)
        fail(AlertDescription::UnexpectedMessage, "expected Finished");
    auto fin = FinishedMsg::parse(msg->body);
    if (!constantTimeEquals(fin.verifyData, expectedPeerFinished_))
        fail(AlertDescription::HandshakeFailure,
             "client finished hash mismatch");
    resumed_ = true;
    if (config_.sessionCache)
        config_.sessionCache->store(session_);
    state_ = State::Done;
    done_ = true;
    return true;
}

} // namespace ssla::ssl

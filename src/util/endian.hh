/**
 * @file
 * Endian-aware loads/stores and rotate helpers.
 *
 * All crypto kernels are specified in terms of fixed-endian word views of
 * byte streams (MD5 is little-endian, SHA-1/AES/DES big-endian), so these
 * helpers are the lowest layer of every algorithm in src/crypto.
 */

#ifndef SSLA_UTIL_ENDIAN_HH
#define SSLA_UTIL_ENDIAN_HH

#include <cstdint>

namespace ssla
{

/** Load a 32-bit little-endian value from @p p. */
inline uint32_t
load32le(const uint8_t *p)
{
    return static_cast<uint32_t>(p[0]) |
           (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
}

/** Load a 32-bit big-endian value from @p p. */
inline uint32_t
load32be(const uint8_t *p)
{
    return (static_cast<uint32_t>(p[0]) << 24) |
           (static_cast<uint32_t>(p[1]) << 16) |
           (static_cast<uint32_t>(p[2]) << 8) |
           static_cast<uint32_t>(p[3]);
}

/** Load a 64-bit big-endian value from @p p. */
inline uint64_t
load64be(const uint8_t *p)
{
    return (static_cast<uint64_t>(load32be(p)) << 32) | load32be(p + 4);
}

/** Store @p v as 32-bit little-endian at @p p. */
inline void
store32le(uint8_t *p, uint32_t v)
{
    p[0] = static_cast<uint8_t>(v);
    p[1] = static_cast<uint8_t>(v >> 8);
    p[2] = static_cast<uint8_t>(v >> 16);
    p[3] = static_cast<uint8_t>(v >> 24);
}

/** Store @p v as 32-bit big-endian at @p p. */
inline void
store32be(uint8_t *p, uint32_t v)
{
    p[0] = static_cast<uint8_t>(v >> 24);
    p[1] = static_cast<uint8_t>(v >> 16);
    p[2] = static_cast<uint8_t>(v >> 8);
    p[3] = static_cast<uint8_t>(v);
}

/** Store @p v as 64-bit big-endian at @p p. */
inline void
store64be(uint8_t *p, uint64_t v)
{
    store32be(p, static_cast<uint32_t>(v >> 32));
    store32be(p + 4, static_cast<uint32_t>(v));
}

/** Store @p v as 64-bit little-endian at @p p. */
inline void
store64le(uint8_t *p, uint64_t v)
{
    store32le(p, static_cast<uint32_t>(v));
    store32le(p + 4, static_cast<uint32_t>(v >> 32));
}

/** Rotate the 32-bit value @p v left by @p n bits (0 < n < 32). */
inline uint32_t
rotl32(uint32_t v, unsigned n)
{
    return (v << n) | (v >> (32 - n));
}

/** Rotate the 32-bit value @p v right by @p n bits (0 < n < 32). */
inline uint32_t
rotr32(uint32_t v, unsigned n)
{
    return (v >> n) | (v << (32 - n));
}

/** Rotate the 28-bit value @p v left by @p n bits (DES key schedule). */
inline uint32_t
rotl28(uint32_t v, unsigned n)
{
    return ((v << n) | (v >> (28 - n))) & 0x0fffffffu;
}

} // namespace ssla

#endif // SSLA_UTIL_ENDIAN_HH

file(REMOVE_RECURSE
  "CMakeFiles/https_workload.dir/https_workload.cpp.o"
  "CMakeFiles/https_workload.dir/https_workload.cpp.o.d"
  "https_workload"
  "https_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/https_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

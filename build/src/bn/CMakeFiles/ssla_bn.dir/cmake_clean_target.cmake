file(REMOVE_RECURSE
  "libssla_bn.a"
)

/**
 * @file
 * Layered key-exchange cost matrix over the pluggable KX seam
 * (ssl/kx.hh): for each key-exchange method — RSA key transport,
 * DHE_RSA, and session resumption — one server-side handshake plus a
 * small bulk exchange is profiled with the fine-grained perf-probe
 * tree, and the cycles are attributed to layers:
 *
 *   record           mac + pri_encryption + pri_decryption (the
 *                    symmetric record path)
 *   kx_crypto        rsa_private_decryption + rsa_private_encryption
 *                    (the SKX signature) + dh_generate_key +
 *                    dh_compute_key
 *   handshake_other  everything else the server spends in SSL code
 *   bignum_exclusive exclusive cycles inside the BN_* / bn_* kernels —
 *                    a second attribution axis showing how much of the
 *                    kx crypto bottoms out in bignum arithmetic
 *
 * This is the paper's Table 2/3 anatomy generalized across suites: the
 * matrix makes the inversion visible (RSA's cost is all kx_crypto, a
 * resumed handshake's is none). Each cell also proves the refactor
 * honest: a full handshake through the async CryptoPool path must be
 * wire-identical, byte for byte in both directions, to the synchronous
 * path under the same deterministic randomness.
 *
 * Results go to BENCH_kx_matrix.json (schema in EXPERIMENTS.md) and a
 * human-readable table on stdout. The exit code gates correctness:
 * every cell wire-identical, DHE actually exponentiates, resumption
 * does no key-exchange crypto.
 *
 *   ./bench_kx_matrix [--smoke]
 */

#include <cstdio>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <thread>

#include "common.hh"
#include "obs/metrics.hh"
#include "perf/probe.hh"
#include "perf/report.hh"
#include "serve/cryptopool.hh"
#include "ssl/client.hh"
#include "ssl/server.hh"

using namespace ssla;
using namespace ssla::bench;
using perf::TablePrinter;

namespace
{

/** One matrix cell: a key-exchange method and how to drive it. */
struct Cell
{
    const char *kx;             ///< "rsa" / "dhe_rsa" / "resume"
    ssl::CipherSuiteId suite;
    bool resumed;
};

const Cell cells[] = {
    {"rsa", ssl::CipherSuiteId::RSA_3DES_EDE_CBC_SHA, false},
    {"dhe_rsa", ssl::CipherSuiteId::DHE_RSA_3DES_EDE_CBC_SHA, false},
    {"resume", ssl::CipherSuiteId::RSA_3DES_EDE_CBC_SHA, true},
};

/** The server certificate/key fixture shared by all cells. */
struct Identity
{
    const crypto::RsaKeyPair *key;
    pki::Certificate cert;
};

Identity
makeIdentity()
{
    Identity id;
    id.key = &benchKey(1024);
    pki::CertificateInfo info;
    info.serial = 1;
    info.issuer = "Bench CA";
    info.subject = "bench.server";
    info.notBefore = 0;
    info.notAfter = ~uint64_t(0);
    info.publicKey = id.key->pub;
    id.cert = pki::Certificate::issue(info, *id.key->priv);
    return id;
}

// ---------------------------------------------------------------------
// Wire-identity capture

/** Relay bytes between two BioPairs, recording both directions. */
struct RecordingRelay
{
    ssl::BioPair clientSide;
    ssl::BioPair serverSide;
    Bytes clientToServer;
    Bytes serverToClient;

    bool
    pump()
    {
        bool moved = false;
        ssl::BioEndpoint fromClient = clientSide.serverEnd();
        ssl::BioEndpoint fromServer = serverSide.clientEnd();
        Bytes buf(4096);
        while (size_t n = fromClient.read(buf.data(), buf.size())) {
            clientToServer.insert(clientToServer.end(), buf.begin(),
                                  buf.begin() + n);
            serverSide.clientEnd().write(buf.data(), n);
            moved = true;
        }
        while (size_t n = fromServer.read(buf.data(), buf.size())) {
            serverToClient.insert(serverToClient.end(), buf.begin(),
                                  buf.begin() + n);
            clientSide.serverEnd().write(buf.data(), n);
            moved = true;
        }
        return moved;
    }
};

struct Transcript
{
    Bytes clientToServer;
    Bytes serverToClient;

    bool
    operator==(const Transcript &o) const
    {
        return clientToServer == o.clientToServer &&
               serverToClient == o.serverToClient;
    }
};

/**
 * Run the cell's handshake sequence (full, or full-then-resumed) with
 * deterministic randomness through @p provider and log every wire
 * byte. Null provider runs the synchronous in-handshake crypto; a
 * PooledProvider exercises the parked/async paths. The random draw
 * sequence is identical either way, so the transcripts must match.
 */
Transcript
captureTranscript(const Cell &cell, const Identity &id,
                  crypto::Provider *provider)
{
    ssl::SessionCache cache(16);
    crypto::RandomPool clientPool(benchPayload(16, 0xc11e));
    crypto::RandomPool serverPool(benchPayload(16, 0x5e12));

    Transcript t;
    std::optional<ssl::Session> resume;
    const int handshakes = cell.resumed ? 2 : 1;
    for (int h = 0; h < handshakes; ++h) {
        RecordingRelay relay;

        ssl::ServerConfig scfg;
        scfg.certificate = id.cert;
        scfg.privateKey = id.key->priv;
        scfg.suites = {cell.suite};
        scfg.sessionCache = &cache;
        scfg.randomPool = &serverPool;
        scfg.provider = provider;
        ssl::SslServer server(std::move(scfg),
                              relay.serverSide.serverEnd());

        ssl::ClientConfig ccfg;
        ccfg.suites = {cell.suite};
        ccfg.randomPool = &clientPool;
        if (h == 1)
            ccfg.resumeSession = resume;
        ssl::SslClient client(std::move(ccfg),
                              relay.clientSide.clientEnd());

        bool sent = false;
        for (;;) {
            bool progress = client.advance();
            progress |= server.advance();
            progress |= relay.pump();
            if (client.handshakeDone() && server.handshakeDone() &&
                !sent) {
                client.writeApplicationData(
                    benchPayload(256, 0xda7a));
                sent = true;
                progress = true;
            }
            if (sent && server.readApplicationData())
                break;
            if (!progress) {
                if (server.waitingOnCrypto()) {
                    std::this_thread::yield();
                    continue;
                }
                throw std::runtime_error("kx matrix: relay deadlock");
            }
        }
        if (h == 1 && !server.resumed())
            throw std::runtime_error(
                "kx matrix: resume cell did not resume");

        resume = client.session();
        append(t.clientToServer, relay.clientToServer);
        append(t.serverToClient, relay.serverToClient);
    }
    return t;
}

// ---------------------------------------------------------------------
// Layered breakdown

struct Breakdown
{
    uint64_t runs = 0;
    double totalKc = 0;    ///< all server-side cycles
    double kxKc = 0;       ///< key-exchange asymmetric crypto
    double recordKc = 0;   ///< symmetric record path (mac + cipher)
    double otherKc = 0;    ///< handshake logic outside the above
    double bignumKc = 0;   ///< exclusive cycles in BN_*/bn_* kernels
    double dhKc = 0;       ///< DH share of kxKc (cell sanity gate)
    double hsP50Us = 0;    ///< handshake latency percentiles from the
    double hsP99Us = 0;    ///< obs histogram, microseconds
};

/**
 * Profile @p runs handshakes (plus a discarded warm-up that also
 * seeds the session cache for the resumed cell) with a fine-grained
 * probe context scoped to the server side only, then attribute the
 * cycles to layers.
 */
Breakdown
profile(const Cell &cell, const Identity &id, int runs)
{
    auto provider = crypto::createProvider("instrumented");
    ssl::SessionCache cache(16);
    crypto::RandomPool pool(
        benchPayload(16, 0xbead ^ static_cast<uint64_t>(cell.suite) ^
                             (cell.resumed ? 0x1000000 : 0)));

    obs::MetricsRegistry reg;
    obs::Histogram hist = reg.histogram("kx.handshake_cycles");

    perf::PerfContext ctx(/*fine_grained=*/true);
    uint64_t server_cycles = 0;
    std::optional<ssl::Session> resume;

    const Bytes upload = benchPayload(2048, 0x0b07);
    const Bytes page = benchPayload(8192, 0x0b08);

    for (int i = 0; i < runs + 1; ++i) {
        if (i == 1) { // discard the warm-up run
            ctx.clear();
            server_cycles = 0;
        }
        ssl::BioPair wires;

        ssl::ServerConfig scfg;
        scfg.certificate = id.cert;
        scfg.privateKey = id.key->priv;
        scfg.suites = {cell.suite};
        scfg.sessionCache = &cache;
        scfg.randomPool = &pool;
        scfg.provider = provider.get();

        ssl::ClientConfig ccfg;
        ccfg.suites = {cell.suite};
        ccfg.randomPool = &pool;
        ccfg.provider = provider.get();
        if (cell.resumed && resume)
            ccfg.resumeSession = resume;

        uint64_t hs_cycles = 0;
        std::unique_ptr<ssl::SslServer> server;
        {
            perf::ContextScope scope(&ctx);
            uint64_t t0 = rdcycles();
            server = std::make_unique<ssl::SslServer>(
                std::move(scfg), wires.serverEnd());
            uint64_t dt = rdcycles() - t0;
            server_cycles += dt;
            hs_cycles += dt;
        }
        ssl::SslClient client(std::move(ccfg), wires.clientEnd());

        while (!client.handshakeDone() || !server->handshakeDone()) {
            bool progress = client.advance();
            {
                perf::ContextScope scope(&ctx);
                uint64_t t0 = rdcycles();
                progress |= server->advance();
                uint64_t dt = rdcycles() - t0;
                server_cycles += dt;
                hs_cycles += dt;
            }
            if (!progress)
                throw std::runtime_error("kx matrix: deadlock");
        }
        if (i > 0)
            hist.record(hs_cycles);
        if (cell.resumed && i > 0 && !server->resumed())
            throw std::runtime_error(
                "kx matrix: resume cell did not resume");

        // A small bulk exchange so the record layer does measurable
        // symmetric work on top of the Finished records.
        client.writeApplicationData(upload);
        {
            perf::ContextScope scope(&ctx);
            uint64_t t0 = rdcycles();
            if (!server->readApplicationData())
                throw std::runtime_error("kx matrix: upload lost");
            server->writeApplicationData(page);
            server_cycles += rdcycles() - t0;
        }
        if (!client.readApplicationData())
            throw std::runtime_error("kx matrix: page lost");

        resume = client.session();
    }

    Breakdown b;
    b.runs = static_cast<uint64_t>(runs);
    auto kc = [&](std::vector<std::string> names) {
        return static_cast<double>(ctx.cyclesFor(names)) / runs / 1e3;
    };
    b.totalKc = static_cast<double>(server_cycles) / runs / 1e3;
    b.kxKc = kc({"rsa_private_decryption", "rsa_private_encryption",
                 "dh_generate_key", "dh_compute_key"});
    b.dhKc = kc({"dh_generate_key", "dh_compute_key"});
    b.recordKc = kc({"mac", "pri_encryption", "pri_decryption"});
    b.otherKc = std::max(0.0, b.totalKc - b.kxKc - b.recordKc);

    uint64_t bn_exclusive = 0;
    for (const auto &[name, counter] : ctx.counters())
        if (name.rfind("BN_", 0) == 0 || name.rfind("bn_", 0) == 0)
            bn_exclusive += counter.exclusive;
    b.bignumKc = static_cast<double>(bn_exclusive) / runs / 1e3;

    obs::HistogramSnapshot hs =
        reg.snapshot().histogram("kx.handshake_cycles");
    b.hsP50Us = hs.percentile(50) / cycleHz() * 1e6;
    b.hsP99Us = hs.percentile(99) / cycleHz() * 1e6;
    return b;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        if (!std::strcmp(argv[i], "--smoke"))
            smoke = true;

    warmUpCpu();
    const int runs = smoke ? 6 : 24;
    Identity id = makeIdentity();

    struct CellResult
    {
        const Cell *cell;
        bool wireIdentical;
        Breakdown b;
    };
    std::vector<CellResult> results;

    for (const Cell &cell : cells) {
        // Wire identity: synchronous vs pool-offloaded crypto under
        // the same seeds. This covers the async decrypt (RSA cell)
        // and the async SKX sign (DHE cell).
        Transcript sync = captureTranscript(cell, id, nullptr);
        serve::CryptoPool cryptoPool(2);
        serve::PooledProvider pooled(cryptoPool);
        Transcript offload = captureTranscript(cell, id, &pooled);
        const bool identical = !sync.clientToServer.empty() &&
                               sync == offload;

        results.push_back({&cell, identical, profile(cell, id, runs)});
    }

    // Machine-readable matrix.
    std::FILE *out = std::fopen("BENCH_kx_matrix.json", "w");
    if (!out) {
        std::fprintf(stderr, "cannot open BENCH_kx_matrix.json\n");
        return 1;
    }
    {
        JsonWriter j(out);
        j.beginObject();
        j.field("bench", "kx_matrix").field("smoke", smoke);
        j.field("rsa_bits", uint64_t(1024));
        j.field("cycle_hz", cycleHz(), 0);
        j.beginArray("cells");
        for (const CellResult &r : results) {
            j.beginObject();
            j.field("kx", r.cell->kx);
            j.field("suite",
                    ssl::cipherSuite(r.cell->suite).name);
            j.field("resumed", r.cell->resumed);
            j.field("wire_identical", r.wireIdentical);
            j.field("runs", r.b.runs);
            j.beginObject("layers_kc");
            j.field("record", r.b.recordKc, 1);
            j.field("kx_crypto", r.b.kxKc, 1);
            j.field("handshake_other", r.b.otherKc, 1);
            j.field("total", r.b.totalKc, 1);
            j.field("bignum_exclusive", r.b.bignumKc, 1);
            j.endObject();
            j.field("hs_p50_us", r.b.hsP50Us, 1);
            j.field("hs_p99_us", r.b.hsP99Us, 1);
            j.endObject();
        }
        j.endArray();
        j.endObject();
    }
    std::fclose(out);

    // Human-readable table.
    TablePrinter table("Key-exchange cost matrix, server side "
                       "(kcycles per handshake + 10KB exchange, "
                       "RSA-1024 / Oakley group 2)");
    table.setHeader({"layer", "rsa", "dhe_rsa", "resume"});
    auto row = [&](const char *name, double Breakdown::*field) {
        std::vector<std::string> cols = {name};
        for (const CellResult &r : results)
            cols.push_back(perf::fmtF(r.b.*field, 1));
        table.addRow(cols);
    };
    row("record", &Breakdown::recordKc);
    row("kx_crypto", &Breakdown::kxKc);
    row("handshake_other", &Breakdown::otherKc);
    row("total", &Breakdown::totalKc);
    row("bignum (exclusive)", &Breakdown::bignumKc);
    table.print();

    bool ok = true;
    for (const CellResult &r : results) {
        if (!r.wireIdentical) {
            std::fprintf(stderr,
                         "FAIL: %s transcript differs between sync "
                         "and offloaded crypto\n",
                         r.cell->kx);
            ok = false;
        }
    }
    const Breakdown &rsa = results[0].b;
    const Breakdown &dhe = results[1].b;
    const Breakdown &res = results[2].b;
    if (dhe.dhKc <= 0) {
        std::fprintf(stderr, "FAIL: DHE cell ran no DH crypto\n");
        ok = false;
    }
    if (res.kxKc > rsa.kxKc * 0.01) {
        std::fprintf(stderr,
                     "FAIL: resumed cell spent %.1f kc in kx crypto "
                     "(expected ~0)\n",
                     res.kxKc);
        ok = false;
    }
    std::printf("\n%s: wire-identical transcripts across sync/async "
                "for all %zu cells; resumption skips the %.0f kc of "
                "kx crypto RSA pays (DHE pays %.0f kc).\n",
                ok ? "OK" : "FAILED", results.size(), rsa.kxKc,
                dhe.kxKc);
    return ok ? 0 : 1;
}

#include "obs/trace.hh"

namespace ssla::obs
{

const char *
traceEventKindName(TraceEventKind kind)
{
    switch (kind) {
    case TraceEventKind::ConnOpen: return "ConnOpen";
    case TraceEventKind::StateEnter: return "StateEnter";
    case TraceEventKind::FlightSend: return "FlightSend";
    case TraceEventKind::FlightRecv: return "FlightRecv";
    case TraceEventKind::CcsSend: return "CcsSend";
    case TraceEventKind::CcsRecv: return "CcsRecv";
    case TraceEventKind::CryptoSubmit: return "CryptoSubmit";
    case TraceEventKind::CryptoComplete: return "CryptoComplete";
    case TraceEventKind::CryptoCancel: return "CryptoCancel";
    case TraceEventKind::JobStart: return "JobStart";
    case TraceEventKind::JobEnd: return "JobEnd";
    case TraceEventKind::AlertSend: return "AlertSend";
    case TraceEventKind::AlertRecv: return "AlertRecv";
    case TraceEventKind::FaultInjected: return "FaultInjected";
    case TraceEventKind::DeadlineFired: return "DeadlineFired";
    case TraceEventKind::Park: return "Park";
    case TraceEventKind::Resume: return "Resume";
    case TraceEventKind::HandshakeDone: return "HandshakeDone";
    case TraceEventKind::Complete: return "Complete";
    case TraceEventKind::Teardown: return "Teardown";
    case TraceEventKind::LogMessage: return "LogMessage";
    case TraceEventKind::ThreadRestart: return "ThreadRestart";
    case TraceEventKind::BreakerTransition: return "BreakerTransition";
    }
    return "Unknown";
}

const char *
traceSideName(uint8_t side)
{
    switch (side) {
    case traceSideServer: return "server";
    case traceSideClient: return "client";
    case traceSideEngine: return "engine";
    case traceSideChannel: return "channel";
    }
    return "unknown";
}

SessionTrace::SessionTrace(uint64_t serial, uint32_t track,
                           size_t capacity)
    : serial_(serial), track_(track)
{
    if (capacity == 0)
        capacity = 1;
    ring_.resize(capacity);
}

TraceEvent &
SessionTrace::nextSlot()
{
    TraceEvent &slot = ring_[recorded_ % ring_.size()];
    ++recorded_;
    slot.cycles = rdcycles();
    slot.tick = tick_;
    slot.text.clear();
    return slot;
}

void
SessionTrace::record(TraceEventKind kind, uint8_t side,
                     const char *label, uint16_t code, uint64_t arg)
{
    TraceEvent &e = nextSlot();
    e.kind = kind;
    e.side = side;
    e.code = code;
    e.arg = arg;
    e.label = label;
}

void
SessionTrace::recordText(TraceEventKind kind, uint8_t side,
                         std::string text)
{
    TraceEvent &e = nextSlot();
    e.kind = kind;
    e.side = side;
    e.code = 0;
    e.arg = 0;
    e.label = nullptr;
    e.text = std::move(text);
}

std::vector<TraceEvent>
SessionTrace::events() const
{
    std::vector<TraceEvent> out;
    size_t n = size();
    out.reserve(n);
    size_t start = recorded_ < ring_.size()
                       ? 0
                       : static_cast<size_t>(recorded_ % ring_.size());
    for (size_t i = 0; i < n; ++i)
        out.push_back(ring_[(start + i) % ring_.size()]);
    return out;
}

} // namespace ssla::obs

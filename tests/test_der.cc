/**
 * @file
 * DER codec tests: encoding layout, long-form lengths, parser error
 * handling and ownership semantics.
 */

#include <gtest/gtest.h>

#include "pki/der.hh"
#include "util/bytes.hh"
#include "util/hex.hh"

namespace
{

using namespace ssla;
using namespace ssla::pki;
using bn::BigNum;

TEST(Der, ShortFormLayout)
{
    EXPECT_EQ(hexEncode(derInteger(uint64_t(7))), "020107");
    EXPECT_EQ(hexEncode(derOctetString(Bytes{0xaa, 0xbb})), "0402aabb");
    EXPECT_EQ(hexEncode(derUtf8("Hi")), "0c024869");
}

TEST(Der, IntegerHighBitGetsZeroPrefix)
{
    // 0x80 would read as negative without the leading zero octet.
    EXPECT_EQ(hexEncode(derInteger(uint64_t(0x80))), "02020080");
    EXPECT_EQ(hexEncode(derInteger(uint64_t(0x7f))), "02017f");
}

TEST(Der, IntegerZero)
{
    EXPECT_EQ(hexEncode(derInteger(uint64_t(0))), "020100");
    DerParser p(derInteger(uint64_t(0)));
    EXPECT_TRUE(p.readInteger().isZero());
}

TEST(Der, NegativeIntegerRejected)
{
    EXPECT_THROW(derInteger(BigNum::fromInt(-1)), std::invalid_argument);
}

TEST(Der, LongFormLength)
{
    Bytes big(300, 0x55);
    Bytes encoded = derOctetString(big);
    // 0x04, 0x82 (2 length bytes), 0x01 0x2c (300), content.
    EXPECT_EQ(encoded[0], 0x04);
    EXPECT_EQ(encoded[1], 0x82);
    EXPECT_EQ(encoded[2], 0x01);
    EXPECT_EQ(encoded[3], 0x2c);
    DerParser p(encoded);
    EXPECT_EQ(p.readOctetString(), big);
}

TEST(Der, SequenceRoundTrip)
{
    Bytes seq = derSequence({derInteger(uint64_t(1)),
                             derUtf8("two"),
                             derOctetString(Bytes{3})});
    DerParser p(seq);
    DerParser inner(p.readSequence());
    EXPECT_TRUE(p.atEnd());
    EXPECT_EQ(inner.readSmallInteger(), 1u);
    EXPECT_EQ(inner.readUtf8(), "two");
    EXPECT_EQ(inner.readOctetString(), (Bytes{3}));
    EXPECT_TRUE(inner.atEnd());
}

TEST(Der, BigIntegerRoundTrip)
{
    BigNum n = BigNum::fromHex("ffeeddccbbaa0099887766554433221100");
    DerParser p(derInteger(n));
    EXPECT_EQ(p.readInteger(), n);
}

TEST(Der, NestedSequences)
{
    Bytes inner = derSequence({derInteger(uint64_t(42))});
    Bytes outer = derSequence({inner, inner});
    DerParser p(outer);
    DerParser o(p.readSequence());
    DerParser a(o.readSequence());
    DerParser b(o.readSequence());
    EXPECT_EQ(a.readSmallInteger(), 42u);
    EXPECT_EQ(b.readSmallInteger(), 42u);
    EXPECT_TRUE(o.atEnd());
}

TEST(Der, PeekTagDoesNotConsume)
{
    Bytes enc = derUtf8("peek");
    DerParser p(enc);
    EXPECT_EQ(p.peekTag(), 0x0c);
    EXPECT_EQ(p.peekTag(), 0x0c);
    EXPECT_EQ(p.readUtf8(), "peek");
}

TEST(Der, WrongTagThrows)
{
    DerParser p(derUtf8("x"));
    EXPECT_THROW(p.readInteger(), std::runtime_error);
}

TEST(Der, TruncatedContentThrows)
{
    Bytes enc = derOctetString(Bytes(10));
    enc.resize(5); // cut the content short
    DerParser p(enc);
    EXPECT_THROW(p.readOctetString(), std::runtime_error);
}

TEST(Der, TruncatedLengthThrows)
{
    Bytes enc = {0x04, 0x82, 0x01}; // long form missing a byte
    DerParser p(enc);
    EXPECT_THROW(p.readOctetString(), std::runtime_error);
}

TEST(Der, AbsurdLengthFormThrows)
{
    Bytes enc = {0x04, 0x89, 1, 1, 1, 1, 1, 1, 1, 1, 1}; // 9 len bytes
    DerParser p(enc);
    EXPECT_THROW(p.readOctetString(), std::runtime_error);
}

TEST(Der, EmptyInputThrows)
{
    Bytes empty;
    DerParser p(empty);
    EXPECT_TRUE(p.atEnd());
    EXPECT_THROW(p.peekTag(), std::runtime_error);
}

TEST(Der, NegativeWireIntegerRejected)
{
    Bytes enc = {0x02, 0x01, 0x80}; // -128 in DER
    DerParser p(enc);
    EXPECT_THROW(p.readInteger(), std::runtime_error);
}

TEST(Der, SmallIntegerOverflowThrows)
{
    BigNum wide = BigNum(1).shiftLeft(80);
    DerParser p(derInteger(wide));
    EXPECT_THROW(p.readSmallInteger(), std::runtime_error);
}

TEST(Der, OwningParserOutlivesTemporary)
{
    // The rvalue constructor must copy the buffer (regression test for
    // the dangling-pointer bug found during bring-up).
    Bytes outer = derSequence({derSequence({derInteger(uint64_t(9))})});
    DerParser p(outer);
    DerParser inner(p.readSequence()); // binds a temporary
    DerParser innermost(inner.readSequence());
    EXPECT_EQ(innermost.readSmallInteger(), 9u);
}

} // anonymous namespace

/**
 * @file
 * Lock-striped session cache for the multi-worker serving engine.
 *
 * The paper's Section 4.1 resumption saving only materializes at scale
 * if a session established by one worker can be resumed by whichever
 * worker accepts the follow-up connection. A single mutex around one
 * SessionCache would put every handshake's store() and every
 * ClientHello's find() behind the same lock; striping by session-id
 * hash keeps workers on disjoint shards except when they genuinely
 * touch the same session.
 */

#ifndef SSLA_SSL_SHARDCACHE_HH
#define SSLA_SSL_SHARDCACHE_HH

#include <memory>
#include <mutex>
#include <vector>

#include "obs/metrics.hh"
#include "ssl/session.hh"

namespace ssla::ssl
{

/**
 * A SessionStore composed of N independently-locked SessionCache
 * shards. Session ids are generated uniformly at random by the
 * server, so the FNV-1a stripe hash spreads load evenly without any
 * coordination between workers.
 */
class ShardedSessionCache : public SessionStore
{
  public:
    /**
     * @param shards stripe count (rounded up to at least 1)
     * @param max_entries_per_shard LRU capacity of each shard
     * @param ttl_seconds entry lifetime; 0 disables expiry
     */
    explicit ShardedSessionCache(size_t shards = 8,
                                 size_t max_entries_per_shard = 1024,
                                 uint64_t ttl_seconds = 0);

    void store(const Session &session) override;
    std::optional<Session> find(const Bytes &id) override;
    void remove(const Bytes &id) override;

    size_t shardCount() const { return shards_.size(); }

    /** Which shard @p id stripes to (exposed for tests). */
    size_t shardIndexFor(const Bytes &id) const;

    // Aggregate statistics (each locks the shards in turn; the sums
    // are consistent per shard, not across shards — fine for
    // monitoring, which is all they are for).
    size_t size() const;
    uint64_t hits() const;
    uint64_t misses() const;
    uint64_t expirations() const;

    /** Override every shard's time source (deterministic tests). */
    void setClock(std::function<uint64_t()> clock);

    /**
     * Re-point the cache.* registry counters at @p reg (null restores
     * the global registry). Counts flow live: hit/miss on find(),
     * store/remove, expirations (detected per find under the shard
     * lock) and evictions (a store that did not grow its full shard).
     */
    void bindMetrics(obs::MetricsRegistry *reg);

  private:
    struct Shard
    {
        mutable std::mutex m;
        SessionCache cache;

        Shard(size_t max_entries, uint64_t ttl)
            : cache(max_entries, ttl)
        {}
    };

    Shard &shardFor(const Bytes &id);

    std::vector<std::unique_ptr<Shard>> shards_;
    obs::Counter ctrHits_;
    obs::Counter ctrMisses_;
    obs::Counter ctrStores_;
    obs::Counter ctrRemoves_;
    obs::Counter ctrExpired_;
    obs::Counter ctrEvicted_;
};

} // namespace ssla::ssl

#endif // SSLA_SSL_SHARDCACHE_HH

#include "ssl/handshake_hash.hh"

#include "perf/probe.hh"
#include "ssl/kdf.hh"
#include "util/bytes.hh"
#include "util/endian.hh"

namespace ssla::ssl
{

namespace
{

constexpr size_t md5PadLen = 48;
constexpr size_t sha1PadLen = 40;

} // anonymous namespace

HandshakeHash::HandshakeHash()
{
    perf::FuncProbe probe("init_finished_mac");
    md5_.init();
    sha1_.init();
}

void
HandshakeHash::update(const uint8_t *data, size_t len)
{
    perf::FuncProbe probe("finish_mac");
    md5_.update(data, len);
    sha1_.update(data, len);
}

void
HandshakeHash::update(const Bytes &message)
{
    update(message.data(), message.size());
}

Bytes
HandshakeHash::pairHash(const Bytes &master, const Bytes &sender_bytes)
    const
{
    // SSLv3:
    //   inner = H(transcript || sender || master || pad1)
    //   outer = H(master || pad2 || inner)
    // for H in {MD5 (48-byte pads), SHA1 (40-byte pads)}.
    Bytes out;
    out.reserve(36);

    {
        auto inner = md5_.clone();
        inner->update(sender_bytes);
        inner->update(master);
        Bytes pad1(md5PadLen, 0x36);
        inner->update(pad1);
        Bytes inner_digest = inner->final();

        crypto::Md5 outer;
        outer.update(master);
        Bytes pad2(md5PadLen, 0x5c);
        outer.update(pad2);
        outer.update(inner_digest);
        append(out, outer.final());
    }
    {
        auto inner = sha1_.clone();
        inner->update(sender_bytes);
        inner->update(master);
        Bytes pad1(sha1PadLen, 0x36);
        inner->update(pad1);
        Bytes inner_digest = inner->final();

        crypto::Sha1 outer;
        outer.update(master);
        Bytes pad2(sha1PadLen, 0x5c);
        outer.update(pad2);
        outer.update(inner_digest);
        append(out, outer.final());
    }
    return out;
}

Bytes
HandshakeHash::finishedHash(const Bytes &master,
                            FinishedSender sender) const
{
    perf::FuncProbe probe("final_finish_mac");
    Bytes sender_bytes(4);
    store32be(sender_bytes.data(), static_cast<uint32_t>(sender));
    return pairHash(master, sender_bytes);
}

Bytes
HandshakeHash::certVerifyHash(const Bytes &master) const
{
    perf::FuncProbe probe("cert_verify_mac");
    return pairHash(master, Bytes());
}

Bytes
HandshakeHash::tlsCertVerifyHash() const
{
    perf::FuncProbe probe("cert_verify_mac");
    Bytes digest = md5_.clone()->final();
    append(digest, sha1_.clone()->final());
    return digest;
}

Bytes
HandshakeHash::certVerifyHash(uint16_t version,
                              const Bytes &master) const
{
    if (version >= tls1Version)
        return tlsCertVerifyHash();
    return certVerifyHash(master);
}

Bytes
HandshakeHash::tlsFinishedHash(const Bytes &master,
                               FinishedSender sender) const
{
    perf::FuncProbe probe("final_finish_mac");
    Bytes transcript = md5_.clone()->final();
    append(transcript, sha1_.clone()->final());
    const char *label = sender == FinishedSender::Client
                            ? "client finished"
                            : "server finished";
    return tls1Prf(master, label, transcript, 12);
}

Bytes
HandshakeHash::finishedHash(uint16_t version, const Bytes &master,
                            FinishedSender sender) const
{
    if (version >= tls1Version)
        return tlsFinishedHash(master, sender);
    return finishedHash(master, sender);
}

} // namespace ssla::ssl

/**
 * @file
 * Tests for Montgomery arithmetic, the word kernels and modular
 * exponentiation (checked against a naive square-and-multiply oracle).
 */

#include <gtest/gtest.h>

#include "bn/kernels.hh"
#include "bn/modexp.hh"
#include "bn/montgomery.hh"
#include "util/rng.hh"

namespace
{

using namespace ssla;
using bn::BigNum;

/** Oracle: naive square-and-multiply with division-based reduction. */
BigNum
naiveModExp(const BigNum &base, const BigNum &exp, const BigNum &m)
{
    BigNum result(1);
    BigNum b = base.mod(m);
    for (size_t i = exp.bitLength(); i-- > 0;) {
        result = (result * result).mod(m);
        if (exp.testBit(i))
            result = (result * b).mod(m);
    }
    return result;
}

TEST(Kernels, MulAddWords)
{
    bn::Limb r[4] = {1, 2, 3, 4};
    bn::Limb a[4] = {0xffffffff, 0xffffffff, 0, 1};
    bn::Limb carry = bn::bn_mul_add_words(r, a, 4, 0xffffffff);
    // Verify against BigNum arithmetic.
    BigNum rv = BigNum::fromLimbs({1, 2, 3, 4});
    BigNum av = BigNum::fromLimbs({0xffffffff, 0xffffffff, 0, 1});
    BigNum expect = rv + av * BigNum(0xffffffffULL);
    BigNum got = BigNum::fromLimbs({r[0], r[1], r[2], r[3], carry});
    EXPECT_EQ(got, expect);
}

TEST(Kernels, MulWords)
{
    bn::Limb r[3];
    bn::Limb a[3] = {0xdeadbeef, 0x12345678, 0xffffffff};
    bn::Limb carry = bn::bn_mul_words(r, a, 3, 0xcafebabe);
    BigNum av = BigNum::fromLimbs({a[0], a[1], a[2]});
    BigNum got = BigNum::fromLimbs({r[0], r[1], r[2], carry});
    EXPECT_EQ(got, av * BigNum(0xcafebabeULL));
}

TEST(Kernels, AddSubWordsInverse)
{
    Xoshiro256 rng(5);
    for (int iter = 0; iter < 50; ++iter) {
        bn::Limb a[8], b[8], sum[8], back[8];
        for (int i = 0; i < 8; ++i) {
            a[i] = static_cast<bn::Limb>(rng.next());
            b[i] = static_cast<bn::Limb>(rng.next());
        }
        bn::Limb carry = bn::bn_add_words(sum, a, b, 8);
        bn::Limb borrow = bn::bn_sub_words(back, sum, b, 8);
        for (int i = 0; i < 8; ++i)
            EXPECT_EQ(back[i], a[i]);
        EXPECT_EQ(carry, borrow);
    }
}

TEST(Montgomery, RequiresOddModulus)
{
    EXPECT_THROW(bn::MontgomeryCtx(BigNum(10)), std::domain_error);
    EXPECT_THROW(bn::MontgomeryCtx(BigNum(1)), std::domain_error);
    EXPECT_NO_THROW(bn::MontgomeryCtx(BigNum(9)));
}

TEST(Montgomery, ToFromRoundTrip)
{
    BigNum m = BigNum::fromDecimal("1000000000000000003"); // odd
    bn::MontgomeryCtx ctx(m);
    Xoshiro256 rng(1);
    for (int i = 0; i < 50; ++i) {
        BigNum a = BigNum::fromBytesBE(rng.bytes(8)).mod(m);
        EXPECT_EQ(ctx.fromMont(ctx.toMont(a)), a);
    }
}

TEST(Montgomery, MulMatchesModMul)
{
    BigNum m = BigNum::fromHex("f000000000000000000000000000000d");
    if (!m.isOdd())
        m = m + BigNum(1) + BigNum(1);
    bn::MontgomeryCtx ctx(m);
    Xoshiro256 rng(2);
    for (int i = 0; i < 50; ++i) {
        BigNum a = BigNum::fromBytesBE(rng.bytes(16)).mod(m);
        BigNum b = BigNum::fromBytesBE(rng.bytes(16)).mod(m);
        BigNum ma = ctx.toMont(a);
        BigNum mb = ctx.toMont(b);
        EXPECT_EQ(ctx.fromMont(ctx.mul(ma, mb)),
                  BigNum::modMul(a, b, m));
        EXPECT_EQ(ctx.fromMont(ctx.sqr(ma)), BigNum::modMul(a, a, m));
    }
}

TEST(Montgomery, OneIsRModN)
{
    BigNum m(101);
    bn::MontgomeryCtx ctx(m);
    EXPECT_EQ(ctx.fromMont(ctx.one()), BigNum(1));
}

TEST(ModExp, KnownValues)
{
    EXPECT_EQ(bn::modExp(BigNum(2), BigNum(10), BigNum(1000)),
              BigNum(24));
    EXPECT_EQ(bn::modExp(BigNum(3), BigNum(0), BigNum(7)), BigNum(1));
    EXPECT_EQ(bn::modExp(BigNum(0), BigNum(5), BigNum(7)), BigNum(0));
    // Fermat: a^(p-1) = 1 mod p.
    BigNum p = BigNum::fromDecimal("1000000007");
    EXPECT_EQ(bn::modExp(BigNum(12345), p - BigNum(1), p), BigNum(1));
}

TEST(ModExp, ModulusOneGivesZero)
{
    EXPECT_TRUE(bn::modExp(BigNum(5), BigNum(5), BigNum(1)).isZero());
}

TEST(ModExp, NegativeExponentThrows)
{
    EXPECT_THROW(
        bn::modExp(BigNum(2), BigNum::fromInt(-1), BigNum(7)),
        std::domain_error);
}

TEST(ModExp, EvenModulusFallback)
{
    Xoshiro256 rng(3);
    BigNum m = BigNum::fromDecimal("1000000000000"); // even
    for (int i = 0; i < 20; ++i) {
        BigNum b = BigNum::fromBytesBE(rng.bytes(6));
        BigNum e = BigNum::fromBytesBE(rng.bytes(2));
        EXPECT_EQ(bn::modExp(b, e, m), naiveModExp(b, e, m));
    }
}

/** Property sweep over modulus sizes: windowed Montgomery == naive. */
class ModExpProperty : public ::testing::TestWithParam<size_t>
{};

TEST_P(ModExpProperty, MatchesNaive)
{
    size_t mod_bytes = GetParam();
    Xoshiro256 rng(mod_bytes);
    for (int i = 0; i < 10; ++i) {
        Bytes mb = rng.bytes(mod_bytes);
        mb.back() |= 1; // odd
        mb.front() |= 0x80;
        BigNum m = BigNum::fromBytesBE(mb);
        if (m.isOne())
            continue;
        BigNum b = BigNum::fromBytesBE(rng.bytes(mod_bytes + 2));
        BigNum e = BigNum::fromBytesBE(rng.bytes(3));
        EXPECT_EQ(bn::modExp(b, e, m), naiveModExp(b, e, m))
            << "modulus bytes " << mod_bytes;
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ModExpProperty,
                         ::testing::Values(1, 2, 4, 5, 8, 16, 32, 64));

TEST(ModExp, ReusedContext)
{
    BigNum m = BigNum::fromDecimal("999999999999999989"); // prime, odd
    bn::MontgomeryCtx ctx(m);
    Xoshiro256 rng(9);
    for (int i = 0; i < 10; ++i) {
        BigNum b = BigNum::fromBytesBE(rng.bytes(8));
        BigNum e = BigNum::fromBytesBE(rng.bytes(4));
        EXPECT_EQ(bn::modExpMont(b, e, ctx), naiveModExp(b, e, m));
    }
}

TEST(ModExp, RsaIdentity)
{
    // (m^e)^d == m for a tiny hand-built RSA instance:
    // p=61, q=53, n=3233, phi=3120, e=17, d=2753.
    BigNum n(3233), e(17), d(2753);
    for (uint64_t m = 1; m < 100; m += 7) {
        BigNum c = bn::modExp(BigNum(m), e, n);
        EXPECT_EQ(bn::modExp(c, d, n), BigNum(m));
    }
}

} // anonymous namespace

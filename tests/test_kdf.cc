/**
 * @file
 * SSLv3 KDF tests: expansion structure, master secret and key block
 * derivation, client/server consistency.
 */

#include <gtest/gtest.h>

#include "crypto/md5.hh"
#include "crypto/sha1.hh"
#include "ssl/kdf.hh"
#include "util/bytes.hh"
#include "util/rng.hh"

namespace
{

using namespace ssla;
using namespace ssla::ssl;

Bytes
testSecret()
{
    return Bytes(48, 0x47);
}

TEST(Kdf, ExpandLengths)
{
    Bytes r1(32, 1), r2(32, 2);
    for (size_t len : {1u, 15u, 16u, 17u, 48u, 104u, 160u}) {
        Bytes out = ssl3Expand(testSecret(), r1, r2, len);
        EXPECT_EQ(out.size(), len);
    }
}

TEST(Kdf, ExpandIsDeterministic)
{
    Bytes r1(32, 1), r2(32, 2);
    EXPECT_EQ(ssl3Expand(testSecret(), r1, r2, 48),
              ssl3Expand(testSecret(), r1, r2, 48));
}

TEST(Kdf, ExpandPrefixConsistency)
{
    // Longer output must extend, not change, shorter output.
    Bytes r1(32, 1), r2(32, 2);
    Bytes short_out = ssl3Expand(testSecret(), r1, r2, 30);
    Bytes long_out = ssl3Expand(testSecret(), r1, r2, 90);
    EXPECT_EQ(Bytes(long_out.begin(), long_out.begin() + 30), short_out);
}

TEST(Kdf, ExpandMatchesManualConstruction)
{
    // First 16 bytes must equal MD5(secret || SHA1('A'||secret||r1||r2)).
    Bytes secret = testSecret();
    Bytes r1(32, 0xaa), r2(32, 0xbb);

    crypto::Sha1 sha;
    sha.update(toBytes("A"));
    sha.update(secret);
    sha.update(r1);
    sha.update(r2);
    Bytes inner = sha.final();
    crypto::Md5 md;
    md.update(secret);
    md.update(inner);
    Bytes expect = md.final();

    Bytes got = ssl3Expand(secret, r1, r2, 16);
    EXPECT_EQ(got, expect);
}

TEST(Kdf, ExpandSecondBlockUsesBBLabel)
{
    Bytes secret = testSecret();
    Bytes r1(32, 0xaa), r2(32, 0xbb);

    crypto::Sha1 sha;
    sha.update(toBytes("BB"));
    sha.update(secret);
    sha.update(r1);
    sha.update(r2);
    Bytes inner = sha.final();
    crypto::Md5 md;
    md.update(secret);
    md.update(inner);
    Bytes expect = md.final();

    Bytes got = ssl3Expand(secret, r1, r2, 32);
    EXPECT_EQ(Bytes(got.begin() + 16, got.end()), expect);
}

TEST(Kdf, ExpandRejectsAbsurdLength)
{
    Bytes r1(32, 1), r2(32, 2);
    EXPECT_THROW(ssl3Expand(testSecret(), r1, r2, 27 * 16),
                 std::length_error);
}

TEST(Kdf, MasterSecretIs48Bytes)
{
    Bytes pre(48, 3), cr(32, 4), sr(32, 5);
    Bytes master = ssl3MasterSecret(pre, cr, sr);
    EXPECT_EQ(master.size(), 48u);
}

TEST(Kdf, MasterSecretSensitivity)
{
    Bytes pre(48, 3), cr(32, 4), sr(32, 5);
    Bytes base = ssl3MasterSecret(pre, cr, sr);

    Bytes pre2 = pre;
    pre2[0] ^= 1;
    EXPECT_NE(ssl3MasterSecret(pre2, cr, sr), base);

    Bytes cr2 = cr;
    cr2[0] ^= 1;
    EXPECT_NE(ssl3MasterSecret(pre, cr2, sr), base);

    Bytes sr2 = sr;
    sr2[0] ^= 1;
    EXPECT_NE(ssl3MasterSecret(pre, cr, sr2), base);
}

TEST(Kdf, RandomOrderMatters)
{
    // Master secret uses client||server; swapping must change it.
    Bytes pre(48, 3), cr(32, 4), sr(32, 5);
    EXPECT_NE(ssl3MasterSecret(pre, cr, sr),
              ssl3MasterSecret(pre, sr, cr));
}

class KdfKeyBlock : public ::testing::TestWithParam<CipherSuiteId>
{};

TEST_P(KdfKeyBlock, PartitionSizes)
{
    const CipherSuite &suite = cipherSuite(GetParam());
    Bytes master(48, 9), cr(32, 1), sr(32, 2);
    KeyBlock kb = ssl3KeyBlock(master, cr, sr, suite);

    EXPECT_EQ(kb.clientMacSecret.size(), suite.macLen());
    EXPECT_EQ(kb.serverMacSecret.size(), suite.macLen());
    EXPECT_EQ(kb.clientKey.size(), suite.keyLen());
    EXPECT_EQ(kb.serverKey.size(), suite.keyLen());
    EXPECT_EQ(kb.clientIv.size(), suite.ivLen());
    EXPECT_EQ(kb.serverIv.size(), suite.ivLen());

    // Client and server material must differ.
    EXPECT_NE(kb.clientMacSecret, kb.serverMacSecret);
    if (suite.keyLen()) {
        EXPECT_NE(kb.clientKey, kb.serverKey);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Suites, KdfKeyBlock,
    ::testing::Values(CipherSuiteId::RSA_NULL_MD5,
                      CipherSuiteId::RSA_RC4_128_MD5,
                      CipherSuiteId::RSA_DES_CBC_SHA,
                      CipherSuiteId::RSA_3DES_EDE_CBC_SHA,
                      CipherSuiteId::RSA_AES_128_CBC_SHA,
                      CipherSuiteId::RSA_AES_256_CBC_SHA));

TEST(Kdf, KeyBlockDeterministic)
{
    const CipherSuite &suite =
        cipherSuite(CipherSuiteId::RSA_3DES_EDE_CBC_SHA);
    Bytes master(48, 9), cr(32, 1), sr(32, 2);
    KeyBlock a = ssl3KeyBlock(master, cr, sr, suite);
    KeyBlock b = ssl3KeyBlock(master, cr, sr, suite);
    EXPECT_EQ(a.clientKey, b.clientKey);
    EXPECT_EQ(a.serverIv, b.serverIv);
}

TEST(CipherSuites, LookupAndMetadata)
{
    const CipherSuite &s =
        cipherSuite(CipherSuiteId::RSA_3DES_EDE_CBC_SHA);
    EXPECT_STREQ(s.name, "DES-CBC3-SHA");
    EXPECT_EQ(s.keyLen(), 24u);
    EXPECT_EQ(s.macLen(), 20u);
    EXPECT_EQ(s.ivLen(), 8u);
    EXPECT_EQ(s.blockLen(), 8u);

    EXPECT_TRUE(cipherSuiteKnown(0x000a));
    EXPECT_FALSE(cipherSuiteKnown(0x1234));
    EXPECT_THROW(cipherSuite(static_cast<CipherSuiteId>(0x1234)),
                 std::invalid_argument);
    EXPECT_FALSE(allCipherSuites().empty());
}

} // anonymous namespace

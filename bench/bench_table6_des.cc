/**
 * @file
 * Reproduces Table 6: DES and 3DES block-operation breakdown into
 * initial permutation / substitution rounds / final permutation.
 */

#include <cstdio>

#include "common.hh"
#include "crypto/des.hh"
#include "perf/report.hh"
#include "util/endian.hh"

using namespace ssla;
using namespace ssla::crypto;
using perf::TablePrinter;

int
main()
{
    constexpr int iters = 50000;
    Bytes key = bench::benchPayload(24, 3);
    DesKeySchedule k1, k2, k3;
    desSetKey(key.data(), k1);
    desSetKey(key.data() + 8, k2, true);
    desSetKey(key.data() + 16, k3);

    perf::NullMeter m;
    uint64_t block = load64be(bench::benchPayload(8, 4).data());

    bench::warmUpCpu();
    // Dependency-chained batches: each result feeds the next input.
    double ip = bench::cyclesPerCall(
        [&] { block = desInitialPerm(block, m); }, iters);
    double rounds1 = bench::cyclesPerCall(
        [&] { block = desRounds(block, k1, m); }, iters);
    double rounds3 = bench::cyclesPerCall(
        [&] {
            block = desRounds(block, k1, m);
            block = desRounds(block, k2, m);
            block = desRounds(block, k3, m);
        },
        iters);
    double fp = bench::cyclesPerCall(
        [&] { block = desFinalPerm(block, m); }, iters);

    // 3DES shares one IP and one FP around three round sets in spirit;
    // our implementation (like OpenSSL's) permutes per DES invocation,
    // so report the measured composition both ways.
    double des_total = ip + rounds1 + fp;
    double tdes_total = ip + rounds3 + fp;

    TablePrinter table(
        "Table 6: DES/3DES execution time breakdown "
        "(cycles per block op)");
    table.setHeader({"Step", "Functionality", "DES cyc", "DES %",
                     "paper %", "3DES cyc", "3DES %", "paper %"});
    table.addRow({"1", "IP", perf::fmtF(ip, 1),
                  perf::fmtPct(100 * ip / des_total), "13.15",
                  perf::fmtF(ip, 1),
                  perf::fmtPct(100 * ip / tdes_total), "5.3"});
    table.addRow({"2", "Substitution", perf::fmtF(rounds1, 1),
                  perf::fmtPct(100 * rounds1 / des_total), "74.74",
                  perf::fmtF(rounds3, 1),
                  perf::fmtPct(100 * rounds3 / tdes_total), "89.1"});
    table.addRow({"3", "FP", perf::fmtF(fp, 1),
                  perf::fmtPct(100 * fp / des_total), "12.11",
                  perf::fmtF(fp, 1),
                  perf::fmtPct(100 * fp / tdes_total), "5.6"});
    table.addRule();
    table.addRow({"", "Total", perf::fmtF(des_total, 1), "100%", "100",
                  perf::fmtF(tdes_total, 1), "100%", "100"});
    table.print();

    std::printf("\npaper totals: 382 cycles (DES), 1027 cycles (3DES)\n");
    // Keep the measurement chains live (defeats dead-code elimination).
    std::printf("(checksum %016llx)\n",
                static_cast<unsigned long long>(block));
    return 0;
}

file(REMOVE_RECURSE
  "libssla_pki.a"
)

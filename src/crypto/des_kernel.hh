/**
 * @file
 * DES (FIPS 46-3) block kernels.
 *
 * The paper's Table 6 splits the DES/3DES block operation into initial
 * permutation, 16 substitution rounds and final permutation; the three
 * parts are separate templates here so the anatomy bench can time them
 * the way the paper did. The per-round structure is the classic
 * software form: E-expansion, round-key XOR, eight 64-entry SP-table
 * lookups (S-boxes pre-composed with the P permutation, Table 4's
 * "8 tables x 64 x 32b"), XOR into the opposite half.
 */

#ifndef SSLA_CRYPTO_DES_KERNEL_HH
#define SSLA_CRYPTO_DES_KERNEL_HH

#include <cstdint>

#include "perf/opcount.hh"

namespace ssla::crypto
{

/** Per-key DES state: 16 round keys aligned with the E output. */
struct DesKeySchedule
{
    uint64_t ks[16];
};

/** Lazily built DES tables (SP boxes and byte-indexed permutations). */
struct DesTables
{
    uint32_t sp[8][64];     ///< S-boxes composed with P
    uint64_t ip[8][256];    ///< initial permutation, per input byte
    uint64_t fp[8][256];    ///< final permutation, per input byte
    uint64_t pc1[8][256];   ///< key permutation PC-1 (64 -> 56 bits)
    uint64_t pc2[7][256];   ///< round-key permutation PC-2 (56 -> 48)
};

/** Access the process-wide DES tables (built on first use). */
const DesTables &desTables();

/**
 * Expand @p key (8 bytes; parity bits ignored) into 16 round keys.
 * @param decrypt reverse the round-key order for decryption
 */
void desSetKey(const uint8_t key[8], DesKeySchedule &out,
               bool decrypt = false);

namespace desdetail
{

/**
 * E expansion: 32-bit half to 48 bits as eight 6-bit groups, each
 * group g covering circular bits 4g..4g+5 (1-based from the MSB).
 */
inline uint64_t
expand(uint32_t r)
{
    uint64_t out =
        static_cast<uint64_t>(((r & 1) << 5) | (r >> 27)) << 42;
    out |= static_cast<uint64_t>((r >> 23) & 0x3f) << 36;
    out |= static_cast<uint64_t>((r >> 19) & 0x3f) << 30;
    out |= static_cast<uint64_t>((r >> 15) & 0x3f) << 24;
    out |= static_cast<uint64_t>((r >> 11) & 0x3f) << 18;
    out |= static_cast<uint64_t>((r >> 7) & 0x3f) << 12;
    out |= static_cast<uint64_t>((r >> 3) & 0x3f) << 6;
    out |= ((r & 0x1f) << 1) | (r >> 31);
    return out;
}

} // namespace desdetail

/** Part 1 of Table 6: initial permutation of the 64-bit block. */
template <class Meter>
inline uint64_t
desInitialPerm(uint64_t block, Meter &m)
{
    const DesTables &t = desTables();
    uint64_t out = 0;
    for (int b = 0; b < 8; ++b)
        out |= t.ip[b][(block >> (56 - 8 * b)) & 0xff];
    if constexpr (Meter::counting) {
        using perf::OpClass;
        // Modelled after OpenSSL's PERM_OP sequence: five swap steps of
        // shift / xor / and / xor / shift / xor, plus load/store traffic.
        m.count(OpClass::ShrL, 5);
        m.count(OpClass::ShlL, 5);
        m.count(OpClass::XorL, 15);
        m.count(OpClass::AndL, 5);
        m.count(OpClass::MovL, 8);
        m.count(OpClass::RorL, 2);
    }
    return out;
}

/** Part 3 of Table 6: final permutation (IP^-1). */
template <class Meter>
inline uint64_t
desFinalPerm(uint64_t block, Meter &m)
{
    const DesTables &t = desTables();
    uint64_t out = 0;
    for (int b = 0; b < 8; ++b)
        out |= t.fp[b][(block >> (56 - 8 * b)) & 0xff];
    if constexpr (Meter::counting) {
        using perf::OpClass;
        m.count(OpClass::ShrL, 5);
        m.count(OpClass::ShlL, 5);
        m.count(OpClass::XorL, 15);
        m.count(OpClass::AndL, 5);
        m.count(OpClass::MovL, 8);
        m.count(OpClass::RorL, 2);
    }
    return out;
}

/**
 * Part 2 of Table 6: the 16 substitution rounds over the permuted
 * block (L in the high half, R in the low half).
 */
template <class Meter>
inline uint64_t
desRounds(uint64_t lr, const DesKeySchedule &key, Meter &m)
{
    const DesTables &t = desTables();
    uint32_t l = static_cast<uint32_t>(lr >> 32);
    uint32_t r = static_cast<uint32_t>(lr);

    for (int round = 0; round < 16; ++round) {
        uint64_t x = desdetail::expand(r) ^ key.ks[round];
        uint32_t f = t.sp[0][(x >> 42) & 0x3f] ^
                     t.sp[1][(x >> 36) & 0x3f] ^
                     t.sp[2][(x >> 30) & 0x3f] ^
                     t.sp[3][(x >> 24) & 0x3f] ^
                     t.sp[4][(x >> 18) & 0x3f] ^
                     t.sp[5][(x >> 12) & 0x3f] ^
                     t.sp[6][(x >> 6) & 0x3f] ^
                     t.sp[7][x & 0x3f];
        uint32_t next_r = l ^ f;
        l = r;
        r = next_r;
        if constexpr (Meter::counting) {
            using perf::OpClass;
            // OpenSSL's D_ENCRYPT: two key XORs, a rotate, eight
            // extract+lookup+fold sequences, the L^=f fold and the
            // round-loop control — xorl-dominated, as Table 12 shows.
            m.count(OpClass::XorL, 16);
            m.count(OpClass::MovB, 7);
            m.count(OpClass::MovL, 6);
            m.count(OpClass::AndL, 6);
            m.count(OpClass::ShrL, 2);
            m.count(OpClass::RorL, 1);
            m.count(OpClass::RolL, 1);
            m.count(OpClass::Jcc, 1);
        }
    }
    // The halves are swapped once more than the algorithm wants.
    return (static_cast<uint64_t>(r) << 32) | l;
}

/** Complete single-block DES: IP, 16 rounds, FP. */
template <class Meter>
inline uint64_t
desProcessBlockT(uint64_t block, const DesKeySchedule &key, Meter &m)
{
    uint64_t lr = desInitialPerm(block, m);
    lr = desRounds(lr, key, m);
    return desFinalPerm(lr, m);
}

} // namespace ssla::crypto

#endif // SSLA_CRYPTO_DES_KERNEL_HH

/**
 * @file
 * HMAC (RFC 2104) over any Digest.
 *
 * SSLv3 itself uses the older pad-concatenation MAC (see ssl/record),
 * but HMAC is part of the crypto library surface (TLS uses it, and the
 * tests exercise it as an independent integrity primitive).
 */

#ifndef SSLA_CRYPTO_HMAC_HH
#define SSLA_CRYPTO_HMAC_HH

#include <memory>

#include "crypto/digest.hh"

namespace ssla::crypto
{

/** Incremental HMAC computation. */
class Hmac
{
  public:
    Hmac(DigestAlg alg, const Bytes &key);

    /** Restart with the same key. */
    void init();

    void update(const uint8_t *data, size_t len);
    void update(const Bytes &data) { update(data.data(), data.size()); }

    /** Finish and return the tag. */
    Bytes final();

    /** Finish into caller storage of at least tagSize() bytes. */
    void final(uint8_t *out);

    size_t tagSize() const { return inner_->digestSize(); }

    /** One-shot convenience. */
    static Bytes compute(DigestAlg alg, const Bytes &key,
                         const Bytes &data);

  private:
    DigestAlg alg_;
    Bytes keyBlock_; ///< key padded/hashed to one digest block
    std::unique_ptr<Digest> inner_;
};

} // namespace ssla::crypto

#endif // SSLA_CRYPTO_HMAC_HH

#!/usr/bin/env python3
"""Validate a Chrome trace_event JSON file exported by the obs layer.

Checks, in order:
  1. The file parses as JSON and is an object with a "traceEvents" list.
  2. Every event carries the keys its phase requires ("X" spans also
     need a non-negative integer "dur"; async "b"/"e" also need "id").
  3. Timestamps are monotone non-decreasing per (pid, tid) track --
     the exporter stable-sorts by ts, so any inversion means a bug.
  4. Every async "b" (session-open) is closed by a matching "e" with
     the same (pid, cat, id), and no "e" arrives without its "b".
  5. Outcome args: every session async "b" carries a string
     args.outcome, and every crypto-track job span (cat "JobStart")
     carries args.outcome in {ok, error, unfinished} plus a numeric
     args.serial -- the fields ssla_analyze's ingest keys on.

Exit status 0 when the trace is well-formed, 1 otherwise, with one
line per defect on stderr. Stdlib only; used by CI after
`bench_serve_scale --smoke --trace <file>`.

Usage: validate_trace.py TRACE.json
"""

import json
import sys


def fail(msg):
    print("validate_trace: %s" % msg, file=sys.stderr)
    return 1


def main(argv):
    if len(argv) != 2:
        return fail("usage: validate_trace.py TRACE.json")

    try:
        with open(argv[1], "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail("cannot parse %s: %s" % (argv[1], e))

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return fail("root must be an object with a traceEvents key")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        return fail("traceEvents must be a list")
    if not events:
        return fail("traceEvents is empty")

    errors = 0
    last_ts = {}  # (pid, tid) -> most recent ts
    open_async = {}  # (pid, cat, id) -> count of unmatched "b"
    phases = {}  # ph -> count, for the summary line

    for n, ev in enumerate(events):
        where = "event %d" % n
        if not isinstance(ev, dict):
            errors += fail("%s: not an object" % where)
            continue
        ph = ev.get("ph")
        # Metadata events (process/thread names) carry no timestamp.
        required = (("name", "ph", "pid") if ph == "M" else
                    ("name", "ph", "pid", "tid", "ts"))
        missing = [k for k in required if k not in ev]
        if missing:
            errors += fail("%s: missing %s" % (where, ",".join(missing)))
            continue
        phases[ph] = phases.get(ph, 0) + 1
        if ph == "M":
            continue
        where = "event %d (%s %r)" % (n, ph, ev["name"])

        ts = ev["ts"]
        if not isinstance(ts, (int, float)) or ts < 0:
            errors += fail("%s: bad ts %r" % (where, ts))
            continue
        track = (ev["pid"], ev["tid"])
        if track in last_ts and ts < last_ts[track]:
            errors += fail("%s: ts %s < previous %s on track %s" %
                           (where, ts, last_ts[track], track))
        last_ts[track] = ts

        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors += fail("%s: X span needs dur >= 0, got %r" %
                               (where, dur))
            if ev.get("cat") == "JobStart":
                # Crypto-track job span: the analyzer rebuilds the
                # JobEnd from these args, so they are load-bearing.
                args = ev.get("args")
                if not isinstance(args, dict):
                    errors += fail("%s: job span needs args" % where)
                    continue
                outcome = args.get("outcome")
                if outcome not in ("ok", "error", "unfinished"):
                    errors += fail(
                        "%s: job span needs args.outcome in "
                        "{ok,error,unfinished}, got %r" %
                        (where, outcome))
                if not isinstance(args.get("serial"), int):
                    errors += fail(
                        "%s: job span needs integer args.serial" %
                        where)
        elif ph in ("b", "e"):
            if "id" not in ev:
                errors += fail("%s: async event needs id" % where)
                continue
            key = (ev["pid"], ev.get("cat", ""), ev["id"])
            if ph == "b":
                open_async[key] = open_async.get(key, 0) + 1
                if ev.get("cat") == "session":
                    args = ev.get("args")
                    outcome = (args.get("outcome")
                               if isinstance(args, dict) else None)
                    if not isinstance(outcome, str) or not outcome:
                        errors += fail(
                            "%s: session open needs string "
                            "args.outcome, got %r" % (where, outcome))
            else:
                if open_async.get(key, 0) <= 0:
                    errors += fail("%s: 'e' with no open 'b' for id %s"
                                   % (where, ev["id"]))
                else:
                    open_async[key] -= 1

    for key, depth in sorted(open_async.items()):
        if depth > 0:
            errors += fail("async id %s: %d 'b' event(s) never closed" %
                           (key[2], depth))

    if errors:
        return 1
    print("validate_trace: OK — %d events, %d tracks, phases %s" %
          (len(events), len(last_ts),
           " ".join("%s=%d" % kv for kv in sorted(phases.items()))))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

/**
 * @file
 * Session and session-cache tests (LRU behaviour, hit/miss stats).
 */

#include <gtest/gtest.h>

#include "ssl/session.hh"
#include "util/rng.hh"

namespace
{

using namespace ssla;
using namespace ssla::ssl;

Session
makeSession(uint8_t tag)
{
    Session s;
    s.id = Bytes(32, tag);
    s.suiteId = 0x000a;
    s.masterSecret = Bytes(48, tag);
    return s;
}

TEST(Session, Validity)
{
    EXPECT_FALSE(Session().valid());
    EXPECT_TRUE(makeSession(1).valid());
    Session no_master;
    no_master.id = Bytes(32, 1);
    EXPECT_FALSE(no_master.valid());
}

TEST(SessionCache, StoreAndFind)
{
    SessionCache cache;
    cache.store(makeSession(1));
    auto found = cache.find(Bytes(32, 1));
    ASSERT_TRUE(found);
    EXPECT_EQ(found->masterSecret, Bytes(48, 1));
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_FALSE(cache.find(Bytes(32, 9)));
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(SessionCache, InvalidSessionsNotStored)
{
    SessionCache cache;
    cache.store(Session());
    EXPECT_EQ(cache.size(), 0u);
}

TEST(SessionCache, StoreRefreshesExisting)
{
    SessionCache cache;
    cache.store(makeSession(1));
    Session updated = makeSession(1);
    updated.masterSecret = Bytes(48, 0xee);
    cache.store(updated);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.find(Bytes(32, 1))->masterSecret, Bytes(48, 0xee));
}

TEST(SessionCache, Remove)
{
    SessionCache cache;
    cache.store(makeSession(1));
    cache.remove(Bytes(32, 1));
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_FALSE(cache.find(Bytes(32, 1)));
    // Removing a missing id is a no-op.
    cache.remove(Bytes(32, 2));
}

TEST(SessionCache, EvictsLeastRecentlyUsed)
{
    SessionCache cache(3);
    cache.store(makeSession(1));
    cache.store(makeSession(2));
    cache.store(makeSession(3));
    // Touch 1 so 2 becomes the LRU victim.
    EXPECT_TRUE(cache.find(Bytes(32, 1)));
    cache.store(makeSession(4));
    EXPECT_EQ(cache.size(), 3u);
    EXPECT_TRUE(cache.find(Bytes(32, 1)));
    EXPECT_FALSE(cache.find(Bytes(32, 2)));
    EXPECT_TRUE(cache.find(Bytes(32, 3)));
    EXPECT_TRUE(cache.find(Bytes(32, 4)));
}

TEST(SessionCache, TtlExpiresEntries)
{
    SessionCache cache(16, 300); // 5-minute lifetime
    uint64_t fake_now = 1000;
    cache.setClock([&] { return fake_now; });

    cache.store(makeSession(1));
    fake_now = 1200; // 200s later: still fresh
    EXPECT_TRUE(cache.find(Bytes(32, 1)));
    fake_now = 1400; // 400s after store: expired
    EXPECT_FALSE(cache.find(Bytes(32, 1)));
    EXPECT_EQ(cache.expirations(), 1u);
    EXPECT_EQ(cache.size(), 0u);
}

TEST(SessionCache, StoreRestampsAge)
{
    SessionCache cache(16, 300);
    uint64_t fake_now = 0;
    cache.setClock([&] { return fake_now; });

    cache.store(makeSession(1));
    fake_now = 250;
    cache.store(makeSession(1)); // refresh restamps
    fake_now = 500;              // 250s after refresh: fresh
    EXPECT_TRUE(cache.find(Bytes(32, 1)));
}

TEST(SessionCache, ZeroTtlNeverExpires)
{
    SessionCache cache(16, 0);
    uint64_t fake_now = 0;
    cache.setClock([&] { return fake_now; });
    cache.store(makeSession(1));
    fake_now = 1u << 30;
    EXPECT_TRUE(cache.find(Bytes(32, 1)));
}

TEST(SessionCache, ManyEntries)
{
    SessionCache cache(64);
    for (int i = 0; i < 200; ++i)
        cache.store(makeSession(static_cast<uint8_t>(i)));
    EXPECT_EQ(cache.size(), 64u);
    // The most recent 64 distinct tags survive; note tags wrap at 256
    // so tags 136..199 are present.
    EXPECT_TRUE(cache.find(Bytes(32, 199)));
    EXPECT_FALSE(cache.find(Bytes(32, 10)));
}

} // anonymous namespace

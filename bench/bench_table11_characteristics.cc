/**
 * @file
 * Reproduces Table 11: architectural characteristics of the seven
 * crypto operations — CPI (from the pipeline model over metered op
 * mixes), path length in instructions per byte, and measured
 * throughput in MB/s.
 */

#include <cstdio>

#include "crypto/cipher.hh"
#include "crypto/md5.hh"
#include "crypto/rsa.hh"
#include "crypto/sha1.hh"
#include "opmix.hh"
#include "perf/cpimodel.hh"
#include "perf/report.hh"

using namespace ssla;
using namespace ssla::bench;
using perf::TablePrinter;

namespace
{

double
cipherThroughput(crypto::CipherAlg alg, size_t len = 64 * 1024)
{
    const auto &info = crypto::cipherInfo(alg);
    Bytes key = benchPayload(info.keyLen, 21);
    Bytes iv = benchPayload(info.ivLen, 22);
    Bytes data = benchPayload(len, 23);
    auto cipher = benchProvider().createCipher(alg, key, iv, true);
    return throughputMBps(
        [&] { cipher->process(data.data(), data.data(), len); }, len,
        30);
}

template <class Hash>
double
hashThroughput(size_t len = 64 * 1024)
{
    Bytes data = benchPayload(len, 24);
    Hash h;
    uint8_t out[32];
    return throughputMBps(
        [&] {
            h.init();
            h.update(data.data(), len);
            h.final(out);
        },
        len, 30);
}

double
rsaThroughput()
{
    const auto &kp = benchKey(1024);
    crypto::RandomPool pool(Bytes{3});
    Bytes cipher =
        crypto::rsaPublicEncrypt(kp.pub, Bytes(48, 1), pool);
    crypto::rsaPrivateDecrypt(*kp.priv, cipher);
    return throughputMBps(
        [&] { crypto::rsaPrivateDecrypt(*kp.priv, cipher); },
        kp.pub.blockLen(), 20);
}

} // anonymous namespace

int
main()
{
    struct Row
    {
        const char *name;
        OpMix mix;
        double throughput;
        double paper_cpi, paper_pl, paper_tp;
    };

    Row rows[] = {
        {"AES", aesMix(),
         cipherThroughput(crypto::CipherAlg::Aes128Cbc), 0.66, 50,
         51.19},
        {"DES", desMix(1024, false),
         cipherThroughput(crypto::CipherAlg::DesCbc), 0.67, 69, 36.95},
        {"3DES", desMix(1024, true),
         cipherThroughput(crypto::CipherAlg::Des3Cbc), 0.66, 194,
         13.32},
        {"RC4", rc4Mix(),
         cipherThroughput(crypto::CipherAlg::Rc4_128), 0.57, 14,
         211.34},
        {"RSA", rsaMix(), rsaThroughput(), 0.77, 61457, 0.036},
        {"MD5", md5Mix(), hashThroughput<crypto::Md5>(), 0.72, 12,
         197.86},
        {"SHA-1", sha1Mix(), hashThroughput<crypto::Sha1>(), 0.52, 24,
         135.30},
    };

    TablePrinter table(
        "Table 11: Characteristics of crypto operations "
        "(CPI from pipeline model; throughput measured)");
    table.setHeader({"Crypto op", "CPI", "paper CPI",
                     "Path len (instr/B)", "paper", "Throughput MB/s",
                     "paper MB/s"});
    for (const auto &r : rows) {
        perf::CpiEstimate est = perf::estimateCpi(r.mix.hist);
        table.addRow({r.name, perf::fmtF(est.cpi, 2),
                      perf::fmtF(r.paper_cpi, 2),
                      perf::fmtF(r.mix.pathLength(), 1),
                      perf::fmtF(r.paper_pl, 0),
                      perf::fmtF(r.throughput, 2),
                      perf::fmtF(r.paper_tp, 2)});
    }
    table.print();

    std::printf(
        "\nshape checks: RSA has the highest CPI and path length; "
        "RC4 > AES > DES > 3DES in throughput; MD5 > SHA-1.\n");
    return 0;
}

/**
 * @file
 * A small in-order, superscalar CPI model.
 *
 * The paper (Table 11) reports CPI between 0.52 and 0.77 for the crypto
 * kernels on a Pentium 4 — compute-bound code whose L1 behaviour is
 * essentially perfect. This model consumes an OpHistogram (from the
 * metered kernels) and estimates cycles as the maximum of three
 * bottlenecks, plus branch-misprediction and multiply-serialization
 * penalties:
 *
 *   issue     : total_ops / issue_width
 *   memory    : memory_ops / load_store_ports
 *   multiply  : mull count x (1 / mul_throughput) — the multiplier is
 *               unpipelined on the modelled core, which is what pushes
 *               RSA's CPI above the logical-op kernels'
 *
 * This is deliberately a first-order model: its job is to reproduce the
 * *ordering* of CPIs across algorithms (RSA highest, SHA-1 lowest) and
 * their rough magnitude, not to be a microarchitectural simulator.
 */

#ifndef SSLA_PERF_CPIMODEL_HH
#define SSLA_PERF_CPIMODEL_HH

#include "perf/opcount.hh"

namespace ssla::perf
{

/**
 * Tunable core parameters. The defaults approximate the paper's
 * 2.26 GHz Pentium 4: ~2 sustained uops/cycle on dependent integer
 * code, one L1 port, and a long-occupancy integer multiplier (what
 * pushes RSA's CPI to the top of Table 11's range).
 */
struct CoreParams
{
    double issueWidth = 2.0;        ///< sustained ops issued per cycle
    double loadStorePorts = 1.0;    ///< effective L1 accesses per cycle
    double mulInterval = 8.0;       ///< cycles between dependent mulls
    double branchMissRate = 0.03;   ///< fraction of Jcc mispredicted
    double branchMissPenalty = 20.0; ///< pipeline refill cycles
    double callOverhead = 2.0;      ///< extra cycles per call/ret pair
};

/** Result of evaluating the model on one op histogram. */
struct CpiEstimate
{
    double cycles = 0.0;    ///< estimated total cycles
    double instructions = 0.0; ///< total dynamic ops
    double cpi = 0.0;       ///< cycles per instruction
};

/** Evaluate the pipeline model over an op histogram. */
CpiEstimate estimateCpi(const OpHistogram &hist,
                        const CoreParams &params = CoreParams());

} // namespace ssla::perf

#endif // SSLA_PERF_CPIMODEL_HH

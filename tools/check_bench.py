#!/usr/bin/env python3
"""Validate BENCH_*.json artifacts emitted by the bench binaries.

Every bench that writes a JSON document carries one or more *gate*
fields — the booleans its own exit code is derived from — plus numeric
results CI archives. A refactor that breaks a JsonWriter call site (or
a gate that silently becomes NaN through a zero-division) should fail
the smoke job even when the binary's exit code still reads 0, so this
checker re-validates the artifacts from the outside:

  * the file parses as strict JSON (no NaN/Infinity literals anywhere);
  * the document's "bench" field selects a known schema;
  * every gate field for that schema is present, bool-typed and true;
  * every required field path exists and numeric leaves are finite.

A second mode compares two runs of the same bench (the regression-diff
rules shared with ssla_analyze --diff):

  * a gate that was true in the old run and false in the new one is a
    regression (fatal);
  * a path present in the old run but missing from the new one is fatal
    (schemas only grow);
  * a numeric value whose relative delta exceeds --max-delta percent
    (default 25) is reported but not fatal — benches are noisy;
  * array length changes and new-only fields are informational.

Usage: check_bench.py FILE [FILE...]
       check_bench.py --diff OLD.json NEW.json [--max-delta PCT]
Exit status: 0 when every artifact passes, 1 otherwise.
"""

import json
import math
import sys

# Per-bench schema: gate fields must be present, bool and True; the
# required paths must merely exist (with finite numeric leaves). A path
# component of "*" fans out over every element of a list, which must be
# non-empty.
SCHEMAS = {
    "engine_pipeline": {
        "gates": ["all_wire_identical", "overlap_win_demonstrated"],
        "required": [
            "cycle_hz",
            "results.*.cpu_ratio",
            "results.*.scalar.cpu_cycles_per_byte",
            "results.*.pipelined.cpu_cycles_per_byte",
        ],
    },
    "serve_scale": {
        "gates": ["all_completed"],
        "required": [
            "results.*.full_handshakes",
            "results.*.elapsed_sec",
            "results.*.bulk_mb_per_sec",
            "metrics_overhead.overhead_ratio",
        ],
    },
    "serve_degradation": {
        "gates": ["all_accounted", "clean_baseline_ok"],
        # The results array mixes per-rate cells with per-mode summary
        # rows (monotone_goodput), so only the shared key is required.
        "required": [
            "results.*.pool_mode",
        ],
    },
    "kx_matrix": {
        # The kx bench gates via its exit code on wire identity per
        # cell; the artifact exposes the per-cell flag.
        "gates": [],
        "required": [
            "cells.*.wire_identical",
            "cells.*.layers_kc.total",
        ],
    },
    "bn_backend": {
        "gates": [
            "gate.pass",
            "gate.rsa_identical",
            "gate.dh_identical",
            "gate.modexp_identical",
            "gate.bn64_faster",
        ],
        "required": [
            "cycle_hz",
            "modexp.*.bits",
            "modexp.*.bn32_ms",
            "modexp.*.bn64_ms",
            "modexp.*.speedup",
            "profiles.*.backend",
            "profiles.*.rows.*.function",
            "profiles.*.rows.*.pct",
        ],
    },
    "serve_overload": {
        "gates": [
            "gate.pass",
            "gate.adaptive_goodput_wins",
            "gate.no_hung_sessions",
            "gate.all_accounted",
        ],
        "required": [
            "rsa_op_ms",
            "abandon_ms",
            "results.*.policy",
            "results.*.goodput_per_sec",
            "results.*.goodput_fraction",
            "results.*.hs_p99_us",
            "results.*.wasted_work_fraction",
            "chaos.*.thread_restarts",
            "chaos.*.hung_sessions",
        ],
    },
    "serve_throughput": {
        "gates": [
            "gate.pass",
            "gate.wire_identical",
            "gate.steady_state_zero",
            "gate.engine_completed",
        ],
        "required": [
            "results.*.record_layer.records_per_sec",
            "results.*.record_layer.mb_per_sec",
            "results.*.serve_engine.records_per_sec_per_worker",
            "results.*.serve_engine.mb_per_sec_per_worker",
            "steady_state.*.scratch_grows",
            "steady_state.*.pending_spills",
            "wire_identity.*.identical",
        ],
    },
}


def resolve(doc, path):
    """Yield every value at dotted @p path, fanning out over '*'."""
    nodes = [doc]
    for part in path.split("."):
        nxt = []
        for node in nodes:
            if part == "*":
                if not isinstance(node, list) or not node:
                    raise KeyError(f"{path}: expected non-empty list")
                nxt.extend(node)
            else:
                if not isinstance(node, dict) or part not in node:
                    raise KeyError(f"{path}: missing '{part}'")
                nxt.append(node[part])
        nodes = nxt
    return nodes


def reject_nonfinite(value, where):
    if isinstance(value, float) and not math.isfinite(value):
        raise ValueError(f"{where}: non-finite number {value!r}")


def check_file(path):
    errors = []
    try:
        with open(path) as fh:
            # Strict parse: the C++ JsonWriter must never have emitted
            # a bare nan/inf token (json would accept NaN by default).
            doc = json.load(
                fh,
                parse_constant=lambda c: (_ for _ in ()).throw(
                    ValueError(f"non-finite literal {c}")
                ),
            )
    except (OSError, ValueError) as e:
        return [f"{path}: unreadable or invalid JSON: {e}"]

    bench = doc.get("bench")
    schema = SCHEMAS.get(bench)
    if schema is None:
        return [f"{path}: unknown bench id {bench!r}"]

    for gate in schema["gates"]:
        try:
            values = resolve(doc, gate)
        except KeyError as e:
            errors.append(f"{path}: gate {e}")
            continue
        for v in values:
            if not isinstance(v, bool):
                errors.append(
                    f"{path}: gate {gate} is {type(v).__name__}, "
                    "expected bool"
                )
            elif not v:
                errors.append(f"{path}: gate {gate} is false")

    for req in schema["required"]:
        try:
            for v in resolve(doc, req):
                reject_nonfinite(v, f"{path}: {req}")
        except (KeyError, ValueError) as e:
            errors.append(f"{path}: {e}")

    return errors


def diff_values(path, old, new, max_delta, lines):
    """Walk old/new in parallel; return (fatal, reported) counts."""
    fatal = reported = 0
    # bool before int/float: bool is an int subclass in Python.
    if isinstance(old, bool):
        if not isinstance(new, bool):
            reported += 1
            lines.append(f"CHANGED {path}: bool -> {type(new).__name__}")
        elif old and not new:
            fatal += 1
            lines.append(f"GATE REGRESSION {path}: true -> false")
        elif new and not old:
            reported += 1
            lines.append(f"improved {path}: false -> true")
    elif isinstance(old, (int, float)):
        if not isinstance(new, (int, float)) or isinstance(new, bool):
            reported += 1
            lines.append(
                f"CHANGED {path}: number -> {type(new).__name__}"
            )
        elif old != new:
            delta = (
                100.0 * (new - old) / abs(old) if old != 0
                else math.inf * (1 if new > 0 else -1)
            )
            if abs(delta) > max_delta:
                reported += 1
                lines.append(
                    f"DELTA {path}: {old} -> {new} ({delta:+.1f}%)"
                )
    elif isinstance(old, str):
        if old != new:
            reported += 1
            lines.append(f"changed {path}: {old!r} -> {new!r}")
    elif isinstance(old, list):
        if not isinstance(new, list):
            reported += 1
            lines.append(f"CHANGED {path}: list -> {type(new).__name__}")
            return fatal, reported
        if len(old) != len(new):
            reported += 1
            lines.append(
                f"length {path}: {len(old)} -> {len(new)} "
                "(comparing common prefix)"
            )
        for i in range(min(len(old), len(new))):
            f, r = diff_values(
                f"{path}[{i}]", old[i], new[i], max_delta, lines
            )
            fatal += f
            reported += r
    elif isinstance(old, dict):
        if not isinstance(new, dict):
            reported += 1
            lines.append(f"CHANGED {path}: dict -> {type(new).__name__}")
            return fatal, reported
        for key, val in old.items():
            sub = f"{path}.{key}" if path else key
            if key not in new:
                fatal += 1
                lines.append(
                    f"MISSING {sub}: present in old run, absent in new"
                )
                continue
            f, r = diff_values(sub, val, new[key], max_delta, lines)
            fatal += f
            reported += r
        for key in new:
            if key not in old:
                reported += 1
                lines.append(f"new field {path or '(root)'}.{key}")
    return fatal, reported


def diff_files(old_path, new_path, max_delta):
    try:
        with open(old_path) as fh:
            old = json.load(fh)
        with open(new_path) as fh:
            new = json.load(fh)
    except (OSError, ValueError) as e:
        print(f"FAIL unreadable or invalid JSON: {e}", file=sys.stderr)
        return 1
    lines = []
    fatal, reported = diff_values("", old, new, max_delta, lines)
    for line in lines:
        print(f"  {line}")
    verdict = "FAIL" if fatal else "OK"
    print(
        f"{verdict} diff {old_path} -> {new_path}: "
        f"fatal={fatal} reported={reported} threshold={max_delta:.1f}%"
    )
    return 1 if fatal else 0


def main(argv):
    if len(argv) >= 2 and argv[1] == "--diff":
        args = argv[2:]
        max_delta = 25.0
        if "--max-delta" in args:
            i = args.index("--max-delta")
            if i + 1 >= len(args):
                print("--max-delta needs a value", file=sys.stderr)
                return 2
            max_delta = float(args[i + 1])
            del args[i : i + 2]
        if len(args) != 2:
            print(__doc__.strip(), file=sys.stderr)
            return 2
        return diff_files(args[0], args[1], max_delta)
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failed = False
    for path in argv[1:]:
        errors = check_file(path)
        if errors:
            failed = True
            for e in errors:
                print(f"FAIL {e}", file=sys.stderr)
        else:
            print(f"OK   {path}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

/**
 * @file
 * Simulated HTTPS server under two contrasting workloads from the
 * paper's motivation: many small banking-style transactions
 * (handshake-dominated) versus few large B2B transfers
 * (bulk-encryption-dominated), with and without session resumption.
 *
 *   ./https_workload
 */

#include <cstdio>

#include "perf/report.hh"
#include "web/httpsim.hh"

using namespace ssla;
using namespace ssla::web;

namespace
{

void
report(const char *name, const TransactionStats &s)
{
    double total = s.total();
    std::printf(
        "%-28s %4llu tx  %7.2f Mcyc/tx  crypto %5.1f%%  "
        "(pub %4.1f%% priv %4.1f%% hash %4.1f%%)  resumed %llu\n",
        name, static_cast<unsigned long long>(s.transactions),
        total / s.transactions / 1e6,
        100.0 * s.cryptoTotal / total,
        100.0 * s.cryptoPublic / total,
        100.0 * s.cryptoPrivate / total,
        100.0 * s.cryptoHash / total,
        static_cast<unsigned long long>(s.resumedHandshakes));
}

} // anonymous namespace

int
main()
{
    std::printf("setting up simulated HTTPS server "
                "(RSA-1024, DES-CBC3-SHA)...\n\n");
    WebSimConfig cfg;
    WebSimulator sim(cfg);
    sim.runTransaction(1024); // warm-up

    // Banking: 1KB pages, every request a fresh session.
    report("banking, no resumption",
           sim.runWorkload(25, 1024, 0.0));
    // Banking with a session cache doing its job.
    report("banking, 80% resumption",
           sim.runWorkload(25, 1024, 0.8));
    // B2B bulk: 64KB transfers.
    report("B2B bulk 64KB, no resumption",
           sim.runWorkload(8, 64 * 1024, 0.0));
    report("B2B bulk 64KB, 80% resumption",
           sim.runWorkload(8, 64 * 1024, 0.8));

    std::printf(
        "\nThe paper's conclusion in action: small transfers are "
        "dominated by the RSA handshake (fix: resumption), while "
        "beyond ~32KB the bulk cipher becomes the target "
        "(fix: faster symmetric crypto).\n");

    // Keep-alive: one handshake amortized over a whole session.
    std::printf("\nkeep-alive sessions (8 requests each):\n");
    report("keep-alive, 1KB requests", sim.runSession(8, 1024));
    report("keep-alive, 16KB requests", sim.runSession(8, 16 * 1024));

    // Crossover sweep: where does bulk overtake the handshake?
    perf::TablePrinter table(
        "Crossover: public-key vs private-key share of crypto time "
        "(full handshake per request)");
    table.setHeader({"page size", "public %", "private %", "hash %"});
    for (size_t kb : {1, 4, 16, 32, 64, 128, 256}) {
        TransactionStats s = sim.runWorkload(4, kb * 1024, 0.0);
        double c = static_cast<double>(s.cryptoTotal);
        table.addRow({perf::fmt("%zuKB", kb),
                      perf::fmtPct(100.0 * s.cryptoPublic / c),
                      perf::fmtPct(100.0 * s.cryptoPrivate / c),
                      perf::fmtPct(100.0 * s.cryptoHash / c)});
    }
    table.print();
    return 0;
}

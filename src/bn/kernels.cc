#include "bn/kernels.hh"

#include "perf/probe.hh"

namespace ssla::bn
{

namespace
{
perf::NullMeter nullMeter;
} // anonymous namespace

Limb
bn_mul_add_words(Limb *r, const Limb *a, size_t n, Limb w)
{
    perf::FuncProbe probe("bn_mul_add_words", perf::ProbeLevel::Fine);
    return bnMulAddWordsT(r, a, n, w, nullMeter);
}

Limb
bn_mul_words(Limb *r, const Limb *a, size_t n, Limb w)
{
    perf::FuncProbe probe("bn_mul_words", perf::ProbeLevel::Fine);
    return bnMulWordsT(r, a, n, w, nullMeter);
}

Limb
bn_add_words(Limb *r, const Limb *a, const Limb *b, size_t n)
{
    perf::FuncProbe probe("bn_add_words", perf::ProbeLevel::Fine);
    return bnAddWordsT(r, a, b, n, nullMeter);
}

Limb
bn_sub_words(Limb *r, const Limb *a, const Limb *b, size_t n)
{
    perf::FuncProbe probe("bn_sub_words", perf::ProbeLevel::Fine);
    return bnSubWordsT(r, a, b, n, nullMeter);
}

} // namespace ssla::bn

#include <iterator>
#include "bn/prime.hh"

#include <stdexcept>

#include "bn/modexp.hh"

namespace ssla::bn
{

namespace
{

/** Small primes for trial division before Miller-Rabin. */
const uint32_t smallPrimes[] = {
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
    67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137,
    139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
    211, 223, 227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277,
    281, 283, 293, 307, 311, 313, 317, 331, 337, 347, 349, 353, 359,
    367, 373, 379, 383, 389, 397, 401, 409, 419, 421, 431, 433, 439,
    443, 449, 457, 461, 463, 467, 479, 487, 491, 499, 503, 509, 521,
    523, 541, 547, 557, 563, 569, 571, 577, 587, 593, 599, 601, 607,
    613, 617, 619, 631, 641, 643, 647, 653, 659, 661, 673, 677, 683,
    691, 701, 709, 719, 727, 733, 739, 743, 751, 757, 761, 769, 773,
    787, 797, 809, 811, 821, 823, 827, 829, 839, 853, 857, 859, 863,
    877, 881, 883, 887, 907, 911, 919, 929, 937, 941, 947, 953, 967,
    971, 977, 983, 991, 997,
};

/** n mod d for a single-word divisor, without building a BigNum. */
uint32_t
modWord(const BigNum &n, uint32_t d)
{
    uint64_t rem = 0;
    const auto &limbs = n.limbs();
    for (size_t i = limbs.size(); i-- > 0;)
        rem = ((rem << limbBits) | limbs[i]) % d;
    return static_cast<uint32_t>(rem);
}

/** Miller-Rabin rounds for a ~2^-80 error bound, by candidate size. */
int
defaultRounds(size_t bits)
{
    if (bits >= 1300)
        return 2;
    if (bits >= 850)
        return 3;
    if (bits >= 650)
        return 4;
    if (bits >= 550)
        return 5;
    if (bits >= 450)
        return 6;
    if (bits >= 400)
        return 7;
    if (bits >= 350)
        return 8;
    if (bits >= 300)
        return 9;
    if (bits >= 250)
        return 12;
    if (bits >= 200)
        return 15;
    if (bits >= 150)
        return 18;
    return 27;
}

} // anonymous namespace

BigNum
randomBits(size_t bits, const RngFunc &rng)
{
    if (bits == 0)
        return BigNum();
    size_t nbytes = (bits + 7) / 8;
    Bytes buf(nbytes);
    rng(buf.data(), buf.size());
    // Mask excess bits, then force the top bit so the length is exact.
    unsigned top_bits = bits % 8 == 0 ? 8 : bits % 8;
    buf[0] &= static_cast<uint8_t>(0xff >> (8 - top_bits));
    buf[0] |= static_cast<uint8_t>(1 << (top_bits - 1));
    return BigNum::fromBytesBE(buf);
}

BigNum
randomBelow(const BigNum &bound, const RngFunc &rng)
{
    if (bound.isZero() || bound.isNegative())
        throw std::domain_error("randomBelow: bound must be positive");
    size_t bits = bound.bitLength();
    size_t nbytes = (bits + 7) / 8;
    unsigned top_bits = bits % 8 == 0 ? 8 : bits % 8;
    Bytes buf(nbytes);
    // Rejection sampling: mask to the bit length, retry while >= bound.
    for (;;) {
        rng(buf.data(), buf.size());
        buf[0] &= static_cast<uint8_t>(0xff >> (8 - top_bits));
        BigNum candidate = BigNum::fromBytesBE(buf);
        if (candidate < bound)
            return candidate;
    }
}

bool
passesTrialDivision(const BigNum &n)
{
    for (uint32_t p : smallPrimes) {
        if (n == BigNum(p))
            return true;
        if (modWord(n, p) == 0)
            return false;
    }
    return true;
}

bool
millerRabin(const BigNum &n, int rounds, const RngFunc &rng)
{
    if (n < BigNum(2))
        return false;
    if (n == BigNum(2) || n == BigNum(3))
        return true;
    if (!n.isOdd())
        return false;

    // n - 1 = d * 2^s with d odd.
    BigNum n_minus_1 = n - BigNum(1);
    size_t s = 0;
    while (!n_minus_1.testBit(s))
        ++s;
    BigNum d = n_minus_1.shiftRight(s);

    MontgomeryCtx ctx(n);
    BigNum two(2);
    BigNum n_minus_3 = n - BigNum(3);

    for (int r = 0; r < rounds; ++r) {
        // a uniform in [2, n-2].
        BigNum a = randomBelow(n_minus_3, rng) + two;
        BigNum x = modExpMont(a, d, ctx);
        if (x.isOne() || x == n_minus_1)
            continue;
        bool witness = true;
        for (size_t i = 1; i < s; ++i) {
            x = x.sqr().mod(n);
            if (x == n_minus_1) {
                witness = false;
                break;
            }
        }
        if (witness)
            return false;
    }
    return true;
}

bool
isProbablePrime(const BigNum &n, const RngFunc &rng)
{
    if (n < BigNum(2))
        return false;
    if (!passesTrialDivision(n))
        return false;
    if (n <= BigNum(smallPrimes[std::size(smallPrimes) - 1]))
        return true; // trial division was exhaustive for small n
    return millerRabin(n, defaultRounds(n.bitLength()), rng);
}

BigNum
generatePrime(size_t bits, const RngFunc &rng)
{
    if (bits < 16)
        throw std::domain_error("generatePrime: need at least 16 bits");
    for (;;) {
        BigNum candidate = randomBits(bits, rng);
        // Force the two top bits (RSA modulus length) and oddness.
        candidate.setBit(bits - 1);
        candidate.setBit(bits - 2);
        candidate.setBit(0);
        if (isProbablePrime(candidate, rng))
            return candidate;
    }
}

} // namespace ssla::bn


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/aes.cc" "src/crypto/CMakeFiles/ssla_crypto.dir/aes.cc.o" "gcc" "src/crypto/CMakeFiles/ssla_crypto.dir/aes.cc.o.d"
  "/root/repo/src/crypto/cipher.cc" "src/crypto/CMakeFiles/ssla_crypto.dir/cipher.cc.o" "gcc" "src/crypto/CMakeFiles/ssla_crypto.dir/cipher.cc.o.d"
  "/root/repo/src/crypto/des.cc" "src/crypto/CMakeFiles/ssla_crypto.dir/des.cc.o" "gcc" "src/crypto/CMakeFiles/ssla_crypto.dir/des.cc.o.d"
  "/root/repo/src/crypto/dh.cc" "src/crypto/CMakeFiles/ssla_crypto.dir/dh.cc.o" "gcc" "src/crypto/CMakeFiles/ssla_crypto.dir/dh.cc.o.d"
  "/root/repo/src/crypto/digest.cc" "src/crypto/CMakeFiles/ssla_crypto.dir/digest.cc.o" "gcc" "src/crypto/CMakeFiles/ssla_crypto.dir/digest.cc.o.d"
  "/root/repo/src/crypto/hmac.cc" "src/crypto/CMakeFiles/ssla_crypto.dir/hmac.cc.o" "gcc" "src/crypto/CMakeFiles/ssla_crypto.dir/hmac.cc.o.d"
  "/root/repo/src/crypto/md5.cc" "src/crypto/CMakeFiles/ssla_crypto.dir/md5.cc.o" "gcc" "src/crypto/CMakeFiles/ssla_crypto.dir/md5.cc.o.d"
  "/root/repo/src/crypto/pkcs1.cc" "src/crypto/CMakeFiles/ssla_crypto.dir/pkcs1.cc.o" "gcc" "src/crypto/CMakeFiles/ssla_crypto.dir/pkcs1.cc.o.d"
  "/root/repo/src/crypto/rand.cc" "src/crypto/CMakeFiles/ssla_crypto.dir/rand.cc.o" "gcc" "src/crypto/CMakeFiles/ssla_crypto.dir/rand.cc.o.d"
  "/root/repo/src/crypto/rc4.cc" "src/crypto/CMakeFiles/ssla_crypto.dir/rc4.cc.o" "gcc" "src/crypto/CMakeFiles/ssla_crypto.dir/rc4.cc.o.d"
  "/root/repo/src/crypto/rsa.cc" "src/crypto/CMakeFiles/ssla_crypto.dir/rsa.cc.o" "gcc" "src/crypto/CMakeFiles/ssla_crypto.dir/rsa.cc.o.d"
  "/root/repo/src/crypto/sha1.cc" "src/crypto/CMakeFiles/ssla_crypto.dir/sha1.cc.o" "gcc" "src/crypto/CMakeFiles/ssla_crypto.dir/sha1.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ssla_util.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/ssla_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/bn/CMakeFiles/ssla_bn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

#include "bn/bignum.hh"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "perf/probe.hh"

namespace ssla::bn
{

BigNum::BigNum(uint64_t v)
{
    if (v) {
        limbs_.push_back(static_cast<Limb>(v));
        if (v >> limbBits)
            limbs_.push_back(static_cast<Limb>(v >> limbBits));
    }
}

BigNum
BigNum::fromInt(int64_t v)
{
    if (v >= 0)
        return BigNum(static_cast<uint64_t>(v));
    BigNum n(static_cast<uint64_t>(-(v + 1)) + 1);
    n.neg_ = true;
    return n;
}

BigNum
BigNum::fromBytesBE(const uint8_t *data, size_t len)
{
    BigNum n;
    // Skip leading zero bytes.
    while (len && *data == 0) {
        ++data;
        --len;
    }
    size_t nlimbs = (len + 3) / 4;
    n.limbs_.assign(nlimbs, 0);
    for (size_t i = 0; i < len; ++i) {
        size_t byte_index = len - 1 - i; // position from LSB
        n.limbs_[byte_index / 4] |=
            static_cast<Limb>(data[i]) << (8 * (byte_index % 4));
    }
    n.normalize();
    return n;
}

BigNum
BigNum::fromBytesBE(const Bytes &data)
{
    return fromBytesBE(data.data(), data.size());
}

BigNum
BigNum::fromHex(std::string_view hex)
{
    bool neg = false;
    if (!hex.empty() && hex[0] == '-') {
        neg = true;
        hex.remove_prefix(1);
    }
    if (hex.empty())
        throw std::invalid_argument("BigNum::fromHex: empty input");
    BigNum n;
    n.limbs_.assign((hex.size() + 7) / 8, 0);
    size_t bitpos = 0;
    for (size_t i = 0; i < hex.size(); ++i) {
        char c = hex[hex.size() - 1 - i];
        Limb v;
        if (c >= '0' && c <= '9')
            v = c - '0';
        else if (c >= 'a' && c <= 'f')
            v = c - 'a' + 10;
        else if (c >= 'A' && c <= 'F')
            v = c - 'A' + 10;
        else
            throw std::invalid_argument("BigNum::fromHex: bad digit");
        n.limbs_[bitpos / limbBits] |= v << (bitpos % limbBits);
        bitpos += 4;
    }
    n.normalize();
    n.neg_ = neg && !n.limbs_.empty();
    return n;
}

BigNum
BigNum::fromDecimal(std::string_view dec)
{
    bool neg = false;
    if (!dec.empty() && dec[0] == '-') {
        neg = true;
        dec.remove_prefix(1);
    }
    if (dec.empty())
        throw std::invalid_argument("BigNum::fromDecimal: empty input");
    BigNum n;
    for (char c : dec) {
        if (c < '0' || c > '9')
            throw std::invalid_argument("BigNum::fromDecimal: bad digit");
        // n = n * 10 + digit, on raw limbs.
        Limb carry = static_cast<Limb>(c - '0');
        for (auto &limb : n.limbs_) {
            DLimb t = static_cast<DLimb>(limb) * 10 + carry;
            limb = static_cast<Limb>(t);
            carry = static_cast<Limb>(t >> limbBits);
        }
        if (carry)
            n.limbs_.push_back(carry);
    }
    n.normalize();
    n.neg_ = neg && !n.limbs_.empty();
    return n;
}

Bytes
BigNum::toBytesBE(size_t width) const
{
    size_t need = byteLength();
    size_t out_len = width ? width : need;
    if (need > out_len)
        throw std::length_error("BigNum::toBytesBE: value too wide");
    Bytes out(out_len, 0);
    for (size_t i = 0; i < need; ++i) {
        Limb limb = limbs_[i / 4];
        out[out_len - 1 - i] = static_cast<uint8_t>(limb >> (8 * (i % 4)));
    }
    return out;
}

std::string
BigNum::toHex() const
{
    if (isZero())
        return "0";
    static const char digits[] = "0123456789abcdef";
    std::string out;
    size_t nbits = bitLength();
    size_t ndigits = (nbits + 3) / 4;
    for (size_t i = 0; i < ndigits; ++i) {
        size_t pos = (ndigits - 1 - i) * 4;
        Limb limb = limbs_[pos / limbBits];
        out.push_back(digits[(limb >> (pos % limbBits)) & 0xf]);
    }
    if (neg_)
        out.insert(out.begin(), '-');
    return out;
}

std::string
BigNum::toDecimal() const
{
    if (isZero())
        return "0";
    std::vector<Limb> tmp = limbs_;
    std::string out;
    while (!tmp.empty()) {
        // tmp /= 10; remainder becomes the next digit.
        DLimb rem = 0;
        for (size_t i = tmp.size(); i-- > 0;) {
            DLimb cur = (rem << limbBits) | tmp[i];
            tmp[i] = static_cast<Limb>(cur / 10);
            rem = cur % 10;
        }
        while (!tmp.empty() && tmp.back() == 0)
            tmp.pop_back();
        out.push_back(static_cast<char>('0' + rem));
    }
    if (neg_)
        out.push_back('-');
    std::reverse(out.begin(), out.end());
    return out;
}

bool
BigNum::isOne() const
{
    return !neg_ && limbs_.size() == 1 && limbs_[0] == 1;
}

size_t
BigNum::bitLength() const
{
    if (limbs_.empty())
        return 0;
    return limbs_.size() * limbBits -
           std::countl_zero(limbs_.back());
}

bool
BigNum::testBit(size_t i) const
{
    size_t limb = i / limbBits;
    if (limb >= limbs_.size())
        return false;
    return (limbs_[limb] >> (i % limbBits)) & 1;
}

void
BigNum::setBit(size_t i)
{
    size_t limb = i / limbBits;
    if (limb >= limbs_.size())
        limbs_.resize(limb + 1, 0);
    limbs_[limb] |= Limb(1) << (i % limbBits);
}

void
BigNum::normalize()
{
    while (!limbs_.empty() && limbs_.back() == 0)
        limbs_.pop_back();
    if (limbs_.empty())
        neg_ = false;
}

int
BigNum::cmpAbsRaw(const std::vector<Limb> &a, const std::vector<Limb> &b)
{
    if (a.size() != b.size())
        return a.size() < b.size() ? -1 : 1;
    for (size_t i = a.size(); i-- > 0;) {
        if (a[i] != b[i])
            return a[i] < b[i] ? -1 : 1;
    }
    return 0;
}

int
BigNum::cmpAbs(const BigNum &other) const
{
    return cmpAbsRaw(limbs_, other.limbs_);
}

int
BigNum::cmp(const BigNum &other) const
{
    if (neg_ != other.neg_)
        return neg_ ? -1 : 1;
    int mag = cmpAbsRaw(limbs_, other.limbs_);
    return neg_ ? -mag : mag;
}

std::vector<Limb>
BigNum::addAbs(const std::vector<Limb> &a, const std::vector<Limb> &b)
{
    const auto &lo = a.size() >= b.size() ? b : a;
    const auto &hi = a.size() >= b.size() ? a : b;
    std::vector<Limb> r(hi.size() + 1, 0);
    Limb carry = bn_add_words(r.data(), hi.data(), lo.data(), lo.size());
    for (size_t i = lo.size(); i < hi.size(); ++i) {
        DLimb t = static_cast<DLimb>(hi[i]) + carry;
        r[i] = static_cast<Limb>(t);
        carry = static_cast<Limb>(t >> limbBits);
    }
    r[hi.size()] = carry;
    return r;
}

std::vector<Limb>
BigNum::subAbs(const std::vector<Limb> &a, const std::vector<Limb> &b)
{
    // Precondition: |a| >= |b| (OpenSSL's BN_usub).
    perf::FuncProbe probe("BN_usub", perf::ProbeLevel::Fine);
    std::vector<Limb> r(a.size(), 0);
    Limb borrow = bn_sub_words(r.data(), a.data(), b.data(), b.size());
    for (size_t i = b.size(); i < a.size(); ++i) {
        DLimb t = static_cast<DLimb>(a[i]) - borrow;
        r[i] = static_cast<Limb>(t);
        borrow = static_cast<Limb>((t >> limbBits) & 1);
    }
    return r;
}

BigNum
BigNum::operator+(const BigNum &o) const
{
    BigNum r;
    if (neg_ == o.neg_) {
        r.limbs_ = addAbs(limbs_, o.limbs_);
        r.neg_ = neg_;
    } else {
        int mag = cmpAbsRaw(limbs_, o.limbs_);
        if (mag == 0)
            return r; // zero
        if (mag > 0) {
            r.limbs_ = subAbs(limbs_, o.limbs_);
            r.neg_ = neg_;
        } else {
            r.limbs_ = subAbs(o.limbs_, limbs_);
            r.neg_ = o.neg_;
        }
    }
    r.normalize();
    return r;
}

BigNum
BigNum::operator-(const BigNum &o) const
{
    BigNum negated = o;
    if (!negated.isZero())
        negated.neg_ = !negated.neg_;
    return *this + negated;
}

BigNum
BigNum::operator-() const
{
    BigNum r = *this;
    if (!r.isZero())
        r.neg_ = !r.neg_;
    return r;
}

BigNum
BigNum::operator*(const BigNum &o) const
{
    BigNum r;
    if (isZero() || o.isZero())
        return r;
    r.limbs_.assign(limbs_.size() + o.limbs_.size(), 0);
    for (size_t i = 0; i < o.limbs_.size(); ++i) {
        Limb carry = bn_mul_add_words(r.limbs_.data() + i, limbs_.data(),
                                      limbs_.size(), o.limbs_[i]);
        r.limbs_[i + limbs_.size()] = carry;
    }
    r.neg_ = neg_ != o.neg_;
    r.normalize();
    return r;
}

BigNum
BigNum::sqr() const
{
    perf::FuncProbe probe("BN_sqr", perf::ProbeLevel::Fine);
    BigNum r;
    size_t n = limbs_.size();
    if (n == 0)
        return r;
    r.limbs_.assign(2 * n, 0);
    for (size_t i = 0; i < n; ++i) {
        // Position i+n is untouched by earlier iterations, so the carry
        // can be stored directly.
        r.limbs_[i + n] = bn_mul_add_words(r.limbs_.data() + i,
                                           limbs_.data(), n, limbs_[i]);
    }
    r.normalize();
    return r;
}

BigNum
BigNum::shiftLeft(size_t bits) const
{
    if (isZero() || bits == 0)
        return *this;
    size_t limb_shift = bits / limbBits;
    unsigned bit_shift = bits % limbBits;
    BigNum r;
    r.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
    for (size_t i = 0; i < limbs_.size(); ++i) {
        r.limbs_[i + limb_shift] |= limbs_[i] << bit_shift;
        if (bit_shift)
            r.limbs_[i + limb_shift + 1] =
                limbs_[i] >> (limbBits - bit_shift);
    }
    r.neg_ = neg_;
    r.normalize();
    return r;
}

BigNum
BigNum::shiftRight(size_t bits) const
{
    size_t limb_shift = bits / limbBits;
    unsigned bit_shift = bits % limbBits;
    BigNum r;
    if (limb_shift >= limbs_.size())
        return r;
    r.limbs_.assign(limbs_.size() - limb_shift, 0);
    for (size_t i = 0; i < r.limbs_.size(); ++i) {
        r.limbs_[i] = limbs_[i + limb_shift] >> bit_shift;
        if (bit_shift && i + limb_shift + 1 < limbs_.size())
            r.limbs_[i] |=
                limbs_[i + limb_shift + 1] << (limbBits - bit_shift);
    }
    r.neg_ = neg_;
    r.normalize();
    return r;
}

namespace
{

/** |a| / single-limb divisor; returns remainder. */
Limb
divModSingle(const std::vector<Limb> &a, Limb d, std::vector<Limb> &q)
{
    q.assign(a.size(), 0);
    DLimb rem = 0;
    for (size_t i = a.size(); i-- > 0;) {
        DLimb cur = (rem << limbBits) | a[i];
        q[i] = static_cast<Limb>(cur / d);
        rem = cur % d;
    }
    return static_cast<Limb>(rem);
}

/**
 * Knuth algorithm D over magnitudes: q = |a| / |b|, r = |a| mod |b|.
 * Requires |b| >= 2 limbs and |a| >= |b|.
 */
void
divModKnuth(const std::vector<Limb> &a, const std::vector<Limb> &b,
            std::vector<Limb> &q, std::vector<Limb> &r)
{
    size_t n = b.size();
    size_t m = a.size() - n;

    unsigned shift = std::countl_zero(b.back());

    // Normalized copies: u has one extra high limb.
    std::vector<Limb> u(a.size() + 1, 0);
    std::vector<Limb> v(n, 0);
    if (shift == 0) {
        std::copy(a.begin(), a.end(), u.begin());
        v = b;
    } else {
        for (size_t i = 0; i < a.size(); ++i) {
            u[i] |= a[i] << shift;
            u[i + 1] = a[i] >> (limbBits - shift);
        }
        for (size_t i = 0; i < n; ++i) {
            v[i] = b[i] << shift;
            if (i > 0)
                v[i] |= b[i - 1] >> (limbBits - shift);
        }
    }

    q.assign(m + 1, 0);
    const DLimb base = limbBase;

    for (size_t j = m + 1; j-- > 0;) {
        DLimb num = (static_cast<DLimb>(u[j + n]) << limbBits) |
                    u[j + n - 1];
        DLimb qhat = num / v[n - 1];
        DLimb rhat = num % v[n - 1];

        while (qhat >= base ||
               qhat * v[n - 2] >
                   ((rhat << limbBits) | u[j + n - 2])) {
            --qhat;
            rhat += v[n - 1];
            if (rhat >= base)
                break;
        }

        // u[j .. j+n] -= qhat * v.
        DLimb mul_carry = 0;
        DLimb borrow = 0;
        for (size_t i = 0; i < n; ++i) {
            DLimb p = qhat * v[i] + mul_carry;
            mul_carry = p >> limbBits;
            DLimb sub = static_cast<DLimb>(u[j + i]) -
                        static_cast<Limb>(p) - borrow;
            u[j + i] = static_cast<Limb>(sub);
            borrow = (sub >> limbBits) & 1;
        }
        DLimb sub = static_cast<DLimb>(u[j + n]) - mul_carry - borrow;
        u[j + n] = static_cast<Limb>(sub);

        if (sub >> 63) {
            // qhat was one too large; add v back.
            --qhat;
            Limb carry = 0;
            for (size_t i = 0; i < n; ++i) {
                DLimb t = static_cast<DLimb>(u[j + i]) + v[i] + carry;
                u[j + i] = static_cast<Limb>(t);
                carry = static_cast<Limb>(t >> limbBits);
            }
            u[j + n] += carry;
        }

        q[j] = static_cast<Limb>(qhat);
    }

    // Denormalize the remainder.
    r.assign(n, 0);
    if (shift == 0) {
        std::copy(u.begin(), u.begin() + n, r.begin());
    } else {
        for (size_t i = 0; i < n; ++i) {
            r[i] = u[i] >> shift;
            r[i] |= u[i + 1] << (limbBits - shift);
        }
    }
}

} // anonymous namespace

void
BigNum::divMod(const BigNum &a, const BigNum &b, BigNum &q, BigNum &r)
{
    perf::FuncProbe probe("BN_div", perf::ProbeLevel::Fine);
    if (b.isZero())
        throw std::domain_error("BigNum: division by zero");

    int mag = cmpAbsRaw(a.limbs_, b.limbs_);
    if (mag < 0) {
        r = a;
        q = BigNum();
        return;
    }

    BigNum quot, rem;
    if (b.limbs_.size() == 1) {
        Limb rem_word = divModSingle(a.limbs_, b.limbs_[0], quot.limbs_);
        rem = BigNum(rem_word);
    } else {
        divModKnuth(a.limbs_, b.limbs_, quot.limbs_, rem.limbs_);
    }
    quot.normalize();
    rem.normalize();

    quot.neg_ = (a.neg_ != b.neg_) && !quot.isZero();
    rem.neg_ = a.neg_ && !rem.isZero();
    q = std::move(quot);
    r = std::move(rem);
}

BigNum
BigNum::operator/(const BigNum &o) const
{
    BigNum q, r;
    divMod(*this, o, q, r);
    return q;
}

BigNum
BigNum::operator%(const BigNum &o) const
{
    BigNum q, r;
    divMod(*this, o, q, r);
    return r;
}

BigNum
BigNum::mod(const BigNum &m) const
{
    if (m.isZero() || m.neg_)
        throw std::domain_error("BigNum::mod: modulus must be positive");
    BigNum r = *this % m;
    if (r.neg_)
        r = r + m;
    return r;
}

BigNum
BigNum::modAdd(const BigNum &a, const BigNum &b, const BigNum &m)
{
    BigNum s = a + b;
    if (s.cmpAbs(m) >= 0 || s.neg_)
        s = s.mod(m);
    return s;
}

BigNum
BigNum::modSub(const BigNum &a, const BigNum &b, const BigNum &m)
{
    BigNum s = a - b;
    if (s.neg_ || s.cmpAbs(m) >= 0)
        s = s.mod(m);
    return s;
}

BigNum
BigNum::modMul(const BigNum &a, const BigNum &b, const BigNum &m)
{
    return (a * b).mod(m);
}

BigNum
BigNum::gcd(const BigNum &a, const BigNum &b)
{
    BigNum x = a;
    BigNum y = b;
    x.neg_ = false;
    y.neg_ = false;
    while (!y.isZero()) {
        BigNum r = x % y;
        x = std::move(y);
        y = std::move(r);
    }
    return x;
}

BigNum
BigNum::modInverse(const BigNum &a, const BigNum &m)
{
    if (m.isZero() || m.neg_)
        throw std::domain_error("modInverse: modulus must be positive");
    // Extended Euclid on (m, a mod m).
    BigNum r0 = m;
    BigNum r1 = a.mod(m);
    BigNum s0 = 0;
    BigNum s1 = 1;
    while (!r1.isZero()) {
        BigNum q, r;
        divMod(r0, r1, q, r);
        r0 = std::move(r1);
        r1 = std::move(r);
        BigNum s_next = s0 - q * s1;
        s0 = std::move(s1);
        s1 = std::move(s_next);
    }
    if (!r0.isOne())
        throw std::domain_error("modInverse: not invertible");
    return s0.mod(m);
}

BigNum
BigNum::fromLimbs(std::vector<Limb> limbs, bool negative)
{
    BigNum n;
    n.limbs_ = std::move(limbs);
    n.neg_ = negative;
    n.normalize();
    return n;
}

} // namespace ssla::bn

#include "util/hex.hh"

#include <cctype>
#include <stdexcept>

namespace ssla
{

namespace
{

const char hexDigits[] = "0123456789abcdef";

int
nibble(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    if (c >= 'A' && c <= 'F')
        return c - 'A' + 10;
    return -1;
}

} // anonymous namespace

std::string
hexEncode(const uint8_t *data, size_t len)
{
    std::string out;
    out.reserve(len * 2);
    for (size_t i = 0; i < len; ++i) {
        out.push_back(hexDigits[data[i] >> 4]);
        out.push_back(hexDigits[data[i] & 0x0f]);
    }
    return out;
}

std::string
hexEncode(const Bytes &data)
{
    return hexEncode(data.data(), data.size());
}

Bytes
hexDecode(std::string_view hex)
{
    Bytes out;
    out.reserve(hex.size() / 2);
    int hi = -1;
    for (char c : hex) {
        if (std::isspace(static_cast<unsigned char>(c)))
            continue;
        int v = nibble(c);
        if (v < 0)
            throw std::invalid_argument("hexDecode: non-hex character");
        if (hi < 0) {
            hi = v;
        } else {
            out.push_back(static_cast<uint8_t>((hi << 4) | v));
            hi = -1;
        }
    }
    if (hi >= 0)
        throw std::invalid_argument("hexDecode: odd number of digits");
    return out;
}

} // namespace ssla

# Empty dependencies file for bench_table6_des.
# This may be replaced when dependencies are built.

#include "crypto/rsa.hh"

#include <stdexcept>

#include "bn/modexp.hh"
#include "crypto/pkcs1.hh"
#include "obs/metrics.hh"
#include "perf/probe.hh"
#include "util/bytes.hh"

namespace ssla::crypto
{

using bn::BigNum;

RsaPrivateKey::RsaPrivateKey(BigNum n, BigNum e, BigNum d, BigNum p,
                             BigNum q, const bn::Engine *engine)
    : engine_(engine ? engine : &bn::activeEngine()), d_(std::move(d)),
      p_(std::move(p)), q_(std::move(q))
{
    pub_.n = std::move(n);
    pub_.e = std::move(e);

    if (p_ * q_ != pub_.n)
        throw std::invalid_argument("RsaPrivateKey: n != p*q");

    BigNum p1 = p_ - BigNum(1);
    BigNum q1 = q_ - BigNum(1);
    dp_ = d_.mod(p1);
    dq_ = d_.mod(q1);
    qinv_ = BigNum::modInverse(q_, p_);

    montN_ = std::make_unique<bn::MontgomeryCtx>(pub_.n, engine_);
    montP_ = std::make_unique<bn::MontgomeryCtx>(p_, engine_);
    montQ_ = std::make_unique<bn::MontgomeryCtx>(q_, engine_);

    static obs::Counter keys32 =
        obs::MetricsRegistry::global().counter("bn.keys.bn32");
    static obs::Counter keys64 =
        obs::MetricsRegistry::global().counter("bn.keys.bn64");
    (engine_->backend() == bn::BnBackend::Bn64 ? keys64 : keys32).inc();
}

void
RsaPrivateKey::refreshBlinding() const
{
    // Fresh r with gcd(r, n) == 1; for RSA moduli any r in (1, n) that
    // is not a multiple of p or q works, which random values are not.
    bn::RngFunc rng = [this](uint8_t *out, size_t len) {
        blindPool_.generate(out, len);
    };
    BigNum r = bn::randomBelow(pub_.n - BigNum(2), rng) + BigNum(2);
    blindFactor_ = bn::modExpMont(r, pub_.e, *montN_);
    unblindFactor_ = BigNum::modInverse(r, pub_.n);
    blindUses_ = 0;
}

BigNum
RsaPrivateKey::privateRaw(const BigNum &c, bool use_blinding) const
{
    if (c.isNegative() || c.cmpAbs(pub_.n) >= 0)
        throw std::domain_error("RSA: input out of range");

    BigNum input = c;

    // Step 3 of Table 7: blinding (defence against the remote timing
    // attack the paper cites [3]).
    if (use_blinding) {
        perf::FuncProbe probe("blinding");
        if (blindUses_ == 0 || blindUses_ >= 32)
            refreshBlinding();
        input = montN_->fromMont(
            montN_->mul(montN_->toMont(input),
                        montN_->toMont(blindFactor_)));
    }

    // Step 4: the computation itself, via CRT.
    BigNum m;
    {
        perf::FuncProbe probe("rsa_computation");
        BigNum m1 = bn::modExpMont(input.mod(p_), dp_, *montP_);
        BigNum m2 = bn::modExpMont(input.mod(q_), dq_, *montQ_);
        BigNum h = BigNum::modMul(qinv_, BigNum::modSub(m1, m2, p_), p_);
        m = m2 + q_ * h;
    }

    if (use_blinding) {
        perf::FuncProbe probe("blinding");
        m = BigNum::modMul(m, unblindFactor_, pub_.n);
        // Advance the pair so successive operations stay unlinkable.
        blindFactor_ = BigNum::modMul(blindFactor_, blindFactor_, pub_.n);
        unblindFactor_ =
            BigNum::modMul(unblindFactor_, unblindFactor_, pub_.n);
        ++blindUses_;
    }
    return m;
}

RsaKeyPair
rsaGenerateKey(size_t bits, const bn::RngFunc &rng, uint64_t e)
{
    if (bits < 128)
        throw std::invalid_argument("rsaGenerateKey: modulus too small");
    BigNum pub_e(e);
    if (!pub_e.isOdd() || pub_e <= BigNum(1))
        throw std::invalid_argument("rsaGenerateKey: e must be odd > 1");

    size_t p_bits = (bits + 1) / 2;
    size_t q_bits = bits - p_bits;

    for (;;) {
        BigNum p = bn::generatePrime(p_bits, rng);
        BigNum q = bn::generatePrime(q_bits, rng);
        if (p == q)
            continue;
        BigNum n = p * q;
        if (n.bitLength() != bits)
            continue;
        BigNum phi = (p - BigNum(1)) * (q - BigNum(1));
        if (!BigNum::gcd(pub_e, phi).isOne())
            continue;
        BigNum d = BigNum::modInverse(pub_e, phi);

        RsaKeyPair pair;
        pair.priv = std::make_shared<RsaPrivateKey>(n, pub_e, d, p, q);
        pair.pub = pair.priv->publicKey();
        return pair;
    }
}

BigNum
rsaPublicRaw(const RsaPublicKey &key, const BigNum &m)
{
    if (m.isNegative() || m.cmpAbs(key.n) >= 0)
        throw std::domain_error("RSA: input out of range");
    return bn::modExp(m, key.e, key.n);
}

Bytes
rsaPublicEncrypt(const RsaPublicKey &key, const Bytes &data,
                 RandomPool &pool)
{
    Bytes block = pkcs1PadType2(data, key.blockLen(), pool);
    BigNum m = BigNum::fromBytesBE(block);
    BigNum c = rsaPublicRaw(key, m);
    return c.toBytesBE(key.blockLen());
}

Bytes
rsaPrivateDecrypt(const RsaPrivateKey &key, const Bytes &cipher)
{
    perf::FuncProbe whole("rsa_private_decryption");

    // Step 1: initialization.
    Bytes block;
    {
        perf::FuncProbe probe("rsa_init");
        if (cipher.size() != key.blockLen())
            throw std::invalid_argument("RSA decrypt: bad input length");
        block.reserve(key.blockLen());
    }

    // Step 2: octet string -> big number.
    BigNum c;
    {
        perf::FuncProbe probe("data_to_bn");
        c = BigNum::fromBytesBE(cipher);
    }

    // Steps 3 + 4 are probed inside privateRaw().
    BigNum m = key.privateRaw(c);

    // Step 5: big number -> octet string.
    {
        perf::FuncProbe probe("bn_to_data");
        block = m.toBytesBE(key.blockLen());
    }

    // Step 6: strip the PKCS#1 type-2 padding.
    Bytes out;
    {
        perf::FuncProbe probe("block_parsing");
        out = pkcs1UnpadType2(block);
    }
    // Key-material hygiene (OPENSSL_cleanse in the paper's profile).
    secureWipe(block);
    return out;
}

Bytes
rsaSign(const RsaPrivateKey &key, const Bytes &digest_data)
{
    perf::FuncProbe whole("rsa_private_encryption");
    Bytes block = pkcs1PadType1(digest_data, key.blockLen());
    BigNum m = BigNum::fromBytesBE(block);
    BigNum s = key.privateRaw(m);
    return s.toBytesBE(key.blockLen());
}

bool
rsaVerify(const RsaPublicKey &key, const Bytes &digest_data,
          const Bytes &signature)
{
    if (signature.size() != key.blockLen())
        return false;
    BigNum s = BigNum::fromBytesBE(signature);
    if (s.cmpAbs(key.n) >= 0)
        return false;
    BigNum m = rsaPublicRaw(key, s);
    Bytes block = m.toBytesBE(key.blockLen());
    try {
        Bytes recovered = pkcs1UnpadType1(block);
        return constantTimeEquals(recovered, digest_data);
    } catch (const std::runtime_error &) {
        return false;
    }
}

} // namespace ssla::crypto

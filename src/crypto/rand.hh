/**
 * @file
 * MD5-chained pseudo-random byte pool — the md_rand analogue behind the
 * paper's "rand_pseudo_bytes" entries in Table 2 and the "other
 * functions (random number generation, etc.)" row of Table 3.
 *
 * Generation really runs the MD5 compression function, so the random
 * number generation cost that shows up in the handshake anatomy is the
 * genuine article, not a stub.
 */

#ifndef SSLA_CRYPTO_RAND_HH
#define SSLA_CRYPTO_RAND_HH

#include "crypto/md5.hh"
#include "util/types.hh"

namespace ssla::crypto
{

/** A seedable MD5-based pseudo-random generator. */
class RandomPool
{
  public:
    /** Construct with a default process-local seed. */
    RandomPool();

    /** Construct with explicit seed material (deterministic). */
    explicit RandomPool(const Bytes &seed);

    /** Mix additional entropy into the pool. */
    void seed(const Bytes &data);
    void seed(const uint8_t *data, size_t len);

    /** Fill @p out with @p len pseudo-random bytes (probed). */
    void generate(uint8_t *out, size_t len);

    /** Produce @p len pseudo-random bytes. */
    Bytes bytes(size_t len);

  private:
    /** Turn the crank: state <- MD5(state || counter). */
    void stir();

    uint8_t state_[Md5::outputSize];
    uint64_t counter_ = 0;
    uint8_t buffer_[Md5::outputSize]; ///< unconsumed output bytes
    size_t available_ = 0;
};

/**
 * The default pool SSL contexts fall back to — one instance per
 * thread (thread_local), so concurrent connections never contend or
 * race on generator state. A RandomPool itself is not thread-safe;
 * share threads' work, not pools.
 */
RandomPool &globalRandomPool();

/**
 * OpenSSL-style convenience: fill @p out from the global pool. The
 * name matches the paper's Table 2 crypto-function column.
 */
void randPseudoBytes(uint8_t *out, size_t len);

} // namespace ssla::crypto

#endif // SSLA_CRYPTO_RAND_HH

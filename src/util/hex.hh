/**
 * @file
 * Hexadecimal encoding/decoding of byte buffers.
 */

#ifndef SSLA_UTIL_HEX_HH
#define SSLA_UTIL_HEX_HH

#include <string>
#include <string_view>

#include "util/types.hh"

namespace ssla
{

/** Encode @p data as a lower-case hex string. */
std::string hexEncode(const uint8_t *data, size_t len);

/** Encode @p data as a lower-case hex string. */
std::string hexEncode(const Bytes &data);

/**
 * Decode a hex string into bytes.
 *
 * Whitespace is permitted and skipped; an odd number of hex digits or a
 * non-hex character throws std::invalid_argument.
 */
Bytes hexDecode(std::string_view hex);

} // namespace ssla

#endif // SSLA_UTIL_HEX_HH

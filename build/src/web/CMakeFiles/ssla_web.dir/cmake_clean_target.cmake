file(REMOVE_RECURSE
  "libssla_web.a"
)

/**
 * @file
 * The running MD5+SHA-1 hashes over all handshake messages.
 *
 * As the paper explains (Section 4.2), OpenSSL updates these two
 * hashes whenever a handshake message is sent or received — which is
 * why "finish_mac" appears in almost every step of Table 2 — and
 * finalizes them with the 'CLNT'/'SRVR' sender labels for the finished
 * messages. The probes here use the paper's function names.
 */

#ifndef SSLA_SSL_HANDSHAKE_HASH_HH
#define SSLA_SSL_HANDSHAKE_HASH_HH

#include "crypto/md5.hh"
#include "crypto/sha1.hh"
#include "util/types.hh"

namespace ssla::ssl
{

/** Finished-message sender labels (RFC 6101: 0x434C4E54 / 0x53525652). */
enum class FinishedSender : uint32_t
{
    Client = 0x434c4e54, ///< 'CLNT'
    Server = 0x53525652, ///< 'SRVR'
};

/** Tracks the two digests over the handshake transcript. */
class HandshakeHash
{
  public:
    /** Initialize fresh digests (probed as init_finished_mac). */
    HandshakeHash();

    /** Absorb one handshake message (probed as finish_mac). */
    void update(const Bytes &message);
    void update(const uint8_t *data, size_t len);

    /**
     * Compute the 36-byte SSLv3 finished hash for @p sender over the
     * transcript so far (probed as final_finish_mac). The running
     * digests are snapshot-cloned, not consumed.
     */
    Bytes finishedHash(const Bytes &master, FinishedSender sender) const;

    /**
     * The certificate-verify variant (no sender label); probed as
     * cert_verify_mac. Unused by the server-auth-only handshake but
     * part of the SSLv3 surface.
     */
    Bytes certVerifyHash(const Bytes &master) const;

    /**
     * The TLS 1.0 finished hash: PRF(master, "client finished" /
     * "server finished", MD5(transcript)||SHA1(transcript), 12).
     * Probed as final_finish_mac like the SSLv3 form.
     */
    Bytes tlsFinishedHash(const Bytes &master,
                          FinishedSender sender) const;

    /** Version-dispatching finished hash. */
    Bytes finishedHash(uint16_t version, const Bytes &master,
                       FinishedSender sender) const;

    /**
     * TLS 1.0 CertificateVerify digest: MD5(transcript)||SHA1(transcript)
     * with no master-secret involvement (RFC 2246 7.4.8).
     */
    Bytes tlsCertVerifyHash() const;

    /** Version-dispatching CertificateVerify digest. */
    Bytes certVerifyHash(uint16_t version, const Bytes &master) const;

  private:
    Bytes pairHash(const Bytes &master, const Bytes &sender_bytes) const;

    crypto::Md5 md5_;
    crypto::Sha1 sha1_;
};

} // namespace ssla::ssl

#endif // SSLA_SSL_HANDSHAKE_HASH_HH

/**
 * @file
 * Uniform interface over the hash functions the paper studies
 * (MD5, SHA-1) plus a small registry, mirroring OpenSSL's EVP digests.
 */

#ifndef SSLA_CRYPTO_DIGEST_HH
#define SSLA_CRYPTO_DIGEST_HH

#include <memory>
#include <string_view>

#include "util/types.hh"

namespace ssla::crypto
{

/** Identifiers for the implemented hash algorithms. */
enum class DigestAlg
{
    MD5,
    SHA1,
};

/**
 * An incremental hash computation.
 *
 * The three-phase init/update/final structure is exactly what the
 * paper's Table 10 decomposes; update() is where the per-64-byte block
 * operation lives.
 */
class Digest
{
  public:
    virtual ~Digest() = default;

    /** Reset to the initial state (phase 1 of Table 10). */
    virtual void init() = 0;

    /** Absorb @p len bytes (phase 2). */
    virtual void update(const uint8_t *data, size_t len) = 0;

    /** Pad, absorb the length and emit the digest (phase 3). */
    virtual void final(uint8_t *out) = 0;

    /** Digest size in bytes (16 for MD5, 20 for SHA-1). */
    virtual size_t digestSize() const = 0;

    /** Internal block size in bytes (64 for both). */
    virtual size_t blockSize() const = 0;

    virtual const char *name() const = 0;

    /**
     * Deep-copy the running state. SSLv3 finish hashes need this: the
     * handshake digests keep running while snapshots get finalized.
     */
    virtual std::unique_ptr<Digest> clone() const = 0;

    // Convenience non-virtual helpers.

    void update(const Bytes &data) { update(data.data(), data.size()); }
    void update(std::string_view s)
    {
        update(reinterpret_cast<const uint8_t *>(s.data()), s.size());
    }

    /** final() into a fresh buffer. */
    Bytes final();

    /** Create a digest instance by algorithm id. */
    static std::unique_ptr<Digest> create(DigestAlg alg);

    /** Size of @p alg 's output without instantiating it. */
    static size_t digestSize(DigestAlg alg);
};

/** One-shot convenience: hash @p data with @p alg. */
Bytes digestOneShot(DigestAlg alg, const Bytes &data);

} // namespace ssla::crypto

#endif // SSLA_CRYPTO_DIGEST_HH

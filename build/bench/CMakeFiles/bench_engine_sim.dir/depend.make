# Empty dependencies file for bench_engine_sim.
# This may be replaced when dependencies are built.

#include "ssl/alert.hh"

namespace ssla::ssl
{

const char *
alertName(AlertDescription desc)
{
    switch (desc) {
      case AlertDescription::CloseNotify: return "close_notify";
      case AlertDescription::UnexpectedMessage:
        return "unexpected_message";
      case AlertDescription::BadRecordMac: return "bad_record_mac";
      case AlertDescription::DecompressionFailure:
        return "decompression_failure";
      case AlertDescription::HandshakeFailure: return "handshake_failure";
      case AlertDescription::NoCertificate: return "no_certificate";
      case AlertDescription::BadCertificate: return "bad_certificate";
      case AlertDescription::UnsupportedCertificate:
        return "unsupported_certificate";
      case AlertDescription::CertificateRevoked:
        return "certificate_revoked";
      case AlertDescription::CertificateExpired:
        return "certificate_expired";
      case AlertDescription::CertificateUnknown:
        return "certificate_unknown";
      case AlertDescription::IllegalParameter:
        return "illegal_parameter";
      case AlertDescription::InternalError:
        return "internal_error";
    }
    return "unknown_alert";
}

} // namespace ssla::ssl

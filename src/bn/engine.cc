#include "bn/engine.hh"

#include <algorithm>
#include <stdexcept>

#include "bn/kernels64.hh"
#include "bn/modexp.hh"
#include "bn/montgomery.hh"
#include "obs/metrics.hh"

namespace ssla::bn
{

namespace
{

class Bn32Engine final : public Engine
{
  public:
    const char *name() const override { return "bn32"; }
    BnBackend backend() const override { return BnBackend::Bn32; }
    unsigned limbBits() const override { return 32; }

    BigNum
    mul(const BigNum &a, const BigNum &b) const override
    {
        return a * b;
    }

    BigNum
    sqr(const BigNum &a) const override
    {
        return a.sqr();
    }
};

class Bn64Engine final : public Engine
{
  public:
    const char *name() const override { return "bn64"; }
    BnBackend backend() const override { return BnBackend::Bn64; }
    unsigned limbBits() const override { return 64; }

    BigNum
    mul(const BigNum &a, const BigNum &b) const override
    {
        if (a.isZero() || b.isZero())
            return BigNum();
        auto la = limbs64From32(a.limbs());
        auto lb = limbs64From32(b.limbs());
        size_t n = std::max(la.size(), lb.size());
        la.resize(n, 0);
        lb.resize(n, 0);
        std::vector<Limb64> prod(2 * n);
        bn64Mul(prod.data(), la.data(), lb.data(), n);
        return BigNum::fromLimbs(limbs32From64(prod),
                                 a.isNegative() != b.isNegative());
    }

    BigNum
    sqr(const BigNum &a) const override
    {
        if (a.isZero())
            return BigNum();
        auto la = limbs64From32(a.limbs());
        std::vector<Limb64> prod(2 * la.size());
        bn64Sqr(prod.data(), la.data(), la.size());
        return BigNum::fromLimbs(limbs32From64(prod));
    }
};

thread_local const Engine *tl_active = nullptr;

/** Handle resolved once; set() is a relaxed atomic store afterwards. */
obs::Gauge &
backendGauge()
{
    static obs::Gauge g =
        obs::MetricsRegistry::global().gauge("bn.active_backend_bits");
    return g;
}

} // anonymous namespace

BigNum
Engine::modExp(const BigNum &base, const BigNum &exp, const BigNum &m) const
{
    if (m.isZero() || m.isNegative())
        throw std::domain_error("modExp: modulus must be positive");
    if (m.isOne())
        return BigNum();
    if (!m.isOdd())
        return bn::modExp(base, exp, m); // division path, engine-free
    MontgomeryCtx ctx(m, this);
    return modExpMont(base, exp, ctx);
}

const Engine &
bn32Engine()
{
    static const Bn32Engine engine;
    return engine;
}

const Engine &
bn64Engine()
{
    static const Bn64Engine engine;
    return engine;
}

const Engine *
engineByName(std::string_view name)
{
    if (name == "bn32")
        return &bn32Engine();
    if (name == "bn64")
        return &bn64Engine();
    return nullptr;
}

std::vector<std::string>
engineNames()
{
    return {"bn32", "bn64"};
}

const Engine &
activeEngine()
{
    return tl_active ? *tl_active : bn32Engine();
}

const Engine *
setActiveEngine(const Engine *engine)
{
    const Engine *prev = tl_active;
    tl_active = engine;
    backendGauge().set(static_cast<int64_t>(activeEngine().limbBits()));
    return prev;
}

} // namespace ssla::bn

/**
 * @file
 * Web-simulation tests: HTTP layer, transaction accounting, the
 * kernel model and workload aggregation.
 */

#include <gtest/gtest.h>

#include "obs/metrics.hh"
#include "web/httpsim.hh"
#include "util/bytes.hh"

namespace
{

using namespace ssla;
using namespace ssla::web;

TEST(Http, RequestRoundTrip)
{
    HttpRequest req;
    req.method = "GET";
    req.path = "/index.html";
    req.headers["Host"] = "example.test";
    HttpRequest back = HttpRequest::parse(req.encode());
    EXPECT_EQ(back.method, "GET");
    EXPECT_EQ(back.path, "/index.html");
    EXPECT_EQ(back.version, "HTTP/1.0");
    EXPECT_EQ(back.headers.at("Host"), "example.test");
}

TEST(Http, ResponseRoundTrip)
{
    HttpResponse resp;
    resp.status = 200;
    resp.body = toBytes("hello body");
    HttpResponse back = HttpResponse::parse(resp.encode());
    EXPECT_EQ(back.status, 200);
    EXPECT_EQ(back.body, resp.body);
    EXPECT_EQ(back.headers.at("Content-Length"), "10");
}

TEST(Http, MalformedRequestThrows)
{
    EXPECT_THROW(HttpRequest::parse(toBytes("nonsense")),
                 std::runtime_error);
    EXPECT_THROW(HttpRequest::parse(toBytes("GET\r\n\r\n")),
                 std::runtime_error);
}

TEST(Http, TruncatedResponseBodyThrows)
{
    HttpResponse resp;
    resp.body = Bytes(100, 'x');
    Bytes wire = resp.encode();
    wire.resize(wire.size() - 50);
    EXPECT_THROW(HttpResponse::parse(wire), std::runtime_error);
}

TEST(KernelModel, MonotoneInTraffic)
{
    KernelModelParams p;
    TrafficShape small{1000, 3, 1, 1};
    TrafficShape large{100000, 80, 1, 1};
    ModeledCycles a = modelNonSslCycles(small, p);
    ModeledCycles b = modelNonSslCycles(large, p);
    EXPECT_GT(b.kernel, a.kernel);
    EXPECT_GT(b.httpd, a.httpd);
    EXPECT_GT(b.other, a.other);
}

TEST(KernelModel, PacketEstimate)
{
    KernelModelParams p;
    EXPECT_EQ(estimatePackets(0, p), 0u);
    EXPECT_EQ(estimatePackets(1, p), 1u);
    EXPECT_EQ(estimatePackets(1460, p), 1u);
    EXPECT_EQ(estimatePackets(1461, p), 3u); // 2 data + 1 ack
}

class WebSimTest : public ::testing::Test
{
  protected:
    static WebSimulator &
    sim()
    {
        static WebSimConfig cfg = [] {
            WebSimConfig c;
            c.rsaBits = 512; // keep the suite fast
            return c;
        }();
        static WebSimulator instance(cfg);
        return instance;
    }
};

TEST_F(WebSimTest, TransactionCompletes)
{
    TransactionStats s = sim().runTransaction(1024);
    EXPECT_EQ(s.transactions, 1u);
    EXPECT_GT(s.sslTotal, 0u);
    EXPECT_GT(s.cryptoTotal, 0u);
    EXPECT_LE(s.cryptoTotal, s.sslTotal);
    EXPECT_GT(s.wireBytes, 1024u); // page + handshake + overhead
    EXPECT_GT(s.kernelCycles, 0.0);
    EXPECT_GT(s.total(), static_cast<double>(s.sslTotal));
}

TEST_F(WebSimTest, PublicKeyDominatesSmallTransfers)
{
    TransactionStats s = sim().runTransaction(1024);
    // Figure 2's headline: RSA dominates the crypto cost at 1 KB.
    EXPECT_GT(s.cryptoPublic, s.cryptoPrivate);
    EXPECT_GT(s.cryptoPublic, s.cryptoHash);
    EXPECT_GT(static_cast<double>(s.cryptoPublic), 0.5 * s.cryptoTotal);
}

TEST_F(WebSimTest, PrivateKeyShareGrowsWithFileSize)
{
    TransactionStats small = sim().runTransaction(1024);
    TransactionStats large = sim().runTransaction(64 * 1024);
    double small_share = static_cast<double>(small.cryptoPrivate) /
                         small.cryptoTotal;
    double large_share = static_cast<double>(large.cryptoPrivate) /
                         large.cryptoTotal;
    EXPECT_GT(large_share, small_share);
}

TEST_F(WebSimTest, ResumptionRemovesPublicKeyCost)
{
    sim().runTransaction(1024); // populate the session cache
    TransactionStats resumed = sim().runTransaction(1024, true);
    EXPECT_EQ(resumed.resumedHandshakes, 1u);
    EXPECT_EQ(resumed.cryptoPublic, 0u);
    TransactionStats full = sim().runTransaction(1024, false);
    // With the fast RSA-512 test key the abbreviated handshake saves
    // less in relative terms than at production key sizes; at 1024
    // bits the saving exceeds 5x (see bench_resumption).
    EXPECT_LT(static_cast<double>(resumed.sslTotal),
              0.9 * static_cast<double>(full.sslTotal));
}

TEST_F(WebSimTest, WorkloadAggregates)
{
    TransactionStats w = sim().runWorkload(10, 2048, 0.5);
    EXPECT_EQ(w.transactions, 10u);
    EXPECT_GT(w.resumedHandshakes, 0u);
    EXPECT_LT(w.resumedHandshakes, 10u);
    EXPECT_GT(w.sslTotal, 0u);
}

TEST_F(WebSimTest, KeepAliveSessionAmortizesHandshake)
{
    // One handshake, eight requests: per-request cost must drop well
    // below eight separate transactions.
    TransactionStats session = sim().runSession(8, 2048);
    TransactionStats separate = sim().runWorkload(8, 2048, 0.0);
    EXPECT_EQ(session.transactions, 8u);
    EXPECT_EQ(separate.transactions, 8u);
    // Only one public-key operation happened in the session.
    EXPECT_LT(static_cast<double>(session.cryptoPublic),
              0.3 * static_cast<double>(separate.cryptoPublic));
    EXPECT_LT(session.total(), separate.total());
}

TEST_F(WebSimTest, LongSessionIsBulkDominated)
{
    // The paper's B2B observation: over a long session the private
    // key (bulk) encryption dominates the public key cost.
    TransactionStats s = sim().runSession(16, 16 * 1024);
    EXPECT_GT(s.cryptoPrivate, s.cryptoPublic);
}

TEST_F(WebSimTest, TunnelStreamsAllBytesThroughGatherSends)
{
    // The streaming-tunnel workload: one handshake, then the server
    // pushes the whole volume in scattered chunk writes. A non-chunk-
    // multiple total exercises the short final gather.
    TransactionStats s = sim().runTunnel(100000, 8192);
    EXPECT_EQ(s.transactions, 1u);
    EXPECT_GT(s.wireBytes, 100000u); // payload + record + hs overhead
    EXPECT_GT(s.cryptoPrivate, s.cryptoPublic); // bulk dominated
    EXPECT_GT(s.kernelCycles, 0.0);
    EXPECT_THROW(sim().runTunnel(1024, 0), std::invalid_argument);
}

TEST(WebSim, DifferentSuitesWork)
{
    WebSimConfig cfg;
    cfg.rsaBits = 512;
    cfg.suite = ssl::CipherSuiteId::RSA_RC4_128_MD5;
    WebSimulator rc4sim(cfg);
    TransactionStats s = rc4sim.runTransaction(4096);
    EXPECT_EQ(s.transactions, 1u);
    EXPECT_GT(s.cryptoPrivate, 0u);
}

TEST(WebSim, MetricsEndpointServesPrometheusText)
{
    // A full HTTPS GET of /metrics must come back as the Prometheus
    // text exposition of the configured registry — scraped over the
    // same SSL stack the metrics describe.
    obs::MetricsRegistry reg;
    reg.counter("serve.park_events").inc(5);
    WebSimConfig cfg;
    cfg.rsaBits = 512;
    cfg.metricsRegistry = &reg;
    WebSimulator sim(cfg);

    HttpResponse resp = sim.fetch("/metrics");
    EXPECT_EQ(resp.headers.at("Content-Type"),
              "text/plain; version=0.0.4");
    const std::string body(resp.body.begin(), resp.body.end());
    EXPECT_NE(body.find("# TYPE serve_park_events_total counter"),
              std::string::npos);
    EXPECT_NE(body.find("serve_park_events_total 5"),
              std::string::npos);
}

TEST(WebSim, NonMetricsPathStillServesPages)
{
    WebSimConfig cfg;
    cfg.rsaBits = 512;
    WebSimulator sim(cfg);
    HttpResponse resp = sim.fetch("/index.html", 2048);
    EXPECT_EQ(resp.body.size(), 2048u);
}

} // anonymous namespace

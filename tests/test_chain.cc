/**
 * @file
 * Certificate-chain tests: root -> intermediate -> leaf verification,
 * broken links, and full handshakes presenting a chain.
 */

#include <gtest/gtest.h>

#include "pki/cert.hh"
#include "ssl/client.hh"
#include "ssl/server.hh"
#include "util/bytes.hh"

#include "testkeys.hh"

namespace
{

using namespace ssla;
using namespace ssla::pki;

/** A three-level PKI built once: root CA -> intermediate -> leaf. */
struct TestPki
{
    crypto::RsaKeyPair rootKey;
    crypto::RsaKeyPair intermediateKey;
    crypto::RsaKeyPair leafKey;
    Certificate root;         ///< self-signed
    Certificate intermediate; ///< signed by root
    Certificate leaf;         ///< signed by intermediate

    TestPki()
    {
        rootKey = crypto::rsaGenerateKey(512, test::seededRng(0xca));
        intermediateKey =
            crypto::rsaGenerateKey(512, test::seededRng(0xcb));
        leafKey = crypto::rsaGenerateKey(512, test::seededRng(0xcc));

        CertificateInfo info;
        info.notBefore = 0;
        info.notAfter = 2000000000;

        info.serial = 1;
        info.issuer = "Root CA";
        info.subject = "Root CA";
        info.publicKey = rootKey.pub;
        root = Certificate::issue(info, *rootKey.priv);

        info.serial = 2;
        info.issuer = "Root CA";
        info.subject = "Intermediate CA";
        info.publicKey = intermediateKey.pub;
        intermediate = Certificate::issue(info, *rootKey.priv);

        info.serial = 3;
        info.issuer = "Intermediate CA";
        info.subject = "chained.example";
        info.publicKey = leafKey.pub;
        leaf = Certificate::issue(info, *intermediateKey.priv);
    }
};

TestPki &
pkiFixture()
{
    static TestPki pki;
    return pki;
}

TEST(Chain, FullChainVerifiesAgainstRoot)
{
    TestPki &pki = pkiFixture();
    std::vector<Certificate> chain = {pki.leaf, pki.intermediate};
    EXPECT_TRUE(verifyChain(chain, &pki.rootKey.pub));
    // Including the self-signed root as the terminal also works when
    // anchored to the same key.
    chain.push_back(pki.root);
    EXPECT_TRUE(verifyChain(chain, &pki.rootKey.pub));
}

TEST(Chain, SelfSignedTerminalAcceptedWithoutAnchor)
{
    TestPki &pki = pkiFixture();
    std::vector<Certificate> chain = {pki.leaf, pki.intermediate,
                                      pki.root};
    EXPECT_TRUE(verifyChain(chain, nullptr));
    // Without the root the terminal (intermediate) is not self-signed.
    std::vector<Certificate> no_root = {pki.leaf, pki.intermediate};
    EXPECT_FALSE(verifyChain(no_root, nullptr));
}

TEST(Chain, WrongRootRejected)
{
    TestPki &pki = pkiFixture();
    std::vector<Certificate> chain = {pki.leaf, pki.intermediate};
    EXPECT_FALSE(verifyChain(chain, &test::otherKey1024().pub));
}

TEST(Chain, BrokenLinkRejected)
{
    TestPki &pki = pkiFixture();
    // Leaf directly under root: the signature does not match.
    std::vector<Certificate> chain = {pki.leaf, pki.root};
    EXPECT_FALSE(verifyChain(chain, &pki.rootKey.pub));
}

TEST(Chain, NameMismatchRejected)
{
    TestPki &pki = pkiFixture();
    // An intermediate whose subject does not match the leaf's issuer.
    CertificateInfo info;
    info.serial = 9;
    info.issuer = "Root CA";
    info.subject = "Some Other CA";
    info.notBefore = 0;
    info.notAfter = 2000000000;
    info.publicKey = pki.intermediateKey.pub;
    Certificate misnamed =
        Certificate::issue(info, *pki.rootKey.priv);
    std::vector<Certificate> chain = {pki.leaf, misnamed};
    EXPECT_FALSE(verifyChain(chain, &pki.rootKey.pub));
}

TEST(Chain, ExpiredLinkRejected)
{
    TestPki &pki = pkiFixture();
    std::vector<Certificate> chain = {pki.leaf, pki.intermediate};
    EXPECT_TRUE(verifyChain(chain, &pki.rootKey.pub, 1000));
    EXPECT_FALSE(verifyChain(chain, &pki.rootKey.pub, 3000000000ull));
}

TEST(Chain, EmptyChainRejected)
{
    EXPECT_FALSE(verifyChain({}, nullptr));
}

TEST(Chain, HandshakeWithIntermediate)
{
    TestPki &pki = pkiFixture();
    ssl::BioPair wires;
    ssl::ServerConfig scfg;
    scfg.certificate = pki.leaf;
    scfg.intermediates = {pki.intermediate};
    scfg.privateKey = pki.leafKey.priv;
    ssl::SslServer server(scfg, wires.serverEnd());

    ssl::ClientConfig ccfg;
    ccfg.trustedIssuer = &pki.rootKey.pub;
    ccfg.expectedSubject = "chained.example";
    ccfg.currentTime = 1000;
    ssl::SslClient client(ccfg, wires.clientEnd());

    runLockstep(client, server);
    EXPECT_TRUE(client.handshakeDone());
    EXPECT_EQ(client.serverCertificate().info().subject,
              "chained.example");

    client.writeApplicationData(toBytes("via chain"));
    auto got = server.readApplicationData();
    ASSERT_TRUE(got);
    EXPECT_EQ(toString(*got), "via chain");
}

TEST(Chain, HandshakeRejectsBrokenChain)
{
    TestPki &pki = pkiFixture();
    ssl::BioPair wires;
    ssl::ServerConfig scfg;
    scfg.certificate = pki.leaf;
    // Server presents the wrong intermediate (the root), breaking the
    // leaf's signature link.
    scfg.intermediates = {pki.root};
    scfg.privateKey = pki.leafKey.priv;
    ssl::SslServer server(scfg, wires.serverEnd());

    ssl::ClientConfig ccfg;
    ccfg.trustedIssuer = &pki.rootKey.pub;
    ssl::SslClient client(ccfg, wires.clientEnd());

    try {
        runLockstep(client, server);
        FAIL() << "handshake should have failed";
    } catch (const ssl::SslError &e) {
        EXPECT_EQ(e.alert(), ssl::AlertDescription::BadCertificate);
    }
}

TEST(Chain, HandshakeRejectsExpiredIntermediate)
{
    TestPki &pki = pkiFixture();
    ssl::BioPair wires;
    ssl::ServerConfig scfg;
    scfg.certificate = pki.leaf;
    scfg.intermediates = {pki.intermediate};
    scfg.privateKey = pki.leafKey.priv;
    ssl::SslServer server(scfg, wires.serverEnd());

    ssl::ClientConfig ccfg;
    ccfg.trustedIssuer = &pki.rootKey.pub;
    ccfg.currentTime = 3000000000ull; // after notAfter
    ssl::SslClient client(ccfg, wires.clientEnd());

    EXPECT_THROW(runLockstep(client, server), ssl::SslError);
}

} // anonymous namespace

# Empty compiler generated dependencies file for ssla_perf.
# This may be replaced when dependencies are built.

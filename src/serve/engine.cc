#include "serve/engine.hh"

#include <chrono>
#include <stdexcept>
#include <thread>

#include "perf/probe.hh"
#include "serve/breaker.hh"
#include "serve/supervisor.hh"
#include "ssl/client.hh"
#include "ssl/server.hh"
#include "util/endian.hh"
#include "util/logging.hh"

namespace ssla::serve
{

namespace
{

/**
 * Session trace of the connection the current worker is pumping right
 * now; the captured log sink appends warn()/inform() text here. Set
 * around each pumpConn() call, so a warning emitted deep inside the
 * record layer lands in the right session's flight recorder.
 */
thread_local obs::SessionTrace *t_activeTrace = nullptr;

/** splitmix64 — deterministic per-connection seed derivation. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

Bytes
seedBytes(uint64_t seed, uint8_t tag)
{
    Bytes out(9);
    store64le(out.data(), seed);
    out[8] = tag;
    return out;
}

} // anonymous namespace

// ---------------------------------------------------------------------
// ServeStats

uint64_t
ServeStats::fullHandshakes() const
{
    uint64_t n = 0;
    for (const auto &w : perWorker)
        n += w.fullHandshakes;
    return n;
}

uint64_t
ServeStats::resumedHandshakes() const
{
    uint64_t n = 0;
    for (const auto &w : perWorker)
        n += w.resumedHandshakes;
    return n;
}

uint64_t
ServeStats::bulkBytesMoved() const
{
    uint64_t n = 0;
    for (const auto &w : perWorker)
        n += w.bulkBytesMoved;
    return n;
}

uint64_t
ServeStats::parkEvents() const
{
    uint64_t n = 0;
    for (const auto &w : perWorker)
        n += w.parkEvents;
    return n;
}

uint64_t
ServeStats::parkEventsDecrypt() const
{
    uint64_t n = 0;
    for (const auto &w : perWorker)
        n += w.parkEventsDecrypt;
    return n;
}

uint64_t
ServeStats::parkEventsSign() const
{
    uint64_t n = 0;
    for (const auto &w : perWorker)
        n += w.parkEventsSign;
    return n;
}

uint64_t
ServeStats::failedHandshakes() const
{
    uint64_t n = 0;
    for (const auto &w : perWorker)
        n += w.failedHandshakes;
    return n;
}

uint64_t
ServeStats::timedOutSessions() const
{
    uint64_t n = 0;
    for (const auto &w : perWorker)
        n += w.timedOutSessions;
    return n;
}

uint64_t
ServeStats::lateHandshakes() const
{
    uint64_t n = 0;
    for (const auto &w : perWorker)
        n += w.lateHandshakes;
    return n;
}

uint64_t
ServeStats::evictedSessions() const
{
    uint64_t n = 0;
    for (const auto &w : perWorker)
        n += w.evictedSessions;
    return n;
}

uint64_t
ServeStats::faultsInjected() const
{
    uint64_t n = 0;
    for (const auto &w : perWorker)
        n += w.faultsInjected;
    return n;
}

uint64_t
ServeStats::dataPlaneFlushes() const
{
    uint64_t n = 0;
    for (const auto &w : perWorker)
        n += w.dataPlaneFlushes;
    return n;
}

uint64_t
ServeStats::dataPlaneRecords() const
{
    uint64_t n = 0;
    for (const auto &w : perWorker)
        n += w.dataPlaneRecords;
    return n;
}

uint64_t
ServeStats::refusedSessions() const
{
    uint64_t n = 0;
    for (const auto &w : perWorker)
        n += w.refusedSessions;
    return n;
}

uint64_t
ServeStats::terminatedSessions() const
{
    return fullHandshakes() + resumedHandshakes() +
           failedHandshakes() + timedOutSessions() +
           refusedSessions();
}

double
ServeStats::fullHandshakesPerSec() const
{
    return elapsedSeconds > 0 ? fullHandshakes() / elapsedSeconds : 0.0;
}

double
ServeStats::resumedHandshakesPerSec() const
{
    return elapsedSeconds > 0 ? resumedHandshakes() / elapsedSeconds
                              : 0.0;
}

double
ServeStats::bulkMBPerSec() const
{
    return elapsedSeconds > 0
               ? (bulkBytesMoved() / 1e6) / elapsedSeconds
               : 0.0;
}

double
ServeStats::goodputPerSec() const
{
    return elapsedSeconds > 0
               ? (fullHandshakes() + resumedHandshakes()) /
                     elapsedSeconds
               : 0.0;
}

// ---------------------------------------------------------------------
// ServeEngine

struct ServeEngine::Impl
{
    explicit Impl(ServeConfig cfg) : cfg(std::move(cfg)) {}

    /** One multiplexed in-memory connection pair. */
    struct Conn
    {
        /** Exactly one of these backs the endpoints' BIOs. */
        std::unique_ptr<ssl::BioPair> cleanWires;
        std::unique_ptr<ssl::FaultyBioPair> faultyWires;
        crypto::RandomPool clientPool;
        crypto::RandomPool serverPool;
        std::unique_ptr<ssl::SslClient> client;
        std::unique_ptr<ssl::SslServer> server;
        size_t bulkSent = 0;
        size_t bulkReceived = 0;
        bool parked = false;           ///< currently counted as parked
        /** Why the session is parked (valid while parked). */
        ssl::CryptoWait parkReason = ssl::CryptoWait::None;
        /** JobClass + 1 stamped on the Park event, replayed on the
         *  matching Resume (0 = never parked). */
        uint16_t parkClassCode = 0;
        /** Drew the resumption branch AND had a session to offer. */
        bool offeredResumption = false;
        /** Parked at least once: later submits are Continuation
         *  class (work already invested in this handshake). */
        bool everParked = false;
        bool hsLatencyRecorded = false;///< handshake histogram done
        uint64_t startSweep = 0;       ///< sweep the conn opened on
        uint64_t lastProgressSweep = 0;///< sweep it last advanced on
        uint64_t startCycles = 0;      ///< rdcycles() at creation
        /** Flight recorder, when this connection drew a sample slot. */
        std::unique_ptr<obs::SessionTrace> trace;
    };

    ServeConfig cfg;
    obs::MetricsRegistry *reg = nullptr;
    ssl::RecordCounters recordCounters;
    obs::Histogram histHandshakeCycles;
    obs::Histogram histHandshakeSweeps;
    std::unique_ptr<ssl::ShardedSessionCache> internalStore;
    ssl::SessionStore *store = nullptr;
    std::unique_ptr<PooledProvider> pooledProvider;
    crypto::Provider *provider = nullptr;

    // Completed sessions feeding resumption attempts (bounded ring).
    std::mutex sessionsM;
    std::vector<ssl::Session> sessions;
    size_t sessionPick = 0;
    size_t sessionOverwrite = 0;
    static constexpr size_t sessionRingCap = 512;

    std::optional<ssl::Session>
    pickCompletedSession()
    {
        std::lock_guard<std::mutex> lock(sessionsM);
        if (sessions.empty())
            return std::nullopt;
        return sessions[sessionPick++ % sessions.size()];
    }

    void
    offerCompletedSession(const ssl::Session &s)
    {
        std::lock_guard<std::mutex> lock(sessionsM);
        if (sessions.size() < sessionRingCap)
            sessions.push_back(s);
        else
            sessions[sessionOverwrite++ % sessionRingCap] = s;
    }

    /**
     * Per-worker private-key replica. RsaPrivateKey carries mutable
     * blinding and Montgomery scratch state (single-owner by the bn
     * contract), so workers must not share the configured key object:
     * in the synchronous path every worker thread decrypts with its
     * server's key directly. Same rule the CryptoPool applies
     * per pool thread.
     */
    std::shared_ptr<crypto::RsaPrivateKey>
    cloneKey() const
    {
        const crypto::RsaPrivateKey &k = *cfg.privateKey;
        return std::make_shared<crypto::RsaPrivateKey>(
            k.publicKey().n, k.publicKey().e, k.d(), k.p(), k.q());
    }

    /** Deterministic per-connection seed: replay from cfg.seed alone. */
    uint64_t
    connSeed(size_t worker_id, size_t serial) const
    {
        return mix64(cfg.seed ^ mix64((worker_id << 32) | serial));
    }

    /**
     * The connection's resumption draw. Shared by makeConn and the
     * accept-gate pre-check so the breaker judges exactly the
     * connection that would be built.
     */
    bool
    wantsResumption(uint64_t cseed) const
    {
        return cfg.resumeFraction > 0.0 &&
               static_cast<double>(mix64(cseed) % 1000) <
                   cfg.resumeFraction * 1000.0;
    }

    std::unique_ptr<Conn>
    makeConn(size_t worker_id, size_t serial,
             const std::shared_ptr<crypto::RsaPrivateKey> &worker_key)
    {
        auto conn = std::make_unique<Conn>();
        uint64_t cseed = connSeed(worker_id, serial);
        conn->clientPool =
            crypto::RandomPool(seedBytes(cseed, /*tag=*/0xc1));
        conn->serverPool =
            crypto::RandomPool(seedBytes(cseed, /*tag=*/0x5e));

        ssl::BioEndpoint client_end, server_end;
        if (cfg.faultPlan) {
            // Per-connection seed split: the whole chaos run replays
            // from (engine seed, plan seed) alone.
            ssl::FaultPlan plan = *cfg.faultPlan;
            plan.seed = mix64(plan.seed ^ cseed);
            ssl::FaultPlan reverse =
                cfg.faultPlanReverse ? *cfg.faultPlanReverse : plan;
            if (cfg.faultPlanReverse)
                reverse.seed = mix64(reverse.seed ^ cseed);
            conn->faultyWires =
                std::make_unique<ssl::FaultyBioPair>(plan, reverse);
            client_end = conn->faultyWires->clientEnd();
            server_end = conn->faultyWires->serverEnd();
        } else {
            conn->cleanWires = std::make_unique<ssl::BioPair>();
            client_end = conn->cleanWires->clientEnd();
            server_end = conn->cleanWires->serverEnd();
        }

        ssl::ServerConfig scfg;
        scfg.certificate = *cfg.certificate;
        scfg.privateKey = worker_key;
        scfg.suites = {cfg.suite};
        scfg.sessionCache = store;
        scfg.randomPool = &conn->serverPool;
        scfg.provider = provider;

        ssl::ClientConfig ccfg;
        ccfg.suites = {cfg.suite};
        ccfg.randomPool = &conn->clientPool;
        ccfg.provider = provider;
        // Deterministic per-connection resumption decision; falls back
        // to a full handshake until sessions exist to offer.
        if (wantsResumption(cseed)) {
            ccfg.resumeSession = pickCompletedSession();
            conn->offeredResumption = ccfg.resumeSession.has_value();
        }

        conn->server = std::make_unique<ssl::SslServer>(
            std::move(scfg), server_end);
        conn->client = std::make_unique<ssl::SslClient>(
            std::move(ccfg), client_end);
        conn->startCycles = rdcycles();

        // Sampled flight recorder: 1-in-N connections share one ring
        // between client, server, channel and engine events. With
        // traceKeepFailures every connection records; the 1-in-N decay
        // moves to dump time so failures always survive.
        const obs::TraceSampling sampling{cfg.traceSampleEvery,
                                          cfg.traceKeepFailures};
        if (sampling.shouldRecord(serial)) {
            conn->trace = std::make_unique<obs::SessionTrace>(
                (static_cast<uint64_t>(worker_id) << 32) | serial,
                static_cast<uint32_t>(worker_id), cfg.traceCapacity);
            conn->trace->record(obs::TraceEventKind::ConnOpen,
                                obs::traceSideEngine,
                                conn->faultyWires ? "faulty" : "clean",
                                static_cast<uint16_t>(worker_id),
                                serial);
            if (conn->faultyWires)
                conn->faultyWires->setTrace(conn->trace.get());
        }
        ssl::EndpointObsBinding server_obs;
        server_obs.registry = reg;
        server_obs.recordCounters = &recordCounters;
        server_obs.trace = conn->trace.get();
        server_obs.side = obs::traceSideServer;
        conn->server->bindObservability(server_obs);
        ssl::EndpointObsBinding client_obs;
        client_obs.registry = reg;
        // No record counters for the client half: the server side
        // already counts each direction of the shared wire once.
        client_obs.trace = conn->trace.get();
        client_obs.side = obs::traceSideClient;
        conn->client->bindObservability(client_obs);
        return conn;
    }

    /** Drive one connection as far as it can go without blocking. */
    bool
    pumpConn(Conn &c, const Bytes &payload,
             std::vector<ConstSpan> &iov, WorkerStats &stats)
    {
        bool progress = false;
        for (;;) {
            bool p = c.client->advance();
            p |= c.server->advance();
            if (c.client->handshakeDone() && c.server->handshakeDone()) {
                if (c.bulkSent < cfg.bulkBytes) {
                    if (cfg.bulkBatchRecords > 0) {
                        // Data-plane mode: one gather-send of up to
                        // bulkBatchRecords record-sized spans straight
                        // off the shared payload buffer — no per-record
                        // Bytes copy, and sweeping the shard flushes
                        // every streaming session back to back.
                        iov.clear();
                        size_t remaining = cfg.bulkBytes - c.bulkSent;
                        size_t batched = 0;
                        while (iov.size() < cfg.bulkBatchRecords &&
                               remaining) {
                            size_t n = std::min(cfg.recordBytes,
                                                remaining);
                            iov.emplace_back(payload.data(), n);
                            remaining -= n;
                            batched += n;
                        }
                        c.client->writeApplicationData(iov.data(),
                                                       iov.size());
                        c.bulkSent += batched;
                        ++stats.dataPlaneFlushes;
                        stats.dataPlaneRecords += iov.size();
                    } else {
                        size_t n = std::min(cfg.recordBytes,
                                            cfg.bulkBytes - c.bulkSent);
                        c.client->writeApplicationData(
                            Bytes(payload.begin(), payload.begin() + n));
                        c.bulkSent += n;
                    }
                    p = true;
                }
                while (auto data = c.server->readApplicationData()) {
                    c.bulkReceived += data->size();
                    stats.bulkBytesMoved += data->size();
                    p = true;
                }
            }
            if (!p)
                break;
            progress = true;
        }
        return progress;
    }

    bool
    connFinished(const Conn &c) const
    {
        return c.client->handshakeDone() && c.server->handshakeDone() &&
               c.bulkSent >= cfg.bulkBytes &&
               c.bulkReceived >= cfg.bulkBytes;
    }

    /** Has the connection outlived its phase's deadline? */
    bool
    deadlineExpired(const Conn &c, uint64_t sweep) const
    {
        const bool hs_done =
            c.client->handshakeDone() && c.server->handshakeDone();
        if (!hs_done)
            return cfg.handshakeDeadlineTicks != 0 &&
                   sweep - c.startSweep > cfg.handshakeDeadlineTicks;
        return cfg.idleDeadlineTicks != 0 &&
               sweep - c.lastProgressSweep > cfg.idleDeadlineTicks;
    }

    void
    retireWires(const Conn &c, WorkerStats &stats)
    {
        if (c.faultyWires)
            stats.faultsInjected += c.faultyWires->faultsInjected();
    }

    /**
     * Kill a failed or stalled session and free its slot. abort() is
     * idempotent: a side that already died from its own SslError
     * ignores it; the survivor sends its single fatal alert and runs
     * its onFatal hook (the server's cancels any in-flight RSA job and
     * scrubs the session cache — the poisoning defense).
     */
    /** Hand a finished trace to the configured sink, if any. */
    void
    dumpTrace(const Conn &c)
    {
        if (c.trace && cfg.traceSink && c.trace->recorded())
            cfg.traceSink->dump(*c.trace);
    }

    void
    teardown(std::unique_ptr<Conn> &slot, WorkerStats &stats,
             bool timed_out)
    {
        if (timed_out && slot->trace) {
            const bool hs_done = slot->client->handshakeDone() &&
                                 slot->server->handshakeDone();
            slot->trace->record(obs::TraceEventKind::DeadlineFired,
                                obs::traceSideEngine,
                                hs_done ? "idle" : "handshake");
        }
        const Bytes sid = slot->server->session().id;
        const bool cached =
            !sid.empty() && store->find(sid).has_value();
        slot->server->abort(ssl::AlertDescription::InternalError);
        slot->client->abort(ssl::AlertDescription::InternalError);
        if (cached)
            ++stats.evictedSessions;
        if (timed_out) {
            ++stats.timedOutSessions;
            if (slot->trace)
                slot->trace->noteOutcome("timeout");
        } else {
            ++stats.failedHandshakes;
        }
        retireWires(*slot, stats);
        // The flight recorder's moment: a dead session dumps its whole
        // event history (faults, alerts, deadline) to the sink.
        dumpTrace(*slot);
        slot.reset();
    }

    void
    workerRun(size_t worker_id, WorkerStats &stats,
              std::exception_ptr &error)
    {
        try {
            const bool tolerate =
                cfg.tolerateFailures || cfg.faultPlan != nullptr;
            const auto worker_key = cloneKey();
            const Bytes payload(cfg.recordBytes, 0xab);
            std::vector<ConstSpan> iovScratch; // reused across pumps
            std::vector<std::unique_ptr<Conn>> slots(
                cfg.concurrentPerWorker);
            size_t started = 0;
            size_t completed = 0;
            const size_t target = cfg.connectionsPerWorker;

            // Per-worker probe context: crypto FuncProbes on this
            // thread report here; bridged into the registry at exit.
            perf::PerfContext perfCtx;

            // Liveness beacon for the Supervisor: stamped once per
            // sweep so a wedged worker is observable from outside.
            std::atomic<uint64_t> *heartbeat =
                cfg.supervisor
                    ? cfg.supervisor->watch(
                          "engine-worker-" + std::to_string(worker_id))
                    : nullptr;
            {
                perf::ContextScope perfScope(&perfCtx);

            while (completed < target) {
                const uint64_t sweep = ++stats.sweeps;
                if (heartbeat)
                    heartbeat->store(rdcycles(),
                                     std::memory_order_relaxed);
                bool progress = false;
                for (auto &slot : slots) {
                    if (!slot) {
                        if (started >= target)
                            continue;
                        if (cfg.breaker &&
                            !wantsResumption(
                                connSeed(worker_id, started)) &&
                            !cfg.breaker->admitFull()) {
                            // Accept-gate refusal: the breaker is open
                            // (or out of half-open probes) and this
                            // draw is a full handshake — shed it before
                            // a single byte moves. Resumption draws
                            // always pass; they cost ~1/8 as much and
                            // keep established clients served.
                            ++started;
                            ++completed;
                            ++stats.refusedSessions;
                            progress = true;
                            continue;
                        }
                        slot = makeConn(worker_id, started++,
                                        worker_key);
                        slot->startSweep = sweep;
                        slot->lastProgressSweep = sweep;
                        progress = true;
                    }
                    // Wall-clock abandonment: a client only waits so
                    // long for its handshake. Checked BEFORE pumping
                    // and with no parked exemption — a session stuck
                    // behind a saturated crypto queue dies here, which
                    // is exactly the waste deadline-aware admission
                    // exists to prevent (shed before the RSA op, not
                    // after).
                    if (cfg.handshakeAbandonCycles &&
                        !(slot->client->handshakeDone() &&
                          slot->server->handshakeDone()) &&
                        rdcycles() - slot->startCycles >
                            cfg.handshakeAbandonCycles) {
                        if (cfg.breaker)
                            cfg.breaker->noteOverloadFailure();
                        teardown(slot, stats, /*timed_out=*/true);
                        ++completed;
                        progress = true;
                        continue;
                    }
                    // One sweep = one virtual tick: age stalled
                    // records, retry cap-deferred deliveries.
                    if (slot->faultyWires)
                        slot->faultyWires->tick();
                    if (slot->trace)
                        slot->trace->setTick(sweep);
                    bool p = false;
                    t_activeTrace = slot->trace.get();
                    // Attribute crypto submissions from this pump to
                    // their admission class: a handshake that has
                    // already parked once has RSA cycles invested
                    // (Continuation); a fresh one is the first to
                    // shed (NewFullHandshake). Resumption handshakes
                    // submit no RSA jobs, so no Resumption binding is
                    // needed here.
                    const JobClass pumpCls =
                        slot->everParked ? JobClass::Continuation
                                         : JobClass::NewFullHandshake;
                    JobBindingScope bindScope(
                        {pumpCls, cfg.cryptoDeadlineBudgetCycles});
                    try {
                        p = pumpConn(*slot, payload, iovScratch,
                                     stats);
                    } catch (const ssl::SslError &e) {
                        t_activeTrace = nullptr;
                        if (!tolerate)
                            throw;
                        // internal_error means OUR side shed or failed
                        // the session (overload, reaped crypto
                        // thread): feed the breaker's trip streak.
                        if (cfg.breaker &&
                            e.alert() ==
                                ssl::AlertDescription::InternalError)
                            cfg.breaker->noteOverloadFailure();
                        // Only SslError is tolerable: the robustness
                        // contract says every malformed-input path
                        // surfaces as exactly one — anything else is a
                        // bug and still propagates.
                        teardown(slot, stats, /*timed_out=*/false);
                        ++completed;
                        progress = true;
                        continue;
                    }
                    t_activeTrace = nullptr;
                    if (p) {
                        progress = true;
                        slot->lastProgressSweep = sweep;
                    }
                    if (!slot->hsLatencyRecorded &&
                        slot->client->handshakeDone() &&
                        slot->server->handshakeDone()) {
                        slot->hsLatencyRecorded = true;
                        const uint64_t hs_cycles =
                            rdcycles() - slot->startCycles;
                        histHandshakeCycles.record(hs_cycles);
                        histHandshakeSweeps.record(sweep -
                                                   slot->startSweep + 1);
                        // Completed, but past the point the client
                        // would have abandoned: served too late to be
                        // goodput (the Shed fallback's failure mode —
                        // the sync op always finishes its handshake,
                        // no matter how stale).
                        if (cfg.handshakeAbandonCycles &&
                            hs_cycles > cfg.handshakeAbandonCycles)
                            ++stats.lateHandshakes;
                    }
                    // Either endpoint can be parked: the server on the
                    // pre-master decrypt / SKX sign, the client on the
                    // CertificateVerify sign (mutual auth).
                    ssl::CryptoWait wait = slot->server->cryptoWait();
                    if (wait == ssl::CryptoWait::None)
                        wait = slot->client->cryptoWait();
                    if (wait != ssl::CryptoWait::None) {
                        if (!slot->parked) {
                            slot->parked = true;
                            slot->everParked = true;
                            slot->parkReason = wait;
                            ++stats.parkEvents;
                            if (wait == ssl::CryptoWait::PreMasterDecrypt)
                                ++stats.parkEventsDecrypt;
                            else
                                ++stats.parkEventsSign;
                            // Stamp the admission class the parked
                            // job was submitted under (JobClass + 1).
                            slot->parkClassCode = static_cast<uint16_t>(
                                static_cast<uint8_t>(pumpCls) + 1);
                            if (slot->trace)
                                slot->trace->record(
                                    obs::TraceEventKind::Park,
                                    obs::traceSideEngine,
                                    ssl::cryptoWaitLabel(wait),
                                    slot->parkClassCode);
                        }
                        // Parked on the pool is not a stall; deadlines
                        // resume once the result lands.
                        slot->lastProgressSweep = sweep;
                        continue;
                    }
                    if (slot->parked) {
                        slot->parked = false;
                        if (slot->trace)
                            slot->trace->record(
                                obs::TraceEventKind::Resume,
                                obs::traceSideEngine,
                                ssl::cryptoWaitLabel(slot->parkReason),
                                slot->parkClassCode);
                        slot->parkReason = ssl::CryptoWait::None;
                    }
                    if (connFinished(*slot)) {
                        if (slot->server->resumed()) {
                            ++stats.resumedHandshakes;
                        } else {
                            ++stats.fullHandshakes;
                            // Completed full handshakes are the
                            // breaker's probe successes.
                            if (cfg.breaker)
                                cfg.breaker->noteFullHandshakeSuccess();
                        }
                        offerCompletedSession(slot->server->session());
                        if (slot->trace) {
                            slot->trace->record(
                                obs::TraceEventKind::Complete,
                                obs::traceSideEngine,
                                slot->server->resumed() ? "resumed"
                                                        : "full");
                            slot->trace->noteOutcome("completed");
                            // Decay completed traces to the sample
                            // rate; failures dump in teardown().
                            const obs::TraceSampling sampling{
                                cfg.traceSampleEvery,
                                cfg.traceKeepFailures};
                            if (cfg.traceDumpAll ||
                                (cfg.traceKeepFailures &&
                                 sampling.shouldDump(
                                     static_cast<uint32_t>(
                                         slot->trace->serial()),
                                     "completed")))
                                dumpTrace(*slot);
                        }
                        retireWires(*slot, stats);
                        slot.reset();
                        ++completed;
                        continue;
                    }
                    if (deadlineExpired(*slot, sweep)) {
                        teardown(slot, stats, /*timed_out=*/true);
                        ++completed;
                        progress = true;
                    }
                }
                // All in-flight sessions parked on the crypto pool (or
                // momentarily idle): let the pool threads run.
                if (!progress)
                    std::this_thread::yield();
            }

            } // perfScope
            perfCtx.publishTo(*reg);
            flushWorkerStats(stats);
        } catch (...) {
            t_activeTrace = nullptr;
            error = std::current_exception();
        }
    }

    /**
     * Mirror the worker's lock-free tallies into the registry so the
     * end-of-run snapshot is self-contained. Handles are resolved by
     * name here because this runs once per worker, not per event.
     */
    void
    flushWorkerStats(const WorkerStats &stats)
    {
        auto flush = [&](const char *name, uint64_t v) {
            if (v)
                reg->counter(name).inc(v);
        };
        flush("serve.full_handshakes", stats.fullHandshakes);
        flush("serve.resumed_handshakes", stats.resumedHandshakes);
        flush("serve.bulk_bytes", stats.bulkBytesMoved);
        flush("serve.park_events", stats.parkEvents);
        flush("serve.park_events_decrypt", stats.parkEventsDecrypt);
        flush("serve.park_events_sign", stats.parkEventsSign);
        flush("serve.sweeps", stats.sweeps);
        flush("serve.failed_handshakes", stats.failedHandshakes);
        flush("serve.timed_out_sessions", stats.timedOutSessions);
        flush("serve.late_handshakes", stats.lateHandshakes);
        flush("serve.refused_sessions", stats.refusedSessions);
        flush("serve.evicted_sessions", stats.evictedSessions);
        flush("serve.faults_injected", stats.faultsInjected);
        flush("serve.dataplane_flushes", stats.dataPlaneFlushes);
        flush("serve.dataplane_records", stats.dataPlaneRecords);
    }
};

ServeEngine::ServeEngine(ServeConfig config)
    : impl_(std::make_unique<Impl>(std::move(config)))
{
    ServeConfig &cfg = impl_->cfg;
    if (!cfg.certificate || !cfg.privateKey)
        throw std::invalid_argument(
            "ServeEngine: certificate and private key required");
    if (cfg.workers == 0 || cfg.concurrentPerWorker == 0 ||
        cfg.connectionsPerWorker == 0)
        throw std::invalid_argument("ServeEngine: zero-sized workload");
    if (cfg.bulkBytes > 0 && cfg.recordBytes == 0)
        throw std::invalid_argument("ServeEngine: recordBytes == 0");
    if (cfg.recordBytes == 0)
        cfg.recordBytes = 1; // payload buffer must be non-empty

    if (cfg.faultPlan) {
        cfg.tolerateFailures = true;
        // A fault plan can silently drop records, so every session
        // needs a deadline or the run never terminates. Budget enough
        // sweeps for a handshake whose every record stalls, plus slack
        // for crypto-pool queueing.
        const uint64_t stall = cfg.faultPlan->stallTicks;
        if (cfg.handshakeDeadlineTicks == 0)
            cfg.handshakeDeadlineTicks = 64 + 16 * stall;
        if (cfg.idleDeadlineTicks == 0)
            cfg.idleDeadlineTicks = 64 + 16 * stall;
    }

    if (cfg.sessionStore) {
        impl_->store = cfg.sessionStore;
    } else {
        impl_->internalStore = std::make_unique<ssl::ShardedSessionCache>(
            cfg.cacheShards,
            /*max_entries_per_shard=*/1024,
            /*ttl_seconds=*/0);
        impl_->store = impl_->internalStore.get();
    }

    // Warmed-server arrival mix: seed sessions are resumable from the
    // very first connection, on the server side (store) and the client
    // side (the resumption ring the per-connection draws pick from).
    for (const ssl::Session &s : cfg.resumptionSeed)
        if (s.valid()) {
            impl_->store->store(s);
            impl_->offerCompletedSession(s);
        }

    crypto::Provider *base =
        cfg.provider ? cfg.provider : &crypto::scalarProvider();
    if (cfg.cryptoPool) {
        impl_->pooledProvider =
            std::make_unique<PooledProvider>(*cfg.cryptoPool, base);
        impl_->provider = impl_->pooledProvider.get();
    } else {
        impl_->provider = base;
    }

    // Wire every layer into the run's registry before work flows.
    impl_->reg =
        cfg.metrics ? cfg.metrics : &obs::MetricsRegistry::global();
    impl_->reg->setEnabled(cfg.metricsEnabled);
    impl_->recordCounters = ssl::RecordCounters::resolve(*impl_->reg);
    impl_->histHandshakeCycles =
        impl_->reg->histogram("serve.handshake_cycles");
    impl_->histHandshakeSweeps =
        impl_->reg->histogram("serve.handshake_sweeps");
    if (impl_->internalStore)
        impl_->internalStore->bindMetrics(impl_->reg);
    if (cfg.cryptoPool) {
        cfg.cryptoPool->bindMetrics(impl_->reg);
        if (cfg.traceSink)
            cfg.cryptoPool->bindTraceSink(cfg.traceSink);
    }
    if (cfg.breaker)
        cfg.breaker->bindMetrics(impl_->reg);
    if (cfg.supervisor) {
        cfg.supervisor->bindMetrics(impl_->reg);
        if (cfg.traceSink)
            cfg.supervisor->bindTraceSink(cfg.traceSink);
    }
}

ServeEngine::~ServeEngine() = default;

ssl::SessionStore &
ServeEngine::sessionStore()
{
    return *impl_->store;
}

std::vector<ssl::Session>
ServeEngine::completedSessions() const
{
    std::lock_guard<std::mutex> lock(impl_->sessionsM);
    return impl_->sessions;
}

ServeStats
ServeEngine::run()
{
    const size_t n = impl_->cfg.workers;
    ServeStats stats;
    stats.perWorker.resize(n);
    std::vector<std::exception_ptr> errors(n);
    std::vector<std::thread> threads;
    threads.reserve(n);

    // Tee warn()/inform() into the active session's flight recorder
    // for the duration of the run (previous sink restored on exit).
    LogSink prevSink;
    bool sinkInstalled = false;
    if (impl_->cfg.captureWarnings) {
        prevSink = setLogSink([](LogLevel level, const std::string &msg) {
            if (t_activeTrace)
                t_activeTrace->recordText(
                    obs::TraceEventKind::LogMessage,
                    obs::traceSideEngine,
                    (level == LogLevel::Warn ? "warn: " : "inform: ") +
                        msg);
        });
        sinkInstalled = true;
    }

    auto t0 = std::chrono::steady_clock::now();
    for (size_t i = 0; i < n; ++i)
        threads.emplace_back([this, i, &stats, &errors] {
            impl_->workerRun(i, stats.perWorker[i], errors[i]);
        });
    for (auto &t : threads)
        t.join();
    auto t1 = std::chrono::steady_clock::now();
    stats.elapsedSeconds =
        std::chrono::duration<double>(t1 - t0).count();

    if (sinkInstalled)
        setLogSink(std::move(prevSink));

    for (auto &err : errors)
        if (err)
            std::rethrow_exception(err);
    stats.metrics = impl_->reg->snapshot();
    return stats;
}

} // namespace ssla::serve

/**
 * @file
 * Fundamental type aliases shared across the library.
 */

#ifndef SSLA_UTIL_TYPES_HH
#define SSLA_UTIL_TYPES_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ssla
{

/** A growable buffer of raw bytes; the library's basic currency. */
using Bytes = std::vector<uint8_t>;

} // namespace ssla

#endif // SSLA_UTIL_TYPES_HH

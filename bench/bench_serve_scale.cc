/**
 * @file
 * Multi-core serving scalability sweep (extension of the paper's
 * single-connection anatomy to a terminating server's concurrency
 * axis).
 *
 * A fixed pool of connections (full handshakes, a fraction resumed,
 * each streaming some application data) is completed by 1/2/4/8
 * ServeEngine workers, first with the synchronous in-handshake RSA
 * decrypt and then with the decrypt offloaded to a CryptoPool (one
 * crypto thread per worker), which lets a worker service its other
 * sessions while a handshake is parked at ClientKeyExchange.
 *
 * Aggregate full-handshakes/sec, resumed-handshakes/sec and bulk MB/s
 * are reported per configuration as a JSON document (BENCH_scale.json
 * schema — see EXPERIMENTS.md). Speedups are judged against
 * min(workers, hw_cores): on a single-core host every configuration
 * honestly reports ~1x and the exit code gates only correctness (every
 * connection completes, handshake counts add up), never raw speedup,
 * so CI is meaningful on any machine shape.
 *
 *   ./bench_serve_scale [--smoke]
 */

#include <cstdio>
#include <cstring>
#include <thread>

#include "common.hh"
#include "serve/engine.hh"

using namespace ssla;
using namespace ssla::bench;

namespace
{

struct RunResult
{
    size_t workers = 0;
    bool offload = false;
    size_t cryptoThreads = 0;
    serve::ServeStats stats;
    uint64_t expectedConnections = 0;

    bool
    completedOk() const
    {
        return stats.fullHandshakes() + stats.resumedHandshakes() ==
               expectedConnections;
    }
};

RunResult
runOnce(size_t workers, size_t total_connections, double resume_fraction,
        size_t bulk_bytes, const pki::Certificate &cert,
        const std::shared_ptr<crypto::RsaPrivateKey> &key, bool offload)
{
    serve::ServeConfig cfg;
    cfg.workers = workers;
    cfg.connectionsPerWorker = total_connections / workers;
    cfg.concurrentPerWorker =
        std::min<size_t>(8, cfg.connectionsPerWorker);
    cfg.resumeFraction = resume_fraction;
    cfg.bulkBytes = bulk_bytes;
    cfg.recordBytes = 4096;
    cfg.certificate = &cert;
    cfg.privateKey = key;
    cfg.seed = 0x5ca1e ^ (workers << 8) ^ (offload ? 1 : 0);

    RunResult r;
    r.workers = workers;
    r.offload = offload;
    r.expectedConnections = cfg.connectionsPerWorker * workers;

    if (offload) {
        r.cryptoThreads = workers;
        serve::CryptoPool pool(r.cryptoThreads);
        cfg.cryptoPool = &pool;
        serve::ServeEngine engine(std::move(cfg));
        r.stats = engine.run();
    } else {
        serve::ServeEngine engine(std::move(cfg));
        r.stats = engine.run();
    }
    return r;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        if (!std::strcmp(argv[i], "--smoke"))
            smoke = true;

    warmUpCpu();

    const std::vector<size_t> worker_sweep =
        smoke ? std::vector<size_t>{1, 2}
              : std::vector<size_t>{1, 2, 4, 8};
    const size_t total_connections = smoke ? 8 : 96;
    const double resume_fraction = 0.4;
    const size_t bulk_bytes = smoke ? 16384 : 32768;
    const unsigned hw_cores =
        std::max(1u, std::thread::hardware_concurrency());

    const auto &key = benchKey(1024);
    pki::CertificateInfo info;
    info.serial = 1;
    info.issuer = "Bench CA";
    info.subject = "bench.server";
    info.notBefore = 0;
    info.notAfter = ~uint64_t(0);
    info.publicKey = key.pub;
    pki::Certificate cert = pki::Certificate::issue(info, *key.priv);

    std::vector<RunResult> runs;
    for (size_t w : worker_sweep)
        for (bool offload : {false, true})
            runs.push_back(runOnce(w, total_connections,
                                   resume_fraction, bulk_bytes, cert,
                                   key.priv, offload));

    // Baselines for speedup: the 1-worker run of the same offload mode.
    auto baseline = [&](bool offload) -> const RunResult * {
        for (const auto &r : runs)
            if (r.workers == 1 && r.offload == offload)
                return &r;
        return nullptr;
    };
    // Total connection completion rate: the mode-independent yardstick
    // (the full/resumed mix varies with scheduling, since a connection
    // can only resume a session that already completed when it was
    // created).
    auto connRate = [](const RunResult &r) {
        return r.stats.elapsedSeconds > 0
                   ? (r.stats.fullHandshakes() +
                      r.stats.resumedHandshakes()) /
                         r.stats.elapsedSeconds
                   : 0.0;
    };

    bool all_completed = true;
    JsonWriter j;
    j.beginObject();
    j.field("bench", "serve_scale");
    j.field("smoke", smoke);
    j.field("hw_cores", static_cast<uint64_t>(hw_cores));
    j.field("total_connections", static_cast<uint64_t>(total_connections));
    j.field("resume_fraction", resume_fraction, 2);
    j.field("bulk_bytes_per_conn", static_cast<uint64_t>(bulk_bytes));
    j.beginArray("workers_swept");
    for (size_t w : worker_sweep)
        j.element(static_cast<uint64_t>(w));
    j.endArray();

    j.beginArray("results");
    for (const auto &r : runs) {
        all_completed = all_completed && r.completedOk();
        const RunResult *base = baseline(r.offload);
        double speedup = (base && connRate(*base) > 0)
                             ? connRate(r) / connRate(*base)
                             : 0.0;
        j.beginObject();
        j.field("workers", static_cast<uint64_t>(r.workers));
        j.field("offload", r.offload);
        j.field("crypto_threads", static_cast<uint64_t>(r.cryptoThreads));
        j.field("full_handshakes", r.stats.fullHandshakes());
        j.field("resumed_handshakes", r.stats.resumedHandshakes());
        j.field("park_events", r.stats.parkEvents());
        j.field("elapsed_sec", r.stats.elapsedSeconds);
        j.field("full_hs_per_sec", r.stats.fullHandshakesPerSec(), 1);
        j.field("resumed_hs_per_sec", r.stats.resumedHandshakesPerSec(),
                1);
        j.field("bulk_mb_per_sec", r.stats.bulkMBPerSec(), 2);
        j.field("connections_per_sec", connRate(r), 1);
        j.field("speedup_vs_1w", speedup, 2);
        // Perfect scaling is capped by the physical core count: the
        // honest yardstick for this configuration.
        j.field("ideal_speedup",
                static_cast<double>(std::min<size_t>(r.workers, hw_cores)),
                1);
        j.field("completed_ok", r.completedOk());
        j.endObject();
    }
    j.endArray();

    // Offload-vs-sync handshake-rate ratio at equal worker counts: the
    // Section 6.2 asynchronous-engine claim at serving scale. Only
    // meaningful where spare cores exist to run the pool; reported
    // everywhere, gated nowhere.
    j.beginArray("offload_vs_sync");
    for (size_t w : worker_sweep) {
        const RunResult *sync_run = nullptr, *off_run = nullptr;
        for (const auto &r : runs) {
            if (r.workers != w)
                continue;
            (r.offload ? off_run : sync_run) = &r;
        }
        if (!sync_run || !off_run)
            continue;
        double ratio = connRate(*sync_run) > 0
                           ? connRate(*off_run) / connRate(*sync_run)
                           : 0.0;
        j.beginObject();
        j.field("workers", static_cast<uint64_t>(w));
        j.field("conn_rate_ratio", ratio, 2);
        j.field("park_events", off_run->stats.parkEvents());
        j.endObject();
    }
    j.endArray();

    j.field("all_completed", all_completed);
    j.endObject();

    if (!all_completed) {
        std::fprintf(stderr,
                     "FAIL: a run lost connections (handshake counts "
                     "do not add up to the configured total)\n");
        return 1;
    }
    return 0;
}

/**
 * @file
 * PKCS#1 v1.5 padding tests (the "block_parsing" step of Table 7).
 */

#include <gtest/gtest.h>

#include "crypto/pkcs1.hh"
#include "util/bytes.hh"

namespace
{

using namespace ssla;
using namespace ssla::crypto;

RandomPool &
testPool()
{
    static RandomPool pool(toBytes("pkcs1-tests"));
    return pool;
}

TEST(Pkcs1, Type2RoundTrip)
{
    Bytes data = toBytes("forty-eight byte premaster secret payload!!");
    Bytes block = pkcs1PadType2(data, 128, testPool());
    EXPECT_EQ(block.size(), 128u);
    EXPECT_EQ(block[0], 0x00);
    EXPECT_EQ(block[1], 0x02);
    EXPECT_EQ(pkcs1UnpadType2(block), data);
}

TEST(Pkcs1, Type2PaddingIsNonZero)
{
    Bytes data = toBytes("x");
    Bytes block = pkcs1PadType2(data, 64, testPool());
    // Bytes 2..N-2 are the random pad; none may be zero.
    size_t separator = block.size() - data.size() - 1;
    for (size_t i = 2; i < separator; ++i)
        EXPECT_NE(block[i], 0) << "at " << i;
    EXPECT_EQ(block[separator], 0);
}

TEST(Pkcs1, Type1RoundTrip)
{
    Bytes digest(36, 0xab);
    Bytes block = pkcs1PadType1(digest, 128);
    EXPECT_EQ(block.size(), 128u);
    EXPECT_EQ(block[0], 0x00);
    EXPECT_EQ(block[1], 0x01);
    EXPECT_EQ(pkcs1UnpadType1(block), digest);
}

TEST(Pkcs1, Type1PaddingIsFF)
{
    Bytes digest(20, 0x11);
    Bytes block = pkcs1PadType1(digest, 64);
    size_t separator = block.size() - digest.size() - 1;
    for (size_t i = 2; i < separator; ++i)
        EXPECT_EQ(block[i], 0xff);
}

TEST(Pkcs1, PayloadTooLongThrows)
{
    Bytes data(54); // needs 54 + 11 = 65 > 64
    EXPECT_THROW(pkcs1PadType2(data, 64, testPool()), std::length_error);
    EXPECT_THROW(pkcs1PadType1(data, 64), std::length_error);
    // Exactly at the limit is fine.
    Bytes fits(53);
    EXPECT_NO_THROW(pkcs1PadType2(fits, 64, testPool()));
}

TEST(Pkcs1, UnpadRejectsBadHeader)
{
    Bytes data = toBytes("payload");
    Bytes block = pkcs1PadType2(data, 64, testPool());
    Bytes bad = block;
    bad[0] = 0x01;
    EXPECT_THROW(pkcs1UnpadType2(bad), std::runtime_error);
    bad = block;
    bad[1] = 0x03;
    EXPECT_THROW(pkcs1UnpadType2(bad), std::runtime_error);
}

TEST(Pkcs1, UnpadRejectsWrongType)
{
    Bytes block2 = pkcs1PadType2(toBytes("abc"), 64, testPool());
    EXPECT_THROW(pkcs1UnpadType1(block2), std::runtime_error);
    Bytes block1 = pkcs1PadType1(toBytes("abc"), 64);
    EXPECT_THROW(pkcs1UnpadType2(block1), std::runtime_error);
}

TEST(Pkcs1, UnpadRejectsMissingSeparator)
{
    Bytes block(64, 0xff);
    block[0] = 0x00;
    block[1] = 0x02;
    EXPECT_THROW(pkcs1UnpadType2(block), std::runtime_error);
}

TEST(Pkcs1, UnpadRejectsShortPadding)
{
    // Separator too early: fewer than 8 pad bytes.
    Bytes block(64, 0xaa);
    block[0] = 0x00;
    block[1] = 0x02;
    block[5] = 0x00; // only 3 pad bytes
    EXPECT_THROW(pkcs1UnpadType2(block), std::runtime_error);
}

TEST(Pkcs1, UnpadRejectsCorruptType1Padding)
{
    Bytes block = pkcs1PadType1(toBytes("sig"), 64);
    block[10] = 0xfe; // type-1 padding must be all 0xff
    EXPECT_THROW(pkcs1UnpadType1(block), std::runtime_error);
}

TEST(Pkcs1, EmptyPayloadRoundTrip)
{
    Bytes block = pkcs1PadType2(Bytes{}, 64, testPool());
    EXPECT_TRUE(pkcs1UnpadType2(block).empty());
}

} // anonymous namespace

/**
 * @file
 * AES block cipher public interface (FIPS 197): 128/192/256-bit keys,
 * single-block ECB primitives. Chaining modes live in crypto/cipher.hh.
 */

#ifndef SSLA_CRYPTO_AES_HH
#define SSLA_CRYPTO_AES_HH

#include "crypto/aes_kernel.hh"
#include "util/types.hh"

namespace ssla::crypto
{

/** An AES instance holding expanded encrypt and decrypt schedules. */
class Aes
{
  public:
    static constexpr size_t blockBytes = 16;

    /**
     * @param key raw key bytes; its length (16/24/32) picks the variant
     */
    explicit Aes(const Bytes &key);

    /** Encrypt a single 16-byte block. */
    void encryptBlock(const uint8_t in[16], uint8_t out[16]) const;

    /** Decrypt a single 16-byte block. */
    void decryptBlock(const uint8_t in[16], uint8_t out[16]) const;

    unsigned keyBits() const { return keyBits_; }
    int rounds() const { return enc_.rounds; }

    const AesKey &encKey() const { return enc_; }
    const AesKey &decKey() const { return dec_; }

  private:
    AesKey enc_;
    AesKey dec_;
    unsigned keyBits_;
};

} // namespace ssla::crypto

#endif // SSLA_CRYPTO_AES_HH

/**
 * @file
 * SSLv3 alert codes and the exception type protocol errors surface as.
 */

#ifndef SSLA_SSL_ALERT_HH
#define SSLA_SSL_ALERT_HH

#include <cstdint>
#include <stdexcept>
#include <string>

namespace ssla::ssl
{

/** SSLv3 alert descriptions (RFC 6101 section 5.4.2). */
enum class AlertDescription : uint8_t
{
    CloseNotify = 0,
    UnexpectedMessage = 10,
    BadRecordMac = 20,
    DecompressionFailure = 30,
    HandshakeFailure = 40,
    NoCertificate = 41,
    BadCertificate = 42,
    UnsupportedCertificate = 43,
    CertificateRevoked = 44,
    CertificateExpired = 45,
    CertificateUnknown = 46,
    IllegalParameter = 47,
    /**
     * Local resource failure unrelated to the peer (TLS 1.0's
     * internal_error, RFC 2246 7.2.2). SSLv3 has no such code; we send
     * it anyway when e.g. a saturated crypto pool rejects a handshake,
     * since the alternative — blaming the peer with handshake_failure —
     * would misreport an overload as a protocol violation.
     */
    InternalError = 80,
};

/** Alert severity. */
enum class AlertLevel : uint8_t
{
    Warning = 1,
    Fatal = 2,
};

/** Human-readable name of an alert. */
const char *alertName(AlertDescription desc);

/** Exception carrying the alert a protocol failure maps to. */
class SslError : public std::runtime_error
{
  public:
    SslError(AlertDescription desc, const std::string &what)
        : std::runtime_error(what + " (" + alertName(desc) + ")"),
          desc_(desc)
    {}

    AlertDescription alert() const { return desc_; }

  private:
    AlertDescription desc_;
};

} // namespace ssla::ssl

#endif // SSLA_SSL_ALERT_HH

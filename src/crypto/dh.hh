/**
 * @file
 * Ephemeral Diffie-Hellman key agreement — the other asymmetric
 * handshake primitive the paper names (Diffie-Hellman [6]) beside RSA.
 *
 * Used by the DHE_RSA cipher suites: the server signs fresh DH
 * parameters with its RSA key, both sides exponentiate, and the shared
 * secret becomes the pre-master. Costs the server a modexp *plus* an
 * RSA signature per handshake (see bench_dhe for the comparison with
 * plain RSA key exchange).
 */

#ifndef SSLA_CRYPTO_DH_HH
#define SSLA_CRYPTO_DH_HH

#include "bn/bignum.hh"
#include "bn/montgomery.hh"
#include "crypto/rand.hh"

namespace ssla::crypto
{

/** A Diffie-Hellman group: modulus and generator. */
struct DhParams
{
    bn::BigNum p;
    bn::BigNum g;
};

/**
 * The 1024-bit MODP group from RFC 2409 ("Oakley group 2"), the
 * paper-era default. Its safe-primality is rechecked by the tests
 * with our own Miller-Rabin.
 */
const DhParams &oakleyGroup2();

/** An ephemeral DH key pair. */
struct DhKeyPair
{
    bn::BigNum priv; ///< random exponent
    bn::BigNum pub;  ///< g^priv mod p
};

/**
 * Generate an ephemeral key pair (probed as dh_generate_key).
 *
 * @param exponent_bits private-exponent size; 256 bits gives ~128-bit
 *        work factor against the 1024-bit group, matching era practice
 */
DhKeyPair dhGenerateKey(const DhParams &params, RandomPool &pool,
                        size_t exponent_bits = 256);

/**
 * Compute the shared secret Z = peer_pub^priv mod p (probed as
 * dh_compute_key). Returns Z as a big-endian byte string with leading
 * zeros stripped, as the TLS pre-master rules require.
 *
 * @throws std::domain_error when the peer public value is outside
 *         [2, p-2] (degenerate-key attack rejection)
 */
Bytes dhComputeShared(const DhParams &params, const bn::BigNum &peer_pub,
                      const bn::BigNum &priv);

} // namespace ssla::crypto

#endif // SSLA_CRYPTO_DH_HH

/**
 * @file
 * Reproduces Table 3: crypto operations during the SSL handshake,
 * grouped into public key / private key / hash / other, with their
 * share of total SSL handshake processing.
 */

#include <cstdio>
#include <memory>

#include "common.hh"
#include "perf/probe.hh"
#include "perf/report.hh"
#include "ssl/client.hh"
#include "ssl/server.hh"

using namespace ssla;
using namespace ssla::ssl;
using perf::TablePrinter;

int
main()
{
    constexpr int runs = 50;

    const auto &key = bench::benchKey(1024);
    pki::CertificateInfo info;
    info.serial = 1;
    info.issuer = "Bench CA";
    info.subject = "bench.server";
    info.notBefore = 0;
    info.notAfter = ~uint64_t(0);
    info.publicKey = key.pub;
    pki::Certificate cert = pki::Certificate::issue(info, *key.priv);

    perf::PerfContext ctx;
    uint64_t handshake_cycles = 0;

    for (int i = 0; i < runs + 2; ++i) {
        if (i == 2) { // first two runs are warm-up
            ctx.clear();
            handshake_cycles = 0;
        }
        BioPair wires;
        ServerConfig scfg;
        scfg.certificate = cert;
        scfg.privateKey = key.priv;

        std::unique_ptr<SslServer> server;
        {
            perf::ContextScope scope(&ctx);
            uint64_t t0 = rdcycles();
            server =
                std::make_unique<SslServer>(scfg, wires.serverEnd());
            handshake_cycles += rdcycles() - t0;
        }
        SslClient client(ClientConfig{}, wires.clientEnd());
        while (!client.handshakeDone() || !server->handshakeDone()) {
            bool progress = client.advance();
            {
                perf::ContextScope scope(&ctx);
                uint64_t t0 = rdcycles();
                progress |= server->advance();
                handshake_cycles += rdcycles() - t0;
            }
            if (!progress)
                throw std::runtime_error("handshake deadlock");
        }
    }

    auto sum = [&](std::vector<std::string> names) {
        return static_cast<double>(ctx.cyclesFor(names)) / runs;
    };
    double pub = sum({"rsa_private_decryption"});
    double priv = sum({"pri_encryption", "pri_decryption"});
    double hash = sum({"init_finished_mac", "finish_mac",
                       "final_finish_mac", "gen_master_secret",
                       "gen_key_block", "mac", "cert_verify_mac"});
    double other = sum({"rand_pseudo_bytes"});
    double crypto_total = pub + priv + hash + other;
    double ssl_total =
        static_cast<double>(handshake_cycles) / runs;

    TablePrinter table(
        "Table 3: Crypto operations during SSL handshake "
        "(server side, RSA-1024, DES-CBC3-SHA)");
    table.setHeader({"Functionality", "cycles", "%", "paper %"});
    auto pct = [&](double v) {
        return perf::fmtPct(100.0 * v / ssl_total);
    };
    table.addRow({"Public key encryption",
                  perf::fmtCount(static_cast<uint64_t>(pub)), pct(pub),
                  "90.4"});
    table.addRow({"Private key encryption",
                  perf::fmtCount(static_cast<uint64_t>(priv)),
                  pct(priv), "0.1"});
    table.addRow({"Hash functions",
                  perf::fmtCount(static_cast<uint64_t>(hash)),
                  pct(hash), "2.8"});
    table.addRow({"Other functions",
                  perf::fmtCount(static_cast<uint64_t>(other)),
                  pct(other), "1.7"});
    table.addRule();
    table.addRow({"Total crypto operations",
                  perf::fmtCount(static_cast<uint64_t>(crypto_total)),
                  pct(crypto_total), "95.0"});
    table.addRow({"Total SSL processing",
                  perf::fmtCount(static_cast<uint64_t>(ssl_total)),
                  "100%", "100"});
    table.print();
    return 0;
}

# Empty dependencies file for bench_table9_muladd_kernel.
# This may be replaced when dependencies are built.

/**
 * @file
 * Self-healing overload-control tests: deadline-aware admission in the
 * CryptoPool (per-class shedding, queue-wait deadline budgets, the
 * Adaptive control loop), the Supervisor's reap-and-respawn contract
 * over dead or wedged crypto threads, the accept-gate CircuitBreaker,
 * the client-side CertificateVerify parking protocol, and the chaos
 * rows proving an overloaded or crypto-faulted engine run terminates
 * every session by shed/alert — never by silent hang.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "obs/export.hh"
#include "serve/breaker.hh"
#include "serve/engine.hh"
#include "serve/supervisor.hh"
#include "ssl/client.hh"
#include "ssl/server.hh"
#include "testkeys.hh"
#include "util/bytes.hh"
#include "util/cycles.hh"

namespace
{

using namespace ssla;

/** Chaos seed override, same env contract as test_faults.cc. */
uint64_t
selfhealSeed()
{
    if (const char *env = std::getenv("SSLA_CHAOS_SEED"))
        return std::strtoull(env, nullptr, 0);
    return 0x5e1f;
}

/** Cycles corresponding to @p ms milliseconds of wall time. */
uint64_t
msCycles(double ms)
{
    return static_cast<uint64_t>(cycleHz() * ms / 1000.0);
}

/**
 * Occupies a pool thread with a job that blocks until release(), so
 * jobs queued behind it age deterministically.
 */
class PoolGate
{
  public:
    explicit PoolGate(serve::CryptoPool &cp)
    {
        job_ = cp.submitRaw([this] {
            std::unique_lock<std::mutex> lock(m_);
            cv_.wait(lock, [this] { return released_; });
            return Bytes();
        });
        // Wait for a worker to pick the gate up, so the queue slots
        // (and queue-bound checks) behind it are deterministic.
        while (cp.queueDepth() != 0)
            std::this_thread::yield();
    }

    void
    release()
    {
        {
            std::lock_guard<std::mutex> lock(m_);
            released_ = true;
        }
        cv_.notify_all();
        job_.wait();
    }

  private:
    std::mutex m_;
    std::condition_variable cv_;
    bool released_ = false;
    crypto::RsaJob job_;
};

// ---------------------------------------------------------------------
// Deadline-aware admission

TEST(Overload, DeadlineBudgetShedsStaleJobsBeforeExecution)
{
    // A 1ms queue-wait budget with the single thread gated for 20ms:
    // the queued job is dead on dequeue and must fail with the
    // deadline error WITHOUT its function ever running.
    serve::AdmissionControl adm;
    adm.deadlineBudgetCycles = msCycles(1.0);
    serve::CryptoPool cp(1, 0, serve::OverloadPolicy::Reject, adm);
    PoolGate gate(cp);

    std::atomic<bool> ran{false};
    crypto::RsaJob victim = cp.submitRaw([&ran] {
        ran = true;
        return Bytes();
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    gate.release();

    try {
        victim.wait();
        FAIL() << "stale job must be deadline-shed";
    } catch (const crypto::ProviderDeadlineError &) {
        // Expected: and it is a subclass of the overload family, so
        // endpoints map it to internal_error through existing catches.
    }
    EXPECT_FALSE(ran.load());
    EXPECT_EQ(cp.deadlineShedJobs(), 1u);
    EXPECT_EQ(cp.shedByClass(serve::JobClass::NewFullHandshake), 1u);
}

TEST(Overload, DeadlineErrorIsAnOverloadError)
{
    serve::AdmissionControl adm;
    adm.deadlineBudgetCycles = msCycles(1.0);
    serve::CryptoPool cp(1, 0, serve::OverloadPolicy::Reject, adm);
    PoolGate gate(cp);
    crypto::RsaJob victim = cp.submitRaw([] { return Bytes(); });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    gate.release();
    EXPECT_THROW(victim.wait(), crypto::ProviderOverloadError);
}

TEST(Overload, JobBindingBudgetOverridesPoolDefault)
{
    // No pool-level budget; the submitter binds a 1ms budget for one
    // job and leaves another unbound. Only the bound job sheds.
    serve::CryptoPool cp(1);
    PoolGate gate(cp);

    crypto::RsaJob bound;
    {
        serve::JobBindingScope scope(
            {serve::JobClass::Resumption, msCycles(1.0)});
        bound = cp.submitRaw([] { return toBytes("bound"); });
    }
    crypto::RsaJob unbound = cp.submitRaw([] { return toBytes("free"); });

    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    gate.release();

    EXPECT_THROW(bound.wait(), crypto::ProviderDeadlineError);
    EXPECT_EQ(unbound.wait(), toBytes("free"));
    EXPECT_EQ(cp.deadlineShedJobs(), 1u);
    // The shed is attributed to the binding's class.
    EXPECT_EQ(cp.shedByClass(serve::JobClass::Resumption), 1u);
}

TEST(Overload, AdaptiveFlipsSheddingFromMeasuredQueueWait)
{
    // Tiny CoDel target (~30us) with a 20ms backlog behind the gate:
    // once the backlog drains, the measured queue-wait p99 is far past
    // target and the control loop must flip to shedding new-full (and,
    // at >2x target, continuation) work while resumption jobs stay
    // admitted.
    serve::AdmissionControl adm;
    adm.targetDelayCycles = msCycles(0.03);
    // The interval must be shorter than the backlog's queue wait (so
    // the drain crosses a boundary and recomputes) but much longer
    // than the drain-to-probe gap below — otherwise the idle-recovery
    // path can legitimately clear the flags before the probe submits,
    // which sanitizer slowdown turns from theoretical into routine.
    adm.intervalCycles = msCycles(10.0);
    adm.deadlineBudgetCycles = UINT64_MAX / 2; // isolate admission
    serve::CryptoPool cp(1, 0, serve::OverloadPolicy::Adaptive, adm);
    PoolGate gate(cp);

    std::vector<crypto::RsaJob> backlog;
    for (int i = 0; i < 6; ++i)
        backlog.push_back(cp.submitRaw([] { return Bytes(); }));
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    gate.release();
    for (auto &j : backlog) {
        try {
            j.wait();
        } catch (const crypto::ProviderOverloadError &) {
            // An interval boundary can land mid-drain (near-certain
            // under sanitizer slowdown), shedding the tail of the
            // backlog at dequeue; the p99 window and the flipped
            // admit bits below are the same either way.
        }
    }

    EXPECT_TRUE(cp.adaptiveShedding());
    EXPECT_GT(cp.queueWaitP99Cycles(), adm.targetDelayCycles);

    // New-full admission is refused fast, before any RSA cycles burn.
    crypto::RsaJob refused = cp.submitRaw([] { return Bytes(); });
    EXPECT_THROW(refused.wait(), crypto::ProviderOverloadError);
    EXPECT_GE(cp.shedByClass(serve::JobClass::NewFullHandshake), 1u);

    // Resumption work is never shed at admission.
    {
        serve::JobBindingScope scope({serve::JobClass::Resumption, 0});
        crypto::RsaJob ok = cp.submitRaw([] { return toBytes("r"); });
        EXPECT_EQ(ok.wait(), toBytes("r"));
    }
}

TEST(Overload, AdaptiveRecoversOnceQueueWaitFalls)
{
    // After the same overload episode, a stream of short-wait jobs
    // (with interval boundaries forced between them) must wash the
    // window and clear the shedding flags with hysteresis. The target
    // is generous (2ms) so recovery only depends on queue waits being
    // small relative to a handshake, not on scheduler latency.
    serve::AdmissionControl adm;
    adm.targetDelayCycles = msCycles(2.0);
    adm.intervalCycles = msCycles(0.5);
    adm.deadlineBudgetCycles = UINT64_MAX / 2;
    serve::CryptoPool cp(1, 0, serve::OverloadPolicy::Adaptive, adm);
    {
        PoolGate gate(cp);
        std::vector<crypto::RsaJob> backlog;
        for (int i = 0; i < 6; ++i)
            backlog.push_back(cp.submitRaw([] { return Bytes(); }));
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        gate.release();
        for (auto &j : backlog)
            j.wait();
    }
    ASSERT_TRUE(cp.adaptiveShedding());

    // Resumption jobs are always admitted, so they can carry the
    // fresh (small) wait samples that wash out the spike. First
    // overwrite the whole sample ring with small waits: until the
    // episode's 20ms samples are gone, any recompute (including the
    // one a later submit can trigger) may legitimately re-assert
    // shedding from the stale window.
    serve::JobBindingScope scope({serve::JobClass::Resumption, 0});
    for (int i = 0; i < 80; ++i)
        cp.submitRaw([] { return Bytes(); }).wait();
    for (int i = 0; i < 150 && cp.adaptiveShedding(); ++i) {
        crypto::RsaJob j = cp.submitRaw([] { return Bytes(); });
        j.wait();
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_FALSE(cp.adaptiveShedding());

    // And new-full work is admitted again.
    serve::JobBindingScope full(
        {serve::JobClass::NewFullHandshake, 0});
    crypto::RsaJob ok = cp.submitRaw([] { return toBytes("again"); });
    EXPECT_EQ(ok.wait(), toBytes("again"));
}

TEST(Overload, AdaptiveFullQueueKeepsInvestedClasses)
{
    // At the hard queue bound, Adaptive rejects a new-full submit fast
    // but hands invested classes back to the caller (sync fallback),
    // mirroring Shed.
    serve::CryptoPool cp(1, /*max_queue=*/1,
                         serve::OverloadPolicy::Adaptive);
    PoolGate gate(cp);
    crypto::RsaJob filler = cp.submitRaw([] { return Bytes(); });

    crypto::RsaJob rejected = cp.submitRaw([] { return Bytes(); });
    ASSERT_TRUE(rejected.valid());
    EXPECT_THROW(rejected.wait(), crypto::ProviderOverloadError);
    EXPECT_EQ(cp.shedByClass(serve::JobClass::NewFullHandshake), 1u);

    {
        serve::JobBindingScope scope(
            {serve::JobClass::Continuation, 0});
        crypto::RsaJob shed = cp.submitRaw([] { return Bytes(); });
        EXPECT_FALSE(shed.valid()); // caller computes synchronously
        EXPECT_EQ(cp.shedByClass(serve::JobClass::Continuation), 1u);
    }
    gate.release();
    filler.wait();
}

// ---------------------------------------------------------------------
// Supervisor: reap and respawn

TEST(Supervisor, ReapsDeadThreadFailsJobAndRespawns)
{
    // Deterministic thread death: the first job kills its thread
    // (rate 1, budget 1), leaving the slot busy forever. The
    // supervisor must fail the job — the session terminates instead
    // of hanging — and spawn a replacement that serves the next job.
    serve::CryptoFaultPlan faults;
    faults.threadDeathRate = 1.0;
    faults.maxThreadDeaths = 1;
    faults.seed = selfhealSeed();
    serve::CryptoPool cp(1, 0, serve::OverloadPolicy::Reject, {},
                         faults);
    serve::SupervisorConfig scfg;
    scfg.pollIntervalUs = 200;
    scfg.stallThresholdCycles = msCycles(2.0);
    serve::Supervisor sup(cp, scfg);

    crypto::RsaJob doomed = cp.submitRaw([] { return toBytes("x"); });
    EXPECT_THROW(doomed.wait(), crypto::ProviderFailureError);
    // The reap resolves the job before the supervisor's own counter
    // ticks; wait for the poll to finish bookkeeping.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (sup.restarts() == 0 &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::yield();
    EXPECT_EQ(cp.supervisedJobFailures(), 1u);
    EXPECT_EQ(cp.threadRestarts(), 1u);
    EXPECT_EQ(sup.restarts(), 1u);
    EXPECT_GE(cp.healthSlots(), 2u);

    // The death budget is spent: the replacement completes real work.
    crypto::RsaJob next = cp.submitRaw([] { return toBytes("alive"); });
    EXPECT_EQ(next.wait(), toBytes("alive"));
    EXPECT_EQ(cp.completedJobs(), 1u);
}

TEST(Supervisor, RespawnedThreadServesRealRsaWork)
{
    // Same reap path, but the replacement must rebuild key replicas
    // and produce a correct decrypt.
    const auto &kp = test::testKey512();
    crypto::RandomPool rand{toBytes("respawn-rsa")};
    Bytes plain = rand.bytes(20);
    Bytes cipher = crypto::rsaPublicEncrypt(kp.pub, plain, rand);

    serve::CryptoFaultPlan faults;
    faults.threadDeathRate = 1.0;
    faults.maxThreadDeaths = 1;
    serve::CryptoPool cp(1, 0, serve::OverloadPolicy::Reject, {},
                         faults);
    serve::SupervisorConfig scfg;
    // Wide enough that the respawned thread's *healthy* decrypt is
    // never mistaken for a stall under sanitizer slowdown; the doomed
    // job's thread stops stamping entirely, so detection still fires.
    scfg.stallThresholdCycles = msCycles(50.0);
    serve::Supervisor sup(cp, scfg);

    crypto::RsaJob doomed = cp.submitDecrypt(*kp.priv, cipher);
    EXPECT_THROW(doomed.wait(), crypto::ProviderFailureError);
    crypto::RsaJob retry = cp.submitDecrypt(*kp.priv, cipher);
    EXPECT_EQ(retry.wait(), plain);
    EXPECT_EQ(cp.threadRestarts(), 1u);
}

TEST(Supervisor, ExternalHeartbeatStallsAreCounted)
{
    serve::CryptoPool cp(1);
    serve::SupervisorConfig scfg;
    scfg.pollIntervalUs = 200;
    scfg.stallThresholdCycles = msCycles(1.0);
    serve::Supervisor sup(cp, scfg);

    std::atomic<uint64_t> *hb = sup.watch("test-worker");
    hb->store(rdcycles(), std::memory_order_relaxed);
    // Stop stamping: the slot goes stale and must be counted as one
    // stall episode (edge-triggered, not once per poll).
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_EQ(sup.externalStalls(), 1u);

    // Recover, then stall again: a second episode.
    hb->store(rdcycles(), std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_EQ(sup.externalStalls(), 2u);
}

// ---------------------------------------------------------------------
// First-wins and replica accounting (the Shed-cancel race regression)

TEST(CryptoPoolRace, SupervisorReapVsSlowCompletionSingleResolve)
{
    // Every job wedges its thread (spin, no heartbeat) long enough for
    // the supervisor to declare it dead. The supervisor fails the job
    // first; the thread is merely slow and completes afterwards — the
    // second finish must no-op (first-wins), with the waiter seeing
    // exactly one resolution. TSan runs this for the data-race half.
    serve::CryptoFaultPlan faults;
    faults.slowdownRate = 1.0;
    faults.slowdownCycles = msCycles(30.0);
    serve::CryptoPool cp(1, 0, serve::OverloadPolicy::Reject, {},
                         faults);
    serve::SupervisorConfig scfg;
    scfg.pollIntervalUs = 200;
    scfg.stallThresholdCycles = msCycles(3.0);
    serve::Supervisor sup(cp, scfg);

    crypto::RsaJob job = cp.submitRaw([] { return toBytes("late"); });
    EXPECT_THROW(job.wait(), crypto::ProviderFailureError);
    // The reap resolves the victim job *before* the restart counter
    // increments (so waiters never observe a counted restart whose
    // job still hangs); give the tail of the reap a moment to land.
    const auto restartDeadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (cp.threadRestarts() == 0 &&
           std::chrono::steady_clock::now() < restartDeadline)
        std::this_thread::yield();
    EXPECT_GE(cp.threadRestarts(), 1u);

    // The zombie finishes its spin and completes the (already
    // resolved) job; completedJobs() proves it ran to completion.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (cp.completedJobs() == 0 &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::yield();
    EXPECT_EQ(cp.completedJobs(), 1u);
    // First-wins: the failure the waiter saw is still the outcome.
    EXPECT_THROW(job.wait(), crypto::ProviderFailureError);
}

TEST(CryptoPoolRace, CancelCompleteHammerNoDoubleResolve)
{
    // Cancel racing completion from another thread: whatever side wins
    // the first-wins exchange, wait() returns exactly once with either
    // the result or an error — never a hang, never a double-set.
    const auto &kp = test::testKey512();
    crypto::RandomPool rand{toBytes("cancel-hammer")};
    Bytes plain = rand.bytes(16);
    Bytes cipher = crypto::rsaPublicEncrypt(kp.pub, plain, rand);

    serve::CryptoPool cp(2);
    for (int i = 0; i < 48; ++i) {
        crypto::RsaJob job = cp.submitDecrypt(*kp.priv, cipher);
        std::thread canceller([&job] { job.cancel(); });
        bool resolved = false;
        try {
            Bytes out = job.wait();
            EXPECT_EQ(out, plain);
            resolved = true;
        } catch (const std::exception &) {
            resolved = true; // cancelled (or raced) — still one outcome
        }
        canceller.join();
        EXPECT_TRUE(resolved);
    }
}

TEST(CryptoPoolRace, ReplicaCacheStaysBoundedUnderKeyChurn)
{
    // 12 distinct key objects through a 2-thread pool: the per-thread
    // replica cache (8 entries) must evict rather than grow, keeping
    // the live-replica count bounded — key churn cannot leak
    // Montgomery scratch.
    const crypto::RsaPrivateKey &k = *test::testKey512().priv;
    std::vector<std::shared_ptr<crypto::RsaPrivateKey>> keys;
    for (int i = 0; i < 12; ++i)
        keys.push_back(std::make_shared<crypto::RsaPrivateKey>(
            k.publicKey().n, k.publicKey().e, k.d(), k.p(), k.q()));

    crypto::RandomPool rand{toBytes("replica-churn")};
    Bytes plain = rand.bytes(16);
    Bytes cipher =
        crypto::rsaPublicEncrypt(test::testKey512().pub, plain, rand);

    serve::CryptoPool cp(2);
    for (int round = 0; round < 2; ++round)
        for (auto &key : keys) {
            crypto::RsaJob job = cp.submitDecrypt(*key, cipher);
            EXPECT_EQ(job.wait(), plain);
        }
    EXPECT_GT(cp.replicaCount(), 0u);
    EXPECT_LE(cp.replicaCount(), 2u * 8u);
}

// ---------------------------------------------------------------------
// Circuit breaker

TEST(Breaker, TripsOnFailureStreakAndRefusesWhileOpen)
{
    serve::BreakerConfig bcfg;
    bcfg.tripThreshold = 3;
    bcfg.openHoldCycles = UINT64_MAX / 2; // never leaves Open here
    serve::CircuitBreaker br(bcfg);

    EXPECT_EQ(br.state(), serve::BreakerState::Closed);
    br.noteOverloadFailure();
    br.noteOverloadFailure();
    // A success in Closed resets the streak.
    br.noteFullHandshakeSuccess();
    br.noteOverloadFailure();
    br.noteOverloadFailure();
    EXPECT_EQ(br.state(), serve::BreakerState::Closed);
    br.noteOverloadFailure();
    EXPECT_EQ(br.state(), serve::BreakerState::Open);
    EXPECT_EQ(br.trips(), 1u);

    EXPECT_FALSE(br.admitFull());
    EXPECT_FALSE(br.admitFull());
    EXPECT_EQ(br.refusals(), 2u);
}

TEST(Breaker, HalfOpenProbesThenClosesOnSuccesses)
{
    serve::BreakerConfig bcfg;
    bcfg.tripThreshold = 1;
    bcfg.openHoldCycles = msCycles(1.0);
    bcfg.halfOpenProbes = 2;
    bcfg.closeThreshold = 2;
    serve::CircuitBreaker br(bcfg);

    br.noteOverloadFailure();
    ASSERT_EQ(br.state(), serve::BreakerState::Open);

    // Wait out the hold-off; the next admit converts Open -> HalfOpen
    // and spends probe 1.
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_TRUE(br.admitFull());
    EXPECT_EQ(br.state(), serve::BreakerState::HalfOpen);
    EXPECT_TRUE(br.admitFull());  // probe 2
    EXPECT_FALSE(br.admitFull()); // probe budget spent

    br.noteFullHandshakeSuccess();
    EXPECT_EQ(br.state(), serve::BreakerState::HalfOpen);
    br.noteFullHandshakeSuccess();
    EXPECT_EQ(br.state(), serve::BreakerState::Closed);
    EXPECT_TRUE(br.admitFull());
}

TEST(Breaker, HalfOpenFailureReopens)
{
    serve::BreakerConfig bcfg;
    bcfg.tripThreshold = 1;
    bcfg.openHoldCycles = msCycles(1.0);
    serve::CircuitBreaker br(bcfg);

    br.noteOverloadFailure();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ASSERT_TRUE(br.admitFull());
    ASSERT_EQ(br.state(), serve::BreakerState::HalfOpen);

    br.noteOverloadFailure();
    EXPECT_EQ(br.state(), serve::BreakerState::Open);
    EXPECT_EQ(br.trips(), 2u);
    EXPECT_FALSE(br.admitFull()); // hold-off clock restarted
}

// ---------------------------------------------------------------------
// Client-side CertificateVerify parking (async signing, client side)

/**
 * Provider whose submitRsaSign hands back a job the test resolves by
 * hand (the client-auth counterpart of test_serve.cc's StallProvider).
 */
class SignStallProvider : public crypto::Provider
{
  public:
    const char *name() const override { return "sign-stall"; }

    std::unique_ptr<crypto::Cipher>
    createCipher(crypto::CipherAlg alg, const Bytes &key,
                 const Bytes &iv, bool encrypt) override
    {
        return inner_.createCipher(alg, key, iv, encrypt);
    }
    std::unique_ptr<crypto::Digest>
    createDigest(crypto::DigestAlg alg) override
    {
        return inner_.createDigest(alg);
    }
    std::unique_ptr<crypto::Hmac>
    createHmac(crypto::DigestAlg alg, const Bytes &key) override
    {
        return inner_.createHmac(alg, key);
    }
    size_t
    recordMac(const crypto::RecordMacSpec &spec, uint64_t seq,
              uint8_t type, ConstSpan data, uint8_t *mac_out) override
    {
        return inner_.recordMac(spec, seq, type, data, mac_out);
    }
    Bytes
    rsaDecrypt(const crypto::RsaPrivateKey &key,
               const Bytes &cipher) override
    {
        return inner_.rsaDecrypt(key, cipher);
    }
    Bytes
    rsaSign(const crypto::RsaPrivateKey &key,
            const Bytes &digest_data) override
    {
        return inner_.rsaSign(key, digest_data);
    }

    crypto::RsaJob
    submitRsaSign(const crypto::RsaPrivateKey &key,
                  Bytes digest_data) override
    {
        pendingKey_ = &key;
        pendingInput_ = std::move(digest_data);
        pendingState_ = std::make_shared<crypto::RsaJob::State>();
        return crypto::RsaJob(pendingState_);
    }

    bool pending() const { return pendingState_ != nullptr; }

    void
    resolve()
    {
        ASSERT_TRUE(pendingState_);
        Bytes result;
        std::exception_ptr err;
        try {
            result = crypto::rsaSign(*pendingKey_, pendingInput_);
        } catch (...) {
            err = std::current_exception();
        }
        pendingState_->finish(std::move(result), std::move(err));
        pendingState_.reset();
    }

    void
    resolveWithError()
    {
        ASSERT_TRUE(pendingState_);
        pendingState_->finish(
            Bytes(),
            std::make_exception_ptr(
                std::runtime_error("simulated sign engine failure")));
        pendingState_.reset();
    }

  private:
    crypto::Provider &inner_ = crypto::scalarProvider();
    const crypto::RsaPrivateKey *pendingKey_ = nullptr;
    Bytes pendingInput_;
    std::shared_ptr<crypto::RsaJob::State> pendingState_;
};

/** Client identity fixture, mirroring test_client_auth.cc. */
struct SelfhealClientIdentity
{
    crypto::RsaKeyPair key;
    pki::Certificate cert;

    SelfhealClientIdentity()
    {
        key = crypto::rsaGenerateKey(512, test::seededRng(0x5e1fc11e));
        pki::CertificateInfo info;
        info.serial = 78;
        info.issuer = "selfheal.client";
        info.subject = "selfheal.client";
        info.notBefore = 0;
        info.notAfter = 2000000000;
        info.publicKey = key.pub;
        cert = pki::Certificate::issue(info, *key.priv);
    }
};

SelfhealClientIdentity &
selfhealIdentity()
{
    static SelfhealClientIdentity id;
    return id;
}

TEST(SignParking, ClientParksAtCertificateVerifyAndResumes)
{
    SignStallProvider stall;
    ssl::BioPair wires;

    ssl::ServerConfig scfg;
    scfg.certificate = test::testServerCert();
    scfg.privateKey = test::testKey1024().priv;
    scfg.requestClientCertificate = true;
    ssl::SslServer server(std::move(scfg), wires.serverEnd());

    ssl::ClientConfig ccfg;
    ccfg.clientCertificate = selfhealIdentity().cert;
    ccfg.clientKey = selfhealIdentity().key.priv;
    ccfg.provider = &stall;
    ssl::SslClient client(std::move(ccfg), wires.clientEnd());

    // Drive both sides until neither can move: the client must be
    // parked on the held CertificateVerify signature.
    while (client.advance() || server.advance())
        ;
    ASSERT_FALSE(client.handshakeDone());
    EXPECT_TRUE(client.waitingOnCrypto());
    EXPECT_EQ(client.cryptoWait(), ssl::CryptoWait::CertVerifySign);
    EXPECT_TRUE(stall.pending());

    // Parked is a cheap no-op, not an error.
    EXPECT_FALSE(client.advance());

    stall.resolve();
    EXPECT_FALSE(client.waitingOnCrypto());
    while (client.advance() || server.advance())
        ;
    EXPECT_TRUE(client.handshakeDone());
    EXPECT_TRUE(server.handshakeDone());

    // The mutually authenticated channel works end to end.
    client.writeApplicationData(toBytes("signed async"));
    while (client.advance() || server.advance())
        ;
    auto got = server.readApplicationData();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, toBytes("signed async"));
}

TEST(SignParking, FailedClientSignAlertsAfterUnpark)
{
    SignStallProvider stall;
    ssl::BioPair wires;

    ssl::ServerConfig scfg;
    scfg.certificate = test::testServerCert();
    scfg.privateKey = test::testKey1024().priv;
    scfg.requestClientCertificate = true;
    ssl::SslServer server(std::move(scfg), wires.serverEnd());

    ssl::ClientConfig ccfg;
    ccfg.clientCertificate = selfhealIdentity().cert;
    ccfg.clientKey = selfhealIdentity().key.priv;
    ccfg.provider = &stall;
    ssl::SslClient client(std::move(ccfg), wires.clientEnd());

    while (client.advance() || server.advance())
        ;
    ASSERT_EQ(client.cryptoWait(), ssl::CryptoWait::CertVerifySign);

    stall.resolveWithError();
    EXPECT_FALSE(client.waitingOnCrypto());
    try {
        client.advance();
        FAIL() << "failed CertificateVerify sign did not raise";
    } catch (const ssl::SslError &e) {
        EXPECT_EQ(e.alert(), ssl::AlertDescription::InternalError);
    }
    EXPECT_TRUE(client.failed());
    EXPECT_EQ(client.fatalAlertsSent(), 1u);
}

TEST(SignParking, MutualHandshakeThroughRealPool)
{
    // End to end through a real CryptoPool on both endpoints: the
    // client's CertificateVerify and the server's pre-master decrypt
    // both ride the async path, and runLockstep treats the parked
    // phases as progress-pending rather than deadlock.
    serve::CryptoPool cp(2);
    serve::PooledProvider pooled(cp);
    ssl::BioPair wires;

    ssl::ServerConfig scfg;
    scfg.certificate = test::testServerCert();
    scfg.privateKey = test::testKey1024().priv;
    scfg.requestClientCertificate = true;
    scfg.provider = &pooled;
    ssl::SslServer server(std::move(scfg), wires.serverEnd());

    ssl::ClientConfig ccfg;
    ccfg.clientCertificate = selfhealIdentity().cert;
    ccfg.clientKey = selfhealIdentity().key.priv;
    ccfg.provider = &pooled;
    ssl::SslClient client(std::move(ccfg), wires.clientEnd());

    ssl::runLockstep(client, server);
    EXPECT_TRUE(client.handshakeDone());
    EXPECT_TRUE(server.handshakeDone());
    EXPECT_GE(cp.completedJobs(), 2u); // decrypt + cert-verify sign
}

// ---------------------------------------------------------------------
// Engine integration

serve::ServeConfig
selfhealEngineConfig()
{
    serve::ServeConfig cfg;
    cfg.certificate = &test::testServerCert512();
    cfg.privateKey = test::testKey512().priv;
    cfg.seed = selfhealSeed();
    cfg.bulkBytes = 0;
    return cfg;
}

TEST(ServeEngineOverload, OpenBreakerRefusesFullAdmitsResumption)
{
    // Pre-trip the breaker with an effectively infinite hold: every
    // full-handshake draw is refused at accept, resumption draws pass
    // the gate, and each refusal still consumes its workload slot so
    // the run terminates with full accounting.
    serve::BreakerConfig bcfg;
    bcfg.tripThreshold = 1;
    bcfg.openHoldCycles = UINT64_MAX / 2;
    serve::CircuitBreaker breaker(bcfg);
    breaker.noteOverloadFailure();
    ASSERT_EQ(breaker.state(), serve::BreakerState::Open);

    serve::ServeConfig cfg = selfhealEngineConfig();
    cfg.workers = 2;
    cfg.connectionsPerWorker = 40;
    cfg.concurrentPerWorker = 4;
    cfg.resumeFraction = 0.5;
    cfg.breaker = &breaker;
    serve::ServeEngine engine(std::move(cfg));
    serve::ServeStats stats = engine.run();

    EXPECT_EQ(stats.terminatedSessions(), 80u);
    EXPECT_GT(stats.refusedSessions(), 0u);
    // Resumption draws are never gated. Early draws find no cached
    // session and fall back to full handshakes (which the Open breaker
    // ignores on completion), seeding later resumes.
    EXPECT_GT(stats.resumedHandshakes() + stats.fullHandshakes(), 0u);
    EXPECT_EQ(stats.refusedSessions(), breaker.refusals());
}

TEST(ServeEngineOverload, WorkersStampSupervisorHeartbeats)
{
    serve::CryptoPool pool(1);
    // The point here is the wiring — workers register and stamp
    // without racing the poll loop — not stall latency, so the
    // threshold is wide enough that a descheduled-but-alive worker
    // (routine under parallel sanitizer runs) never reads as a stall.
    serve::SupervisorConfig scfg;
    scfg.stallThresholdCycles = msCycles(30000.0);
    serve::Supervisor sup(pool, scfg);
    serve::ServeConfig cfg = selfhealEngineConfig();
    cfg.workers = 2;
    cfg.connectionsPerWorker = 6;
    cfg.concurrentPerWorker = 2;
    cfg.cryptoPool = &pool;
    cfg.supervisor = &sup;
    serve::ServeEngine engine(std::move(cfg));
    serve::ServeStats stats = engine.run();
    EXPECT_EQ(stats.fullHandshakes(), 12u);
    // Engine workers are short-lived here; no stall episodes.
    EXPECT_EQ(sup.externalStalls(), 0u);
}

TEST(ServeEngineOverload, ObservabilitySurfacesOverloadCounters)
{
    // The overload-control plane must be visible through the metrics
    // registry and the Prometheus text endpoint: breaker state/trips,
    // crypto thread restarts and per-class shed counters.
    obs::MetricsRegistry reg;
    serve::BreakerConfig bcfg;
    bcfg.tripThreshold = 1;
    bcfg.openHoldCycles = UINT64_MAX / 2;
    serve::CircuitBreaker breaker(bcfg);
    breaker.bindMetrics(&reg);
    breaker.noteOverloadFailure();
    (void)breaker.admitFull(); // one refusal

    serve::CryptoFaultPlan faults;
    faults.threadDeathRate = 1.0;
    faults.maxThreadDeaths = 1;
    serve::AdmissionControl adm;
    adm.deadlineBudgetCycles = msCycles(1.0);
    serve::CryptoPool pool(1, 0, serve::OverloadPolicy::Reject, adm,
                           faults);
    pool.bindMetrics(&reg);
    serve::SupervisorConfig supcfg;
    supcfg.stallThresholdCycles = msCycles(2.0);
    {
        serve::Supervisor sup(pool, supcfg);
        sup.bindMetrics(&reg);
        crypto::RsaJob doomed =
            pool.submitRaw([] { return Bytes(); });
        EXPECT_THROW(doomed.wait(), crypto::ProviderFailureError);
        while (pool.threadRestarts() == 0)
            std::this_thread::yield();
    }

    obs::MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.gauges.at("serve.breaker_state"),
              static_cast<int64_t>(serve::BreakerState::Open));
    EXPECT_EQ(snap.counter("serve.breaker_trips"), 1u);
    EXPECT_EQ(snap.counter("serve.breaker_refusals"), 1u);
    EXPECT_EQ(snap.counter("cryptopool.thread_restarts"), 1u);
    EXPECT_EQ(snap.counter("cryptopool.supervised_failures"), 1u);
    EXPECT_EQ(snap.counter("supervisor.restarts"), 1u);

    const std::string text = obs::prometheusText(snap);
    EXPECT_NE(text.find("serve_breaker_state"), std::string::npos);
    EXPECT_NE(text.find("serve_breaker_trips_total"),
              std::string::npos);
    EXPECT_NE(text.find("cryptopool_thread_restarts_total"),
              std::string::npos);
    EXPECT_NE(text.find("cryptopool_shed_class_new_full_total"),
              std::string::npos);
    EXPECT_NE(text.find("supervisor_restarts_total"),
              std::string::npos);
}

// ---------------------------------------------------------------------
// Chaos rows

TEST(ChaosMatrix, CryptoSlowdownShedsBeforeEngineDeadline)
{
    // Crypto-thread slowdown faults push queue wait far past the
    // per-job budget: excess sessions must die by the pool's deadline
    // shed (fatal internal_error alert) — never by the engine's
    // handshake deadline, which parking exempts them from. The
    // invariant that distinguishes controlled shedding from a hang.
    serve::CryptoFaultPlan faults;
    faults.slowdownRate = 1.0;
    faults.slowdownCycles = msCycles(8.0);
    faults.seed = selfhealSeed();
    serve::CryptoPool pool(1, 0, serve::OverloadPolicy::Reject, {},
                           faults);

    serve::ServeConfig cfg = selfhealEngineConfig();
    cfg.workers = 1;
    cfg.connectionsPerWorker = 12;
    cfg.concurrentPerWorker = 6;
    cfg.cryptoPool = &pool;
    cfg.cryptoDeadlineBudgetCycles = msCycles(2.0);
    cfg.tolerateFailures = true;
    cfg.handshakeDeadlineTicks = 1000000; // armed, must never fire
    serve::ServeEngine engine(std::move(cfg));
    serve::ServeStats stats = engine.run();

    EXPECT_EQ(stats.terminatedSessions(), 12u);
    EXPECT_EQ(stats.timedOutSessions(), 0u);
    EXPECT_GE(stats.failedHandshakes(), 1u);
    EXPECT_GE(pool.deadlineShedJobs(), 1u);
    EXPECT_GT(stats.fullHandshakes(), 0u); // the slow path still lands
}

TEST(ChaosEngine, KilledCryptoThreadsEverySessionTerminates)
{
    // Both crypto threads die mid-job (deterministic budget); the
    // supervisor reaps and respawns them. The run must terminate with
    // every session accounted — the reaped jobs' sessions die by
    // fatal internal_error alert, nothing hangs.
    serve::CryptoFaultPlan faults;
    faults.threadDeathRate = 1.0;
    faults.maxThreadDeaths = 2;
    faults.seed = selfhealSeed();
    serve::CryptoPool pool(2, 0, serve::OverloadPolicy::Reject, {},
                           faults);
    serve::SupervisorConfig supcfg;
    supcfg.pollIntervalUs = 200;
    supcfg.stallThresholdCycles = msCycles(50.0);
    serve::Supervisor sup(pool, supcfg);

    serve::ServeConfig cfg = selfhealEngineConfig();
    cfg.workers = 2;
    cfg.connectionsPerWorker = 20;
    cfg.concurrentPerWorker = 4;
    cfg.cryptoPool = &pool;
    cfg.supervisor = &sup;
    cfg.tolerateFailures = true;
    serve::ServeEngine engine(std::move(cfg));
    serve::ServeStats stats = engine.run();

    // The failed jobs unblock their sessions before the supervisor's
    // counters tick; give its poll a moment to finish bookkeeping.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (sup.restarts() < 2 &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::yield();

    EXPECT_EQ(stats.terminatedSessions(), 40u);
    EXPECT_EQ(pool.threadRestarts(), 2u);
    EXPECT_EQ(sup.restarts(), 2u);
    EXPECT_EQ(stats.failedHandshakes(),
              pool.supervisedJobFailures());
    EXPECT_GT(stats.fullHandshakes(), 0u); // pool healed and served on
}

} // anonymous namespace

#include "crypto/des.hh"

#include <stdexcept>

#include "util/endian.hh"

namespace ssla::crypto
{

namespace
{

// FIPS 46-3 tables. Bit numbers are 1-based from the MSB, as in the
// standard. Correctness is pinned by the known-answer tests in
// tests/test_des.cc.

const int ipSpec[64] = {
    58, 50, 42, 34, 26, 18, 10, 2, 60, 52, 44, 36, 28, 20, 12, 4,
    62, 54, 46, 38, 30, 22, 14, 6, 64, 56, 48, 40, 32, 24, 16, 8,
    57, 49, 41, 33, 25, 17, 9,  1, 59, 51, 43, 35, 27, 19, 11, 3,
    61, 53, 45, 37, 29, 21, 13, 5, 63, 55, 47, 39, 31, 23, 15, 7,
};

const int fpSpec[64] = {
    40, 8, 48, 16, 56, 24, 64, 32, 39, 7, 47, 15, 55, 23, 63, 31,
    38, 6, 46, 14, 54, 22, 62, 30, 37, 5, 45, 13, 53, 21, 61, 29,
    36, 4, 44, 12, 52, 20, 60, 28, 35, 3, 43, 11, 51, 19, 59, 27,
    34, 2, 42, 10, 50, 18, 58, 26, 33, 1, 41, 9,  49, 17, 57, 25,
};

const int pSpec[32] = {
    16, 7,  20, 21, 29, 12, 28, 17, 1,  15, 23, 26, 5,  18, 31, 10,
    2,  8,  24, 14, 32, 27, 3,  9,  19, 13, 30, 6,  22, 11, 4,  25,
};

const int pc1Spec[56] = {
    57, 49, 41, 33, 25, 17, 9,  1,  58, 50, 42, 34, 26, 18,
    10, 2,  59, 51, 43, 35, 27, 19, 11, 3,  60, 52, 44, 36,
    63, 55, 47, 39, 31, 23, 15, 7,  62, 54, 46, 38, 30, 22,
    14, 6,  61, 53, 45, 37, 29, 21, 13, 5,  28, 20, 12, 4,
};

const int pc2Spec[48] = {
    14, 17, 11, 24, 1,  5,  3,  28, 15, 6,  21, 10,
    23, 19, 12, 4,  26, 8,  16, 7,  27, 20, 13, 2,
    41, 52, 31, 37, 47, 55, 30, 40, 51, 45, 33, 48,
    44, 49, 39, 56, 34, 53, 46, 42, 50, 36, 29, 32,
};

const int shiftSpec[16] = {1, 1, 2, 2, 2, 2, 2, 2, 1, 2, 2, 2, 2, 2, 2, 1};

const uint8_t sboxSpec[8][64] = {
    {14, 4,  13, 1, 2,  15, 11, 8,  3,  10, 6,  12, 5,  9,  0, 7,
     0,  15, 7,  4, 14, 2,  13, 1,  10, 6,  12, 11, 9,  5,  3, 8,
     4,  1,  14, 8, 13, 6,  2,  11, 15, 12, 9,  7,  3,  10, 5, 0,
     15, 12, 8,  2, 4,  9,  1,  7,  5,  11, 3,  14, 10, 0,  6, 13},
    {15, 1,  8,  14, 6,  11, 3,  4,  9,  7, 2,  13, 12, 0, 5,  10,
     3,  13, 4,  7,  15, 2,  8,  14, 12, 0, 1,  10, 6,  9, 11, 5,
     0,  14, 7,  11, 10, 4,  13, 1,  5,  8, 12, 6,  9,  3, 2,  15,
     13, 8,  10, 1,  3,  15, 4,  2,  11, 6, 7,  12, 0,  5, 14, 9},
    {10, 0,  9,  14, 6, 3,  15, 5,  1,  13, 12, 7,  11, 4,  2,  8,
     13, 7,  0,  9,  3, 4,  6,  10, 2,  8,  5,  14, 12, 11, 15, 1,
     13, 6,  4,  9,  8, 15, 3,  0,  11, 1,  2,  12, 5,  10, 14, 7,
     1,  10, 13, 0,  6, 9,  8,  7,  4,  15, 14, 3,  11, 5,  2,  12},
    {7,  13, 14, 3, 0,  6,  9,  10, 1,  2, 8, 5,  11, 12, 4,  15,
     13, 8,  11, 5, 6,  15, 0,  3,  4,  7, 2, 12, 1,  10, 14, 9,
     10, 6,  9,  0, 12, 11, 7,  13, 15, 1, 3, 14, 5,  2,  8,  4,
     3,  15, 0,  6, 10, 1,  13, 8,  9,  4, 5, 11, 12, 7,  2,  14},
    {2,  12, 4,  1,  7,  10, 11, 6,  8,  5,  3,  15, 13, 0, 14, 9,
     14, 11, 2,  12, 4,  7,  13, 1,  5,  0,  15, 10, 3,  9, 8,  6,
     4,  2,  1,  11, 10, 13, 7,  8,  15, 9,  12, 5,  6,  3, 0,  14,
     11, 8,  12, 7,  1,  14, 2,  13, 6,  15, 0,  9,  10, 4, 5,  3},
    {12, 1,  10, 15, 9, 2,  6,  8,  0,  13, 3,  4,  14, 7,  5,  11,
     10, 15, 4,  2,  7, 12, 9,  5,  6,  1,  13, 14, 0,  11, 3,  8,
     9,  14, 15, 5,  2, 8,  12, 3,  7,  0,  4,  10, 1,  13, 11, 6,
     4,  3,  2,  12, 9, 5,  15, 10, 11, 14, 1,  7,  6,  0,  8,  13},
    {4,  11, 2,  14, 15, 0, 8,  13, 3,  12, 9, 7,  5,  10, 6, 1,
     13, 0,  11, 7,  4,  9, 1,  10, 14, 3,  5, 12, 2,  15, 8, 6,
     1,  4,  11, 13, 12, 3, 7,  14, 10, 15, 6, 8,  0,  5,  9, 2,
     6,  11, 13, 8,  1,  4, 10, 7,  9,  5,  0, 15, 14, 2,  3, 12},
    {13, 2,  8,  4, 6,  15, 11, 1,  10, 9,  3,  14, 5,  0,  12, 7,
     1,  15, 13, 8, 10, 3,  7,  4,  12, 5,  6,  11, 0,  14, 9,  2,
     7,  11, 4,  1, 9,  12, 14, 2,  0,  6,  10, 13, 15, 3,  5,  8,
     2,  1,  14, 7, 4,  10, 8,  13, 15, 12, 9,  0,  3,  5,  6,  11},
};

/** Build the SP boxes and the byte-indexed IP/FP tables. */
DesTables
buildDesTables()
{
    DesTables t{};

    // SP boxes: S-box output pushed through the P permutation into
    // its 4-bit field of the 32-bit f output.
    for (int box = 0; box < 8; ++box) {
        for (int v = 0; v < 64; ++v) {
            // DES S-box input ordering: bits 1 and 6 select the row,
            // bits 2-5 the column.
            int row = ((v >> 4) & 2) | (v & 1);
            int col = (v >> 1) & 0xf;
            uint8_t s = sboxSpec[box][16 * row + col];
            // Place the 4 output bits at S-box 'box' positions
            // 4*box+1 .. 4*box+4 (1-based), then apply P.
            uint32_t pre_p = static_cast<uint32_t>(s)
                             << (28 - 4 * box);
            uint32_t f = 0;
            for (int bit = 0; bit < 32; ++bit) {
                if ((pre_p >> (32 - pSpec[bit])) & 1)
                    f |= 1u << (31 - bit);
            }
            t.sp[box][v] = f;
        }
    }

    // Byte-indexed permutations: table[b][v] is the contribution of
    // input byte b having value v to the permuted output. The output
    // is aligned so its last bit lands at position 0.
    auto build_perm = [](const int *spec, int out_bits, int in_bytes,
                         uint64_t table[][256]) {
        for (int b = 0; b < in_bytes; ++b) {
            for (int v = 0; v < 256; ++v) {
                uint64_t out = 0;
                for (int obit = 0; obit < out_bits; ++obit) {
                    int ibit = spec[obit]; // 1-based input bit
                    int byte_index = (ibit - 1) / 8;
                    if (byte_index != b)
                        continue;
                    int bit_in_byte = (ibit - 1) % 8; // from MSB
                    if ((v >> (7 - bit_in_byte)) & 1)
                        out |= uint64_t(1) << (out_bits - 1 - obit);
                }
                table[b][v] = out;
            }
        }
    };
    build_perm(ipSpec, 64, 8, t.ip);
    build_perm(fpSpec, 64, 8, t.fp);
    build_perm(pc1Spec, 56, 8, t.pc1);
    build_perm(pc2Spec, 48, 7, t.pc2);

    return t;
}

} // anonymous namespace

const DesTables &
desTables()
{
    static const DesTables tables = buildDesTables();
    return tables;
}

void
desSetKey(const uint8_t key[8], DesKeySchedule &out, bool decrypt)
{
    const DesTables &t = desTables();
    uint64_t k = load64be(key);

    // PC-1: 64 -> 56 bits, split into 28-bit halves C and D.
    uint64_t cd = 0;
    for (int b = 0; b < 8; ++b)
        cd |= t.pc1[b][(k >> (56 - 8 * b)) & 0xff];
    uint32_t c = static_cast<uint32_t>(cd >> 28);
    uint32_t d = static_cast<uint32_t>(cd & 0x0fffffff);

    for (int round = 0; round < 16; ++round) {
        c = rotl28(c, shiftSpec[round]);
        d = rotl28(d, shiftSpec[round]);
        uint64_t merged = (static_cast<uint64_t>(c) << 28) | d;
        // PC-2: 56 -> 48 bits, aligned with the E-expansion output.
        uint64_t rk = 0;
        for (int b = 0; b < 7; ++b)
            rk |= t.pc2[b][(merged >> (48 - 8 * b)) & 0xff];
        out.ks[decrypt ? 15 - round : round] = rk;
    }
}

namespace
{
perf::NullMeter nullMeter;

void
requireKeySize(const Bytes &key, size_t expected, const char *what)
{
    if (key.size() != expected)
        throw std::invalid_argument(std::string(what) +
                                    ": bad key length");
}

} // anonymous namespace

Des::Des(const Bytes &key)
{
    requireKeySize(key, 8, "DES");
    desSetKey(key.data(), enc_, false);
    desSetKey(key.data(), dec_, true);
}

void
Des::encryptBlock(const uint8_t in[8], uint8_t out[8]) const
{
    uint64_t b = desProcessBlockT(load64be(in), enc_, nullMeter);
    store64be(out, b);
}

void
Des::decryptBlock(const uint8_t in[8], uint8_t out[8]) const
{
    uint64_t b = desProcessBlockT(load64be(in), dec_, nullMeter);
    store64be(out, b);
}

TripleDes::TripleDes(const Bytes &key)
{
    requireKeySize(key, 24, "3DES");
    desSetKey(key.data(), encK1_, false);
    desSetKey(key.data() + 8, decK2_, true);
    desSetKey(key.data() + 16, encK3_, false);
    desSetKey(key.data() + 16, decK3_, true);
    desSetKey(key.data() + 8, encK2_, false);
    desSetKey(key.data(), decK1_, true);
}

void
TripleDes::encryptBlock(const uint8_t in[8], uint8_t out[8]) const
{
    uint64_t b = load64be(in);
    b = desProcessBlockT(b, encK1_, nullMeter);
    b = desProcessBlockT(b, decK2_, nullMeter);
    b = desProcessBlockT(b, encK3_, nullMeter);
    store64be(out, b);
}

void
TripleDes::decryptBlock(const uint8_t in[8], uint8_t out[8]) const
{
    uint64_t b = load64be(in);
    b = desProcessBlockT(b, decK3_, nullMeter);
    b = desProcessBlockT(b, encK2_, nullMeter);
    b = desProcessBlockT(b, decK1_, nullMeter);
    store64be(out, b);
}

} // namespace ssla::crypto

#include "perf/opcount.hh"

#include <algorithm>

namespace ssla::perf
{

const char *
opClassName(OpClass c)
{
    switch (c) {
      case OpClass::MovL: return "movl";
      case OpClass::MovB: return "movb";
      case OpClass::XorL: return "xorl";
      case OpClass::XorB: return "xorb";
      case OpClass::AndL: return "andl";
      case OpClass::OrL: return "orl";
      case OpClass::AddL: return "addl";
      case OpClass::AddB: return "addb";
      case OpClass::AdcL: return "adcl";
      case OpClass::SubL: return "subl";
      case OpClass::SbbL: return "sbbl";
      case OpClass::MulL: return "mull";
      case OpClass::ShrL: return "shrl";
      case OpClass::ShlL: return "shll";
      case OpClass::RolL: return "roll";
      case OpClass::RorL: return "rorl";
      case OpClass::LeaL: return "leal";
      case OpClass::IncL: return "incl";
      case OpClass::DecL: return "decl";
      case OpClass::CmpL: return "cmpl";
      case OpClass::Jcc: return "jnz";
      case OpClass::Jmp: return "jmp";
      case OpClass::Push: return "pushl";
      case OpClass::Pop: return "popl";
      case OpClass::Call: return "call";
      case OpClass::Ret: return "ret";
      case OpClass::Bswap: return "bswap";
      case OpClass::Nop: return "nop";
      default: return "?";
    }
}

uint64_t
OpHistogram::total() const
{
    uint64_t sum = 0;
    for (uint64_t c : counts_)
        sum += c;
    return sum;
}

void
OpHistogram::merge(const OpHistogram &other)
{
    for (size_t i = 0; i < numOpClasses; ++i)
        counts_[i] += other.counts_[i];
}

void
OpHistogram::scale(uint64_t factor)
{
    for (auto &c : counts_)
        c *= factor;
}

std::vector<std::pair<std::string, double>>
OpHistogram::topOps(size_t n) const
{
    uint64_t sum = total();
    std::vector<std::pair<std::string, double>> out;
    if (sum == 0)
        return out;
    std::vector<size_t> order(numOpClasses);
    for (size_t i = 0; i < numOpClasses; ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return counts_[a] > counts_[b];
    });
    for (size_t i = 0; i < order.size() && out.size() < n; ++i) {
        if (counts_[order[i]] == 0)
            break;
        out.emplace_back(
            opClassName(static_cast<OpClass>(order[i])),
            100.0 * static_cast<double>(counts_[order[i]]) /
                static_cast<double>(sum));
    }
    return out;
}

} // namespace ssla::perf

/**
 * @file
 * RandomPool (md_rand analogue) tests.
 */

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "crypto/rand.hh"
#include "util/bytes.hh"

namespace
{

using namespace ssla;
using crypto::RandomPool;

TEST(RandomPool, DeterministicWithSameSeed)
{
    RandomPool a(toBytes("seed"));
    RandomPool b(toBytes("seed"));
    EXPECT_EQ(a.bytes(100), b.bytes(100));
}

TEST(RandomPool, DifferentSeedsDiffer)
{
    RandomPool a(toBytes("seed-a"));
    RandomPool b(toBytes("seed-b"));
    EXPECT_NE(a.bytes(32), b.bytes(32));
}

TEST(RandomPool, StreamAdvances)
{
    RandomPool p(toBytes("x"));
    Bytes first = p.bytes(16);
    Bytes second = p.bytes(16);
    EXPECT_NE(first, second);
}

TEST(RandomPool, ChunkingDoesNotChangeStream)
{
    RandomPool a(toBytes("chunk"));
    RandomPool b(toBytes("chunk"));
    Bytes whole = a.bytes(50);
    Bytes parts;
    append(parts, b.bytes(7));
    append(parts, b.bytes(13));
    append(parts, b.bytes(30));
    EXPECT_EQ(parts, whole);
}

TEST(RandomPool, ReseedChangesStream)
{
    RandomPool a(toBytes("base"));
    RandomPool b(toBytes("base"));
    b.seed(toBytes("extra entropy"));
    EXPECT_NE(a.bytes(32), b.bytes(32));
}

TEST(RandomPool, ZeroLengthGenerate)
{
    RandomPool p(toBytes("z"));
    Bytes empty = p.bytes(0);
    EXPECT_TRUE(empty.empty());
}

TEST(RandomPool, BitBalance)
{
    RandomPool p(toBytes("balance"));
    Bytes stream = p.bytes(100000);
    uint64_t ones = 0;
    for (uint8_t b : stream)
        ones += __builtin_popcount(b);
    double fraction = static_cast<double>(ones) / (stream.size() * 8);
    EXPECT_GT(fraction, 0.49);
    EXPECT_LT(fraction, 0.51);
}

TEST(RandomPool, NoObviousCycles)
{
    // Consecutive 16-byte outputs over a long stream must be distinct.
    RandomPool p(toBytes("cycle"));
    std::set<Bytes> seen;
    for (int i = 0; i < 1000; ++i)
        EXPECT_TRUE(seen.insert(p.bytes(16)).second) << "cycle at " << i;
}

TEST(RandomPool, GlobalHelpers)
{
    Bytes a(16), b(16);
    crypto::randPseudoBytes(a.data(), a.size());
    crypto::randPseudoBytes(b.data(), b.size());
    EXPECT_NE(a, b);
    EXPECT_EQ(&crypto::globalRandomPool(), &crypto::globalRandomPool());
}

// The global pool is thread-local: 8 threads hammering it must neither
// race (TSan regression for the serving engine's worker threads) nor
// produce overlapping streams across threads.
TEST(RandomPool, GlobalPoolHammeredFromEightThreads)
{
    constexpr int kThreads = 8;
    constexpr int kDrawsPerThread = 200;
    std::vector<Bytes> streams(kThreads);
    std::vector<const RandomPool *> pools(kThreads);
    // Hold every thread at the line until all are running, so the
    // thread-local pools are concurrently live (distinct addresses;
    // no TLS-slot reuse between a finished and a late-started thread).
    std::atomic<int> ready{0};

    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&streams, &pools, &ready, t] {
            ready.fetch_add(1);
            while (ready.load() < kThreads)
                std::this_thread::yield();
            pools[t] = &crypto::globalRandomPool();
            Bytes mine;
            for (int i = 0; i < kDrawsPerThread; ++i) {
                Bytes chunk(16);
                crypto::randPseudoBytes(chunk.data(), chunk.size());
                append(mine, chunk);
            }
            streams[t] = std::move(mine);
        });
    for (auto &t : threads)
        t.join();

    // Distinct per-thread pool instances...
    std::set<const RandomPool *> distinct(pools.begin(), pools.end());
    EXPECT_EQ(distinct.size(), static_cast<size_t>(kThreads));
    // ...and no 16-byte block shared between any two streams.
    std::set<Bytes> blocks;
    for (const Bytes &s : streams) {
        ASSERT_EQ(s.size(), size_t{16 * kDrawsPerThread});
        for (size_t off = 0; off < s.size(); off += 16)
            EXPECT_TRUE(
                blocks
                    .insert(Bytes(s.begin() + off, s.begin() + off + 16))
                    .second)
                << "duplicate block at offset " << off;
    }
}

} // anonymous namespace

/**
 * @file
 * Key-exchange helpers for the DHE_RSA suites: the RSA signature over
 * the ephemeral parameters (SSLv3/TLS1.0 style — MD5 || SHA1 of
 * client_random || server_random || params, PKCS#1 type 1, no
 * DigestInfo).
 */

#ifndef SSLA_SSL_KX_HH
#define SSLA_SSL_KX_HH

#include "crypto/provider.hh"
#include "crypto/rsa.hh"
#include "util/types.hh"

namespace ssla::ssl
{

/** The 36-byte MD5||SHA1 digest the ServerKeyExchange signature covers. */
Bytes serverKxDigest(const Bytes &client_random,
                     const Bytes &server_random, const Bytes &params);

/**
 * Sign ephemeral parameters with the server's RSA key, dispatched
 * through @p provider (probed as rsa_private_encryption — the signing
 * counterpart of Table 2's rsa_private_decryption).
 */
Bytes signServerKeyExchange(crypto::Provider &provider,
                            const crypto::RsaPrivateKey &key,
                            const Bytes &client_random,
                            const Bytes &server_random,
                            const Bytes &params);

/** Verify a ServerKeyExchange signature against the certificate key. */
bool verifyServerKeyExchange(const crypto::RsaPublicKey &key,
                             const Bytes &client_random,
                             const Bytes &server_random,
                             const Bytes &params, const Bytes &signature);

} // namespace ssla::ssl

#endif // SSLA_SSL_KX_HH

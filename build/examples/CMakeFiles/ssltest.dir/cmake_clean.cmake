file(REMOVE_RECURSE
  "CMakeFiles/ssltest.dir/ssltest.cpp.o"
  "CMakeFiles/ssltest.dir/ssltest.cpp.o.d"
  "ssltest"
  "ssltest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssltest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

/**
 * @file
 * The SSLv3 record layer: fragmentation, MAC, padding, encryption.
 *
 * This is where the bulk-data-transfer costs the paper measures live:
 * the "mac" probe covers the SSLv3 pad-concatenation MAC, and
 * "pri_encryption"/"pri_decryption" cover the symmetric cipher work.
 */

#ifndef SSLA_SSL_RECORD_HH
#define SSLA_SSL_RECORD_HH

#include <memory>
#include <optional>

#include "ssl/alert.hh"
#include "ssl/bio.hh"
#include "ssl/ciphersuite.hh"

namespace ssla::ssl
{

/** SSLv3 record content types. */
enum class ContentType : uint8_t
{
    ChangeCipherSpec = 20,
    Alert = 21,
    Handshake = 22,
    ApplicationData = 23,
};

/** SSL 3.0 — the version the paper measures, and the default. */
constexpr uint16_t ssl3Version = 0x0300;

/** TLS 1.0 (RFC 2246), negotiable via the endpoint configs. */
constexpr uint16_t tls1Version = 0x0301;

/** Maximum plaintext fragment per record. */
constexpr size_t maxFragment = 16384;

/** A decrypted, authenticated record. */
struct Record
{
    ContentType type;
    Bytes payload;
};

/**
 * Compute the SSLv3 MAC:
 * hash(secret || pad2 || hash(secret || pad1 || seq || type || len ||
 * data)). Probed as "mac".
 */
Bytes ssl3Mac(crypto::DigestAlg alg, const Bytes &secret, uint64_t seq,
              uint8_t type, const uint8_t *data, size_t len);

/**
 * Compute the TLS 1.0 record MAC:
 * HMAC(secret, seq || type || version || length || data). Probed as
 * "mac".
 */
Bytes tls1Mac(crypto::DigestAlg alg, const Bytes &secret, uint64_t seq,
              uint8_t type, uint16_t version, const uint8_t *data,
              size_t len);

/** One direction's active cipher state. */
struct RecordCipherState
{
    const CipherSuite *suite = nullptr;
    std::unique_ptr<crypto::Cipher> cipher;
    Bytes macSecret;
    uint64_t seq = 0;

    bool active() const { return suite != nullptr; }
};

/**
 * A full-duplex SSLv3 record channel over a BioEndpoint.
 *
 * Starts in plaintext; each direction switches to its pending cipher
 * state when the corresponding ChangeCipherSpec is processed.
 */
class RecordLayer
{
  public:
    explicit RecordLayer(BioEndpoint bio) : bio_(bio) {}

    /** Send @p data as one or more records of @p type. */
    void send(ContentType type, const Bytes &data);
    void send(ContentType type, const uint8_t *data, size_t len);

    /**
     * Try to read one record. Returns nullopt when the transport does
     * not yet hold a complete record (the would-block case).
     * @throws SslError on MAC/padding/format failures
     */
    std::optional<Record> receive();

    /** Install the write-direction cipher (after sending CCS). */
    void enableSendCipher(const CipherSuite &suite, Bytes mac_secret,
                          const Bytes &key, const Bytes &iv);

    /** Install the read-direction cipher (after receiving CCS). */
    void enableRecvCipher(const CipherSuite &suite, Bytes mac_secret,
                          const Bytes &key, const Bytes &iv);

    bool sendCipherActive() const { return send_.active(); }
    bool recvCipherActive() const { return recv_.active(); }

    /** Flush the transport (probed buffer control, like Table 2). */
    void flush() { bio_.flush(); }

    /**
     * Lock the negotiated protocol version (0x0300 or 0x0301).
     * Before locking, incoming records of any 3.x version are
     * accepted (a TLS client's first flight may arrive before the
     * hello is parsed); afterwards the version must match exactly.
     */
    void setVersion(uint16_t version);

    /** Currently negotiated (or default SSLv3) version. */
    uint16_t version() const { return version_; }

    /** Plaintext application/handshake bytes sent (for the web sim). */
    uint64_t bytesSent() const { return bytesSent_; }
    uint64_t recordsSent() const { return recordsSent_; }

  private:
    void sendOne(ContentType type, const uint8_t *data, size_t len);

    /** MAC dispatch on the negotiated version. */
    Bytes computeMac(const RecordCipherState &dir, uint8_t type,
                     const uint8_t *data, size_t len, uint64_t seq) const;

    BioEndpoint bio_;
    RecordCipherState send_;
    RecordCipherState recv_;
    uint16_t version_ = ssl3Version;
    bool versionLocked_ = false;
    uint64_t bytesSent_ = 0;
    uint64_t recordsSent_ = 0;
};

} // namespace ssla::ssl

#endif // SSLA_SSL_RECORD_HH

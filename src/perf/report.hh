/**
 * @file
 * Fixed-width console table printer used by every bench binary so that
 * the reproduced tables read like the paper's.
 */

#ifndef SSLA_PERF_REPORT_HH
#define SSLA_PERF_REPORT_HH

#include <cstdio>
#include <string>
#include <vector>

namespace ssla::perf
{

/** A simple left/right-aligned text table. */
class TablePrinter
{
  public:
    /** @param title caption printed above the table. */
    explicit TablePrinter(std::string title) : title_(std::move(title)) {}

    /** Set the column headers (defines the column count). */
    void setHeader(std::vector<std::string> header);

    /** Append one row; short rows are padded with empty cells. */
    void addRow(std::vector<std::string> row);

    /** Insert a horizontal rule before the next row. */
    void addRule();

    /** Render to @p out (stdout by default). */
    void print(std::FILE *out = stdout) const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** printf-style float formatting into std::string. */
std::string fmt(const char *format, ...)
    __attribute__((format(printf, 1, 2)));

/** Format @p value with @p decimals digits after the point. */
std::string fmtF(double value, int decimals = 2);

/** Format a percentage with @p decimals digits. */
std::string fmtPct(double value, int decimals = 1);

/** Format an integer count with thousands separators. */
std::string fmtCount(uint64_t value);

} // namespace ssla::perf

#endif // SSLA_PERF_REPORT_HH

#include "serve/supervisor.hh"

#include <algorithm>
#include <chrono>

#include "obs/export.hh"
#include "util/cycles.hh"
#include "util/logging.hh"

namespace ssla::serve
{

Supervisor::Supervisor(CryptoPool &pool, SupervisorConfig cfg)
    : pool_(pool), cfg_(cfg)
{
    if (cfg_.stallThresholdCycles == 0)
        cfg_.stallThresholdCycles =
            static_cast<uint64_t>(cycleHz() / 10.0); // ~100 ms
    bindMetrics(nullptr);
    thread_ = std::thread([this] { loop(); });
}

Supervisor::~Supervisor()
{
    {
        std::lock_guard<std::mutex> lock(stopM_);
        stopping_ = true;
    }
    stopCv_.notify_all();
    thread_.join();
}

void
Supervisor::bindMetrics(obs::MetricsRegistry *reg)
{
    obs::MetricsRegistry &r =
        reg ? *reg : obs::MetricsRegistry::global();
    ctrRestarts_ = r.counter("supervisor.restarts");
    ctrExternalStalls_ = r.counter("supervisor.external_stalls");
}

std::atomic<uint64_t> *
Supervisor::watch(std::string label)
{
    std::lock_guard<std::mutex> lock(watchM_);
    ExternalWatch &w = watches_.emplace_back();
    w.label = std::move(label);
    w.heartbeat.store(rdcycles(), std::memory_order_relaxed);
    return &w.heartbeat;
}

void
Supervisor::poll(obs::SessionTrace &trace)
{
    const uint64_t now = rdcycles();

    // Crypto threads: a busy slot whose newest progress stamp is past
    // the stall threshold gets reaped. The pool fails the in-flight
    // job (first-wins against a slow-but-alive thread) and spawns a
    // replacement, so queued jobs keep draining and the parked session
    // terminates with an alert instead of hanging forever.
    const size_t slots = pool_.healthSlots();
    for (size_t i = 0; i < slots; ++i) {
        CryptoPool::ThreadHealthView view = pool_.healthView(i);
        if (!view.busy || view.retired)
            continue;
        const uint64_t stamp =
            std::max(view.heartbeatCycles, view.jobStartCycles);
        if (now - stamp <= cfg_.stallThresholdCycles)
            continue;
        if (restarts_.load(std::memory_order_relaxed) >=
            cfg_.maxRestarts) {
            static std::atomic<bool> warned{false};
            if (!warned.exchange(true))
                warn("Supervisor: restart budget exhausted; a wedged "
                     "crypto thread is being left in place");
            continue;
        }
        if (!pool_.reapThread(i, "heartbeat stall"))
            continue;
        restarts_.fetch_add(1, std::memory_order_relaxed);
        ctrRestarts_.inc();
        trace.record(obs::TraceEventKind::ThreadRestart,
                     obs::traceSideEngine, "crypto-thread",
                     static_cast<uint16_t>(i), now - stamp);
        warn("Supervisor: reaped stalled crypto thread slot " +
             std::to_string(i) + " (silent for " +
             std::to_string(now - stamp) + " cycles), respawned");
    }

    // External (engine-worker) slots: count stall episodes; an engine
    // worker shares the process, so there is nothing to respawn.
    {
        std::lock_guard<std::mutex> lock(watchM_);
        for (ExternalWatch &w : watches_) {
            const uint64_t hb =
                w.heartbeat.load(std::memory_order_relaxed);
            const bool stale = now - hb > cfg_.stallThresholdCycles;
            if (stale && !w.stalledNow) {
                w.stalledNow = true;
                externalStalls_.fetch_add(1, std::memory_order_relaxed);
                ctrExternalStalls_.inc();
                warn("Supervisor: external heartbeat '" + w.label +
                     "' stalled");
            } else if (!stale) {
                w.stalledNow = false;
            }
        }
    }

    polls_.fetch_add(1, std::memory_order_relaxed);
}

void
Supervisor::loop()
{
    obs::SessionTrace trace(obs::supervisorTrack, obs::supervisorTrack);
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(stopM_);
            stopCv_.wait_for(
                lock, std::chrono::microseconds(cfg_.pollIntervalUs),
                [&] { return stopping_; });
            if (stopping_)
                break;
        }
        poll(trace);
    }
    trace.noteOutcome("supervisor-exit");
    if (obs::TraceSink *sink = traceSink_.load(std::memory_order_acquire);
        sink && trace.recorded())
        sink->dump(trace);
}

} // namespace ssla::serve

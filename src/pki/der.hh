/**
 * @file
 * A DER-style tag/length/value codec.
 *
 * This is the substrate for the certificate layer. It follows DER's
 * framing rules (definite lengths, minimal long-form encoding, big-
 * endian two's-complement integers) for the handful of universal types
 * the certificates need. Full ASN.1 is intentionally out of scope —
 * the paper measures certificate handling as an opaque "X509
 * functions" cost, which parsing + signature checking reproduces.
 */

#ifndef SSLA_PKI_DER_HH
#define SSLA_PKI_DER_HH

#include <cstdint>
#include <string>
#include <string_view>

#include "bn/bignum.hh"
#include "util/types.hh"

namespace ssla::pki
{

/** The universal tags this codec understands. */
enum class DerTag : uint8_t
{
    Integer = 0x02,
    OctetString = 0x04,
    Utf8String = 0x0c,
    Sequence = 0x30,
};

/** Encode a TLV with @p tag around @p content. */
Bytes derWrap(DerTag tag, const Bytes &content);

/** Encode a non-negative big integer (minimal, sign-safe). */
Bytes derInteger(const bn::BigNum &v);

/** Encode a machine integer. */
Bytes derInteger(uint64_t v);

/** Encode an octet string. */
Bytes derOctetString(const Bytes &v);

/** Encode a UTF-8 string. */
Bytes derUtf8(std::string_view s);

/** Concatenate pre-encoded elements into a SEQUENCE. */
Bytes derSequence(const std::vector<Bytes> &elements);

/**
 * Pull-parser over a DER buffer.
 *
 * Every reader throws std::runtime_error on malformed input; the
 * certificate layer converts that into a handshake failure.
 */
class DerParser
{
  public:
    /** Non-owning view over @p data (must outlive the parser). */
    explicit DerParser(const Bytes &data)
        : data_(data.data()), len_(data.size())
    {}

    /** Owning parser over a temporary (e.g. readSequence() results). */
    explicit DerParser(Bytes &&data)
        : owned_(std::move(data)), data_(owned_.data()),
          len_(owned_.size())
    {}

    DerParser(const uint8_t *data, size_t len) : data_(data), len_(len) {}

    // Copying/moving would dangle data_ when owning; forbid both.
    DerParser(const DerParser &) = delete;
    DerParser &operator=(const DerParser &) = delete;

    bool atEnd() const { return pos_ == len_; }

    /** Peek the tag of the next TLV. */
    uint8_t peekTag() const;

    /** Read a TLV with the expected @p tag; returns its content. */
    Bytes expect(DerTag tag);

    /** Read an INTEGER as a BigNum. */
    bn::BigNum readInteger();

    /** Read an INTEGER that must fit in uint64. */
    uint64_t readSmallInteger();

    /** Read an OCTET STRING. */
    Bytes readOctetString();

    /** Read a UTF8String. */
    std::string readUtf8();

    /** Descend into a SEQUENCE: returns a parser over its content. */
    Bytes readSequence();

  private:
    size_t readLength();
    void require(size_t n) const;

    Bytes owned_; ///< backing storage for the owning constructor
    const uint8_t *data_;
    size_t len_;
    size_t pos_ = 0;
};

} // namespace ssla::pki

#endif // SSLA_PKI_DER_HH

file(REMOVE_RECURSE
  "CMakeFiles/ssla_crypto.dir/aes.cc.o"
  "CMakeFiles/ssla_crypto.dir/aes.cc.o.d"
  "CMakeFiles/ssla_crypto.dir/cipher.cc.o"
  "CMakeFiles/ssla_crypto.dir/cipher.cc.o.d"
  "CMakeFiles/ssla_crypto.dir/des.cc.o"
  "CMakeFiles/ssla_crypto.dir/des.cc.o.d"
  "CMakeFiles/ssla_crypto.dir/dh.cc.o"
  "CMakeFiles/ssla_crypto.dir/dh.cc.o.d"
  "CMakeFiles/ssla_crypto.dir/digest.cc.o"
  "CMakeFiles/ssla_crypto.dir/digest.cc.o.d"
  "CMakeFiles/ssla_crypto.dir/hmac.cc.o"
  "CMakeFiles/ssla_crypto.dir/hmac.cc.o.d"
  "CMakeFiles/ssla_crypto.dir/md5.cc.o"
  "CMakeFiles/ssla_crypto.dir/md5.cc.o.d"
  "CMakeFiles/ssla_crypto.dir/pkcs1.cc.o"
  "CMakeFiles/ssla_crypto.dir/pkcs1.cc.o.d"
  "CMakeFiles/ssla_crypto.dir/rand.cc.o"
  "CMakeFiles/ssla_crypto.dir/rand.cc.o.d"
  "CMakeFiles/ssla_crypto.dir/rc4.cc.o"
  "CMakeFiles/ssla_crypto.dir/rc4.cc.o.d"
  "CMakeFiles/ssla_crypto.dir/rsa.cc.o"
  "CMakeFiles/ssla_crypto.dir/rsa.cc.o.d"
  "CMakeFiles/ssla_crypto.dir/sha1.cc.o"
  "CMakeFiles/ssla_crypto.dir/sha1.cc.o.d"
  "libssla_crypto.a"
  "libssla_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssla_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libssla_perf.a"
)

#include "ssl/record.hh"

#include "crypto/digest.hh"
#include "crypto/hmac.hh"
#include "perf/probe.hh"
#include "util/bytes.hh"
#include "util/endian.hh"

namespace ssla::ssl
{

namespace
{

/** Pad length bytes for the SSLv3 MAC (48 for MD5, 40 for SHA-1). */
size_t
macPadLen(crypto::DigestAlg alg)
{
    return alg == crypto::DigestAlg::MD5 ? 48 : 40;
}

} // anonymous namespace

Bytes
ssl3Mac(crypto::DigestAlg alg, const Bytes &secret, uint64_t seq,
        uint8_t type, const uint8_t *data, size_t len)
{
    perf::FuncProbe probe("mac");
    size_t pad_len = macPadLen(alg);

    uint8_t header[11];
    store64be(header, seq);
    header[8] = type;
    header[9] = static_cast<uint8_t>(len >> 8);
    header[10] = static_cast<uint8_t>(len);

    auto inner = crypto::Digest::create(alg);
    inner->update(secret);
    Bytes pad1(pad_len, 0x36);
    inner->update(pad1);
    inner->update(header, sizeof(header));
    inner->update(data, len);
    Bytes inner_digest = inner->final();

    auto outer = crypto::Digest::create(alg);
    outer->update(secret);
    Bytes pad2(pad_len, 0x5c);
    outer->update(pad2);
    outer->update(inner_digest);
    return outer->final();
}

Bytes
tls1Mac(crypto::DigestAlg alg, const Bytes &secret, uint64_t seq,
        uint8_t type, uint16_t version, const uint8_t *data, size_t len)
{
    perf::FuncProbe probe("mac");
    uint8_t header[13];
    store64be(header, seq);
    header[8] = type;
    header[9] = static_cast<uint8_t>(version >> 8);
    header[10] = static_cast<uint8_t>(version);
    header[11] = static_cast<uint8_t>(len >> 8);
    header[12] = static_cast<uint8_t>(len);

    crypto::Hmac hmac(alg, secret);
    hmac.update(header, sizeof(header));
    hmac.update(data, len);
    return hmac.final();
}

void
RecordLayer::setVersion(uint16_t version)
{
    if (version != ssl3Version && version != tls1Version)
        throw SslError(AlertDescription::IllegalParameter,
                       "record: unsupported protocol version");
    version_ = version;
    versionLocked_ = true;
}

Bytes
RecordLayer::computeMac(const RecordCipherState &dir, uint8_t type,
                        const uint8_t *data, size_t len,
                        uint64_t seq) const
{
    if (version_ >= tls1Version) {
        return tls1Mac(dir.suite->mac, dir.macSecret, seq, type,
                       version_, data, len);
    }
    return ssl3Mac(dir.suite->mac, dir.macSecret, seq, type, data, len);
}

void
RecordLayer::enableSendCipher(const CipherSuite &suite, Bytes mac_secret,
                              const Bytes &key, const Bytes &iv)
{
    send_.suite = &suite;
    send_.macSecret = std::move(mac_secret);
    send_.cipher = crypto::Cipher::create(suite.cipher, key, iv, true);
    send_.seq = 0;
}

void
RecordLayer::enableRecvCipher(const CipherSuite &suite, Bytes mac_secret,
                              const Bytes &key, const Bytes &iv)
{
    recv_.suite = &suite;
    recv_.macSecret = std::move(mac_secret);
    recv_.cipher = crypto::Cipher::create(suite.cipher, key, iv, false);
    recv_.seq = 0;
}

void
RecordLayer::send(ContentType type, const uint8_t *data, size_t len)
{
    size_t off = 0;
    do {
        size_t chunk = std::min(len - off, maxFragment);
        sendOne(type, data + off, chunk);
        off += chunk;
    } while (off < len);
}

void
RecordLayer::send(ContentType type, const Bytes &data)
{
    send(type, data.data(), data.size());
}

void
RecordLayer::sendOne(ContentType type, const uint8_t *data, size_t len)
{
    Bytes fragment;
    if (send_.active()) {
        // fragment = data || MAC || padding.
        fragment.assign(data, data + len);
        Bytes mac = computeMac(send_, static_cast<uint8_t>(type), data,
                               len, send_.seq++);
        append(fragment, mac);

        size_t block = send_.suite->blockLen();
        if (block > 1) {
            // SSLv3 padding: fill to a block multiple; the final byte
            // counts the padding bytes before it.
            size_t total = fragment.size() + 1;
            size_t pad = (block - total % block) % block;
            fragment.insert(fragment.end(), pad + 1,
                            static_cast<uint8_t>(pad));
        }
        {
            perf::FuncProbe probe("pri_encryption");
            send_.cipher->process(fragment.data(), fragment.data(),
                                  fragment.size());
        }
    } else {
        fragment.assign(data, data + len);
    }

    uint8_t header[5];
    header[0] = static_cast<uint8_t>(type);
    header[1] = static_cast<uint8_t>(version_ >> 8);
    header[2] = static_cast<uint8_t>(version_);
    header[3] = static_cast<uint8_t>(fragment.size() >> 8);
    header[4] = static_cast<uint8_t>(fragment.size());

    bio_.write(header, sizeof(header));
    bio_.write(fragment);
    bytesSent_ += len;
    ++recordsSent_;
}

std::optional<Record>
RecordLayer::receive()
{
    uint8_t header[5];
    if (bio_.peek(header, 5) < 5)
        return std::nullopt;

    auto type = static_cast<ContentType>(header[0]);
    uint16_t version = static_cast<uint16_t>((header[1] << 8) | header[2]);
    size_t frag_len = static_cast<size_t>((header[3] << 8) | header[4]);

    if (versionLocked_ ? version != version_
                       : (version >> 8) != 0x03)
        throw SslError(AlertDescription::IllegalParameter,
                       "record: bad protocol version");
    if (frag_len > maxFragment + 1024 + 256)
        throw SslError(AlertDescription::IllegalParameter,
                       "record: oversized fragment");
    if (bio_.available() < 5 + frag_len)
        return std::nullopt;

    bio_.consume(5);
    Bytes fragment(frag_len);
    bio_.read(fragment.data(), frag_len);

    if (!recv_.active())
        return Record{type, std::move(fragment)};

    {
        perf::FuncProbe probe("pri_decryption");
        recv_.cipher->process(fragment.data(), fragment.data(),
                              fragment.size());
    }

    size_t mac_len = recv_.suite->macLen();
    size_t block = recv_.suite->blockLen();
    size_t data_len = fragment.size();

    if (block > 1) {
        if (fragment.empty() || fragment.size() % block)
            throw SslError(AlertDescription::BadRecordMac,
                           "record: bad block length");
        size_t pad = fragment.back();
        if (pad + 1 + mac_len > fragment.size())
            throw SslError(AlertDescription::BadRecordMac,
                           "record: bad padding length");
        data_len = fragment.size() - pad - 1;
    }
    if (data_len < mac_len)
        throw SslError(AlertDescription::BadRecordMac,
                       "record: fragment shorter than MAC");
    data_len -= mac_len;

    Bytes expect = computeMac(recv_, static_cast<uint8_t>(type),
                              fragment.data(), data_len, recv_.seq++);
    if (!constantTimeEquals(expect.data(), fragment.data() + data_len,
                            mac_len))
        throw SslError(AlertDescription::BadRecordMac,
                       "record: MAC mismatch");

    fragment.resize(data_len);
    return Record{type, std::move(fragment)};
}

} // namespace ssla::ssl

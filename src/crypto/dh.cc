#include "crypto/dh.hh"

#include <stdexcept>

#include "bn/modexp.hh"
#include "bn/prime.hh"
#include "perf/probe.hh"

namespace ssla::crypto
{

const DhParams &
oakleyGroup2()
{
    static const DhParams params = {
        bn::BigNum::fromHex(
            "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1"
            "29024E088A67CC74020BBEA63B139B22514A08798E3404DD"
            "EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245"
            "E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
            "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE65381"
            "FFFFFFFFFFFFFFFF"),
        bn::BigNum(2),
    };
    return params;
}

DhKeyPair
dhGenerateKey(const DhParams &params, RandomPool &pool,
              size_t exponent_bits)
{
    perf::FuncProbe probe("dh_generate_key");
    bn::RngFunc rng = [&pool](uint8_t *out, size_t len) {
        pool.generate(out, len);
    };
    DhKeyPair kp;
    kp.priv = bn::randomBits(exponent_bits, rng);
    kp.pub = bn::modExp(params.g, kp.priv, params.p);
    return kp;
}

Bytes
dhComputeShared(const DhParams &params, const bn::BigNum &peer_pub,
                const bn::BigNum &priv)
{
    perf::FuncProbe probe("dh_compute_key");
    // Reject 0, 1, p-1 (and anything out of range): those force the
    // shared secret into a tiny subgroup.
    if (peer_pub < bn::BigNum(2) ||
        peer_pub > params.p - bn::BigNum(2)) {
        throw std::domain_error("DH: peer public value out of range");
    }
    bn::BigNum z = bn::modExp(peer_pub, priv, params.p);
    return z.toBytesBE(); // leading zeros stripped (RFC 2246 8.1.2)
}

} // namespace ssla::crypto

/**
 * @file
 * Quantifies the paper's Section 4.1 claim that session resumption
 * "can avoid the public key encryption, therefore greatly reduces the
 * handshake overhead": full vs abbreviated handshake cost, and the
 * effect of resumption ratio on a mixed workload.
 */

#include <cstdio>

#include "perf/report.hh"
#include "web/httpsim.hh"

using namespace ssla;
using namespace ssla::web;
using perf::TablePrinter;

int
main()
{
    WebSimConfig cfg;
    WebSimulator sim(cfg);
    sim.runTransaction(1024); // warm-up + seeds the session cache

    constexpr int runs = 20;
    TransactionStats full, resumed;
    for (int i = 0; i < runs; ++i) {
        full.merge(sim.runTransaction(1024, false));
        resumed.merge(sim.runTransaction(1024, true));
    }

    TablePrinter table("Session resumption: full vs abbreviated "
                       "handshake (1KB transaction, avg cycles)");
    table.setHeader({"metric", "full", "resumed", "ratio"});
    auto row = [&](const char *name, double f, double r) {
        std::string ratio =
            r > 0 ? perf::fmt("%.1fx", f / r) : "eliminated";
        table.addRow({name, perf::fmtCount(static_cast<uint64_t>(f)),
                      perf::fmtCount(static_cast<uint64_t>(r)),
                      ratio});
    };
    row("server SSL cycles", full.sslTotal / runs,
        resumed.sslTotal / runs);
    row("public key cycles", full.cryptoPublic / runs,
        resumed.cryptoPublic / runs);
    row("hash cycles", full.cryptoHash / runs,
        resumed.cryptoHash / runs);
    row("wire bytes", full.wireBytes / runs, resumed.wireBytes / runs);
    table.print();

    TablePrinter mixed("Mixed workload: transaction cost vs resumption "
                       "ratio (1KB pages, 30 transactions each)");
    mixed.setHeader({"resumed fraction", "avg Mcycles/transaction",
                     "resumed handshakes"});
    for (double frac : {0.0, 0.25, 0.5, 0.75, 0.95}) {
        TransactionStats w = sim.runWorkload(30, 1024, frac);
        mixed.addRow(
            {perf::fmtPct(100 * frac, 0),
             perf::fmtF(w.total() / w.transactions / 1e6, 2),
             perf::fmt("%llu", static_cast<unsigned long long>(
                                   w.resumedHandshakes))});
    }
    mixed.print();
    return 0;
}

/**
 * @file
 * MD5 message digest (RFC 1321).
 */

#ifndef SSLA_CRYPTO_MD5_HH
#define SSLA_CRYPTO_MD5_HH

#include "crypto/digest.hh"
#include "crypto/md5_kernel.hh"

namespace ssla::crypto
{

/** Incremental MD5 (16-byte digest, 64-byte blocks). */
class Md5 final : public Digest
{
  public:
    static constexpr size_t outputSize = 16;
    static constexpr size_t blockBytes = 64;

    Md5() { init(); }

    void init() override;
    void update(const uint8_t *data, size_t len) override;
    using Digest::update;
    void final(uint8_t *out) override;
    using Digest::final;

    size_t digestSize() const override { return outputSize; }
    size_t blockSize() const override { return blockBytes; }
    const char *name() const override { return "MD5"; }
    std::unique_ptr<Digest> clone() const override;

    /** One-shot convenience. */
    static Bytes hash(const Bytes &data);

  private:
    Md5State state_;
    uint64_t totalLen_ = 0;      ///< bytes absorbed so far
    uint8_t buffer_[blockBytes]; ///< partial-block staging
    size_t bufferLen_ = 0;
};

} // namespace ssla::crypto

#endif // SSLA_CRYPTO_MD5_HH

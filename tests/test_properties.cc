/**
 * @file
 * Property-based sweeps: algebraic laws of the bignum layer, the RSA
 * multiplicative structure, CBC error-propagation semantics, and
 * record-layer roundtrips under randomized shapes.
 */

#include <gtest/gtest.h>

#include "bn/modexp.hh"
#include "crypto/cipher.hh"
#include "crypto/provider.hh"
#include "crypto/des.hh"
#include "crypto/rsa.hh"
#include "ssl/record.hh"
#include "util/rng.hh"

#include "testkeys.hh"

namespace
{

using namespace ssla;
using bn::BigNum;

BigNum
randomBig(Xoshiro256 &rng, size_t max_bytes)
{
    return BigNum::fromBytesBE(rng.bytes(1 + rng.nextBelow(max_bytes)));
}

class BigNumAlgebra : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(BigNumAlgebra, RingLaws)
{
    Xoshiro256 rng(GetParam());
    for (int i = 0; i < 50; ++i) {
        BigNum a = randomBig(rng, 40);
        BigNum b = randomBig(rng, 40);
        BigNum c = randomBig(rng, 40);

        // Commutativity and associativity.
        EXPECT_EQ(a + b, b + a);
        EXPECT_EQ(a * b, b * a);
        EXPECT_EQ((a + b) + c, a + (b + c));
        EXPECT_EQ((a * b) * c, a * (b * c));
        // Distributivity.
        EXPECT_EQ(a * (b + c), a * b + a * c);
        // Identities and inverses.
        EXPECT_EQ(a + BigNum(), a);
        EXPECT_EQ(a * BigNum(1), a);
        EXPECT_TRUE((a - a).isZero());
        // Subtraction round-trips.
        EXPECT_EQ((a + b) - b, a);
        EXPECT_EQ(a - b, -(b - a));
    }
}

TEST_P(BigNumAlgebra, ShiftsArePowersOfTwo)
{
    Xoshiro256 rng(GetParam() ^ 0xff);
    for (int i = 0; i < 30; ++i) {
        BigNum a = randomBig(rng, 24);
        size_t s = rng.nextBelow(70);
        BigNum pow2 = BigNum(1).shiftLeft(s);
        EXPECT_EQ(a.shiftLeft(s), a * pow2);
        EXPECT_EQ(a.shiftRight(s), a / pow2);
        EXPECT_EQ(a.shiftRight(s).shiftLeft(s) + a.mod(pow2), a);
    }
}

TEST_P(BigNumAlgebra, ModularLaws)
{
    Xoshiro256 rng(GetParam() ^ 0xabcd);
    for (int i = 0; i < 25; ++i) {
        Bytes mb = rng.bytes(12);
        mb.back() |= 1;
        mb.front() |= 0x80;
        BigNum m = BigNum::fromBytesBE(mb);
        BigNum a = randomBig(rng, 16).mod(m);
        BigNum b = randomBig(rng, 16).mod(m);

        // Exponent addition law: a^x * a^y == a^(x+y) (mod m).
        BigNum x = randomBig(rng, 2);
        BigNum y = randomBig(rng, 2);
        EXPECT_EQ(BigNum::modMul(bn::modExp(a, x, m),
                                 bn::modExp(a, y, m), m),
                  bn::modExp(a, x + y, m));
        // (ab)^x == a^x b^x (mod m).
        EXPECT_EQ(bn::modExp(BigNum::modMul(a, b, m), x, m),
                  BigNum::modMul(bn::modExp(a, x, m),
                                 bn::modExp(b, x, m), m));
        // mod add/sub consistency.
        EXPECT_EQ(BigNum::modSub(BigNum::modAdd(a, b, m), b, m), a);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigNumAlgebra,
                         ::testing::Values(1, 2, 3, 4));

TEST(RsaProperties, MultiplicativeHomomorphism)
{
    // Raw RSA is multiplicative: E(m1) * E(m2) == E(m1 * m2 mod n).
    const auto &kp = test::testKey512();
    Xoshiro256 rng(9);
    for (int i = 0; i < 10; ++i) {
        BigNum m1 = randomBig(rng, 30).mod(kp.pub.n);
        BigNum m2 = randomBig(rng, 30).mod(kp.pub.n);
        BigNum lhs = BigNum::modMul(crypto::rsaPublicRaw(kp.pub, m1),
                                    crypto::rsaPublicRaw(kp.pub, m2),
                                    kp.pub.n);
        BigNum rhs = crypto::rsaPublicRaw(
            kp.pub, BigNum::modMul(m1, m2, kp.pub.n));
        EXPECT_EQ(lhs, rhs);
    }
}

TEST(RsaProperties, SignThenRecoverIsIdentity)
{
    const auto &kp = test::testKey512();
    Xoshiro256 rng(10);
    for (int i = 0; i < 5; ++i) {
        BigNum m = randomBig(rng, 40).mod(kp.pub.n);
        EXPECT_EQ(crypto::rsaPublicRaw(kp.pub, kp.priv->privateRaw(m)),
                  m);
    }
}

TEST(CbcProperties, BitFlipGarblesExactlyTwoBlocks)
{
    // CBC decryption: flipping ciphertext block i garbles plaintext
    // block i completely and block i+1 in exactly the flipped bit;
    // all other blocks survive. This is the error-propagation
    // structure the record layer's MAC has to compensate for.
    Xoshiro256 rng(11);
    Bytes key = rng.bytes(16);
    Bytes iv = rng.bytes(16);
    Bytes pt = rng.bytes(16 * 8);

    auto enc = crypto::scalarProvider().createCipher(crypto::CipherAlg::Aes128Cbc, key,
                                      iv, true);
    Bytes ct = enc->process(pt);

    for (size_t block : {0u, 3u, 6u}) {
        Bytes tampered = ct;
        size_t bit = rng.nextBelow(128);
        tampered[block * 16 + bit / 8] ^=
            static_cast<uint8_t>(1u << (bit % 8));

        auto dec = crypto::scalarProvider().createCipher(crypto::CipherAlg::Aes128Cbc,
                                          key, iv, false);
        Bytes out = dec->process(tampered);

        for (size_t b = 0; b < 8; ++b) {
            Bytes got(out.begin() + b * 16, out.begin() + (b + 1) * 16);
            Bytes want(pt.begin() + b * 16, pt.begin() + (b + 1) * 16);
            if (b == block) {
                EXPECT_NE(got, want) << "block " << b;
            } else if (b == block + 1) {
                // Exactly the flipped bit differs.
                int diff_bits = 0;
                for (size_t k = 0; k < 16; ++k)
                    diff_bits += __builtin_popcount(got[k] ^ want[k]);
                EXPECT_EQ(diff_bits, 1) << "block " << b;
            } else {
                EXPECT_EQ(got, want) << "block " << b;
            }
        }
    }
}

TEST(CbcProperties, FirstBlockDependsOnIv)
{
    Xoshiro256 rng(12);
    Bytes key = rng.bytes(16);
    Bytes pt = rng.bytes(32);
    Bytes iv1 = rng.bytes(16);
    Bytes iv2 = iv1;
    iv2[0] ^= 1;

    auto e1 = crypto::scalarProvider().createCipher(crypto::CipherAlg::Aes128Cbc, key,
                                     iv1, true);
    auto e2 = crypto::scalarProvider().createCipher(crypto::CipherAlg::Aes128Cbc, key,
                                     iv2, true);
    Bytes c1 = e1->process(pt);
    Bytes c2 = e2->process(pt);
    EXPECT_NE(Bytes(c1.begin(), c1.begin() + 16),
              Bytes(c2.begin(), c2.begin() + 16));
}

TEST(RecordProperties, RandomizedRoundTrips)
{
    // Random suites, sizes and content types through an armed record
    // channel: everything must round-trip in order.
    Xoshiro256 rng(13);
    const ssl::CipherSuiteId suites[] = {
        ssl::CipherSuiteId::RSA_RC4_128_SHA,
        ssl::CipherSuiteId::RSA_3DES_EDE_CBC_SHA,
        ssl::CipherSuiteId::RSA_AES_256_CBC_SHA,
    };
    for (ssl::CipherSuiteId id : suites) {
        const auto &suite = ssl::cipherSuite(id);
        ssl::BioPair wires;
        ssl::RecordLayer sender(wires.clientEnd());
        ssl::RecordLayer receiver(wires.serverEnd());
        Bytes mac = rng.bytes(suite.macLen());
        Bytes key = rng.bytes(suite.keyLen());
        Bytes iv = rng.bytes(suite.ivLen());
        sender.enableSendCipher(suite, mac, key, iv);
        receiver.enableRecvCipher(suite, mac, key, iv);

        std::vector<Bytes> sent;
        for (int i = 0; i < 40; ++i) {
            Bytes payload = rng.bytes(rng.nextBelow(2000));
            sender.send(ssl::ContentType::ApplicationData, payload);
            sent.push_back(std::move(payload));
        }
        for (const Bytes &expect : sent) {
            auto rec = receiver.receive();
            ASSERT_TRUE(rec);
            EXPECT_EQ(rec->payload, expect);
        }
        EXPECT_FALSE(receiver.receive());
    }
}

TEST(DesProperties, DecryptScheduleIsReversedEncrypt)
{
    Xoshiro256 rng(14);
    Bytes key = rng.bytes(8);
    crypto::DesKeySchedule enc, dec;
    crypto::desSetKey(key.data(), enc, false);
    crypto::desSetKey(key.data(), dec, true);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(enc.ks[i], dec.ks[15 - i]);
}

TEST(HashProperties, AvalancheOnRandomInputs)
{
    Xoshiro256 rng(15);
    for (int i = 0; i < 20; ++i) {
        Bytes data = rng.bytes(64 + rng.nextBelow(64));
        Bytes flipped = data;
        flipped[rng.nextBelow(flipped.size())] ^= 0x01;

        for (auto alg :
             {crypto::DigestAlg::MD5, crypto::DigestAlg::SHA1}) {
            Bytes h1 = crypto::digestOneShot(alg, data);
            Bytes h2 = crypto::digestOneShot(alg, flipped);
            int diff = 0;
            for (size_t k = 0; k < h1.size(); ++k)
                diff += __builtin_popcount(h1[k] ^ h2[k]);
            // Expect roughly half the output bits to flip.
            EXPECT_GT(diff, static_cast<int>(h1.size() * 8 / 4));
            EXPECT_LT(diff, static_cast<int>(h1.size() * 8 * 3 / 4));
        }
    }
}

} // anonymous namespace

/**
 * @file
 * A minimal HTTP/1.0 layer: enough request/response handling to make
 * the simulated web server serve real byte streams over SSL, the way
 * the paper's Apache + curl setup exchanged pages.
 */

#ifndef SSLA_WEB_HTTP_HH
#define SSLA_WEB_HTTP_HH

#include <map>
#include <optional>
#include <string>

#include "util/types.hh"

namespace ssla::web
{

/** A parsed HTTP request. */
struct HttpRequest
{
    std::string method = "GET";
    std::string path = "/";
    std::string version = "HTTP/1.0";
    std::map<std::string, std::string> headers;

    /** Serialize to wire form. */
    Bytes encode() const;

    /**
     * Parse a complete request (through the blank line).
     * @throws std::runtime_error on malformed input
     */
    static HttpRequest parse(const Bytes &wire);
};

/** An HTTP response with a body. */
struct HttpResponse
{
    int status = 200;
    std::string reason = "OK";
    std::map<std::string, std::string> headers;
    Bytes body;

    Bytes encode() const;
    static HttpResponse parse(const Bytes &wire);
};

} // namespace ssla::web

#endif // SSLA_WEB_HTTP_HH

#include "crypto/provider.hh"

#include <condition_variable>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "perf/probe.hh"

namespace ssla::crypto
{

// ---------------------------------------------------------------------
// MacJob

struct MacJob::State
{
    // Job inputs (spec copied so the job is self-contained; the data
    // view and the output slot are the caller's responsibility until
    // wait() returns).
    RecordMacSpec spec;
    uint64_t seq = 0;
    uint8_t type = 0;
    ConstSpan data;
    uint8_t *out = nullptr;

    // Result rendezvous.
    std::mutex m;
    std::condition_variable cv;
    bool ready = false;
    size_t macLen = 0;
    std::exception_ptr error;

    void
    finish(size_t len, std::exception_ptr err)
    {
        {
            std::lock_guard<std::mutex> lock(m);
            macLen = len;
            error = std::move(err);
            ready = true;
        }
        cv.notify_all();
    }
};

size_t
MacJob::wait()
{
    if (!state_)
        throw std::logic_error("MacJob::wait: empty job");
    std::unique_lock<std::mutex> lock(state_->m);
    state_->cv.wait(lock, [&] { return state_->ready; });
    if (state_->error)
        std::rethrow_exception(state_->error);
    return state_->macLen;
}

// ---------------------------------------------------------------------
// RsaJob

Bytes
RsaJob::wait()
{
    if (!state_)
        throw std::logic_error("RsaJob::wait: empty job");
    std::unique_lock<std::mutex> lock(state_->m);
    state_->cv.wait(lock, [&] {
        return state_->ready.load(std::memory_order_acquire);
    });
    if (state_->error)
        std::rethrow_exception(state_->error);
    return state_->result;
}

// ---------------------------------------------------------------------
// Record MAC constructions (SSLv3 pad-concatenation MAC / TLS HMAC)

namespace
{

/** Pad length bytes for the SSLv3 MAC (48 for MD5, 40 for SHA-1). */
size_t
macPadLen(DigestAlg alg)
{
    return alg == DigestAlg::MD5 ? 48 : 40;
}

/**
 * hash(secret || pad2 || hash(secret || pad1 || seq || type || len ||
 * data)) — the SSLv3 record MAC, built from @p p 's digests, written
 * into @p mac_out.
 */
size_t
ssl3RecordMac(Provider &p, const RecordMacSpec &spec, uint64_t seq,
              uint8_t type, ConstSpan data, uint8_t *mac_out)
{
    size_t pad_len = macPadLen(spec.alg);

    uint8_t header[11];
    for (int i = 7; i >= 0; --i)
        header[7 - i] = static_cast<uint8_t>(seq >> (8 * i));
    header[8] = type;
    header[9] = static_cast<uint8_t>(data.size() >> 8);
    header[10] = static_cast<uint8_t>(data.size());

    auto inner = p.createDigest(spec.alg);
    inner->update(spec.secret);
    Bytes pad1(pad_len, 0x36);
    inner->update(pad1);
    inner->update(header, sizeof(header));
    inner->update(data.data(), data.size());
    uint8_t inner_digest[maxRecordMacLen];
    inner->final(inner_digest);

    auto outer = p.createDigest(spec.alg);
    outer->update(spec.secret);
    Bytes pad2(pad_len, 0x5c);
    outer->update(pad2);
    outer->update(inner_digest, inner->digestSize());
    outer->final(mac_out);
    return outer->digestSize();
}

/** HMAC(secret, seq || type || version || length || data) — TLS 1.0. */
size_t
tls1RecordMac(Provider &p, const RecordMacSpec &spec, uint64_t seq,
              uint8_t type, ConstSpan data, uint8_t *mac_out)
{
    uint8_t header[13];
    for (int i = 7; i >= 0; --i)
        header[7 - i] = static_cast<uint8_t>(seq >> (8 * i));
    header[8] = type;
    header[9] = static_cast<uint8_t>(spec.version >> 8);
    header[10] = static_cast<uint8_t>(spec.version);
    header[11] = static_cast<uint8_t>(data.size() >> 8);
    header[12] = static_cast<uint8_t>(data.size());

    auto hmac = p.createHmac(spec.alg, spec.secret);
    hmac->update(header, sizeof(header));
    hmac->update(data.data(), data.size());
    hmac->final(mac_out);
    return hmac->tagSize();
}

size_t
computeRecordMacWith(Provider &p, const RecordMacSpec &spec,
                     uint64_t seq, uint8_t type, ConstSpan data,
                     uint8_t *mac_out)
{
    if (spec.version >= 0x0301)
        return tls1RecordMac(p, spec, seq, type, data, mac_out);
    return ssl3RecordMac(p, spec, seq, type, data, mac_out);
}

} // anonymous namespace

MacJob
Provider::submitRecordMac(const RecordMacSpec &spec, uint64_t seq,
                          uint8_t type, ConstSpan data,
                          uint8_t *mac_out)
{
    // Synchronous providers resolve at submit time.
    auto state = std::make_shared<MacJob::State>();
    try {
        state->macLen = recordMac(spec, seq, type, data, mac_out);
    } catch (...) {
        state->error = std::current_exception();
    }
    state->ready = true;
    return MacJob(std::move(state));
}

RsaJob
Provider::submitRsaDecrypt(const RsaPrivateKey &key, Bytes cipher)
{
    // Synchronous providers resolve at submit time.
    auto state = std::make_shared<RsaJob::State>();
    Bytes result;
    std::exception_ptr err;
    try {
        result = rsaDecrypt(key, cipher);
    } catch (...) {
        err = std::current_exception();
    }
    state->finish(std::move(result), std::move(err));
    return RsaJob(std::move(state));
}

const bn::Engine &
Provider::bnEngine() const
{
    return bn::bn32Engine();
}

RsaJob
Provider::submitRsaSign(const RsaPrivateKey &key, Bytes digest_data)
{
    auto state = std::make_shared<RsaJob::State>();
    Bytes result;
    std::exception_ptr err;
    try {
        result = rsaSign(key, digest_data);
    } catch (...) {
        err = std::current_exception();
    }
    state->finish(std::move(result), std::move(err));
    return RsaJob(std::move(state));
}

// ---------------------------------------------------------------------
// ScalarProvider

std::unique_ptr<Cipher>
ScalarProvider::createCipher(CipherAlg alg, const Bytes &key,
                             const Bytes &iv, bool encrypt)
{
    return Cipher::create(alg, key, iv, encrypt);
}

std::unique_ptr<Digest>
ScalarProvider::createDigest(DigestAlg alg)
{
    return Digest::create(alg);
}

std::unique_ptr<Hmac>
ScalarProvider::createHmac(DigestAlg alg, const Bytes &key)
{
    return std::make_unique<Hmac>(alg, key);
}

size_t
ScalarProvider::recordMac(const RecordMacSpec &spec, uint64_t seq,
                          uint8_t type, ConstSpan data,
                          uint8_t *mac_out)
{
    return computeRecordMacWith(*this, spec, seq, type, data, mac_out);
}

Bytes
ScalarProvider::rsaDecrypt(const RsaPrivateKey &key, const Bytes &cipher)
{
    return rsaPrivateDecrypt(key, cipher);
}

Bytes
ScalarProvider::rsaSign(const RsaPrivateKey &key,
                        const Bytes &digest_data)
{
    return crypto::rsaSign(key, digest_data);
}

// ---------------------------------------------------------------------
// InstrumentedProvider

namespace
{

/** Probes each process() call under the paper's record-cipher names. */
class ProbedCipher final : public Cipher
{
  public:
    ProbedCipher(std::unique_ptr<Cipher> inner, const char *probe)
        : inner_(std::move(inner)), probe_(probe)
    {}

    const CipherInfo &info() const override { return inner_->info(); }

    void
    process(const uint8_t *in, uint8_t *out, size_t len) override
    {
        perf::FuncProbe probe(probe_);
        inner_->process(in, out, len);
    }

  private:
    std::unique_ptr<Cipher> inner_;
    const char *probe_; ///< static storage (probe contract)
};

} // anonymous namespace

std::unique_ptr<Cipher>
InstrumentedProvider::createCipher(CipherAlg alg, const Bytes &key,
                                   const Bytes &iv, bool encrypt)
{
    return std::make_unique<ProbedCipher>(
        inner_.createCipher(alg, key, iv, encrypt),
        encrypt ? "pri_encryption" : "pri_decryption");
}

std::unique_ptr<Digest>
InstrumentedProvider::createDigest(DigestAlg alg)
{
    return inner_.createDigest(alg);
}

std::unique_ptr<Hmac>
InstrumentedProvider::createHmac(DigestAlg alg, const Bytes &key)
{
    return inner_.createHmac(alg, key);
}

size_t
InstrumentedProvider::recordMac(const RecordMacSpec &spec, uint64_t seq,
                                uint8_t type, ConstSpan data,
                                uint8_t *mac_out)
{
    perf::FuncProbe probe("mac");
    return inner_.recordMac(spec, seq, type, data, mac_out);
}

Bytes
InstrumentedProvider::rsaDecrypt(const RsaPrivateKey &key,
                                 const Bytes &cipher)
{
    // rsaPrivateDecrypt self-probes ("rsa_private_decryption" and the
    // six Table 7 step probes); no extra bracket here.
    return inner_.rsaDecrypt(key, cipher);
}

Bytes
InstrumentedProvider::rsaSign(const RsaPrivateKey &key,
                              const Bytes &digest_data)
{
    return inner_.rsaSign(key, digest_data);
}

// ---------------------------------------------------------------------
// PipelinedProvider

struct PipelinedProvider::Engine
{
    explicit Engine(ScalarProvider &scalar) : scalar(scalar)
    {
        worker = std::thread([this] { run(); });
    }

    ~Engine()
    {
        {
            std::lock_guard<std::mutex> lock(m);
            stopping = true;
        }
        cv.notify_all();
        worker.join();
    }

    void
    submit(std::shared_ptr<MacJob::State> job)
    {
        {
            std::lock_guard<std::mutex> lock(m);
            queue.push_back(std::move(job));
        }
        cv.notify_one();
    }

    void
    run()
    {
        for (;;) {
            std::shared_ptr<MacJob::State> job;
            {
                std::unique_lock<std::mutex> lock(m);
                cv.wait(lock,
                        [&] { return stopping || !queue.empty(); });
                if (queue.empty())
                    return; // stopping and drained
                job = std::move(queue.front());
                queue.pop_front();
            }
            size_t mac_len = 0;
            std::exception_ptr err;
            try {
                mac_len = computeRecordMacWith(scalar, job->spec,
                                               job->seq, job->type,
                                               job->data, job->out);
            } catch (...) {
                err = std::current_exception();
            }
            job->finish(mac_len, std::move(err));
        }
    }

    ScalarProvider &scalar;
    std::mutex m;
    std::condition_variable cv;
    std::deque<std::shared_ptr<MacJob::State>> queue;
    bool stopping = false;
    std::thread worker;
};

PipelinedProvider::PipelinedProvider()
    : engine_(std::make_unique<Engine>(scalar_))
{
}

PipelinedProvider::~PipelinedProvider() = default;

std::unique_ptr<Cipher>
PipelinedProvider::createCipher(CipherAlg alg, const Bytes &key,
                                const Bytes &iv, bool encrypt)
{
    return scalar_.createCipher(alg, key, iv, encrypt);
}

std::unique_ptr<Digest>
PipelinedProvider::createDigest(DigestAlg alg)
{
    return scalar_.createDigest(alg);
}

std::unique_ptr<Hmac>
PipelinedProvider::createHmac(DigestAlg alg, const Bytes &key)
{
    return scalar_.createHmac(alg, key);
}

size_t
PipelinedProvider::recordMac(const RecordMacSpec &spec, uint64_t seq,
                             uint8_t type, ConstSpan data,
                             uint8_t *mac_out)
{
    return computeRecordMacWith(scalar_, spec, seq, type, data,
                                mac_out);
}

MacJob
PipelinedProvider::submitRecordMac(const RecordMacSpec &spec,
                                   uint64_t seq, uint8_t type,
                                   ConstSpan data, uint8_t *mac_out)
{
    auto state = std::make_shared<MacJob::State>();
    state->spec = spec;
    state->seq = seq;
    state->type = type;
    state->data = data;
    state->out = mac_out;
    engine_->submit(state);
    return MacJob(std::move(state));
}

Bytes
PipelinedProvider::rsaDecrypt(const RsaPrivateKey &key,
                              const Bytes &cipher)
{
    return scalar_.rsaDecrypt(key, cipher);
}

Bytes
PipelinedProvider::rsaSign(const RsaPrivateKey &key,
                           const Bytes &digest_data)
{
    return scalar_.rsaSign(key, digest_data);
}

// ---------------------------------------------------------------------
// FastProvider

std::unique_ptr<Cipher>
FastProvider::createCipher(CipherAlg alg, const Bytes &key,
                           const Bytes &iv, bool encrypt)
{
    return scalar_.createCipher(alg, key, iv, encrypt);
}

std::unique_ptr<Digest>
FastProvider::createDigest(DigestAlg alg)
{
    return scalar_.createDigest(alg);
}

std::unique_ptr<Hmac>
FastProvider::createHmac(DigestAlg alg, const Bytes &key)
{
    return scalar_.createHmac(alg, key);
}

size_t
FastProvider::recordMac(const RecordMacSpec &spec, uint64_t seq,
                        uint8_t type, ConstSpan data, uint8_t *mac_out)
{
    return computeRecordMacWith(scalar_, spec, seq, type, data,
                                mac_out);
}

const bn::Engine &
FastProvider::bnEngine() const
{
    return bn::bn64Engine();
}

const RsaPrivateKey &
FastProvider::fastKey(const RsaPrivateKey &key)
{
    if (key.bnEngine().backend() == bn::BnBackend::Bn64)
        return key;

    // Per-thread bn64 replicas of bn32-built keys, the CryptoPool's
    // replication idea applied at the provider seam: each thread owns
    // its replica outright, so the Montgomery scratch and the mutable
    // blinding pair never see two threads. Keyed by source address
    // with an n/e identity check (an allocator may reuse a freed key's
    // address for a different key). Bounded: servers hold a handful of
    // long-lived identity keys, so eviction is a correctness valve,
    // not a hot path.
    struct Entry
    {
        const RsaPrivateKey *src;
        std::unique_ptr<RsaPrivateKey> replica;
    };
    constexpr size_t max_entries = 8;
    static thread_local std::vector<Entry> cache;

    for (auto it = cache.begin(); it != cache.end(); ++it) {
        if (it->src != &key)
            continue;
        if (it->replica->publicKey().n == key.publicKey().n &&
            it->replica->publicKey().e == key.publicKey().e)
            return *it->replica;
        cache.erase(it); // stale: address reused by a different key
        break;
    }

    if (cache.size() >= max_entries)
        cache.erase(cache.begin());
    cache.push_back(
        {&key, std::make_unique<RsaPrivateKey>(
                   key.publicKey().n, key.publicKey().e, key.d(),
                   key.p(), key.q(), &bn::bn64Engine())});
    return *cache.back().replica;
}

Bytes
FastProvider::rsaDecrypt(const RsaPrivateKey &key, const Bytes &cipher)
{
    return rsaPrivateDecrypt(fastKey(key), cipher);
}

Bytes
FastProvider::rsaSign(const RsaPrivateKey &key, const Bytes &digest_data)
{
    return crypto::rsaSign(fastKey(key), digest_data);
}

// ---------------------------------------------------------------------
// Registry

Provider &
scalarProvider()
{
    static ScalarProvider provider;
    return provider;
}

Provider &
defaultProvider()
{
    static InstrumentedProvider provider(scalarProvider());
    return provider;
}

std::unique_ptr<Provider>
createProvider(const std::string &name)
{
    if (name == "scalar")
        return std::make_unique<ScalarProvider>();
    if (name == "instrumented")
        return std::make_unique<InstrumentedProvider>(scalarProvider());
    if (name == "pipelined")
        return std::make_unique<PipelinedProvider>();
    if (name == "fast")
        return std::make_unique<FastProvider>();
    throw std::invalid_argument("createProvider: unknown provider '" +
                                name + "'");
}

const std::vector<std::string> &
providerNames()
{
    static const std::vector<std::string> names = {
        "scalar", "instrumented", "pipelined", "fast"};
    return names;
}

} // namespace ssla::crypto

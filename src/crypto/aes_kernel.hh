/**
 * @file
 * AES (FIPS 197) block kernels in the classic four-table form.
 *
 * This is the same construction OpenSSL 0.9.7d used and the one the
 * paper characterizes: four 256-entry 32-bit lookup tables (Table 4),
 * ten/twelve/fourteen rounds of 16 table lookups + XORs, decomposed
 * into the three parts of the paper's Table 5:
 *   part 1: map the byte block to the cipher state + initial round key
 *   part 2: the main rounds
 *   part 3: the last round + map back to bytes
 * Each part is a separate template so the anatomy bench can time them
 * independently, exactly as the paper reports them.
 */

#ifndef SSLA_CRYPTO_AES_KERNEL_HH
#define SSLA_CRYPTO_AES_KERNEL_HH

#include <cstdint>

#include "perf/opcount.hh"
#include "util/endian.hh"

namespace ssla::crypto
{

/** Lazily generated AES lookup tables (derived from GF(2^8) math). */
struct AesTables
{
    uint32_t te0[256], te1[256], te2[256], te3[256];
    uint32_t td0[256], td1[256], td2[256], td3[256];
    uint8_t sbox[256];
    uint8_t inv_sbox[256];
};

/** Access the process-wide table set (built on first use). */
const AesTables &aesTables();

/** Expanded key schedule; fits AES-256's 15 round keys. */
struct AesKey
{
    uint32_t rk[60];
    int rounds; ///< 10, 12 or 14
};

/**
 * Expand an encryption key schedule.
 * @param bits 128, 192 or 256
 */
void aesSetEncryptKey(const uint8_t *key, unsigned bits, AesKey &out);

/** Expand a decryption key schedule (inverse-cipher form). */
void aesSetDecryptKey(const uint8_t *key, unsigned bits, AesKey &out);

namespace aesdetail
{

/** Count the ops of one table-lookup column (shared enc/dec shape). */
template <class Meter>
inline void
countColumn(Meter &m)
{
    if constexpr (Meter::counting) {
        using perf::OpClass;
        // Byte extraction: shrl $24 for the top byte, movzbl for the
        // middle two, andl for the low byte; then 4 table loads, the
        // round-key load and 4 xors, plus a spill movl (x86-32 keeps
        // only 7 GPRs against 9 live values here).
        m.count(OpClass::ShrL, 1);
        m.count(OpClass::MovB, 2);
        m.count(OpClass::AndL, 1);
        m.count(OpClass::MovL, 6);
        m.count(OpClass::XorL, 4);
    }
}

} // namespace aesdetail

/** Part 1 of Table 5: bytes -> state words + initial round key. */
template <class Meter>
inline void
aesLoadState(const uint8_t in[16], const uint32_t *rk, uint32_t s[4],
             Meter &m)
{
    s[0] = load32be(in) ^ rk[0];
    s[1] = load32be(in + 4) ^ rk[1];
    s[2] = load32be(in + 8) ^ rk[2];
    s[3] = load32be(in + 12) ^ rk[3];
    if constexpr (Meter::counting) {
        using perf::OpClass;
        m.count(OpClass::MovL, 12); // 4 loads + 4 rk loads + 4 moves
        m.count(OpClass::Bswap, 4);
        m.count(OpClass::XorL, 4);
        m.count(OpClass::Push, 4);
    }
}

/** Part 2 of Table 5: the main encryption rounds. */
template <class Meter>
inline void
aesMainRoundsEnc(const AesKey &key, uint32_t s[4], Meter &m)
{
    const AesTables &tb = aesTables();
    const uint32_t *rk = key.rk + 4;
    for (int r = 1; r < key.rounds; ++r, rk += 4) {
        uint32_t t0 = tb.te0[s[0] >> 24] ^ tb.te1[(s[1] >> 16) & 0xff] ^
                      tb.te2[(s[2] >> 8) & 0xff] ^ tb.te3[s[3] & 0xff] ^
                      rk[0];
        uint32_t t1 = tb.te0[s[1] >> 24] ^ tb.te1[(s[2] >> 16) & 0xff] ^
                      tb.te2[(s[3] >> 8) & 0xff] ^ tb.te3[s[0] & 0xff] ^
                      rk[1];
        uint32_t t2 = tb.te0[s[2] >> 24] ^ tb.te1[(s[3] >> 16) & 0xff] ^
                      tb.te2[(s[0] >> 8) & 0xff] ^ tb.te3[s[1] & 0xff] ^
                      rk[2];
        uint32_t t3 = tb.te0[s[3] >> 24] ^ tb.te1[(s[0] >> 16) & 0xff] ^
                      tb.te2[(s[1] >> 8) & 0xff] ^ tb.te3[s[2] & 0xff] ^
                      rk[3];
        s[0] = t0;
        s[1] = t1;
        s[2] = t2;
        s[3] = t3;
        if constexpr (Meter::counting) {
            using perf::OpClass;
            for (int col = 0; col < 4; ++col)
                aesdetail::countColumn(m);
            // t -> s copies and the round-loop control.
            m.count(OpClass::MovL, 4);
            m.count(OpClass::IncL, 1);
            m.count(OpClass::DecL, 1);
            m.count(OpClass::Jcc, 1);
        }
    }
}

/** Part 3 of Table 5: last round (S-box only) + state -> bytes. */
template <class Meter>
inline void
aesFinalRoundEnc(const AesKey &key, const uint32_t s[4], uint8_t out[16],
                 Meter &m)
{
    const AesTables &tb = aesTables();
    const uint32_t *rk = key.rk + 4 * key.rounds;
    for (int i = 0; i < 4; ++i) {
        uint32_t t =
            (static_cast<uint32_t>(tb.sbox[s[i] >> 24]) << 24) |
            (static_cast<uint32_t>(tb.sbox[(s[(i + 1) & 3] >> 16) & 0xff])
             << 16) |
            (static_cast<uint32_t>(tb.sbox[(s[(i + 2) & 3] >> 8) & 0xff])
             << 8) |
            tb.sbox[s[(i + 3) & 3] & 0xff];
        store32be(out + 4 * i, t ^ rk[i]);
        if constexpr (Meter::counting) {
            using perf::OpClass;
            m.count(OpClass::ShrL, 1);
            m.count(OpClass::MovB, 4);
            m.count(OpClass::XorB, 1);
            m.count(OpClass::AndL, 1);
            m.count(OpClass::ShlL, 2);
            m.count(OpClass::OrL, 3);
            m.count(OpClass::MovL, 3);
            m.count(OpClass::XorL, 1);
            m.count(OpClass::Bswap, 1);
        }
    }
    if constexpr (Meter::counting) {
        using perf::OpClass;
        m.count(OpClass::Pop, 4);
        m.count(OpClass::Ret, 1);
    }
}

/** Full block encryption: parts 1-3 in sequence. */
template <class Meter>
inline void
aesEncryptBlockT(const AesKey &key, const uint8_t in[16], uint8_t out[16],
                 Meter &m)
{
    uint32_t s[4];
    aesLoadState(in, key.rk, s, m);
    aesMainRoundsEnc(key, s, m);
    aesFinalRoundEnc(key, s, out, m);
}

/** Full block decryption (inverse cipher over the Td tables). */
template <class Meter>
inline void
aesDecryptBlockT(const AesKey &key, const uint8_t in[16], uint8_t out[16],
                 Meter &m)
{
    const AesTables &tb = aesTables();
    uint32_t s[4];
    aesLoadState(in, key.rk, s, m);

    const uint32_t *rk = key.rk + 4;
    for (int r = 1; r < key.rounds; ++r, rk += 4) {
        uint32_t t0 = tb.td0[s[0] >> 24] ^ tb.td1[(s[3] >> 16) & 0xff] ^
                      tb.td2[(s[2] >> 8) & 0xff] ^ tb.td3[s[1] & 0xff] ^
                      rk[0];
        uint32_t t1 = tb.td0[s[1] >> 24] ^ tb.td1[(s[0] >> 16) & 0xff] ^
                      tb.td2[(s[3] >> 8) & 0xff] ^ tb.td3[s[2] & 0xff] ^
                      rk[1];
        uint32_t t2 = tb.td0[s[2] >> 24] ^ tb.td1[(s[1] >> 16) & 0xff] ^
                      tb.td2[(s[0] >> 8) & 0xff] ^ tb.td3[s[3] & 0xff] ^
                      rk[2];
        uint32_t t3 = tb.td0[s[3] >> 24] ^ tb.td1[(s[2] >> 16) & 0xff] ^
                      tb.td2[(s[1] >> 8) & 0xff] ^ tb.td3[s[0] & 0xff] ^
                      rk[3];
        s[0] = t0;
        s[1] = t1;
        s[2] = t2;
        s[3] = t3;
        if constexpr (Meter::counting) {
            using perf::OpClass;
            for (int col = 0; col < 4; ++col)
                aesdetail::countColumn(m);
            m.count(OpClass::MovL, 4);
            m.count(OpClass::IncL, 1);
            m.count(OpClass::DecL, 1);
            m.count(OpClass::Jcc, 1);
        }
    }

    rk = key.rk + 4 * key.rounds;
    for (int i = 0; i < 4; ++i) {
        uint32_t t =
            (static_cast<uint32_t>(tb.inv_sbox[s[i] >> 24]) << 24) |
            (static_cast<uint32_t>(
                 tb.inv_sbox[(s[(i + 3) & 3] >> 16) & 0xff])
             << 16) |
            (static_cast<uint32_t>(
                 tb.inv_sbox[(s[(i + 2) & 3] >> 8) & 0xff])
             << 8) |
            tb.inv_sbox[s[(i + 1) & 3] & 0xff];
        store32be(out + 4 * i, t ^ rk[i]);
        if constexpr (Meter::counting) {
            using perf::OpClass;
            m.count(OpClass::ShrL, 1);
            m.count(OpClass::MovB, 4);
            m.count(OpClass::XorB, 1);
            m.count(OpClass::AndL, 1);
            m.count(OpClass::ShlL, 2);
            m.count(OpClass::OrL, 3);
            m.count(OpClass::MovL, 3);
            m.count(OpClass::XorL, 1);
            m.count(OpClass::Bswap, 1);
        }
    }
    if constexpr (Meter::counting) {
        using perf::OpClass;
        m.count(OpClass::Pop, 4);
        m.count(OpClass::Ret, 1);
    }
}

} // namespace ssla::crypto

#endif // SSLA_CRYPTO_AES_KERNEL_HH

#include "serve/cryptopool.hh"

#include <unordered_map>

#include "obs/export.hh"
#include "util/cycles.hh"

namespace ssla::serve
{

namespace
{

/** Display label for a pool thread's trace span. */
const char *
jobKindLabel(int kind)
{
    switch (kind) {
      case 0: return "rsa_decrypt";
      case 1: return "rsa_sign";
      default: return "raw";
    }
}

} // anonymous namespace

CryptoPool::CryptoPool(size_t threads, size_t max_queue,
                       OverloadPolicy policy)
    : maxQueue_(max_queue), policy_(policy)
{
    if (threads == 0)
        threads = 1;
    bindMetrics(nullptr);
    workers_.reserve(threads);
    for (size_t i = 0; i < threads; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

void
CryptoPool::bindMetrics(obs::MetricsRegistry *reg)
{
    obs::MetricsRegistry &r =
        reg ? *reg : obs::MetricsRegistry::global();
    histQueueWait_ = r.histogram("cryptopool.queue_wait_cycles");
    histService_ = r.histogram("cryptopool.service_cycles");
    ctrCompleted_ = r.counter("cryptopool.completed");
    ctrRejected_ = r.counter("cryptopool.rejected");
    ctrShed_ = r.counter("cryptopool.shed");
    ctrCancelled_ = r.counter("cryptopool.cancelled");
    gaugeDepth_ = r.gauge("cryptopool.queue_depth");
}

CryptoPool::~CryptoPool()
{
    {
        std::lock_guard<std::mutex> lock(m_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

size_t
CryptoPool::queueDepth() const
{
    std::lock_guard<std::mutex> lock(m_);
    return queue_.size();
}

crypto::RsaJob
CryptoPool::enqueue(Job job)
{
    job.state = std::make_shared<crypto::RsaJob::State>();
    crypto::RsaJob handle(job.state);
    {
        std::lock_guard<std::mutex> lock(m_);
        if (maxQueue_ && queue_.size() >= maxQueue_) {
            // Overload: the bound is checked under the same lock that
            // admits jobs, so concurrent submitters cannot overshoot.
            if (policy_ == OverloadPolicy::Reject) {
                rejected_.fetch_add(1, std::memory_order_relaxed);
                ctrRejected_.inc();
                job.state->finish(
                    Bytes(),
                    std::make_exception_ptr(crypto::ProviderOverloadError(
                        "CryptoPool: queue full")));
                return handle;
            }
            // Shed: hand the work back to the caller (synchronous
            // fallback in PooledProvider) via an invalid handle.
            shed_.fetch_add(1, std::memory_order_relaxed);
            ctrShed_.inc();
            return crypto::RsaJob();
        }
        job.submitCycles = rdcycles();
        queue_.push_back(std::move(job));
        uint64_t depth = queue_.size();
        gaugeDepth_.set(static_cast<int64_t>(depth));
        if (depth > peakQueue_.load(std::memory_order_relaxed))
            peakQueue_.store(depth, std::memory_order_relaxed);
    }
    cv_.notify_one();
    return handle;
}

crypto::RsaJob
CryptoPool::submitDecrypt(const crypto::RsaPrivateKey &key, Bytes cipher)
{
    Job job;
    job.kind = Kind::Decrypt;
    job.key = &key;
    job.input = std::move(cipher);
    return enqueue(std::move(job));
}

crypto::RsaJob
CryptoPool::submitSign(const crypto::RsaPrivateKey &key,
                       Bytes digest_data)
{
    Job job;
    job.kind = Kind::Sign;
    job.key = &key;
    job.input = std::move(digest_data);
    return enqueue(std::move(job));
}

crypto::RsaJob
CryptoPool::submitRaw(std::function<Bytes()> fn)
{
    Job job;
    job.kind = Kind::Raw;
    job.fn = std::move(fn);
    return enqueue(std::move(job));
}

void
CryptoPool::workerLoop(size_t index)
{
    // Flight recorder for this pool thread: one span per executed job,
    // on its own export track so crypto service time lines up against
    // the worker tracks in the Chrome trace. Cheap enough to keep
    // unconditionally; only dumped when a sink is bound at exit.
    obs::SessionTrace trace(obs::cryptoTrackBase + index,
                            obs::cryptoTrackBase + index);

    // Per-thread private-key replicas, keyed by the submitter's key
    // object. Cloning rebuilds the Montgomery contexts and blinding
    // state, so this thread owns every mutable buffer it touches (the
    // bn-layer single-owner contract); decrypt/sign results are
    // unaffected because the private-key operation is deterministic
    // modulo blinding, which cancels by construction.
    std::unordered_map<const crypto::RsaPrivateKey *,
                       std::unique_ptr<crypto::RsaPrivateKey>>
        replicas;
    auto replica =
        [&](const crypto::RsaPrivateKey *key) -> crypto::RsaPrivateKey & {
        auto it = replicas.find(key);
        if (it == replicas.end()) {
            // Replicas inherit the source key's bn engine, so a bn64
            // (fast-provider) key stays bn64 across the pool and a
            // paper-era bn32 key keeps its profiling anchor.
            auto clone = std::make_unique<crypto::RsaPrivateKey>(
                key->publicKey().n, key->publicKey().e, key->d(),
                key->p(), key->q(), &key->bnEngine());
            it = replicas.emplace(key, std::move(clone)).first;
        }
        return *it->second;
    };

    for (;;) {
        Job job;
        {
            std::unique_lock<std::mutex> lock(m_);
            cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                break; // stopping and drained
            job = std::move(queue_.front());
            queue_.pop_front();
            gaugeDepth_.set(static_cast<int64_t>(queue_.size()));
        }
        uint64_t startCycles = rdcycles();
        histQueueWait_.record(startCycles - job.submitCycles);
        if (job.state->cancelled.load(std::memory_order_acquire)) {
            // The submitter tore the session down while the job was
            // queued: skip execution entirely — in particular, never
            // touch job.key, whose owner may already be gone — but
            // still finish() so a straggling waiter unblocks.
            cancelled_.fetch_add(1, std::memory_order_relaxed);
            ctrCancelled_.inc();
            job.state->finish(
                Bytes(), std::make_exception_ptr(std::runtime_error(
                             "CryptoPool: job cancelled")));
            continue;
        }
        trace.record(obs::TraceEventKind::JobStart,
                     obs::traceSideEngine,
                     jobKindLabel(static_cast<int>(job.kind)), 0,
                     startCycles - job.submitCycles);
        Bytes result;
        std::exception_ptr err;
        try {
            switch (job.kind) {
              case Kind::Decrypt:
                result = crypto::rsaPrivateDecrypt(replica(job.key),
                                                   job.input);
                break;
              case Kind::Sign:
                result = crypto::rsaSign(replica(job.key), job.input);
                break;
              case Kind::Raw:
                result = job.fn();
                break;
            }
        } catch (...) {
            err = std::current_exception();
        }
        uint64_t endCycles = rdcycles();
        histService_.record(endCycles - startCycles);
        trace.record(obs::TraceEventKind::JobEnd, obs::traceSideEngine,
                     jobKindLabel(static_cast<int>(job.kind)),
                     err ? 1 : 0, endCycles - startCycles);
        // Count before finish(): a waiter released by finish() must
        // already observe this job in completedJobs().
        completed_.fetch_add(1, std::memory_order_relaxed);
        ctrCompleted_.inc();
        job.state->finish(std::move(result), std::move(err));
    }

    trace.noteOutcome("pool-exit");
    if (obs::TraceSink *sink =
            traceSink_.load(std::memory_order_acquire);
        sink && trace.recorded())
        sink->dump(trace);
}

// ---------------------------------------------------------------------
// PooledProvider

PooledProvider::PooledProvider(CryptoPool &pool, crypto::Provider *inner)
    : pool_(pool), inner_(inner ? *inner : crypto::scalarProvider())
{
}

std::unique_ptr<crypto::Cipher>
PooledProvider::createCipher(crypto::CipherAlg alg, const Bytes &key,
                             const Bytes &iv, bool encrypt)
{
    return inner_.createCipher(alg, key, iv, encrypt);
}

std::unique_ptr<crypto::Digest>
PooledProvider::createDigest(crypto::DigestAlg alg)
{
    return inner_.createDigest(alg);
}

std::unique_ptr<crypto::Hmac>
PooledProvider::createHmac(crypto::DigestAlg alg, const Bytes &key)
{
    return inner_.createHmac(alg, key);
}

size_t
PooledProvider::recordMac(const crypto::RecordMacSpec &spec, uint64_t seq,
                          uint8_t type, ConstSpan data, uint8_t *mac_out)
{
    return inner_.recordMac(spec, seq, type, data, mac_out);
}

Bytes
PooledProvider::rsaDecrypt(const crypto::RsaPrivateKey &key,
                           const Bytes &cipher)
{
    return inner_.rsaDecrypt(key, cipher);
}

Bytes
PooledProvider::rsaSign(const crypto::RsaPrivateKey &key,
                        const Bytes &digest_data)
{
    return inner_.rsaSign(key, digest_data);
}

crypto::RsaJob
PooledProvider::submitRsaDecrypt(const crypto::RsaPrivateKey &key,
                                 Bytes cipher)
{
    crypto::RsaJob job = pool_.submitDecrypt(key, cipher);
    if (job.valid())
        return job;
    // Shed policy, queue full: degrade to the synchronous baseline on
    // the submitting worker. Safe with @p key: the caller owns it and
    // we are on the caller's thread (the pool only ever runs clones).
    return Provider::submitRsaDecrypt(key, std::move(cipher));
}

crypto::RsaJob
PooledProvider::submitRsaSign(const crypto::RsaPrivateKey &key,
                              Bytes digest_data)
{
    crypto::RsaJob job = pool_.submitSign(key, digest_data);
    if (job.valid())
        return job;
    return Provider::submitRsaSign(key, std::move(digest_data));
}

} // namespace ssla::serve

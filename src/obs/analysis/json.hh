/**
 * @file
 * Minimal strict JSON value parser for the trace-analysis layer.
 *
 * The repo's producers emit JSON through bench::JsonWriter and the obs
 * exporters; this is the matching consumer: a small recursive-descent
 * parser over an immutable value tree, with line/column error
 * reporting. It exists so the analyzer has zero external dependencies.
 *
 * Deliberately strict where the producers are strict: no NaN/Infinity
 * literals, no comments, no trailing commas. Integers that fit int64
 * or uint64 are kept exactly (cycle counters exceed the 2^53 double
 * mantissa), doubles otherwise.
 */

#ifndef SSLA_OBS_ANALYSIS_JSON_HH
#define SSLA_OBS_ANALYSIS_JSON_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ssla::obs::analysis
{

/** Parse failure, with 1-based line/column of the offending input. */
class JsonError : public std::runtime_error
{
  public:
    JsonError(std::string msg, size_t line, size_t column)
        : std::runtime_error("line " + std::to_string(line) +
                             ", column " + std::to_string(column) +
                             ": " + msg),
          line_(line), column_(column)
    {
    }

    size_t line() const { return line_; }
    size_t column() const { return column_; }

  private:
    size_t line_;
    size_t column_;
};

/** One immutable JSON value. Object member order is preserved. */
class Json
{
  public:
    enum class Type
    {
        Null,
        Bool,
        Int,  ///< integral literal, exact in i (and u when >= 0)
        Uint, ///< integral literal > INT64_MAX, exact in u
        Double,
        String,
        Array,
        Object,
    };

    using Member = std::pair<std::string, Json>;

    Type type = Type::Null;
    bool b = false;
    int64_t i = 0;
    uint64_t u = 0;
    double d = 0.0;
    std::string str;
    std::vector<Json> arr;
    std::vector<Member> obj;

    bool isNull() const { return type == Type::Null; }
    bool isBool() const { return type == Type::Bool; }
    bool isString() const { return type == Type::String; }
    bool isArray() const { return type == Type::Array; }
    bool isObject() const { return type == Type::Object; }

    bool
    isNumber() const
    {
        return type == Type::Int || type == Type::Uint ||
               type == Type::Double;
    }

    /** Numeric value as double (lossy above 2^53 — fine for deltas). */
    double
    number() const
    {
        switch (type) {
        case Type::Int: return static_cast<double>(i);
        case Type::Uint: return static_cast<double>(u);
        case Type::Double: return d;
        default: return 0.0;
        }
    }

    /** Numeric value as uint64; negative/fractional clamp to 0. */
    uint64_t
    asU64() const
    {
        switch (type) {
        case Type::Int: return i < 0 ? 0 : static_cast<uint64_t>(i);
        case Type::Uint: return u;
        case Type::Double: return d < 0 ? 0 : static_cast<uint64_t>(d);
        default: return 0;
        }
    }

    /** Member lookup; null when absent or not an object. */
    const Json *
    find(std::string_view key) const
    {
        if (type != Type::Object)
            return nullptr;
        for (const auto &[k, v] : obj)
            if (k == key)
                return &v;
        return nullptr;
    }

    /** find() that also requires the member to be a string. */
    const std::string *
    findString(std::string_view key) const
    {
        const Json *v = find(key);
        return v && v->isString() ? &v->str : nullptr;
    }

    /** Numeric member as uint64, or @p fallback when absent. */
    uint64_t
    findU64(std::string_view key, uint64_t fallback = 0) const
    {
        const Json *v = find(key);
        return v && v->isNumber() ? v->asU64() : fallback;
    }

    /** Numeric member as double, or @p fallback when absent. */
    double
    findNumber(std::string_view key, double fallback = 0.0) const
    {
        const Json *v = find(key);
        return v && v->isNumber() ? v->number() : fallback;
    }
};

/**
 * Parse exactly one JSON document from @p text (trailing whitespace
 * allowed, anything else is an error).
 *
 * @param lineBase added to reported line numbers, for callers parsing
 *        one line out of a larger JSONL stream
 * @throws JsonError on malformed input
 */
Json parseJson(std::string_view text, size_t lineBase = 0);

} // namespace ssla::obs::analysis

#endif // SSLA_OBS_ANALYSIS_JSON_HH

#include "ssl/kdf.hh"

#include <stdexcept>

#include "crypto/hmac.hh"
#include "crypto/md5.hh"
#include "crypto/sha1.hh"
#include "perf/probe.hh"
#include "util/bytes.hh"

namespace ssla::ssl
{

Bytes
ssl3Expand(const Bytes &secret, const Bytes &rand1, const Bytes &rand2,
           size_t out_len)
{
    Bytes out;
    out.reserve(out_len + crypto::Md5::outputSize);
    unsigned round = 0;
    while (out.size() < out_len) {
        ++round;
        if (round > 26)
            throw std::length_error("ssl3Expand: output too long");
        // Label: 'A', 'BB', 'CCC', ...
        Bytes label(round, static_cast<uint8_t>('A' + round - 1));

        crypto::Sha1 sha;
        sha.update(label);
        sha.update(secret);
        sha.update(rand1);
        sha.update(rand2);
        Bytes inner = sha.final();

        crypto::Md5 md;
        md.update(secret);
        md.update(inner);
        Bytes block = md.final();
        append(out, block);
    }
    out.resize(out_len);
    return out;
}

Bytes
ssl3MasterSecret(const Bytes &premaster, const Bytes &client_random,
                 const Bytes &server_random)
{
    perf::FuncProbe probe("gen_master_secret");
    return ssl3Expand(premaster, client_random, server_random, 48);
}

KeyBlock
ssl3KeyBlock(const Bytes &master, const Bytes &client_random,
             const Bytes &server_random, const CipherSuite &suite)
{
    perf::FuncProbe probe("gen_key_block");
    size_t need = 2 * suite.macLen() + 2 * suite.keyLen() +
                  2 * suite.ivLen();
    // Note the reversed random order relative to the master secret.
    Bytes block = ssl3Expand(master, server_random, client_random, need);

    KeyBlock kb;
    size_t off = 0;
    auto take = [&](size_t n) {
        Bytes part(block.begin() + off, block.begin() + off + n);
        off += n;
        return part;
    };
    kb.clientMacSecret = take(suite.macLen());
    kb.serverMacSecret = take(suite.macLen());
    kb.clientKey = take(suite.keyLen());
    kb.serverKey = take(suite.keyLen());
    kb.clientIv = take(suite.ivLen());
    kb.serverIv = take(suite.ivLen());
    return kb;
}

namespace
{

/** P_hash from RFC 2246 section 5. */
Bytes
pHash(crypto::DigestAlg alg, const Bytes &secret, const Bytes &seed,
      size_t out_len)
{
    Bytes out;
    out.reserve(out_len + 20);
    Bytes a = seed; // A(0)
    while (out.size() < out_len) {
        a = crypto::Hmac::compute(alg, secret, a); // A(i)
        Bytes block_input = a;
        append(block_input, seed);
        append(out, crypto::Hmac::compute(alg, secret, block_input));
    }
    out.resize(out_len);
    return out;
}

/** Split the key block buffer per suite geometry. */
KeyBlock
splitKeyBlock(const Bytes &block, const CipherSuite &suite)
{
    KeyBlock kb;
    size_t off = 0;
    auto take = [&](size_t n) {
        Bytes part(block.begin() + off, block.begin() + off + n);
        off += n;
        return part;
    };
    kb.clientMacSecret = take(suite.macLen());
    kb.serverMacSecret = take(suite.macLen());
    kb.clientKey = take(suite.keyLen());
    kb.serverKey = take(suite.keyLen());
    kb.clientIv = take(suite.ivLen());
    kb.serverIv = take(suite.ivLen());
    return kb;
}

} // anonymous namespace

Bytes
tls1Prf(const Bytes &secret, std::string_view label, const Bytes &seed,
        size_t out_len)
{
    Bytes label_seed = toBytes(label);
    append(label_seed, seed);

    // Secret halves overlap by one byte when the length is odd.
    size_t half = (secret.size() + 1) / 2;
    Bytes s1(secret.begin(), secret.begin() + half);
    Bytes s2(secret.end() - half, secret.end());

    Bytes md5_part =
        pHash(crypto::DigestAlg::MD5, s1, label_seed, out_len);
    Bytes sha_part =
        pHash(crypto::DigestAlg::SHA1, s2, label_seed, out_len);
    for (size_t i = 0; i < out_len; ++i)
        md5_part[i] ^= sha_part[i];
    return md5_part;
}

Bytes
tls1MasterSecret(const Bytes &premaster, const Bytes &client_random,
                 const Bytes &server_random)
{
    perf::FuncProbe probe("gen_master_secret");
    Bytes seed = client_random;
    append(seed, server_random);
    return tls1Prf(premaster, "master secret", seed, 48);
}

KeyBlock
tls1KeyBlock(const Bytes &master, const Bytes &client_random,
             const Bytes &server_random, const CipherSuite &suite)
{
    perf::FuncProbe probe("gen_key_block");
    size_t need =
        2 * suite.macLen() + 2 * suite.keyLen() + 2 * suite.ivLen();
    Bytes seed = server_random;
    append(seed, client_random);
    Bytes block = tls1Prf(master, "key expansion", seed, need);
    return splitKeyBlock(block, suite);
}

Bytes
deriveMasterSecret(uint16_t version, const Bytes &premaster,
                   const Bytes &client_random,
                   const Bytes &server_random)
{
    if (version >= tls1Version)
        return tls1MasterSecret(premaster, client_random,
                                server_random);
    return ssl3MasterSecret(premaster, client_random, server_random);
}

KeyBlock
deriveKeyBlock(uint16_t version, const Bytes &master,
               const Bytes &client_random, const Bytes &server_random,
               const CipherSuite &suite)
{
    if (version >= tls1Version)
        return tls1KeyBlock(master, client_random, server_random,
                            suite);
    return ssl3KeyBlock(master, client_random, server_random, suite);
}

} // namespace ssla::ssl

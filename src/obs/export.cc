#include "obs/export.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>

#include "util/cycles.hh"

namespace ssla::obs
{

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (unsigned char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

// ---------------------------------------------------------------------
// ChromeTraceCollector

void
ChromeTraceCollector::dump(const SessionTrace &trace)
{
    Captured cap;
    cap.serial = trace.serial();
    cap.track = trace.track();
    cap.outcome = trace.outcome();
    cap.dropped = trace.dropped();
    cap.events = trace.events();
    std::lock_guard<std::mutex> lock(m_);
    traces_.push_back(std::move(cap));
}

size_t
ChromeTraceCollector::traceCount() const
{
    std::lock_guard<std::mutex> lock(m_);
    return traces_.size();
}

namespace
{

/**
 * A rendered trace event awaiting emission: sorted by timestamp so
 * every (pid, tid) track is monotonically ordered in the file, which
 * the CI validator asserts.
 */
struct Emitted
{
    double ts;
    std::string json;
};

/** Sub-track id: each worker track fans out per recording side. */
uint64_t
exportTid(uint32_t track, uint8_t side)
{
    return static_cast<uint64_t>(track) * 8 + side;
}

/**
 * Event args. Every event carries the owning trace's serial so a
 * consumer (ssla_analyze's Chrome ingest) can regroup the flat event
 * stream back into sessions; @p extra appends pre-rendered members
 * (span outcome, scaled queue wait).
 */
std::string
eventArgs(const TraceEvent &e, uint64_t serial,
          const std::string &extra = {})
{
    std::string args = "{\"serial\":" + std::to_string(serial) +
                       ",\"tick\":" + std::to_string(e.tick);
    if (e.code)
        args += ",\"code\":" + std::to_string(e.code);
    if (e.arg)
        args += ",\"arg\":" + std::to_string(e.arg);
    if (!e.text.empty())
        args += ",\"text\":\"" + jsonEscape(e.text) + "\"";
    args += extra;
    args += "}";
    return args;
}

std::string
eventName(const TraceEvent &e)
{
    std::string name = traceEventKindName(e.kind);
    if (e.label) {
        name += ":";
        name += e.label;
    }
    return name;
}

std::string
fmtTs(double ts)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", ts);
    return buf;
}

} // anonymous namespace

void
ChromeTraceCollector::write(std::FILE *out) const
{
    std::vector<Captured> traces;
    {
        std::lock_guard<std::mutex> lock(m_);
        traces = traces_;
    }

    // Common time base: the earliest cycle stamp across all traces.
    uint64_t base = ~0ull;
    for (const auto &t : traces)
        for (const auto &e : t.events)
            base = std::min(base, e.cycles);
    if (base == ~0ull)
        base = 0;
    const double hz = cycleHz();
    auto toUs = [&](uint64_t cycles) {
        return static_cast<double>(cycles - base) / hz * 1e6;
    };

    std::vector<Emitted> events;
    std::vector<std::string> metadata;
    std::vector<uint64_t> namedTids;

    auto nameTid = [&](uint32_t track, uint8_t side) {
        uint64_t tid = exportTid(track, side);
        if (std::find(namedTids.begin(), namedTids.end(), tid) !=
            namedTids.end())
            return tid;
        namedTids.push_back(tid);
        std::string name;
        if (track >= cryptoTrackBase)
            name = "crypto-" + std::to_string(track - cryptoTrackBase);
        else
            name = "worker-" + std::to_string(track);
        name += ".";
        name += traceSideName(side);
        metadata.push_back(
            "{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(tid) +
            ",\"name\":\"thread_name\",\"args\":{\"name\":\"" +
            jsonEscape(name) + "\"}}");
        return tid;
    };

    for (const auto &t : traces) {
        if (t.events.empty())
            continue;
        const uint64_t lastCycles = t.events.back().cycles;

        // Session lifetime: async begin/end span keyed by serial.
        {
            uint64_t tid = nameTid(t.track, t.events.front().side);
            double b = toUs(t.events.front().cycles);
            double e = std::max(toUs(lastCycles), b);
            std::string id = "\"0x" + [&] {
                char buf[32];
                std::snprintf(buf, sizeof(buf), "%" PRIx64, t.serial);
                return std::string(buf);
            }() + "\"";
            std::string common =
                ",\"cat\":\"session\",\"name\":\"session\",\"pid\":1"
                ",\"tid\":" + std::to_string(tid) + ",\"id\":" + id;
            events.push_back(
                {b, "{\"ph\":\"b\",\"ts\":" + fmtTs(b) + common +
                        ",\"args\":{\"serial\":" +
                        std::to_string(t.serial) + ",\"outcome\":\"" +
                        jsonEscape(t.outcome) + "\",\"dropped\":" +
                        std::to_string(t.dropped) + "}}"});
            events.push_back(
                {e, "{\"ph\":\"e\",\"ts\":" + fmtTs(e) + common + "}"});
        }

        for (size_t i = 0; i < t.events.size(); ++i) {
            const TraceEvent &e = t.events[i];
            uint64_t tid = nameTid(t.track, e.side);
            double ts = toUs(e.cycles);

            bool isSpanStart = e.kind == TraceEventKind::StateEnter ||
                               e.kind == TraceEventKind::JobStart;
            if (isSpanStart) {
                // Span runs until the next span-start on the same
                // side (JobStart pairs with its JobEnd), or the end
                // of the trace.
                uint64_t endCycles = lastCycles;
                const TraceEvent *endEvent = nullptr;
                for (size_t j = i + 1; j < t.events.size(); ++j) {
                    const TraceEvent &n = t.events[j];
                    if (n.side != e.side)
                        continue;
                    if (e.kind == TraceEventKind::StateEnter &&
                        n.kind != TraceEventKind::StateEnter)
                        continue;
                    if (e.kind == TraceEventKind::JobStart &&
                        n.kind != TraceEventKind::JobEnd)
                        continue;
                    endCycles = n.cycles;
                    endEvent = &n;
                    break;
                }
                double dur = std::max(toUs(endCycles) - ts, 0.0);
                std::string extra;
                if (e.kind == TraceEventKind::JobStart) {
                    // Job-span verdict from the matched JobEnd, plus
                    // the queue wait rescaled to export time units so
                    // the analyzer needs no cycle-rate knowledge.
                    const char *outcome =
                        !endEvent ? "unfinished"
                        : endEvent->code ? "error"
                                         : "ok";
                    extra = std::string(",\"outcome\":\"") + outcome +
                            "\",\"wait_us\":" +
                            fmtTs(static_cast<double>(e.arg) / hz *
                                  1e6);
                }
                events.push_back(
                    {ts,
                     "{\"ph\":\"X\",\"ts\":" + fmtTs(ts) +
                         ",\"dur\":" + fmtTs(dur) +
                         ",\"cat\":\"" +
                         std::string(traceEventKindName(e.kind)) +
                         "\",\"name\":\"" + jsonEscape(eventName(e)) +
                         "\",\"pid\":1,\"tid\":" + std::to_string(tid) +
                         ",\"args\":" + eventArgs(e, t.serial, extra) +
                         "}"});
                continue;
            }
            if (e.kind == TraceEventKind::JobEnd)
                continue; // rendered as its JobStart's span end

            std::string extra;
            if (e.kind == TraceEventKind::DeadlineFired && e.arg)
                // A deadline fire's arg is the queue wait it wasted,
                // in cycles; rescale for cycle-rate-blind consumers.
                extra = ",\"wait_us\":" +
                        fmtTs(static_cast<double>(e.arg) / hz * 1e6);
            events.push_back(
                {ts, "{\"ph\":\"i\",\"ts\":" + fmtTs(ts) +
                         ",\"s\":\"t\",\"cat\":\"" +
                         std::string(traceEventKindName(e.kind)) +
                         "\",\"name\":\"" + jsonEscape(eventName(e)) +
                         "\",\"pid\":1,\"tid\":" + std::to_string(tid) +
                         ",\"args\":" + eventArgs(e, t.serial, extra) +
                         "}"});
        }
    }

    std::stable_sort(events.begin(), events.end(),
                     [](const Emitted &a, const Emitted &b) {
                         return a.ts < b.ts;
                     });

    std::fputs("{\"traceEvents\":[", out);
    bool first = true;
    metadata.insert(metadata.begin(),
                    "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\""
                    ",\"args\":{\"name\":\"ssla-serve\"}}");
    for (const auto &m : metadata) {
        std::fputs(first ? "\n" : ",\n", out);
        std::fputs(m.c_str(), out);
        first = false;
    }
    for (const auto &e : events) {
        std::fputs(first ? "\n" : ",\n", out);
        std::fputs(e.json.c_str(), out);
        first = false;
    }
    std::fputs("\n],\"displayTimeUnit\":\"ms\"}\n", out);
}

bool
ChromeTraceCollector::writeFile(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    write(f);
    bool ok = std::ferror(f) == 0;
    std::fclose(f);
    return ok;
}

// ---------------------------------------------------------------------
// JsonlTraceSink

void
JsonlTraceSink::dump(const SessionTrace &trace)
{
    std::lock_guard<std::mutex> lock(m_);
    for (const auto &e : trace.events()) {
        std::fprintf(out_,
                     "{\"serial\":%" PRIu64 ",\"track\":%u"
                     ",\"cycles\":%" PRIu64 ",\"tick\":%" PRIu64
                     ",\"kind\":\"%s\",\"side\":\"%s\"",
                     trace.serial(), trace.track(), e.cycles, e.tick,
                     traceEventKindName(e.kind), traceSideName(e.side));
        if (e.code)
            std::fprintf(out_, ",\"code\":%u", e.code);
        if (e.arg)
            std::fprintf(out_, ",\"arg\":%" PRIu64, e.arg);
        if (e.label)
            std::fprintf(out_, ",\"label\":\"%s\"",
                         jsonEscape(e.label).c_str());
        if (!e.text.empty())
            std::fprintf(out_, ",\"text\":\"%s\"",
                         jsonEscape(e.text).c_str());
        std::fputs("}\n", out_);
    }
    std::fprintf(out_,
                 "{\"serial\":%" PRIu64 ",\"summary\":true"
                 ",\"outcome\":\"%s\",\"events\":%" PRIu64
                 ",\"dropped\":%" PRIu64 "}\n",
                 trace.serial(), jsonEscape(trace.outcome()).c_str(),
                 trace.recorded(), trace.dropped());
    std::fflush(out_);
}

// ---------------------------------------------------------------------
// Text snapshot

void
writeMetricsText(std::FILE *out, const MetricsSnapshot &snap)
{
    if (!snap.counters.empty()) {
        std::fputs("counters:\n", out);
        for (const auto &[name, v] : snap.counters)
            std::fprintf(out, "  %-40s %" PRIu64 "\n", name.c_str(), v);
    }
    if (!snap.gauges.empty()) {
        std::fputs("gauges:\n", out);
        for (const auto &[name, v] : snap.gauges)
            std::fprintf(out, "  %-40s %" PRId64 "\n", name.c_str(), v);
    }
    if (!snap.histograms.empty()) {
        std::fputs("histograms:\n", out);
        for (const auto &[name, h] : snap.histograms) {
            std::fprintf(out,
                         "  %-40s count=%" PRIu64
                         " mean=%.1f p50=%.0f p90=%.0f p99=%.0f"
                         " max=%" PRIu64 "\n",
                         name.c_str(), h.count, h.mean(),
                         h.percentile(50), h.percentile(90),
                         h.percentile(99), h.max);
        }
    }
}

// ---------------------------------------------------------------------
// Prometheus text exposition

namespace
{

/** Clamp a metric name to the Prometheus charset [a-zA-Z0-9_:]. */
std::string
promName(const std::string &name)
{
    std::string out;
    out.reserve(name.size() + 1);
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == ':';
        out.push_back(ok ? c : '_');
    }
    if (!out.empty() && out.front() >= '0' && out.front() <= '9')
        out.insert(out.begin(), '_');
    return out;
}

void
appendf(std::string &out, const char *fmt, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, fmt);
    int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    if (n > 0)
        out.append(buf, std::min<size_t>(static_cast<size_t>(n),
                                         sizeof(buf) - 1));
}

} // anonymous namespace

std::string
prometheusText(const MetricsSnapshot &snap)
{
    std::string out;
    for (const auto &[name, v] : snap.counters) {
        const std::string n = promName(name) + "_total";
        appendf(out, "# TYPE %s counter\n", n.c_str());
        appendf(out, "%s %" PRIu64 "\n", n.c_str(), v);
    }
    for (const auto &[name, v] : snap.gauges) {
        const std::string n = promName(name);
        appendf(out, "# TYPE %s gauge\n", n.c_str());
        appendf(out, "%s %" PRId64 "\n", n.c_str(), v);
    }
    for (const auto &[name, h] : snap.histograms) {
        const std::string n = promName(name);
        appendf(out, "# TYPE %s summary\n", n.c_str());
        appendf(out, "%s{quantile=\"0.5\"} %.0f\n", n.c_str(),
                h.percentile(50));
        appendf(out, "%s{quantile=\"0.9\"} %.0f\n", n.c_str(),
                h.percentile(90));
        appendf(out, "%s{quantile=\"0.99\"} %.0f\n", n.c_str(),
                h.percentile(99));
        appendf(out, "%s_sum %" PRIu64 "\n", n.c_str(), h.sum);
        appendf(out, "%s_count %" PRIu64 "\n", n.c_str(), h.count);
    }
    return out;
}

void
writePrometheusText(std::FILE *out, const MetricsSnapshot &snap)
{
    const std::string text = prometheusText(snap);
    std::fwrite(text.data(), 1, text.size(), out);
}

} // namespace ssla::obs

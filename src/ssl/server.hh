/**
 * @file
 * The server-side SSLv3 handshake state machine, decomposed into the
 * ten steps of the paper's Table 2. Every state body runs under a
 * step-named cycle probe, and every crypto entry point it calls is
 * probed under the paper's function names, so the handshake-anatomy
 * bench reproduces the table directly from a real handshake.
 */

#ifndef SSLA_SSL_SERVER_HH
#define SSLA_SSL_SERVER_HH

#include <memory>

#include "crypto/provider.hh"
#include "pki/cert.hh"
#include "ssl/endpoint.hh"

namespace ssla::ssl
{

class ServerKx;

/** Server-side configuration. */
struct ServerConfig
{
    pki::Certificate certificate;
    /** Intermediate CA certificates sent after the leaf (in order). */
    std::vector<pki::Certificate> intermediates;
    std::shared_ptr<crypto::RsaPrivateKey> privateKey;
    /** Suite preference, most preferred first. */
    std::vector<CipherSuiteId> suites = {
        CipherSuiteId::RSA_3DES_EDE_CBC_SHA};
    /**
     * Optional session store enabling resumption (a SessionCache for
     * single-threaded servers, a ShardedSessionCache shared across
     * serving workers).
     */
    SessionStore *sessionCache = nullptr;
    /** Randomness source (defaults to the global pool). */
    crypto::RandomPool *randomPool = nullptr;
    /**
     * Crypto engine for all cipher/digest/MAC/RSA work on this
     * connection (see crypto/provider.hh); null selects
     * crypto::defaultProvider().
     */
    crypto::Provider *provider = nullptr;
    /**
     * Highest protocol version to accept (the server speaks both
     * SSLv3 and TLS 1.0 and follows the client down).
     */
    uint16_t maxVersion = tls1Version;
    /** Ask the client for a certificate (CertificateRequest). */
    bool requestClientCertificate = false;
    /** Refuse clients that answer with no certificate. */
    bool requireClientCertificate = false;
    /**
     * Issuer key to verify the client certificate against; null
     * accepts any self-signed client certificate.
     */
    const crypto::RsaPublicKey *clientTrustedIssuer = nullptr;
};

/** One server-side connection endpoint. */
class SslServer : public SslEndpoint
{
  public:
    /**
     * Construct over @p bio. This is the paper's step 0 (Init):
     * state/variable initialization including init_finished_mac.
     */
    SslServer(ServerConfig config, BioEndpoint bio);

    /** Cancels any in-flight crypto job so the pool skips it. */
    ~SslServer() override;

    /**
     * Parked on an offloaded private-key operation: PreMasterDecrypt
     * while at AwaitPreMaster (RSA key transport, paper Section 6.2
     * applied across sessions), ServerKxSign while at AwaitKxSign (the
     * DHE ServerKeyExchange signature). Always None with synchronous
     * providers, whose submit resolves before the parking state is
     * ever observed.
     */
    CryptoWait cryptoWait() const override;

  protected:
    bool step() override;
    void onChangeCipherSpec() override;

    /**
     * Fatal teardown: cancel the parked RSA job (a torn-down session's
     * decrypt must not run against freed state) and expel the session
     * from the cache — a fatal alert during or after resumption must
     * not leave a resumable entry behind (cache poisoning).
     */
    void onFatal() override;

  private:
    enum class State
    {
        GetClientHello,
        SendServerHello,
        SendServerCert,
        SendServerKeyExchange,
        AwaitKxSign, ///< parked on the async ServerKeyExchange sign
        SendCertificateRequest,
        SendServerDone,
        GetClientCertificate,
        GetClientKeyExchange,
        AwaitPreMaster, ///< parked on the async RSA decrypt
        GetCertificateVerify,
        GetFinished,
        SendCipherSpec,
        SendFinished,
        Flush,
        // Resumption path (abbreviated handshake).
        ResumeSendCcsFinished,
        ResumeGetFinished,
        Done,
    };

    /** The state switch; step() wraps it to trace state changes. */
    bool dispatch();

    bool stepGetClientHello();
    bool stepSendServerHello();
    bool stepSendServerCert();
    bool stepSendServerKeyExchange();
    bool stepAwaitKxSign();
    bool stepSendCertificateRequest();
    bool stepSendServerDone();
    bool stepGetClientCertificate();
    bool stepGetClientKeyExchange();
    bool stepAwaitPreMaster();
    bool stepGetCertificateVerify();

    /** Common tail of the key exchange: validate the pre-master (RSA
     *  path), derive the master secret and pick the next state. */
    bool finishKeyExchange(Bytes premaster);
    bool stepGetFinished();
    bool stepSendCipherSpec();
    bool stepSendFinished();
    bool stepFlush();
    bool stepResumeSendCcsFinished();
    bool stepResumeGetFinished();

    ServerConfig config_;
    State state_ = State::GetClientHello;
    bool resuming_ = false;
    uint16_t clientOfferedVersion_ = 0;
    /** The negotiated suite's key-exchange object (see ssl/kx.hh),
     *  created once the ClientHello fixes suite and resumption. */
    std::unique_ptr<ServerKx> kx_;
    pki::Certificate clientCert_; ///< received client certificate
    bool clientCertPresent_ = false;
};

} // namespace ssla::ssl

#endif // SSLA_SSL_SERVER_HH

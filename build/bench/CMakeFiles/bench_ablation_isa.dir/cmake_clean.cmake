file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_isa.dir/bench_ablation_isa.cc.o"
  "CMakeFiles/bench_ablation_isa.dir/bench_ablation_isa.cc.o.d"
  "bench_ablation_isa"
  "bench_ablation_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

/**
 * @file
 * Tests for the perf substrate: op histograms, the CPI model, probes
 * with inclusive/exclusive accounting, the ablation models and the
 * table printer.
 */

#include <gtest/gtest.h>

#include "perf/ablation.hh"
#include "perf/cpimodel.hh"
#include "perf/enginesim.hh"
#include "perf/opcount.hh"
#include "perf/probe.hh"
#include "perf/report.hh"

namespace
{

using namespace ssla;
using namespace ssla::perf;

TEST(OpHistogram, AddAndTotal)
{
    OpHistogram h;
    EXPECT_EQ(h.total(), 0u);
    h.add(OpClass::MovL, 10);
    h.add(OpClass::XorL, 5);
    h.add(OpClass::MovL);
    EXPECT_EQ(h.count(OpClass::MovL), 11u);
    EXPECT_EQ(h.total(), 16u);
}

TEST(OpHistogram, MergeAndScale)
{
    OpHistogram a, b;
    a.add(OpClass::AddL, 3);
    b.add(OpClass::AddL, 4);
    b.add(OpClass::MulL, 2);
    a.merge(b);
    EXPECT_EQ(a.count(OpClass::AddL), 7u);
    EXPECT_EQ(a.count(OpClass::MulL), 2u);
    a.scale(3);
    EXPECT_EQ(a.count(OpClass::AddL), 21u);
}

TEST(OpHistogram, TopOpsSortedWithShares)
{
    OpHistogram h;
    h.add(OpClass::MovL, 60);
    h.add(OpClass::XorL, 30);
    h.add(OpClass::RolL, 10);
    auto top = h.topOps(2);
    ASSERT_EQ(top.size(), 2u);
    EXPECT_EQ(top[0].first, "movl");
    EXPECT_DOUBLE_EQ(top[0].second, 60.0);
    EXPECT_EQ(top[1].first, "xorl");
}

TEST(OpHistogram, TopOpsSkipsZeroBuckets)
{
    OpHistogram h;
    h.add(OpClass::MovB, 1);
    EXPECT_EQ(h.topOps(10).size(), 1u);
    OpHistogram empty;
    EXPECT_TRUE(empty.topOps(10).empty());
}

TEST(OpClassNames, AllNamed)
{
    for (size_t i = 0; i < numOpClasses; ++i)
        EXPECT_STRNE(opClassName(static_cast<OpClass>(i)), "?");
}

TEST(Meters, NullMeterIsFree)
{
    NullMeter m;
    m.count(OpClass::MovL, 100);
    static_assert(!NullMeter::counting);
    CountingMeter c;
    c.count(OpClass::MovL, 100);
    static_assert(CountingMeter::counting);
    EXPECT_EQ(c.hist.count(OpClass::MovL), 100u);
}

TEST(CpiModel, EmptyHistogram)
{
    CpiEstimate est = estimateCpi(OpHistogram());
    EXPECT_EQ(est.cycles, 0.0);
    EXPECT_EQ(est.cpi, 0.0);
}

TEST(CpiModel, ComputeBoundCpiIsBelowOne)
{
    // A logical-op-dominated kernel should achieve superscalar CPI.
    OpHistogram h;
    h.add(OpClass::XorL, 500);
    h.add(OpClass::AddL, 300);
    h.add(OpClass::RolL, 200);
    CpiEstimate est = estimateCpi(h);
    EXPECT_GT(est.cpi, 0.2);
    EXPECT_LT(est.cpi, 1.0);
}

TEST(CpiModel, MultipliesRaiseCpi)
{
    OpHistogram light;
    light.add(OpClass::AddL, 1000);
    OpHistogram heavy = light;
    heavy.add(OpClass::MulL, 500);
    double light_cpi = estimateCpi(light).cpi;
    double heavy_cpi = estimateCpi(heavy).cpi;
    EXPECT_GT(heavy_cpi, light_cpi);
}

TEST(CpiModel, MemoryBoundKernel)
{
    OpHistogram h;
    h.add(OpClass::MovL, 1000);
    CpiEstimate est = estimateCpi(h);
    CoreParams p;
    EXPECT_NEAR(est.cycles, 1000.0 / p.loadStorePorts, 1.0);
}

TEST(CpiModel, BranchPenaltyAdds)
{
    OpHistogram base;
    base.add(OpClass::AddL, 1000);
    OpHistogram branchy = base;
    branchy.add(OpClass::Jcc, 200);
    EXPECT_GT(estimateCpi(branchy).cycles,
              estimateCpi(base).cycles + 100);
}

TEST(Probes, NoContextMeansNoCollection)
{
    {
        FuncProbe probe("orphan");
    }
    // Nothing to assert beyond "does not crash" — no context exists.
    SUCCEED();
}

TEST(Probes, CollectsCyclesAndCalls)
{
    PerfContext ctx;
    {
        ContextScope scope(&ctx);
        for (int i = 0; i < 5; ++i) {
            FuncProbe probe("region_a");
            volatile int sink = 0;
            for (int j = 0; j < 100; ++j)
                sink = sink + j;
        }
    }
    const auto &counters = ctx.counters();
    ASSERT_TRUE(counters.count("region_a"));
    EXPECT_EQ(counters.at("region_a").calls, 5u);
    EXPECT_GT(counters.at("region_a").inclusive, 0u);
}

TEST(Probes, InclusiveExclusiveNesting)
{
    PerfContext ctx;
    {
        ContextScope scope(&ctx);
        FuncProbe outer("outer");
        volatile unsigned sink = 0;
        for (unsigned j = 0; j < 1000; ++j)
            sink = sink + j;
        {
            FuncProbe inner("inner");
            for (unsigned j = 0; j < 100000; ++j)
                sink = sink + j;
        }
    }
    const auto &c = ctx.counters();
    ASSERT_TRUE(c.count("outer"));
    ASSERT_TRUE(c.count("inner"));
    // Outer inclusive covers inner; outer exclusive does not.
    EXPECT_GE(c.at("outer").inclusive, c.at("inner").inclusive);
    EXPECT_LT(c.at("outer").exclusive, c.at("outer").inclusive);
    // Exclusive times sum to roughly the outer inclusive total.
    uint64_t sum = c.at("outer").exclusive + c.at("inner").exclusive;
    EXPECT_LE(sum, c.at("outer").inclusive + 10000);
}

TEST(Probes, FineLevelRequiresOptIn)
{
    PerfContext coarse(false);
    {
        ContextScope scope(&coarse);
        FuncProbe probe("fine_region", ProbeLevel::Fine);
    }
    EXPECT_FALSE(coarse.counters().count("fine_region"));

    PerfContext fine(true);
    {
        ContextScope scope(&fine);
        FuncProbe probe("fine_region", ProbeLevel::Fine);
    }
    EXPECT_TRUE(fine.counters().count("fine_region"));
}

TEST(Probes, ContextScopeRestoresPrevious)
{
    PerfContext a, b;
    ContextScope sa(&a);
    EXPECT_EQ(currentContext(), &a);
    {
        ContextScope sb(&b);
        EXPECT_EQ(currentContext(), &b);
    }
    EXPECT_EQ(currentContext(), &a);
}

TEST(Probes, CyclesForHelpers)
{
    PerfContext ctx;
    ctx.add("x", 100, 60);
    ctx.add("y", 50, 50);
    EXPECT_EQ(ctx.cyclesFor("x"), 100u);
    EXPECT_EQ(ctx.cyclesFor("missing"), 0u);
    EXPECT_EQ(ctx.cyclesFor(std::vector<std::string>{"x", "y"}), 150u);
    EXPECT_EQ(ctx.totalExclusive(), 110u);
    ctx.clear();
    EXPECT_TRUE(ctx.counters().empty());
}

TEST(Ablation, ThreeOperandLogicalsSpeedUp)
{
    OpHistogram block;
    block.add(OpClass::XorL, 160);
    block.add(OpClass::AndL, 48);
    block.add(OpClass::MovL, 200);
    block.add(OpClass::AddL, 130);
    block.add(OpClass::RolL, 64);
    IsaAblation result = ablateThreeOperandLogicals(block, 48, 64);
    EXPECT_LT(result.withIsa.total(), result.baseline.total());
    EXPECT_GT(result.speedup, 1.0);
    EXPECT_LT(result.speedup, 2.0);
}

TEST(Ablation, AesRoundUnitLargeSpeedup)
{
    OpHistogram block;
    block.add(OpClass::MovL, 600);
    block.add(OpClass::XorL, 400);
    block.add(OpClass::MovB, 200);
    AesUnitAblation result = ablateAesRoundUnit(block, 9);
    EXPECT_GT(result.speedup, 2.0);
    EXPECT_EQ(result.hardwareCyclesPerBlock, 9 * 2.0 + 40.0);
}

TEST(Ablation, EngineOverlapBoundedByTwo)
{
    EngineAblation r = ablateCryptoEngine(1000.0, 1000.0, 0.0);
    EXPECT_NEAR(r.speedup, 2.0, 1e-9);
    r = ablateCryptoEngine(100.0, 1000.0, 0.05);
    EXPECT_GT(r.speedup, 1.0);
    EXPECT_LT(r.speedup, 1.2);
    // Trailer serialization keeps speedup under 2 in general.
    r = ablateCryptoEngine(1000.0, 1000.0, 0.1);
    EXPECT_LT(r.speedup, 2.0);
}

TEST(EngineSim, SingleRecordTiming)
{
    EngineConfig cfg;
    cfg.cipherCyclesPerByte = 2.0;
    cfg.hashCyclesPerByte = 1.0;
    cfg.descriptorOverhead = 10.0;
    cfg.trailerBytes = 20.0;
    CryptoEngineSim sim(cfg);
    EngineRecordTiming t = sim.submit(1000.0);
    EXPECT_DOUBLE_EQ(t.dispatch, 10.0);
    EXPECT_DOUBLE_EQ(t.hashDone, 10.0 + 1000.0);
    // Body finishes at 10+2000 > hashDone, so the trailer streams
    // immediately after the body.
    EXPECT_DOUBLE_EQ(t.cipherDone, 10.0 + 2000.0 + 40.0);
}

TEST(EngineSim, HashBoundTrailerWaits)
{
    // A slow hash unit stalls the trailer (Figure 6's serialization).
    EngineConfig cfg;
    cfg.cipherCyclesPerByte = 1.0;
    cfg.hashCyclesPerByte = 3.0;
    cfg.descriptorOverhead = 0.0;
    cfg.trailerBytes = 10.0;
    CryptoEngineSim sim(cfg);
    EngineRecordTiming t = sim.submit(100.0);
    EXPECT_DOUBLE_EQ(t.hashDone, 300.0);
    EXPECT_DOUBLE_EQ(t.cipherDone, 300.0 + 10.0);
}

TEST(EngineSim, MoreCipherUnitsShortenMakespan)
{
    EngineConfig one;
    one.cipherUnits = 1;
    EngineConfig four = one;
    four.cipherUnits = 4;
    CryptoEngineSim sim1(one), sim4(four);
    double m1 = sim1.run(16, 4096.0).makespan;
    double m4 = sim4.run(16, 4096.0).makespan;
    EXPECT_LT(m4, m1);
    EXPECT_GT(m1 / m4, 2.0); // near-linear until the hash saturates
}

TEST(EngineSim, UtilizationBounded)
{
    EngineConfig cfg;
    cfg.cipherUnits = 2;
    CryptoEngineSim sim(cfg);
    EngineRunStats stats = sim.run(32, 8192.0);
    EXPECT_GT(stats.hashUtilization(), 0.0);
    EXPECT_LE(stats.hashUtilization(), 1.0 + 1e-9);
    EXPECT_EQ(stats.records.size(), 32u);
    EXPECT_DOUBLE_EQ(stats.totalBytes, 32 * 8192.0);
    // Records complete in submission order per unit; makespan is the
    // last completion.
    EXPECT_DOUBLE_EQ(stats.makespan, stats.records.back().cipherDone);
}

TEST(EngineSim, ResetClearsState)
{
    CryptoEngineSim sim(EngineConfig{});
    sim.run(8, 1024.0);
    EngineRunStats fresh = sim.run(8, 1024.0);
    CryptoEngineSim sim2(EngineConfig{});
    EngineRunStats expect = sim2.run(8, 1024.0);
    EXPECT_DOUBLE_EQ(fresh.makespan, expect.makespan);
}

TEST(Report, TablePrinterProducesAlignedOutput)
{
    TablePrinter table("Test Table");
    table.setHeader({"Name", "Value"});
    table.addRow({"alpha", "1"});
    table.addRule();
    table.addRow({"beta-long-name", "22222"});

    char buf[4096] = {};
    std::FILE *mem = fmemopen(buf, sizeof(buf), "w");
    ASSERT_NE(mem, nullptr);
    table.print(mem);
    std::fclose(mem);
    std::string out(buf);
    EXPECT_NE(out.find("Test Table"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("beta-long-name"), std::string::npos);
    // Header separator rules exist.
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Report, Formatters)
{
    EXPECT_EQ(fmtF(3.14159, 2), "3.14");
    EXPECT_EQ(fmtPct(12.345, 1), "12.3%");
    EXPECT_EQ(fmtCount(1234567), "1,234,567");
    EXPECT_EQ(fmtCount(12), "12");
    EXPECT_EQ(fmt("%d-%s", 5, "x"), "5-x");
}

} // anonymous namespace

/**
 * @file
 * DES and 3DES tests: classic known-answer vectors, NIST KAT entries,
 * EDE structure checks and roundtrip sweeps.
 */

#include <gtest/gtest.h>

#include "crypto/des.hh"
#include "util/bytes.hh"
#include "util/endian.hh"
#include "util/hex.hh"
#include "util/rng.hh"

namespace
{

using namespace ssla;
using crypto::Des;
using crypto::TripleDes;

TEST(Des, ClassicVector)
{
    // The canonical worked example from the original DES literature.
    Des des(hexDecode("133457799BBCDFF1"));
    Bytes pt = hexDecode("0123456789ABCDEF");
    uint8_t ct[8];
    des.encryptBlock(pt.data(), ct);
    EXPECT_EQ(hexEncode(ct, 8), "85e813540f0ab405");
    uint8_t back[8];
    des.decryptBlock(ct, back);
    EXPECT_EQ(Bytes(back, back + 8), pt);
}

TEST(Des, NistVariablePlaintextKat)
{
    // First entries of the NIST variable-plaintext known-answer test
    // (key 01...01, plaintext = single set bit).
    Des des(hexDecode("0101010101010101"));
    struct Case { const char *pt, *ct; };
    const Case cases[] = {
        {"8000000000000000", "95f8a5e5dd31d900"},
        {"4000000000000000", "dd7f121ca5015619"},
        {"2000000000000000", "2e8653104f3834ea"},
        {"1000000000000000", "4bd388ff6cd81d4f"},
    };
    for (const auto &c : cases) {
        Bytes pt = hexDecode(c.pt);
        uint8_t ct[8];
        des.encryptBlock(pt.data(), ct);
        EXPECT_EQ(hexEncode(ct, 8), c.ct);
    }
}

TEST(Des, ParityBitsIgnored)
{
    // Keys differing only in parity bits must encrypt identically.
    Des a(hexDecode("133457799BBCDFF1"));
    Des b(hexDecode("123456789ABCDEF0"));
    Bytes pt = hexDecode("0011223344556677");
    uint8_t ca[8], cb[8];
    a.encryptBlock(pt.data(), ca);
    b.encryptBlock(pt.data(), cb);
    EXPECT_EQ(hexEncode(ca, 8), hexEncode(cb, 8));
}

TEST(Des, BadKeySizeThrows)
{
    EXPECT_THROW(Des(Bytes(7)), std::invalid_argument);
    EXPECT_THROW(Des(Bytes(9)), std::invalid_argument);
    EXPECT_THROW(TripleDes(Bytes(23)), std::invalid_argument);
    EXPECT_THROW(TripleDes(Bytes(8)), std::invalid_argument);
}

TEST(Des, RoundTripRandom)
{
    Xoshiro256 rng(6);
    for (int i = 0; i < 200; ++i) {
        Des des(rng.bytes(8));
        Bytes pt = rng.bytes(8);
        uint8_t ct[8], back[8];
        des.encryptBlock(pt.data(), ct);
        des.decryptBlock(ct, back);
        EXPECT_EQ(Bytes(back, back + 8), pt);
    }
}

TEST(Des, ComplementationProperty)
{
    // DES's famous complementation property:
    // E_k(p) = c  implies  E_~k(~p) = ~c.
    Xoshiro256 rng(7);
    Bytes key = rng.bytes(8);
    Bytes pt = rng.bytes(8);
    Bytes nkey(8), npt(8);
    for (int i = 0; i < 8; ++i) {
        nkey[i] = static_cast<uint8_t>(~key[i]);
        npt[i] = static_cast<uint8_t>(~pt[i]);
    }
    uint8_t ct[8], nct[8];
    Des(key).encryptBlock(pt.data(), ct);
    Des(nkey).encryptBlock(npt.data(), nct);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(static_cast<uint8_t>(~ct[i]), nct[i]);
}

TEST(TripleDes, DegeneratesToSingleDesWithEqualKeys)
{
    // EDE with k1 == k2 == k3 is plain DES.
    Bytes k = hexDecode("133457799BBCDFF1");
    Bytes k3;
    for (int i = 0; i < 3; ++i)
        append(k3, k);
    TripleDes tdes(k3);
    Des des(k);
    Bytes pt = hexDecode("0123456789ABCDEF");
    uint8_t c1[8], c3[8];
    des.encryptBlock(pt.data(), c1);
    tdes.encryptBlock(pt.data(), c3);
    EXPECT_EQ(hexEncode(c1, 8), hexEncode(c3, 8));
}

TEST(TripleDes, RoundTripRandom)
{
    Xoshiro256 rng(8);
    for (int i = 0; i < 100; ++i) {
        TripleDes tdes(rng.bytes(24));
        Bytes pt = rng.bytes(8);
        uint8_t ct[8], back[8];
        tdes.encryptBlock(pt.data(), ct);
        tdes.decryptBlock(ct, back);
        EXPECT_EQ(Bytes(back, back + 8), pt);
    }
}

TEST(TripleDes, EdeStructure)
{
    // E(k3, D(k2, E(k1, p))): verify by composing single-DES stages.
    Xoshiro256 rng(9);
    Bytes key = rng.bytes(24);
    Bytes k1(key.begin(), key.begin() + 8);
    Bytes k2(key.begin() + 8, key.begin() + 16);
    Bytes k3(key.begin() + 16, key.end());

    Bytes pt = rng.bytes(8);
    uint8_t stage[8];
    Des(k1).encryptBlock(pt.data(), stage);
    uint8_t stage2[8];
    Des(k2).decryptBlock(stage, stage2);
    uint8_t expect[8];
    Des(k3).encryptBlock(stage2, expect);

    uint8_t got[8];
    TripleDes(key).encryptBlock(pt.data(), got);
    EXPECT_EQ(hexEncode(got, 8), hexEncode(expect, 8));
}

TEST(Des, SpTablesContain32BitPPermutedValues)
{
    const auto &t = crypto::desTables();
    // Every SP entry's bits must be confined to the 4 P-permuted
    // positions of its box; cheap sanity: entries for v=0 vary and
    // no table is all-zero.
    for (int box = 0; box < 8; ++box) {
        uint32_t acc = 0;
        for (int v = 0; v < 64; ++v)
            acc |= t.sp[box][v];
        EXPECT_NE(acc, 0u);
        // Exactly 4 output bit positions per box.
        EXPECT_EQ(__builtin_popcount(acc), 4) << "box " << box;
    }
}

TEST(Des, IpFpAreInverses)
{
    Xoshiro256 rng(10);
    perf::NullMeter m;
    for (int i = 0; i < 100; ++i) {
        uint64_t block = rng.next();
        uint64_t ip = crypto::desInitialPerm(block, m);
        EXPECT_EQ(crypto::desFinalPerm(ip, m), block);
    }
}

TEST(Des, MeteredKernelMatchesPlain)
{
    Xoshiro256 rng(11);
    Bytes key = rng.bytes(8);
    Des des(key);
    Bytes pt = rng.bytes(8);
    uint8_t plain_out[8];
    des.encryptBlock(pt.data(), plain_out);

    perf::CountingMeter meter;
    uint64_t block = load64be(pt.data());
    uint64_t enc = crypto::desProcessBlockT(block, des.encKey(), meter);
    uint8_t metered_out[8];
    store64be(metered_out, enc);
    EXPECT_EQ(Bytes(metered_out, metered_out + 8),
              Bytes(plain_out, plain_out + 8));
    EXPECT_GT(meter.hist.count(perf::OpClass::XorL), 0u);
}

} // anonymous namespace

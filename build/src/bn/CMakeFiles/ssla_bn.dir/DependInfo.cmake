
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bn/bignum.cc" "src/bn/CMakeFiles/ssla_bn.dir/bignum.cc.o" "gcc" "src/bn/CMakeFiles/ssla_bn.dir/bignum.cc.o.d"
  "/root/repo/src/bn/kernels.cc" "src/bn/CMakeFiles/ssla_bn.dir/kernels.cc.o" "gcc" "src/bn/CMakeFiles/ssla_bn.dir/kernels.cc.o.d"
  "/root/repo/src/bn/modexp.cc" "src/bn/CMakeFiles/ssla_bn.dir/modexp.cc.o" "gcc" "src/bn/CMakeFiles/ssla_bn.dir/modexp.cc.o.d"
  "/root/repo/src/bn/montgomery.cc" "src/bn/CMakeFiles/ssla_bn.dir/montgomery.cc.o" "gcc" "src/bn/CMakeFiles/ssla_bn.dir/montgomery.cc.o.d"
  "/root/repo/src/bn/prime.cc" "src/bn/CMakeFiles/ssla_bn.dir/prime.cc.o" "gcc" "src/bn/CMakeFiles/ssla_bn.dir/prime.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ssla_util.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/ssla_perf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

/**
 * @file
 * Overload-control sweep: offered load past crypto capacity, Reject vs
 * Shed vs Adaptive admission, plus chaos cells that kill crypto threads
 * under a Supervisor.
 *
 * The serving layer's capacity is the RSA engine (Table 2: ~90% of a
 * full handshake), so overload is modeled directly: one pool thread
 * against many engine workers, each multiplexing more concurrent
 * sessions than the pool can serve, and a wall-clock abandonment
 * deadline (ServeConfig::handshakeAbandonCycles) a few RSA-ops wide —
 * the client that gives up and leaves. Under that deadline queue delay
 * costs goodput: a session parked behind a deep queue is doomed, and a
 * policy that lets the queue grow wastes capacity on it. Reject admits
 * by queue depth, not viability, so under pressure most of what it
 * admits is already dead on arrival; Shed head-of-line blocks the
 * engine itself for an RSA op per fallback, starving every other
 * in-flight session past its deadline. Adaptive's control loop holds
 * the queue-wait p99 at a target the abandonment deadline can absorb
 * and deadline-sheds the rest before their RSA cycles are spent, so
 * deadline-respecting completions per second — goodput, as the
 * clients see it — stay highest as load climbs.
 *
 * Chaos cells run the same engine with a CryptoFaultPlan that kills
 * pool threads mid-job (deterministic death budget) and a Supervisor
 * healing the pool; the self-healing claim is that every session still
 * reaches a terminal outcome and the pool ends fully restaffed.
 *
 * Emits the BENCH_overload.json schema (see EXPERIMENTS.md). The exit
 * code gates the ISSUE's claims — Adaptive goodput >= both static
 * policies at the highest overload cell, zero hung sessions in every
 * chaos cell, and full termination accounting everywhere — never
 * absolute rates, so CI is meaningful on any machine shape.
 *
 *   ./bench_serve_overload [--smoke] [--trace FILE]
 *
 * --trace FILE additionally runs a small fully-sampled overloaded
 * workload (Adaptive admission, saturated pool, abandonment deadline)
 * with per-session tracing on and writes the Chrome trace_event JSON —
 * the analyzer's overload corpus (ssla_analyze's queue_delay pass, or
 * tools/validate_trace.py in CI).
 */

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common.hh"
#include "crypto/rand.hh"
#include "crypto/rsa.hh"
#include "obs/export.hh"
#include "obs/metrics.hh"
#include "serve/breaker.hh"
#include "serve/engine.hh"
#include "serve/supervisor.hh"
#include "util/cycles.hh"

using namespace ssla;
using namespace ssla::bench;

namespace
{

double
cyclesToUs(double cycles)
{
    return cycles / cycleHz() * 1e6;
}

double
cyclesToMs(double cycles)
{
    return cycles / cycleHz() * 1e3;
}

const char *
policyName(serve::OverloadPolicy p)
{
    switch (p) {
      case serve::OverloadPolicy::Reject: return "reject";
      case serve::OverloadPolicy::Shed: return "shed";
      case serve::OverloadPolicy::Adaptive: return "adaptive";
    }
    return "?";
}

/**
 * Median cycles of one RSA private-key decrypt on this machine — the
 * capacity unit every deadline in the sweep is expressed in, so the
 * cells mean the same thing on any hardware.
 */
uint64_t
calibrateRsaOpCycles(const crypto::RsaKeyPair &key)
{
    Bytes plain = benchPayload(48, 0x0b5e55);
    crypto::RandomPool rng(benchPayload(32, 0x5eed));
    Bytes cipher = crypto::rsaPublicEncrypt(key.pub, plain, rng);
    uint64_t best = UINT64_MAX;
    for (int i = 0; i < 3; ++i) {
        uint64_t t0 = rdcycles();
        Bytes out = crypto::rsaPrivateDecrypt(*key.priv, cipher);
        uint64_t dt = rdcycles() - t0;
        if (out == plain && dt < best)
            best = dt;
    }
    return best;
}

struct SweepCell
{
    serve::OverloadPolicy policy{};
    size_t concurrent = 0;
    uint64_t expected = 0;
    serve::ServeStats stats;
    uint64_t poolExecuted = 0;
    uint64_t poolRejected = 0;
    uint64_t poolSyncFallbacks = 0;
    uint64_t poolDeadlineShed = 0;
    uint64_t shedNewFull = 0;
    uint64_t shedContinuation = 0;
    uint64_t shedResumption = 0;
    uint64_t peakQueue = 0;

    uint64_t
    completed() const
    {
        return stats.fullHandshakes() + stats.resumedHandshakes();
    }

    /**
     * Goodput numerator: completions the client was still around to
     * see. A handshake finished past the abandonment deadline (the
     * sync fallback always finishes, however stale) served nobody.
     */
    uint64_t
    inTime() const
    {
        uint64_t late = stats.lateHandshakes();
        uint64_t c = completed();
        return c > late ? c - late : 0;
    }

    double
    goodputPerSec() const
    {
        return stats.goodputPerSec();
    }

    /**
     * RSA work actually spent (pool executions + synchronous
     * fallbacks) that did not end in an in-time full handshake —
     * cycles burned for a session that died, or that completed after
     * its client had walked away.
     */
    double
    wastedWorkFraction() const
    {
        uint64_t spent = poolExecuted + poolSyncFallbacks;
        if (spent == 0)
            return 0.0;
        uint64_t full = stats.fullHandshakes();
        uint64_t late = stats.lateHandshakes();
        uint64_t useful = full > late ? full - late : 0;
        uint64_t wasted = spent > useful ? spent - useful : 0;
        return static_cast<double>(wasted) /
               static_cast<double>(spent);
    }

    bool
    accountedOk() const
    {
        return stats.terminatedSessions() == expected;
    }
};

/**
 * One unloaded run whose only job is to mint resumable sessions: every
 * overload cell starts from the same warmed-server state, so the
 * resumption share of its arrival mix is a property of the workload,
 * not of how fast the previous connections died.
 */
std::vector<ssl::Session>
warmSessions(size_t workers, const pki::Certificate &cert,
             const std::shared_ptr<crypto::RsaPrivateKey> &key)
{
    serve::ServeConfig cfg;
    cfg.workers = workers;
    cfg.connectionsPerWorker = 16;
    cfg.concurrentPerWorker = 2;
    cfg.certificate = &cert;
    cfg.privateKey = key;
    cfg.seed = 0x3a7ed;
    serve::ServeEngine engine(std::move(cfg));
    engine.run();
    return engine.completedSessions();
}

SweepCell
runSweepCell(serve::OverloadPolicy policy, size_t concurrent,
             size_t workers, size_t conns_per_worker,
             const std::vector<ssl::Session> &warm,
             const pki::Certificate &cert,
             const std::shared_ptr<crypto::RsaPrivateKey> &key,
             uint64_t op_cycles, uint64_t seed)
{
    obs::MetricsRegistry registry;

    // One pool thread, queue deeper than the abandonment horizon:
    // deliberately saturated, so the admission policy — not the queue
    // bound — is what the cell measures. Adaptive's control loop is
    // tuned in capacity units against the four-op abandonment below: a
    // queue-wait p99 at the two-op target still completes in time
    // (wait + execute + a resume sweep < abandon), and the three-op
    // deadline budget sheds at dequeue exactly the jobs whose sessions
    // are already doomed.
    serve::AdmissionControl adm;
    if (policy == serve::OverloadPolicy::Adaptive) {
        adm.targetDelayCycles = 2 * op_cycles;
        adm.intervalCycles = op_cycles;
        adm.deadlineBudgetCycles = 3 * op_cycles;
    }
    serve::CryptoPool pool(1, /*max_queue=*/4, policy, adm);
    pool.bindMetrics(&registry);

    serve::ServeConfig cfg;
    cfg.metrics = &registry;
    cfg.workers = workers;
    cfg.connectionsPerWorker = conns_per_worker;
    cfg.concurrentPerWorker = concurrent;
    cfg.resumeFraction = 0.5;
    cfg.resumptionSeed = warm;
    cfg.bulkBytes = 0;
    cfg.certificate = &cert;
    cfg.privateKey = key;
    cfg.cryptoPool = &pool;
    cfg.seed = seed;
    cfg.tolerateFailures = true;
    // The impatient client: a session still handshaking four RSA-ops
    // after creation walks away. This is the knob that makes queue
    // delay cost goodput — without it a doomed session would park on
    // the saturated queue forever and still "complete".
    cfg.handshakeAbandonCycles = 4 * op_cycles;

    SweepCell r;
    r.policy = policy;
    r.concurrent = concurrent;
    r.expected = workers * conns_per_worker;

    serve::ServeEngine engine(std::move(cfg));
    r.stats = engine.run();

    r.poolExecuted = pool.completedJobs();
    r.poolRejected = pool.rejectedJobs();
    r.poolSyncFallbacks = pool.shedJobs();
    r.poolDeadlineShed = pool.deadlineShedJobs();
    r.shedNewFull =
        pool.shedByClass(serve::JobClass::NewFullHandshake);
    r.shedContinuation =
        pool.shedByClass(serve::JobClass::Continuation);
    r.shedResumption = pool.shedByClass(serve::JobClass::Resumption);
    r.peakQueue = pool.peakQueueDepth();
    return r;
}

struct ChaosCell
{
    uint64_t seed = 0;
    uint64_t expected = 0;
    uint64_t deathBudget = 0;
    serve::ServeStats stats;
    uint64_t threadRestarts = 0;
    uint64_t supervisedFailures = 0;
    uint64_t supervisorRestarts = 0;

    uint64_t
    hungSessions() const
    {
        uint64_t t = stats.terminatedSessions();
        return t >= expected ? 0 : expected - t;
    }

    /**
     * Every thread death was reaped and the slot restaffed. A
     * descheduled-but-alive thread can be reaped spuriously under CPU
     * contention (first-wins makes that harmless), so extra restarts
     * past the death budget are tolerated; missing ones are not.
     */
    bool
    healed() const
    {
        return threadRestarts >= deathBudget &&
               supervisedFailures >= deathBudget;
    }
};

ChaosCell
runChaosCell(uint64_t seed, size_t workers, size_t conns_per_worker,
             const pki::Certificate &cert,
             const std::shared_ptr<crypto::RsaPrivateKey> &key,
             uint64_t op_cycles)
{
    obs::MetricsRegistry registry;

    ChaosCell r;
    r.seed = seed;
    r.expected = workers * conns_per_worker;
    r.deathBudget = 2;

    // Every job draw kills its thread until the budget is spent: both
    // pool threads die on their first pickups, mid-job. Only the
    // Supervisor gets their sessions unstuck.
    serve::CryptoFaultPlan faults;
    faults.threadDeathRate = 1.0;
    faults.maxThreadDeaths = r.deathBudget;
    faults.seed = seed;

    serve::CryptoPool pool(2, /*max_queue=*/0,
                           serve::OverloadPolicy::Reject, {}, faults);
    pool.bindMetrics(&registry);

    serve::SupervisorConfig supcfg;
    supcfg.pollIntervalUs = 200;
    // Well past the worst legitimate job, with a wall-clock floor so a
    // briefly descheduled (alive) thread is not mistaken for a corpse
    // on a loaded CI machine.
    const uint64_t stall =
        std::max<uint64_t>(8 * op_cycles,
                           static_cast<uint64_t>(cycleHz() / 20));
    supcfg.stallThresholdCycles = stall;
    serve::Supervisor sup(pool, supcfg);
    sup.bindMetrics(&registry);

    serve::ServeConfig cfg;
    cfg.metrics = &registry;
    cfg.workers = workers;
    cfg.connectionsPerWorker = conns_per_worker;
    cfg.concurrentPerWorker = 4;
    cfg.resumeFraction = 0.3;
    cfg.certificate = &cert;
    cfg.privateKey = key;
    cfg.cryptoPool = &pool;
    cfg.supervisor = &sup;
    cfg.seed = seed;
    cfg.tolerateFailures = true;
    // Generous backstop — past the supervisor's detection window — so
    // a supervision bug shows up as timed-out accounting (a failed
    // gate), never as a hung benchmark.
    cfg.handshakeAbandonCycles = 4 * stall;

    serve::ServeEngine engine(std::move(cfg));
    r.stats = engine.run();

    // reapThread resolves the victim job (unblocking its session)
    // before the supervisor's own restart counter ticks; give the
    // counter a moment to catch up.
    uint64_t deadline = rdcycles() + cycleHz(); // 1 s
    while (sup.restarts() < r.deathBudget && rdcycles() < deadline)
        std::this_thread::yield();

    r.threadRestarts = pool.threadRestarts();
    r.supervisedFailures = pool.supervisedJobFailures();
    r.supervisorRestarts = sup.restarts();
    return r;
}

/**
 * Small fully-sampled traced run of the overload shape itself: one
 * worker multiplexing more sessions than the single Adaptive pool
 * thread can serve, under the abandonment deadline — so the trace
 * carries deep queue waits, deadline sheds and park/resume edges for
 * the analyzer's queue_delay pass. Returns the captured trace count.
 */
size_t
runTraced(const pki::Certificate &cert,
          const std::shared_ptr<crypto::RsaPrivateKey> &key,
          uint64_t op_cycles, const std::string &path)
{
    obs::ChromeTraceCollector collector;
    obs::MetricsRegistry registry;
    {
        serve::AdmissionControl adm;
        adm.targetDelayCycles = 2 * op_cycles;
        adm.intervalCycles = op_cycles;
        adm.deadlineBudgetCycles = 3 * op_cycles;
        serve::CryptoPool pool(1, /*max_queue=*/4,
                               serve::OverloadPolicy::Adaptive, adm);
        serve::ServeConfig cfg;
        cfg.workers = 1;
        cfg.connectionsPerWorker = 24;
        cfg.concurrentPerWorker = 12;
        cfg.resumeFraction = 0.5;
        cfg.bulkBytes = 0;
        cfg.certificate = &cert;
        cfg.privateKey = key;
        cfg.seed = 0x0afe11;
        cfg.tolerateFailures = true;
        cfg.handshakeAbandonCycles = 4 * op_cycles;
        cfg.cryptoPool = &pool;
        cfg.metrics = &registry;
        cfg.traceSampleEvery = 1;
        cfg.traceSink = &collector;
        cfg.traceDumpAll = true;
        serve::ServeEngine engine(std::move(cfg));
        engine.run();
        // Pool destruction (scope exit) dumps the crypto thread's job
        // track into the collector before we serialize.
    }
    if (!collector.writeFile(path))
        return 0;
    return collector.traceCount();
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string trace_path;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--smoke"))
            smoke = true;
        else if (!std::strcmp(argv[i], "--trace") && i + 1 < argc)
            trace_path = argv[++i];
    }

    warmUpCpu();

    // Offered load: concurrent sessions multiplexed by ONE engine
    // worker against ONE pool thread. A single worker is deliberate:
    // Shed's synchronous fallback then stalls the entire engine for an
    // RSA op at a time (its true cost — on a terminating server every
    // worker it borrows is accept-path capacity), and there is no
    // cross-worker scheduling noise. Half the mix resumes (no RSA), so
    // the top cell offers ~16x the pool's crypto capacity.
    const size_t workers = 1;
    const size_t conns_per_worker = smoke ? 96 : 192;
    const std::vector<size_t> loads =
        smoke ? std::vector<size_t>{2, 32}
              : std::vector<size_t>{2, 8, 32};
    const size_t peak_load = loads.back();

    const auto &key = benchKey(1024);
    pki::CertificateInfo info;
    info.serial = 9;
    info.issuer = "Bench CA";
    info.subject = "bench.overload";
    info.notBefore = 0;
    info.notAfter = ~uint64_t(0);
    info.publicKey = key.pub;
    pki::Certificate cert = pki::Certificate::issue(info, *key.priv);

    const uint64_t op_cycles = calibrateRsaOpCycles(key);
    const std::vector<ssl::Session> warm =
        warmSessions(workers, cert, key.priv);

    const serve::OverloadPolicy policies[] = {
        serve::OverloadPolicy::Reject,
        serve::OverloadPolicy::Shed,
        serve::OverloadPolicy::Adaptive,
    };

    bool all_accounted = true;
    // Goodput: deadline-respecting completions per second. Both halves
    // matter. Counting raw completions per second would reward
    // refusing everything (shrink the denominator); counting the
    // completed fraction would reward the Shed fallback's serve-
    // everyone-eventually (its synchronous ops finish their own
    // handshake no matter how stale, while the engine stalls). In-time
    // completions per second rewards exactly what overload control is
    // for: spending the capacity that exists on sessions that can
    // still be served before their client walks.
    double peak_goodput[3] = {0.0, 0.0, 0.0};

    JsonWriter j;
    j.beginObject();
    j.field("bench", "serve_overload");
    j.field("smoke", smoke);
    j.field("workers", static_cast<uint64_t>(workers));
    j.field("connections_per_worker",
            static_cast<uint64_t>(conns_per_worker));
    j.field("rsa_op_ms",
            cyclesToMs(static_cast<double>(op_cycles)), 3);
    j.field("abandon_ms",
            cyclesToMs(static_cast<double>(4 * op_cycles)), 3);
    j.beginArray("concurrent_per_worker");
    for (size_t l : loads)
        j.element(static_cast<uint64_t>(l));
    j.endArray();

    j.beginArray("results");
    for (size_t pi = 0; pi < 3; ++pi) {
        serve::OverloadPolicy policy = policies[pi];
        for (size_t load : loads) {
            // The seed depends on the load only: every policy faces
            // the identical connection/resumption draw sequence, so
            // the peak-cell comparison is policy vs policy, not seed
            // vs seed.
            const uint64_t seed =
                0x0f10ad ^ (static_cast<uint64_t>(load) << 8);
            SweepCell cell = runSweepCell(
                policy, load, workers, conns_per_worker, warm, cert,
                key.priv, op_cycles, seed);
            auto inTimeRate = [](const SweepCell &c) {
                return c.stats.elapsedSeconds > 0
                           ? static_cast<double>(c.inTime()) /
                                 c.stats.elapsedSeconds
                           : 0.0;
            };
            if (load == peak_load) {
                // The gate hangs off this cell, and on a shared host a
                // descheduled run only ever *under*-reports a policy.
                // Run the decisive cell twice (same seed — identical
                // draws) and keep the better run for every policy
                // alike: max-of-2 strips interference, not signal.
                SweepCell again = runSweepCell(
                    policy, load, workers, conns_per_worker, warm,
                    cert, key.priv, op_cycles, seed);
                all_accounted = all_accounted && again.accountedOk();
                if (inTimeRate(again) > inTimeRate(cell))
                    cell = std::move(again);
            }
            all_accounted = all_accounted && cell.accountedOk();
            double fraction = static_cast<double>(cell.inTime()) /
                              static_cast<double>(cell.expected);
            double goodput = inTimeRate(cell);
            if (load == peak_load)
                peak_goodput[pi] = goodput;

            const obs::HistogramSnapshot hs =
                cell.stats.metrics.histogram("serve.handshake_cycles");
            j.beginObject();
            j.field("policy", policyName(policy));
            j.field("concurrent_per_worker",
                    static_cast<uint64_t>(load));
            j.field("offered", cell.expected);
            j.field("completed", cell.completed());
            j.field("late", cell.stats.lateHandshakes());
            j.field("in_time", cell.inTime());
            j.field("full", cell.stats.fullHandshakes());
            j.field("resumed", cell.stats.resumedHandshakes());
            j.field("alerted", cell.stats.failedHandshakes());
            j.field("abandoned", cell.stats.timedOutSessions());
            j.field("goodput_fraction", fraction, 3);
            j.field("goodput_per_sec", goodput, 1);
            j.field("completed_per_sec", cell.goodputPerSec(), 1);
            j.field("hs_p50_us", cyclesToUs(hs.percentile(50)), 1);
            j.field("hs_p99_us", cyclesToUs(hs.percentile(99)), 1);
            j.field("wasted_work_fraction", cell.wastedWorkFraction(),
                    3);
            j.field("pool_executed", cell.poolExecuted);
            j.field("pool_rejected", cell.poolRejected);
            j.field("pool_sync_fallbacks", cell.poolSyncFallbacks);
            j.field("pool_deadline_shed", cell.poolDeadlineShed);
            j.field("shed_new_full", cell.shedNewFull);
            j.field("shed_continuation", cell.shedContinuation);
            j.field("shed_resumption", cell.shedResumption);
            j.field("peak_queue_depth", cell.peakQueue);
            j.field("elapsed_sec", cell.stats.elapsedSeconds);
            j.field("accounted_ok", cell.accountedOk());
            j.endObject();
        }
    }
    j.endArray();

    // The tentpole claim, measured at the deepest overload: class-
    // aware shedding must not lose to either static policy on
    // deadline-respecting completions per second.
    bool adaptive_goodput_wins =
        peak_goodput[2] >= peak_goodput[0] &&
        peak_goodput[2] >= peak_goodput[1];

    bool no_hung_sessions = true;
    const uint64_t chaos_seeds[] = {0xc4a05u, 0x0dd5eedu};
    j.beginArray("chaos");
    for (uint64_t seed : chaos_seeds) {
        ChaosCell cell = runChaosCell(
            seed, workers, smoke ? size_t(10) : size_t(24), cert,
            key.priv, op_cycles);
        bool ok = cell.hungSessions() == 0 && cell.healed();
        no_hung_sessions = no_hung_sessions && ok;
        all_accounted =
            all_accounted && cell.stats.terminatedSessions() ==
                                 cell.expected;

        j.beginObject();
        j.field("seed", cell.seed);
        j.field("offered", cell.expected);
        j.field("terminated", cell.stats.terminatedSessions());
        j.field("hung_sessions", cell.hungSessions());
        j.field("completed", cell.stats.fullHandshakes() +
                                 cell.stats.resumedHandshakes());
        j.field("alerted", cell.stats.failedHandshakes());
        j.field("timed_out", cell.stats.timedOutSessions());
        j.field("thread_deaths", cell.deathBudget);
        j.field("thread_restarts", cell.threadRestarts);
        j.field("supervised_job_failures", cell.supervisedFailures);
        j.field("supervisor_restarts", cell.supervisorRestarts);
        j.field("healed", cell.healed());
        j.field("cell_ok", ok);
        j.endObject();
    }
    j.endArray();

    bool trace_ok = true;
    if (!trace_path.empty()) {
        size_t traced =
            runTraced(cert, key.priv, op_cycles, trace_path);
        j.beginObject("trace");
        j.field("file", trace_path);
        j.field("sessions", static_cast<uint64_t>(traced));
        j.endObject();
        trace_ok = traced != 0;
    }

    j.beginObject("gate");
    j.field("adaptive_goodput_wins", adaptive_goodput_wins);
    j.field("no_hung_sessions", no_hung_sessions);
    j.field("all_accounted", all_accounted);
    j.field("pass", adaptive_goodput_wins && no_hung_sessions &&
                        all_accounted);
    j.endObject();
    j.endObject();

    if (!trace_ok) {
        std::fprintf(stderr,
                     "FAIL: traced run captured no sessions or could "
                     "not write %s\n",
                     trace_path.c_str());
        return 1;
    }

    if (!adaptive_goodput_wins) {
        std::fprintf(stderr,
                     "FAIL: Adaptive goodput (%.1f in-time/s) lost "
                     "to a static policy (reject %.1f/s, shed "
                     "%.1f/s) at the highest overload cell\n",
                     peak_goodput[2], peak_goodput[0],
                     peak_goodput[1]);
        return 1;
    }
    if (!no_hung_sessions) {
        std::fprintf(stderr,
                     "FAIL: a chaos cell left sessions hung or the "
                     "pool unhealed after crypto-thread deaths\n");
        return 1;
    }
    if (!all_accounted) {
        std::fprintf(stderr,
                     "FAIL: a cell lost sessions (terminal outcomes "
                     "!= configured total)\n");
        return 1;
    }
    return 0;
}

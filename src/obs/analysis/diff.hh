/**
 * @file
 * Bench regression diff: compare two BENCH_*.json artifacts.
 *
 * Rules (shared, by specification, with tools/check_bench.py --diff):
 *  - a boolean that was true in the old run and false in the new one is
 *    a GATE REGRESSION (fatal),
 *  - a path present in the old run but missing from the new one is
 *    fatal (schemas only grow),
 *  - a numeric value whose relative delta exceeds the threshold is
 *    reported (informational — benches are noisy, a human or a tighter
 *    gate decides),
 *  - array length changes and new-only paths are informational.
 */

#ifndef SSLA_OBS_ANALYSIS_DIFF_HH
#define SSLA_OBS_ANALYSIS_DIFF_HH

#include "obs/analysis/json.hh"
#include "obs/analysis/pass.hh"

namespace ssla::obs::analysis
{

struct DiffResult
{
    int gateRegressions = 0;  ///< bool true -> false
    int missingPaths = 0;     ///< old path absent from new doc
    int numericDeltas = 0;    ///< |relative delta| > threshold
    int informational = 0;    ///< everything else worth a line

    bool failed() const { return gateRegressions + missingPaths > 0; }
};

/**
 * Diff two bench JSON documents into @p report ("bench_diff" section).
 * @param maxDeltaPct numeric reporting threshold, in percent
 */
DiffResult diffBench(const Json &oldDoc, const Json &newDoc,
                     double maxDeltaPct, Report &report);

} // namespace ssla::obs::analysis

#endif // SSLA_OBS_ANALYSIS_DIFF_HH

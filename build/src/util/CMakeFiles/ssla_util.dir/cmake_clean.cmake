file(REMOVE_RECURSE
  "CMakeFiles/ssla_util.dir/bytes.cc.o"
  "CMakeFiles/ssla_util.dir/bytes.cc.o.d"
  "CMakeFiles/ssla_util.dir/cycles.cc.o"
  "CMakeFiles/ssla_util.dir/cycles.cc.o.d"
  "CMakeFiles/ssla_util.dir/hex.cc.o"
  "CMakeFiles/ssla_util.dir/hex.cc.o.d"
  "CMakeFiles/ssla_util.dir/logging.cc.o"
  "CMakeFiles/ssla_util.dir/logging.cc.o.d"
  "CMakeFiles/ssla_util.dir/rng.cc.o"
  "CMakeFiles/ssla_util.dir/rng.cc.o.d"
  "libssla_util.a"
  "libssla_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssla_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

/**
 * @file
 * The client-side SSLv3 handshake state machine.
 *
 * The client generates the 48-byte pre-master, RSA-encrypts it with
 * the key from the server certificate (the operation whose decryption
 * dominates the paper's Table 2 on the server side), and supports
 * abbreviated (resumed) handshakes.
 */

#ifndef SSLA_SSL_CLIENT_HH
#define SSLA_SSL_CLIENT_HH

#include <memory>
#include <optional>
#include <string>

#include "pki/cert.hh"
#include "ssl/endpoint.hh"

namespace ssla::ssl
{

class ClientKx;

/** Client-side configuration. */
struct ClientConfig
{
    /** Suites to offer, most preferred first. */
    std::vector<CipherSuiteId> suites = allCipherSuites();
    /**
     * Issuer key to verify the server certificate against; when null
     * the certificate is accepted unverified (like curl -k).
     */
    const crypto::RsaPublicKey *trustedIssuer = nullptr;
    /** Expected certificate subject ("" disables the check). */
    std::string expectedSubject;
    /** Time for the validity-window check (0 disables it). */
    uint64_t currentTime = 0;
    /** Session to offer for resumption. */
    std::optional<Session> resumeSession;
    /** Randomness source (defaults to the global pool). */
    crypto::RandomPool *randomPool = nullptr;
    /**
     * Crypto engine for all cipher/digest/MAC/RSA work on this
     * connection (see crypto/provider.hh); null selects
     * crypto::defaultProvider().
     */
    crypto::Provider *provider = nullptr;
    /**
     * Protocol version to offer. Defaults to SSLv3 — the version the
     * paper characterizes; set tls1Version to negotiate TLS 1.0.
     */
    uint16_t maxVersion = ssl3Version;
    /** Certificate to present if the server requests one. */
    std::optional<pki::Certificate> clientCertificate;
    /** Private key matching clientCertificate (for CertificateVerify). */
    std::shared_ptr<crypto::RsaPrivateKey> clientKey;
};

/** One client-side connection endpoint. */
class SslClient : public SslEndpoint
{
  public:
    SslClient(ClientConfig config, BioEndpoint bio);
    ~SslClient() override;

    /** The server certificate received during the handshake. */
    const pki::Certificate &serverCertificate() const { return cert_; }

    /** Parked on the offloaded CertificateVerify signature? */
    CryptoWait cryptoWait() const override;

  protected:
    bool step() override;
    void onChangeCipherSpec() override;
    void onFatal() override;

  private:
    enum class State
    {
        SendClientHello,
        GetServerHello,
        GetServerCert,
        GetServerKeyExchange,
        GetServerDone,
        SendClientKeyExchange,
        AwaitCertVerifySign,
        SendCcsFinished,
        GetFinished,
        // Resumption path.
        ResumeGetFinished,
        ResumeSendCcsFinished,
        Done,
    };

    /** The state switch; step() wraps it to trace state changes. */
    bool dispatch();

    bool stepSendClientHello();
    bool stepGetServerHello();
    bool stepGetServerCert();
    bool stepGetServerKeyExchange();
    bool stepGetServerDone();
    bool stepSendClientKeyExchange();
    bool stepAwaitCertVerifySign();
    bool stepSendCcsFinished();
    bool stepGetFinished();
    bool stepResumeGetFinished();
    bool stepResumeSendCcsFinished();

    ClientConfig config_;
    State state_ = State::SendClientHello;
    pki::Certificate cert_;
    bool resuming_ = false;
    /** The negotiated suite's key-exchange object (see ssl/kx.hh),
     *  created once the ServerHello fixes suite and resumption. */
    std::unique_ptr<ClientKx> kx_;
    bool certificateRequested_ = false;
    /** In-flight CertificateVerify signature (mutual auth): the
     *  client-side analogue of the server's AwaitKxSign parking —
     *  submitted through the provider so a pool-backed provider runs
     *  the private-key op on a crypto thread while this connection
     *  parks, and a synchronous provider falls straight through. */
    crypto::RsaJob cvJob_;
};

} // namespace ssla::ssl

#endif // SSLA_SSL_CLIENT_HH

#include "ssl/bio.hh"

#include <cstring>

#include "perf/probe.hh"

namespace ssla::ssl
{

bool
MemBio::write(const uint8_t *data, size_t len)
{
    if (maxBuffered_ && available() + len > maxBuffered_) {
        ++blockedWrites_;
        return false;
    }
    buf_.insert(buf_.end(), data, data + len);
    totalWritten_ += len;
    return true;
}

bool
MemBio::writev(const ConstSpan *iov, size_t iovcnt)
{
    size_t total = iovTotalBytes(iov, iovcnt);
    if (maxBuffered_ && available() + total > maxBuffered_) {
        ++blockedWrites_;
        return false;
    }
    buf_.reserve(buf_.size() + total);
    for (size_t i = 0; i < iovcnt; ++i)
        buf_.insert(buf_.end(), iov[i].data(),
                    iov[i].data() + iov[i].size());
    totalWritten_ += total;
    return true;
}

void
MemBio::compact()
{
    if (head_ == 0)
        return;
    // Compact when the dead prefix dominates to keep reads O(1)
    // amortized without unbounded growth.
    if (head_ >= 4096 && head_ * 2 >= buf_.size()) {
        buf_.erase(buf_.begin(), buf_.begin() + head_);
        head_ = 0;
    }
}

size_t
MemBio::read(uint8_t *out, size_t len)
{
    size_t take = std::min(len, available());
    if (take)
        std::memcpy(out, buf_.data() + head_, take);
    head_ += take;
    compact();
    return take;
}

size_t
MemBio::peek(uint8_t *out, size_t len) const
{
    size_t take = std::min(len, available());
    if (take)
        std::memcpy(out, buf_.data() + head_, take);
    return take;
}

void
MemBio::consume(size_t len)
{
    head_ += std::min(len, available());
    compact();
}

bool
BioEndpoint::write(const uint8_t *data, size_t len)
{
    perf::FuncProbe probe("BIO_write");
    return out_->write(data, len);
}

bool
BioEndpoint::writev(const ConstSpan *iov, size_t iovcnt)
{
    // Same probe name as write(): Table 2 anatomy accounts the call,
    // not the entry point, so gather-sends stay comparable.
    perf::FuncProbe probe("BIO_write");
    return out_->writev(iov, iovcnt);
}

void
BioEndpoint::flush()
{
    perf::FuncProbe probe("BIO_flush");
    // Memory queues deliver immediately; the probe records the call so
    // the handshake anatomy lists the buffer-control step.
}

} // namespace ssla::ssl

/**
 * @file
 * Word-level bignum kernels, mirroring OpenSSL's bn_*_words layer.
 *
 * The paper's Table 8 shows that RSA decryption time concentrates in
 * exactly these functions (bn_mul_add_words alone takes 47%), and
 * Table 9 lists the x86 instruction body of bn_mul_add_words. We use
 * 32-bit limbs with 64-bit intermediates — the configuration OpenSSL
 * 0.9.7d used on the paper's Pentium 4 — so the kernel anatomy matches.
 *
 * Each kernel exists as a Meter-policy template (for the instruction-mix
 * study) and as a plain instrumented function (production path, with a
 * Fine-level cycle probe for the Table 8 profile).
 */

#ifndef SSLA_BN_KERNELS_HH
#define SSLA_BN_KERNELS_HH

#include <cstddef>
#include <cstdint>

#include "perf/opcount.hh"

namespace ssla::bn
{

/** One machine word of a big number (OpenSSL's BN_ULONG). */
using Limb = uint32_t;
/** Double-width intermediate (OpenSSL's BN_ULLONG). */
using DLimb = uint64_t;

constexpr unsigned limbBits = 32;
constexpr DLimb limbBase = DLimb(1) << limbBits;
constexpr Limb limbMax = 0xffffffffu;

/**
 * r[0..n) += a[0..n) * w; returns the carry limb.
 *
 * This is THE hot loop of RSA (Table 8/9): one widening multiply plus
 * two carry-propagating adds per word.
 */
template <class Meter>
Limb
bnMulAddWordsT(Limb *r, const Limb *a, size_t n, Limb w, Meter &m)
{
    Limb carry = 0;
    for (size_t i = 0; i < n; ++i) {
        // The x86-32 body the paper lists in Table 9:
        //   movl a[i] / mull w / addl carry / movl r[i] / adcl 0
        //   addl r / adcl 0 / movl ->r[i] / movl edx->carry
        // plus the loop control (incl/cmpl/jnz after 4x unrolling).
        DLimb t = static_cast<DLimb>(a[i]) * w + carry + r[i];
        r[i] = static_cast<Limb>(t);
        carry = static_cast<Limb>(t >> limbBits);
        if constexpr (Meter::counting) {
            m.count(perf::OpClass::MovL, 4);
            m.count(perf::OpClass::MulL, 1);
            m.count(perf::OpClass::AddL, 2);
            m.count(perf::OpClass::AdcL, 2);
        }
    }
    if constexpr (Meter::counting) {
        // 4x-unrolled loop: control overhead amortized over 4 words.
        m.count(perf::OpClass::AddL, (n + 3) / 4);
        m.count(perf::OpClass::CmpL, (n + 3) / 4);
        m.count(perf::OpClass::Jcc, (n + 3) / 4);
    }
    return carry;
}

/** r[0..n) = a[0..n) * w; returns the carry limb. */
template <class Meter>
Limb
bnMulWordsT(Limb *r, const Limb *a, size_t n, Limb w, Meter &m)
{
    Limb carry = 0;
    for (size_t i = 0; i < n; ++i) {
        DLimb t = static_cast<DLimb>(a[i]) * w + carry;
        r[i] = static_cast<Limb>(t);
        carry = static_cast<Limb>(t >> limbBits);
        if constexpr (Meter::counting) {
            m.count(perf::OpClass::MovL, 3);
            m.count(perf::OpClass::MulL, 1);
            m.count(perf::OpClass::AddL, 1);
            m.count(perf::OpClass::AdcL, 1);
        }
    }
    if constexpr (Meter::counting) {
        m.count(perf::OpClass::AddL, (n + 3) / 4);
        m.count(perf::OpClass::CmpL, (n + 3) / 4);
        m.count(perf::OpClass::Jcc, (n + 3) / 4);
    }
    return carry;
}

/** r[0..n) = a[0..n) + b[0..n); returns the carry bit. */
template <class Meter>
Limb
bnAddWordsT(Limb *r, const Limb *a, const Limb *b, size_t n, Meter &m)
{
    Limb carry = 0;
    for (size_t i = 0; i < n; ++i) {
        DLimb t = static_cast<DLimb>(a[i]) + b[i] + carry;
        r[i] = static_cast<Limb>(t);
        carry = static_cast<Limb>(t >> limbBits);
        if constexpr (Meter::counting) {
            m.count(perf::OpClass::MovL, 3);
            m.count(perf::OpClass::AddL, 1);
            m.count(perf::OpClass::AdcL, 1);
        }
    }
    if constexpr (Meter::counting) {
        m.count(perf::OpClass::AddL, (n + 3) / 4);
        m.count(perf::OpClass::CmpL, (n + 3) / 4);
        m.count(perf::OpClass::Jcc, (n + 3) / 4);
    }
    return carry;
}

/** r[0..n) = a[0..n) - b[0..n); returns the borrow bit. */
template <class Meter>
Limb
bnSubWordsT(Limb *r, const Limb *a, const Limb *b, size_t n, Meter &m)
{
    Limb borrow = 0;
    for (size_t i = 0; i < n; ++i) {
        DLimb t = static_cast<DLimb>(a[i]) - b[i] - borrow;
        r[i] = static_cast<Limb>(t);
        borrow = static_cast<Limb>((t >> limbBits) & 1);
        if constexpr (Meter::counting) {
            m.count(perf::OpClass::MovL, 3);
            m.count(perf::OpClass::SubL, 1);
            m.count(perf::OpClass::SbbL, 1);
        }
    }
    if constexpr (Meter::counting) {
        m.count(perf::OpClass::AddL, (n + 3) / 4);
        m.count(perf::OpClass::CmpL, (n + 3) / 4);
        m.count(perf::OpClass::Jcc, (n + 3) / 4);
    }
    return borrow;
}

// Production entry points (NullMeter instantiations with Fine probes).

/** r += a * w over n words; see bnMulAddWordsT. */
Limb bn_mul_add_words(Limb *r, const Limb *a, size_t n, Limb w);
/** r = a * w over n words. */
Limb bn_mul_words(Limb *r, const Limb *a, size_t n, Limb w);
/** r = a + b over n words; returns carry. */
Limb bn_add_words(Limb *r, const Limb *a, const Limb *b, size_t n);
/** r = a - b over n words; returns borrow. */
Limb bn_sub_words(Limb *r, const Limb *a, const Limb *b, size_t n);

} // namespace ssla::bn

#endif // SSLA_BN_KERNELS_HH

file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_webserver.dir/bench_table1_webserver.cc.o"
  "CMakeFiles/bench_table1_webserver.dir/bench_table1_webserver.cc.o.d"
  "bench_table1_webserver"
  "bench_table1_webserver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_webserver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

/**
 * @file
 * The RSA-key-exchange cipher suites this stack implements, including
 * DES-CBC3-SHA — the suite the paper measures throughout.
 */

#ifndef SSLA_SSL_CIPHERSUITE_HH
#define SSLA_SSL_CIPHERSUITE_HH

#include <cstdint>
#include <vector>

#include "crypto/cipher.hh"
#include "crypto/digest.hh"

namespace ssla::ssl
{

/**
 * How the pre-master secret is established. Each kind maps through
 * kxFactory() to a server/client pair of ssl::KeyExchange objects
 * (see ssl/kx.hh); suites name only the first two — Resumption is the
 * kx-free abbreviated handshake the endpoints select at runtime.
 */
enum class KxKind
{
    Rsa,        ///< client encrypts the pre-master to the server RSA key
    DheRsa,     ///< ephemeral Diffie-Hellman, params RSA-signed
    Resumption, ///< abbreviated handshake, cached master secret
};

struct KxFactory;

/** Standard cipher-suite code points. */
enum class CipherSuiteId : uint16_t
{
    RSA_NULL_MD5 = 0x0001,
    RSA_RC4_128_MD5 = 0x0004,
    RSA_RC4_128_SHA = 0x0005,
    RSA_DES_CBC_SHA = 0x0009,
    RSA_3DES_EDE_CBC_SHA = 0x000a, ///< the paper's DES-CBC3-SHA
    DHE_RSA_3DES_EDE_CBC_SHA = 0x0016,
    RSA_AES_128_CBC_SHA = 0x002f,
    DHE_RSA_AES_128_CBC_SHA = 0x0033,
    RSA_AES_256_CBC_SHA = 0x0035,
    DHE_RSA_AES_256_CBC_SHA = 0x0039,
};

/** Resolved parameters of a cipher suite. */
struct CipherSuite
{
    CipherSuiteId id;
    const char *name;
    crypto::CipherAlg cipher;
    crypto::DigestAlg mac;
    KxKind kx = KxKind::Rsa;

    /**
     * The key-exchange factory for this suite (defined in kx.cc).
     * @throws std::invalid_argument if kx has no registered factory
     */
    const KxFactory &kxFactory() const;

    size_t macLen() const { return crypto::Digest::digestSize(mac); }
    size_t keyLen() const { return crypto::cipherInfo(cipher).keyLen; }
    size_t ivLen() const { return crypto::cipherInfo(cipher).ivLen; }
    size_t blockLen() const
    {
        return crypto::cipherInfo(cipher).blockLen;
    }
};

/**
 * Look up a suite by id.
 * @throws std::invalid_argument for unknown code points
 */
const CipherSuite &cipherSuite(CipherSuiteId id);

/** True when @p id names an implemented suite. */
bool cipherSuiteKnown(uint16_t id);

/** All implemented suites, strongest first. */
const std::vector<CipherSuiteId> &allCipherSuites();

} // namespace ssla::ssl

#endif // SSLA_SSL_CIPHERSUITE_HH

#include "bn/montgomery.hh"

#include <cassert>
#include <cstring>
#include <stdexcept>

#include "bn/engine.hh"
#include "perf/probe.hh"

namespace ssla::bn
{

#ifndef NDEBUG
/**
 * RAII assertion that the ctx's scratch is entered by one thread at a
 * time (see the header's THREAD OWNERSHIP note). Debug builds only;
 * Release pays nothing.
 */
class ScratchGuard
{
  public:
    explicit ScratchGuard(const MontgomeryCtx &ctx) : ctx_(ctx)
    {
        [[maybe_unused]] unsigned prev =
            ctx_.scratchBusy_.fetch_add(1, std::memory_order_acq_rel);
        assert(prev == 0 &&
               "MontgomeryCtx scratch entered concurrently; contexts "
               "are single-owner — clone the key/ctx per thread");
    }
    ~ScratchGuard()
    {
        ctx_.scratchBusy_.fetch_sub(1, std::memory_order_acq_rel);
    }

  private:
    const MontgomeryCtx &ctx_;
};
#define SSLA_SCRATCH_GUARD(ctx) ScratchGuard scratch_guard(ctx)

/** Same single-owner assertion for the 64-bit core's scratch. */
class Scratch64Guard
{
  public:
    explicit Scratch64Guard(const Mont64Core &core) : core_(core)
    {
        [[maybe_unused]] unsigned prev =
            core_.scratchBusy_.fetch_add(1, std::memory_order_acq_rel);
        assert(prev == 0 &&
               "Mont64Core scratch entered concurrently; contexts "
               "are single-owner — clone the key/ctx per thread");
    }
    ~Scratch64Guard()
    {
        core_.scratchBusy_.fetch_sub(1, std::memory_order_acq_rel);
    }

  private:
    const Mont64Core &core_;
};
#define SSLA_SCRATCH64_GUARD(core) Scratch64Guard scratch64_guard(core)
#else
#define SSLA_SCRATCH_GUARD(ctx) ((void)0)
#define SSLA_SCRATCH64_GUARD(core) ((void)0)
#endif

namespace
{

/** Inverse of an odd 32-bit value modulo 2^32, by Newton iteration. */
Limb
inverseMod32(Limb x)
{
    // Each iteration doubles the number of correct low bits; five
    // iterations take the initial 3 correct bits past 32.
    Limb y = x; // correct mod 2^3 for odd x
    for (int i = 0; i < 5; ++i)
        y = y * (2 - x * y);
    return y;
}

/** Inverse of an odd 64-bit value modulo 2^64, same Newton scheme. */
Limb64
inverseMod64(Limb64 x)
{
    // 3 correct bits doubled five times reaches 96 >= 64.
    Limb64 y = x;
    for (int i = 0; i < 5; ++i)
        y = y * (2 - x * y);
    return y;
}

/** Three-way compare of equal-width little-endian 64-bit limb vectors. */
int
cmpRaw64(const Mont64Core::Raw64 &a, const Mont64Core::Raw64 &b)
{
    for (size_t i = a.size(); i-- > 0;) {
        if (a[i] != b[i])
            return a[i] < b[i] ? -1 : 1;
    }
    return 0;
}

} // anonymous namespace

// ---------------------------------------------------------------- bn64

Mont64Core::Mont64Core(const BigNum &modulus)
{
    n64_ = limbs64From32(modulus.limbs());
    n0_ = 0 - inverseMod64(n64_[0]);

    size_t nbits = limbCount() * limb64Bits;
    BigNum r = BigNum(1).shiftLeft(nbits);
    one64_ = toRaw(r.mod(modulus));
    rr64_ = toRaw(r.sqr().mod(modulus));
    t_.resize(2 * limbCount() + 1);
}

Mont64Core::Raw64
Mont64Core::toRaw(const BigNum &a) const
{
    if (a.isNegative())
        throw std::domain_error("Mont64Core: value out of range");
    Raw64 out = limbs64From32(a.limbs());
    if (out.size() > limbCount())
        throw std::domain_error("Mont64Core: value out of range");
    out.resize(limbCount(), 0);
    if (cmpRaw64(out, n64_) >= 0)
        throw std::domain_error("Mont64Core: value out of range");
    return out;
}

BigNum
Mont64Core::fromRaw(const Raw64 &a) const
{
    return BigNum::fromLimbs(limbs32From64(a));
}

void
Mont64Core::reduceScratch(Raw64 &out) const
{
    perf::FuncProbe probe("BN64_from_montgomery", perf::ProbeLevel::Fine);
    size_t n = limbCount();
    const Limb64 *mod = n64_.data();
    Limb64 *t = t_.data();

    for (size_t i = 0; i < n; ++i) {
        Limb64 m = t[i] * n0_;
        Limb64 carry = bn64_mul_add_words(t + i, mod, n, m);
        // Propagate the word carry through the upper limbs.
        size_t k = i + n;
        while (carry) {
            DLimb64 s = static_cast<DLimb64>(t[k]) + carry;
            t[k] = static_cast<Limb64>(s);
            carry = static_cast<Limb64>(s >> limb64Bits);
            ++k;
        }
    }

    // Result is t >> (n words); subtract N once if needed.
    Limb64 *u = t + n;
    bool ge = u[n] != 0;
    if (!ge) {
        ge = true;
        for (size_t i = n; i-- > 0;) {
            if (u[i] != mod[i]) {
                ge = u[i] > mod[i];
                break;
            }
        }
    }
    out.resize(n);
    if (ge) {
        Limb64 borrow = bn64_sub_words(out.data(), u, mod, n);
        (void)borrow; // u - N < R by construction
    } else {
        std::memcpy(out.data(), u, n * sizeof(Limb64));
    }
}

void
Mont64Core::mulRaw(Raw64 &out, const Raw64 &a, const Raw64 &b) const
{
    SSLA_SCRATCH64_GUARD(*this);
    size_t n = limbCount();
    bn64Mul(t_.data(), a.data(), b.data(), n);
    t_[2 * n] = 0;
    reduceScratch(out);
}

void
Mont64Core::sqrRaw(Raw64 &out, const Raw64 &a) const
{
    perf::FuncProbe probe("BN64_sqr", perf::ProbeLevel::Fine);
    SSLA_SCRATCH64_GUARD(*this);
    size_t n = limbCount();
    bn64Sqr(t_.data(), a.data(), n);
    t_[2 * n] = 0;
    reduceScratch(out);
}

void
Mont64Core::fromMontRaw(Raw64 &out, const Raw64 &a) const
{
    SSLA_SCRATCH64_GUARD(*this);
    std::fill(t_.begin(), t_.end(), 0);
    std::copy(a.begin(), a.end(), t_.begin());
    reduceScratch(out);
}

// ---------------------------------------------------------------- ctx

MontgomeryCtx::MontgomeryCtx(const BigNum &modulus, const Engine *engine)
    : n_(modulus), engine_(engine ? engine : &activeEngine())
{
    if (!n_.isOdd() || n_ <= BigNum(1))
        throw std::domain_error("MontgomeryCtx: modulus must be odd > 1");

    if (engine_->backend() == BnBackend::Bn64) {
        core64_ = std::make_unique<Mont64Core>(n_);
        rModN_ = core64_->fromRaw(core64_->oneRaw());
        return;
    }

    n0_ = static_cast<Limb>(0u - inverseMod32(n_.loWord()));

    size_t nbits = limbCount() * limbBits;
    BigNum r = BigNum(1).shiftLeft(nbits);
    rModN_ = r.mod(n_);
    rr_ = r.sqr().mod(n_);
    t_.resize(2 * limbCount() + 1);
}

void
MontgomeryCtx::requireBn32() const
{
    if (core64_)
        throw std::logic_error(
            "MontgomeryCtx: 32-bit Raw interface used on a bn64-bound "
            "context; dispatch on core64() instead");
}

MontgomeryCtx::Raw
MontgomeryCtx::toRaw(const BigNum &a) const
{
    requireBn32();
    if (a.isNegative() || a.cmpAbs(n_) >= 0)
        throw std::domain_error("MontgomeryCtx: value out of range");
    Raw out(limbCount(), 0);
    const auto &limbs = a.limbs();
    std::copy(limbs.begin(), limbs.end(), out.begin());
    return out;
}

BigNum
MontgomeryCtx::fromRaw(const Raw &a) const
{
    requireBn32();
    return BigNum::fromLimbs(Raw(a));
}

void
MontgomeryCtx::reduceScratch(Raw &out) const
{
    perf::FuncProbe probe("BN_from_montgomery", perf::ProbeLevel::Fine);
    size_t n = limbCount();
    const Limb *mod = n_.limbs().data();
    Limb *t = t_.data();

    for (size_t i = 0; i < n; ++i) {
        Limb m = t[i] * n0_;
        Limb carry = bn_mul_add_words(t + i, mod, n, m);
        // Propagate the word carry through the upper limbs.
        size_t k = i + n;
        while (carry) {
            DLimb s = static_cast<DLimb>(t[k]) + carry;
            t[k] = static_cast<Limb>(s);
            carry = static_cast<Limb>(s >> limbBits);
            ++k;
        }
    }

    // Result is t >> (n words); subtract N once if needed.
    Limb *u = t + n;
    bool ge = u[n] != 0;
    if (!ge) {
        ge = true;
        for (size_t i = n; i-- > 0;) {
            if (u[i] != mod[i]) {
                ge = u[i] > mod[i];
                break;
            }
        }
    }
    out.resize(n);
    if (ge) {
        Limb borrow = bn_sub_words(out.data(), u, mod, n);
        (void)borrow; // u - N < R by construction
    } else {
        std::memcpy(out.data(), u, n * sizeof(Limb));
    }
}

void
MontgomeryCtx::mulRaw(Raw &out, const Raw &a, const Raw &b) const
{
    requireBn32();
    SSLA_SCRATCH_GUARD(*this);
    size_t n = limbCount();
    std::fill(t_.begin(), t_.end(), 0);
    for (size_t i = 0; i < n; ++i) {
        if (b[i] == 0)
            continue;
        Limb carry =
            bn_mul_add_words(t_.data() + i, a.data(), n, b[i]);
        t_[i + n] += carry; // position i+n has no prior carry-in > word
        if (t_[i + n] < carry) {
            size_t k = i + n + 1;
            while (++t_[k] == 0)
                ++k;
        }
    }
    reduceScratch(out);
}

void
MontgomeryCtx::sqrRaw(Raw &out, const Raw &a) const
{
    perf::FuncProbe probe("BN_sqr", perf::ProbeLevel::Fine);
    mulRaw(out, a, a);
}

BigNum
MontgomeryCtx::mul(const BigNum &a, const BigNum &b) const
{
    if (core64_) {
        Mont64Core::Raw64 ra = core64_->toRaw(a);
        Mont64Core::Raw64 rb = core64_->toRaw(b);
        Mont64Core::Raw64 out;
        core64_->mulRaw(out, ra, rb);
        return core64_->fromRaw(out);
    }
    Raw ra = toRaw(a);
    Raw rb = toRaw(b);
    Raw out;
    mulRaw(out, ra, rb);
    return fromRaw(out);
}

BigNum
MontgomeryCtx::sqr(const BigNum &a) const
{
    if (core64_) {
        Mont64Core::Raw64 ra = core64_->toRaw(a);
        Mont64Core::Raw64 out;
        core64_->sqrRaw(out, ra);
        return core64_->fromRaw(out);
    }
    Raw ra = toRaw(a);
    Raw out;
    sqrRaw(out, ra);
    return fromRaw(out);
}

BigNum
MontgomeryCtx::toMont(const BigNum &a) const
{
    if (core64_) {
        Mont64Core::Raw64 ra = core64_->toRaw(a);
        Mont64Core::Raw64 out;
        core64_->mulRaw(out, ra, core64_->rrRaw());
        return core64_->fromRaw(out);
    }
    return mul(a, rr_);
}

BigNum
MontgomeryCtx::fromMont(const BigNum &a) const
{
    if (core64_) {
        std::vector<Limb64> v = limbs64From32(a.limbs());
        if (a.isNegative() || v.size() > core64_->limbCount())
            throw std::domain_error("MontgomeryCtx: value out of range");
        v.resize(core64_->limbCount(), 0);
        Mont64Core::Raw64 out;
        core64_->fromMontRaw(out, v);
        return core64_->fromRaw(out);
    }
    SSLA_SCRATCH_GUARD(*this);
    std::fill(t_.begin(), t_.end(), 0);
    const auto &limbs = a.limbs();
    if (a.isNegative() || limbs.size() > limbCount())
        throw std::domain_error("MontgomeryCtx: value out of range");
    std::copy(limbs.begin(), limbs.end(), t_.begin());
    Raw out;
    reduceScratch(out);
    return fromRaw(out);
}

} // namespace ssla::bn

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_keysetup.dir/bench_fig3_keysetup.cc.o"
  "CMakeFiles/bench_fig3_keysetup.dir/bench_fig3_keysetup.cc.o.d"
  "bench_fig3_keysetup"
  "bench_fig3_keysetup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_keysetup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

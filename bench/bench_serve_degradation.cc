/**
 * @file
 * Graceful-degradation sweep: serving goodput as a function of channel
 * fault rate and crypto-pool saturation.
 *
 * A hardened terminating server should degrade smoothly: as the fault
 * rate rises, goodput (completed handshakes/sec) declines monotonically
 * toward zero while every session still reaches a terminal outcome —
 * completed, alerted, or timed out. A cliff (goodput collapsing to
 * zero at a small fault rate, or sessions leaking) indicates the
 * deadline/backpressure machinery is broken. The crypto-pool axis runs
 * the same sweep with the RSA offload saturated under each overload
 * policy: Reject sheds whole sessions fast, Shed degrades to the
 * synchronous baseline, and neither may lose accounting.
 *
 * Emits the BENCH_degradation.json schema (see EXPERIMENTS.md). The
 * exit code gates only correctness — termination accounting and the
 * zero-fault sanity baseline — never absolute rates, so CI is
 * meaningful on any machine shape.
 *
 *   ./bench_serve_degradation [--smoke] [--trace FILE]
 *
 * --trace FILE additionally runs a small fully-sampled faulted
 * workload with per-session tracing on and writes the Chrome
 * trace_event JSON — the analyzer's chaos corpus (ssla_analyze, or
 * tools/validate_trace.py in CI).
 */

#include <cstdio>
#include <cstring>

#include "common.hh"
#include "obs/export.hh"
#include "obs/metrics.hh"
#include "serve/engine.hh"

using namespace ssla;
using namespace ssla::bench;

namespace
{

/** Cycle count → microseconds, for the handshake-latency fields. */
double
cyclesToUs(double cycles)
{
    return cycles / cycleHz() * 1e6;
}

enum class PoolMode
{
    None,   ///< synchronous in-handshake decrypt
    Reject, ///< tiny bounded pool, overloads rejected
    Shed,   ///< tiny bounded pool, overloads computed synchronously
};

const char *
poolModeName(PoolMode m)
{
    switch (m) {
      case PoolMode::None: return "sync";
      case PoolMode::Reject: return "pool_reject";
      case PoolMode::Shed: return "pool_shed";
    }
    return "?";
}

struct CellResult
{
    double faultRate = 0.0;
    PoolMode mode = PoolMode::None;
    serve::ServeStats stats;
    uint64_t expected = 0;
    uint64_t rejected = 0;
    uint64_t shed = 0;

    bool
    accountedOk() const
    {
        return stats.terminatedSessions() == expected;
    }
};

CellResult
runCell(double fault_rate, PoolMode mode, size_t workers,
        size_t conns_per_worker, const pki::Certificate &cert,
        const std::shared_ptr<crypto::RsaPrivateKey> &key,
        uint64_t seed)
{
    // Per-cell registry: latency percentiles and alert counts below
    // describe this (rate, mode) cell, not the accumulated sweep.
    obs::MetricsRegistry registry;

    serve::ServeConfig cfg;
    cfg.metrics = &registry;
    cfg.workers = workers;
    cfg.connectionsPerWorker = conns_per_worker;
    cfg.concurrentPerWorker = 8;
    cfg.resumeFraction = 0.3;
    cfg.bulkBytes = 0;
    cfg.certificate = &cert;
    cfg.privateKey = key;
    cfg.seed = seed;
    cfg.tolerateFailures = true;
    // Arm the deadlines even at rate 0 so the clean column exercises
    // the same code path as the faulted ones.
    cfg.handshakeDeadlineTicks = 256;
    cfg.idleDeadlineTicks = 256;

    ssl::FaultPlan plan = ssl::FaultPlan::mixed(seed, fault_rate);
    if (fault_rate > 0.0)
        cfg.faultPlan = &plan;

    CellResult r;
    r.faultRate = fault_rate;
    r.mode = mode;
    r.expected = workers * conns_per_worker;

    if (mode == PoolMode::None) {
        serve::ServeEngine engine(std::move(cfg));
        r.stats = engine.run();
    } else {
        // One pool thread and a two-deep queue against many workers:
        // deliberately saturated, so the overload policy is what the
        // cell actually measures.
        serve::CryptoPool pool(1, /*max_queue=*/2,
                               mode == PoolMode::Reject
                                   ? serve::OverloadPolicy::Reject
                                   : serve::OverloadPolicy::Shed);
        cfg.cryptoPool = &pool;
        serve::ServeEngine engine(std::move(cfg));
        r.stats = engine.run();
        r.rejected = pool.rejectedJobs();
        r.shed = pool.shedJobs();
    }
    return r;
}

/**
 * Small fully-sampled traced run under a faulted channel and a
 * saturated Reject pool, so the trace corpus carries the interesting
 * events: faults, alerts, park/resume, shed and deadline fires.
 * Returns the number of captured traces.
 */
size_t
runTraced(const pki::Certificate &cert,
          const std::shared_ptr<crypto::RsaPrivateKey> &key,
          const std::string &path)
{
    obs::ChromeTraceCollector collector;
    obs::MetricsRegistry registry;
    {
        serve::CryptoPool pool(1, /*max_queue=*/2,
                               serve::OverloadPolicy::Reject);
        serve::ServeConfig cfg;
        cfg.workers = 2;
        cfg.connectionsPerWorker = 8;
        cfg.concurrentPerWorker = 8;
        cfg.resumeFraction = 0.3;
        cfg.bulkBytes = 0;
        cfg.certificate = &cert;
        cfg.privateKey = key;
        cfg.seed = 0xdeca2;
        cfg.tolerateFailures = true;
        cfg.handshakeDeadlineTicks = 256;
        cfg.idleDeadlineTicks = 256;
        ssl::FaultPlan plan = ssl::FaultPlan::mixed(cfg.seed, 0.10);
        cfg.faultPlan = &plan;
        cfg.cryptoPool = &pool;
        cfg.metrics = &registry;
        cfg.traceSampleEvery = 1;
        cfg.traceSink = &collector;
        cfg.traceDumpAll = true;
        serve::ServeEngine engine(std::move(cfg));
        engine.run();
        // Pool destruction (scope exit) dumps the crypto threads'
        // job tracks into the collector before we serialize.
    }
    if (!collector.writeFile(path))
        return 0;
    return collector.traceCount();
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string trace_path;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--smoke"))
            smoke = true;
        else if (!std::strcmp(argv[i], "--trace") && i + 1 < argc)
            trace_path = argv[++i];
    }

    warmUpCpu();

    const std::vector<double> rates =
        smoke ? std::vector<double>{0.0, 0.10}
              : std::vector<double>{0.0, 0.02, 0.05, 0.10, 0.20};
    const size_t workers = 2;
    const size_t conns_per_worker = smoke ? 24 : 200;

    const auto &key = benchKey(1024);
    pki::CertificateInfo info;
    info.serial = 2;
    info.issuer = "Bench CA";
    info.subject = "bench.degradation";
    info.notBefore = 0;
    info.notAfter = ~uint64_t(0);
    info.publicKey = key.pub;
    pki::Certificate cert = pki::Certificate::issue(info, *key.priv);

    const PoolMode modes[] = {PoolMode::None, PoolMode::Reject,
                              PoolMode::Shed};

    bool all_accounted = true;
    bool clean_baseline_ok = true;

    JsonWriter j;
    j.beginObject();
    j.field("bench", "serve_degradation");
    j.field("smoke", smoke);
    j.field("workers", static_cast<uint64_t>(workers));
    j.field("connections_per_worker",
            static_cast<uint64_t>(conns_per_worker));
    j.beginArray("fault_rates");
    for (double r : rates)
        j.element(r, 2);
    j.endArray();

    j.beginArray("results");
    for (PoolMode mode : modes) {
        double prev_goodput = -1.0;
        bool monotone = true;
        for (double rate : rates) {
            CellResult cell = runCell(
                rate, mode, workers, conns_per_worker, cert, key.priv,
                0xdeca1 ^ static_cast<uint64_t>(rate * 1000) ^
                    (static_cast<uint64_t>(mode) << 20));
            all_accounted = all_accounted && cell.accountedOk();
            const uint64_t completed = cell.stats.fullHandshakes() +
                                       cell.stats.resumedHandshakes();
            // Reject mode legitimately drops sessions even on a clean
            // channel — the saturated pool answering with
            // internal_error IS the policy — so the full-completion
            // baseline applies to the other two modes only.
            if (rate == 0.0 && mode != PoolMode::Reject &&
                completed != cell.expected)
                clean_baseline_ok = false;
            // Monotonicity is measured on the completed fraction, not
            // the rate: wall-clock noise must not fake a cliff.
            double fraction =
                static_cast<double>(completed) / cell.expected;
            if (prev_goodput >= 0 && fraction > prev_goodput + 0.10)
                monotone = false; // fraction ROSE with the fault rate
            prev_goodput = fraction;

            j.beginObject();
            j.field("pool_mode", poolModeName(mode));
            j.field("fault_rate", rate, 2);
            j.field("completed", completed);
            j.field("alerted", cell.stats.failedHandshakes());
            j.field("timed_out", cell.stats.timedOutSessions());
            j.field("evicted", cell.stats.evictedSessions());
            j.field("faults_injected", cell.stats.faultsInjected());
            j.field("park_events", cell.stats.parkEvents());
            j.field("pool_rejected", cell.rejected);
            j.field("pool_shed", cell.shed);
            j.field("completed_fraction", fraction, 3);
            j.field("goodput_per_sec", cell.stats.goodputPerSec(), 1);
            j.field("elapsed_sec", cell.stats.elapsedSeconds);
            // Completed-handshake latency distribution for the cell
            // (µs, from the per-cell registry): the degradation story
            // in latency terms — the tail stretches as faults force
            // retries within the surviving sessions.
            const obs::HistogramSnapshot hs =
                cell.stats.metrics.histogram("serve.handshake_cycles");
            j.field("hs_count", hs.count);
            j.field("hs_p50_us", cyclesToUs(hs.percentile(50)), 1);
            j.field("hs_p99_us", cyclesToUs(hs.percentile(99)), 1);
            // Alert traffic by code, from the per-cell registry: which
            // alerts the fault mix actually provokes.
            uint64_t alerts_sent = 0;
            for (const auto &[name, value] :
                 cell.stats.metrics.counters)
                if (name.rfind("alert.sent.", 0) == 0)
                    alerts_sent += value;
            j.field("alerts_sent", alerts_sent);
            j.field("accounted_ok", cell.accountedOk());
            j.endObject();
        }
        // Reported per mode; informational (strict monotonicity in the
        // completed fraction holds in expectation, not per seed).
        j.beginObject();
        j.field("pool_mode", poolModeName(mode));
        j.field("monotone_goodput", monotone);
        j.endObject();
    }
    j.endArray();

    bool trace_ok = true;
    if (!trace_path.empty()) {
        size_t traced = runTraced(cert, key.priv, trace_path);
        j.beginObject("trace");
        j.field("file", trace_path);
        j.field("sessions", static_cast<uint64_t>(traced));
        j.endObject();
        trace_ok = traced != 0;
    }

    j.field("all_accounted", all_accounted);
    j.field("clean_baseline_ok", clean_baseline_ok);
    j.endObject();

    if (!trace_ok) {
        std::fprintf(stderr,
                     "FAIL: traced run captured no sessions or could "
                     "not write %s\n",
                     trace_path.c_str());
        return 1;
    }

    if (!all_accounted) {
        std::fprintf(stderr,
                     "FAIL: a cell lost sessions (completed + alerted "
                     "+ timed_out != configured total)\n");
        return 1;
    }
    if (!clean_baseline_ok) {
        std::fprintf(stderr,
                     "FAIL: zero-fault baseline did not complete every "
                     "session\n");
        return 1;
    }
    return 0;
}

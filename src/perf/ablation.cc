#include "perf/ablation.hh"

#include <algorithm>

namespace ssla::perf
{

namespace
{

/** Remove up to @p n ops of class @p c from @p h. */
uint64_t
removeOps(OpHistogram &h, OpClass c, uint64_t n)
{
    uint64_t have = h.count(c);
    uint64_t removed = std::min(have, n);
    // OpHistogram has no subtract; rebuild via merge of a negative is
    // not possible, so clear-and-refill the one bucket.
    OpHistogram tmp;
    for (size_t i = 0; i < numOpClasses; ++i) {
        auto cls = static_cast<OpClass>(i);
        uint64_t cnt = h.count(cls);
        if (cls == c)
            cnt -= removed;
        tmp.add(cls, cnt);
    }
    h = tmp;
    return removed;
}

} // anonymous namespace

IsaAblation
ablateThreeOperandLogicals(const OpHistogram &per_block,
                           uint64_t fusable_pairs,
                           uint64_t spills_removed,
                           const CoreParams &params)
{
    IsaAblation out;
    out.baseline = per_block;
    out.withIsa = per_block;

    // Each fused pair deletes one logical op (two ops become one
    // 3-input instruction). Drain xor first (the dominant logical in
    // both hashes), then and, then or.
    uint64_t to_remove = fusable_pairs;
    to_remove -= removeOps(out.withIsa, OpClass::XorL,
                           std::min(to_remove,
                                    out.withIsa.count(OpClass::XorL) / 2));
    to_remove -= removeOps(out.withIsa, OpClass::AndL, to_remove);
    removeOps(out.withIsa, OpClass::OrL, to_remove);

    removeOps(out.withIsa, OpClass::MovL, spills_removed);

    out.cpiBaseline = estimateCpi(out.baseline, params);
    out.cpiWithIsa = estimateCpi(out.withIsa, params);
    out.speedup = out.cpiBaseline.cycles / out.cpiWithIsa.cycles;
    return out;
}

AesUnitAblation
ablateAesRoundUnit(const OpHistogram &software_block, int rounds,
                   double round_latency, double soft_edge_cycles,
                   const CoreParams &params)
{
    AesUnitAblation out;
    out.softwareCyclesPerBlock =
        estimateCpi(software_block, params).cycles;
    // Rounds are dependent on each other (each round's outputs feed
    // the next), so the unit runs them serially at its own latency;
    // within a round its four basic ops are parallel (Figure 5).
    out.hardwareCyclesPerBlock =
        rounds * round_latency + soft_edge_cycles;
    out.speedup =
        out.softwareCyclesPerBlock / out.hardwareCyclesPerBlock;
    return out;
}

EngineAblation
ablateCryptoEngine(double mac_cycles, double enc_cycles,
                   double trailer_fraction)
{
    EngineAblation out;
    out.serialCycles = mac_cycles + enc_cycles;
    // The encryption unit streams the body while the hash unit MACs
    // it; the trailer (MAC value + padding) encrypts after the MAC
    // completes (Figure 6's pipeline).
    double body = enc_cycles * (1.0 - trailer_fraction);
    double trailer = enc_cycles * trailer_fraction;
    out.overlappedCycles = std::max(mac_cycles, body) + trailer;
    out.speedup = out.serialCycles / out.overlappedCycles;
    return out;
}

} // namespace ssla::perf

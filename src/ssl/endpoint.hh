/**
 * @file
 * Shared machinery of the client and server handshake state machines:
 * record pumping, handshake-message reassembly, transcript hashing,
 * ChangeCipherSpec staging, alerts and application data.
 *
 * Endpoints are non-blocking: advance() makes as much progress as the
 * transport allows and returns, so an in-process client/server pair
 * (the paper's ssltest arrangement) is driven by alternating calls —
 * see runLockstep().
 */

#ifndef SSLA_SSL_ENDPOINT_HH
#define SSLA_SSL_ENDPOINT_HH

#include <deque>
#include <optional>

#include "crypto/rand.hh"
#include "obs/trace.hh"
#include "ssl/handshake_hash.hh"
#include "ssl/kdf.hh"
#include "ssl/messages.hh"
#include "ssl/record.hh"
#include "ssl/session.hh"

namespace ssla::ssl
{

/**
 * Largest handshake message an endpoint will buffer toward (the
 * 24-bit wire length field allows 16 MB; accepting that on faith is a
 * memory DoS). 128 KiB clears any certificate chain we can produce.
 */
constexpr size_t maxHandshakeMessage = 128 * 1024;

/**
 * Observability attachment for one endpoint. All pointers are
 * borrowed and must outlive the endpoint; null fields keep the
 * current binding (registry defaults to the global one at
 * construction).
 */
struct EndpointObsBinding
{
    /** Registry alert counters resolve against. */
    obs::MetricsRegistry *registry = nullptr;
    /** Record/byte accounting handles for the record layer. */
    const RecordCounters *recordCounters = nullptr;
    /** Per-session event trace (null leaves tracing off). */
    obs::SessionTrace *trace = nullptr;
    /** traceSideServer / traceSideClient for this endpoint's events. */
    uint8_t side = obs::traceSideServer;
};

/**
 * Why an endpoint is parked on asynchronous crypto. The server parks
 * in two places: waiting for the offloaded pre-master RSA decryption
 * (RSA key transport) and waiting for the offloaded ServerKeyExchange
 * RSA signature (DHE suites). The client parks in one: waiting for
 * the offloaded CertificateVerify signature (mutual auth).
 */
enum class CryptoWait : uint8_t
{
    None,             ///< not parked
    PreMasterDecrypt, ///< AwaitPreMaster: rsa_decrypt job in flight
    ServerKxSign,     ///< AwaitKxSign: rsa_sign job in flight
    CertVerifySign,   ///< client AwaitCertVerifySign: rsa_sign job
};

/** Trace/metric label for a park reason ("rsa_decrypt", "rsa_sign"). */
const char *cryptoWaitLabel(CryptoWait wait);

/** Common base of SslClient and SslServer. */
class SslEndpoint
{
  public:
    virtual ~SslEndpoint() = default;

    /**
     * Drive the handshake/state machine as far as buffered input
     * allows. @return true if any progress was made.
     *
     * Failure contract (the robustness invariant the fault harness
     * asserts): any fatal protocol failure sends EXACTLY ONE fatal
     * alert to the peer — whether it was raised via fail() or escaped
     * a parser as a bare SslError — marks the endpoint dead, and
     * rethrows. A dead endpoint never progresses again (advance()
     * returns false) and never emits a second alert. A peer's fatal
     * alert likewise kills the endpoint without an alert in response.
     * @throws SslError on fatal protocol failures
     */
    bool advance();

    /** True after a fatal failure (alert sent or received) or abort. */
    bool failed() const { return dead_; }

    /** The alert the failure mapped to (nullopt while healthy). */
    std::optional<AlertDescription> failureAlert() const
    {
        return lastAlert_;
    }

    /** Fatal alerts this endpoint put on the wire (must stay <= 1). */
    uint64_t fatalAlertsSent() const { return fatalAlertsSent_; }

    /**
     * Tear the connection down from outside the state machine (e.g. a
     * serving engine enforcing a deadline): best-effort fatal alert to
     * the peer, then dead. Idempotent; never throws.
     */
    void abort(AlertDescription desc);

    /** True once the handshake completed. */
    bool handshakeDone() const { return done_; }

    /** Negotiated suite (valid once chosen during the handshake). */
    const CipherSuite &suite() const;

    /** The established session (for caching / resumption). */
    const Session &session() const { return session_; }

    /** True when this handshake resumed a previous session. */
    bool resumed() const { return resumed_; }

    /**
     * Why the state machine is parked on an asynchronous crypto
     * operation (CryptoWait::None when it isn't). A parked endpoint
     * makes no progress from advance() until the operation lands, but
     * is not waiting on peer input — a serving worker should revisit
     * it rather than treat it as stalled.
     */
    virtual CryptoWait cryptoWait() const { return CryptoWait::None; }

    /** True while parked on asynchronous crypto (either reason). */
    bool waitingOnCrypto() const
    {
        return cryptoWait() != CryptoWait::None;
    }

    /** Negotiated protocol version (ssl3Version or tls1Version). */
    uint16_t negotiatedVersion() const { return version_; }

    /** Encrypt and send application data (handshake must be done). */
    void writeApplicationData(const Bytes &data);

    /**
     * Gather-send application data: the concatenation of @p iov goes
     * out as one fragmented record stream with no caller-side
     * concatenation (the zero-copy data-plane entry point).
     */
    void writeApplicationData(const ConstSpan *iov, size_t iovcnt);

    /**
     * Fetch decrypted application data. Returns nullopt when no
     * complete record is available; check peerClosed() for clean EOF.
     */
    std::optional<Bytes> readApplicationData();

    /** Send close_notify (idempotent). */
    void close();

    bool peerClosed() const { return peerClosed_; }

    /**
     * Attach metrics and tracing. Endpoints default to the global
     * registry with no trace; a serving engine rebinds each session
     * to its own registry and (when sampled) a SessionTrace ring.
     */
    void bindObservability(const EndpointObsBinding &binding);

    /** The trace this endpoint records into (may be null). */
    obs::SessionTrace *trace() { return trace_; }

    /** The record layer (exposed for traffic accounting). */
    RecordLayer &record() { return record_; }

    /** The crypto provider this endpoint dispatches through. */
    crypto::Provider &provider() { return record_.provider(); }

  protected:
    SslEndpoint(BioEndpoint bio, crypto::RandomPool *pool,
                crypto::Provider *provider = nullptr);

    /** One state-machine step; true if progress was made. */
    virtual bool step() = 0;

    /**
     * Called when a ChangeCipherSpec record arrives; implementations
     * must enable the receive cipher and snapshot the expected peer
     * finished hash.
     * @throws SslError if CCS is not legal in the current state
     */
    virtual void onChangeCipherSpec() = 0;

    /**
     * Pull the next complete handshake message, pumping records as
     * needed. Returns nullopt when input is exhausted. The message is
     * absorbed into the transcript hash unless @p update_hash is false.
     */
    std::optional<HandshakeMessage>
    nextHandshakeMessage(bool update_hash = true);

    /** True once a CCS record has been processed (one-shot flag). */
    bool takeCcsReceived();

    /** Encode, hash and send a handshake message. */
    void sendHandshake(HandshakeType type, const Bytes &body);

    /** Send the one-byte ChangeCipherSpec record. */
    void sendChangeCipherSpec();

    /** Send an alert record. */
    void sendAlert(AlertLevel level, AlertDescription desc);

    /** Send a fatal alert and throw SslError. */
    [[noreturn]] void fail(AlertDescription desc, const std::string &msg);

    /**
     * Hook invoked once when the endpoint dies (fatal alert sent or
     * received, abort, escaped parser error). Overrides clean up
     * session-scoped state — the server cancels its in-flight crypto
     * job and expels the session from the cache. Must not throw.
     */
    virtual void onFatal() {}

    /** Lazily derive (and cache) the key block for this session. */
    const KeyBlock &keyBlock();

    /** Random source for this endpoint. */
    crypto::RandomPool &pool() { return *pool_; }

    /** Record into the attached trace; no-op when untraced. */
    void
    traceEvent(obs::TraceEventKind kind, const char *label = nullptr,
               uint16_t code = 0, uint64_t arg = 0)
    {
        if (trace_)
            trace_->record(kind, traceSide_, label, code, arg);
    }

    RecordLayer record_;
    HandshakeHash hsHash_;
    const CipherSuite *suite_ = nullptr;
    uint16_t version_ = ssl3Version; ///< negotiated protocol version
    Bytes clientRandom_;
    Bytes serverRandom_;
    Bytes master_;
    Bytes expectedPeerFinished_;
    Session session_;
    bool done_ = false;
    bool resumed_ = false;

  private:
    /** Read and dispatch one record; false when none available. */
    bool pumpOneRecord();

    void handleAlert(const Bytes &payload);

    /** Kill the endpoint: one alert (unless the peer failed first or
     *  one already went out), the onFatal() hook, dead. Idempotent. */
    void noteFatal(AlertDescription desc);

    crypto::RandomPool *pool_;
    obs::MetricsRegistry *obsRegistry_; ///< alert counters; never null
    obs::SessionTrace *trace_ = nullptr;
    uint8_t traceSide_ = obs::traceSideServer;
    Bytes hsBuffer_; ///< handshake-stream reassembly
    size_t hsOffset_ = 0;
    bool ccsReceived_ = false;
    std::deque<Bytes> appData_;
    bool peerClosed_ = false;
    bool closeSent_ = false;
    bool dead_ = false;          ///< fatal failure; no further progress
    bool fatalAlertSent_ = false;
    bool peerFatal_ = false;     ///< peer's fatal alert killed us
    uint64_t fatalAlertsSent_ = 0;
    std::optional<AlertDescription> lastAlert_;
    std::optional<KeyBlock> keyBlock_;
};

/**
 * Drive two in-process endpoints to handshake completion by
 * alternating advance() calls (the ssltest relay loop).
 * @throws SslError if either side fails, std::runtime_error on
 *         deadlock (neither side can progress)
 */
void runLockstep(SslEndpoint &a, SslEndpoint &b);

} // namespace ssla::ssl

#endif // SSLA_SSL_ENDPOINT_HH

/**
 * @file
 * Google-benchmark microbenchmarks of the SSL protocol layer: full
 * and resumed handshakes, record-layer bulk throughput and complete
 * HTTPS transactions.
 */

#include <benchmark/benchmark.h>

#include "common.hh"
#include "ssl/client.hh"
#include "ssl/server.hh"
#include "web/httpsim.hh"

using namespace ssla;
using namespace ssla::ssl;

namespace
{

struct Fixture
{
    crypto::RsaKeyPair key = bench::benchKey(1024);
    pki::Certificate cert;
    SessionCache cache;

    Fixture()
    {
        pki::CertificateInfo info;
        info.serial = 1;
        info.issuer = "Bench CA";
        info.subject = "bench.server";
        info.notBefore = 0;
        info.notAfter = ~uint64_t(0);
        info.publicKey = key.pub;
        cert = pki::Certificate::issue(info, *key.priv);
    }

    ServerConfig
    serverConfig()
    {
        ServerConfig cfg;
        cfg.certificate = cert;
        cfg.privateKey = key.priv;
        cfg.sessionCache = &cache;
        return cfg;
    }
};

Fixture &
fixture()
{
    static Fixture f;
    return f;
}

void
BM_FullHandshake(benchmark::State &state)
{
    Fixture &f = fixture();
    for (auto _ : state) {
        BioPair wires;
        SslServer server(f.serverConfig(), wires.serverEnd());
        SslClient client(ClientConfig{}, wires.clientEnd());
        runLockstep(client, server);
        benchmark::DoNotOptimize(client.session().id.data());
    }
}
BENCHMARK(BM_FullHandshake)->Unit(benchmark::kMicrosecond);

void
BM_ResumedHandshake(benchmark::State &state)
{
    Fixture &f = fixture();
    // Establish a session to resume.
    Session sess;
    {
        BioPair wires;
        SslServer server(f.serverConfig(), wires.serverEnd());
        SslClient client(ClientConfig{}, wires.clientEnd());
        runLockstep(client, server);
        sess = client.session();
    }
    for (auto _ : state) {
        BioPair wires;
        SslServer server(f.serverConfig(), wires.serverEnd());
        ClientConfig ccfg;
        ccfg.resumeSession = sess;
        SslClient client(ccfg, wires.clientEnd());
        runLockstep(client, server);
        if (!client.resumed())
            state.SkipWithError("session was not resumed");
        sess = client.session();
    }
}
BENCHMARK(BM_ResumedHandshake)->Unit(benchmark::kMicrosecond);

void
BM_RecordThroughput(benchmark::State &state)
{
    Fixture &f = fixture();
    BioPair wires;
    SslServer server(f.serverConfig(), wires.serverEnd());
    SslClient client(ClientConfig{}, wires.clientEnd());
    runLockstep(client, server);

    Bytes chunk = bench::benchPayload(state.range(0), 11);
    for (auto _ : state) {
        server.writeApplicationData(chunk);
        size_t got = 0;
        while (got < chunk.size()) {
            auto data = client.readApplicationData();
            if (!data)
                break;
            got += data->size();
        }
        benchmark::DoNotOptimize(got);
    }
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RecordThroughput)->Arg(1024)->Arg(16384)->Arg(65536);

void
BM_HttpsTransaction(benchmark::State &state)
{
    static web::WebSimulator sim{web::WebSimConfig{}};
    sim.runTransaction(1024); // warm-up
    bool resume = state.range(1) != 0;
    for (auto _ : state) {
        auto stats = sim.runTransaction(state.range(0), resume);
        benchmark::DoNotOptimize(stats.sslTotal);
    }
}
BENCHMARK(BM_HttpsTransaction)
    ->Args({1024, 0})
    ->Args({1024, 1})
    ->Args({32768, 0})
    ->Unit(benchmark::kMicrosecond);

} // anonymous namespace

BENCHMARK_MAIN();

#include "ssl/record.hh"

#include "util/bytes.hh"

namespace ssla::ssl
{

RecordCounters
RecordCounters::resolve(obs::MetricsRegistry &reg)
{
    RecordCounters c;
    c.recordsOut = reg.counter("record.records_out");
    c.bytesOut = reg.counter("record.bytes_out");
    c.recordsIn = reg.counter("record.records_in");
    c.bytesIn = reg.counter("record.bytes_in");
    return c;
}

const RecordCounters &
globalRecordCounters()
{
    static const RecordCounters c =
        RecordCounters::resolve(obs::MetricsRegistry::global());
    return c;
}

Bytes
ssl3Mac(crypto::DigestAlg alg, const Bytes &secret, uint64_t seq,
        uint8_t type, const uint8_t *data, size_t len)
{
    crypto::RecordMacSpec spec{alg, secret, ssl3Version};
    return crypto::defaultProvider().recordMac(spec, seq, type, data,
                                               len);
}

Bytes
tls1Mac(crypto::DigestAlg alg, const Bytes &secret, uint64_t seq,
        uint8_t type, uint16_t version, const uint8_t *data, size_t len)
{
    crypto::RecordMacSpec spec{alg, secret, version};
    return crypto::defaultProvider().recordMac(spec, seq, type, data,
                                               len);
}

void
RecordLayer::setVersion(uint16_t version)
{
    if (version != ssl3Version && version != tls1Version)
        throw SslError(AlertDescription::IllegalParameter,
                       "record: unsupported protocol version");
    version_ = version;
    versionLocked_ = true;
}

Bytes
RecordLayer::computeMac(const RecordCipherState &dir, uint8_t type,
                        const uint8_t *data, size_t len,
                        uint64_t seq) const
{
    return dir.provider->recordMac(dir.macSpec, seq, type, data, len);
}

void
RecordLayer::enableSendCipher(const CipherSuite &suite, Bytes mac_secret,
                              const Bytes &key, const Bytes &iv)
{
    send_.suite = &suite;
    send_.provider = provider_;
    send_.macSpec =
        crypto::RecordMacSpec{suite.mac, std::move(mac_secret),
                              version_};
    send_.cipher = provider_->createCipher(suite.cipher, key, iv, true);
    send_.seq = 0;
}

void
RecordLayer::enableRecvCipher(const CipherSuite &suite, Bytes mac_secret,
                              const Bytes &key, const Bytes &iv)
{
    recv_.suite = &suite;
    recv_.provider = provider_;
    recv_.macSpec =
        crypto::RecordMacSpec{suite.mac, std::move(mac_secret),
                              version_};
    recv_.cipher = provider_->createCipher(suite.cipher, key, iv, false);
    recv_.seq = 0;
}

void
RecordLayer::send(ContentType type, const uint8_t *data, size_t len)
{
    std::span<const uint8_t> one{data, len};
    sendMany(type, &one, 1);
}

void
RecordLayer::send(ContentType type, const Bytes &data)
{
    send(type, data.data(), data.size());
}

void
RecordLayer::sendMany(ContentType type, const std::vector<Bytes> &bufs)
{
    std::vector<std::span<const uint8_t>> iov;
    iov.reserve(bufs.size());
    for (const Bytes &b : bufs)
        iov.emplace_back(b.data(), b.size());
    sendMany(type, iov.data(), iov.size());
}

void
RecordLayer::sendMany(ContentType type,
                      const std::span<const uint8_t> *iov, size_t iovcnt)
{
    size_t total = 0;
    for (size_t i = 0; i < iovcnt; ++i)
        total += iov[i].size();

    if (send_.active() && provider_->pipelined() && total > maxFragment) {
        sendPipelined(type, iov, iovcnt);
        return;
    }

    // Synchronous path: one fragment at a time, exactly the classic
    // MAC(n) -> encrypt(n) -> MAC(n+1) -> ... sequence. Fragments that
    // lie within a single buffer are sent in place; a fragment
    // straddling buffers is gathered into scratch first.
    Bytes scratch;
    size_t buf = 0, off = 0, sent = 0;
    do {
        size_t chunk = std::min(total - sent, maxFragment);
        while (buf < iovcnt && off == iov[buf].size()) {
            ++buf;
            off = 0;
        }
        if (buf < iovcnt && iov[buf].size() - off >= chunk) {
            sendOne(type, iov[buf].data() + off, chunk);
            off += chunk;
        } else {
            scratch.clear();
            size_t need = chunk;
            while (need) {
                size_t take =
                    std::min(need, iov[buf].size() - off);
                append(scratch, iov[buf].data() + off, take);
                off += take;
                need -= take;
                if (off == iov[buf].size() && need) {
                    ++buf;
                    off = 0;
                }
            }
            sendOne(type, scratch.data(), chunk);
        }
        sent += chunk;
    } while (sent < total);
}

void
RecordLayer::sealFragment(Bytes &fragment, const Bytes &mac)
{
    append(fragment, mac);
    size_t block = send_.suite->blockLen();
    if (block > 1) {
        // SSLv3 padding: fill to a block multiple; the final byte
        // counts the padding bytes before it.
        size_t total = fragment.size() + 1;
        size_t pad = (block - total % block) % block;
        fragment.insert(fragment.end(), pad + 1,
                        static_cast<uint8_t>(pad));
    }
    send_.cipher->process(fragment.data(), fragment.data(),
                          fragment.size());
}

bool
RecordLayer::flushPendingOutput()
{
    bool delivered = false;
    while (!pendingOut_.empty()) {
        const Bytes &wire = pendingOut_.front();
        if (!bio_.write(wire.data(), wire.size()))
            return delivered; // still blocked; keep the backlog intact
        pendingOut_.pop_front();
        delivered = true;
    }
    return delivered;
}

void
RecordLayer::writeRecord(ContentType type, const Bytes &fragment,
                         size_t payload_len)
{
    // One contiguous wire image per record: the transport either takes
    // the whole record or none of it, so a capped bio can never hold a
    // torn record, and a refused record queues for in-order retry.
    Bytes wire;
    wire.reserve(5 + fragment.size());
    wire.push_back(static_cast<uint8_t>(type));
    wire.push_back(static_cast<uint8_t>(version_ >> 8));
    wire.push_back(static_cast<uint8_t>(version_));
    wire.push_back(static_cast<uint8_t>(fragment.size() >> 8));
    wire.push_back(static_cast<uint8_t>(fragment.size()));
    wire.insert(wire.end(), fragment.begin(), fragment.end());

    flushPendingOutput();
    if (!pendingOut_.empty() || !bio_.write(wire.data(), wire.size()))
        pendingOut_.push_back(std::move(wire));
    bytesSent_ += payload_len;
    ++recordsSent_;
    obs_->recordsOut.inc();
    obs_->bytesOut.inc(payload_len);
}

void
RecordLayer::sendOne(ContentType type, const uint8_t *data, size_t len)
{
    Bytes fragment;
    if (send_.active()) {
        // fragment = data || MAC || padding.
        fragment.reserve(len + send_.suite->macLen() +
                         send_.suite->blockLen());
        fragment.assign(data, data + len);
        Bytes mac = computeMac(send_, static_cast<uint8_t>(type), data,
                               len, send_.seq++);
        sealFragment(fragment, mac);
    } else {
        fragment.assign(data, data + len);
    }
    writeRecord(type, fragment, len);
}

void
RecordLayer::sendPipelined(ContentType type,
                           const std::span<const uint8_t> *iov,
                           size_t iovcnt)
{
    // Stage every fragment, submit all MAC jobs to the engine, then
    // encrypt in record order: while record n is CBC-encrypted here,
    // the engine worker is already hashing record n+1 (Section 6.2).
    struct Staged
    {
        Bytes buf;
        size_t len = 0;
        crypto::MacJob job;
    };

    size_t total = 0;
    for (size_t i = 0; i < iovcnt; ++i)
        total += iov[i].size();

    std::vector<Staged> staged;
    staged.reserve((total + maxFragment - 1) / maxFragment);

    size_t buf = 0, off = 0, sent = 0;
    size_t mac_len = send_.suite->macLen();
    size_t block = send_.suite->blockLen();
    while (sent < total) {
        size_t chunk = std::min(total - sent, maxFragment);
        Staged s;
        s.len = chunk;
        s.buf.reserve(chunk + mac_len + block);
        size_t need = chunk;
        while (need) {
            while (off == iov[buf].size()) {
                ++buf;
                off = 0;
            }
            size_t take = std::min(need, iov[buf].size() - off);
            append(s.buf, iov[buf].data() + off, take);
            off += take;
            need -= take;
        }
        staged.push_back(std::move(s));
        Staged &back = staged.back();
        back.job = provider_->submitRecordMac(
            send_.macSpec, send_.seq++, static_cast<uint8_t>(type),
            back.buf.data(), back.len);
        sent += chunk;
    }

    for (Staged &s : staged) {
        Bytes mac = s.job.wait();
        sealFragment(s.buf, mac);
        writeRecord(type, s.buf, s.len);
    }
}

std::optional<Record>
RecordLayer::receive()
{
    uint8_t header[5];
    if (bio_.peek(header, 5) < 5)
        return std::nullopt;

    auto type = static_cast<ContentType>(header[0]);
    uint16_t version = static_cast<uint16_t>((header[1] << 8) | header[2]);
    size_t frag_len = static_cast<size_t>((header[3] << 8) | header[4]);

    if (versionLocked_ ? version != version_
                       : (version >> 8) != 0x03)
        throw SslError(AlertDescription::IllegalParameter,
                       "record: bad protocol version");
    if (frag_len > maxFragment + 1024 + 256)
        throw SslError(AlertDescription::IllegalParameter,
                       "record: oversized fragment");
    if (bio_.available() < 5 + frag_len)
        return std::nullopt;

    bio_.consume(5);
    Bytes fragment(frag_len);
    bio_.read(fragment.data(), frag_len);

    if (!recv_.active()) {
        obs_->recordsIn.inc();
        obs_->bytesIn.inc(fragment.size());
        return Record{type, std::move(fragment)};
    }

    size_t mac_len = recv_.suite->macLen();
    size_t block = recv_.suite->blockLen();

    // Validate ciphertext geometry BEFORE decrypting: a truncated
    // record's partial block would otherwise surface as the cipher's
    // own exception rather than the record layer's SslError (the
    // fault harness asserts only SslError ever escapes).
    if (block > 1 && (fragment.empty() || fragment.size() % block))
        throw SslError(AlertDescription::BadRecordMac,
                       "record: bad block length");

    recv_.cipher->process(fragment.data(), fragment.data(),
                          fragment.size());

    size_t data_len = fragment.size();

    // Padding is validated in constant time: a single pass with no
    // early return, folding every check into one mask so a forger
    // cannot distinguish bad-padding from bad-MAC by timing or alert
    // (the distinguisher behind padding-oracle attacks on CBC suites).
    size_t pad_valid = 1;
    if (block > 1) {
        size_t pad = fragment.back();
        // pad + 1 + mac_len must fit inside the fragment.
        pad_valid = static_cast<size_t>(
            pad + 1 + mac_len <= fragment.size());
        if (version_ >= tls1Version) {
            // TLS 1.0: every padding byte must equal the pad length.
            // Scan a fixed window so the pass count does not depend
            // on the (secret) pad value.
            size_t scan = std::min<size_t>(fragment.size() - 1, 255);
            uint8_t diff = 0;
            for (size_t i = 0; i < scan; ++i) {
                // Mask is all-ones for positions inside the padding.
                uint8_t in_pad = static_cast<uint8_t>(
                    0 - static_cast<uint8_t>(i < pad));
                diff |= static_cast<uint8_t>(
                    (fragment[fragment.size() - 2 - i] ^ pad) &
                    in_pad);
            }
            pad_valid &= static_cast<size_t>(diff == 0);
        }
        // On invalid padding, proceed with a zero-length pad so the
        // MAC is still computed (and fails) over a plausible region.
        size_t claimed = pad & (0 - pad_valid);
        data_len = fragment.size() - 1 - claimed;
    }
    if (data_len < mac_len)
        throw SslError(AlertDescription::BadRecordMac,
                       "record: bad record MAC");
    data_len -= mac_len;

    Bytes expect = computeMac(recv_, static_cast<uint8_t>(type),
                              fragment.data(), data_len, recv_.seq++);
    size_t mac_valid = static_cast<size_t>(constantTimeEquals(
        expect.data(), fragment.data() + data_len, mac_len));
    if (!(pad_valid & mac_valid))
        throw SslError(AlertDescription::BadRecordMac,
                       "record: bad record MAC");

    fragment.resize(data_len);
    obs_->recordsIn.inc();
    obs_->bytesIn.inc(fragment.size());
    return Record{type, std::move(fragment)};
}

} // namespace ssla::ssl

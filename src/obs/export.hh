/**
 * @file
 * Exporters for the observability layer.
 *
 *  - ChromeTraceCollector: a TraceSink that accumulates completed
 *    session traces and writes Chrome trace_event JSON loadable in
 *    chrome://tracing or Perfetto. Each worker (and each crypto-pool
 *    thread) gets its own named track; within a worker, server and
 *    client endpoints render as sub-tracks. Handshake states become
 *    "X" complete spans, point events become "i" instants, and the
 *    session lifetime is an async "b"/"e" span keyed by the session
 *    serial.
 *  - JsonlTraceSink: streams one JSON object per trace event, one per
 *    line — flat, greppable, suitable for piping into jq.
 *  - writeMetricsText: plain-text snapshot dump (counters, gauges and
 *    histogram percentiles) for bench stderr summaries.
 *
 * Both sinks are thread-safe; engine workers dump concurrently.
 */

#ifndef SSLA_OBS_EXPORT_HH
#define SSLA_OBS_EXPORT_HH

#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace ssla::obs
{

/** Track offset for crypto-pool threads (worker tracks start at 0). */
constexpr uint32_t cryptoTrackBase = 1000;

/** Track for the Supervisor's control-plane events (restarts). */
constexpr uint32_t supervisorTrack = 999;

/**
 * Escape a string for embedding in a JSON string literal: quotes,
 * backslashes and all control characters (the latter as \u00XX).
 */
std::string jsonEscape(std::string_view s);

/** Collects traces and renders Chrome trace_event JSON. */
class ChromeTraceCollector : public TraceSink
{
  public:
    void dump(const SessionTrace &trace) override;

    /** Number of traces captured so far. */
    size_t traceCount() const;

    /** Render every captured trace as a trace_event JSON document. */
    void write(std::FILE *out) const;

    /** write() to @p path; returns false on I/O failure. */
    bool writeFile(const std::string &path) const;

  private:
    struct Captured
    {
        uint64_t serial;
        uint32_t track;
        std::string outcome;
        uint64_t dropped;
        std::vector<TraceEvent> events;
    };

    mutable std::mutex m_;
    std::vector<Captured> traces_;
};

/** Streams each dumped trace as one JSON object per event per line. */
class JsonlTraceSink : public TraceSink
{
  public:
    /** Does not take ownership of @p out. */
    explicit JsonlTraceSink(std::FILE *out) : out_(out) {}

    void dump(const SessionTrace &trace) override;

  private:
    std::mutex m_;
    std::FILE *out_;
};

/** Plain-text metrics dump: counters, gauges, histogram percentiles. */
void writeMetricsText(std::FILE *out, const MetricsSnapshot &snap);

/**
 * Prometheus text exposition (format 0.0.4) of a snapshot: counters as
 * `<name>_total`, gauges verbatim, histograms as summaries (quantile
 * series plus `_sum`/`_count`). Metric names are sanitized to the
 * Prometheus charset (dots and dashes become underscores), so
 * "serve.park_events" scrapes as serve_park_events_total. This is what
 * the web server's /metrics route serves.
 */
void writePrometheusText(std::FILE *out, const MetricsSnapshot &snap);

/** writePrometheusText into a string (for HTTP response bodies). */
std::string prometheusText(const MetricsSnapshot &snap);

} // namespace ssla::obs

#endif // SSLA_OBS_EXPORT_HH

/**
 * @file
 * Extension bench: RSA vs ephemeral-DH key exchange cost, server
 * side. The paper names Diffie-Hellman as the other handshake
 * asymmetric primitive (Section 2); this quantifies what swapping it
 * in costs: the server trades one RSA private decryption for an RSA
 * private *signature* plus two DH exponentiations.
 */

#include <cstdio>
#include <memory>

#include "common.hh"
#include "perf/probe.hh"
#include "perf/report.hh"
#include "ssl/client.hh"
#include "ssl/server.hh"

using namespace ssla;
using namespace ssla::ssl;
using perf::TablePrinter;

namespace
{

struct Result
{
    double totalKc = 0;
    double rsaDecKc = 0;
    double rsaSignKc = 0;
    double dhGenKc = 0;
    double dhComputeKc = 0;
};

Result
profile(CipherSuiteId suite, int runs)
{
    const auto &key = bench::benchKey(1024);
    pki::CertificateInfo info;
    info.serial = 1;
    info.issuer = "Bench CA";
    info.subject = "bench.server";
    info.notBefore = 0;
    info.notAfter = ~uint64_t(0);
    info.publicKey = key.pub;
    pki::Certificate cert = pki::Certificate::issue(info, *key.priv);

    perf::PerfContext ctx;
    uint64_t cycles = 0;
    for (int i = 0; i < runs + 1; ++i) {
        if (i == 1) { // discard the warm-up run
            ctx.clear();
            cycles = 0;
        }
        BioPair wires;
        ServerConfig scfg;
        scfg.certificate = cert;
        scfg.privateKey = key.priv;
        scfg.suites = {suite};

        std::unique_ptr<SslServer> server;
        {
            perf::ContextScope scope(&ctx);
            uint64_t t0 = rdcycles();
            server =
                std::make_unique<SslServer>(scfg, wires.serverEnd());
            cycles += rdcycles() - t0;
        }
        SslClient client(ClientConfig{}, wires.clientEnd());
        while (!client.handshakeDone() || !server->handshakeDone()) {
            bool progress = client.advance();
            {
                perf::ContextScope scope(&ctx);
                uint64_t t0 = rdcycles();
                progress |= server->advance();
                cycles += rdcycles() - t0;
            }
            if (!progress)
                throw std::runtime_error("deadlock");
        }
    }

    Result r;
    r.totalKc = static_cast<double>(cycles) / runs / 1e3;
    auto kc = [&](const char *name) {
        return static_cast<double>(ctx.cyclesFor(name)) / runs / 1e3;
    };
    r.rsaDecKc = kc("rsa_private_decryption");
    r.rsaSignKc = kc("rsa_private_encryption");
    r.dhGenKc = kc("dh_generate_key");
    r.dhComputeKc = kc("dh_compute_key");
    return r;
}

} // anonymous namespace

int
main()
{
    constexpr int runs = 30;
    Result rsa = profile(CipherSuiteId::RSA_AES_128_CBC_SHA, runs);
    Result dhe = profile(CipherSuiteId::DHE_RSA_AES_128_CBC_SHA, runs);

    TablePrinter table(
        "Extension: RSA vs DHE_RSA key exchange, server-side "
        "handshake cost (kcycles, RSA-1024 / Oakley group 2)");
    table.setHeader({"metric", "RSA kx", "DHE_RSA kx"});
    auto row = [&](const char *name, double a, double b) {
        table.addRow({name, perf::fmtF(a, 1), perf::fmtF(b, 1)});
    };
    row("total server handshake", rsa.totalKc, dhe.totalKc);
    row("rsa_private_decryption", rsa.rsaDecKc, dhe.rsaDecKc);
    row("rsa_private_encryption (sign)", rsa.rsaSignKc, dhe.rsaSignKc);
    row("dh_generate_key", rsa.dhGenKc, dhe.dhGenKc);
    row("dh_compute_key", rsa.dhComputeKc, dhe.dhComputeKc);
    table.print();

    std::printf("\nDHE buys forward secrecy by ADDING asymmetric work "
                "on the server: the signature costs what the RSA "
                "decryption did, plus two 1024-bit DH exponentiations "
                "(%.1fx total vs plain RSA).\n",
                dhe.totalKc / rsa.totalKc);
    return 0;
}

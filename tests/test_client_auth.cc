/**
 * @file
 * Mutual (client-certificate) authentication tests: the
 * CertificateRequest / client Certificate / CertificateVerify path
 * the paper's Table 2 shows as "skip cert_req" and "get_cert_verify"
 * for its server-auth-only suite.
 */

#include <gtest/gtest.h>

#include "perf/probe.hh"
#include "ssl/client.hh"
#include "ssl/server.hh"
#include "util/bytes.hh"

#include "testkeys.hh"

namespace
{

using namespace ssla;
using namespace ssla::ssl;

/** Client identity: self-signed certificate over its own key. */
struct ClientIdentity
{
    crypto::RsaKeyPair key;
    pki::Certificate cert;

    ClientIdentity()
    {
        key = crypto::rsaGenerateKey(512, test::seededRng(0xc11e));
        pki::CertificateInfo info;
        info.serial = 77;
        info.issuer = "client.user";
        info.subject = "client.user";
        info.notBefore = 0;
        info.notAfter = 2000000000;
        info.publicKey = key.pub;
        cert = pki::Certificate::issue(info, *key.priv);
    }
};

ClientIdentity &
clientIdentity()
{
    static ClientIdentity id;
    return id;
}

struct MutualHarness
{
    BioPair wires;
    ServerConfig scfg;
    ClientConfig ccfg;

    MutualHarness()
    {
        scfg.certificate = test::testServerCert();
        scfg.privateKey = test::testKey1024().priv;
        scfg.requestClientCertificate = true;
        ccfg.clientCertificate = clientIdentity().cert;
        ccfg.clientKey = clientIdentity().key.priv;
    }
};

TEST(ClientAuth, MutualHandshakeCompletes)
{
    MutualHarness h;
    SslServer server(h.scfg, h.wires.serverEnd());
    SslClient client(h.ccfg, h.wires.clientEnd());
    runLockstep(client, server);
    EXPECT_TRUE(client.handshakeDone());
    EXPECT_TRUE(server.handshakeDone());

    client.writeApplicationData(toBytes("mutually authenticated"));
    auto got = server.readApplicationData();
    ASSERT_TRUE(got);
    EXPECT_EQ(toString(*got), "mutually authenticated");
}

TEST(ClientAuth, MutualHandshakeOverTls)
{
    MutualHarness h;
    h.ccfg.maxVersion = tls1Version;
    SslServer server(h.scfg, h.wires.serverEnd());
    SslClient client(h.ccfg, h.wires.clientEnd());
    runLockstep(client, server);
    EXPECT_EQ(client.negotiatedVersion(), tls1Version);
    EXPECT_TRUE(server.handshakeDone());
}

TEST(ClientAuth, CertVerifyProbesFire)
{
    perf::PerfContext ctx;
    MutualHarness h;
    std::unique_ptr<SslServer> server;
    {
        perf::ContextScope scope(&ctx);
        server =
            std::make_unique<SslServer>(h.scfg, h.wires.serverEnd());
    }
    SslClient client(h.ccfg, h.wires.clientEnd());
    while (!client.handshakeDone() || !server->handshakeDone()) {
        bool progress = client.advance();
        {
            perf::ContextScope scope(&ctx);
            progress |= server->advance();
        }
        ASSERT_TRUE(progress);
    }
    EXPECT_TRUE(ctx.counters().count("step3c_send_cert_request"));
    EXPECT_TRUE(ctx.counters().count("step5a_get_client_cert"));
    EXPECT_TRUE(ctx.counters().count("step5b_get_cert_verify"));
    EXPECT_TRUE(ctx.counters().count("cert_verify_mac"));
}

TEST(ClientAuth, ClientWithoutCertAcceptedWhenOptional)
{
    MutualHarness h;
    h.ccfg.clientCertificate.reset();
    h.ccfg.clientKey.reset();
    SslServer server(h.scfg, h.wires.serverEnd());
    SslClient client(h.ccfg, h.wires.clientEnd());
    runLockstep(client, server);
    EXPECT_TRUE(server.handshakeDone());
}

TEST(ClientAuth, ClientWithoutCertRejectedWhenRequired)
{
    MutualHarness h;
    h.scfg.requireClientCertificate = true;
    h.ccfg.clientCertificate.reset();
    h.ccfg.clientKey.reset();
    SslServer server(h.scfg, h.wires.serverEnd());
    SslClient client(h.ccfg, h.wires.clientEnd());
    try {
        runLockstep(client, server);
        FAIL() << "handshake should have failed";
    } catch (const SslError &e) {
        EXPECT_EQ(e.alert(), AlertDescription::NoCertificate);
    }
}

TEST(ClientAuth, WrongClientKeyRejected)
{
    // Client presents a certificate but signs CertificateVerify with
    // a different key: the server must reject the proof.
    MutualHarness h;
    h.ccfg.clientKey = test::otherKey1024().priv; // mismatched
    SslServer server(h.scfg, h.wires.serverEnd());
    SslClient client(h.ccfg, h.wires.clientEnd());
    try {
        runLockstep(client, server);
        FAIL() << "handshake should have failed";
    } catch (const SslError &e) {
        EXPECT_EQ(e.alert(), AlertDescription::HandshakeFailure);
    }
}

TEST(ClientAuth, UntrustedClientCertRejected)
{
    // Server anchors client certs to a specific issuer; a self-signed
    // cert from someone else fails.
    MutualHarness h;
    h.scfg.clientTrustedIssuer = &test::otherKey1024().pub;
    SslServer server(h.scfg, h.wires.serverEnd());
    SslClient client(h.ccfg, h.wires.clientEnd());
    try {
        runLockstep(client, server);
        FAIL() << "handshake should have failed";
    } catch (const SslError &e) {
        EXPECT_EQ(e.alert(), AlertDescription::BadCertificate);
    }
}

TEST(ClientAuth, TrustedIssuerAccepted)
{
    // Anchor the server to the client's own key (self-signed cert).
    MutualHarness h;
    h.scfg.clientTrustedIssuer = &clientIdentity().key.pub;
    SslServer server(h.scfg, h.wires.serverEnd());
    SslClient client(h.ccfg, h.wires.clientEnd());
    runLockstep(client, server);
    EXPECT_TRUE(server.handshakeDone());
}

TEST(ClientAuth, NoRequestMeansNoClientCert)
{
    // Without CertificateRequest the client must not volunteer its
    // certificate; the handshake is the plain server-auth one.
    MutualHarness h;
    h.scfg.requestClientCertificate = false;
    perf::PerfContext ctx;
    std::unique_ptr<SslServer> server;
    {
        perf::ContextScope scope(&ctx);
        server =
            std::make_unique<SslServer>(h.scfg, h.wires.serverEnd());
    }
    SslClient client(h.ccfg, h.wires.clientEnd());
    while (!client.handshakeDone() || !server->handshakeDone()) {
        bool progress = client.advance();
        {
            perf::ContextScope scope(&ctx);
            progress |= server->advance();
        }
        ASSERT_TRUE(progress);
    }
    EXPECT_FALSE(ctx.counters().count("step5a_get_client_cert"));
    EXPECT_FALSE(ctx.counters().count("step5b_get_cert_verify"));
}

TEST(ClientAuth, MutualWithDheSuite)
{
    MutualHarness h;
    h.scfg.suites = {CipherSuiteId::DHE_RSA_AES_128_CBC_SHA};
    SslServer server(h.scfg, h.wires.serverEnd());
    SslClient client(h.ccfg, h.wires.clientEnd());
    runLockstep(client, server);
    EXPECT_TRUE(server.handshakeDone());
    EXPECT_EQ(server.suite().kx, KxKind::DheRsa);
}

} // anonymous namespace

#include "ssl/shardcache.hh"

namespace ssla::ssl
{

namespace
{

/** FNV-1a over the session id (ids are uniform, this just mixes). */
uint64_t
fnv1a(const Bytes &id)
{
    uint64_t h = 1469598103934665603ull;
    for (uint8_t b : id) {
        h ^= b;
        h *= 1099511628211ull;
    }
    return h;
}

} // anonymous namespace

ShardedSessionCache::ShardedSessionCache(size_t shards,
                                         size_t max_entries_per_shard,
                                         uint64_t ttl_seconds)
{
    if (shards == 0)
        shards = 1;
    shards_.reserve(shards);
    for (size_t i = 0; i < shards; ++i)
        shards_.push_back(
            std::make_unique<Shard>(max_entries_per_shard, ttl_seconds));
    bindMetrics(nullptr);
}

void
ShardedSessionCache::bindMetrics(obs::MetricsRegistry *reg)
{
    obs::MetricsRegistry &r =
        reg ? *reg : obs::MetricsRegistry::global();
    ctrHits_ = r.counter("cache.hits");
    ctrMisses_ = r.counter("cache.misses");
    ctrStores_ = r.counter("cache.stores");
    ctrRemoves_ = r.counter("cache.removes");
    ctrExpired_ = r.counter("cache.expired");
    ctrEvicted_ = r.counter("cache.evicted");
}

size_t
ShardedSessionCache::shardIndexFor(const Bytes &id) const
{
    return static_cast<size_t>(fnv1a(id) % shards_.size());
}

ShardedSessionCache::Shard &
ShardedSessionCache::shardFor(const Bytes &id)
{
    return *shards_[shardIndexFor(id)];
}

void
ShardedSessionCache::store(const Session &session)
{
    if (!session.valid())
        return;
    Shard &s = shardFor(session.id);
    std::lock_guard<std::mutex> lock(s.m);
    size_t before = s.cache.size();
    s.cache.store(session);
    ctrStores_.inc();
    // A store into a full shard that did not grow it displaced an LRU
    // entry (or overwrote an existing id — rare with random 32-byte
    // ids); either way capacity pressure, which is what the evicted
    // counter monitors.
    if (s.cache.size() == before)
        ctrEvicted_.inc();
}

std::optional<Session>
ShardedSessionCache::find(const Bytes &id)
{
    Shard &s = shardFor(id);
    std::lock_guard<std::mutex> lock(s.m);
    uint64_t expiredBefore = s.cache.expirations();
    auto found = s.cache.find(id);
    if (found)
        ctrHits_.inc();
    else
        ctrMisses_.inc();
    uint64_t expired = s.cache.expirations() - expiredBefore;
    if (expired)
        ctrExpired_.inc(expired);
    return found;
}

void
ShardedSessionCache::remove(const Bytes &id)
{
    Shard &s = shardFor(id);
    std::lock_guard<std::mutex> lock(s.m);
    s.cache.remove(id);
    ctrRemoves_.inc();
}

size_t
ShardedSessionCache::size() const
{
    size_t total = 0;
    for (const auto &s : shards_) {
        std::lock_guard<std::mutex> lock(s->m);
        total += s->cache.size();
    }
    return total;
}

uint64_t
ShardedSessionCache::hits() const
{
    uint64_t total = 0;
    for (const auto &s : shards_) {
        std::lock_guard<std::mutex> lock(s->m);
        total += s->cache.hits();
    }
    return total;
}

uint64_t
ShardedSessionCache::misses() const
{
    uint64_t total = 0;
    for (const auto &s : shards_) {
        std::lock_guard<std::mutex> lock(s->m);
        total += s->cache.misses();
    }
    return total;
}

uint64_t
ShardedSessionCache::expirations() const
{
    uint64_t total = 0;
    for (const auto &s : shards_) {
        std::lock_guard<std::mutex> lock(s->m);
        total += s->cache.expirations();
    }
    return total;
}

void
ShardedSessionCache::setClock(std::function<uint64_t()> clock)
{
    for (const auto &s : shards_) {
        std::lock_guard<std::mutex> lock(s->m);
        s->cache.setClock(clock);
    }
}

} // namespace ssla::ssl

#include "perf/report.hh"

#include <cstdarg>
#include <cstdint>

namespace ssla::perf
{

void
TablePrinter::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
TablePrinter::addRow(std::vector<std::string> row)
{
    rows_.push_back(std::move(row));
}

void
TablePrinter::addRule()
{
    rows_.push_back({"---RULE---"});
}

void
TablePrinter::print(std::FILE *out) const
{
    size_t ncols = header_.size();
    for (const auto &r : rows_)
        ncols = std::max(ncols, r.size());

    std::vector<size_t> width(ncols, 0);
    for (size_t i = 0; i < header_.size(); ++i)
        width[i] = header_[i].size();
    for (const auto &r : rows_) {
        if (r.size() == 1 && r[0] == "---RULE---")
            continue;
        for (size_t i = 0; i < r.size(); ++i)
            width[i] = std::max(width[i], r[i].size());
    }

    size_t line_len = 2;
    for (size_t w : width)
        line_len += w + 3;

    auto rule = [&]() {
        for (size_t i = 0; i < line_len; ++i)
            std::fputc('-', out);
        std::fputc('\n', out);
    };

    std::fprintf(out, "\n%s\n", title_.c_str());
    rule();
    if (!header_.empty()) {
        std::fputs("| ", out);
        for (size_t i = 0; i < ncols; ++i) {
            const std::string &cell =
                i < header_.size() ? header_[i] : std::string();
            std::fprintf(out, "%-*s | ", static_cast<int>(width[i]),
                         cell.c_str());
        }
        std::fputc('\n', out);
        rule();
    }
    for (const auto &r : rows_) {
        if (r.size() == 1 && r[0] == "---RULE---") {
            rule();
            continue;
        }
        std::fputs("| ", out);
        for (size_t i = 0; i < ncols; ++i) {
            const std::string &cell = i < r.size() ? r[i] : std::string();
            std::fprintf(out, "%-*s | ", static_cast<int>(width[i]),
                         cell.c_str());
        }
        std::fputc('\n', out);
    }
    rule();
}

std::string
fmt(const char *format, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, format);
    std::vsnprintf(buf, sizeof(buf), format, ap);
    va_end(ap);
    return buf;
}

std::string
fmtF(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

std::string
fmtPct(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, value);
    return buf;
}

std::string
fmtCount(uint64_t value)
{
    std::string digits = std::to_string(value);
    std::string out;
    int cnt = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (cnt && cnt % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
        ++cnt;
    }
    return std::string(out.rbegin(), out.rend());
}

} // namespace ssla::perf

#include "util/rng.hh"

namespace ssla
{

namespace
{

uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl64(uint64_t v, int n)
{
    return (v << n) | (v >> (64 - n));
}

} // anonymous namespace

Xoshiro256::Xoshiro256(uint64_t seed)
{
    for (auto &s : s_)
        s = splitmix64(seed);
}

uint64_t
Xoshiro256::next()
{
    uint64_t result = rotl64(s_[1] * 5, 7) * 9;
    uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl64(s_[3], 45);
    return result;
}

uint64_t
Xoshiro256::nextBelow(uint64_t bound)
{
    // Rejection sampling to avoid modulo bias.
    uint64_t threshold = (0 - bound) % bound;
    uint64_t r;
    do {
        r = next();
    } while (r < threshold);
    return r % bound;
}

double
Xoshiro256::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

void
Xoshiro256::fill(uint8_t *out, size_t len)
{
    size_t i = 0;
    while (i + 8 <= len) {
        uint64_t v = next();
        for (int b = 0; b < 8; ++b)
            out[i++] = static_cast<uint8_t>(v >> (8 * b));
    }
    if (i < len) {
        uint64_t v = next();
        while (i < len) {
            out[i++] = static_cast<uint8_t>(v);
            v >>= 8;
        }
    }
}

Bytes
Xoshiro256::bytes(size_t len)
{
    Bytes out(len);
    fill(out.data(), len);
    return out;
}

} // namespace ssla

# Empty dependencies file for ssla_util.
# This may be replaced when dependencies are built.

/**
 * @file
 * Reproduces Table 10: MD5 and SHA-1 execution time breakdown into
 * init / update / final phases over a 1024-byte input.
 */

#include <cstdio>

#include "common.hh"
#include "crypto/md5.hh"
#include "crypto/sha1.hh"
#include "perf/report.hh"

using namespace ssla;
using namespace ssla::crypto;
using perf::TablePrinter;

namespace
{

struct Phases
{
    double init, update, final;
};

template <class Hash>
Phases
measure(const Bytes &data)
{
    constexpr int iters = 2000;
    constexpr int reps = 9;
    Hash h;
    uint8_t out[32];
    volatile uint8_t sink = 0;

    // The phases nest (init < init+update < init+update+final), so
    // each phase cost is a difference of two measurements. Interleave
    // the measurements and take medians so slow drift (frequency,
    // interrupts) cancels instead of accumulating into the smaller
    // phases.
    std::vector<double> t_init, t_upd, t_all;
    for (int r = 0; r < reps; ++r) {
        t_init.push_back(
            bench::cyclesPerCall([&] { h.init(); }, iters));
        t_upd.push_back(bench::cyclesPerCall(
            [&] {
                h.init();
                h.update(data.data(), data.size());
            },
            iters));
        t_all.push_back(bench::cyclesPerCall(
            [&] {
                h.init();
                h.update(data.data(), data.size());
                h.final(out);
                sink = sink ^ out[0];
            },
            iters));
    }
    auto median = [](std::vector<double> &v) {
        std::sort(v.begin(), v.end());
        return v[v.size() / 2];
    };
    Phases p;
    p.init = median(t_init);
    p.update = std::max(0.0, median(t_upd) - p.init);
    p.final = std::max(0.0, median(t_all) - p.update - p.init);
    return p;
}

} // anonymous namespace

int
main()
{
    bench::warmUpCpu();
    Bytes data = bench::benchPayload(1024, 10);
    Phases md5 = measure<Md5>(data);
    Phases sha1 = measure<Sha1>(data);

    double md5_total = md5.init + md5.update + md5.final;
    double sha1_total = sha1.init + sha1.update + sha1.final;

    TablePrinter table(
        "Table 10: MD5/SHA-1 execution time breakdown "
        "(1024-byte input, cycles)");
    table.setHeader({"Step", "Functionality", "MD5 cyc", "MD5 %",
                     "paper %", "SHA-1 cyc", "SHA-1 %", "paper %"});
    table.addRow({"1", "Init", perf::fmtF(md5.init, 0),
                  perf::fmtPct(100 * md5.init / md5_total, 2), "0.88",
                  perf::fmtF(sha1.init, 0),
                  perf::fmtPct(100 * sha1.init / sha1_total, 2),
                  "0.62"});
    table.addRow({"2", "Update", perf::fmtF(md5.update, 0),
                  perf::fmtPct(100 * md5.update / md5_total, 2),
                  "90.88", perf::fmtF(sha1.update, 0),
                  perf::fmtPct(100 * sha1.update / sha1_total, 2),
                  "92.05"});
    table.addRow({"3", "Final", perf::fmtF(md5.final, 0),
                  perf::fmtPct(100 * md5.final / md5_total, 2), "8.24",
                  perf::fmtF(sha1.final, 0),
                  perf::fmtPct(100 * sha1.final / sha1_total, 2),
                  "7.33"});
    table.addRule();
    table.addRow({"", "Total", perf::fmtF(md5_total, 0), "100%", "100",
                  perf::fmtF(sha1_total, 0), "100%", "100"});
    table.print();

    std::printf("\npaper totals: 6,679 cycles (MD5), 10,723 cycles "
                "(SHA-1); SHA-1 is the more compute-intensive hash\n");
    return 0;
}

# Empty compiler generated dependencies file for ssla_web.
# This may be replaced when dependencies are built.

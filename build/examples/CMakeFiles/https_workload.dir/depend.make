# Empty dependencies file for https_workload.
# This may be replaced when dependencies are built.

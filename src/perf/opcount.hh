/**
 * @file
 * Abstract micro-op accounting — the reproduction's substitute for the
 * paper's SoftSDV instruction traces (Section 3.3).
 *
 * Each hot crypto kernel in this library is written once as a template
 * over a Meter policy. Instantiated with NullMeter the counting code
 * vanishes and the kernel is the production path; instantiated with
 * CountingMeter it tallies the x86-32-flavoured operations the kernel
 * performs, yielding the instruction mixes of the paper's Tables 9/12,
 * the path lengths of Table 11, and the input to the CPI model.
 *
 * Op classes are named after the 32-bit x86 mnemonics the paper reports
 * so the projection to its tables is direct. The counts a kernel emits
 * correspond to a 2005-era -O2 compilation for the Pentium 4: each
 * memory access is a MovL/MovB, arithmetic is reg-reg, and kernels add a
 * documented register-spill allowance (x86-32 exposes only ~7 usable
 * GPRs) counted as extra MovL.
 */

#ifndef SSLA_PERF_OPCOUNT_HH
#define SSLA_PERF_OPCOUNT_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace ssla::perf
{

/** x86-32-flavoured abstract operation classes. */
enum class OpClass : uint8_t
{
    MovL,   ///< 32-bit move (load, store or reg-reg)
    MovB,   ///< byte move / zero-extending byte load
    XorL,
    XorB,
    AndL,
    OrL,
    AddL,
    AddB,
    AdcL,   ///< add with carry (multi-precision arithmetic)
    SubL,
    SbbL,   ///< subtract with borrow
    MulL,   ///< 32x32 -> 64 widening multiply
    ShrL,
    ShlL,
    RolL,
    RorL,
    LeaL,   ///< address-generation add (compilers love it in MD5)
    IncL,
    DecL,
    CmpL,
    Jcc,    ///< conditional branch (jnz etc.)
    Jmp,
    Push,
    Pop,
    Call,
    Ret,
    Bswap,
    Nop,
    NumOpClasses
};

constexpr size_t numOpClasses =
    static_cast<size_t>(OpClass::NumOpClasses);

/** Printable mnemonic for an op class ("movl", "adcl", ...). */
const char *opClassName(OpClass c);

/** A histogram of abstract op counts. */
class OpHistogram
{
  public:
    OpHistogram() { counts_.fill(0); }

    void
    add(OpClass c, uint64_t n = 1)
    {
        counts_[static_cast<size_t>(c)] += n;
    }

    uint64_t
    count(OpClass c) const
    {
        return counts_[static_cast<size_t>(c)];
    }

    /** Total dynamic op count. */
    uint64_t total() const;

    /** Merge another histogram into this one. */
    void merge(const OpHistogram &other);

    /** Scale every bucket by an integer factor. */
    void scale(uint64_t factor);

    void clear() { counts_.fill(0); }

    /** (mnemonic, share-of-total) pairs sorted descending, top @p n. */
    std::vector<std::pair<std::string, double>> topOps(size_t n) const;

    const std::array<uint64_t, numOpClasses> &raw() const
    {
        return counts_;
    }

  private:
    std::array<uint64_t, numOpClasses> counts_;
};

/** Meter policy that compiles to nothing: the production path. */
struct NullMeter
{
    static constexpr bool counting = false;
    void count(OpClass, uint64_t = 1) {}
};

/** Meter policy that tallies ops into a histogram. */
struct CountingMeter
{
    static constexpr bool counting = true;

    void count(OpClass c, uint64_t n = 1) { hist.add(c, n); }

    OpHistogram hist;
};

} // namespace ssla::perf

#endif // SSLA_PERF_OPCOUNT_HH

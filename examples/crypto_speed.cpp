/**
 * @file
 * An `openssl speed`-style tool over this library's crypto: throughput
 * of every digest and cipher at several buffer sizes, plus RSA
 * sign/verify/encrypt/decrypt operation rates.
 *
 *   ./crypto_speed
 */

#include <cstdio>

#include "crypto/cipher.hh"
#include "crypto/md5.hh"
#include "crypto/provider.hh"
#include "crypto/rsa.hh"
#include "crypto/sha1.hh"
#include "perf/report.hh"
#include "util/cycles.hh"
#include "util/rng.hh"

using namespace ssla;
using namespace ssla::crypto;

namespace
{

Bytes
payload(size_t len)
{
    Xoshiro256 rng(len);
    return rng.bytes(len);
}

template <class F>
double
mbPerSecond(F &&fn, size_t bytes)
{
    // Run for ~20ms of cycles.
    fn();
    uint64_t budget = static_cast<uint64_t>(cycleHz() * 0.02);
    uint64_t t0 = rdcycles();
    uint64_t iters = 0;
    while (rdcycles() - t0 < budget) {
        fn();
        ++iters;
    }
    double secs = cyclesToSeconds(rdcycles() - t0);
    return static_cast<double>(bytes) * iters / 1e6 / secs;
}

} // anonymous namespace

int
main()
{
    const size_t sizes[] = {64, 256, 1024, 8192};

    perf::TablePrinter digests("Digest throughput (MB/s)");
    digests.setHeader({"algorithm", "64B", "256B", "1KB", "8KB"});
    for (DigestAlg alg : {DigestAlg::MD5, DigestAlg::SHA1}) {
        auto d = scalarProvider().createDigest(alg);
        std::vector<std::string> row{d->name()};
        for (size_t len : sizes) {
            Bytes data = payload(len);
            uint8_t out[32];
            row.push_back(perf::fmtF(
                mbPerSecond(
                    [&] {
                        d->init();
                        d->update(data.data(), len);
                        d->final(out);
                    },
                    len),
                1));
        }
        digests.addRow(row);
    }
    digests.print();

    perf::TablePrinter ciphers("Cipher throughput (MB/s)");
    ciphers.setHeader({"algorithm", "64B", "256B", "1KB", "8KB"});
    for (CipherAlg alg :
         {CipherAlg::Rc4_128, CipherAlg::DesCbc, CipherAlg::Des3Cbc,
          CipherAlg::Aes128Cbc, CipherAlg::Aes256Cbc}) {
        const auto &info = cipherInfo(alg);
        Xoshiro256 rng(static_cast<uint64_t>(alg));
        Bytes key = rng.bytes(info.keyLen);
        Bytes iv = rng.bytes(info.ivLen);
        auto cipher = scalarProvider().createCipher(alg, key, iv, true);
        std::vector<std::string> row{info.name};
        for (size_t len : sizes) {
            Bytes data = payload(len);
            row.push_back(perf::fmtF(
                mbPerSecond(
                    [&] {
                        cipher->process(data.data(), data.data(), len);
                    },
                    len),
                1));
        }
        ciphers.addRow(row);
    }
    ciphers.print();

    perf::TablePrinter rsa("RSA operation rates (ops/s)");
    rsa.setHeader(
        {"key", "encrypt", "decrypt", "sign", "verify"});
    for (size_t bits : {512u, 1024u}) {
        Xoshiro256 seed(bits);
        bn::RngFunc rng = [&](uint8_t *o, size_t l) { seed.fill(o, l); };
        std::printf("generating RSA-%zu key...\n", bits);
        RsaKeyPair kp = rsaGenerateKey(bits, rng);
        RandomPool pool(Bytes{static_cast<uint8_t>(bits)});
        Bytes msg(36, 0x31);
        Bytes cipher = rsaPublicEncrypt(kp.pub, msg, pool);
        Bytes sig = rsaSign(*kp.priv, msg);

        auto ops = [&](auto &&fn) {
            fn();
            uint64_t budget =
                static_cast<uint64_t>(cycleHz() * 0.05);
            uint64_t t0 = rdcycles();
            uint64_t iters = 0;
            while (rdcycles() - t0 < budget) {
                fn();
                ++iters;
            }
            return static_cast<double>(iters) /
                   cyclesToSeconds(rdcycles() - t0);
        };
        rsa.addRow(
            {perf::fmt("%zu bits", bits),
             perf::fmtF(ops([&] { rsaPublicEncrypt(kp.pub, msg, pool); }),
                        0),
             perf::fmtF(ops([&] { rsaPrivateDecrypt(*kp.priv, cipher); }),
                        0),
             perf::fmtF(ops([&] { rsaSign(*kp.priv, msg); }), 0),
             perf::fmtF(ops([&] { rsaVerify(kp.pub, msg, sig); }), 0)});
    }
    rsa.print();
    return 0;
}

file(REMOVE_RECURSE
  "CMakeFiles/bench_resumption.dir/bench_resumption.cc.o"
  "CMakeFiles/bench_resumption.dir/bench_resumption.cc.o.d"
  "bench_resumption"
  "bench_resumption.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_resumption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

/**
 * @file
 * Composable analysis-pass framework (the PerFlow-style layer).
 *
 * A Pass is a pure function over the ingested Corpus: it inspects the
 * event graph and appends preformatted lines to its Report section.
 * Passes never mutate the corpus and hold no state between runs, so
 * running the same pass twice over the same input yields byte-identical
 * output — CI leans on that to diff two analyzer runs.
 *
 * Pass API contract (see DESIGN.md §4j):
 *  - name(): stable CLI identifier ("critical_path"),
 *  - description(): one-line help text,
 *  - run(corpus, report): read-only walk; all iteration must be over
 *    deterministically ordered containers (the corpus sorts sessions
 *    by (track, serial); passes use std::map for aggregation).
 */

#ifndef SSLA_OBS_ANALYSIS_PASS_HH
#define SSLA_OBS_ANALYSIS_PASS_HH

#include <memory>
#include <string>
#include <vector>

#include "obs/analysis/model.hh"

namespace ssla::obs::analysis
{

/** Ordered, preformatted analysis output. */
class Report
{
  public:
    struct Section
    {
        std::string title;
        std::vector<std::string> lines;
    };

    /** Append (or reopen) a titled section. */
    Section &
    section(const std::string &title)
    {
        for (auto &s : sections_)
            if (s.title == title)
                return s;
        sections_.push_back({title, {}});
        return sections_.back();
    }

    const std::vector<Section> &sections() const { return sections_; }

    /** Render the whole report as stable plain text. */
    std::string render() const;

  private:
    std::vector<Section> sections_;
};

/** printf-style formatting into a std::string (report lines). */
std::string strf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** One registered analysis. */
class Pass
{
  public:
    virtual ~Pass() = default;
    virtual const char *name() const = 0;
    virtual const char *description() const = 0;
    virtual void run(const Corpus &corpus, Report &report) const = 0;
};

/** Registration-ordered pass collection. */
class PassRegistry
{
  public:
    void
    add(std::unique_ptr<Pass> pass)
    {
        passes_.push_back(std::move(pass));
    }

    const Pass *
    find(std::string_view name) const
    {
        for (const auto &p : passes_)
            if (name == p->name())
                return p.get();
        return nullptr;
    }

    std::vector<const Pass *>
    all() const
    {
        std::vector<const Pass *> out;
        out.reserve(passes_.size());
        for (const auto &p : passes_)
            out.push_back(p.get());
        return out;
    }

  private:
    std::vector<std::unique_ptr<Pass>> passes_;
};

/** Registry holding the built-in trace passes, registration order:
 *  summary, critical_path, worker_imbalance, queue_delay,
 *  outcome_clusters. */
PassRegistry makeBuiltinRegistry();

} // namespace ssla::obs::analysis

#endif // SSLA_OBS_ANALYSIS_PASS_HH

# Empty compiler generated dependencies file for ssla_pki.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for ssla_crypto.
# This may be replaced when dependencies are built.

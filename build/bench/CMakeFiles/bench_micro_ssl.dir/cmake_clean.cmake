file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_ssl.dir/bench_micro_ssl.cc.o"
  "CMakeFiles/bench_micro_ssl.dir/bench_micro_ssl.cc.o.d"
  "bench_micro_ssl"
  "bench_micro_ssl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_ssl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

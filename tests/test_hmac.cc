/**
 * @file
 * HMAC tests against the RFC 2202 vectors for both MD5 and SHA-1.
 */

#include <gtest/gtest.h>

#include "crypto/hmac.hh"
#include "util/bytes.hh"
#include "util/hex.hh"

namespace
{

using namespace ssla;
using crypto::DigestAlg;
using crypto::Hmac;

TEST(Hmac, Rfc2202Md5Case1)
{
    Bytes key(16, 0x0b);
    EXPECT_EQ(hexEncode(Hmac::compute(DigestAlg::MD5, key,
                                      toBytes("Hi There"))),
              "9294727a3638bb1c13f48ef8158bfc9d");
}

TEST(Hmac, Rfc2202Md5Case2)
{
    EXPECT_EQ(hexEncode(Hmac::compute(
                  DigestAlg::MD5, toBytes("Jefe"),
                  toBytes("what do ya want for nothing?"))),
              "750c783e6ab0b503eaa86e310a5db738");
}

TEST(Hmac, Rfc2202Md5Case3)
{
    Bytes key(16, 0xaa);
    Bytes data(50, 0xdd);
    EXPECT_EQ(hexEncode(Hmac::compute(DigestAlg::MD5, key, data)),
              "56be34521d144c88dbb8c733f0e8b3f6");
}

TEST(Hmac, Rfc2202Sha1Case1)
{
    Bytes key(20, 0x0b);
    EXPECT_EQ(hexEncode(Hmac::compute(DigestAlg::SHA1, key,
                                      toBytes("Hi There"))),
              "b617318655057264e28bc0b6fb378c8ef146be00");
}

TEST(Hmac, Rfc2202Sha1Case2)
{
    EXPECT_EQ(hexEncode(Hmac::compute(
                  DigestAlg::SHA1, toBytes("Jefe"),
                  toBytes("what do ya want for nothing?"))),
              "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
}

TEST(Hmac, Rfc2202Sha1Case3)
{
    Bytes key(20, 0xaa);
    Bytes data(50, 0xdd);
    EXPECT_EQ(hexEncode(Hmac::compute(DigestAlg::SHA1, key, data)),
              "125d7342b9ac11cd91a39af48aa17b4f63f175d3");
}

TEST(Hmac, LongKeyIsHashedFirst)
{
    // Keys longer than the block size are hashed down (RFC 2202 case 6).
    Bytes key(80, 0xaa);
    EXPECT_EQ(hexEncode(Hmac::compute(
                  DigestAlg::SHA1, key,
                  toBytes("Test Using Larger Than Block-Size Key - "
                          "Hash Key First"))),
              "aa4ae5e15272d00e95705637ce8a3b55ed402112");
}

TEST(Hmac, IncrementalMatchesOneShot)
{
    Bytes key = toBytes("secret-key");
    Bytes data = toBytes("the quick brown fox jumps over the lazy dog");
    Bytes oneshot = Hmac::compute(DigestAlg::SHA1, key, data);

    Hmac h(DigestAlg::SHA1, key);
    h.update(data.data(), 10);
    h.update(data.data() + 10, data.size() - 10);
    EXPECT_EQ(h.final(), oneshot);
}

TEST(Hmac, InitAllowsReuse)
{
    Bytes key = toBytes("k");
    Hmac h(DigestAlg::MD5, key);
    h.update(toBytes("first"));
    Bytes a = h.final();
    h.init();
    h.update(toBytes("first"));
    EXPECT_EQ(h.final(), a);
}

TEST(Hmac, KeySensitivity)
{
    Bytes data = toBytes("payload");
    Bytes a = Hmac::compute(DigestAlg::SHA1, toBytes("key-a"), data);
    Bytes b = Hmac::compute(DigestAlg::SHA1, toBytes("key-b"), data);
    EXPECT_NE(a, b);
}

TEST(Hmac, TagSizes)
{
    Hmac md5(DigestAlg::MD5, toBytes("k"));
    Hmac sha(DigestAlg::SHA1, toBytes("k"));
    EXPECT_EQ(md5.tagSize(), 16u);
    EXPECT_EQ(sha.tagSize(), 20u);
}

} // anonymous namespace

/**
 * @file
 * A recreation of the tool behind the paper's Section 3.2 methodology:
 * "a standalone program ... [that] creates a server context as well as
 * a client context, and relays messages between these two through some
 * memory buffers", measuring server-side latency with the timestamp
 * counter.
 *
 * Runs N handshakes (plus optional resumptions) and prints the
 * latency distribution for full and abbreviated handshakes, by suite.
 *
 *   ./ssltest [handshakes]
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "perf/report.hh"
#include "ssl/client.hh"
#include "ssl/server.hh"
#include "util/cycles.hh"
#include "util/rng.hh"

using namespace ssla;
using namespace ssla::ssl;

namespace
{

struct Distribution
{
    double min, median, p95, max;
};

Distribution
summarize(std::vector<double> &samples)
{
    std::sort(samples.begin(), samples.end());
    return {samples.front(), samples[samples.size() / 2],
            samples[samples.size() * 95 / 100], samples.back()};
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    int n = argc > 1 ? std::atoi(argv[1]) : 40;
    if (n < 4)
        n = 4;

    Xoshiro256 seed(17);
    bn::RngFunc rng = [&](uint8_t *out, size_t len) {
        seed.fill(out, len);
    };
    std::printf("generating RSA-1024 server identity...\n");
    crypto::RsaKeyPair key = crypto::rsaGenerateKey(1024, rng);
    pki::CertificateInfo info;
    info.serial = 5;
    info.issuer = "ssltest CA";
    info.subject = "ssltest.local";
    info.notBefore = 0;
    info.notAfter = ~uint64_t(0);
    info.publicKey = key.pub;
    pki::Certificate cert = pki::Certificate::issue(info, *key.priv);

    perf::TablePrinter table(perf::fmt(
        "ssltest: server-side handshake latency over %d runs "
        "(microseconds)", n));
    table.setHeader({"suite", "mode", "min", "median", "p95", "max"});

    for (CipherSuiteId suite :
         {CipherSuiteId::RSA_3DES_EDE_CBC_SHA,
          CipherSuiteId::RSA_AES_128_CBC_SHA,
          CipherSuiteId::RSA_RC4_128_MD5,
          CipherSuiteId::DHE_RSA_AES_128_CBC_SHA}) {
        SessionCache cache;
        ServerConfig scfg;
        scfg.certificate = cert;
        scfg.privateKey = key.priv;
        scfg.suites = {suite};
        scfg.sessionCache = &cache;

        std::vector<double> full_us, resumed_us;
        Session last;
        for (int i = 0; i < n; ++i) {
            bool resume = (i % 2 == 1) && last.valid();
            BioPair wires;
            SslServer server(scfg, wires.serverEnd());
            ClientConfig ccfg;
            ccfg.suites = {suite};
            if (resume)
                ccfg.resumeSession = last;
            SslClient client(ccfg, wires.clientEnd());

            uint64_t server_cycles = 0;
            while (!client.handshakeDone() ||
                   !server.handshakeDone()) {
                bool progress = client.advance();
                uint64_t t0 = rdcycles();
                progress |= server.advance();
                server_cycles += rdcycles() - t0;
                if (!progress)
                    throw std::runtime_error("deadlock");
            }
            double us = cyclesToSeconds(server_cycles) * 1e6;
            (server.resumed() ? resumed_us : full_us).push_back(us);
            last = client.session();
        }

        Distribution full = summarize(full_us);
        table.addRow({cipherSuite(suite).name, "full",
                      perf::fmtF(full.min, 0),
                      perf::fmtF(full.median, 0),
                      perf::fmtF(full.p95, 0),
                      perf::fmtF(full.max, 0)});
        if (!resumed_us.empty()) {
            Distribution res = summarize(resumed_us);
            table.addRow({"", "resumed", perf::fmtF(res.min, 0),
                          perf::fmtF(res.median, 0),
                          perf::fmtF(res.p95, 0),
                          perf::fmtF(res.max, 0)});
        }
    }
    table.print();
    std::printf("\nFull handshakes pay the RSA (or RSA+DH) asymmetric "
                "work; resumed ones skip it entirely, as the paper's "
                "Section 4.1 highlights.\n");
    return 0;
}

#include "obs/analysis/model.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace ssla::obs::analysis
{

namespace
{

const char *
sideNameFromIndex(uint64_t side)
{
    switch (side) {
    case 0: return "server";
    case 1: return "client";
    case 2: return "engine";
    case 3: return "channel";
    }
    return "unknown";
}

/** Split an exported event name "Kind:label" back into its parts. */
void
splitName(const std::string &name, std::string &kind,
          std::string &label)
{
    size_t colon = name.find(':');
    if (colon == std::string::npos) {
        kind = name;
        label.clear();
    } else {
        kind = name.substr(0, colon);
        label = name.substr(colon + 1);
    }
}

using SessionKey = std::pair<uint32_t, uint64_t>; // (track, serial)

Corpus
finalize(std::map<SessionKey, SessionRecord> &records,
         const char *format, const char *unit)
{
    Corpus corpus;
    corpus.format = format;
    corpus.timeUnit = unit;
    corpus.sessions.reserve(records.size());
    for (auto &[key, rec] : records) {
        std::stable_sort(rec.events.begin(), rec.events.end(),
                         [](const AnalysisEvent &a,
                            const AnalysisEvent &b) { return a.t < b.t; });
        corpus.sessions.push_back(std::move(rec));
    }
    return corpus;
}

} // anonymous namespace

std::string
readFileOrThrow(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        throw IngestError(path + ": cannot open file");
    std::string out;
    char buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    const bool bad = std::ferror(f) != 0;
    std::fclose(f);
    if (bad)
        throw IngestError(path + ": read error");
    return out;
}

// ---------------------------------------------------------------------
// JSONL ingest

Corpus
ingestJsonl(std::string_view text)
{
    std::map<SessionKey, SessionRecord> records;

    size_t lineNo = 0;
    size_t pos = 0;
    while (pos <= text.size()) {
        size_t eol = text.find('\n', pos);
        std::string_view line = text.substr(
            pos, eol == std::string_view::npos ? std::string_view::npos
                                               : eol - pos);
        ++lineNo;
        pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
        if (line.find_first_not_of(" \t\r") == std::string_view::npos)
            continue;

        Json obj;
        try {
            obj = parseJson(line, lineNo - 1);
        } catch (const JsonError &e) {
            throw IngestError("jsonl " + std::string(e.what()));
        }
        if (!obj.isObject())
            throw IngestError("jsonl line " + std::to_string(lineNo) +
                              ": expected an object per line");

        const Json *serialV = obj.find("serial");
        if (!serialV || !serialV->isNumber())
            throw IngestError("jsonl line " + std::to_string(lineNo) +
                              ": missing numeric 'serial'");
        const uint64_t serial = serialV->asU64();

        const Json *summary = obj.find("summary");
        if (summary && summary->isBool() && summary->b) {
            // Trailer line: outcome + accounting for the trace whose
            // events preceded it. The serial alone can be ambiguous
            // (worker-0 session n vs crypto track n), so it attaches
            // to the still-open record with that serial.
            SessionRecord *target = nullptr;
            for (auto &[key, rec] : records)
                if (key.second == serial &&
                    (!target || rec.outcome == "open"))
                    if (rec.outcome == "open" || !target)
                        target = &rec;
            if (!target)
                throw IngestError(
                    "jsonl line " + std::to_string(lineNo) +
                    ": summary for serial " + std::to_string(serial) +
                    " with no preceding events");
            if (const std::string *oc = obj.findString("outcome"))
                target->outcome = *oc;
            target->dropped = obj.findU64("dropped");
            continue;
        }

        const Json *trackV = obj.find("track");
        const std::string *kind = obj.findString("kind");
        const std::string *side = obj.findString("side");
        const Json *cyclesV = obj.find("cycles");
        if (!trackV || !trackV->isNumber())
            throw IngestError("jsonl line " + std::to_string(lineNo) +
                              ": missing numeric 'track'");
        if (!kind)
            throw IngestError("jsonl line " + std::to_string(lineNo) +
                              ": missing 'kind'");
        if (!side)
            throw IngestError("jsonl line " + std::to_string(lineNo) +
                              ": missing 'side'");
        if (!cyclesV || !cyclesV->isNumber())
            throw IngestError("jsonl line " + std::to_string(lineNo) +
                              ": missing numeric 'cycles'");

        const uint32_t track =
            static_cast<uint32_t>(trackV->asU64());
        SessionRecord &rec = records[{track, serial}];
        rec.serial = serial;
        rec.track = track;

        AnalysisEvent ev;
        ev.t = static_cast<double>(cyclesV->asU64());
        ev.tick = obj.findU64("tick");
        ev.kind = *kind;
        ev.side = *side;
        ev.code = static_cast<uint16_t>(obj.findU64("code"));
        ev.arg = obj.findU64("arg");
        ev.argT = static_cast<double>(ev.arg);
        if (const std::string *label = obj.findString("label"))
            ev.label = *label;
        if (const std::string *txt = obj.findString("text"))
            ev.text = *txt;
        rec.events.push_back(std::move(ev));
    }

    return finalize(records, "jsonl", "cycles");
}

// ---------------------------------------------------------------------
// Chrome trace ingest

Corpus
ingestChrome(const Json &doc)
{
    const Json *events = doc.find("traceEvents");
    if (!doc.isObject() || !events || !events->isArray())
        throw IngestError(
            "chrome trace: root must be an object with a "
            "'traceEvents' array");

    std::map<SessionKey, SessionRecord> records;

    auto recordFor = [&](const Json &ev, const Json *args,
                         size_t index) -> SessionRecord & {
        const Json *tidV = ev.find("tid");
        if (!tidV || !tidV->isNumber())
            throw IngestError("chrome trace event " +
                              std::to_string(index) +
                              ": missing numeric 'tid'");
        const uint64_t tid = tidV->asU64();
        const uint32_t track = static_cast<uint32_t>(tid / 8);
        uint64_t serial;
        if (args && args->find("serial") &&
            args->find("serial")->isNumber()) {
            serial = args->findU64("serial");
        } else {
            // Pre-serial-stamp exporter: fall back to one synthetic
            // session per export track (bit 63 marks it synthetic so
            // it can never collide with an engine serial).
            serial = (1ull << 63) | tid;
        }
        SessionRecord &rec = records[{track, serial}];
        rec.serial = serial;
        rec.track = track;
        return rec;
    };

    size_t index = 0;
    for (const Json &ev : events->arr) {
        const size_t where = index++;
        if (!ev.isObject())
            throw IngestError("chrome trace event " +
                              std::to_string(where) +
                              ": not an object");
        const std::string *ph = ev.findString("ph");
        if (!ph)
            throw IngestError("chrome trace event " +
                              std::to_string(where) +
                              ": missing 'ph'");
        if (*ph == "M")
            continue;

        const Json *tsV = ev.find("ts");
        const std::string *name = ev.findString("name");
        if (!tsV || !tsV->isNumber())
            throw IngestError("chrome trace event " +
                              std::to_string(where) +
                              ": missing numeric 'ts'");
        if (!name)
            throw IngestError("chrome trace event " +
                              std::to_string(where) +
                              ": missing 'name'");
        const double ts = tsV->number();
        const Json *args = ev.find("args");

        if (*ph == "e")
            continue; // carries no args; "b" opened the session
        if (*ph == "b") {
            SessionRecord &rec = recordFor(ev, args, where);
            if (args) {
                if (const std::string *oc = args->findString("outcome"))
                    rec.outcome = *oc;
                rec.dropped = args->findU64("dropped");
            }
            continue;
        }
        if (*ph != "X" && *ph != "i")
            throw IngestError("chrome trace event " +
                              std::to_string(where) +
                              ": unsupported phase '" + *ph + "'");

        SessionRecord &rec = recordFor(ev, args, where);
        const uint64_t tid = ev.find("tid")->asU64();

        AnalysisEvent out;
        out.t = ts;
        out.side = sideNameFromIndex(tid % 8);
        splitName(*name, out.kind, out.label);
        if (args) {
            out.tick = args->findU64("tick");
            out.code = static_cast<uint16_t>(args->findU64("code"));
            out.arg = args->findU64("arg");
            out.argT = args->findNumber(
                "wait_us", static_cast<double>(out.arg));
            if (const std::string *txt = args->findString("text"))
                out.text = *txt;
        }

        if (*ph == "X") {
            const Json *durV = ev.find("dur");
            if (!durV || !durV->isNumber())
                throw IngestError("chrome trace event " +
                                  std::to_string(where) +
                                  ": X span missing 'dur'");
            const double dur = durV->number();
            if (out.kind == "JobStart") {
                // Re-split the service span into the begin/end pair
                // the JSONL stream carries natively. An "unfinished"
                // span (trace ended mid-job) gets no end event —
                // matching the JSONL stream, which has no JobEnd
                // either.
                const std::string *oc0 =
                    args ? args->findString("outcome") : nullptr;
                if (oc0 && *oc0 == "unfinished") {
                    rec.events.push_back(std::move(out));
                    continue;
                }
                AnalysisEvent end;
                end.t = ts + dur;
                end.tick = out.tick;
                end.kind = "JobEnd";
                end.label = out.label;
                end.side = out.side;
                const std::string *oc =
                    args ? args->findString("outcome") : nullptr;
                end.code = (oc && *oc == "error") ? 1 : 0;
                end.argT = dur;
                rec.events.push_back(out);
                rec.events.push_back(std::move(end));
                continue;
            }
            // StateEnter residency spans: the begin instant is the
            // original event; the end was the next state, which has
            // its own span.
        }
        rec.events.push_back(std::move(out));
    }

    return finalize(records, "chrome", "us");
}

Corpus
ingestTraceFile(const std::string &path)
{
    const std::string text = readFileOrThrow(path);
    // Sniff: a Chrome export is one JSON document whose root carries
    // traceEvents; JSONL never parses as a single document (unless it
    // is a single line, which then lacks traceEvents).
    try {
        Json doc = parseJson(text);
        if (doc.isObject() && doc.find("traceEvents"))
            return ingestChrome(doc);
    } catch (const JsonError &) {
        // Not one document: treat as JSONL below.
    }
    try {
        return ingestJsonl(text);
    } catch (const IngestError &e) {
        throw IngestError(path + ": " + e.what());
    }
}

// ---------------------------------------------------------------------
// Prometheus text snapshot

void
ingestPrometheus(std::string_view text, Corpus &corpus)
{
    size_t lineNo = 0;
    size_t pos = 0;
    while (pos < text.size()) {
        size_t eol = text.find('\n', pos);
        std::string line(text.substr(
            pos, eol == std::string_view::npos ? std::string_view::npos
                                               : eol - pos));
        ++lineNo;
        pos = eol == std::string_view::npos ? text.size() : eol + 1;
        if (line.empty() || line[0] == '#')
            continue;

        size_t space = line.rfind(' ');
        if (space == std::string::npos || space == 0)
            throw IngestError("metrics line " + std::to_string(lineNo) +
                              ": expected '<name> <value>'");
        std::string name = line.substr(0, space);
        const std::string valueText = line.substr(space + 1);
        char *end = nullptr;
        double value = std::strtod(valueText.c_str(), &end);
        if (end == valueText.c_str())
            throw IngestError("metrics line " + std::to_string(lineNo) +
                              ": bad value '" + valueText + "'");

        size_t brace = name.find('{');
        if (brace != std::string::npos) {
            // name{quantile="0.99"} -> metricQuantiles["name{0.99}"]
            std::string base = name.substr(0, brace);
            std::string labels = name.substr(brace);
            size_t q = labels.find("quantile=\"");
            if (q == std::string::npos)
                throw IngestError("metrics line " +
                                  std::to_string(lineNo) +
                                  ": unsupported label set " + labels);
            size_t vstart = q + 10;
            size_t vend = labels.find('"', vstart);
            corpus.metricQuantiles[base + "{" +
                                   labels.substr(vstart, vend - vstart) +
                                   "}"] = value;
        } else {
            corpus.metrics[name] = value;
        }
    }
}

} // namespace ssla::obs::analysis

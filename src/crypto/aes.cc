#include "crypto/aes.hh"

#include <stdexcept>

namespace ssla::crypto
{

namespace
{

/** GF(2^8) multiply modulo the AES polynomial x^8+x^4+x^3+x+1. */
uint8_t
gmul(uint8_t a, uint8_t b)
{
    uint8_t p = 0;
    for (int i = 0; i < 8; ++i) {
        if (b & 1)
            p ^= a;
        bool hi = a & 0x80;
        a <<= 1;
        if (hi)
            a ^= 0x1b;
        b >>= 1;
    }
    return p;
}

uint8_t
rotl8(uint8_t v, int n)
{
    return static_cast<uint8_t>((v << n) | (v >> (8 - n)));
}

/** Build every table from first principles (no transcribed constants). */
AesTables
buildTables()
{
    AesTables t{};

    // Multiplicative inverses via log/antilog tables on generator 3.
    uint8_t exp_table[256];
    uint8_t log_table[256] = {};
    uint8_t x = 1;
    for (int i = 0; i < 255; ++i) {
        exp_table[i] = x;
        log_table[x] = static_cast<uint8_t>(i);
        x = gmul(x, 3);
    }
    exp_table[255] = exp_table[0];

    auto inverse = [&](uint8_t v) -> uint8_t {
        if (v == 0)
            return 0;
        return exp_table[255 - log_table[v]];
    };

    for (int i = 0; i < 256; ++i) {
        uint8_t inv = inverse(static_cast<uint8_t>(i));
        uint8_t s = inv ^ rotl8(inv, 1) ^ rotl8(inv, 2) ^ rotl8(inv, 3) ^
                    rotl8(inv, 4) ^ 0x63;
        t.sbox[i] = s;
        t.inv_sbox[s] = static_cast<uint8_t>(i);
    }

    for (int i = 0; i < 256; ++i) {
        uint8_t s = t.sbox[i];
        uint8_t s2 = gmul(s, 2);
        uint8_t s3 = gmul(s, 3);
        uint32_t w = (static_cast<uint32_t>(s2) << 24) |
                     (static_cast<uint32_t>(s) << 16) |
                     (static_cast<uint32_t>(s) << 8) | s3;
        t.te0[i] = w;
        t.te1[i] = (w >> 8) | (w << 24);
        t.te2[i] = (w >> 16) | (w << 16);
        t.te3[i] = (w >> 24) | (w << 8);

        uint8_t is = t.inv_sbox[i];
        uint32_t d = (static_cast<uint32_t>(gmul(is, 0x0e)) << 24) |
                     (static_cast<uint32_t>(gmul(is, 0x09)) << 16) |
                     (static_cast<uint32_t>(gmul(is, 0x0d)) << 8) |
                     gmul(is, 0x0b);
        t.td0[i] = d;
        t.td1[i] = (d >> 8) | (d << 24);
        t.td2[i] = (d >> 16) | (d << 16);
        t.td3[i] = (d >> 24) | (d << 8);
    }
    return t;
}

/** SubWord for the key schedule. */
uint32_t
subWord(uint32_t w, const AesTables &t)
{
    return (static_cast<uint32_t>(t.sbox[w >> 24]) << 24) |
           (static_cast<uint32_t>(t.sbox[(w >> 16) & 0xff]) << 16) |
           (static_cast<uint32_t>(t.sbox[(w >> 8) & 0xff]) << 8) |
           t.sbox[w & 0xff];
}

/** InvMixColumns applied to one round-key word. */
uint32_t
invMixWord(uint32_t w)
{
    uint8_t a0 = static_cast<uint8_t>(w >> 24);
    uint8_t a1 = static_cast<uint8_t>(w >> 16);
    uint8_t a2 = static_cast<uint8_t>(w >> 8);
    uint8_t a3 = static_cast<uint8_t>(w);
    auto mix = [&](uint8_t c0, uint8_t c1, uint8_t c2, uint8_t c3) {
        return static_cast<uint8_t>(gmul(a0, c0) ^ gmul(a1, c1) ^
                                    gmul(a2, c2) ^ gmul(a3, c3));
    };
    return (static_cast<uint32_t>(mix(0x0e, 0x0b, 0x0d, 0x09)) << 24) |
           (static_cast<uint32_t>(mix(0x09, 0x0e, 0x0b, 0x0d)) << 16) |
           (static_cast<uint32_t>(mix(0x0d, 0x09, 0x0e, 0x0b)) << 8) |
           mix(0x0b, 0x0d, 0x09, 0x0e);
}

int
roundsForBits(unsigned bits)
{
    switch (bits) {
      case 128:
        return 10;
      case 192:
        return 12;
      case 256:
        return 14;
      default:
        throw std::invalid_argument("AES: key must be 128/192/256 bits");
    }
}

} // anonymous namespace

const AesTables &
aesTables()
{
    static const AesTables tables = buildTables();
    return tables;
}

void
aesSetEncryptKey(const uint8_t *key, unsigned bits, AesKey &out)
{
    const AesTables &t = aesTables();
    out.rounds = roundsForBits(bits);
    unsigned nk = bits / 32;
    unsigned nwords = 4 * (out.rounds + 1);

    for (unsigned i = 0; i < nk; ++i)
        out.rk[i] = load32be(key + 4 * i);

    uint32_t rcon = 0x01000000u;
    for (unsigned i = nk; i < nwords; ++i) {
        uint32_t temp = out.rk[i - 1];
        if (i % nk == 0) {
            temp = subWord((temp << 8) | (temp >> 24), t) ^ rcon;
            rcon = static_cast<uint32_t>(gmul(
                       static_cast<uint8_t>(rcon >> 24), 2))
                   << 24;
        } else if (nk > 6 && i % nk == 4) {
            temp = subWord(temp, t);
        }
        out.rk[i] = out.rk[i - nk] ^ temp;
    }
}

void
aesSetDecryptKey(const uint8_t *key, unsigned bits, AesKey &out)
{
    AesKey enc;
    aesSetEncryptKey(key, bits, enc);
    out.rounds = enc.rounds;

    // Reverse the round-key order...
    for (int r = 0; r <= enc.rounds; ++r) {
        for (int w = 0; w < 4; ++w)
            out.rk[4 * r + w] = enc.rk[4 * (enc.rounds - r) + w];
    }
    // ...and push the middle keys through InvMixColumns so decryption
    // can reuse the table-lookup round structure.
    for (int r = 1; r < out.rounds; ++r) {
        for (int w = 0; w < 4; ++w)
            out.rk[4 * r + w] = invMixWord(out.rk[4 * r + w]);
    }
}

namespace
{
perf::NullMeter nullMeter;
} // anonymous namespace

Aes::Aes(const Bytes &key) : keyBits_(static_cast<unsigned>(key.size() * 8))
{
    aesSetEncryptKey(key.data(), keyBits_, enc_);
    aesSetDecryptKey(key.data(), keyBits_, dec_);
}

void
Aes::encryptBlock(const uint8_t in[16], uint8_t out[16]) const
{
    aesEncryptBlockT(enc_, in, out, nullMeter);
}

void
Aes::decryptBlock(const uint8_t in[16], uint8_t out[16]) const
{
    aesDecryptBlockT(dec_, in, out, nullMeter);
}

} // namespace ssla::crypto

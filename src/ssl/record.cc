#include "ssl/record.hh"

#include <cstring>

#include "util/bytes.hh"

namespace ssla::ssl
{

RecordCounters
RecordCounters::resolve(obs::MetricsRegistry &reg)
{
    RecordCounters c;
    c.recordsOut = reg.counter("record.records_out");
    c.bytesOut = reg.counter("record.bytes_out");
    c.recordsIn = reg.counter("record.records_in");
    c.bytesIn = reg.counter("record.bytes_in");
    c.scratchGrows = reg.counter("record.scratch_grows");
    c.pendingSpills = reg.counter("record.pending_spills");
    return c;
}

const RecordCounters &
globalRecordCounters()
{
    static const RecordCounters c =
        RecordCounters::resolve(obs::MetricsRegistry::global());
    return c;
}

Bytes
ssl3Mac(crypto::DigestAlg alg, const Bytes &secret, uint64_t seq,
        uint8_t type, const uint8_t *data, size_t len)
{
    crypto::RecordMacSpec spec{alg, secret, ssl3Version};
    Bytes mac(crypto::maxRecordMacLen);
    mac.resize(crypto::defaultProvider().recordMac(
        spec, seq, type, ConstSpan{data, len}, mac.data()));
    return mac;
}

Bytes
tls1Mac(crypto::DigestAlg alg, const Bytes &secret, uint64_t seq,
        uint8_t type, uint16_t version, const uint8_t *data, size_t len)
{
    crypto::RecordMacSpec spec{alg, secret, version};
    Bytes mac(crypto::maxRecordMacLen);
    mac.resize(crypto::defaultProvider().recordMac(
        spec, seq, type, ConstSpan{data, len}, mac.data()));
    return mac;
}

void
RecordLayer::setVersion(uint16_t version)
{
    if (version != ssl3Version && version != tls1Version)
        throw SslError(AlertDescription::IllegalParameter,
                       "record: unsupported protocol version");
    version_ = version;
    versionLocked_ = true;
}

size_t
RecordLayer::computeMac(const RecordCipherState &dir, uint8_t type,
                        ConstSpan data, uint64_t seq,
                        uint8_t *out) const
{
    return dir.provider->recordMac(dir.macSpec, seq, type, data, out);
}

void
RecordLayer::enableSendCipher(const CipherSuite &suite, Bytes mac_secret,
                              const Bytes &key, const Bytes &iv)
{
    send_.suite = &suite;
    send_.provider = provider_;
    send_.macSpec =
        crypto::RecordMacSpec{suite.mac, std::move(mac_secret),
                              version_};
    send_.cipher = provider_->createCipher(suite.cipher, key, iv, true);
    send_.seq = 0;
}

void
RecordLayer::enableRecvCipher(const CipherSuite &suite, Bytes mac_secret,
                              const Bytes &key, const Bytes &iv)
{
    recv_.suite = &suite;
    recv_.provider = provider_;
    recv_.macSpec =
        crypto::RecordMacSpec{suite.mac, std::move(mac_secret),
                              version_};
    recv_.cipher = provider_->createCipher(suite.cipher, key, iv, false);
    recv_.seq = 0;
}

void
RecordLayer::send(ContentType type, const uint8_t *data, size_t len)
{
    std::span<const uint8_t> one{data, len};
    sendMany(type, &one, 1);
}

void
RecordLayer::send(ContentType type, const Bytes &data)
{
    send(type, data.data(), data.size());
}

void
RecordLayer::sendMany(ContentType type, const std::vector<Bytes> &bufs)
{
    std::vector<std::span<const uint8_t>> iov;
    iov.reserve(bufs.size());
    for (const Bytes &b : bufs)
        iov.emplace_back(b.data(), b.size());
    sendMany(type, iov.data(), iov.size());
}

void
RecordLayer::sendMany(ContentType type,
                      const std::span<const uint8_t> *iov, size_t iovcnt)
{
    size_t total = iovTotalBytes(iov, iovcnt);

    if (send_.active() && provider_->pipelined() && total > maxFragment) {
        sendPipelined(type, iov, iovcnt);
        return;
    }

    // Synchronous path: one fragment at a time, exactly the classic
    // MAC(n) -> encrypt(n) -> MAC(n+1) -> ... sequence, with each
    // record laid out and sealed in the reusable arena (cipher on) or
    // gather-written straight from the caller's spans (plaintext).
    IoVecCursor cur(iov, iovcnt);
    size_t sent = 0;
    do {
        size_t chunk = std::min(total - sent, maxFragment);
        if (send_.active())
            sendCipherRecord(type, cur, chunk);
        else
            sendPlainRecord(type, cur, chunk);
        sent += chunk;
    } while (sent < total);
}

void
RecordLayer::fillHeader(uint8_t *hdr, ContentType type,
                        size_t frag_len) const
{
    hdr[0] = static_cast<uint8_t>(type);
    hdr[1] = static_cast<uint8_t>(version_ >> 8);
    hdr[2] = static_cast<uint8_t>(version_);
    hdr[3] = static_cast<uint8_t>(frag_len >> 8);
    hdr[4] = static_cast<uint8_t>(frag_len);
}

size_t
RecordLayer::padAndEncrypt(uint8_t *frag, size_t len)
{
    size_t block = send_.suite->blockLen();
    if (block > 1) {
        // SSLv3 padding: fill to a block multiple; the final byte
        // counts the padding bytes before it.
        size_t pad = (block - (len + 1) % block) % block;
        std::memset(frag + len, static_cast<int>(pad), pad + 1);
        len += pad + 1;
    }
    send_.cipher->process(frag, frag, len);
    return len;
}

bool
RecordLayer::flushPendingOutput()
{
    bool delivered = false;
    while (!pendingOut_.empty()) {
        const Bytes &wire = pendingOut_.front();
        if (!bio_.write(wire.data(), wire.size()))
            return delivered; // still blocked; keep the backlog intact
        pendingOut_.pop_front();
        delivered = true;
    }
    return delivered;
}

void
RecordLayer::deliver(const ConstSpan *iov, size_t iovcnt,
                     size_t payload_len)
{
    // The transport takes the whole record or none of it: a capped bio
    // can never hold a torn record, and a refused record flattens into
    // the in-order retry queue (sequence numbers are already burned).
    flushPendingOutput();
    if (!pendingOut_.empty() || !bio_.writev(iov, iovcnt)) {
        Bytes wire;
        wire.reserve(iovTotalBytes(iov, iovcnt));
        for (size_t i = 0; i < iovcnt; ++i)
            wire.insert(wire.end(), iov[i].data(),
                        iov[i].data() + iov[i].size());
        pendingOut_.push_back(std::move(wire));
        obs_->pendingSpills.inc();
    }
    bytesSent_ += payload_len;
    ++recordsSent_;
    obs_->recordsOut.inc();
    obs_->bytesOut.inc(payload_len);
}

void
RecordLayer::noteArenaGrowth()
{
    while (arenaGrowsSeen_ < arena_.grows()) {
        ++arenaGrowsSeen_;
        obs_->scratchGrows.inc();
    }
}

void
RecordLayer::sendPlainRecord(ContentType type, IoVecCursor &cur,
                             size_t chunk)
{
    // Zero-copy: header on the stack, payload borrowed slice by slice
    // from the caller's buffers, one gather-write for the record.
    uint8_t hdr[5];
    fillHeader(hdr, type, chunk);
    iovScratch_.clear();
    iovScratch_.emplace_back(hdr, 5);
    size_t need = chunk;
    while (need) {
        ConstSpan piece = cur.takeUpTo(need);
        iovScratch_.push_back(piece);
        need -= piece.size();
    }
    deliver(iovScratch_.data(), iovScratch_.size(), chunk);
}

void
RecordLayer::sendCipherRecord(ContentType type, IoVecCursor &cur,
                              size_t chunk)
{
    // One arena image per record: header | payload | MAC | padding,
    // MACed and encrypted in place. After warm-up the arena never
    // reallocates, so the steady-state send path is heap-silent.
    size_t mac_max = send_.suite->macLen();
    size_t block = send_.suite->blockLen();
    MutSpan wire = arena_.acquire(5 + chunk + mac_max + block);
    noteArenaGrowth();
    uint8_t *frag = wire.data() + 5;
    cur.gather(frag, chunk);
    size_t mac_len =
        computeMac(send_, static_cast<uint8_t>(type),
                   ConstSpan{frag, chunk}, send_.seq++, frag + chunk);
    size_t frag_len = padAndEncrypt(frag, chunk + mac_len);
    fillHeader(wire.data(), type, frag_len);
    ConstSpan one{wire.data(), 5 + frag_len};
    deliver(&one, 1, chunk);
}

void
RecordLayer::sendPipelined(ContentType type,
                           const std::span<const uint8_t> *iov,
                           size_t iovcnt)
{
    // Stage every fragment, submit all MAC jobs to the engine, then
    // encrypt in record order: while record n is CBC-encrypted here,
    // the engine worker is already hashing record n+1 (Section 6.2).
    // Staging buffers hold the full wire image (the engine writes the
    // MAC directly into its slot) and are recycled through stagePool_,
    // so steady-state bulk sends do not allocate either.
    struct Staged
    {
        Bytes buf;          ///< header | payload | MAC | pad image
        size_t payload = 0;
        crypto::MacJob job;
    };

    size_t total = iovTotalBytes(iov, iovcnt);
    size_t mac_max = send_.suite->macLen();
    size_t block = send_.suite->blockLen();

    std::vector<Staged> staged;
    staged.reserve((total + maxFragment - 1) / maxFragment);

    IoVecCursor cur(iov, iovcnt);
    size_t sent = 0;
    while (sent < total) {
        size_t chunk = std::min(total - sent, maxFragment);
        Staged s;
        if (!stagePool_.empty()) {
            s.buf = std::move(stagePool_.back());
            stagePool_.pop_back();
        }
        size_t cap_before = s.buf.capacity();
        // Full final size up front: the buffer must not move between
        // submit and wait (the engine holds raw data/MAC pointers).
        s.buf.resize(5 + chunk + mac_max + block);
        if (s.buf.capacity() != cap_before)
            obs_->scratchGrows.inc();
        s.payload = chunk;
        cur.gather(s.buf.data() + 5, chunk);
        staged.push_back(std::move(s));
        Staged &back = staged.back();
        back.job = provider_->submitRecordMac(
            send_.macSpec, send_.seq++, static_cast<uint8_t>(type),
            ConstSpan{back.buf.data() + 5, chunk},
            back.buf.data() + 5 + chunk);
        sent += chunk;
    }

    for (Staged &s : staged) {
        size_t mac_len = s.job.wait();
        size_t frag_len =
            padAndEncrypt(s.buf.data() + 5, s.payload + mac_len);
        fillHeader(s.buf.data(), type, frag_len);
        ConstSpan one{s.buf.data(), 5 + frag_len};
        deliver(&one, 1, s.payload);
        stagePool_.push_back(std::move(s.buf));
    }
}

std::optional<Record>
RecordLayer::receive()
{
    uint8_t header[5];
    if (bio_.peek(header, 5) < 5)
        return std::nullopt;

    auto type = static_cast<ContentType>(header[0]);
    uint16_t version = static_cast<uint16_t>((header[1] << 8) | header[2]);
    size_t frag_len = static_cast<size_t>((header[3] << 8) | header[4]);

    if (versionLocked_ ? version != version_
                       : (version >> 8) != 0x03)
        throw SslError(AlertDescription::IllegalParameter,
                       "record: bad protocol version");
    if (frag_len > maxFragment + 1024 + 256)
        throw SslError(AlertDescription::IllegalParameter,
                       "record: oversized fragment");
    if (bio_.available() < 5 + frag_len)
        return std::nullopt;

    bio_.consume(5);
    Bytes fragment(frag_len);
    bio_.read(fragment.data(), frag_len);

    if (!recv_.active()) {
        obs_->recordsIn.inc();
        obs_->bytesIn.inc(fragment.size());
        return Record{type, std::move(fragment)};
    }

    size_t mac_len = recv_.suite->macLen();
    size_t block = recv_.suite->blockLen();

    // Validate ciphertext geometry BEFORE decrypting: a truncated
    // record's partial block would otherwise surface as the cipher's
    // own exception rather than the record layer's SslError (the
    // fault harness asserts only SslError ever escapes).
    if (block > 1 && (fragment.empty() || fragment.size() % block))
        throw SslError(AlertDescription::BadRecordMac,
                       "record: bad block length");

    recv_.cipher->process(fragment.data(), fragment.data(),
                          fragment.size());

    size_t data_len = fragment.size();

    // Padding is validated in constant time: a single pass with no
    // early return, folding every check into one mask so a forger
    // cannot distinguish bad-padding from bad-MAC by timing or alert
    // (the distinguisher behind padding-oracle attacks on CBC suites).
    size_t pad_valid = 1;
    if (block > 1) {
        size_t pad = fragment.back();
        // pad + 1 + mac_len must fit inside the fragment.
        pad_valid = static_cast<size_t>(
            pad + 1 + mac_len <= fragment.size());
        if (version_ >= tls1Version) {
            // TLS 1.0: every padding byte must equal the pad length.
            // Scan a fixed window so the pass count does not depend
            // on the (secret) pad value.
            size_t scan = std::min<size_t>(fragment.size() - 1, 255);
            uint8_t diff = 0;
            for (size_t i = 0; i < scan; ++i) {
                // Mask is all-ones for positions inside the padding.
                uint8_t in_pad = static_cast<uint8_t>(
                    0 - static_cast<uint8_t>(i < pad));
                diff |= static_cast<uint8_t>(
                    (fragment[fragment.size() - 2 - i] ^ pad) &
                    in_pad);
            }
            pad_valid &= static_cast<size_t>(diff == 0);
        }
        // On invalid padding, proceed with a zero-length pad so the
        // MAC is still computed (and fails) over a plausible region.
        size_t claimed = pad & (0 - pad_valid);
        data_len = fragment.size() - 1 - claimed;
    }
    if (data_len < mac_len)
        throw SslError(AlertDescription::BadRecordMac,
                       "record: bad record MAC");
    data_len -= mac_len;

    uint8_t expect[crypto::maxRecordMacLen];
    computeMac(recv_, static_cast<uint8_t>(type),
               ConstSpan{fragment.data(), data_len}, recv_.seq++,
               expect);
    size_t mac_valid = static_cast<size_t>(constantTimeEquals(
        expect, fragment.data() + data_len, mac_len));
    if (!(pad_valid & mac_valid))
        throw SslError(AlertDescription::BadRecordMac,
                       "record: bad record MAC");

    fragment.resize(data_len);
    obs_->recordsIn.inc();
    obs_->bytesIn.inc(fragment.size());
    return Record{type, std::move(fragment)};
}

} // namespace ssla::ssl

/**
 * @file
 * ssla_analyze — run trace-analysis passes over serve-bench telemetry.
 *
 * Two modes:
 *
 *   ssla_analyze [--passes a,b,...] [--metrics FILE] TRACE
 *       Ingest a JSONL or Chrome trace (format auto-detected), run the
 *       requested passes (default: all built-ins) and print the
 *       report. Output is deterministic: the same input produces
 *       byte-identical output, so CI can diff two runs.
 *
 *   ssla_analyze --diff OLD.json NEW.json [--max-delta PCT]
 *       Compare two BENCH_*.json artifacts. Exit 1 when a gate field
 *       regressed (bool true -> false) or a path disappeared; numeric
 *       deltas above the threshold (default 25%) are reported but not
 *       fatal.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "obs/analysis/diff.hh"
#include "obs/analysis/model.hh"
#include "obs/analysis/pass.hh"

using namespace ssla::obs::analysis;

namespace
{

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--passes a,b,...] [--metrics FILE] TRACE\n"
        "       %s --diff OLD.json NEW.json [--max-delta PCT]\n"
        "       %s --list\n",
        argv0, argv0, argv0);
    return 2;
}

int
listPasses()
{
    PassRegistry registry = makeBuiltinRegistry();
    for (const Pass *p : registry.all())
        std::printf("%-18s %s\n", p->name(), p->description());
    return 0;
}

std::vector<std::string>
splitCsv(const std::string &csv)
{
    std::vector<std::string> out;
    size_t pos = 0;
    while (pos <= csv.size()) {
        size_t comma = csv.find(',', pos);
        if (comma == std::string::npos) {
            out.push_back(csv.substr(pos));
            break;
        }
        out.push_back(csv.substr(pos, comma - pos));
        pos = comma + 1;
    }
    return out;
}

int
runDiff(const std::string &oldPath, const std::string &newPath,
        double maxDeltaPct)
{
    Json oldDoc = parseJson(readFileOrThrow(oldPath));
    Json newDoc = parseJson(readFileOrThrow(newPath));
    Report report;
    auto &sec = report.section("bench_diff");
    sec.lines.push_back("old: " + oldPath);
    sec.lines.push_back("new: " + newPath);
    DiffResult result = diffBench(oldDoc, newDoc, maxDeltaPct, report);
    std::fputs(report.render().c_str(), stdout);
    return result.failed() ? 1 : 0;
}

int
runAnalysis(const std::string &tracePath,
            const std::string &metricsPath,
            const std::vector<std::string> &passNames)
{
    Corpus corpus = ingestTraceFile(tracePath);
    if (!metricsPath.empty())
        ingestPrometheus(readFileOrThrow(metricsPath), corpus);

    PassRegistry registry = makeBuiltinRegistry();
    std::vector<const Pass *> passes;
    if (passNames.empty()) {
        passes = registry.all();
    } else {
        for (const auto &name : passNames) {
            const Pass *p = registry.find(name);
            if (!p) {
                std::fprintf(stderr,
                             "ssla_analyze: unknown pass '%s' "
                             "(--list shows available passes)\n",
                             name.c_str());
                return 2;
            }
            passes.push_back(p);
        }
    }

    std::printf("ssla_analyze: %s (%zu passes)\n\n",
                tracePath.c_str(), passes.size());
    Report report;
    for (const Pass *p : passes)
        p->run(corpus, report);
    std::fputs(report.render().c_str(), stdout);
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string tracePath;
    std::string metricsPath;
    std::string diffOld, diffNew;
    std::vector<std::string> passNames;
    double maxDeltaPct = 25.0;
    bool diffMode = false;

    for (int k = 1; k < argc; ++k) {
        const std::string arg = argv[k];
        auto next = [&]() -> const char * {
            if (k + 1 >= argc) {
                std::fprintf(stderr,
                             "ssla_analyze: %s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++k];
        };
        if (arg == "--list")
            return listPasses();
        if (arg == "--passes") {
            passNames = splitCsv(next());
        } else if (arg == "--metrics") {
            metricsPath = next();
        } else if (arg == "--max-delta") {
            maxDeltaPct = std::strtod(next(), nullptr);
        } else if (arg == "--diff") {
            diffMode = true;
            diffOld = next();
            diffNew = next();
        } else if (arg == "--help" || arg == "-h") {
            return usage(argv[0]);
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "ssla_analyze: unknown option %s\n",
                         arg.c_str());
            return usage(argv[0]);
        } else if (tracePath.empty()) {
            tracePath = arg;
        } else {
            std::fprintf(stderr,
                         "ssla_analyze: only one trace file "
                         "per run (got %s and %s)\n",
                         tracePath.c_str(), arg.c_str());
            return 2;
        }
    }

    try {
        if (diffMode) {
            if (!tracePath.empty())
                return usage(argv[0]);
            return runDiff(diffOld, diffNew, maxDeltaPct);
        }
        if (tracePath.empty())
            return usage(argv[0]);
        return runAnalysis(tracePath, metricsPath, passNames);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "ssla_analyze: %s\n", e.what());
        return 2;
    }
}

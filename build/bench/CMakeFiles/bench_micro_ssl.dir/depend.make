# Empty dependencies file for bench_micro_ssl.
# This may be replaced when dependencies are built.

#include "crypto/pkcs1.hh"

#include <stdexcept>

namespace ssla::crypto
{

namespace
{

constexpr size_t minPadding = 8;

void
checkFits(size_t data_len, size_t block_len)
{
    if (block_len < data_len + minPadding + 3)
        throw std::length_error("PKCS#1: payload too long for modulus");
}

} // anonymous namespace

Bytes
pkcs1PadType2(const Bytes &data, size_t block_len, RandomPool &pool)
{
    checkFits(data.size(), block_len);
    Bytes block(block_len);
    block[0] = 0x00;
    block[1] = 0x02;
    size_t pad_len = block_len - data.size() - 3;
    for (size_t i = 0; i < pad_len; ++i) {
        uint8_t b = 0;
        while (b == 0)
            pool.generate(&b, 1);
        block[2 + i] = b;
    }
    block[2 + pad_len] = 0x00;
    std::copy(data.begin(), data.end(), block.begin() + 3 + pad_len);
    return block;
}

Bytes
pkcs1PadType1(const Bytes &data, size_t block_len)
{
    checkFits(data.size(), block_len);
    Bytes block(block_len, 0xff);
    block[0] = 0x00;
    block[1] = 0x01;
    size_t pad_len = block_len - data.size() - 3;
    block[2 + pad_len] = 0x00;
    std::copy(data.begin(), data.end(), block.begin() + 3 + pad_len);
    return block;
}

namespace
{

Bytes
unpad(const Bytes &block, uint8_t type, bool random_padding)
{
    if (block.size() < minPadding + 3 || block[0] != 0x00 ||
        block[1] != type)
        throw std::runtime_error("PKCS#1: bad block header");
    size_t i = 2;
    while (i < block.size() && block[i] != 0x00) {
        if (!random_padding && block[i] != 0xff)
            throw std::runtime_error("PKCS#1: bad type-1 padding byte");
        ++i;
    }
    if (i == block.size())
        throw std::runtime_error("PKCS#1: missing separator");
    if (i - 2 < minPadding)
        throw std::runtime_error("PKCS#1: padding too short");
    return Bytes(block.begin() + i + 1, block.end());
}

} // anonymous namespace

Bytes
pkcs1UnpadType2(const Bytes &block)
{
    return unpad(block, 0x02, true);
}

Bytes
pkcs1UnpadType1(const Bytes &block)
{
    return unpad(block, 0x01, false);
}

} // namespace ssla::crypto

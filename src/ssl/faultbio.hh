/**
 * @file
 * Deterministic fault injection at record granularity.
 *
 * A real SSL front-end faces peers that truncate handshakes mid-flight,
 * corrupt bytes, retransmit, stall and reorder. FaultyBio turns the
 * clean in-memory channel of the paper's ssltest arrangement into a
 * reproducible adversarial one: it decorates a MemBio, reassembles the
 * honest sender's byte stream into SSL records (the 5-byte header
 * frames the unit a network fault would hit), and applies a seeded
 * FaultPlan per record before delivery. Every run with the same plan
 * and seed injects the identical fault sequence, so a chaos failure in
 * CI reproduces locally from the logged seed alone.
 *
 * Time is virtual: stalled records are released by explicit tick()
 * calls, which the serving engine maps one-to-one onto multiplexer
 * sweeps and the single-threaded harness onto loop iterations. Faults
 * compose with the MemBio buffering cap — a record that the capped
 * delivery queue refuses stays staged and retries on the next tick,
 * modeling receive-window backpressure.
 */

#ifndef SSLA_SSL_FAULTBIO_HH
#define SSLA_SSL_FAULTBIO_HH

#include <deque>

#include "obs/trace.hh"
#include "ssl/bio.hh"
#include "util/rng.hh"

namespace ssla::ssl
{

/**
 * Target of a bit-level fault — corruption below record granularity.
 * A record-granular fault (drop, truncate, whole-byte corrupt) can
 * make a record unparseable or vanish, but only a flip confined to
 * the ciphertext body DETERMINISTICALLY drives the decrypt-then-verify
 * path: the record still frames, decrypts and pad-checks, and dies on
 * the MAC/pad comparison (bad_record_mac) on every seed. A flip
 * confined to the 5-byte header instead scatters: version bits die
 * pre-decrypt (illegal_parameter), length bits stall the parser or
 * truncate the ciphertext (which the geometry check maps to
 * bad_record_mac by design), type bits survive to the MAC, which
 * covers the type.
 */
enum class FaultKind : uint8_t
{
    BitflipCiphertext, ///< one bit inside the fragment (bytes 5..N)
    BitflipHeader,     ///< one bit inside the 5-byte record header
};

/**
 * Per-record fault probabilities and parameters. Rates are independent
 * Bernoulli draws in [0,1]; a record can suffer at most one mutating
 * fault (first match in the order drop, bitflip-ciphertext,
 * bitflip-header, truncate, corrupt, duplicate, reorder) plus an
 * optional stall, so outcomes stay interpretable. The bitflip draws
 * are only taken when their rate is nonzero, so plans that leave them
 * unset replay the exact pre-bitflip fault sequences for a given seed.
 */
struct FaultPlan
{
    double dropRate = 0.0;      ///< record vanishes entirely
    double truncateRate = 0.0;  ///< 1..N-1 trailing bytes cut
    double corruptRate = 0.0;   ///< one byte XORed (header included)
    double duplicateRate = 0.0; ///< record delivered twice
    double reorderRate = 0.0;   ///< swapped with the next record
    double stallRate = 0.0;     ///< held for stallTicks virtual ticks
    /** One seeded bit flipped inside the fragment body (FaultKind::
     *  BitflipCiphertext). */
    double bitflipCiphertextRate = 0.0;
    /** One seeded bit flipped inside the 5-byte header (FaultKind::
     *  BitflipHeader). */
    double bitflipHeaderRate = 0.0;
    uint64_t stallTicks = 4;    ///< hold time of a stalled record
    /**
     * Delivery-queue cap in bytes (0 = unlimited): undelivered records
     * queue behind a reader that stops reading, modeling a bounded
     * receive window (MemBio::setMaxBuffered on the delivery side).
     */
    size_t maxBuffered = 0;
    uint64_t seed = 1; ///< base PRNG seed (mixed per direction)

    /** All fault types at a common @p rate — the chaos-sweep knob.
     *  Includes the bit-level kinds. */
    static FaultPlan mixed(uint64_t seed, double rate,
                           uint64_t stall_ticks = 4);

    /** A single-kind bit-level plan: flip one seeded bit per selected
     *  record, in the region @p kind names. */
    static FaultPlan bitflip(uint64_t seed, FaultKind kind, double rate);

    bool
    any() const
    {
        return dropRate > 0 || truncateRate > 0 || corruptRate > 0 ||
               duplicateRate > 0 || reorderRate > 0 || stallRate > 0 ||
               bitflipCiphertextRate > 0 || bitflipHeaderRate > 0 ||
               maxBuffered > 0;
    }
};

/** What one FaultyBio did to the stream (assertable in tests). */
struct FaultCounts
{
    uint64_t records = 0; ///< records framed off the honest stream
    uint64_t dropped = 0;
    uint64_t truncated = 0;
    uint64_t corrupted = 0;
    uint64_t duplicated = 0;
    uint64_t reordered = 0;
    uint64_t stalled = 0;
    uint64_t bitflippedCiphertext = 0; ///< FaultKind::BitflipCiphertext
    uint64_t bitflippedHeader = 0;     ///< FaultKind::BitflipHeader
    uint64_t capDeferrals = 0; ///< delivery retries forced by the cap

    uint64_t
    injected() const
    {
        return dropped + truncated + corrupted + duplicated +
               reordered + stalled + bitflippedCiphertext +
               bitflippedHeader;
    }
};

/**
 * A MemBio whose write side passes through a fault plan.
 *
 * Writers see a queue that always accepts (the adversary models the
 * network, not the sender's socket buffer); readers see whatever
 * survives the plan, in head-of-line order — a stalled record delays
 * everything behind it, like a TCP stream would.
 */
class FaultyBio : public MemBio
{
  public:
    /** @param seed_mix XORed into plan.seed (per-direction split) */
    explicit FaultyBio(const FaultPlan &plan, uint64_t seed_mix = 0);

    /** Frame, mutate and stage @p len bytes; always accepts. */
    bool write(const uint8_t *data, size_t len) override;

    /**
     * Gather-writes funnel through the same fault framing. Without
     * this override the base writev would append slices directly —
     * bypassing record reassembly and wrongly applying the
     * delivery-side cap to the adversary's always-accepting side.
     */
    bool writev(const ConstSpan *iov, size_t iovcnt) override;

    /** Advance virtual time one step and deliver due records. */
    void tick();

    /** Current virtual time (ticks seen). */
    uint64_t now() const { return now_; }

    const FaultCounts &counts() const { return counts_; }

    /** Records staged but not yet delivered (stalls / cap backlog). */
    size_t stagedRecords() const { return staged_.size(); }

    /**
     * Mirror every injected fault into @p trace as a FaultInjected
     * event (label = fault type, arg = record ordinal on this
     * direction, code = @p direction). The trace must outlive the bio
     * or be unbound with null first.
     */
    void
    setTrace(obs::SessionTrace *trace, uint16_t direction = 0)
    {
        trace_ = trace;
        traceDirection_ = direction;
    }

    size_t read(uint8_t *out, size_t len) override;
    void consume(size_t len) override;

  private:
    struct StagedRecord
    {
        Bytes wire;          ///< full record: header + fragment
        uint64_t dueTick = 0;
    };

    void frameRecords();
    void applyFaults(Bytes record);
    void stage(Bytes wire, uint64_t due);
    void drain();
    void traceFault(const char *label);

    FaultPlan plan_;
    Xoshiro256 rng_;
    Bytes assembly_;          ///< honest bytes awaiting a full record
    std::deque<StagedRecord> staged_;
    uint64_t now_ = 0;
    FaultCounts counts_;
    obs::SessionTrace *trace_ = nullptr;
    uint16_t traceDirection_ = 0;
};

/**
 * A BioPair with a FaultyBio in each direction. With one plan both
 * directions share it but draw from independently seeded PRNGs, so
 * client→server and server→client fault sequences are uncorrelated;
 * the two-plan form faults each direction under its own plan (e.g. a
 * lossy upstream against a clean downstream).
 */
class FaultyBioPair
{
  public:
    explicit FaultyBioPair(const FaultPlan &plan);

    /** Asymmetric pair: @p c2s governs client→server, @p s2c the
     *  reverse direction. */
    FaultyBioPair(const FaultPlan &c2s, const FaultPlan &s2c);

    BioEndpoint
    clientEnd()
    {
        return BioEndpoint(&serverToClient_, &clientToServer_);
    }

    BioEndpoint
    serverEnd()
    {
        return BioEndpoint(&clientToServer_, &serverToClient_);
    }

    /** Advance both directions' virtual clocks. */
    void tick();

    /** Mirror both directions' faults into @p trace (0 = client→server,
     *  1 = server→client event codes). */
    void
    setTrace(obs::SessionTrace *trace)
    {
        clientToServer_.setTrace(trace, 0);
        serverToClient_.setTrace(trace, 1);
    }

    const FaultCounts &clientToServerCounts() const
    {
        return clientToServer_.counts();
    }
    const FaultCounts &serverToClientCounts() const
    {
        return serverToClient_.counts();
    }

    /** Total faults injected across both directions. */
    uint64_t faultsInjected() const;

  private:
    FaultyBio clientToServer_;
    FaultyBio serverToClient_;
};

} // namespace ssla::ssl

#endif // SSLA_SSL_FAULTBIO_HH

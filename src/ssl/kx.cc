#include "ssl/kx.hh"

#include <stdexcept>
#include <utility>

#include "crypto/dh.hh"
#include "crypto/md5.hh"
#include "crypto/sha1.hh"
#include "perf/probe.hh"
#include "ssl/alert.hh"
#include "ssl/messages.hh"
#include "util/bytes.hh"

namespace ssla::ssl
{

Bytes
serverKxDigest(const Bytes &client_random, const Bytes &server_random,
               const Bytes &params)
{
    crypto::Md5 md5;
    md5.update(client_random);
    md5.update(server_random);
    md5.update(params);
    Bytes digest = md5.final();

    crypto::Sha1 sha;
    sha.update(client_random);
    sha.update(server_random);
    sha.update(params);
    append(digest, sha.final());
    return digest;
}

KeyExchange::~KeyExchange() { job_.cancel(); }

KxStatus
ServerKx::startServerKeyExchange(KxContext &, const crypto::RsaPrivateKey &)
{
    throw std::logic_error("this key exchange sends no ServerKeyExchange");
}

Bytes
ServerKx::finishServerKeyExchange()
{
    throw std::logic_error("this key exchange sends no ServerKeyExchange");
}

void
ClientKx::processServerKeyExchange(KxContext &,
                                   const crypto::RsaPublicKey &,
                                   const Bytes &)
{
    throw std::logic_error("this key exchange expects no ServerKeyExchange");
}

namespace
{

/**
 * RSA key transport: the certificate key carries the key exchange.
 * The only asymmetric operation is the server-side pre-master
 * decryption, which goes through the provider as an async job.
 */
class RsaServerKx final : public ServerKx
{
  public:
    const char *name() const override { return "rsa"; }
    KxKind kind() const override { return KxKind::Rsa; }
    bool premasterCarriesVersion() const override { return true; }

    KxStatus
    processClientKeyExchange(KxContext &ctx,
                             const crypto::RsaPrivateKey &key,
                             const Bytes &body) override
    {
        // (rsa_private_decryption) Submit through the provider. A
        // synchronous provider resolves before returning, so the
        // parked state falls straight through in the same advance()
        // loop; a pool-backed provider leaves the job in flight.
        ClientKeyExchangeMsg ckx = ClientKeyExchangeMsg::parse(body);
        jobLabel_ = "rsa_decrypt";
        job_ = ctx.provider.submitRsaDecrypt(
            key, std::move(ckx.encryptedPreMaster));
        return KxStatus::Parked;
    }

    Bytes
    finishClientKeyExchange() override
    {
        try {
            Bytes premaster = job_.wait();
            job_.reset();
            return premaster;
        } catch (...) {
            // Drop the failed job so fatal teardown doesn't re-cancel.
            job_.reset();
            throw;
        }
    }
};

class RsaClientKx final : public ClientKx
{
  public:
    const char *name() const override { return "rsa"; }
    KxKind kind() const override { return KxKind::Rsa; }

    Bytes
    makeClientKeyExchange(KxContext &ctx,
                          const crypto::RsaPublicKey &server_key,
                          uint16_t offered_version,
                          Bytes &premaster_out) override
    {
        // 48-byte pre-master: the OFFERED client version, then 46
        // random bytes (rollback protection, RFC 2246 7.4.7.1).
        premaster_out.resize(48);
        premaster_out[0] = static_cast<uint8_t>(offered_version >> 8);
        premaster_out[1] = static_cast<uint8_t>(offered_version);
        ctx.pool.generate(premaster_out.data() + 2, 46);

        ClientKeyExchangeMsg ckx;
        {
            perf::FuncProbe probe("rsa_public_encryption");
            ckx.encryptedPreMaster = crypto::rsaPublicEncrypt(
                server_key, premaster_out, ctx.pool);
        }
        return ckx.encode();
    }
};

/**
 * Ephemeral Diffie-Hellman signed with RSA. The server pays a modexp
 * pair *plus* an RSA signature; the signature is the async job so a
 * pool can absorb it exactly like the RSA-transport decryption.
 */
class DheRsaServerKx final : public ServerKx
{
  public:
    const char *name() const override { return "dhe_rsa"; }
    KxKind kind() const override { return KxKind::DheRsa; }
    bool sendsServerKeyExchange() const override { return true; }

    KxStatus
    startServerKeyExchange(KxContext &ctx,
                           const crypto::RsaPrivateKey &key) override
    {
        const crypto::DhParams &group = crypto::oakleyGroup2();
        key_ = crypto::dhGenerateKey(group, ctx.pool);

        msg_.p = group.p.toBytesBE();
        msg_.g = group.g.toBytesBE();
        msg_.publicValue = key_.pub.toBytesBE();
        // The provider's sign op self-probes as rsa_private_encryption.
        jobLabel_ = "rsa_sign";
        job_ = ctx.provider.submitRsaSign(
            key, serverKxDigest(ctx.clientRandom, ctx.serverRandom,
                                msg_.signedParams()));
        return KxStatus::Parked;
    }

    Bytes
    finishServerKeyExchange() override
    {
        try {
            msg_.signature = job_.wait();
            job_.reset();
        } catch (...) {
            job_.reset();
            throw;
        }
        return msg_.encode();
    }

    KxStatus
    processClientKeyExchange(KxContext &, const crypto::RsaPrivateKey &,
                             const Bytes &body) override
    {
        // DHE: the body is the client's public value; the shared
        // secret is the pre-master (dh_compute_key).
        try {
            Bytes yc = ClientKeyExchangeMsg::parseDhe(body);
            premaster_ = crypto::dhComputeShared(
                crypto::oakleyGroup2(), bn::BigNum::fromBytesBE(yc),
                key_.priv);
        } catch (const SslError &) {
            throw;
        } catch (const std::exception &) {
            throw SslError(AlertDescription::HandshakeFailure,
                           "DH key agreement failed");
        }
        return KxStatus::Done;
    }

    Bytes
    finishClientKeyExchange() override
    {
        return std::move(premaster_);
    }

  private:
    crypto::DhKeyPair key_;
    ServerKeyExchangeMsg msg_;
    Bytes premaster_;
};

class DheRsaClientKx final : public ClientKx
{
  public:
    const char *name() const override { return "dhe_rsa"; }
    KxKind kind() const override { return KxKind::DheRsa; }
    bool expectsServerKeyExchange() const override { return true; }

    void
    processServerKeyExchange(KxContext &ctx,
                             const crypto::RsaPublicKey &server_key,
                             const Bytes &body) override
    {
        ServerKeyExchangeMsg skx = ServerKeyExchangeMsg::parse(body);

        // The ephemeral parameters are only trustworthy if the
        // signature under the certificate key checks out.
        if (!crypto::rsaVerify(
                server_key,
                serverKxDigest(ctx.clientRandom, ctx.serverRandom,
                               skx.signedParams()),
                skx.signature)) {
            throw SslError(AlertDescription::HandshakeFailure,
                           "ServerKeyExchange signature check failed");
        }
        group_.p = bn::BigNum::fromBytesBE(skx.p);
        group_.g = bn::BigNum::fromBytesBE(skx.g);
        serverPublic_ = bn::BigNum::fromBytesBE(skx.publicValue);
        if (group_.p.bitLength() < 512 || group_.g < bn::BigNum(2))
            throw SslError(AlertDescription::IllegalParameter,
                           "implausible DH group");
    }

    Bytes
    makeClientKeyExchange(KxContext &ctx, const crypto::RsaPublicKey &,
                          uint16_t, Bytes &premaster_out) override
    {
        // DHE: generate our ephemeral value and agree on the secret.
        crypto::DhKeyPair mine = crypto::dhGenerateKey(group_, ctx.pool);
        try {
            premaster_out = crypto::dhComputeShared(group_, serverPublic_,
                                                    mine.priv);
        } catch (const std::exception &) {
            throw SslError(AlertDescription::IllegalParameter,
                           "degenerate server DH value");
        }
        return ClientKeyExchangeMsg::encodeDhe(mine.pub.toBytesBE());
    }

  private:
    crypto::DhParams group_;
    bn::BigNum serverPublic_;
};

/**
 * Session resumption: the abbreviated handshake reuses the cached
 * master secret, so no key-exchange messages flow at all. The methods
 * that would exchange keys are defensive errors — the state machines
 * never reach them on the resume path.
 */
class ResumptionServerKx final : public ServerKx
{
  public:
    const char *name() const override { return "resume"; }
    KxKind kind() const override { return KxKind::Resumption; }

    KxStatus
    processClientKeyExchange(KxContext &, const crypto::RsaPrivateKey &,
                             const Bytes &) override
    {
        throw std::logic_error("resumption exchanges no keys");
    }

    Bytes
    finishClientKeyExchange() override
    {
        throw std::logic_error("resumption exchanges no keys");
    }
};

class ResumptionClientKx final : public ClientKx
{
  public:
    const char *name() const override { return "resume"; }
    KxKind kind() const override { return KxKind::Resumption; }

    Bytes
    makeClientKeyExchange(KxContext &, const crypto::RsaPublicKey &,
                          uint16_t, Bytes &) override
    {
        throw std::logic_error("resumption exchanges no keys");
    }
};

template <typename T>
std::unique_ptr<ServerKx>
makeServer()
{
    return std::make_unique<T>();
}

template <typename T>
std::unique_ptr<ClientKx>
makeClient()
{
    return std::make_unique<T>();
}

const KxFactory kxFactories[] = {
    {KxKind::Rsa, "rsa", makeServer<RsaServerKx>,
     makeClient<RsaClientKx>},
    {KxKind::DheRsa, "dhe_rsa", makeServer<DheRsaServerKx>,
     makeClient<DheRsaClientKx>},
    {KxKind::Resumption, "resume", makeServer<ResumptionServerKx>,
     makeClient<ResumptionClientKx>},
};

} // namespace

const KxFactory &
kxFactory(KxKind kind)
{
    for (const KxFactory &f : kxFactories)
        if (f.kind == kind)
            return f;
    throw std::invalid_argument("kxFactory: unknown key-exchange kind");
}

std::unique_ptr<ServerKx>
makeServerKx(const CipherSuite &suite, bool resuming)
{
    return (resuming ? kxFactory(KxKind::Resumption) : suite.kxFactory())
        .makeServer();
}

std::unique_ptr<ClientKx>
makeClientKx(const CipherSuite &suite, bool resuming)
{
    return (resuming ? kxFactory(KxKind::Resumption) : suite.kxFactory())
        .makeClient();
}

const KxFactory &
CipherSuite::kxFactory() const
{
    return ssl::kxFactory(kx);
}

} // namespace ssla::ssl

/**
 * @file
 * Always-on metrics registry: named counters, gauges and log-scale
 * latency histograms, sharded per thread so the serving hot path never
 * contends on a shared cache line.
 *
 * The paper's whole contribution is measurement; this registry is the
 * production counterpart of the bench-only PerfContext. Library code
 * resolves a handle once (a string lookup under a mutex) and then
 * increments through it forever (a relaxed atomic add into the calling
 * thread's own shard). Snapshots aggregate across shards, so reads are
 * approximately consistent — the right trade for monitoring.
 *
 * Design points:
 *  - Counters are monotonic uint64 adds, sharded per thread. A thread's
 *    cells live as long as the registry, so worker-thread exit never
 *    loses counts.
 *  - Gauges are shared atomic int64 set/add (a per-thread "set" has no
 *    meaningful aggregate).
 *  - Histograms use a log-linear bucket layout (32 sub-buckets per
 *    power of two): values 0..63 are exact, larger values land in
 *    buckets of relative width 1/32 (~3%), which is tighter than the
 *    run-to-run noise of anything we measure. Bucket cells are
 *    per-thread and merged on snapshot; merge(a,b) is exact (it is a
 *    vector add), which the tests assert against record-all.
 *  - A disabled registry (setEnabled(false)) reduces every operation
 *    to one relaxed load + branch — the A/B knob behind the "metrics
 *    overhead within 3%" acceptance bench.
 */

#ifndef SSLA_OBS_METRICS_HH
#define SSLA_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace ssla::obs
{

class MetricsRegistry;

/** Log-linear histogram bucket geometry (shared by cells/snapshots). */
struct HistogramLayout
{
    /** Sub-bucket resolution: 2^5 = 32 buckets per power of two. */
    static constexpr unsigned subBits = 5;
    static constexpr uint64_t subCount = 1ull << subBits; // 32
    /** Values below 2*subCount get unit-width buckets. */
    static constexpr uint64_t linearMax = 2 * subCount; // 64
    /** Octaves with log-linear buckets: exponents 6..63. */
    static constexpr size_t octaves = 64 - (subBits + 1); // 58
    static constexpr size_t bucketCount =
        linearMax + octaves * subCount; // 64 + 58*32 = 1920

    /** Bucket index for a value (total order, powers of two exact). */
    static size_t bucketIndex(uint64_t v);
    /** Inclusive lower bound of bucket @p i. */
    static uint64_t lowerBound(size_t i);
    /** Exclusive upper bound of bucket @p i (saturates at 2^64-1). */
    static uint64_t upperBound(size_t i);
};

/**
 * An aggregated histogram: bucket counts plus count/sum/min/max.
 * Percentiles interpolate linearly inside the containing bucket, so
 * the error is bounded by one bucket width (<= ~3% relative).
 */
struct HistogramSnapshot
{
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t min = 0;
    uint64_t max = 0;
    std::vector<uint64_t> buckets; ///< empty when count == 0

    double
    mean() const
    {
        return count ? double(sum) / double(count) : 0.0;
    }

    /** Value at percentile @p p in [0,100], clamped into [min,max]. */
    double percentile(double p) const;

    /** Exact merge: afterwards this equals record-all of both inputs. */
    void merge(const HistogramSnapshot &other);
};

/** Aggregated view of a whole registry at one instant. */
struct MetricsSnapshot
{
    std::map<std::string, uint64_t> counters;
    std::map<std::string, int64_t> gauges;
    std::map<std::string, HistogramSnapshot> histograms;

    /** Counter value by name (0 when absent). */
    uint64_t counter(const std::string &name) const;
    /** Histogram by name (empty snapshot when absent). */
    HistogramSnapshot histogram(const std::string &name) const;
};

/**
 * Cheap copyable handle to a registered counter. A default-constructed
 * (or overflowed-registry) handle is valid to use and does nothing.
 * Handles may be shared freely across threads; each increment lands in
 * the calling thread's shard.
 */
class Counter
{
  public:
    Counter() = default;
    void inc(uint64_t n = 1) const;
    bool valid() const { return reg_ != nullptr; }

  private:
    friend class MetricsRegistry;
    Counter(MetricsRegistry *reg, uint32_t id) : reg_(reg), id_(id) {}
    MetricsRegistry *reg_ = nullptr;
    uint32_t id_ = 0;
};

/** Handle to a shared gauge (set/add semantics, may go negative). */
class Gauge
{
  public:
    Gauge() = default;
    void set(int64_t v) const;
    void add(int64_t delta) const;
    bool valid() const { return reg_ != nullptr; }

  private:
    friend class MetricsRegistry;
    Gauge(MetricsRegistry *reg, uint32_t id) : reg_(reg), id_(id) {}
    MetricsRegistry *reg_ = nullptr;
    uint32_t id_ = 0;
};

/** Handle to a latency histogram. record() is wait-free. */
class Histogram
{
  public:
    Histogram() = default;
    void record(uint64_t value) const;
    bool valid() const { return reg_ != nullptr; }

  private:
    friend class MetricsRegistry;
    Histogram(MetricsRegistry *reg, uint32_t id) : reg_(reg), id_(id) {}
    MetricsRegistry *reg_ = nullptr;
    uint32_t id_ = 0;
};

/**
 * The registry. Metric registration (counter()/gauge()/histogram()) is
 * mutex-protected and idempotent by name; the returned handles are the
 * hot path. Instances are independent — benches hand the ServeEngine a
 * fresh registry per cell for clean per-cell numbers; everything else
 * defaults to the process-wide global().
 */
class MetricsRegistry
{
  public:
    /** Capacity bounds; registrations beyond them yield no-op handles
     *  (a warning is logged once per registry). Fixed capacities keep
     *  the per-thread shards reallocation-free, which is what makes
     *  the increment path lock-free. */
    static constexpr size_t maxCounters = 512;
    static constexpr size_t maxGauges = 64;
    static constexpr size_t maxHistograms = 64;

    MetricsRegistry();
    ~MetricsRegistry();

    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** The process-wide always-on registry (never destroyed). */
    static MetricsRegistry &global();

    Counter counter(const std::string &name);
    Gauge gauge(const std::string &name);
    Histogram histogram(const std::string &name);

    /**
     * Master switch: when disabled, every handle operation is a single
     * relaxed load + branch. Registration still works.
     */
    void
    setEnabled(bool on)
    {
        enabled_.store(on, std::memory_order_relaxed);
    }

    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Aggregate all shards into a consistent-enough snapshot. */
    MetricsSnapshot snapshot() const;

  private:
    friend class Counter;
    friend class Gauge;
    friend class Histogram;

    struct HistCells;
    struct ThreadShard;

    ThreadShard &myShard();
    void counterAdd(uint32_t id, uint64_t n);
    void gaugeSet(uint32_t id, int64_t v);
    void gaugeAdd(uint32_t id, int64_t delta);
    void histogramRecord(uint32_t id, uint64_t value);
    void warnOverflowOnce(const char *kind);

    mutable std::mutex m_;
    std::vector<std::unique_ptr<ThreadShard>> shards_;
    std::unordered_map<std::string, uint32_t> counterIds_;
    std::unordered_map<std::string, uint32_t> gaugeIds_;
    std::unordered_map<std::string, uint32_t> histIds_;
    std::vector<std::string> counterNames_;
    std::vector<std::string> gaugeNames_;
    std::vector<std::string> histNames_;
    std::unique_ptr<std::atomic<int64_t>[]> gauges_;
    std::atomic<bool> enabled_{true};
    bool overflowWarned_ = false;
    const uint64_t serial_; ///< unique per instance (TLS cache key)
};

} // namespace ssla::obs

#endif // SSLA_OBS_METRICS_HH

/**
 * @file
 * Certificate tests: issue/encode/parse/verify, CA-signed chains,
 * tamper rejection and validity windows.
 */

#include <gtest/gtest.h>

#include "pki/cert.hh"
#include "util/bytes.hh"

#include "testkeys.hh"

namespace
{

using namespace ssla;
using namespace ssla::pki;

CertificateInfo
baseInfo()
{
    CertificateInfo info;
    info.serial = 99;
    info.issuer = "Issuer Org";
    info.subject = "subject.example";
    info.notBefore = 100;
    info.notAfter = 200;
    info.publicKey = test::testKey1024().pub;
    return info;
}

TEST(Cert, IssueParseRoundTrip)
{
    Certificate cert =
        Certificate::issue(baseInfo(), *test::testKey1024().priv);
    Certificate parsed = Certificate::parse(cert.encoded());
    EXPECT_EQ(parsed.info().serial, 99u);
    EXPECT_EQ(parsed.info().issuer, "Issuer Org");
    EXPECT_EQ(parsed.info().subject, "subject.example");
    EXPECT_EQ(parsed.info().notBefore, 100u);
    EXPECT_EQ(parsed.info().notAfter, 200u);
    EXPECT_EQ(parsed.info().publicKey.n, test::testKey1024().pub.n);
    EXPECT_EQ(parsed.info().publicKey.e, test::testKey1024().pub.e);
    EXPECT_EQ(parsed.encoded(), cert.encoded());
}

TEST(Cert, SelfSignedVerifies)
{
    Certificate cert =
        Certificate::issue(baseInfo(), *test::testKey1024().priv);
    EXPECT_TRUE(cert.verify(test::testKey1024().pub));
}

TEST(Cert, CaSignedChainVerifies)
{
    // CA (otherKey) signs a server cert whose subject key is testKey.
    CertificateInfo info = baseInfo();
    info.issuer = "Root CA";
    Certificate cert =
        Certificate::issue(info, *test::otherKey1024().priv);
    EXPECT_TRUE(cert.verify(test::otherKey1024().pub));
    EXPECT_FALSE(cert.verify(test::testKey1024().pub));
}

TEST(Cert, ParsedCertificateVerifies)
{
    Certificate cert =
        Certificate::issue(baseInfo(), *test::testKey1024().priv);
    Certificate parsed = Certificate::parse(cert.encoded());
    EXPECT_TRUE(parsed.verify(test::testKey1024().pub));
}

TEST(Cert, TamperedBodyFailsVerification)
{
    Certificate cert =
        Certificate::issue(baseInfo(), *test::testKey1024().priv);
    Bytes bytes = cert.encoded();
    // Flip a byte inside the subject name region.
    bool flipped = false;
    for (size_t i = 0; i + 7 < bytes.size(); ++i) {
        if (std::equal(bytes.begin() + i, bytes.begin() + i + 7,
                       toBytes("subject").begin())) {
            bytes[i] ^= 0x01;
            flipped = true;
            break;
        }
    }
    ASSERT_TRUE(flipped);
    Certificate parsed = Certificate::parse(bytes);
    EXPECT_FALSE(parsed.verify(test::testKey1024().pub));
}

TEST(Cert, TamperedSignatureFailsVerification)
{
    Certificate cert =
        Certificate::issue(baseInfo(), *test::testKey1024().priv);
    Bytes bytes = cert.encoded();
    bytes.back() ^= 0x01; // signature is the trailing field
    Certificate parsed = Certificate::parse(bytes);
    EXPECT_FALSE(parsed.verify(test::testKey1024().pub));
}

TEST(Cert, GarbageInputThrows)
{
    EXPECT_THROW(Certificate::parse(toBytes("not a certificate")),
                 std::runtime_error);
    EXPECT_THROW(Certificate::parse(Bytes{}), std::runtime_error);
}

TEST(Cert, TrailingGarbageRejected)
{
    Certificate cert =
        Certificate::issue(baseInfo(), *test::testKey1024().priv);
    Bytes bytes = cert.encoded();
    bytes.push_back(0x00);
    EXPECT_THROW(Certificate::parse(bytes), std::runtime_error);
}

TEST(Cert, ValidityWindow)
{
    Certificate cert =
        Certificate::issue(baseInfo(), *test::testKey1024().priv);
    EXPECT_FALSE(cert.validAt(99));
    EXPECT_TRUE(cert.validAt(100));
    EXPECT_TRUE(cert.validAt(150));
    EXPECT_TRUE(cert.validAt(200));
    EXPECT_FALSE(cert.validAt(201));
}

TEST(Cert, ImplausiblySmallKeyRejected)
{
    CertificateInfo info = baseInfo();
    info.publicKey.n = bn::BigNum(12345);
    info.publicKey.e = bn::BigNum(3);
    // Issue will produce a cert whose embedded key is tiny; parsing
    // must reject it.
    Certificate cert =
        Certificate::issue(info, *test::testKey1024().priv);
    EXPECT_THROW(Certificate::parse(cert.encoded()), std::runtime_error);
}

} // anonymous namespace

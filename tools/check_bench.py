#!/usr/bin/env python3
"""Validate BENCH_*.json artifacts emitted by the bench binaries.

Every bench that writes a JSON document carries one or more *gate*
fields — the booleans its own exit code is derived from — plus numeric
results CI archives. A refactor that breaks a JsonWriter call site (or
a gate that silently becomes NaN through a zero-division) should fail
the smoke job even when the binary's exit code still reads 0, so this
checker re-validates the artifacts from the outside:

  * the file parses as strict JSON (no NaN/Infinity literals anywhere);
  * the document's "bench" field selects a known schema;
  * every gate field for that schema is present, bool-typed and true;
  * every required field path exists and numeric leaves are finite.

Usage: check_bench.py FILE [FILE...]
Exit status: 0 when every artifact passes, 1 otherwise.
"""

import json
import math
import sys

# Per-bench schema: gate fields must be present, bool and True; the
# required paths must merely exist (with finite numeric leaves). A path
# component of "*" fans out over every element of a list, which must be
# non-empty.
SCHEMAS = {
    "engine_pipeline": {
        "gates": ["all_wire_identical", "overlap_win_demonstrated"],
        "required": [
            "cycle_hz",
            "results.*.cpu_ratio",
            "results.*.scalar.cpu_cycles_per_byte",
            "results.*.pipelined.cpu_cycles_per_byte",
        ],
    },
    "serve_scale": {
        "gates": ["all_completed"],
        "required": [
            "results.*.full_handshakes",
            "results.*.elapsed_sec",
            "results.*.bulk_mb_per_sec",
            "metrics_overhead.overhead_ratio",
        ],
    },
    "serve_degradation": {
        "gates": ["all_accounted", "clean_baseline_ok"],
        # The results array mixes per-rate cells with per-mode summary
        # rows (monotone_goodput), so only the shared key is required.
        "required": [
            "results.*.pool_mode",
        ],
    },
    "kx_matrix": {
        # The kx bench gates via its exit code on wire identity per
        # cell; the artifact exposes the per-cell flag.
        "gates": [],
        "required": [
            "cells.*.wire_identical",
            "cells.*.layers_kc.total",
        ],
    },
    "bn_backend": {
        "gates": [
            "gate.pass",
            "gate.rsa_identical",
            "gate.dh_identical",
            "gate.modexp_identical",
            "gate.bn64_faster",
        ],
        "required": [
            "cycle_hz",
            "modexp.*.bits",
            "modexp.*.bn32_ms",
            "modexp.*.bn64_ms",
            "modexp.*.speedup",
            "profiles.*.backend",
            "profiles.*.rows.*.function",
            "profiles.*.rows.*.pct",
        ],
    },
    "serve_overload": {
        "gates": [
            "gate.pass",
            "gate.adaptive_goodput_wins",
            "gate.no_hung_sessions",
            "gate.all_accounted",
        ],
        "required": [
            "rsa_op_ms",
            "abandon_ms",
            "results.*.policy",
            "results.*.goodput_per_sec",
            "results.*.goodput_fraction",
            "results.*.hs_p99_us",
            "results.*.wasted_work_fraction",
            "chaos.*.thread_restarts",
            "chaos.*.hung_sessions",
        ],
    },
    "serve_throughput": {
        "gates": [
            "gate.pass",
            "gate.wire_identical",
            "gate.steady_state_zero",
            "gate.engine_completed",
        ],
        "required": [
            "results.*.record_layer.records_per_sec",
            "results.*.record_layer.mb_per_sec",
            "results.*.serve_engine.records_per_sec_per_worker",
            "results.*.serve_engine.mb_per_sec_per_worker",
            "steady_state.*.scratch_grows",
            "steady_state.*.pending_spills",
            "wire_identity.*.identical",
        ],
    },
}


def resolve(doc, path):
    """Yield every value at dotted @p path, fanning out over '*'."""
    nodes = [doc]
    for part in path.split("."):
        nxt = []
        for node in nodes:
            if part == "*":
                if not isinstance(node, list) or not node:
                    raise KeyError(f"{path}: expected non-empty list")
                nxt.extend(node)
            else:
                if not isinstance(node, dict) or part not in node:
                    raise KeyError(f"{path}: missing '{part}'")
                nxt.append(node[part])
        nodes = nxt
    return nodes


def reject_nonfinite(value, where):
    if isinstance(value, float) and not math.isfinite(value):
        raise ValueError(f"{where}: non-finite number {value!r}")


def check_file(path):
    errors = []
    try:
        with open(path) as fh:
            # Strict parse: the C++ JsonWriter must never have emitted
            # a bare nan/inf token (json would accept NaN by default).
            doc = json.load(
                fh,
                parse_constant=lambda c: (_ for _ in ()).throw(
                    ValueError(f"non-finite literal {c}")
                ),
            )
    except (OSError, ValueError) as e:
        return [f"{path}: unreadable or invalid JSON: {e}"]

    bench = doc.get("bench")
    schema = SCHEMAS.get(bench)
    if schema is None:
        return [f"{path}: unknown bench id {bench!r}"]

    for gate in schema["gates"]:
        try:
            values = resolve(doc, gate)
        except KeyError as e:
            errors.append(f"{path}: gate {e}")
            continue
        for v in values:
            if not isinstance(v, bool):
                errors.append(
                    f"{path}: gate {gate} is {type(v).__name__}, "
                    "expected bool"
                )
            elif not v:
                errors.append(f"{path}: gate {gate} is false")

    for req in schema["required"]:
        try:
            for v in resolve(doc, req):
                reject_nonfinite(v, f"{path}: {req}")
        except (KeyError, ValueError) as e:
            errors.append(f"{path}: {e}")

    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failed = False
    for path in argv[1:]:
        errors = check_file(path)
        if errors:
            failed = True
            for e in errors:
                print(f"FAIL {e}", file=sys.stderr)
        else:
            print(f"OK   {path}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

/**
 * @file
 * Montgomery multiplication context for odd moduli.
 *
 * RSA's modular exponentiation spends nearly all of its time in the
 * Montgomery product (built on bn_mul_add_words) and the subsequent
 * reduction (OpenSSL's BN_from_montgomery, visible in the paper's
 * Table 8), so the split between the two is kept explicit here.
 *
 * The hot path works on fixed-width raw limb vectors with scratch
 * buffers owned by the context (the BN_CTX idea), so the inner loops
 * allocate nothing; BigNum-typed wrappers cover general use.
 *
 * A context is bound to one bn::Engine at construction. The bn32
 * backend keeps the paper-era 32-bit state; the bn64 backend delegates
 * every scratch-touching operation to an embedded Mont64Core (64-bit
 * limbs, __int128 intermediates, Karatsuba products). The BigNum-typed
 * interface behaves identically on both; the 32-bit Raw interface is
 * only valid on a bn32 context (it throws std::logic_error on bn64 —
 * backend-specific hot loops must dispatch on core64()).
 *
 * THREAD OWNERSHIP: a context is NOT thread-safe — every mul/sqr/
 * fromMont writes the shared scratch t_ (either width). Each thread
 * must own its contexts outright (the serve-layer CryptoPool keeps a
 * full RsaPrivateKey replica, and with it these contexts, per crypto
 * thread). Share moduli, not contexts. Debug builds assert this on
 * BOTH backends: concurrent entry into a scratch-using operation
 * aborts rather than silently corrupting a computation.
 */

#ifndef SSLA_BN_MONTGOMERY_HH
#define SSLA_BN_MONTGOMERY_HH

#ifndef NDEBUG
#include <atomic>
#endif

#include <memory>

#include "bn/bignum.hh"
#include "bn/kernels64.hh"

namespace ssla::bn
{

class Engine;

/**
 * The 64-bit-limb Montgomery core: R = 2^(64*limbCount), kernels from
 * kernels64.hh, products via bn64Mul/bn64Sqr (Karatsuba above the
 * threshold). Owned by a bn64-bound MontgomeryCtx; usable directly by
 * benches/tests that want the raw hot path.
 */
class Mont64Core
{
  public:
    /** Fixed-width (modulus-sized) little-endian 64-bit limb vector. */
    using Raw64 = std::vector<Limb64>;

    /** @p modulus must already be validated odd and > 1. */
    explicit Mont64Core(const BigNum &modulus);

    /** Number of 64-bit limbs in the modulus (the fixed Raw64 width). */
    size_t limbCount() const { return n64_.size(); }

    /** Widen a reduced BigNum to an n-limb Raw64. */
    Raw64 toRaw(const BigNum &a) const;

    /** Collapse a Raw64 back into a BigNum. */
    BigNum fromRaw(const Raw64 &a) const;

    /** out = a*b*R^-1 mod N (out may not alias a or b). */
    void mulRaw(Raw64 &out, const Raw64 &a, const Raw64 &b) const;

    /** out = a^2*R^-1 mod N (out may not alias a). */
    void sqrRaw(Raw64 &out, const Raw64 &a) const;

    /** out = a*R^-1 mod N — leave the Montgomery domain. */
    void fromMontRaw(Raw64 &out, const Raw64 &a) const;

    /** R^2 mod N: toMont(x) = mulRaw(x, rr). */
    const Raw64 &rrRaw() const { return rr64_; }

    /** R mod N: the value 1 in the Montgomery domain. */
    const Raw64 &oneRaw() const { return one64_; }

  private:
    /** Reduce the 2n-limb product in t_ into @p out (t * R^-1 mod N). */
    void reduceScratch(Raw64 &out) const;

    Raw64 n64_;      ///< the modulus, 64-bit limbs
    Limb64 n0_;      ///< -N^-1 mod 2^64
    Raw64 rr64_;     ///< R^2 mod N (for toMont)
    Raw64 one64_;    ///< R mod N (Montgomery representation of 1)
    mutable Raw64 t_; ///< 2n+1-limb product/reduction scratch

#ifndef NDEBUG
    friend class Scratch64Guard;
    /** Debug-only reentrancy flag asserting single-thread ownership. */
    mutable std::atomic<unsigned> scratchBusy_{0};
#endif
};

/** Precomputed per-modulus state for Montgomery arithmetic. */
class MontgomeryCtx
{
  public:
    /** Fixed-width (modulus-sized) little-endian 32-bit limb vector. */
    using Raw = std::vector<Limb>;

    /**
     * Build a context for @p modulus on @p engine (nullptr selects the
     * calling thread's activeEngine(), which defaults to bn32).
     * @throws std::domain_error unless the modulus is odd and > 1
     */
    explicit MontgomeryCtx(const BigNum &modulus,
                           const Engine *engine = nullptr);

    const BigNum &modulus() const { return n_; }

    /** The engine this context is bound to. */
    const Engine &engine() const { return *engine_; }

    /** The 64-bit core, or nullptr on a bn32-bound context. */
    const Mont64Core *core64() const { return core64_.get(); }

    /** Number of 32-bit limbs in the modulus (the fixed Raw width). */
    size_t limbCount() const { return n_.size(); }

    // BigNum-typed interface (backend-agnostic).

    /** Map @p a (in [0, N)) into the Montgomery domain: a*R mod N. */
    BigNum toMont(const BigNum &a) const;

    /** Map out of the Montgomery domain: a*R^-1 mod N. */
    BigNum fromMont(const BigNum &a) const;

    /** Montgomery product: a*b*R^-1 mod N for a, b in the domain. */
    BigNum mul(const BigNum &a, const BigNum &b) const;

    /** Montgomery square: a*a*R^-1 mod N. */
    BigNum sqr(const BigNum &a) const;

    /** The value 1 in the Montgomery domain (R mod N). */
    const BigNum &one() const { return rModN_; }

    // Raw fixed-width interface (the allocation-free bn32 hot path).
    // All four throw std::logic_error on a bn64-bound context; use
    // core64() there.

    /** Widen a reduced BigNum to an n-limb Raw. */
    Raw toRaw(const BigNum &a) const;

    /** Collapse a Raw back into a BigNum. */
    BigNum fromRaw(const Raw &a) const;

    /** out = a*b*R^-1 mod N (out may not alias a or b). */
    void mulRaw(Raw &out, const Raw &a, const Raw &b) const;

    /** out = a^2*R^-1 mod N (out may not alias a). */
    void sqrRaw(Raw &out, const Raw &a) const;

  private:
    /**
     * Reduce the double-width product in scratch t_ into @p out:
     * out = t * R^-1 mod N. This is OpenSSL's BN_from_montgomery and
     * is probed as such.
     */
    void reduceScratch(Raw &out) const;

    /** Throw std::logic_error when the 32-bit Raw path is unusable. */
    void requireBn32() const;

    BigNum n_;                ///< the modulus
    const Engine *engine_;    ///< bound backend (singleton, never null)
    Limb n0_ = 0;             ///< -N^-1 mod 2^32 (bn32 only)
    BigNum rr_;               ///< R^2 mod N (bn32 toMont)
    BigNum rModN_;            ///< R mod N for the bound backend's R
    mutable Raw t_;           ///< 2n+1-limb scratch (bn32 only)
    std::unique_ptr<Mont64Core> core64_; ///< set iff bound to bn64

#ifndef NDEBUG
    friend class ScratchGuard;
    /** Debug-only reentrancy flag asserting single-thread ownership. */
    mutable std::atomic<unsigned> scratchBusy_{0};
#endif
};

} // namespace ssla::bn

#endif // SSLA_BN_MONTGOMERY_HH

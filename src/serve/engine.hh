/**
 * @file
 * Multi-core SSL serving engine.
 *
 * The paper characterizes one handshake on one thread; a terminating
 * server's problem is thousands of concurrent handshakes on a few
 * cores. The ServeEngine adds that axis to the reproduction: N worker
 * threads each multiplex many in-memory client/server connection pairs
 * (the paper's ssltest arrangement, many at once) through the existing
 * non-blocking endpoints. Sessions shard across workers by
 * construction — each worker owns its connections outright, so the
 * only shared state is the session store (lock-striped), the crypto
 * pool (internally synchronized) and the completed-session list used
 * to seed resumption attempts.
 *
 * With a CryptoPool configured, a server that reaches
 * ClientKeyExchange parks on the offloaded RSA decrypt
 * (SslServer::waitingOnCrypto()) and its worker moves on to the next
 * session in the shard — the Section 6.2 "other useful work" applied
 * across connections rather than within one record path (which PR 2's
 * PipelinedProvider already covers).
 */

#ifndef SSLA_SERVE_ENGINE_HH
#define SSLA_SERVE_ENGINE_HH

#include <memory>

#include "pki/cert.hh"
#include "serve/cryptopool.hh"
#include "ssl/ciphersuite.hh"
#include "ssl/shardcache.hh"

namespace ssla::serve
{

/** Workload and topology of one engine run. */
struct ServeConfig
{
    /** Worker threads, each multiplexing its own session shard. */
    size_t workers = 1;
    /** Connection slots a worker keeps in flight at once. */
    size_t concurrentPerWorker = 8;
    /** Total connections each worker completes before stopping. */
    size_t connectionsPerWorker = 32;
    /**
     * Fraction (0..1) of connections that offer a previously
     * established session for resumption (abbreviated handshake).
     * Sessions complete on any worker and resume on any other through
     * the sharded store.
     */
    double resumeFraction = 0.0;
    /** Application bytes the client streams per connection (0 = none). */
    size_t bulkBytes = 0;
    /** Bytes per application-data write during the bulk phase. */
    size_t recordBytes = 4096;
    ssl::CipherSuiteId suite = ssl::CipherSuiteId::RSA_3DES_EDE_CBC_SHA;
    /**
     * Crypto pool for asynchronous RSA offload; null keeps the
     * synchronous in-handshake decrypt (the baseline).
     */
    CryptoPool *cryptoPool = nullptr;
    /** Base provider (null = scalar). Must be thread-safe to share. */
    crypto::Provider *provider = nullptr;
    /** Server identity; both must be set. */
    const pki::Certificate *certificate = nullptr;
    std::shared_ptr<crypto::RsaPrivateKey> privateKey;
    /** Session store; null = engine-internal ShardedSessionCache. */
    ssl::SessionStore *sessionStore = nullptr;
    /** Stripe count of the internal store (when sessionStore null). */
    size_t cacheShards = 8;
    /** Seed from which all per-connection randomness derives. */
    uint64_t seed = 0x5e17e;
};

/** Counters one worker accumulates (no locks; read after join). */
struct WorkerStats
{
    uint64_t fullHandshakes = 0;
    uint64_t resumedHandshakes = 0;
    uint64_t bulkBytesMoved = 0;
    /** Times a session parked on an in-flight RSA decrypt. */
    uint64_t parkEvents = 0;
    /** Multiplexer sweeps over the shard. */
    uint64_t sweeps = 0;
};

/** Aggregate results of a run. */
struct ServeStats
{
    std::vector<WorkerStats> perWorker;
    double elapsedSeconds = 0.0;

    uint64_t fullHandshakes() const;
    uint64_t resumedHandshakes() const;
    uint64_t bulkBytesMoved() const;
    uint64_t parkEvents() const;

    double fullHandshakesPerSec() const;
    double resumedHandshakesPerSec() const;
    double bulkMBPerSec() const;
};

/** Drives the configured workload to completion on worker threads. */
class ServeEngine
{
  public:
    /**
     * @throws std::invalid_argument on missing identity or zero work
     */
    explicit ServeEngine(ServeConfig config);
    ~ServeEngine();

    ServeEngine(const ServeEngine &) = delete;
    ServeEngine &operator=(const ServeEngine &) = delete;

    /**
     * Run the workload to completion and return aggregate stats.
     * Rethrows the first worker failure (handshake errors are bugs
     * here — both peers are ours).
     */
    ServeStats run();

    /** The session store the run used (internal or configured). */
    ssl::SessionStore &sessionStore();

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace ssla::serve

#endif // SSLA_SERVE_ENGINE_HH

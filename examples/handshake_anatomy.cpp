/**
 * @file
 * Dissects one SSL handshake the way the paper's Section 4.2 does:
 * prints every server-side step with its cycle cost and the crypto
 * functions it invoked, for both a full and a resumed handshake.
 *
 *   ./handshake_anatomy
 */

#include <cstdio>
#include <memory>

#include "perf/probe.hh"
#include "perf/report.hh"
#include "ssl/client.hh"
#include "ssl/server.hh"
#include "util/rng.hh"

using namespace ssla;
using namespace ssla::ssl;

namespace
{

struct Identity
{
    crypto::RsaKeyPair key;
    pki::Certificate cert;

    Identity()
    {
        Xoshiro256 seed(7);
        bn::RngFunc rng = [&](uint8_t *out, size_t len) {
            seed.fill(out, len);
        };
        key = crypto::rsaGenerateKey(1024, rng);
        pki::CertificateInfo info;
        info.serial = 2;
        info.issuer = "Anatomy CA";
        info.subject = "anatomy.example";
        info.notBefore = 0;
        info.notAfter = ~uint64_t(0);
        info.publicKey = key.pub;
        cert = pki::Certificate::issue(info, *key.priv);
    }
};

Session
dissect(const Identity &id, SessionCache &cache,
        std::optional<Session> resume, const char *title)
{
    perf::PerfContext ctx;
    BioPair wires;

    ServerConfig scfg;
    scfg.certificate = id.cert;
    scfg.privateKey = id.key.priv;
    scfg.sessionCache = &cache;

    std::unique_ptr<SslServer> server;
    {
        perf::ContextScope scope(&ctx);
        server = std::make_unique<SslServer>(scfg, wires.serverEnd());
    }
    ClientConfig ccfg;
    ccfg.resumeSession = resume;
    SslClient client(ccfg, wires.clientEnd());

    while (!client.handshakeDone() || !server->handshakeDone()) {
        bool progress = client.advance();
        {
            perf::ContextScope scope(&ctx);
            progress |= server->advance();
        }
        if (!progress)
            throw std::runtime_error("deadlock");
    }

    perf::TablePrinter table(title);
    table.setHeader({"probe", "kcycles", "calls"});
    for (const auto &[name, counter] : ctx.counters()) {
        table.addRow({name,
                      perf::fmtF(counter.inclusive / 1e3, 1),
                      perf::fmt("%llu", static_cast<unsigned long long>(
                                            counter.calls))});
    }
    table.print();
    std::printf("resumed: %s\n", server->resumed() ? "yes" : "no");
    return client.session();
}

} // anonymous namespace

int
main()
{
    Identity id;
    SessionCache cache;

    Session sess = dissect(id, cache, std::nullopt,
                           "Full handshake anatomy (server side)");
    dissect(id, cache, sess,
            "Resumed handshake anatomy (server side) — note the "
            "missing rsa_private_decryption");
    return 0;
}

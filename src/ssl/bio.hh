/**
 * @file
 * In-memory I/O channels — the "memory buffers" the paper's standalone
 * ssltest setup relays messages through (Section 3.2).
 *
 * A BioPair is two byte queues; each endpoint writes into one and
 * reads from the other, so a client and a server context in the same
 * process can complete a handshake with no sockets involved.
 *
 * MemBio's I/O surface is virtual so decorators can interpose on the
 * channel: FaultyBio (ssl/faultbio.hh) reframes writes at record
 * granularity and injects seeded faults for the robustness harness.
 */

#ifndef SSLA_SSL_BIO_HH
#define SSLA_SSL_BIO_HH

#include <cstdint>

#include "util/iovec.hh"
#include "util/types.hh"

namespace ssla::ssl
{

/** A FIFO byte queue with peeking, lazy compaction and an optional
 *  buffering cap (backpressure against peers that never read). */
class MemBio
{
  public:
    MemBio() = default;
    virtual ~MemBio() = default;

    /**
     * Append @p len bytes. Returns false — accepting nothing — when a
     * configured maxBuffered() cap would be exceeded; the caller must
     * retry after the reader drains (the would-block a serving engine
     * treats like a stalled peer). Always true when uncapped.
     */
    virtual bool write(const uint8_t *data, size_t len);
    bool write(const Bytes &data) { return write(data.data(), data.size()); }

    /**
     * Gather-write a scatter list in one call. The vector is accepted
     * or refused *whole* against maxBuffered() — a record handed down
     * as header+payload slices is never split across a would-block, the
     * same whole-record refusal write() gives a contiguous record.
     */
    virtual bool writev(const ConstSpan *iov, size_t iovcnt);

    /** Consume up to @p len bytes; returns the number read. */
    virtual size_t read(uint8_t *out, size_t len);

    /** Copy up to @p len bytes without consuming; returns the count. */
    virtual size_t peek(uint8_t *out, size_t len) const;

    /** Discard @p len buffered bytes (after a successful peek). */
    virtual void consume(size_t len);

    /** Bytes currently buffered. */
    virtual size_t available() const { return buf_.size() - head_; }

    /** Total bytes ever written (traffic accounting for the web sim). */
    uint64_t totalWritten() const { return totalWritten_; }

    /**
     * Cap buffered-but-unread bytes at @p cap (0 = unlimited, the
     * default). A write that would exceed the cap is refused whole —
     * records are never split — and counted in blockedWrites().
     */
    void setMaxBuffered(size_t cap) { maxBuffered_ = cap; }
    size_t maxBuffered() const { return maxBuffered_; }

    /** Writes refused because the cap was reached. */
    uint64_t blockedWrites() const { return blockedWrites_; }

  private:
    void compact();

    Bytes buf_;
    size_t head_ = 0;
    uint64_t totalWritten_ = 0;
    size_t maxBuffered_ = 0;
    uint64_t blockedWrites_ = 0;
};

/** One side's view of a BioPair: read from one queue, write the other. */
class BioEndpoint
{
  public:
    BioEndpoint() = default;
    BioEndpoint(MemBio *in, MemBio *out) : in_(in), out_(out) {}

    /** Write to the outbound queue; false = would-block (cap hit). */
    bool write(const uint8_t *data, size_t len);
    bool write(const Bytes &data) { return write(data.data(), data.size()); }

    /** Gather-write; whole-vector accept-or-refuse (see MemBio). */
    bool writev(const ConstSpan *iov, size_t iovcnt);
    size_t read(uint8_t *out, size_t len) { return in_->read(out, len); }
    size_t peek(uint8_t *out, size_t len) const
    {
        return in_->peek(out, len);
    }
    void consume(size_t len) { in_->consume(len); }
    size_t available() const { return in_->available(); }

    /**
     * Flush buffered output (a no-op for memory queues, but probed as
     * BIO_flush so the handshake anatomy shows the same buffer-control
     * entries as the paper's Table 2).
     */
    void flush();

  private:
    MemBio *in_ = nullptr;
    MemBio *out_ = nullptr;
};

/** A connected pair of byte queues. */
class BioPair
{
  public:
    /** The client's endpoint. */
    BioEndpoint clientEnd() { return BioEndpoint(&serverToClient_, &clientToServer_); }

    /** The server's endpoint. */
    BioEndpoint serverEnd() { return BioEndpoint(&clientToServer_, &serverToClient_); }

    /** Bytes the client has sent (wire-traffic accounting). */
    uint64_t clientBytesSent() const
    {
        return clientToServer_.totalWritten();
    }

    /** Bytes the server has sent. */
    uint64_t serverBytesSent() const
    {
        return serverToClient_.totalWritten();
    }

  private:
    MemBio clientToServer_;
    MemBio serverToClient_;
};

} // namespace ssla::ssl

#endif // SSLA_SSL_BIO_HH

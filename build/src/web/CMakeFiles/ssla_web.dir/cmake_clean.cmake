file(REMOVE_RECURSE
  "CMakeFiles/ssla_web.dir/http.cc.o"
  "CMakeFiles/ssla_web.dir/http.cc.o.d"
  "CMakeFiles/ssla_web.dir/httpsim.cc.o"
  "CMakeFiles/ssla_web.dir/httpsim.cc.o.d"
  "CMakeFiles/ssla_web.dir/kernelmodel.cc.o"
  "CMakeFiles/ssla_web.dir/kernelmodel.cc.o.d"
  "libssla_web.a"
  "libssla_web.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssla_web.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

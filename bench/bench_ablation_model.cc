/**
 * @file
 * Sensitivity ablations for this reproduction's own modelling choices
 * (DESIGN.md "Key design decisions"): how robust are the Table 11 CPI
 * conclusions to the pipeline-model parameters, and how robust is the
 * Table 1 module split to the calibrated kernel-model constants?
 */

#include <cstdio>

#include "opmix.hh"
#include "perf/cpimodel.hh"
#include "perf/report.hh"
#include "web/kernelmodel.hh"

using namespace ssla;
using namespace ssla::bench;
using perf::TablePrinter;

int
main()
{
    // ---- CPI-model sensitivity ----------------------------------------
    OpMix rsa = rsaMix();
    OpMix sha1 = sha1Mix();
    OpMix aes = aesMix();

    TablePrinter cpi("Model ablation: CPI vs core parameters "
                     "(claim under test: RSA CPI > logical kernels')");
    cpi.setHeader({"issue width", "mul interval", "AES CPI",
                   "SHA-1 CPI", "RSA CPI", "RSA highest?"});
    for (double width : {1.5, 2.0, 3.0, 4.0}) {
        for (double mul : {4.0, 8.0, 16.0}) {
            perf::CoreParams p;
            p.issueWidth = width;
            p.mulInterval = mul;
            p.loadStorePorts = width / 2.0;
            double aes_cpi = perf::estimateCpi(aes.hist, p).cpi;
            double sha_cpi = perf::estimateCpi(sha1.hist, p).cpi;
            double rsa_cpi = perf::estimateCpi(rsa.hist, p).cpi;
            bool rsa_top = rsa_cpi >= aes_cpi && rsa_cpi >= sha_cpi;
            cpi.addRow({perf::fmtF(width, 1), perf::fmtF(mul, 0),
                        perf::fmtF(aes_cpi, 2), perf::fmtF(sha_cpi, 2),
                        perf::fmtF(rsa_cpi, 2),
                        rsa_top ? "yes" : "NO"});
        }
    }
    cpi.print();

    // ---- kernel-model sensitivity -------------------------------------
    // Table 1's qualitative claim is "SSL ~70%, kernel a large minority".
    // Sweep the modeled constants around the calibration point and
    // report the SSL share, holding measured crypto cycles fixed.
    const double measured_ssl = 2.3e6; // representative 1KB transaction
    web::TrafficShape traffic{2045, 3, 1, 1};

    TablePrinter km("Model ablation: Table 1 SSL share vs kernel-model "
                    "scaling (measured SSL cycles held fixed)");
    km.setHeader({"model scale", "kernel Mcyc", "SSL share"});
    for (double scale : {0.5, 0.75, 1.0, 1.5, 2.0}) {
        web::KernelModelParams p;
        p.kernelPerConnection *= scale;
        p.kernelPerPacket *= scale;
        p.kernelPerByte *= scale;
        p.httpdPerRequest *= scale;
        p.otherPerConnection *= scale;
        web::ModeledCycles m = web::modelNonSslCycles(traffic, p);
        double total = measured_ssl + m.kernel + m.httpd + m.other;
        km.addRow({perf::fmt("%.2fx", scale),
                   perf::fmtF(m.kernel / 1e6, 2),
                   perf::fmtPct(100.0 * measured_ssl / total)});
    }
    km.print();

    std::printf(
        "\nConclusions are robust: RSA's multiply-bound CPI tops the "
        "logical kernels whenever dependent multiplies cost >= 8 "
        "cycles (every era-plausible core; only an aggressive 4-cycle "
        "multiplier lets AES's memory traffic edge ahead), and SSL "
        "still dominates the transaction with the non-SSL model "
        "doubled (~57%% vs the paper's 71.6%%).\n");
    return 0;
}

file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_rsa.dir/bench_table7_rsa.cc.o"
  "CMakeFiles/bench_table7_rsa.dir/bench_table7_rsa.cc.o.d"
  "bench_table7_rsa"
  "bench_table7_rsa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_rsa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

/**
 * @file
 * Multi-core SSL serving engine.
 *
 * The paper characterizes one handshake on one thread; a terminating
 * server's problem is thousands of concurrent handshakes on a few
 * cores. The ServeEngine adds that axis to the reproduction: N worker
 * threads each multiplex many in-memory client/server connection pairs
 * (the paper's ssltest arrangement, many at once) through the existing
 * non-blocking endpoints. Sessions shard across workers by
 * construction — each worker owns its connections outright, so the
 * only shared state is the session store (lock-striped), the crypto
 * pool (internally synchronized) and the completed-session list used
 * to seed resumption attempts.
 *
 * With a CryptoPool configured, a server that reaches
 * ClientKeyExchange parks on the offloaded RSA decrypt
 * (SslServer::waitingOnCrypto()) and its worker moves on to the next
 * session in the shard — the Section 6.2 "other useful work" applied
 * across connections rather than within one record path (which PR 2's
 * PipelinedProvider already covers).
 */

#ifndef SSLA_SERVE_ENGINE_HH
#define SSLA_SERVE_ENGINE_HH

#include <memory>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "pki/cert.hh"
#include "serve/cryptopool.hh"
#include "ssl/ciphersuite.hh"
#include "ssl/faultbio.hh"
#include "ssl/shardcache.hh"

namespace ssla::serve
{

class CircuitBreaker;
class Supervisor;

/** Workload and topology of one engine run. */
struct ServeConfig
{
    /** Worker threads, each multiplexing its own session shard. */
    size_t workers = 1;
    /** Connection slots a worker keeps in flight at once. */
    size_t concurrentPerWorker = 8;
    /** Total connections each worker completes before stopping. */
    size_t connectionsPerWorker = 32;
    /**
     * Fraction (0..1) of connections that offer a previously
     * established session for resumption (abbreviated handshake).
     * Sessions complete on any worker and resume on any other through
     * the sharded store.
     */
    double resumeFraction = 0.0;
    /** Application bytes the client streams per connection (0 = none). */
    size_t bulkBytes = 0;
    /** Bytes per application-data write during the bulk phase. */
    size_t recordBytes = 4096;
    /**
     * Data-plane session mode: when > 0, the bulk phase batches up to
     * this many record-sized spans into ONE gather-send per session per
     * sweep (writev-backed sendMany), instead of one copying write per
     * record. Sweeping the shard then flushes every streaming session
     * back to back — the cross-session batched flush. 0 = legacy
     * per-record writes.
     */
    size_t bulkBatchRecords = 0;
    ssl::CipherSuiteId suite = ssl::CipherSuiteId::RSA_3DES_EDE_CBC_SHA;
    /**
     * Crypto pool for asynchronous RSA offload; null keeps the
     * synchronous in-handshake decrypt (the baseline).
     */
    CryptoPool *cryptoPool = nullptr;
    /** Base provider (null = scalar). Must be thread-safe to share. */
    crypto::Provider *provider = nullptr;
    /** Server identity; both must be set. */
    const pki::Certificate *certificate = nullptr;
    std::shared_ptr<crypto::RsaPrivateKey> privateKey;
    /** Session store; null = engine-internal ShardedSessionCache. */
    ssl::SessionStore *sessionStore = nullptr;
    /**
     * Pre-established sessions injected into the session store and the
     * resumption ring before workers start — the warmed-server arrival
     * mix. Without this, resumption draws fall back to full handshakes
     * until in-run completions seed the ring, which under-counts
     * resumption traffic in short overload runs (a fast-shedding
     * policy would burn the whole fixed workload before any session
     * exists to resume). Harvest from a prior run with
     * ServeEngine::completedSessions().
     */
    std::vector<ssl::Session> resumptionSeed;
    /** Stripe count of the internal store (when sessionStore null). */
    size_t cacheShards = 8;
    /** Seed from which all per-connection randomness derives. */
    uint64_t seed = 0x5e17e;

    // --- Robustness knobs (the fault-injection harness) ---

    /**
     * Adversarial channel: when set, every connection's wires run
     * through a FaultyBioPair whose PRNG is seeded per connection from
     * plan->seed and the engine seed, so a whole chaos run reproduces
     * from two numbers. Implies tolerateFailures. Connection faults
     * are expected to kill sessions; the engine counts the outcome
     * (failed/timed out) and frees the slot instead of aborting.
     */
    const ssl::FaultPlan *faultPlan = nullptr;
    /**
     * Optional distinct plan for the server→client direction. Ignored
     * unless faultPlan is also set; when given, client→server records
     * fault under faultPlan and the reverse direction under this plan
     * (e.g. a lossy upstream against a clean downstream).
     */
    const ssl::FaultPlan *faultPlanReverse = nullptr;
    /**
     * Virtual-tick handshake deadline: sweeps a connection may exist
     * before both sides reach handshakeDone (0 = no deadline; set to a
     * default when faultPlan is given). One tick = one multiplexer
     * sweep of the owning worker, which is also when staged FaultyBio
     * stalls age — so deadlines are deterministic in channel time, not
     * wall time.
     */
    size_t handshakeDeadlineTicks = 0;
    /** Sweeps without progress after the handshake before eviction. */
    size_t idleDeadlineTicks = 0;
    /**
     * Count per-session SslError failures instead of rethrowing them
     * (a torn-down session frees its slot and the run continues).
     * Forced on by faultPlan. Non-SslError exceptions still propagate:
     * under the robustness contract every malformed-input path must
     * surface as exactly one SslError, so anything else is a bug.
     */
    bool tolerateFailures = false;

    // --- Overload-control knobs (the self-healing control plane) ---

    /**
     * Accept-gate circuit breaker (shared across workers; not owned).
     * When set, a connection whose deterministic draw selects a FULL
     * handshake must pass CircuitBreaker::admitFull() before its slot
     * is even built; a refused connection counts as refusedSessions
     * and consumes its workload slot. Resumption draws always pass
     * (the gate models ticket-based preferential admission — the
     * cheapest possible shed point, before any bytes move). The
     * engine feeds the breaker: internal_error teardowns and
     * wall-clock abandonments count as overload failures, completed
     * full handshakes as successes.
     */
    CircuitBreaker *breaker = nullptr;
    /**
     * Heartbeat supervisor (not owned; must outlive run()). Each
     * worker registers an external heartbeat slot and stamps it every
     * sweep, so a wedged worker is at least observable.
     */
    Supervisor *supervisor = nullptr;
    /**
     * Wall-clock handshake abandonment deadline in cycles (0 = off):
     * a session still handshaking this many cycles after creation is
     * torn down as timed out — EVEN while parked on the crypto pool.
     * This models the client that gives up and leaves; it is what
     * makes queue delay cost goodput in the overload bench (virtual-
     * tick deadlines deliberately exempt parked sessions, so without
     * this a session could wait on a saturated queue forever and
     * still "complete").
     */
    uint64_t handshakeAbandonCycles = 0;
    /**
     * Per-job queue-wait budget the workers bind for their crypto
     * submissions (0 = the pool's AdmissionControl default). Jobs
     * whose queue wait exceeds it are deadline-shed by the pool.
     */
    uint64_t cryptoDeadlineBudgetCycles = 0;

    // --- Observability knobs (the telemetry subsystem) ---

    /**
     * Metrics registry the run reports into (null = process-global).
     * Benches that need isolated numbers per cell pass their own.
     */
    obs::MetricsRegistry *metrics = nullptr;
    /**
     * Master metrics switch, applied to the registry before workers
     * start. Disabling turns every counter/histogram touch into a
     * single relaxed load — the overhead-measurement baseline.
     */
    bool metricsEnabled = true;
    /**
     * Trace 1-in-N connections (0 = tracing off, 1 = every session).
     * A traced connection gets a SessionTrace ring shared by its
     * client, server, channel and engine events.
     */
    uint32_t traceSampleEvery = 0;
    /** Where terminal traces go (null = nowhere, tracing still cheap). */
    obs::TraceSink *traceSink = nullptr;
    /**
     * Dump every traced session at its end, not only failures. Off by
     * default: the flight recorder is for post-mortems, and a healthy
     * run's traces are noise (benchmarks opt in for export).
     */
    bool traceDumpAll = false;
    /**
     * Outcome-keyed retention (obs::TraceSampling): every connection
     * records into a ring, failed/timed-out/fatal sessions always
     * dump, and completed ones decay to the 1-in-traceSampleEvery
     * rate. Keeps the interesting tail observable under sampling.
     */
    bool traceKeepFailures = false;
    /**
     * Capture warn()/inform() text into the active session's trace for
     * the duration of run() (installs a process-wide log sink and
     * restores the previous one on exit).
     */
    bool captureWarnings = true;
    /** Ring capacity (events) of each per-session trace. */
    size_t traceCapacity = 192;
};

/**
 * Counters one worker accumulates (no locks; read after join). These
 * are a per-worker view; at worker exit the totals are also flushed
 * into the run's MetricsRegistry as serve.* counters, so the snapshot
 * in ServeStats::metrics carries the same numbers plus percentiles.
 */
struct WorkerStats
{
    uint64_t fullHandshakes = 0;
    uint64_t resumedHandshakes = 0;
    uint64_t bulkBytesMoved = 0;
    /** Times a session parked on in-flight crypto (both reasons). */
    uint64_t parkEvents = 0;
    /** Parks waiting on the pre-master RSA decrypt (RSA suites). */
    uint64_t parkEventsDecrypt = 0;
    /** Parks waiting on the ServerKeyExchange sign (DHE suites). */
    uint64_t parkEventsSign = 0;
    /** Multiplexer sweeps over the shard. */
    uint64_t sweeps = 0;
    /** Sessions torn down by a fatal alert (either side failed). */
    uint64_t failedHandshakes = 0;
    /** Sessions torn down by a handshake or idle deadline. */
    uint64_t timedOutSessions = 0;
    /**
     * Handshakes that completed with a wall clock already past
     * handshakeAbandonCycles (0 when the knob is off). They count as
     * completed, but a real client had walked away — overload benches
     * subtract them from goodput as work served too late to matter.
     */
    uint64_t lateHandshakes = 0;
    /** Connections refused at accept by the circuit breaker. */
    uint64_t refusedSessions = 0;
    /** Cache entries scrubbed during session teardown. */
    uint64_t evictedSessions = 0;
    /** FaultyBio mutations injected across this worker's channels. */
    uint64_t faultsInjected = 0;
    /** Batched data-plane gather-sends issued (bulkBatchRecords > 0). */
    uint64_t dataPlaneFlushes = 0;
    /** Record-sized spans moved through those batched sends. */
    uint64_t dataPlaneRecords = 0;
};

/** Aggregate results of a run. */
struct ServeStats
{
    std::vector<WorkerStats> perWorker;
    double elapsedSeconds = 0.0;
    /**
     * Snapshot of the run's metrics registry taken after workers join:
     * serve.* counters, the serve.handshake_cycles histogram (p50/p99
     * handshake latency), record/cache/cryptopool/alert metrics.
     */
    obs::MetricsSnapshot metrics;

    uint64_t fullHandshakes() const;
    uint64_t resumedHandshakes() const;
    uint64_t bulkBytesMoved() const;
    uint64_t parkEvents() const;
    uint64_t parkEventsDecrypt() const;
    uint64_t parkEventsSign() const;
    uint64_t failedHandshakes() const;
    uint64_t timedOutSessions() const;
    uint64_t lateHandshakes() const;
    uint64_t refusedSessions() const;
    uint64_t evictedSessions() const;
    uint64_t faultsInjected() const;
    uint64_t dataPlaneFlushes() const;
    uint64_t dataPlaneRecords() const;

    /**
     * Every session's terminal outcome, summed: completed (full or
     * resumed) + alerted + timed out + refused at the accept gate.
     * The chaos invariant is that this equals the configured workload
     * — no session just vanishes.
     */
    uint64_t terminatedSessions() const;

    double fullHandshakesPerSec() const;
    double resumedHandshakesPerSec() const;
    double bulkMBPerSec() const;
    /** Completed handshakes (goodput) per second. */
    double goodputPerSec() const;
};

/** Drives the configured workload to completion on worker threads. */
class ServeEngine
{
  public:
    /**
     * @throws std::invalid_argument on missing identity or zero work
     */
    explicit ServeEngine(ServeConfig config);
    ~ServeEngine();

    ServeEngine(const ServeEngine &) = delete;
    ServeEngine &operator=(const ServeEngine &) = delete;

    /**
     * Run the workload to completion and return aggregate stats.
     * Rethrows the first worker failure (handshake errors are bugs
     * here — both peers are ours).
     */
    ServeStats run();

    /** The session store the run used (internal or configured). */
    ssl::SessionStore &sessionStore();

    /**
     * Snapshot of the resumption ring (sessions completed this run
     * plus any configured seed), for warming a subsequent engine's
     * ServeConfig::resumptionSeed. Call after run().
     */
    std::vector<ssl::Session> completedSessions() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace ssla::serve

#endif // SSLA_SERVE_ENGINE_HH

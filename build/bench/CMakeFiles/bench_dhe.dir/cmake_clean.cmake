file(REMOVE_RECURSE
  "CMakeFiles/bench_dhe.dir/bench_dhe.cc.o"
  "CMakeFiles/bench_dhe.dir/bench_dhe.cc.o.d"
  "bench_dhe"
  "bench_dhe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dhe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for crypto_speed.
# This may be replaced when dependencies are built.

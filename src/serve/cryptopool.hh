/**
 * @file
 * Asynchronous RSA private-key engine for the serving layer.
 *
 * Table 2 puts ~90% of a full handshake in the RSA pre-master decrypt;
 * Section 6.2's asynchronous-engine argument is that the processor
 * should "do other useful work while the crypto operation is being
 * executed". The CryptoPool realizes that across sessions: accept-path
 * workers submit private-key operations and keep multiplexing their
 * other connections; pool threads complete the jobs and the parked
 * sessions resume on the worker's next visit.
 *
 * THREAD OWNERSHIP: RsaPrivateKey (blinding state) and its embedded
 * MontgomeryCtx scratch are single-owner by design (see
 * bn/montgomery.hh). The pool therefore never runs a caller's key
 * object — each pool thread lazily clones a private replica from the
 * key's components and uses only that, so N pool threads give N-way
 * RSA parallelism with no locks in the hot path.
 */

#ifndef SSLA_SERVE_CRYPTOPOOL_HH
#define SSLA_SERVE_CRYPTOPOOL_HH

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "crypto/provider.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace ssla::serve
{

/**
 * What a full CryptoPool queue does with new work. A saturated pool is
 * the expected state of an overloaded server — the policy decides
 * whether the excess handshake fails fast or degrades to the paper's
 * baseline synchronous decrypt.
 */
enum class OverloadPolicy
{
    /**
     * Refuse the job: it resolves immediately with a
     * crypto::ProviderOverloadError, which the server surfaces as a
     * fatal internal_error alert. Keeps worker latency flat; sheds
     * whole sessions.
     */
    Reject,
    /**
     * Return an invalid job; PooledProvider falls back to computing
     * synchronously on the submitting worker (the pre-offload
     * baseline). Every session completes; worker throughput degrades
     * smoothly instead of cliffing.
     */
    Shed,
};

/** A pool of crypto threads completing submitted RSA operations. */
class CryptoPool
{
  public:
    /**
     * @param threads number of crypto threads (min 1)
     * @param max_queue queued-job bound (0 = unbounded, the pre-hardening
     *        behavior); in-flight jobs do not count against it
     * @param policy what submits do when the queue is at the bound
     */
    explicit CryptoPool(size_t threads = 1, size_t max_queue = 0,
                        OverloadPolicy policy = OverloadPolicy::Reject);

    /** Drains nothing: pending jobs are completed before exit. */
    ~CryptoPool();

    CryptoPool(const CryptoPool &) = delete;
    CryptoPool &operator=(const CryptoPool &) = delete;

    /**
     * Queue a PKCS#1 v1.5 decryption of @p cipher under (a per-thread
     * replica of) @p key. @p key must outlive the returned job (or the
     * job must be cancel()ed before the key dies; a cancelled queued
     * job is never executed). When the queue is at its bound the
     * overload policy applies: Reject returns a job already failed
     * with ProviderOverloadError; Shed returns an INVALID job and the
     * caller must compute synchronously.
     */
    crypto::RsaJob submitDecrypt(const crypto::RsaPrivateKey &key,
                                 Bytes cipher);

    /** Queue a PKCS#1 type-1 signature over @p digest_data. */
    crypto::RsaJob submitSign(const crypto::RsaPrivateKey &key,
                              Bytes digest_data);

    /**
     * Queue an arbitrary producer (test hook: lets a test hold a job
     * open to observe the parking protocol deterministically).
     */
    crypto::RsaJob submitRaw(std::function<Bytes()> fn);

    size_t threadCount() const { return workers_.size(); }
    size_t maxQueue() const { return maxQueue_; }
    OverloadPolicy policy() const { return policy_; }

    /** Jobs currently queued (racy snapshot; monitoring only). */
    size_t queueDepth() const;

    /** Jobs completed since construction (monitoring). */
    uint64_t completedJobs() const
    {
        return completed_.load(std::memory_order_relaxed);
    }

    /** Submits refused under the Reject policy. */
    uint64_t rejectedJobs() const
    {
        return rejected_.load(std::memory_order_relaxed);
    }

    /** Submits pushed back to the caller under the Shed policy. */
    uint64_t shedJobs() const
    {
        return shed_.load(std::memory_order_relaxed);
    }

    /** Queued jobs skipped because they were cancelled first. */
    uint64_t cancelledJobs() const
    {
        return cancelled_.load(std::memory_order_relaxed);
    }

    /** High-water mark of the queue depth. */
    uint64_t peakQueueDepth() const
    {
        return peakQueue_.load(std::memory_order_relaxed);
    }

    /**
     * Re-point the cryptopool.* metrics (queue-wait and service-time
     * histograms, outcome counters, queue-depth gauge) at @p reg (null
     * restores the global registry). Handles are read by pool and
     * submitter threads without synchronization: bind while the pool
     * is quiescent — right after construction, before jobs flow.
     */
    void bindMetrics(obs::MetricsRegistry *reg);

    /**
     * Mirror each pool thread's job execution into @p sink: every
     * thread keeps a ring trace on track cryptoTrackBase+index with
     * JobStart/JobEnd span events, dumped to the sink when the pool
     * shuts down. Null disables. Safe to call while running.
     */
    void
    bindTraceSink(obs::TraceSink *sink)
    {
        traceSink_.store(sink, std::memory_order_release);
    }

  private:
    enum class Kind
    {
        Decrypt,
        Sign,
        Raw,
    };

    struct Job
    {
        Kind kind;
        const crypto::RsaPrivateKey *key = nullptr;
        Bytes input;
        std::function<Bytes()> fn;
        std::shared_ptr<crypto::RsaJob::State> state;
        uint64_t submitCycles = 0; ///< for the queue-wait histogram
    };

    crypto::RsaJob enqueue(Job job);
    void workerLoop(size_t index);

    mutable std::mutex m_;
    std::condition_variable cv_;
    std::deque<Job> queue_;
    bool stopping_ = false;
    size_t maxQueue_ = 0;
    OverloadPolicy policy_ = OverloadPolicy::Reject;
    std::atomic<uint64_t> completed_{0};
    std::atomic<uint64_t> rejected_{0};
    std::atomic<uint64_t> shed_{0};
    std::atomic<uint64_t> cancelled_{0};
    std::atomic<uint64_t> peakQueue_{0};
    std::atomic<obs::TraceSink *> traceSink_{nullptr};
    obs::Histogram histQueueWait_;
    obs::Histogram histService_;
    obs::Counter ctrCompleted_;
    obs::Counter ctrRejected_;
    obs::Counter ctrShed_;
    obs::Counter ctrCancelled_;
    obs::Gauge gaugeDepth_;
    std::vector<std::thread> workers_;
};

/**
 * Provider adapter giving SSL endpoints the asynchronous RSA path:
 * submitRsaDecrypt/submitRsaSign go to the CryptoPool (so the server
 * parks at ClientKeyExchange instead of stalling), everything else —
 * ciphers, digests, record MACs, synchronous RSA — delegates to the
 * wrapped provider. Safe to share across workers: the adapter is
 * stateless and the pool is internally synchronized.
 */
class PooledProvider final : public crypto::Provider
{
  public:
    /**
     * @param pool the crypto pool (not owned; must outlive this)
     * @param inner synchronous fallback; null selects the scalar
     *        provider singleton
     */
    explicit PooledProvider(CryptoPool &pool,
                            crypto::Provider *inner = nullptr);

    const char *name() const override { return "pooled"; }
    std::unique_ptr<crypto::Cipher>
    createCipher(crypto::CipherAlg alg, const Bytes &key,
                 const Bytes &iv, bool encrypt) override;
    std::unique_ptr<crypto::Digest>
    createDigest(crypto::DigestAlg alg) override;
    std::unique_ptr<crypto::Hmac> createHmac(crypto::DigestAlg alg,
                                             const Bytes &key) override;
    size_t recordMac(const crypto::RecordMacSpec &spec, uint64_t seq,
                     uint8_t type, ConstSpan data,
                     uint8_t *mac_out) override;
    Bytes rsaDecrypt(const crypto::RsaPrivateKey &key,
                     const Bytes &cipher) override;
    Bytes rsaSign(const crypto::RsaPrivateKey &key,
                  const Bytes &digest_data) override;
    crypto::RsaJob submitRsaDecrypt(const crypto::RsaPrivateKey &key,
                                    Bytes cipher) override;
    crypto::RsaJob submitRsaSign(const crypto::RsaPrivateKey &key,
                                 Bytes digest_data) override;
    /** The wrapped provider's backend (pool replicas follow the key). */
    const bn::Engine &
    bnEngine() const override
    {
        return inner_.bnEngine();
    }

  private:
    CryptoPool &pool_;
    crypto::Provider &inner_;
};

} // namespace ssla::serve

#endif // SSLA_SERVE_CRYPTOPOOL_HH
